/**
 * @file
 * Experiment E10: the PC/address-correlation contrast, measured at the
 * LLC by the online profiler (E4's fig5 measures the raw instruction
 * stream; this measures what the replacement policy actually sees
 * after the L1/L2 filter, which is where SHiP/Hawkeye/Glider/MPPPB
 * form their predictions).
 *
 * Runs every GAP kernel and a panel of SPEC-like synthetics under LRU
 * with --profile semantics (sample rate 1: exact counts, footprints
 * within the HLL sketch's ~6.5% standard error) and reports, per
 * workload, the LLC-demand PC population, top-8 concentration,
 * footprint and entropy. The paper's claim reproduced here: graph
 * kernels concentrate >90% of LLC accesses in their top-8 PCs each
 * touching huge footprints, while SPEC-like code spreads accesses over
 * many PCs with small per-PC footprints.
 */

#include <map>

#include "bench_util.hh"
#include "stats/summary.hh"

using namespace cachescope;

namespace {

struct GroupStat
{
    std::vector<double> top8;
    std::vector<double> entropy;
};

} // anonymous namespace

int
main()
{
    bench::banner("fig9", "LLC PC/address correlation: GAP vs SPEC-like",
                  "sections I-A/I-D: PC-correlation collapse at the LLC");

    SimConfig cfg = bench::fidelityConfig("lru");
    cfg.profile.enabled = true;
    cfg.profile.sampleRate = 1;

    Table table({"group", "workload", "llc_pcs", "top8_cover",
                 "pcs_for_90pct", "footprint_blocks", "entropy_bits"});
    bench::BenchMetrics metrics("fig9_pc_corr");
    std::map<std::string, GroupStat> groups;

    auto run_one = [&](const std::string &group, Workload &workload) {
        const SimResult r = runOne(workload, cfg);
        const MetricsRegistry &m = r.extraMetrics;
        if (m.counter("profile.demand_accesses") == 0) {
            // Fits entirely above the LLC in this mode's window (tc on
            // quick-mode graphs): no demand stream to characterize, so
            // keep the empty tree out of the artifact.
            std::fprintf(stderr,
                         "  %-26s skipped (no LLC demand accesses)\n",
                         workload.name().c_str());
            return;
        }
        const double top8 = m.gauge("profile.concentration.top_8");
        table.newRow();
        table.addCell(group);
        table.addCell(workload.name());
        table.addNumber(
            static_cast<double>(m.counter("profile.distinct_pcs")), 0);
        table.addNumber(top8, 3);
        table.addNumber(
            static_cast<double>(m.counter("profile.pcs_for_90pct")), 0);
        table.addNumber(
            static_cast<double>(m.counter("profile.footprint_blocks")), 0);
        table.addNumber(m.gauge("profile.pc_entropy_bits"), 2);
        metrics.add(r, group + "." + workload.name());
        groups[group].top8.push_back(top8);
        groups[group].entropy.push_back(
            m.gauge("profile.pc_entropy_bits"));
        std::fprintf(stderr, "  %-26s top8=%.3f\n",
                     workload.name().c_str(), top8);
    };

    for (const auto &workload : bench::gapFidelitySuite())
        run_one("gap", *workload);

    // The SPEC-like panel: pc_mosaic at three site populations — the
    // many-PC, small-footprint-per-PC shape the paper attributes to
    // SPEC code. Distinct name prefixes keep the three cells' metric
    // subtrees (keyed by workload name) from aliasing.
    for (const std::uint32_t sites : {32u, 64u, 128u}) {
        SynthParams p;
        p.pcWorkloadId = 90 + sites;
        p.seed = sites;
        p.mainBytes = 16ull << 20;
        p.mosaicPcs = sites;
        SyntheticWorkload mosaic("mosaic" + std::to_string(sites),
                                 SynthPattern::PcMosaic, p);
        run_one("spec_like", mosaic);
    }

    for (const auto &[group, stat] : groups) {
        metrics.registry().setGauge("summary." + group + ".top8_mean",
                                    mean(stat.top8));
        metrics.registry().setGauge("summary." + group + ".entropy_mean",
                                    mean(stat.entropy));
    }
    std::printf("top-8 PC coverage of LLC demand accesses: "
                "gap mean %.1f%%, spec-like mean %.1f%%\n",
                mean(groups["gap"].top8) * 100.0,
                mean(groups["spec_like"].top8) * 100.0);

    bench::emitTable(table, "fig9");
    metrics.emit();
    return 0;
}
