/**
 * @file
 * Ablation A1: replacement-policy speedup on GAP versus input scale.
 *
 * On LLC-scaled graphs a scan-resistant policy can pin a meaningful
 * fraction of the per-vertex property arrays — something the paper's
 * multi-gigabyte inputs never allow. The gain-vs-scale curve is
 * non-monotone: ~1.00 while the property arrays fit the LLC (nothing
 * to protect), rising through the few-times-LLC regime (pollution
 * protection pays most), then decaying back toward the paper's ~1.00
 * as the protectable fraction becomes negligible. This ablation traces
 * that curve; the paper's inputs sit far out on the decaying tail.
 */

#include "bench_util.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("abl_scale", "GAP speedup over LRU vs graph scale",
                  "working-set scaling argument (section I-D)");

    const std::vector<unsigned> scales =
        bench::quickMode() ? std::vector<unsigned>{14, 16}
                           : std::vector<unsigned>{16, 18, 20, 22};
    const std::vector<std::string> policies = {"drrip", "ship", "hawkeye"};

    Table table({"scale", "property_mb", "workload", "policy",
                 "speedup_vs_lru", "llc_miss_reduction"});
    bench::BenchMetrics metrics("abl_scale");
    for (unsigned scale : scales) {
        GapSuiteConfig cfg;
        cfg.scale = scale;
        cfg.avgDegree = 8;
        cfg.includeUniform = false;
        cfg.kernels = {GapKernel::Bfs, GapKernel::Cc};
        const auto suite = makeGapSuite(cfg);

        for (const auto &workload : suite) {
            const SimResult lru =
                runOne(*workload, bench::sweepConfig("lru"));
            const std::string scale_tag = "s" + std::to_string(scale);
            metrics.add(lru, scale_tag + "." + workload->name() + ".lru");
            for (const auto &policy : policies) {
                const SimResult r =
                    runOne(*workload, bench::sweepConfig(policy));
                metrics.add(r, scale_tag + "." + workload->name() + "." +
                                   policy);
                table.newRow();
                table.addCell(std::to_string(scale));
                // Property array: one 8 B entry per vertex (BFS
                // parent / CC component use the largest).
                table.addNumber(
                    static_cast<double>(std::uint64_t{8} << scale) /
                    (1024.0 * 1024.0), 1);
                table.addCell(workload->name());
                table.addCell(policy);
                table.addNumber(r.ipc() / lru.ipc(), 4);
                table.addNumber(
                    1.0 - static_cast<double>(r.llc.demandMisses()) /
                          static_cast<double>(lru.llc.demandMisses()),
                    4);
                std::fprintf(stderr, "  scale=%u %-10s %-8s done\n",
                             scale, workload->name().c_str(),
                             policy.c_str());
            }
        }
    }

    bench::emitTable(table, "abl_scale");
    metrics.emit();
    return 0;
}
