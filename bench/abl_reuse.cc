/**
 * @file
 * Ablation A3: reuse-distance structure of GAP versus SPEC-like
 * workloads.
 *
 * A stack-distance histogram predicts the hit ratio of every LRU cache
 * capacity at once. Graph workloads' reuse mass sits at distances far
 * beyond the 22528 blocks of a 1.375 MB LLC — the capacity-miss
 * explanation for why no replacement policy (which can only reorder
 * evictions, not create capacity) helps; the SPEC-like kernels keep
 * their reuse within reach, which is why policies have something to
 * work with there.
 */

#include "bench_util.hh"
#include "trace/reuse_distance.hh"

using namespace cachescope;

namespace {

struct ProfiledRow
{
    std::string name;
    double ratio_llc;   ///< hit ratio at 1.375 MB (22528 blocks)
    double ratio_4x;
    double ratio_16x;
    double ratio_64x;
    std::uint64_t reuses;
    std::uint64_t cold;
};

ProfiledRow
profileWorkload(Workload &workload, std::uint64_t budget)
{
    // Skip the workload's setup phase (cf. Workload::warmupHint) so
    // the profile reflects steady state, then profile `budget`
    // instructions.
    struct Bounded : ReuseDistanceProfiler
    {
        Bounded(std::uint64_t skip, std::uint64_t budget)
            : skip(skip), budget(budget)
        {}
        void
        onInstruction(const TraceRecord &rec) override
        {
            ++seen;
            if (seen > skip)
                ReuseDistanceProfiler::onInstruction(rec);
        }
        bool wantsMore() const override { return seen < skip + budget; }
        std::uint64_t skip;
        std::uint64_t budget;
        std::uint64_t seen = 0;
    } profiler(workload.warmupHint(), budget);
    workload.run(profiler);

    constexpr std::uint64_t kLlcBlocks = 11 * 2048; // 1.375 MB / 64 B
    ProfiledRow row;
    row.name = workload.name();
    row.ratio_llc = profiler.hitRatioAtCapacity(kLlcBlocks);
    row.ratio_4x = profiler.hitRatioAtCapacity(4 * kLlcBlocks);
    row.ratio_16x = profiler.hitRatioAtCapacity(16 * kLlcBlocks);
    row.ratio_64x = profiler.hitRatioAtCapacity(64 * kLlcBlocks);
    row.reuses = profiler.reuses();
    row.cold = profiler.coldAccesses();
    return row;
}

} // anonymous namespace

int
main()
{
    bench::banner("abl_reuse",
                  "LRU stack-distance CDF: GAP vs SPEC-like",
                  "capacity-miss diagnosis (section I-D)");

    const std::uint64_t budget =
        bench::quickMode() ? 1'000'000 : 16'000'000;

    Table table({"workload", "reuse_within_llc", "within_4x",
                 "within_16x", "within_64x", "lru_miss_ratio_at_llc",
                 "cold_fraction"});
    bench::BenchMetrics metrics("abl_reuse");
    auto add = [&](const ProfiledRow &row) {
        const double total =
            static_cast<double>(row.reuses) + static_cast<double>(row.cold);
        MetricsRegistry &reg = metrics.registry();
        reg.setCounter(row.name + ".reuses", row.reuses);
        reg.setCounter(row.name + ".cold_accesses", row.cold);
        reg.setGauge(row.name + ".hit_ratio_at_llc", row.ratio_llc);
        reg.setGauge(row.name + ".hit_ratio_at_64x", row.ratio_64x);
        reg.addCounter("bench.profiles");
        table.newRow();
        table.addCell(row.name);
        table.addNumber(row.ratio_llc, 3);
        table.addNumber(row.ratio_4x, 3);
        table.addNumber(row.ratio_16x, 3);
        table.addNumber(row.ratio_64x, 3);
        // All-access LRU miss ratio at LLC capacity: unreachable reuse
        // plus compulsory misses.
        table.addNumber(
            (static_cast<double>(row.reuses) * (1.0 - row.ratio_llc) +
             static_cast<double>(row.cold)) / total, 4);
        table.addNumber(static_cast<double>(row.cold) / total, 4);
        std::fprintf(stderr, "  %-22s profiled\n", row.name.c_str());
    };

    GapSuiteConfig gap_cfg;
    gap_cfg.scale = bench::quickMode() ? 15 : 20;
    gap_cfg.avgDegree = 8;
    gap_cfg.includeUniform = false;
    gap_cfg.kernels = {GapKernel::Bfs, GapKernel::PageRank, GapKernel::Cc,
                       GapKernel::Sssp};
    for (const auto &workload : makeGapSuite(gap_cfg))
        add(profileWorkload(*workload, budget));

    for (const auto &workload : makeSpec06Suite()) {
        const std::string &n = workload->name();
        if (n.find("hot_cold") != std::string::npos ||
            n.find("gather_zipf") != std::string::npos ||
            n.find("tree_search") != std::string::npos ||
            n.find("small_ws") != std::string::npos) {
            add(profileWorkload(*workload, budget));
        }
    }

    bench::emitTable(table, "abl_reuse");
    metrics.emit();
    return 0;
}
