/**
 * @file
 * Ablation A4: LLC associativity sensitivity on GAP workloads.
 *
 * Separates conflict misses from capacity misses: if graph misses were
 * conflict-driven, higher associativity (or a better victim choice —
 * which is all a replacement policy is) would recover them. The curve
 * flattens almost immediately: past ~4 ways the miss rate is set by
 * capacity alone, corroborating why no policy in Fig. 3 moves GAP.
 */

#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("abl_assoc", "LLC associativity sweep (LRU, GAP)",
                  "conflict-vs-capacity decomposition");

    // Constant 1 MB capacity (power-of-two-friendly, close to the real
    // 1.375 MB slice) with associativity swept from direct-mapped to
    // 32-way; sets scale inversely.
    const std::vector<std::uint32_t> ways_sweep = {1, 2, 4, 8, 16, 32};
    const std::uint64_t capacity = 1ull << 20;

    GapSuiteConfig suite_cfg;
    suite_cfg.scale = bench::sweepScale();
    suite_cfg.avgDegree = 8;
    suite_cfg.includeUniform = false;
    suite_cfg.kernels = {GapKernel::Bfs, GapKernel::Cc};
    const auto suite = makeGapSuite(suite_cfg);

    Table table({"workload", "ways", "llc_kb", "llc_mpki", "ipc"});
    bench::BenchMetrics metrics("abl_assoc");
    for (const auto &workload : suite) {
        for (std::uint32_t ways : ways_sweep) {
            SimConfig config = bench::sweepConfig("lru");
            config.hierarchy.llc.numWays = ways;
            config.hierarchy.llc.sizeBytes = capacity;
            const SimResult r = runOne(*workload, config);
            metrics.add(r, workload->name() + ".ways" +
                               std::to_string(ways));
            table.newRow();
            table.addCell(workload->name());
            table.addNumber(ways, 0);
            table.addNumber(static_cast<double>(capacity) / 1024, 0);
            table.addNumber(r.mpkiLlc(), 2);
            table.addNumber(r.ipc(), 3);
            std::fprintf(stderr, "  %-10s ways=%u done\n",
                         workload->name().c_str(), ways);
        }
    }

    bench::emitTable(table, "abl_assoc");
    metrics.emit();
    return 0;
}
