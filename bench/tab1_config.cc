/**
 * @file
 * Experiment E8 (paper section I-C): the simulated machine
 * configuration table — single-core Cascade Lake with 32 KB L1s, 1 MB
 * L2, 1.375 MB LLC and 8 GB DDR4-2933.
 */

#include "bench_util.hh"

using namespace cachescope;

int
main()
{
    bench::banner("tab1", "simulated machine configuration",
                  "section I-C experimental setup");

    const SimConfig cfg = cascadeLakeConfig();

    Table table({"component", "parameter", "value"});
    auto row = [&](const char *component, const char *parameter,
                   const std::string &value) {
        table.newRow();
        table.addCell(component);
        table.addCell(parameter);
        table.addCell(value);
    };
    auto kb = [](std::uint64_t bytes) {
        return std::to_string(bytes / 1024) + " KB";
    };
    auto cache_rows = [&](const char *component, const CacheConfig &c) {
        row(component, "size", kb(c.sizeBytes));
        row(component, "associativity", std::to_string(c.numWays));
        row(component, "sets", std::to_string(c.numSets()));
        row(component, "hit latency",
            std::to_string(c.hitLatency) + " cycles");
        row(component, "replacement", c.replacement);
    };

    row("core", "ROB entries", std::to_string(cfg.core.robSize));
    row("core", "dispatch width", std::to_string(cfg.core.dispatchWidth));
    row("core", "retire width", std::to_string(cfg.core.retireWidth));
    cache_rows("L1I", cfg.hierarchy.l1i);
    cache_rows("L1D", cfg.hierarchy.l1d);
    cache_rows("L2", cfg.hierarchy.l2);
    cache_rows("LLC", cfg.hierarchy.llc);
    row("DRAM", "capacity",
        std::to_string(cfg.hierarchy.dram.capacityBytes >> 30) + " GB");
    row("DRAM", "standard", "DDR4-2933, 1 channel, 2 ranks, 16 banks");
    row("DRAM", "tCAS/tRCD/tRP",
        std::to_string(cfg.hierarchy.dram.tCas) + " cycles each");
    row("DRAM", "row buffer",
        std::to_string(cfg.hierarchy.dram.rowBytes) + " B");
    row("windows", "warmup",
        std::to_string(cfg.warmupInstructions) + " instructions");
    row("windows", "measurement",
        std::to_string(cfg.measureInstructions) + " instructions");

    bench::emitTable(table, "tab1");

    // No simulations here; export the configuration itself so the
    // BENCH artifact still carries a non-empty counter tree.
    bench::BenchMetrics metrics("tab1");
    MetricsRegistry &reg = metrics.registry();
    reg.setCounter("config.core.rob_entries", cfg.core.robSize);
    reg.setCounter("config.l1i.size_bytes", cfg.hierarchy.l1i.sizeBytes);
    reg.setCounter("config.l1d.size_bytes", cfg.hierarchy.l1d.sizeBytes);
    reg.setCounter("config.l2.size_bytes", cfg.hierarchy.l2.sizeBytes);
    reg.setCounter("config.llc.size_bytes", cfg.hierarchy.llc.sizeBytes);
    reg.setCounter("config.llc.ways", cfg.hierarchy.llc.numWays);
    reg.setCounter("config.dram.capacity_bytes",
                   cfg.hierarchy.dram.capacityBytes);
    reg.setCounter("config.windows.warmup", cfg.warmupInstructions);
    reg.setCounter("config.windows.measure", cfg.measureInstructions);
    metrics.emit();
    return 0;
}
