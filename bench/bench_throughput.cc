/**
 * @file
 * Simulator throughput benchmark (perf trajectory, not a paper
 * figure): captures the GAP BFS workload to a binary trace, then
 * replays it end-to-end — trace decode, checksum verification, core
 * timing model, full cache hierarchy — and reports wall-clock seconds
 * and simulated MIPS for both phases. A third phase replays the same
 * trace through the two-speed engine's fast-sweep configuration
 * (functional warmup over the first half, 1/16 LLC set-sampling) so
 * its speedup is tracked as "fast.sim.throughput_mips" alongside the
 * exact-path number.
 *
 * The replay numbers are the ones the CI perf-smoke job tracks: the
 * sweep wall-clock that gates every experiment in EXPERIMENTS.md is
 * proportional to them. Timing uses steady_clock only (the CI grep
 * guard enforces this repo-wide). MIPS here means "simulated
 * instructions pushed through the pipeline per wall-clock second of
 * host time" — a host-speed-dependent number, only comparable across
 * runs on the same machine (see EXPERIMENTS.md, "Performance
 * methodology").
 *
 * Quick mode (CACHESCOPE_QUICK=1) replays 2M records instead of 20M
 * so the CI job stays time-boxed.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.hh"
#include "core/simulator.hh"
#include "harness/workload_zoo.hh"
#include "trace/trace_io.hh"

using namespace cachescope;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main()
{
    bench::banner("throughput",
                  "simulator hot-path throughput (GAP BFS capture + "
                  "replay)",
                  "methodology artifact; tracks simulator speed, not a "
                  "paper figure");
    bench::BenchMetrics bench_metrics("throughput");

    const std::uint64_t records =
        bench::quickMode() ? 2'000'000 : 20'000'000;
    ZooOptions zoo;
    zoo.scale = bench::quickMode() ? 16 : 19;
    const std::string trace_path =
        (std::filesystem::temp_directory_path() /
         "cachescope_bench_throughput.trace")
            .string();

    // --- Phase 1: capture ------------------------------------------------
    auto workload = makeNamedWorkload("bfs", zoo);
    const auto capture_start = std::chrono::steady_clock::now();
    std::uint64_t captured = 0;
    {
        TraceWriter writer(trace_path);
        struct Bounded : InstructionSink
        {
            Bounded(TraceWriter &writer, std::uint64_t budget)
                : out(writer), budget(budget)
            {}
            void
            onInstruction(const TraceRecord &rec) override
            {
                out.onInstruction(rec);
            }
            bool
            wantsMore() const override
            {
                return out.status().ok() &&
                       out.recordsWritten() < budget;
            }
            TraceWriter &out;
            std::uint64_t budget;
        } sink(writer, records);
        workload->run(sink);
        if (Status s = writer.finish(); !s.ok())
            fatal("capture failed: %s", s.message().c_str());
        captured = writer.recordsWritten();
    }
    const double capture_s = secondsSince(capture_start);

    // --- Phase 2: replay (the tracked number) ----------------------------
    // Warmup 0 / measure 0: every record is simulated and counted, so
    // the MIPS figure covers the whole trace, checksum verification
    // included.
    const SimConfig cfg = cascadeLakeConfig("lru", 0, 0);
    auto reader = TraceReader::open(trace_path);
    if (!reader.ok())
        fatal("%s", reader.status().message().c_str());
    Simulator sim(cfg);
    const auto replay_start = std::chrono::steady_clock::now();
    std::uint64_t replayed = 0;
    if (Status s = reader.value()->replayInto(sim, &replayed); !s.ok())
        fatal("replay failed: %s", s.message().c_str());
    const double replay_s = secondsSince(replay_start);
    const double replay_mips = replay_s > 0.0
        ? static_cast<double>(sim.instructionsConsumed()) / replay_s /
          1e6
        : 0.0;

    // --- Phase 3: fast-mode replay (two-speed engine) --------------------
    // Same trace through the fast-sweep configuration — functional
    // warmup over the first half, 1/16 LLC set-sampling throughout —
    // so the speedup the two-speed engine buys is tracked alongside
    // the exact-path number it multiplies.
    SimConfig fast_cfg = cascadeLakeConfig("lru", replayed / 2, 0);
    fast_cfg.warmupMode = WarmupMode::Functional;
    fast_cfg.hierarchy.llc.sampleSets = 16;
    auto fast_reader = TraceReader::open(trace_path);
    if (!fast_reader.ok())
        fatal("%s", fast_reader.status().message().c_str());
    Simulator fast_sim(fast_cfg);
    const auto fast_start = std::chrono::steady_clock::now();
    std::uint64_t fast_replayed = 0;
    if (Status s = fast_reader.value()->replayInto(fast_sim,
                                                   &fast_replayed);
        !s.ok()) {
        fatal("fast replay failed: %s", s.message().c_str());
    }
    const double fast_s = secondsSince(fast_start);
    const double fast_mips = fast_s > 0.0
        ? static_cast<double>(fast_sim.instructionsConsumed()) / fast_s /
          1e6
        : 0.0;

    std::error_code ec;
    std::filesystem::remove(trace_path, ec);

    // --- Report ----------------------------------------------------------
    Table table({"phase", "records", "wall_s", "mips"});
    table.newRow();
    table.addCell("capture");
    table.addNumber(static_cast<double>(captured), 0);
    table.addNumber(capture_s, 2);
    table.addNumber(capture_s > 0.0
                        ? static_cast<double>(captured) / capture_s / 1e6
                        : 0.0,
                    1);
    table.newRow();
    table.addCell("replay");
    table.addNumber(static_cast<double>(replayed), 0);
    table.addNumber(replay_s, 2);
    table.addNumber(replay_mips, 1);
    table.newRow();
    table.addCell("fast replay");
    table.addNumber(static_cast<double>(fast_replayed), 0);
    table.addNumber(fast_s, 2);
    table.addNumber(fast_mips, 1);
    bench::emitTable(table, "throughput");

    const SimResult result = sim.result();
    bench_metrics.add(result, "replay");
    bench_metrics.add(fast_sim.result(), "fast");
    MetricsRegistry &reg = bench_metrics.registry();
    reg.setCounter("replay.records", replayed);
    reg.setCounter("capture.records", captured);
    reg.setGauge("capture.wall_seconds", capture_s);
    reg.setGauge("sim.wall_seconds", replay_s);
    reg.setGauge("sim.throughput_mips", replay_mips);
    reg.setGauge("fast.sim.wall_seconds", fast_s);
    reg.setGauge("fast.sim.warmup_wall_seconds",
                 fast_sim.warmupWallSeconds());
    reg.setGauge("fast.sim.measure_wall_seconds",
                 fast_sim.measureWallSeconds());
    reg.setGauge("fast.sim.throughput_mips", fast_mips);
    bench_metrics.emit();
    return 0;
}
