/**
 * @file
 * Shared helpers for the experiment-reproduction binaries: canonical
 * suite instances at bench scale, window sizes, and output plumbing.
 *
 * Every figure/table binary prints an ASCII table to stdout and, when
 * CACHESCOPE_CSV is set in the environment, the same data as CSV to
 * the file it names (appending a suffix per experiment id).
 */

#ifndef CACHESCOPE_BENCH_BENCH_UTIL_HH
#define CACHESCOPE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/cascade_lake.hh"
#include "graph/gap_suite.hh"
#include "harness/experiment.hh"
#include "stats/metrics.hh"
#include "stats/table.hh"
#include "util/logging.hh"
#include "workloads/synthetic.hh"

namespace cachescope::bench {

/** Quick mode (CACHESCOPE_QUICK=1): small graphs, short windows. */
inline bool
quickMode()
{
    const char *env = std::getenv("CACHESCOPE_QUICK");
    return env != nullptr && env[0] == '1';
}

/** Graph scale used by the MPKI-fidelity experiments (E1, E3). */
inline unsigned
fidelityScale()
{
    return quickMode() ? 16 : 21;
}

/**
 * Graph scale used by the big sweep experiments (E2, E5, E7).
 *
 * Large enough that the per-vertex property arrays are an order of
 * magnitude bigger than the 1.375 MB LLC — on smaller inputs,
 * scan-resistant policies can pin a sizeable fraction of the property
 * arrays and show speedups the paper's multi-gigabyte inputs never
 * allow.
 */
inline unsigned
sweepScale()
{
    return quickMode() ? 15 : 21;
}

/** Measurement window for single-workload fidelity runs. */
inline SimConfig
fidelityConfig(const std::string &policy = "lru")
{
    return quickMode() ? cascadeLakeConfig(policy, 200'000, 1'000'000)
                       : cascadeLakeConfig(policy, 1'000'000, 10'000'000);
}

/** Measurement window for workload x policy sweeps. */
inline SimConfig
sweepConfig(const std::string &policy = "lru")
{
    return quickMode() ? cascadeLakeConfig(policy, 100'000, 500'000)
                       : cascadeLakeConfig(policy, 500'000, 5'000'000);
}

/** The GAP suite at sweep scale (12 workloads: 6 kernels x 2 inputs). */
inline std::vector<std::shared_ptr<Workload>>
gapSweepSuite()
{
    GapSuiteConfig cfg;
    cfg.scale = sweepScale();
    cfg.avgDegree = 8;
    return makeGapSuite(cfg);
}

/** The GAP suite at fidelity scale on the Kronecker input only. */
inline std::vector<std::shared_ptr<Workload>>
gapFidelitySuite()
{
    GapSuiteConfig cfg;
    cfg.scale = fidelityScale();
    cfg.avgDegree = 8;
    cfg.includeUniform = false;
    return makeGapSuite(cfg);
}

/**
 * Print @p table to stdout and, if CACHESCOPE_CSV is set, write CSV to
 * "<CACHESCOPE_CSV>.<experiment_id>.csv".
 */
inline void
emitTable(const Table &table, const std::string &experiment_id)
{
    table.printAscii(std::cout);
    const char *csv_base = std::getenv("CACHESCOPE_CSV");
    if (csv_base != nullptr && csv_base[0] != '\0') {
        const std::string path =
            std::string(csv_base) + "." + experiment_id + ".csv";
        std::ofstream out(path);
        table.printCsv(out);
        std::cout << "(csv written to " << path << ")\n";
    }
}

/**
 * Collects the metric tree for one bench binary and writes the
 * BENCH_<name>.json perf-trajectory artifact
 * (schema cachescope-metrics-v1: {schema, name, wall_ms,
 * counters{...}, gauges{...}, histograms{...}}).
 *
 * Construct at the top of main() — wall_ms measures from construction
 * to emit(). The artifact lands in $CACHESCOPE_BENCH_DIR when set,
 * else in "results/" when that directory exists (next to the result
 * tables), else in the working directory.
 */
class BenchMetrics
{
  public:
    explicit BenchMetrics(std::string name) : name_(std::move(name)) {}

    /** Merge one simulation's full statistics tree under "<prefix>.". */
    void
    add(const SimResult &result, const std::string &prefix)
    {
        result.exportMetrics(registry_, prefix);
        registry_.addCounter("bench.simulations");
    }

    /** Merge a sweep's aggregated tree under "<prefix>.". */
    void
    add(const SweepReport &report, const std::string &prefix)
    {
        registry_.merge(report.metrics, prefix);
        registry_.addCounter("bench.sweeps");
        registry_.addCounter("bench.simulations", report.executed);
    }

    /** Direct access, for registering experiment-specific metrics. */
    MetricsRegistry &registry() { return registry_; }

    /** Write BENCH_<name>.json; warn()s and returns false on failure. */
    bool
    emit()
    {
        MetricsDocument doc;
        doc.name = name_;
        doc.wallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
        doc.metrics = registry_;

        std::string dir = ".";
        if (const char *env = std::getenv("CACHESCOPE_BENCH_DIR");
            env != nullptr && env[0] != '\0') {
            dir = env;
        } else {
            std::error_code ec;
            if (std::filesystem::is_directory("results", ec))
                dir = "results";
        }
        const std::string path = dir + "/BENCH_" + name_ + ".json";
        if (Status s = writeMetricsJsonFile(doc, path); !s.ok()) {
            warn("bench metrics not written: %s", s.message().c_str());
            return false;
        }
        std::cout << "(bench metrics written to " << path << ")\n";
        return true;
    }

  private:
    std::string name_;
    MetricsRegistry registry_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/** Banner for experiment binaries. */
inline void
banner(const std::string &experiment_id, const std::string &what,
       const std::string &paper_reference)
{
    std::cout << "== " << experiment_id << ": " << what << "\n"
              << "   paper reference: " << paper_reference << "\n"
              << "   mode: " << (quickMode() ? "quick" : "full") << "\n";
}

} // namespace cachescope::bench

#endif // CACHESCOPE_BENCH_BENCH_UTIL_HH
