/**
 * @file
 * Shared helpers for the experiment-reproduction binaries: canonical
 * suite instances at bench scale, window sizes, and output plumbing.
 *
 * Every figure/table binary prints an ASCII table to stdout and, when
 * CACHESCOPE_CSV is set in the environment, the same data as CSV to
 * the file it names (appending a suffix per experiment id).
 */

#ifndef CACHESCOPE_BENCH_BENCH_UTIL_HH
#define CACHESCOPE_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/cascade_lake.hh"
#include "graph/gap_suite.hh"
#include "stats/table.hh"
#include "workloads/synthetic.hh"

namespace cachescope::bench {

/** Quick mode (CACHESCOPE_QUICK=1): small graphs, short windows. */
inline bool
quickMode()
{
    const char *env = std::getenv("CACHESCOPE_QUICK");
    return env != nullptr && env[0] == '1';
}

/** Graph scale used by the MPKI-fidelity experiments (E1, E3). */
inline unsigned
fidelityScale()
{
    return quickMode() ? 16 : 21;
}

/**
 * Graph scale used by the big sweep experiments (E2, E5, E7).
 *
 * Large enough that the per-vertex property arrays are an order of
 * magnitude bigger than the 1.375 MB LLC — on smaller inputs,
 * scan-resistant policies can pin a sizeable fraction of the property
 * arrays and show speedups the paper's multi-gigabyte inputs never
 * allow.
 */
inline unsigned
sweepScale()
{
    return quickMode() ? 15 : 21;
}

/** Measurement window for single-workload fidelity runs. */
inline SimConfig
fidelityConfig(const std::string &policy = "lru")
{
    return quickMode() ? cascadeLakeConfig(policy, 200'000, 1'000'000)
                       : cascadeLakeConfig(policy, 1'000'000, 10'000'000);
}

/** Measurement window for workload x policy sweeps. */
inline SimConfig
sweepConfig(const std::string &policy = "lru")
{
    return quickMode() ? cascadeLakeConfig(policy, 100'000, 500'000)
                       : cascadeLakeConfig(policy, 500'000, 5'000'000);
}

/** The GAP suite at sweep scale (12 workloads: 6 kernels x 2 inputs). */
inline std::vector<std::shared_ptr<Workload>>
gapSweepSuite()
{
    GapSuiteConfig cfg;
    cfg.scale = sweepScale();
    cfg.avgDegree = 8;
    return makeGapSuite(cfg);
}

/** The GAP suite at fidelity scale on the Kronecker input only. */
inline std::vector<std::shared_ptr<Workload>>
gapFidelitySuite()
{
    GapSuiteConfig cfg;
    cfg.scale = fidelityScale();
    cfg.avgDegree = 8;
    cfg.includeUniform = false;
    return makeGapSuite(cfg);
}

/**
 * Print @p table to stdout and, if CACHESCOPE_CSV is set, write CSV to
 * "<CACHESCOPE_CSV>.<experiment_id>.csv".
 */
inline void
emitTable(const Table &table, const std::string &experiment_id)
{
    table.printAscii(std::cout);
    const char *csv_base = std::getenv("CACHESCOPE_CSV");
    if (csv_base != nullptr && csv_base[0] != '\0') {
        const std::string path =
            std::string(csv_base) + "." + experiment_id + ".csv";
        std::ofstream out(path);
        table.printCsv(out);
        std::cout << "(csv written to " << path << ")\n";
    }
}

/** Banner for experiment binaries. */
inline void
banner(const std::string &experiment_id, const std::string &what,
       const std::string &paper_reference)
{
    std::cout << "== " << experiment_id << ": " << what << "\n"
              << "   paper reference: " << paper_reference << "\n"
              << "   mode: " << (quickMode() ? "quick" : "full") << "\n";
}

} // namespace cachescope::bench

#endif // CACHESCOPE_BENCH_BENCH_UTIL_HH
