/**
 * @file
 * Microbenchmarks (google-benchmark) for the simulator's hot paths:
 * per-access cost of each replacement policy, the cache lookup path,
 * the DRAM model, and the RNG. These are engineering benchmarks for
 * the simulator itself (simulation throughput), not paper experiments.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/cache.hh"
#include "dram/dram.hh"
#include "replacement/replacement_policy.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

/** LLC-shaped geometry for policy microbenchmarks. */
CacheGeometry
llcGeometry()
{
    return CacheGeometry{2048, 11, 64};
}

void
BM_PolicyAccess(benchmark::State &state, const std::string &name)
{
    auto policy = ReplacementPolicyFactory::create(name, llcGeometry());
    Rng rng(7);
    std::uint64_t filled = 0;
    for (auto _ : state) {
        const auto set = static_cast<std::uint32_t>(rng.nextBounded(2048));
        const Addr block = rng.nextBounded(1 << 22);
        const Pc pc = 0x400000 + 4 * rng.nextBounded(128);
        // 2:1 mix of hits to fills, roughly an LLC's steady state.
        if (filled % 3 != 2) {
            policy->update(set, static_cast<std::uint32_t>(filled % 11),
                           pc, block, AccessType::Load, true);
        } else {
            const std::uint32_t way =
                policy->findVictim(set, pc, block, AccessType::Load);
            if (way != ReplacementPolicy::kBypassWay) {
                policy->update(set, way, pc, block, AccessType::Load,
                               false);
            }
        }
        ++filled;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheAccessHit(benchmark::State &state)
{
    struct Sink : MemoryLevel
    {
        Cycle access(Addr, Pc, AccessType, Cycle now) override
        {
            return now + 100;
        }
        const std::string &levelName() const override { return name; }
        std::string name = "sink";
    } below;
    CacheConfig cfg;
    cfg.name = "bm";
    cfg.sizeBytes = 1408 * 1024;
    cfg.numWays = 11;
    Cache cache(cfg, &below);
    // Warm one block and hammer it.
    cache.access(0x1000, 1, AccessType::Load, 0);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(0x1000, 1, AccessType::Load, now++));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheAccessStreamMiss(benchmark::State &state)
{
    struct Sink : MemoryLevel
    {
        Cycle access(Addr, Pc, AccessType, Cycle now) override
        {
            return now + 100;
        }
        const std::string &levelName() const override { return name; }
        std::string name = "sink";
    } below;
    CacheConfig cfg;
    cfg.name = "bm";
    cfg.sizeBytes = 1408 * 1024;
    cfg.numWays = 11;
    Cache cache(cfg, &below);
    Addr addr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addr, 1, AccessType::Load, now++));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DramRandomAccess(benchmark::State &state)
{
    DramModel dram(DramConfig::ddr4_2933());
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr addr = rng.nextBounded(8ull << 30) & ~Addr{63};
        now = dram.read(addr, now);
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}

void
BM_RngZipf(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.nextZipf(1 << 20, 0.9));
    state.SetItemsProcessed(state.iterations());
}

} // anonymous namespace
} // namespace cachescope

int
main(int argc, char **argv)
{
    using namespace cachescope;
    for (const auto &name :
         ReplacementPolicyFactory::availablePolicies()) {
        benchmark::RegisterBenchmark(
            ("BM_PolicyAccess/" + name).c_str(),
            [name](benchmark::State &state) {
                BM_PolicyAccess(state, name);
            });
    }
    benchmark::RegisterBenchmark("BM_CacheAccessHit", BM_CacheAccessHit);
    benchmark::RegisterBenchmark("BM_CacheAccessStreamMiss",
                                 BM_CacheAccessStreamMiss);
    benchmark::RegisterBenchmark("BM_DramRandomAccess",
                                 BM_DramRandomAccess);
    benchmark::RegisterBenchmark("BM_RngNext", BM_RngNext);
    benchmark::RegisterBenchmark("BM_RngZipf", BM_RngZipf);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
