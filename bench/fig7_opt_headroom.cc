/**
 * @file
 * Experiment E7 (oracle headroom): Belady's OPT versus LRU and the
 * best online policies on GAP workloads.
 *
 * The paper's bleak outlook has two halves: online policies capture
 * nothing on graphs, and even the offline optimum has modest headroom
 * because the misses are capacity misses. This binary measures both:
 * the LLC miss reduction OPT achieves over LRU, and what fraction of
 * that (small) headroom each online policy recovers.
 */

#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("fig7", "Belady OPT headroom on GAP workloads",
                  "conclusion section: bounded headroom argument");

    GapSuiteConfig suite_cfg;
    suite_cfg.scale = bench::sweepScale();
    suite_cfg.avgDegree = 8;
    suite_cfg.includeUniform = false;
    suite_cfg.kernels = {GapKernel::Bfs, GapKernel::PageRank,
                         GapKernel::Cc, GapKernel::Sssp};
    const auto suite = makeGapSuite(suite_cfg);

    Table table({"workload", "lru_llc_misses", "opt_llc_misses",
                 "opt_miss_reduction", "hawkeye_recovered",
                 "ship_recovered"});
    bench::BenchMetrics metrics("fig7");
    for (const auto &workload : suite) {
        const SimResult lru = runOne(*workload, bench::sweepConfig("lru"));
        const SimResult opt = runBelady(*workload, bench::sweepConfig());
        const SimResult hawkeye =
            runOne(*workload, bench::sweepConfig("hawkeye"));
        const SimResult ship =
            runOne(*workload, bench::sweepConfig("ship"));
        metrics.add(lru, workload->name() + ".lru");
        metrics.add(opt, workload->name() + ".belady");
        metrics.add(hawkeye, workload->name() + ".hawkeye");
        metrics.add(ship, workload->name() + ".ship");

        const double lru_misses =
            static_cast<double>(lru.llc.demandMisses());
        const double headroom =
            lru_misses - static_cast<double>(opt.llc.demandMisses());
        auto recovered = [&](const SimResult &r) {
            if (headroom <= 0.0)
                return 0.0;
            return (lru_misses -
                    static_cast<double>(r.llc.demandMisses())) / headroom;
        };

        table.newRow();
        table.addCell(workload->name());
        table.addNumber(lru_misses, 0);
        table.addNumber(static_cast<double>(opt.llc.demandMisses()), 0);
        table.addNumber(headroom / std::max(lru_misses, 1.0), 3);
        table.addNumber(recovered(hawkeye), 3);
        table.addNumber(recovered(ship), 3);
        std::fprintf(stderr, "  %-12s done\n", workload->name().c_str());
    }

    bench::emitTable(table, "fig7");
    metrics.emit();
    return 0;
}
