/**
 * @file
 * Experiment E8 (co-run extension): how the LLC replacement policies
 * behave when a cache-hostile graph kernel and a cache-friendly tenant
 * *share* the LLC — the multi-programmed setting big-data workloads
 * actually run in.
 *
 * Grid: (GAP kernel x synthetic tenant) pairs x the paper's six
 * policies plus LRU, each co-run twice — fully shared LLC and a static
 * half/half way partition. Reports weighted speedup (sum of each
 * tenant's IPC relative to running alone), fairness (min/max relative
 * progress), and each tenant's co-run LLC MPKI. The partitioned column
 * is the interference ablation: capacity contention removed, only
 * bandwidth coupling left.
 */

#include "bench_util.hh"
#include "harness/corun.hh"
#include "harness/workload_zoo.hh"
#include "stats/summary.hh"

using namespace cachescope;

int
main()
{
    bench::banner("fig8", "shared-LLC co-run: graph kernel vs tenant",
                  "multi-programmed extension of sections III-IV");

    ZooOptions zoo;
    zoo.scale = bench::sweepScale();

    const std::vector<std::pair<std::string, std::string>> pairs = {
        {"bfs", "small_ws"},     // hostile x cache-friendly
        {"bfs", "scan_thrash"},  // hostile x streaming
        {"pr", "small_ws"},
        {"pr", "scan_thrash"},
    };
    std::vector<std::string> policies = {"lru"};
    for (const std::string &p : paperPolicies())
        policies.push_back(p);

    const SimConfig base = bench::sweepConfig("lru");
    // Half the LLC's ways to each tenant in the partitioned ablation.
    const std::uint32_t half_ways = base.hierarchy.llc.numWays / 2;

    Table table({"pair", "policy", "llc", "ipc_sum", "weighted_speedup",
                 "fairness", "gap_mpki", "tenant_mpki"});
    bench::BenchMetrics metrics("fig8");
    for (const auto &[gap_name, tenant_name] : pairs) {
        const std::string pair_id = gap_name + "+" + tenant_name;
        for (const std::string &policy : policies) {
            for (const bool partitioned : {false, true}) {
                const std::string mode =
                    partitioned ? "partitioned" : "shared";
                table.newRow();
                table.addCell(pair_id);
                table.addCell(policy);
                table.addCell(mode);
                try {
                    CorunRunOptions options;
                    options.config.base = bench::sweepConfig(policy);
                    options.config.llcWaysPerCore =
                        partitioned ? half_ways : 0;
                    options.soloBaselines = true;
                    const std::vector<CorunTenant> tenants = {
                        CorunTenant::fromWorkload(
                            makeNamedWorkload(gap_name, zoo)),
                        CorunTenant::fromWorkload(
                            makeNamedWorkload(tenant_name, zoo)),
                    };
                    auto report_or = runCorun(tenants, options);
                    if (!report_or.ok())
                        throw std::runtime_error(
                            report_or.status().message());
                    const CorunReport report = report_or.take();
                    const CorunResult &r = report.result;
                    table.addNumber(r.ipcSum(), 3);
                    table.addNumber(report.weightedSpeedup, 4);
                    table.addNumber(report.fairness, 4);
                    table.addNumber(
                        mpki(r.llcPerCore[0].demandMisses(),
                             r.cores[0].core.instructions), 2);
                    table.addNumber(
                        mpki(r.llcPerCore[1].demandMisses(),
                             r.cores[1].core.instructions), 2);
                    report.exportMetrics(
                        metrics.registry(),
                        pair_id + "." + policy + "." + mode);
                    metrics.registry().addCounter("bench.simulations");
                    std::fprintf(stderr, "  %-16s %-8s %-11s done\n",
                                 pair_id.c_str(), policy.c_str(),
                                 mode.c_str());
                } catch (const std::exception &e) {
                    // Fault isolation: one broken cell must not take
                    // down the rest of the grid.
                    for (int i = 0; i < 5; ++i)
                        table.addCell("-");
                    std::fprintf(stderr, "  %-16s %-8s %-11s FAILED: %s\n",
                                 pair_id.c_str(), policy.c_str(),
                                 mode.c_str(), e.what());
                }
            }
        }
    }

    bench::emitTable(table, "fig8");
    metrics.emit();
    return 0;
}
