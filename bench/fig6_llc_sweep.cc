/**
 * @file
 * Experiment E6 (sensitivity): LLC capacity sweep for representative
 * GAP workloads under LRU.
 *
 * The paper's diagnosis is that graph misses are *capacity* misses on
 * multi-gigabyte working sets: MPKI falls only slowly with LLC size
 * until the property arrays fit, and no realistic LLC gets there. The
 * sweep reproduces that curve at the scaled working-set sizes (here
 * the knee is reachable, demonstrating the same capacity-bound shape).
 */

#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("fig6", "LLC capacity sweep (LRU, GAP subset)",
                  "capacity-miss diagnosis of section I-D");

    // 1x .. 16x the Cascade Lake 1.375 MB slice, doubling each step.
    const std::vector<unsigned> multipliers = {1, 2, 4, 8, 16};

    GapSuiteConfig suite_cfg;
    suite_cfg.scale = bench::sweepScale();
    suite_cfg.avgDegree = 8;
    suite_cfg.includeUniform = false;
    suite_cfg.kernels = {GapKernel::Bfs, GapKernel::PageRank,
                         GapKernel::Cc};
    const auto suite = makeGapSuite(suite_cfg);

    Table table({"workload", "llc_mb", "llc_mpki", "ipc", "dram_ratio"});
    bench::BenchMetrics metrics("fig6");
    for (const auto &workload : suite) {
        for (unsigned mult : multipliers) {
            SimConfig config = bench::sweepConfig("lru");
            config.hierarchy.llc.sizeBytes =
                static_cast<std::uint64_t>(mult) * 11 * 128 * 1024;
            const SimResult r = runOne(*workload, config);
            metrics.add(r, workload->name() + ".llc_x" +
                               std::to_string(mult));
            table.newRow();
            table.addCell(workload->name());
            table.addNumber(1.375 * mult, 3);
            table.addNumber(r.mpkiLlc(), 2);
            table.addNumber(r.ipc(), 3);
            table.addNumber(r.dramServiceRatio(), 3);
            std::fprintf(stderr, "  %-12s llc=%ux done\n",
                         workload->name().c_str(), mult);
        }
    }

    bench::emitTable(table, "fig6");
    metrics.emit();
    return 0;
}
