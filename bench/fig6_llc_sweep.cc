/**
 * @file
 * Experiment E6 (sensitivity): LLC capacity sweep for representative
 * GAP workloads under LRU.
 *
 * The paper's diagnosis is that graph misses are *capacity* misses on
 * multi-gigabyte working sets: MPKI falls only slowly with LLC size
 * until the property arrays fit, and no realistic LLC gets there. The
 * sweep reproduces that curve at the scaled working-set sizes (here
 * the knee is reachable, demonstrating the same capacity-bound shape).
 *
 * Every cell also runs a second time through the two-speed engine's
 * fast-sweep configuration (functional warmup + 1/16 LLC
 * set-sampling) and the table carries the cross-check: the sampled
 * MPKI estimate, its observed relative error against the full
 * simulation, the estimator's own predicted standard error (the
 * exported llc.sampled.relative_stderr gauge), and the per-cell
 * wall-clock speedup. Read err_pct against se_pct: GAP misses are
 * heavily set-skewed (a handful of LLC sets hold the contested hub
 * property lines — the top 16 of 2048 sets carry ~20% of bfs.kron21's
 * misses at 1.375 MB), so a 1/16 subset estimate carries tens of
 * percent of *predicted* standard error at the smallest LLC sizes,
 * and the observed errors land inside ~1.5 SE of it. The estimate is
 * exact-by-restriction (the sampled run's raw counters equal the full
 * run's on the same sets — a difftest invariant), the uncertainty is
 * honest, and the capacity-bound curve shape survives sampling.
 */

#include <cmath>

#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace cachescope;

namespace {

/** Gauge lookup against the extras runOne()/result() attach. */
double
resultGauge(const SimResult &r, const std::string &name)
{
    const auto &gauges = r.extraMetrics.gauges();
    const auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
}

} // anonymous namespace

int
main()
{
    bench::banner("fig6", "LLC capacity sweep (LRU, GAP subset)",
                  "capacity-miss diagnosis of section I-D");

    // 1x .. 16x the Cascade Lake 1.375 MB slice, doubling each step.
    const std::vector<unsigned> multipliers = {1, 2, 4, 8, 16};
    constexpr std::uint32_t kSampleRate = 16;

    GapSuiteConfig suite_cfg;
    suite_cfg.scale = bench::sweepScale();
    suite_cfg.avgDegree = 8;
    suite_cfg.includeUniform = false;
    suite_cfg.kernels = {GapKernel::Bfs, GapKernel::PageRank,
                         GapKernel::Cc};
    const auto suite = makeGapSuite(suite_cfg);

    Table table({"workload", "llc_mb", "llc_mpki", "ipc", "dram_ratio",
                 "fast_mpki", "err_pct", "se_pct", "speedup"});
    bench::BenchMetrics metrics("fig6");
    for (const auto &workload : suite) {
        for (unsigned mult : multipliers) {
            SimConfig config = bench::sweepConfig("lru");
            config.hierarchy.llc.sizeBytes =
                static_cast<std::uint64_t>(mult) * 11 * 128 * 1024;
            const SimResult r = runOne(*workload, config);
            metrics.add(r, workload->name() + ".llc_x" +
                               std::to_string(mult));

            // Fast-sweep cross-check: same cell through functional
            // warmup + 1/16 set-sampling. The sampled-subset counters
            // are raw in the SimResult, so the full-stream MPKI
            // estimate is the raw figure scaled by the sampling rate.
            SimConfig fast_config = config;
            fast_config.warmupMode = WarmupMode::Functional;
            fast_config.hierarchy.llc.sampleSets = kSampleRate;
            const SimResult f = runOne(*workload, fast_config);
            metrics.add(f, workload->name() + ".llc_x" +
                               std::to_string(mult) + ".fast");
            const double full_mpki = r.mpkiLlc();
            const double fast_mpki = f.mpkiLlc() * kSampleRate;
            const double err_pct = full_mpki > 0.0
                ? 100.0 * std::fabs(fast_mpki - full_mpki) / full_mpki
                : 0.0;
            const double se_pct =
                100.0 * resultGauge(f, "llc.sampled.relative_stderr");
            const double fast_wall = resultGauge(f, "sim.wall_seconds");
            const double speedup = fast_wall > 0.0
                ? resultGauge(r, "sim.wall_seconds") / fast_wall
                : 0.0;

            table.newRow();
            table.addCell(workload->name());
            table.addNumber(1.375 * mult, 3);
            table.addNumber(full_mpki, 2);
            table.addNumber(r.ipc(), 3);
            table.addNumber(r.dramServiceRatio(), 3);
            table.addNumber(fast_mpki, 2);
            table.addNumber(err_pct, 2);
            table.addNumber(se_pct, 2);
            table.addNumber(speedup, 2);
            std::fprintf(stderr, "  %-12s llc=%ux done (err %.2f%%)\n",
                         workload->name().c_str(), mult, err_pct);
        }
    }

    bench::emitTable(table, "fig6");
    metrics.emit();
    return 0;
}
