/**
 * @file
 * Ablation A2: does hardware prefetching rescue graph workloads?
 *
 * The paper's setup (like the CRC2 kits) has no prefetcher; prefetching
 * is the natural "what about..." question for memory-bound graph
 * analytics. This ablation attaches the classic prefetchers to the L2
 * and measures GAP workloads: the streaming Offset/Neighbour Array
 * traffic prefetches well, the data-dependent Property Array traffic
 * does not, so gains are real but bounded — the irregular component of
 * the problem remains.
 */

#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("abl_prefetch", "L2 prefetchers on GAP workloads",
                  "extension beyond the paper's no-prefetch setup");

    GapSuiteConfig suite_cfg;
    suite_cfg.scale = bench::sweepScale();
    suite_cfg.avgDegree = 8;
    suite_cfg.includeUniform = false;
    suite_cfg.kernels = {GapKernel::Bfs, GapKernel::PageRank,
                         GapKernel::Cc};
    const auto suite = makeGapSuite(suite_cfg);

    std::vector<std::string> prefetchers = {"none"};
    for (const auto &name : availablePrefetchers())
        prefetchers.push_back(name);

    Table table({"workload", "prefetcher", "ipc", "speedup", "l2_mpki",
                 "pf_issued", "pf_accuracy"});
    bench::BenchMetrics metrics("abl_prefetch");
    for (const auto &workload : suite) {
        double base_ipc = 0.0;
        for (const auto &pf : prefetchers) {
            SimConfig config = bench::sweepConfig("lru");
            config.hierarchy.l2.prefetcher = pf;
            const SimResult r = runOne(*workload, config);
            metrics.add(r, workload->name() + "." + pf);
            if (pf == "none")
                base_ipc = r.ipc();
            table.newRow();
            table.addCell(workload->name());
            table.addCell(pf);
            table.addNumber(r.ipc(), 3);
            table.addNumber(base_ipc > 0 ? r.ipc() / base_ipc : 0.0, 4);
            table.addNumber(r.mpkiL2(), 2);
            table.addNumber(static_cast<double>(r.l2.prefetchesIssued),
                            0);
            table.addNumber(
                r.l2.prefetchesIssued == 0
                    ? 0.0
                    : static_cast<double>(r.l2.prefetchesUseful) /
                      static_cast<double>(r.l2.prefetchesIssued), 3);
            std::fprintf(stderr, "  %-10s %-10s done\n",
                         workload->name().c_str(), pf.c_str());
        }
    }

    bench::emitTable(table, "abl_prefetch");
    metrics.emit();
    return 0;
}
