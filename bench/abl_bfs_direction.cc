/**
 * @file
 * Ablation A5: top-down versus direction-optimizing BFS.
 *
 * The GAP reference BFS is direction-optimizing (Beamer): the wide
 * middle levels run bottom-up, sweeping every unvisited vertex and
 * probing the frontier bitmap. This changes the traffic mix — fewer
 * random parent-array writes, more sequential vertex sweeps with a
 * random bitmap probe per edge — but not the conclusion: both variants
 * are capacity-bound and policy-insensitive to the same degree.
 */

#include "bench_util.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("abl_bfs_direction",
                  "top-down vs direction-optimizing BFS",
                  "GAP reference algorithm fidelity check");

    auto graph = std::make_shared<const CsrGraph>(makeKronecker(
        bench::sweepScale(), 8, 42));
    const std::string tag = "kron" + std::to_string(bench::sweepScale());

    struct Variant
    {
        const char *label;
        bool directionOptimizing;
    };
    const std::vector<Variant> variants = {
        {"top_down", false},
        {"dir_opt", true},
    };
    const std::vector<std::string> policies = {"lru", "drrip", "hawkeye"};

    Table table({"bfs_variant", "policy", "ipc", "speedup_vs_lru",
                 "l1d_mpki", "llc_mpki", "dram_ratio"});
    bench::BenchMetrics metrics("abl_bfs_direction");
    for (const Variant &variant : variants) {
        GapKernelParams params;
        params.directionOptimizingBfs = variant.directionOptimizing;
        GapWorkload workload(GapKernel::Bfs, tag, graph, params);
        double lru_ipc = 0.0;
        for (const auto &policy : policies) {
            const SimResult r =
                runOne(workload, bench::sweepConfig(policy));
            metrics.add(r, std::string(variant.label) + "." + policy);
            if (policy == "lru")
                lru_ipc = r.ipc();
            table.newRow();
            table.addCell(variant.label);
            table.addCell(policy);
            table.addNumber(r.ipc(), 3);
            table.addNumber(lru_ipc > 0 ? r.ipc() / lru_ipc : 0.0, 4);
            table.addNumber(r.mpkiL1d(), 2);
            table.addNumber(r.mpkiLlc(), 2);
            table.addNumber(r.dramServiceRatio(), 3);
            std::fprintf(stderr, "  %-9s %-8s done\n", variant.label,
                         policy.c_str());
        }
    }

    bench::emitTable(table, "abl_bfs_direction");
    metrics.emit();
    return 0;
}
