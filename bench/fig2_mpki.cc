/**
 * @file
 * Experiment E1 (paper Fig. 2): Misses-Per-Kilo-Instruction at L1D, L2
 * and LLC for the GAP graph-processing workloads under the baseline
 * LRU LLC.
 *
 * Paper-reported means (full-size inputs): L1D 53.2, L2 44.2, LLC 41.8
 * MPKI, i.e. misses in the tens at *every* level. With LLC-scaled
 * inputs the expected reproduction is the same shape: L1D >= L2 >= LLC,
 * each tens of MPKI, with TC as the low-MPKI outlier (its intersection
 * scans are streaming, not random).
 */

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "stats/summary.hh"

using namespace cachescope;

int
main()
{
    bench::banner("fig2", "GAP MPKI across the cache hierarchy (LRU)",
                  "Fig. 2; means 53.2 / 44.2 / 41.8 MPKI");

    bench::BenchMetrics metrics("fig2");
    const auto suite = bench::gapFidelitySuite();
    const SimConfig config = bench::fidelityConfig("lru");

    Table table({"workload", "l1d_mpki", "l2_mpki", "llc_mpki", "ipc"});
    std::vector<double> l1d, l2, llc;
    for (const auto &workload : suite) {
        const SimResult r = runOne(*workload, config);
        metrics.add(r, workload->name());
        table.newRow();
        table.addCell(workload->name());
        table.addNumber(r.mpkiL1d(), 2);
        table.addNumber(r.mpkiL2(), 2);
        table.addNumber(r.mpkiLlc(), 2);
        table.addNumber(r.ipc(), 3);
        l1d.push_back(r.mpkiL1d());
        l2.push_back(r.mpkiL2());
        llc.push_back(r.mpkiLlc());
        std::fprintf(stderr, "  %-12s done\n", workload->name().c_str());
    }
    table.newRow();
    table.addCell("mean");
    table.addNumber(mean(l1d), 2);
    table.addNumber(mean(l2), 2);
    table.addNumber(mean(llc), 2);
    table.addCell("-");

    bench::emitTable(table, "fig2");
    metrics.emit();
    return 0;
}
