/**
 * @file
 * Experiment E5 (paper per-workload breakdown): speedup over LRU of
 * every evaluated policy on every GAP workload.
 *
 * Expected reproduction shape: individual GAP entries scatter tightly
 * around 1.00 — a point or two either way — with no policy helping
 * uniformly; this is the per-workload view behind Fig. 3's flat GAP
 * geomean.
 */

#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("tab2", "per-GAP-workload speedup over LRU",
                  "per-workload breakdown behind Fig. 3");

    const auto suite = bench::gapSweepSuite();
    std::vector<std::string> policies = {"lru"};
    for (const auto &p : paperPolicies())
        policies.push_back(p);

    bench::BenchMetrics metrics("tab2");
    SuiteRunner runner(bench::sweepConfig(), 0);
    const SweepReport report = runner.runChecked(suite, policies);
    metrics.add(report, "gap");
    const SweepResults &results = report.results;

    Table table({"workload", "lru_ipc", "srrip", "drrip", "ship",
                 "hawkeye", "glider", "mpppb"});
    for (const auto &workload : suite) {
        const auto &by_policy = results.at(workload->name());
        table.newRow();
        table.addCell(workload->name());
        table.addNumber(by_policy.at("lru").ipc(), 3);
        for (const auto &policy : paperPolicies()) {
            table.addNumber(by_policy.at(policy).ipc() /
                            by_policy.at("lru").ipc(), 4);
        }
    }
    table.newRow();
    table.addCell("geomean");
    table.addCell("-");
    for (const auto &policy : paperPolicies())
        table.addNumber(geomeanSpeedup(results, policy), 4);

    bench::emitTable(table, "tab2");
    metrics.emit();
    return 0;
}
