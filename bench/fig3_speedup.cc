/**
 * @file
 * Experiment E2 (paper Fig. 3): geometric-mean speedup over the LRU
 * baseline of the six evaluated LLC replacement policies, per
 * benchmark suite.
 *
 * The paper's headline: SRRIP/DRRIP/SHiP/Hawkeye/Glider/MPPPB all gain
 * on SPEC 2006 & 2017 (percent-scale geomean wins), but none of them
 * achieves meaningful speedup on the GAP graph workloads — the
 * PC-correlation machinery has nothing to learn there.
 */

#include "bench_util.hh"
#include "harness/experiment.hh"

using namespace cachescope;

int
main()
{
    bench::banner("fig3",
                  "geomean speedup over LRU per suite per policy",
                  "Fig. 3; SPEC-like suites gain, GAP stays ~1.0");

    struct SuiteSpec
    {
        std::string name;
        std::vector<std::shared_ptr<Workload>> workloads;
    };
    std::vector<SuiteSpec> suites;
    suites.push_back({"spec06-like", makeSpec06Suite()});
    suites.push_back({"spec17-like", makeSpec17Suite()});
    suites.push_back({"gap", bench::gapSweepSuite()});

    std::vector<std::string> policies = {"lru"};
    for (const auto &p : paperPolicies())
        policies.push_back(p);

    Table table({"suite", "srrip", "drrip", "ship", "hawkeye", "glider",
                 "mpppb"});
    bench::BenchMetrics metrics("fig3");
    SuiteRunner runner(bench::sweepConfig(), /*jobs=*/0);
    for (const auto &suite : suites) {
        std::fprintf(stderr, "suite %s (%zu workloads):\n",
                     suite.name.c_str(), suite.workloads.size());
        const SweepReport report =
            runner.runChecked(suite.workloads, policies);
        metrics.add(report, suite.name);
        const SweepResults &results = report.results;
        table.newRow();
        table.addCell(suite.name);
        for (const auto &policy : paperPolicies())
            table.addNumber(geomeanSpeedup(results, policy), 4);
    }

    bench::emitTable(table, "fig3");
    metrics.emit();
    return 0;
}
