/**
 * @file
 * Experiment E3 (paper section I-D scalar): the fraction of L1D demand
 * misses that fall all the way through the hierarchy to DRAM on GAP
 * workloads.
 *
 * Paper: 78.6 % — the cache hierarchy barely filters graph traffic.
 * Also reports DRAM row-hit rate and average latency, quantifying the
 * "immense pressure" claim.
 */

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "stats/summary.hh"

using namespace cachescope;

int
main()
{
    bench::banner("fig4", "fraction of L1D misses served by DRAM (GAP)",
                  "section I-D; paper reports 78.6%");

    const auto suite = bench::gapFidelitySuite();
    const SimConfig config = bench::fidelityConfig("lru");

    Table table({"workload", "l1d_misses", "dram_reads", "dram_ratio",
                 "row_hit_rate", "avg_dram_latency_cyc"});
    bench::BenchMetrics metrics("fig4");
    std::vector<double> ratios;
    std::uint64_t total_l1d = 0, total_dram = 0;
    for (const auto &workload : suite) {
        const SimResult r = runOne(*workload, config);
        metrics.add(r, workload->name());
        table.newRow();
        table.addCell(workload->name());
        table.addNumber(static_cast<double>(r.l1d.demandMisses()), 0);
        table.addNumber(static_cast<double>(r.dram.reads), 0);
        table.addNumber(r.dramServiceRatio(), 3);
        table.addNumber(r.dram.rowHitRate(), 3);
        table.addNumber(r.dram.avgLatency(), 1);
        ratios.push_back(r.dramServiceRatio());
        total_l1d += r.l1d.demandMisses();
        total_dram += r.llc.demandMisses();
        std::fprintf(stderr, "  %-12s done\n", workload->name().c_str());
    }
    table.newRow();
    table.addCell("mean");
    table.addCell("-");
    table.addCell("-");
    table.addNumber(mean(ratios), 3);
    table.addCell("-");
    table.addCell("-");
    // The paper's 78.6 % is the aggregate over all L1D misses, which
    // weights workloads by their miss volume.
    table.newRow();
    table.addCell("aggregate");
    table.addNumber(static_cast<double>(total_l1d), 0);
    table.addNumber(static_cast<double>(total_dram), 0);
    table.addNumber(total_l1d == 0
                        ? 0.0
                        : static_cast<double>(total_dram) /
                          static_cast<double>(total_l1d), 3);
    table.addCell("-");
    table.addCell("-");

    bench::emitTable(table, "fig4");
    metrics.emit();
    return 0;
}
