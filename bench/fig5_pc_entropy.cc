/**
 * @file
 * Experiment E4 (paper sections I-A / I-D argument): the PC/address
 * correlation structure of graph workloads versus SPEC-like ones.
 *
 * The paper attributes the failure of PC-indexed policies to graph
 * kernels having very few memory PCs, each mapping to an enormous
 * number of addresses ("making correlations nearly impossible to
 * establish"). This binary quantifies that: distinct memory PCs,
 * mean/max blocks touched per PC, the number of PCs covering 90 % of
 * traffic, and the Shannon entropy of the PC distribution.
 */

#include "bench_util.hh"
#include "trace/profile.hh"

using namespace cachescope;

namespace {

/** Profile @p workload's first @p budget instructions. */
PcProfileSummary
profileOf(Workload &workload, std::uint64_t budget)
{
    struct BoundedProfiler : PcProfiler
    {
        explicit BoundedProfiler(std::uint64_t budget) : budget(budget) {}
        void
        onInstruction(const TraceRecord &rec) override
        {
            PcProfiler::onInstruction(rec);
            ++consumed;
        }
        bool wantsMore() const override { return consumed < budget; }
        std::uint64_t budget;
        std::uint64_t consumed = 0;
    } profiler(budget);
    workload.run(profiler);
    return profiler.summarize();
}

} // anonymous namespace

int
main()
{
    bench::banner("fig5", "PC -> address fan-out: GAP vs SPEC-like",
                  "sections I-A/I-D: few PCs x huge fan-out on graphs");

    const std::uint64_t budget =
        bench::quickMode() ? 1'000'000 : 5'000'000;

    Table table({"workload", "mem_pcs", "mean_blocks_per_pc",
                 "max_blocks_per_pc", "pcs_for_90pct", "pc_entropy_bits"});
    bench::BenchMetrics metrics("fig5");
    auto add = [&](const std::string &name, const PcProfileSummary &s) {
        table.newRow();
        table.addCell(name);
        table.addNumber(static_cast<double>(s.distinctMemoryPcs), 0);
        table.addNumber(s.meanBlocksPerPc, 1);
        table.addNumber(static_cast<double>(s.maxBlocksPerPc), 0);
        table.addNumber(static_cast<double>(s.pcsFor90PctAccesses), 0);
        table.addNumber(s.pcEntropyBits, 2);
        MetricsRegistry &reg = metrics.registry();
        reg.setCounter(name + ".distinct_memory_pcs", s.distinctMemoryPcs);
        reg.setCounter(name + ".max_blocks_per_pc", s.maxBlocksPerPc);
        reg.setCounter(name + ".pcs_for_90pct", s.pcsFor90PctAccesses);
        reg.setGauge(name + ".mean_blocks_per_pc", s.meanBlocksPerPc);
        reg.setGauge(name + ".pc_entropy_bits", s.pcEntropyBits);
        reg.addCounter("bench.profiles");
    };

    for (const auto &workload : bench::gapFidelitySuite()) {
        add(workload->name(), profileOf(*workload, budget));
        std::fprintf(stderr, "  %-12s profiled\n",
                     workload->name().c_str());
    }
    for (const auto &workload : makeSpec06Suite()) {
        add(workload->name(), profileOf(*workload, budget));
        std::fprintf(stderr, "  %-22s profiled\n",
                     workload->name().c_str());
    }

    bench::emitTable(table, "fig5");
    metrics.emit();
    return 0;
}
