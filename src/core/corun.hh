/**
 * @file
 * Multi-core co-run simulation: N private L1/L2 + ROB timing cores fed
 * by independent instruction streams, sharing one LLC and one DRAM
 * model — the setting where a cache-hostile graph kernel and a
 * cache-friendly tenant contend for the replacement policy under study.
 *
 * Determinism contract: the arbiter is a single serial loop that always
 * steps the core whose retire clock is furthest behind, breaking ties
 * by the lowest core id. There is no thread scheduling anywhere in the
 * co-run path, so a run is bit-reproducible across repeats and
 * unaffected by any --jobs setting of an enclosing sweep.
 *
 * Statistics: the shared LLC attributes every counter to the core that
 * caused it (Cache::enableCoreAttribution), so the per-core llc slices
 * sum exactly to the shared totals by construction. Private-level stats
 * reset per core at each core's own warmup boundary; the shared LLC,
 * its slices and the DRAM model reset once, at the barrier where every
 * core has entered its measurement window. A core that finishes its
 * warmup early is held at that barrier — not stepped — until every
 * live core has warmed, so no core's measured traffic predates the
 * shared reset and every attribution slice covers exactly its core's
 * measurement window.
 */

#ifndef CACHESCOPE_CORE_CORUN_HH
#define CACHESCOPE_CORE_CORUN_HH

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hh"

namespace cachescope {

class TraceReader;

/**
 * One per-core instruction source (pull model). The arbiter owns the
 * interleaving, so co-run inputs are pulled one record at a time
 * instead of pushed like Workload::run().
 */
class CorunStream
{
  public:
    virtual ~CorunStream() = default;

    /** Pull the next record. @return false when the stream is dry. */
    virtual bool next(TraceRecord &rec) = 0;

    /** Display name of the tenant behind this stream. */
    virtual const std::string &name() const = 0;
};

/** A stream over an in-memory record vector (captured workloads). */
class VectorStream final : public CorunStream
{
  public:
    VectorStream(std::string name, std::vector<TraceRecord> records)
        : name_(std::move(name)), records_(std::move(records))
    {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    const std::string &name() const override { return name_; }

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

/** A stream over a binary trace file (memory-light replay). */
class TraceFileStream final : public CorunStream
{
  public:
    /** Open @p path; errors surface as a Status, not a crash. */
    static Expected<std::unique_ptr<TraceFileStream>>
    open(const std::string &path);

    bool next(TraceRecord &rec) override;
    const std::string &name() const override { return name_; }

    /** Non-OK once the reader hit truncation or corruption. */
    const Status &status() const;

  private:
    TraceFileStream() = default;

    std::string name_;
    std::unique_ptr<TraceReader> reader_;
};

/** Configuration of an N-core co-run. */
struct CorunConfig
{
    /**
     * Per-core template: core model, private L1I/L1D/L2, the shared
     * LLC geometry/policy and DRAM timing, warmup/measure windows and
     * the cancellation token. Every core uses the same template; only
     * the warmup may differ per core (coreWarmups).
     */
    SimConfig base;

    /**
     * Per-core warmup overrides (empty = base.warmupInstructions for
     * every core; otherwise one entry per core). Lets workload tenants
     * keep their individual warmupHint()-adjusted windows.
     */
    std::vector<InstCount> coreWarmups;

    /**
     * Static LLC way partitioning: core c may only fill ways
     * [c*K, (c+1)*K). 0 = fully shared (the default). Used as the
     * interference ablation: partitioned co-runs isolate capacity
     * contention away, leaving only bandwidth coupling.
     */
    std::uint32_t llcWaysPerCore = 0;

    /**
     * Tag each core's PCs and memory addresses with the core id (XOR
     * into bit kStreamTagShift and up) — multi-programmed semantics:
     * tenants occupy disjoint address spaces and PC-indexed LLC
     * policies (SHiP/Hawkeye/Glider/MPPPB) see per-core signatures.
     * Core 0's tag is zero, so a 1-core co-run is bit-identical to a
     * single-core run. Turning this off aliases identical tenants onto
     * the same lines and PCs (shared-memory-like semantics).
     */
    bool tagStreams = true;

    /** First address/PC bit the core-id tag is XORed into. Above every
     *  set-index and DRAM-row bit the default configs use, so tagging
     *  relabels tags/rows without skewing set distribution. */
    static constexpr unsigned kStreamTagShift = 48;

    /** Validate the template and the co-run shape for @p num_cores. */
    Status validate(std::size_t num_cores) const;
};

/** Everything a finished co-run reports. */
struct CorunResult
{
    std::string llcPolicy;
    std::string llcPolicyState;
    /**
     * Per-core results. Private levels (core/l1i/l1d/l2 and their
     * dynamic metrics) are truly per-core; the llc/dram fields hold the
     * *shared* end-of-run snapshots (which is what makes a 1-core
     * co-run's export byte-identical to a single-core run's).
     */
    std::vector<SimResult> cores;
    /** Shared-LLC statistics attributed per core; sums to `llc`. */
    std::vector<CacheStats> llcPerCore;
    CacheStats llc;
    DramStats dram;
    /** Shared-LLC policy/prefetcher internals ("llc.policy.*"). */
    MetricsRegistry extraMetrics;
    std::uint32_t llcWaysPerCore = 0;
    /** Wall seconds from run start to the all-cores-warm barrier (the
     *  whole run if every stream ended before warming). */
    double warmupWallSeconds = 0.0;
    /** Wall seconds from that barrier to the end of run() (0 if the
     *  barrier never opened). */
    double measureWallSeconds = 0.0;

    /** Sum of per-core IPCs (the raw throughput summary). */
    double ipcSum() const;

    /**
     * Export the co-run metric tree under "<prefix>.".
     *
     * With one core this emits exactly the single-core SimResult tree
     * (no core0 prefix, no corun.* summary) so downstream tooling and
     * baselines see no difference between `run` and a 1-core `corun`.
     * With N >= 2 cores: "core<i>.{core,l1i,l1d,l2}.*" private levels,
     * "core<i>.llc.*" attribution slices, "core<i>.derived.*" per-core
     * gauges, the shared "llc.*"/"dram.*" trees, and "corun.*" summary
     * metrics (num_cores, llc_ways_per_core, ipc_sum).
     */
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix = "") const;
};

/**
 * Owns the shared LLC + DRAM and one Simulator per core, and runs the
 * deterministic cycle-interleaved arbiter over N streams.
 */
class CorunSimulator
{
  public:
    CorunSimulator(const CorunConfig &config, std::size_t num_cores);

    /**
     * Drive all @p streams to completion: each core stops when its
     * stream dries up or its measurement budget is exhausted. One
     * stream per core, in core order. Throws CancelledError if the
     * config's cancellation token fires mid-run.
     */
    void run(const std::vector<CorunStream *> &streams);

    /** Snapshot the finished co-run. */
    CorunResult result() const;

    Simulator &core(std::size_t i) { return *sims_[i]; }
    std::size_t numCores() const { return sims_.size(); }
    Cache &llc() { return *llc_; }
    DramModel &dram() { return *dram_; }

    /** Wall seconds of the warmup phase of the last run(). */
    double warmupWallSeconds() const { return warmupWallSeconds_; }

    /** Wall seconds of the measurement phase of the last run(). */
    double measureWallSeconds() const { return measureWallSeconds_; }

  private:
    CorunConfig cfg;
    std::unique_ptr<DramModel> dram_;
    std::unique_ptr<DramLevel> dramLevel_;
    std::unique_ptr<Cache> llc_;
    /** The one shared-LLC profiler (base.profile.enabled), or null.
     *  Reset at the all-cores-warm barrier alongside the LLC stats, so
     *  a 1-core profiled co-run stays byte-identical to `run`. */
    std::unique_ptr<OnlineProfiler> profiler_;
    std::vector<std::unique_ptr<Simulator>> sims_;
    double warmupWallSeconds_ = 0.0;
    double measureWallSeconds_ = 0.0;
};

} // namespace cachescope

#endif // CACHESCOPE_CORE_CORUN_HH
