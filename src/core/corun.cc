/**
 * @file
 * Co-run driver implementation.
 */

#include "core/corun.hh"

#include <algorithm>

#include "stats/summary.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

namespace cachescope {

Expected<std::unique_ptr<TraceFileStream>>
TraceFileStream::open(const std::string &path)
{
    auto reader_or = TraceReader::open(path);
    if (!reader_or.ok())
        return reader_or.status();
    auto stream = std::unique_ptr<TraceFileStream>(new TraceFileStream());
    stream->reader_ = reader_or.take();
    stream->name_ = path;
    return stream;
}

bool
TraceFileStream::next(TraceRecord &rec)
{
    return reader_->next(rec);
}

const Status &
TraceFileStream::status() const
{
    return reader_->status();
}

Status
CorunConfig::validate(std::size_t num_cores) const
{
    if (num_cores == 0)
        return invalidArgumentError("corun needs at least one core");
    CS_TRY(base.validate());
    if (!coreWarmups.empty() && coreWarmups.size() != num_cores) {
        return invalidArgumentError(
            "corun: %zu warmup overrides for %zu cores",
            coreWarmups.size(), num_cores);
    }
    if (llcWaysPerCore != 0 &&
        static_cast<std::uint64_t>(llcWaysPerCore) * num_cores >
            base.hierarchy.llc.numWays) {
        return invalidArgumentError(
            "corun: %u ways/core x %zu cores exceeds the LLC's "
            "%u-way associativity",
            llcWaysPerCore, num_cores, base.hierarchy.llc.numWays);
    }
    return Status();
}

double
CorunResult::ipcSum() const
{
    double sum = 0.0;
    for (const SimResult &core : cores)
        sum += core.ipc();
    return sum;
}

void
CorunResult::exportMetrics(MetricsRegistry &metrics,
                           const std::string &prefix) const
{
    // One core: emit exactly the single-core tree (documented contract;
    // pinned by the corun-vs-run byte-identity test). The profile.*
    // subtree lives in the driver's extraMetrics — the core's own
    // snapshot has none, since a co-run core never owns the LLC — so
    // it is copied across here (set, not merge: merging the whole
    // registry would double-sum the shared llc.policy.* counters the
    // core snapshot already carries).
    if (cores.size() == 1) {
        cores[0].exportMetrics(metrics, prefix);
        const std::string p = prefix.empty() ? "" : prefix + ".";
        for (const auto &[path, value] : extraMetrics.counters()) {
            if (path.rfind("profile.", 0) == 0)
                metrics.setCounter(p + path, value);
        }
        for (const auto &[path, value] : extraMetrics.gauges()) {
            if (path.rfind("profile.", 0) == 0)
                metrics.setGauge(p + path, value);
        }
        return;
    }

    const std::string p = prefix.empty() ? "" : prefix + ".";
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const SimResult &s = cores[i];
        const CacheStats &slice = llcPerCore[i];
        const std::string cp = p + "core" + std::to_string(i);
        s.core.exportMetrics(metrics, cp + ".core");
        s.l1i.exportMetrics(metrics, cp + ".l1i");
        s.l1d.exportMetrics(metrics, cp + ".l1d");
        s.l2.exportMetrics(metrics, cp + ".l2");
        slice.exportMetrics(metrics, cp + ".llc");
        metrics.setGauge(cp + ".derived.ipc", s.ipc());
        metrics.setGauge(cp + ".derived.mpki_l1d", s.mpkiL1d());
        metrics.setGauge(cp + ".derived.mpki_l2", s.mpkiL2());
        metrics.setGauge(cp + ".derived.mpki_llc",
                         mpki(slice.demandMisses(), s.core.instructions));
        // Private dynamic metrics (l1*/l2 policy and prefetcher
        // internals). The SimResult snapshots also carry the shared
        // LLC's dynamic tree — identical in every core — which is
        // exported once at the top level instead.
        for (const auto &[path, value] : s.extraMetrics.counters()) {
            if (path.rfind("llc.", 0) != 0)
                metrics.setCounter(cp + "." + path, value);
        }
        for (const auto &[path, value] : s.extraMetrics.gauges()) {
            if (path.rfind("llc.", 0) != 0)
                metrics.setGauge(cp + "." + path, value);
        }
        for (const auto &[path, snap] : s.extraMetrics.histograms()) {
            if (path.rfind("llc.", 0) != 0)
                metrics.setHistogram(cp + "." + path, snap);
        }
    }
    llc.exportMetrics(metrics, p + "llc");
    dram.exportMetrics(metrics, p + "dram");
    metrics.merge(extraMetrics, prefix);
    metrics.setCounter(p + "corun.num_cores", cores.size());
    metrics.setCounter(p + "corun.llc_ways_per_core", llcWaysPerCore);
    metrics.setGauge(p + "corun.ipc_sum", ipcSum());
}

CorunSimulator::CorunSimulator(const CorunConfig &config,
                               std::size_t num_cores)
    : cfg(config)
{
    CS_ASSERT(num_cores > 0, "corun needs at least one core");
    CS_ASSERT(cfg.coreWarmups.empty() ||
                  cfg.coreWarmups.size() == num_cores,
              "per-core warmups must match the core count");
    dram_ = std::make_unique<DramModel>(cfg.base.hierarchy.dram);
    dramLevel_ = std::make_unique<DramLevel>(*dram_);
    llc_ = std::make_unique<Cache>(cfg.base.hierarchy.llc,
                                   dramLevel_.get());
    llc_->enableCoreAttribution(static_cast<unsigned>(num_cores));
    if (cfg.llcWaysPerCore != 0)
        llc_->setWayPartition(cfg.llcWaysPerCore);
    // Functional warmup: the shared LLC's flag belongs to the driver,
    // not to any one core's boundary — it stays on until the
    // all-cores-warm barrier in run() (held early-warm cores are not
    // stepped, so no measured traffic can predate the clear).
    if (cfg.base.warmupMode == WarmupMode::Functional)
        llc_->setFunctionalMode(true);
    if (cfg.base.profile.enabled) {
        // One profiler on the shared LLC, observing the merged demand
        // stream of every tenant (per-core streams are distinguishable
        // by their tagged PCs when tagStreams is on). The per-core
        // Simulators see a non-owning hierarchy and attach nothing.
        profiler_ = std::make_unique<OnlineProfiler>(
            cfg.base.profile, cfg.base.hierarchy.llc.numSets());
        llc_->setEventHook(
            [p = profiler_.get()](const Cache::AccessEvent &e) {
                if (e.type == AccessType::Load ||
                    e.type == AccessType::Store) {
                    p->onAccess(e.set, e.block, e.pc, e.hit);
                }
            });
    }
    sims_.reserve(num_cores);
    for (std::size_t i = 0; i < num_cores; ++i) {
        SimConfig per_core = cfg.base;
        if (!cfg.coreWarmups.empty())
            per_core.warmupInstructions = cfg.coreWarmups[i];
        sims_.push_back(std::make_unique<Simulator>(per_core, llc_.get(),
                                                    dram_.get()));
    }
}

void
CorunSimulator::run(const std::vector<CorunStream *> &streams)
{
    CS_ASSERT(streams.size() == sims_.size(), "one stream per core");
    const std::size_t n = sims_.size();
    const auto run_start = std::chrono::steady_clock::now();
    auto elapsed = [run_start]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - run_start)
            .count();
    };

    // One prefetched record per core, so end-of-stream is known before
    // the core is considered for arbitration.
    std::vector<TraceRecord> pending(n);
    std::vector<char> alive(n, 0);
    std::size_t live = 0;
    for (std::size_t i = 0; i < n; ++i) {
        CS_ASSERT(streams[i] != nullptr, "corun stream may not be null");
        if (streams[i]->next(pending[i])) {
            alive[i] = 1;
            ++live;
        }
    }

    bool shared_reset = false;
    while (live > 0) {
        // The all-cores-warm barrier. A core that has consumed its own
        // warmup is *held* (not stepped) until every live core has;
        // the shared levels then reset once and all cores release.
        // Holding guarantees no core's measured traffic predates the
        // reset, so each per-core attribution slice covers exactly
        // that core's measurement window — and a fast tenant cannot
        // burn its whole budget before a slow one warms up.
        // inMeasurement() turns true on the exact call whose start
        // would reset a single-core run's statistics, so resetting
        // here (before stepping) keeps a 1-core co-run byte-identical
        // to `run`. If every live stream ends before its warmup the
        // shared statistics are never reset (matching single-core
        // semantics for too-short streams).
        if (!shared_reset) {
            bool all_warm = true;
            for (std::size_t i = 0; i < n; ++i) {
                if (alive[i] && !sims_[i]->inMeasurement()) {
                    all_warm = false;
                    break;
                }
            }
            if (all_warm) {
                // End of the (possibly functional) warmup phase: the
                // timed path owns the shared LLC from here on.
                llc_->setFunctionalMode(false);
                llc_->resetStats();
                dram_->resetStats();
                if (profiler_)
                    profiler_->reset();
                shared_reset = true;
                warmupWallSeconds_ = elapsed();
            }
        }

        // Deterministic arbitration: the core whose retire clock is
        // furthest behind goes next; ties break to the lowest core id
        // (the scan visits cores in id order and takes strictly-older
        // clocks only). Serial by construction — bit-reproducible and
        // independent of any --jobs setting. Warm cores are skipped
        // until the barrier opens; at least one live core is always
        // steppable, because an all-warm live set opens the barrier
        // above before arbitration runs.
        std::size_t pick = n;
        Cycle best = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!alive[i])
                continue;
            if (!shared_reset && sims_[i]->inMeasurement())
                continue;
            const Cycle c = sims_[i]->core().currentCycle();
            if (pick == n || c < best) {
                pick = i;
                best = c;
            }
        }
        CS_ASSERT(pick < n, "co-run arbiter found no steppable core");

        llc_->setActiveCore(static_cast<unsigned>(pick));
        TraceRecord rec = pending[pick];
        if (cfg.tagStreams && pick != 0) {
            const Addr tag = static_cast<Addr>(pick)
                             << CorunConfig::kStreamTagShift;
            rec.pc ^= tag;
            if (rec.isMemory())
                rec.addr ^= tag;
        }
        sims_[pick]->onInstruction(rec);

        if (!sims_[pick]->wantsMore() ||
            !streams[pick]->next(pending[pick])) {
            alive[pick] = 0;
            --live;
        }
    }
    // Every live stream ended before its warmup: the whole run was
    // warmup (matching single-core too-short-trace semantics).
    if (!shared_reset) {
        warmupWallSeconds_ = elapsed();
        measureWallSeconds_ = 0.0;
    } else {
        measureWallSeconds_ = elapsed() - warmupWallSeconds_;
    }
}

CorunResult
CorunSimulator::result() const
{
    CorunResult r;
    r.llcPolicy = cfg.base.hierarchy.llc.replacement;
    r.llcPolicyState = llc_->policy().debugState();
    r.llc = llc_->stats();
    r.dram = dram_->stats();
    r.llcWaysPerCore = cfg.llcWaysPerCore;
    llc_->exportDynamicMetrics(r.extraMetrics, "llc");
    if (profiler_)
        profiler_->exportMetrics(r.extraMetrics, "profile");
    r.warmupWallSeconds = warmupWallSeconds_;
    r.measureWallSeconds = measureWallSeconds_;
    for (std::size_t i = 0; i < sims_.size(); ++i) {
        r.cores.push_back(sims_[i]->result());
        // Per-core warmup wall time (this core's own boundary), so the
        // speedup of functional warmup is observable per tenant.
        r.cores.back().extraMetrics.setGauge(
            "sim.warmup_wall_seconds", sims_[i]->warmupWallSeconds());
        r.llcPerCore.push_back(
            llc_->coreStats(static_cast<unsigned>(i)));
    }
    return r;
}

} // namespace cachescope
