/**
 * @file
 * Hierarchy wiring.
 */

#include "core/hierarchy.hh"

#include "util/logging.hh"

namespace cachescope {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
{
    build(config, nullptr);
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               std::unique_ptr<ReplacementPolicy> llc_policy)
{
    build(config, std::move(llc_policy));
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               Cache *shared_llc, DramModel *shared_dram)
{
    CS_ASSERT(shared_llc != nullptr && shared_dram != nullptr,
              "shared hierarchy needs an LLC and a DRAM model");
    llcView = shared_llc;
    dramView = shared_dram;
    l2Cache = std::make_unique<Cache>(config.l2, shared_llc);
    l1iCache = std::make_unique<Cache>(config.l1i, l2Cache.get());
    l1dCache = std::make_unique<Cache>(config.l1d, l2Cache.get());
}

void
CacheHierarchy::build(const HierarchyConfig &config,
                      std::unique_ptr<ReplacementPolicy> llc_policy)
{
    dramModel = std::make_unique<DramModel>(config.dram);
    dramLevel = std::make_unique<DramLevel>(*dramModel);
    if (llc_policy) {
        llcCache = std::make_unique<Cache>(config.llc, dramLevel.get(),
                                           std::move(llc_policy));
    } else {
        llcCache = std::make_unique<Cache>(config.llc, dramLevel.get());
    }
    l2Cache = std::make_unique<Cache>(config.l2, llcCache.get());
    l1iCache = std::make_unique<Cache>(config.l1i, l2Cache.get());
    l1dCache = std::make_unique<Cache>(config.l1d, l2Cache.get());
    llcView = llcCache.get();
    dramView = dramModel.get();
}

void
CacheHierarchy::resetStats()
{
    l1iCache->resetStats();
    l1dCache->resetStats();
    l2Cache->resetStats();
    if (llcCache)
        llcCache->resetStats();
    if (dramModel)
        dramModel->resetStats();
}

} // namespace cachescope
