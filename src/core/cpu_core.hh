/**
 * @file
 * The CPU timing model.
 *
 * A ROB-limit out-of-order model in the spirit of trace-driven limit
 * studies: instructions dispatch in order at a bounded width, each gets
 * a completion cycle (memory ops from the hierarchy, everything else a
 * fixed latency), and retirement is in-order and width-limited. The ROB
 * bounds how far dispatch may run ahead of retirement, which is what
 * creates memory-level parallelism: independent misses issued inside
 * the ROB window overlap in the DRAM model.
 *
 * Stores retire through a store buffer (their misses update cache state
 * and bandwidth but do not stall retirement), loads stall retirement
 * until data returns — the first-order behaviour that makes LLC
 * replacement quality visible in IPC.
 */

#ifndef CACHESCOPE_CORE_CPU_CORE_HH
#define CACHESCOPE_CORE_CPU_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/hierarchy.hh"
#include "trace/record.hh"

namespace cachescope {

class MetricsRegistry;

/** Core parameters (defaults: Cascade Lake-class). */
struct CoreConfig
{
    std::uint32_t robSize = 352;
    std::uint32_t dispatchWidth = 4;
    std::uint32_t retireWidth = 4;
    Cycle aluLatency = 1;
    Cycle branchLatency = 1;
    /** Model instruction fetches through the L1I. */
    bool simulateFetch = true;
    /**
     * Maximum in-flight demand misses (L1D fill buffers / MSHRs).
     * Bounds memory-level parallelism: a load that misses while all
     * MSHRs are busy waits for the earliest one to free. Cascade
     * Lake-class cores have 10-12 L1D fill buffers; 12 is the default.
     */
    std::uint32_t maxOutstandingMisses = 12;
};

/** Counters exported by the core. */
struct CoreStats
{
    InstCount instructions = 0;
    InstCount loads = 0;
    InstCount stores = 0;
    InstCount branches = 0;
    Cycle cycles = 0;

    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions) /
              static_cast<double>(cycles);
    }

    void reset(Cycle at_cycle);

    /** Register every counter under "<prefix>." in @p metrics. */
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix) const;

    /** Cycle at which the current measurement window started. */
    Cycle windowStart = 0;
};

/**
 * The core consumes TraceRecords and drives the hierarchy.
 */
class CpuCore : public InstructionSink
{
  public:
    CpuCore(const CoreConfig &config, CacheHierarchy &hierarchy);

    void onInstruction(const TraceRecord &rec) override;

    /**
     * Functional (timing-free) step: drive the hierarchy with this
     * instruction's architectural accesses — one L1I fetch per new
     * fetch block and the load/store data access — without the
     * dispatch/ROB/MSHR/retire machinery. Cache tags, replacement
     * metadata and prefetcher state evolve exactly as under
     * onInstruction(); no cycle advances and no MSHR is occupied.
     * The fetch-block filter state is shared with the timed path, so
     * switching modes at the warmup boundary is seamless. Used by the
     * simulator's functional warmup mode.
     */
    void onInstructionFunctional(const TraceRecord &rec);

    const CoreStats &stats() const { return stats_; }
    const CoreConfig &config() const { return cfg; }

    /** @return the retire cycle of the most recent instruction. */
    Cycle currentCycle() const { return lastRetire; }

    /**
     * Start a fresh measurement window: zero the instruction counters
     * and measure cycles from the current point. Pipeline and cache
     * state are preserved (that is the whole point of warmup).
     */
    void resetStats();

  private:
    CoreConfig cfg;
    CacheHierarchy &hier;
    CoreStats stats_;

    /** Retire cycles of the last robSize instructions (ring). */
    std::vector<Cycle> robRetire;
    std::uint64_t seq = 0; ///< instructions dispatched so far (global)

    Cycle dispatchCycle = 0;      ///< cycle of the current dispatch group
    std::uint32_t dispatched = 0; ///< instructions in that group
    Cycle lastRetire = 0;
    std::uint32_t retiredInCycle = 0;
    Pc lastFetchBlock = kInvalidAddr;
    Cycle fetchReady = 0;

    /** Hit latencies cached at construction (config is immutable). */
    Cycle l1iHitLatency_ = 0;
    Cycle l1dHitLatency_ = 0;

    /**
     * Reserve an MSHR for a memory access issued at @p at, returning
     * the cycle the access may actually start (later than @p at when
     * all MSHRs are busy). Call completeMshr() with the completion
     * cycle if the access turned out to be a miss.
     */
    Cycle acquireMshr(Cycle at);
    void completeMshr(Cycle done);

    /** Completion cycles of in-flight misses (size <= max misses). */
    std::vector<Cycle> mshrBusyUntil;
};

} // namespace cachescope

#endif // CACHESCOPE_CORE_CPU_CORE_HH
