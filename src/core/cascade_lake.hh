/**
 * @file
 * Factory for the paper's simulated machine: a single Cascade Lake
 * core with 32 KB L1I/L1D, 1 MB L2, 1.375 MB LLC and 8 GB DDR4-2933.
 */

#ifndef CACHESCOPE_CORE_CASCADE_LAKE_HH
#define CACHESCOPE_CORE_CASCADE_LAKE_HH

#include <string>

#include "core/simulator.hh"

namespace cachescope {

/**
 * @return the paper's experimental setup, with the LLC running
 * @p llc_policy and standard warmup/measurement windows.
 *
 * @param llc_policy replacement policy name for the LLC.
 * @param warmup warmup instructions (default 1M).
 * @param measure measured instructions (default 10M; 0 = whole trace).
 */
SimConfig cascadeLakeConfig(const std::string &llc_policy = "lru",
                            InstCount warmup = 1'000'000,
                            InstCount measure = 10'000'000);

} // namespace cachescope

#endif // CACHESCOPE_CORE_CASCADE_LAKE_HH
