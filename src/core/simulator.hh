/**
 * @file
 * The top-level simulation driver: core + hierarchy behind an
 * InstructionSink, with ChampSim-style warmup and measurement windows.
 */

#ifndef CACHESCOPE_CORE_SIMULATOR_HH
#define CACHESCOPE_CORE_SIMULATOR_HH

#include <chrono>
#include <memory>
#include <string>

#include "core/cpu_core.hh"
#include "core/hierarchy.hh"
#include "profile/online_profiler.hh"
#include "stats/metrics.hh"
#include "trace/record.hh"
#include "util/cancel.hh"
#include "util/status.hh"

namespace cachescope {

/**
 * How the warmup window is simulated.
 *
 * Timed (the default) drives warmup through the full ROB/MSHR core
 * model and DRAM bank queues, exactly like measurement. Functional
 * bypasses all timing state until inMeasurement(): instructions skip
 * the issue/retire loop and the hierarchy is driven with
 * architectural-state-only accesses — tags, replacement metadata,
 * predictor training and prefetcher state update exactly as in timed
 * mode, while DRAM is skipped entirely. The measured window always
 * runs the sealed timed path; the only fidelity loss is that timing
 * state (ROB, MSHRs, DRAM bank queues) starts cold at the boundary.
 * Cache and core counters over the measured window are bit-identical
 * between the two modes.
 */
enum class WarmupMode : std::uint8_t
{
    Timed = 0,
    Functional = 1,
};

/** Full simulation configuration. */
struct SimConfig
{
    CoreConfig core;
    HierarchyConfig hierarchy;
    /** Instructions consumed before statistics start counting. */
    InstCount warmupInstructions = 0;
    /** Measured instructions after warmup; 0 = until the trace ends. */
    InstCount measureInstructions = 0;
    /** Fast-path selector for the warmup window (default: timed). */
    WarmupMode warmupMode = WarmupMode::Timed;
    /**
     * Online PC/address-correlation profiler attached to the LLC's
     * demand stream (off by default; zero hot-path cost when off
     * beyond the existing hook guard). In a co-run, the shared-LLC
     * owner attaches one profiler; the per-core simulators skip it.
     */
    ProfileConfig profile;
    /**
     * Cooperative-cancellation token (not owned; may be null). The
     * instruction loop polls it every kCancelPollInterval instructions
     * and unwinds with CancelledError once it fires — this is how
     * --cell-timeout-s / --deadline-s / ^C reap a running simulation.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Validate every cache level's geometry plus its replacement-policy
     * and prefetcher names, and reject a warmup + measurement window
     * that overflows the instruction counter. Run this on
     * user-assembled configurations before constructing a Simulator:
     * construction fatal()s on the same conditions, whereas validate()
     * reports them recoverably.
     */
    Status validate() const;
};

/** Everything a finished simulation reports. */
struct SimResult
{
    std::string llcPolicy;
    /** Snapshot of the LLC policy's learned state (may be empty). */
    std::string llcPolicyState;
    CoreStats core;
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;
    DramStats dram;
    /**
     * Dynamic per-component state metrics (replacement-policy and
     * prefetcher internals) captured by Simulator::result(); already
     * prefixed by cache level ("llc.policy.psel", ...).
     */
    MetricsRegistry extraMetrics;

    double ipc() const { return core.ipc(); }
    /** Demand MPKI at a given level over the measured window. */
    double mpkiL1d() const;
    double mpkiL2() const;
    double mpkiLlc() const;
    /** Fraction of L1D demand misses ultimately served by DRAM. */
    double dramServiceRatio() const;

    /**
     * Register the full statistics tree — core, every cache level,
     * DRAM, derived gauges (ipc, mpki_*, dram_service_ratio), and
     * extraMetrics — under "<prefix>." in @p metrics ("" = top level).
     */
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix = "") const;
};

/**
 * Drives TraceRecords through a core and hierarchy.
 *
 * Usage: construct, push a workload through it (the workload is the
 * producer), then read result(). wantsMore() turns false once the
 * measurement budget is consumed so producers can stop early.
 */
class Simulator : public InstructionSink
{
  public:
    /**
     * Instructions between cancellation/failpoint polls in the main
     * loop. Power of two so the check is one mask + branch; small
     * enough that a 1-second timeout is observed within microseconds
     * of simulated work.
     */
    static constexpr InstCount kCancelPollInterval = 16384;

    explicit Simulator(const SimConfig &config);

    /** Construct with an injected LLC policy instance (Belady). */
    Simulator(const SimConfig &config,
              std::unique_ptr<ReplacementPolicy> llc_policy);

    /**
     * Construct one core of a multi-core co-run: private L1/L2 over an
     * LLC and DRAM owned by the co-run driver (neither pointer owned;
     * config.hierarchy.llc/.dram are ignored). The warmup reset then
     * covers the private levels only — the driver resets the shared
     * ones at its all-cores-warm barrier.
     */
    Simulator(const SimConfig &config, Cache *shared_llc,
              DramModel *shared_dram);

    void onInstruction(const TraceRecord &rec) override;
    bool wantsMore() const override { return !budgetExhausted; }

    /** @return true once the warmup window has been consumed. */
    bool inMeasurement() const { return consumed >= cfg.warmupInstructions; }

    InstCount instructionsConsumed() const { return consumed; }

    CacheHierarchy &hierarchy() { return hier; }
    CpuCore &core() { return cpu; }

    /** Snapshot the statistics of the measured window. */
    SimResult result() const;

    /** The attached LLC profiler, or null (off, or co-run core). */
    const OnlineProfiler *profiler() const { return profiler_.get(); }

    /**
     * Keep the functional fast path active for the whole run instead
     * of switching to the timed path at the warmup boundary. Used for
     * runs whose output is timing-independent — Belady's first pass
     * only records the LLC demand stream, which the functional path
     * reproduces exactly. Timing results (cycles, IPC, DRAM stats) are
     * meaningless after this call.
     */
    void forceFunctional();

    /**
     * Wall seconds spent before the warmup boundary (from the first
     * instruction to the boundary; everything so far if the boundary
     * has not been crossed). 0 before the first instruction.
     */
    double warmupWallSeconds() const;

    /** Wall seconds since the warmup boundary (0 until crossed). */
    double measureWallSeconds() const;

  private:
    /** Attach the profiler to the owned LLC when cfg.profile asks. */
    void maybeAttachProfiler();

    /** Arm the functional path when the config asks for it (ctors). */
    void beginFunctionalWarmup();

    SimConfig cfg;
    CacheHierarchy hier;
    CpuCore cpu;
    std::unique_ptr<OnlineProfiler> profiler_;
    InstCount consumed = 0;
    bool warmupDone = false;
    bool budgetExhausted = false;
    /** True while instructions take the functional (timing-free) path. */
    bool functional_ = false;
    /** forceFunctional(): never hand over to the timed path. */
    bool forcedFunctional_ = false;
    std::chrono::steady_clock::time_point firstInstructionAt_{};
    std::chrono::steady_clock::time_point warmupEndedAt_{};
    bool sawInstruction_ = false;
};

} // namespace cachescope

#endif // CACHESCOPE_CORE_SIMULATOR_HH
