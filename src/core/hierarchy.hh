/**
 * @file
 * The full memory hierarchy: L1I + L1D over a unified L2 over the LLC
 * over DDR4, matching the paper's single-core Cascade Lake setup.
 */

#ifndef CACHESCOPE_CORE_HIERARCHY_HH
#define CACHESCOPE_CORE_HIERARCHY_HH

#include <memory>

#include "core/cache.hh"
#include "dram/dram.hh"

namespace cachescope {

/** Configuration of the whole hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    CacheConfig llc;
    DramConfig dram;
};

/**
 * Owns and wires all levels. The replacement policy under study applies
 * to the LLC (upper levels stay at LRU, the paper's methodology); pass
 * a non-default @p llc_policy name via the config, or inject an
 * instance (Belady) with the second constructor.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Inject a pre-built LLC policy (used for the OPT oracle). */
    CacheHierarchy(const HierarchyConfig &config,
                   std::unique_ptr<ReplacementPolicy> llc_policy);

    /**
     * Build only this core's private levels (L1I/L1D/L2) over an LLC
     * and DRAM owned elsewhere — the multi-core co-run arrangement,
     * where N private hierarchies share one LLC. Neither pointer is
     * owned; both must outlive this hierarchy. resetStats() resets the
     * private levels only (the co-run driver resets the shared ones at
     * its own warmup barrier).
     */
    CacheHierarchy(const HierarchyConfig &config, Cache *shared_llc,
                   DramModel *shared_dram);

    // The three core-facing entry points are inline direct calls:
    // Cache is final, so these devirtualize and the whole fixed
    // L1->L2->LLC->DRAM chain below them runs without a virtual hop.

    /** Data read issued by the core. @return data-ready cycle. */
    Cycle
    load(Addr addr, Pc pc, Cycle now)
    {
        return l1dCache->access(addr, pc, AccessType::Load, now);
    }

    /** Data write issued by the core. @return completion cycle. */
    Cycle
    store(Addr addr, Pc pc, Cycle now)
    {
        return l1dCache->access(addr, pc, AccessType::Store, now);
    }

    /** Instruction fetch. @return fetch-complete cycle. */
    Cycle
    fetch(Pc pc, Cycle now)
    {
        return l1iCache->access(pc, pc, AccessType::Load, now);
    }

    Cache &l1i() { return *l1iCache; }
    Cache &l1d() { return *l1dCache; }
    Cache &l2() { return *l2Cache; }
    Cache &llc() { return *llcView; }
    DramModel &dram() { return *dramView; }
    const Cache &l1i() const { return *l1iCache; }
    const Cache &l1d() const { return *l1dCache; }
    const Cache &l2() const { return *l2Cache; }
    const Cache &llc() const { return *llcView; }
    const DramModel &dram() const { return *dramView; }

    /** @return true when the LLC and DRAM belong to this hierarchy. */
    bool ownsSharedLevels() const { return llcCache != nullptr; }

    /**
     * Reset statistics on every owned level (state is preserved). In
     * the shared-LLC arrangement the LLC and DRAM are skipped — they
     * aggregate traffic from every core, so only their owner (the
     * co-run driver) may reset them.
     */
    void resetStats();

    /**
     * Toggle functional (timing-free) warmup on the DRAM-adjacent
     * cache: while on, LLC misses skip the DRAM bank queues and return
     * immediately; every architectural update (tags, replacement
     * metadata, prefetcher and predictor state) proceeds exactly as in
     * timed mode. In the shared-LLC arrangement this is a no-op — the
     * LLC belongs to the co-run driver, which owns the flag and clears
     * it at its all-cores-warm barrier.
     */
    void
    setFunctionalMode(bool on)
    {
        if (llcCache)
            llcCache->setFunctionalMode(on);
    }

  private:
    void build(const HierarchyConfig &config,
               std::unique_ptr<ReplacementPolicy> llc_policy);

    std::unique_ptr<DramModel> dramModel;
    std::unique_ptr<DramLevel> dramLevel;
    std::unique_ptr<Cache> llcCache;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1iCache;
    std::unique_ptr<Cache> l1dCache;
    /** The LLC/DRAM this hierarchy uses: owned above, or shared. */
    Cache *llcView = nullptr;
    DramModel *dramView = nullptr;
};

} // namespace cachescope

#endif // CACHESCOPE_CORE_HIERARCHY_HH
