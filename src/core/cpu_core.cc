/**
 * @file
 * CPU timing model implementation.
 */

#include "core/cpu_core.hh"

#include <algorithm>

#include "stats/metrics.hh"
#include "util/logging.hh"

namespace cachescope {

void
CoreStats::reset(Cycle at_cycle)
{
    instructions = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    cycles = 0;
    windowStart = at_cycle;
}

void
CoreStats::exportMetrics(MetricsRegistry &metrics,
                         const std::string &prefix) const
{
    const std::string p = prefix.empty() ? "" : prefix + ".";
    metrics.setCounter(p + "instructions", instructions);
    metrics.setCounter(p + "loads", loads);
    metrics.setCounter(p + "stores", stores);
    metrics.setCounter(p + "branches", branches);
    metrics.setCounter(p + "cycles", cycles);
    if (cycles > 0)
        metrics.setGauge(p + "ipc", ipc());
}

CpuCore::CpuCore(const CoreConfig &config, CacheHierarchy &hierarchy)
    : cfg(config), hier(hierarchy), robRetire(config.robSize, 0),
      l1iHitLatency_(hierarchy.l1i().config().hitLatency),
      l1dHitLatency_(hierarchy.l1d().config().hitLatency)
{
    CS_ASSERT(cfg.robSize > 0, "ROB must have at least one entry");
    CS_ASSERT(cfg.dispatchWidth > 0, "dispatch width must be non-zero");
    CS_ASSERT(cfg.retireWidth > 0, "retire width must be non-zero");
    CS_ASSERT(cfg.maxOutstandingMisses > 0, "need at least one MSHR");
    mshrBusyUntil.reserve(cfg.maxOutstandingMisses);
}

Cycle
CpuCore::acquireMshr(Cycle at)
{
    // Retire MSHRs whose miss already completed.
    std::erase_if(mshrBusyUntil, [at](Cycle c) { return c <= at; });
    if (mshrBusyUntil.size() < cfg.maxOutstandingMisses)
        return at;
    // All busy: wait for the earliest completion and take its slot.
    auto earliest = std::min_element(mshrBusyUntil.begin(),
                                     mshrBusyUntil.end());
    const Cycle free_at = *earliest;
    mshrBusyUntil.erase(earliest);
    return std::max(at, free_at);
}

void
CpuCore::completeMshr(Cycle done)
{
    mshrBusyUntil.push_back(done);
}

void
CpuCore::resetStats()
{
    stats_.reset(lastRetire);
}

void
CpuCore::onInstructionFunctional(const TraceRecord &rec)
{
    // Same architectural access sequence as onInstruction() — the L1I
    // fetch-block filter and the L1D data access — issued at the
    // current dispatch cycle with all timing results discarded. The
    // hierarchy sees byte-identical (addr, pc, type) streams in both
    // modes, so every cache counter over a later measured window is
    // bit-identical regardless of which mode warmed up.
    if (cfg.simulateFetch) {
        const Pc block = rec.pc >> 6;
        if (block != lastFetchBlock) {
            hier.fetch(rec.pc, dispatchCycle);
            lastFetchBlock = block;
        }
    }
    switch (rec.kind) {
      case InstKind::Load:
        hier.load(rec.addr, rec.pc, dispatchCycle);
        ++stats_.loads;
        break;
      case InstKind::Store:
        hier.store(rec.addr, rec.pc, dispatchCycle);
        ++stats_.stores;
        break;
      case InstKind::Branch:
        ++stats_.branches;
        break;
      case InstKind::Alu:
      default:
        break;
    }
    ++stats_.instructions;
}

void
CpuCore::onInstruction(const TraceRecord &rec)
{
    // --- Dispatch ------------------------------------------------------
    // Width-limited: a full dispatch group pushes us to the next cycle.
    if (dispatched >= cfg.dispatchWidth) {
        ++dispatchCycle;
        dispatched = 0;
    }

    // Instruction fetch: one L1I access per new fetch block. The
    // pipelined frontend hides L1I hit latency; only misses (fetches
    // slower than an L1I hit) stall dispatch until the line arrives.
    if (cfg.simulateFetch) {
        const Pc block = rec.pc >> 6;
        if (block != lastFetchBlock) {
            const Cycle fetch_done = hier.fetch(rec.pc, dispatchCycle);
            const Cycle hit_cost = l1iHitLatency_;
            fetchReady = fetch_done > dispatchCycle + hit_cost
                ? fetch_done : dispatchCycle;
            lastFetchBlock = block;
        }
    }

    // The ROB bounds run-ahead: this instruction reuses the slot of the
    // instruction robSize older, so it cannot dispatch before that one
    // retired.
    const Cycle rob_free =
        seq >= cfg.robSize ? robRetire[seq % cfg.robSize] : 0;
    const Cycle ready = std::max({dispatchCycle, rob_free, fetchReady});
    if (ready > dispatchCycle) {
        dispatchCycle = ready;
        dispatched = 0;
    }
    ++dispatched;

    // --- Execute -------------------------------------------------------
    // Memory ops are admitted to the memory unit before they touch the
    // hierarchy: when all MSHRs are busy, the access waits for the
    // earliest in-flight miss and is *issued* at that later cycle.
    // Gating issue (not just completion) caps the core's run-ahead into
    // the shared levels at maxOutstandingMisses accesses — without it a
    // miss storm stamps up to robSize accesses into the DRAM bank
    // queues at once, pushing the bank-ready frontier thousands of
    // cycles past the retire clock. A co-run partner then pays that
    // whole frontier on its first access to the same bank, which is how
    // one core starves the other.
    Cycle done;
    const Cycle l1d_hit = l1dHitLatency_;
    switch (rec.kind) {
      case InstKind::Load: {
        const Cycle start = acquireMshr(dispatchCycle);
        done = hier.load(rec.addr, rec.pc, start);
        if (done > start + l1d_hit)
            completeMshr(done);
        ++stats_.loads;
        break;
      }
      case InstKind::Store: {
        // Store buffer: the access updates cache/DRAM state and, on a
        // miss, occupies an MSHR, but retirement does not wait for it.
        const Cycle start = acquireMshr(dispatchCycle);
        const Cycle store_done = hier.store(rec.addr, rec.pc, start);
        if (store_done > start + l1d_hit)
            completeMshr(store_done);
        done = dispatchCycle + 1;
        ++stats_.stores;
        break;
      }
      case InstKind::Branch:
        done = dispatchCycle + cfg.branchLatency;
        ++stats_.branches;
        break;
      case InstKind::Alu:
      default:
        done = dispatchCycle + cfg.aluLatency;
        break;
    }

    // --- Retire (in order, width-limited) --------------------------------
    Cycle retire = std::max(done, lastRetire);
    if (retire == lastRetire && retiredInCycle >= cfg.retireWidth) {
        ++retire;
    }
    if (retire == lastRetire) {
        ++retiredInCycle;
    } else {
        retiredInCycle = 1;
    }
    lastRetire = retire;
    robRetire[seq % cfg.robSize] = retire;
    ++seq;

    ++stats_.instructions;
    stats_.cycles = lastRetire - stats_.windowStart;
}

} // namespace cachescope
