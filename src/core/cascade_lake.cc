/**
 * @file
 * Cascade Lake configuration factory.
 */

#include "core/cascade_lake.hh"

namespace cachescope {

SimConfig
cascadeLakeConfig(const std::string &llc_policy, InstCount warmup,
                  InstCount measure)
{
    SimConfig cfg;

    cfg.core.robSize = 352;
    cfg.core.dispatchWidth = 4;
    cfg.core.retireWidth = 4;

    cfg.hierarchy.l1i.name = "L1I";
    cfg.hierarchy.l1i.sizeBytes = 32 * 1024;
    cfg.hierarchy.l1i.numWays = 8;
    cfg.hierarchy.l1i.hitLatency = 4;
    cfg.hierarchy.l1i.replacement = "lru";

    cfg.hierarchy.l1d.name = "L1D";
    cfg.hierarchy.l1d.sizeBytes = 32 * 1024;
    cfg.hierarchy.l1d.numWays = 8;
    cfg.hierarchy.l1d.hitLatency = 5;
    cfg.hierarchy.l1d.replacement = "lru";

    cfg.hierarchy.l2.name = "L2";
    cfg.hierarchy.l2.sizeBytes = 1024 * 1024;
    cfg.hierarchy.l2.numWays = 16;
    cfg.hierarchy.l2.hitLatency = 10;
    cfg.hierarchy.l2.replacement = "lru";

    // 1.375 MB = 11 ways x 2048 sets x 64 B, the Cascade Lake
    // per-core LLC slice the paper simulates.
    cfg.hierarchy.llc.name = "LLC";
    cfg.hierarchy.llc.sizeBytes = 11 * 128 * 1024;
    cfg.hierarchy.llc.numWays = 11;
    cfg.hierarchy.llc.hitLatency = 20;
    cfg.hierarchy.llc.replacement = llc_policy;

    cfg.hierarchy.dram = DramConfig::ddr4_2933(/*cpu_freq_ghz=*/4.0);

    cfg.warmupInstructions = warmup;
    cfg.measureInstructions = measure;
    return cfg;
}

} // namespace cachescope
