/**
 * @file
 * Cache model implementation.
 */

#include "core/cache.hh"

#include "dram/dram.hh"
#include "stats/metrics.hh"
#include "util/failpoint.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

Status
CacheConfig::validate() const
{
    if (blockBytes == 0 || !isPowerOf2(blockBytes)) {
        return invalidArgumentError(
            "cache '%s': block size must be a power of two", name.c_str());
    }
    if (numWays == 0) {
        return invalidArgumentError(
            "cache '%s': associativity must be non-zero", name.c_str());
    }
    const std::uint64_t blocks = sizeBytes / blockBytes;
    if (blocks == 0 || blocks % numWays != 0) {
        return invalidArgumentError(
            "cache '%s': size %llu not divisible into %u ways",
            name.c_str(), static_cast<unsigned long long>(sizeBytes),
            numWays);
    }
    const std::uint64_t sets = blocks / numWays;
    if (!isPowerOf2(sets)) {
        return invalidArgumentError(
            "cache '%s': derived set count %llu is not a power of two",
            name.c_str(), static_cast<unsigned long long>(sets));
    }
    if (!ReplacementPolicyFactory::isRegistered(replacement)) {
        return notFoundError(
            "cache '%s': unknown replacement policy '%s'", name.c_str(),
            replacement.c_str());
    }
    if (!isKnownPrefetcher(prefetcher)) {
        return notFoundError("cache '%s': unknown prefetcher '%s'",
                             name.c_str(), prefetcher.c_str());
    }
    return Status();
}

std::uint32_t
CacheConfig::numSets() const
{
    if (blockBytes == 0 || !isPowerOf2(blockBytes))
        fatal("cache '%s': block size must be a power of two", name.c_str());
    if (numWays == 0)
        fatal("cache '%s': associativity must be non-zero", name.c_str());
    const std::uint64_t blocks = sizeBytes / blockBytes;
    if (blocks == 0 || blocks % numWays != 0)
        fatal("cache '%s': size %llu not divisible into %u ways",
              name.c_str(), static_cast<unsigned long long>(sizeBytes),
              numWays);
    const std::uint64_t sets = blocks / numWays;
    if (!isPowerOf2(sets))
        fatal("cache '%s': derived set count %llu is not a power of two",
              name.c_str(), static_cast<unsigned long long>(sets));
    return static_cast<std::uint32_t>(sets);
}

CacheGeometry
CacheConfig::geometry() const
{
    return CacheGeometry{numSets(), numWays, blockBytes};
}

std::uint64_t
CacheStats::demandHits() const
{
    return hitsOf(AccessType::Load) + hitsOf(AccessType::Store);
}

std::uint64_t
CacheStats::demandMisses() const
{
    return missesOf(AccessType::Load) + missesOf(AccessType::Store);
}

std::uint64_t
CacheStats::demandAccesses() const
{
    return demandHits() + demandMisses();
}

double
CacheStats::demandMissRate() const
{
    const std::uint64_t total = demandAccesses();
    return total == 0
        ? 0.0
        : static_cast<double>(demandMisses()) / static_cast<double>(total);
}

void
CacheStats::exportMetrics(MetricsRegistry &metrics,
                          const std::string &prefix) const
{
    const std::string p = prefix + ".";
    for (std::size_t t = 0; t < kNumTypes; ++t) {
        const std::string suffix =
            accessTypeName(static_cast<AccessType>(t));
        metrics.setCounter(p + "hits." + suffix, hits[t]);
        metrics.setCounter(p + "misses." + suffix, misses[t]);
        metrics.setCounter(p + "evictions_by_fill." + suffix,
                           evictionsByFill[t]);
    }
    metrics.setCounter(p + "bypasses", bypasses);
    metrics.setCounter(p + "writebacks_issued", writebacksIssued);
    metrics.setCounter(p + "evictions", evictions);
    metrics.setCounter(p + "prefetches_issued", prefetchesIssued);
    metrics.setCounter(p + "prefetches_useful", prefetchesUseful);
    if (prefetchesIssued > 0) {
        metrics.setGauge(p + "prefetch_accuracy",
                         static_cast<double>(prefetchesUseful) /
                             static_cast<double>(prefetchesIssued));
    }
}

Cache::Cache(const CacheConfig &config, MemoryLevel *next)
    : Cache(config, next,
            ReplacementPolicyFactory::create(config.replacement,
                                             config.geometry()))
{}

Cache::Cache(const CacheConfig &config, MemoryLevel *next,
             std::unique_ptr<ReplacementPolicy> policy)
    : cfg(config), sets(config.numSets()),
      blockBits(floorLog2(config.blockBytes)), below(next),
      repl(std::move(policy)), prefetch(makePrefetcher(config.prefetcher)),
      linesArr(static_cast<std::size_t>(sets) * config.numWays)
{
    // The line array above is the simulator's big build-up allocation;
    // this site stands in for it failing (std::bad_alloc territory) so
    // the harness's per-cell isolation can be exercised against
    // resource exhaustion during construction.
    if (failpoint::anyArmed())
        failpoint::hitOrThrow("sim.build.alloc");
    CS_ASSERT(below != nullptr, "cache needs a level below");
    CS_ASSERT(repl != nullptr, "cache needs a replacement policy");
    CS_ASSERT(repl->geometry().numSets == sets &&
              repl->geometry().numWays == cfg.numWays,
              "policy geometry does not match the cache");
}

Cache::Line &
Cache::line(std::uint32_t set, std::uint32_t way)
{
    return linesArr[static_cast<std::size_t>(set) * cfg.numWays + way];
}

const Cache::Line &
Cache::line(std::uint32_t set, std::uint32_t way) const
{
    return linesArr[static_cast<std::size_t>(set) * cfg.numWays + way];
}

bool
Cache::contains(Addr addr) const
{
    const Addr block = addr >> blockBits;
    const std::uint32_t set = static_cast<std::uint32_t>(block & (sets - 1));
    for (std::uint32_t w = 0; w < cfg.numWays; ++w) {
        if (line(set, w).valid && line(set, w).block == block)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &l : linesArr)
        l = Line{};
    stats_.reset();
}

Cycle
Cache::access(Addr addr, Pc pc, AccessType type, Cycle now)
{
    const Addr block = addr >> blockBits;
    const std::uint32_t set = static_cast<std::uint32_t>(block & (sets - 1));
    const auto type_idx = static_cast<std::size_t>(type);
    const Cycle lookup_done = now + cfg.hitLatency;

    if (accessHook && type != AccessType::Writeback)
        accessHook(block, pc, type);

    // Lookup: a single pass finds the hit way and records the first
    // invalid way so the miss path below needs no second scan.
    std::uint32_t first_invalid = ReplacementPolicy::kBypassWay;
    for (std::uint32_t w = 0; w < cfg.numWays; ++w) {
        Line &l = line(set, w);
        if (!l.valid) {
            if (first_invalid == ReplacementPolicy::kBypassWay)
                first_invalid = w;
            continue;
        }
        if (l.block == block) {
            ++stats_.hits[type_idx];
            if (type == AccessType::Store || type == AccessType::Writeback)
                l.dirty = true;
            if (l.prefetched && type != AccessType::Prefetch) {
                ++stats_.prefetchesUseful;
                l.prefetched = false;
            }
            repl->update(set, w, pc, block, type, /*hit=*/true);
            if (eventHook) {
                eventHook({block, pc, type, set, w, /*hit=*/true,
                           /*bypassed=*/false, kInvalidAddr});
            }
            if (type == AccessType::Load || type == AccessType::Store)
                issuePrefetches(block, pc, /*hit=*/true, now);
            return lookup_done;
        }
    }

    ++stats_.misses[type_idx];

    // Fetch from below. Writebacks carry their own data and prefetches
    // of already-inflight lines are not modelled, so only demand types
    // and prefetches go down.
    Cycle fill_done = lookup_done;
    if (type != AccessType::Writeback)
        fill_done = below->access(addr, pc, type, lookup_done);

    // Victim selection: invalid ways fill first without consulting the
    // policy (matching ChampSim); the lookup scan already found one.
    std::uint32_t victim_way = first_invalid;
    Addr victim_block = kInvalidAddr;
    if (victim_way == ReplacementPolicy::kBypassWay) {
        victim_way = repl->findVictim(set, pc, block, type);
        if (victim_way == ReplacementPolicy::kBypassWay) {
            // Policy elected to bypass: nothing is installed and the
            // policy is not updated for this access.
            ++stats_.bypasses;
            if (eventHook) {
                eventHook({block, pc, type, set, 0, /*hit=*/false,
                           /*bypassed=*/true, kInvalidAddr});
            }
            return fill_done;
        }
        CS_ASSERT(victim_way < cfg.numWays, "policy returned a bad way");

        Line &victim = line(set, victim_way);
        victim_block = victim.block;
        ++stats_.evictions;
        ++stats_.evictionsByFill[type_idx];
        if (victim.dirty) {
            ++stats_.writebacksIssued;
            // Off the critical path: latency result ignored.
            below->access(victim.block << blockBits, 0,
                          AccessType::Writeback, fill_done);
        }
    }

    Line &l = line(set, victim_way);
    l.block = block;
    l.valid = true;
    l.dirty = (type == AccessType::Store || type == AccessType::Writeback);
    l.prefetched = (type == AccessType::Prefetch);
    repl->update(set, victim_way, pc, block, type, /*hit=*/false);
    if (eventHook) {
        eventHook({block, pc, type, set, victim_way, /*hit=*/false,
                   /*bypassed=*/false, victim_block});
    }

    if (type == AccessType::Load || type == AccessType::Store)
        issuePrefetches(block, pc, /*hit=*/false, now);

    return fill_done;
}

void
Cache::exportDynamicMetrics(MetricsRegistry &metrics,
                            const std::string &prefix) const
{
    repl->exportMetrics(metrics, prefix + ".policy");
    if (prefetch)
        prefetch->exportMetrics(metrics, prefix + ".prefetcher");
}

void
Cache::issuePrefetches(Addr block, Pc pc, bool hit, Cycle now)
{
    if (!prefetch)
        return;
    prefetchScratch.clear();
    prefetch->onAccess(block, pc, hit, prefetchScratch);
    for (Addr target : prefetchScratch) {
        if (contains(target << blockBits))
            continue;
        ++stats_.prefetchesIssued;
        // Off the critical path; timing result ignored. The Prefetch
        // access type keeps this from re-triggering the prefetcher.
        access(target << blockBits, pc, AccessType::Prefetch, now);
    }
}

DramLevel::DramLevel(DramModel &dram) : dram(dram) {}

Cycle
DramLevel::access(Addr addr, Pc, AccessType type, Cycle now)
{
    if (type == AccessType::Writeback)
        return dram.write(addr, now);
    return dram.read(addr, now);
}

} // namespace cachescope
