/**
 * @file
 * Cache model implementation.
 */

#include "core/cache.hh"

#include <algorithm>
#include <typeinfo>

#include "dram/dram.hh"
#include "replacement/basic.hh"
#include "replacement/rrip.hh"
#include "stats/metrics.hh"
#include "stats/summary.hh"
#include "util/failpoint.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

Status
CacheConfig::validate() const
{
    if (blockBytes == 0 || !isPowerOf2(blockBytes)) {
        return invalidArgumentError(
            "cache '%s': block size must be a power of two", name.c_str());
    }
    if (numWays == 0) {
        return invalidArgumentError(
            "cache '%s': associativity must be non-zero", name.c_str());
    }
    const std::uint64_t blocks = sizeBytes / blockBytes;
    if (blocks == 0 || blocks % numWays != 0) {
        return invalidArgumentError(
            "cache '%s': size %llu not divisible into %u ways",
            name.c_str(), static_cast<unsigned long long>(sizeBytes),
            numWays);
    }
    const std::uint64_t sets = blocks / numWays;
    if (!isPowerOf2(sets)) {
        return invalidArgumentError(
            "cache '%s': derived set count %llu is not a power of two",
            name.c_str(), static_cast<unsigned long long>(sets));
    }
    if (sampleSets == 0 || !isPowerOf2(sampleSets)) {
        return invalidArgumentError(
            "cache '%s': set-sampling rate %u must be a power of two",
            name.c_str(), sampleSets);
    }
    if (sampleSets > sets) {
        return invalidArgumentError(
            "cache '%s': set-sampling rate %u exceeds the %llu sets",
            name.c_str(), sampleSets,
            static_cast<unsigned long long>(sets));
    }
    if (!ReplacementPolicyFactory::isRegistered(replacement)) {
        return notFoundError(
            "cache '%s': unknown replacement policy '%s'", name.c_str(),
            replacement.c_str());
    }
    if (!isKnownPrefetcher(prefetcher)) {
        return notFoundError("cache '%s': unknown prefetcher '%s'",
                             name.c_str(), prefetcher.c_str());
    }
    return Status();
}

std::uint32_t
CacheConfig::numSets() const
{
    if (blockBytes == 0 || !isPowerOf2(blockBytes))
        fatal("cache '%s': block size must be a power of two", name.c_str());
    if (numWays == 0)
        fatal("cache '%s': associativity must be non-zero", name.c_str());
    const std::uint64_t blocks = sizeBytes / blockBytes;
    if (blocks == 0 || blocks % numWays != 0)
        fatal("cache '%s': size %llu not divisible into %u ways",
              name.c_str(), static_cast<unsigned long long>(sizeBytes),
              numWays);
    const std::uint64_t sets = blocks / numWays;
    if (!isPowerOf2(sets))
        fatal("cache '%s': derived set count %llu is not a power of two",
              name.c_str(), static_cast<unsigned long long>(sets));
    return static_cast<std::uint32_t>(sets);
}

CacheGeometry
CacheConfig::geometry() const
{
    return CacheGeometry{numSets(), numWays, blockBytes};
}

std::uint64_t
CacheStats::demandHits() const
{
    return hitsOf(AccessType::Load) + hitsOf(AccessType::Store);
}

std::uint64_t
CacheStats::demandMisses() const
{
    return missesOf(AccessType::Load) + missesOf(AccessType::Store);
}

std::uint64_t
CacheStats::demandAccesses() const
{
    return demandHits() + demandMisses();
}

double
CacheStats::demandMissRate() const
{
    const std::uint64_t total = demandAccesses();
    return total == 0
        ? 0.0
        : static_cast<double>(demandMisses()) / static_cast<double>(total);
}

void
CacheStats::exportMetrics(MetricsRegistry &metrics,
                          const std::string &prefix) const
{
    const std::string p = prefix + ".";
    for (std::size_t t = 0; t < kNumTypes; ++t) {
        const std::string suffix =
            accessTypeName(static_cast<AccessType>(t));
        metrics.setCounter(p + "hits." + suffix, hits[t]);
        metrics.setCounter(p + "misses." + suffix, misses[t]);
        metrics.setCounter(p + "evictions_by_fill." + suffix,
                           evictionsByFill[t]);
    }
    metrics.setCounter(p + "bypasses", bypasses);
    metrics.setCounter(p + "writebacks_issued", writebacksIssued);
    metrics.setCounter(p + "evictions", evictions);
    metrics.setCounter(p + "prefetches_issued", prefetchesIssued);
    metrics.setCounter(p + "prefetches_useful", prefetchesUseful);
    if (prefetchesIssued > 0) {
        metrics.setGauge(p + "prefetch_accuracy",
                         static_cast<double>(prefetchesUseful) /
                             static_cast<double>(prefetchesIssued));
    }
}

Cache::Cache(const CacheConfig &config, MemoryLevel *next)
    : Cache(config, next,
            ReplacementPolicyFactory::create(config.replacement,
                                             config.geometry()))
{}

Cache::Cache(const CacheConfig &config, MemoryLevel *next,
             std::unique_ptr<ReplacementPolicy> policy)
    : cfg(config), sets(config.numSets()),
      blockBits(floorLog2(config.blockBytes)), below(next),
      repl(std::move(policy)), prefetch(makePrefetcher(config.prefetcher)),
      tags_(static_cast<std::size_t>(sets) * config.numWays, kInvalidAddr),
      validBits_((tags_.size() + 63) / 64, 0),
      dirtyBits_((tags_.size() + 63) / 64, 0),
      prefetchedBits_((tags_.size() + 63) / 64, 0)
{
    // The tag store above is the simulator's big build-up allocation;
    // this site stands in for it failing (std::bad_alloc territory) so
    // the harness's per-cell isolation can be exercised against
    // resource exhaustion during construction.
    if (failpoint::anyArmed())
        failpoint::hitOrThrow("sim.build.alloc");
    CS_ASSERT(below != nullptr, "cache needs a level below");
    CS_ASSERT(repl != nullptr, "cache needs a replacement policy");
    CS_ASSERT(repl->geometry().numSets == sets &&
              repl->geometry().numWays == cfg.numWays,
              "policy geometry does not match the cache");
    belowCache = dynamic_cast<Cache *>(below);
    belowDram = dynamic_cast<DramLevel *>(below);
    detectHitFastPath();
    initSampling();
}

namespace {

/** splitmix64: the standard 64-bit finalizer (a bijection, so distinct
 *  set indices never collide and ranking by hash has no ties). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // anonymous namespace

void
Cache::initSampling()
{
    if (cfg.sampleSets <= 1)
        return;
    CS_ASSERT(isPowerOf2(cfg.sampleSets) && cfg.sampleSets <= sets,
              "set-sampling rate must be a power of two <= numSets");
    // Rank the sets by a fixed hash of their index and keep exactly
    // numSets / sampleSets of them. A pure function of (set count,
    // rate): the same geometry always samples the same sets, which the
    // determinism tests and --jobs reproducibility rely on. Hashing
    // (rather than a stride like set % N == 0) decorrelates the subset
    // from power-of-two access patterns.
    std::vector<std::uint32_t> order(sets);
    for (std::uint32_t s = 0; s < sets; ++s)
        order[s] = s;
    std::sort(order.begin(), order.end(),
              [](std::uint32_t a, std::uint32_t b) {
                  return mix64(a) < mix64(b);
              });
    sampledSetCount_ = sets / cfg.sampleSets;
    sampledSetBits_.assign((static_cast<std::size_t>(sets) + 63) / 64, 0);
    for (std::uint32_t i = 0; i < sampledSetCount_; ++i)
        setBit(sampledSetBits_, order[i]);
    setDemandAccesses_.assign(sets, 0);
    setDemandMisses_.assign(sets, 0);
    sampling_ = true;
}

void
Cache::detectHitFastPath()
{
    // Exact typeid matches only: a subclass of a builtin policy could
    // override update() with different hit semantics, so anything not
    // literally one of these classes keeps the virtual slow path.
    const std::type_info &t = typeid(*repl);
    if (t == typeid(LruPolicy)) {
        lruFast_ = static_cast<LruPolicy *>(repl.get());
        hitUpdate_ = HitUpdate::LruTouch;
    } else if (t == typeid(FifoPolicy) || t == typeid(RandomPolicy)) {
        // FifoPolicy::update ignores hits (fill-time only); Random has
        // no metadata at all.
        hitUpdate_ = HitUpdate::NoOp;
    } else if (t == typeid(NruPolicy)) {
        nruFast_ = static_cast<NruPolicy *>(repl.get());
        hitUpdate_ = HitUpdate::NruMark;
    } else if (t == typeid(SrripPolicy) || t == typeid(BrripPolicy) ||
               t == typeid(DrripPolicy)) {
        // All three share RripBase::update, which on hits promotes the
        // line to RRPV 0 and nothing else.
        rripFast_ = static_cast<RripBase *>(repl.get());
        hitUpdate_ = HitUpdate::RripTouch;
    } else {
        hitUpdate_ = HitUpdate::Generic;
    }
}

Cycle
Cache::belowAccess(Addr addr, Pc pc, AccessType type, Cycle now)
{
    if (belowCache)
        return belowCache->access(addr, pc, type, now);
    // Functional warmup: the level below here is DRAM (or a test
    // stand-in) — pure timing state with no architectural content —
    // so skip it entirely and return the data "immediately".
    if (functional_)
        return now;
    if (belowDram)
        return belowDram->access(addr, pc, type, now);
    return below->access(addr, pc, type, now);
}

bool
Cache::contains(Addr addr) const
{
    const Addr block = addr >> blockBits;
    const std::uint32_t set = static_cast<std::uint32_t>(block & (sets - 1));
    const std::size_t base = static_cast<std::size_t>(set) * cfg.numWays;
    for (std::uint32_t w = 0; w < cfg.numWays; ++w) {
        if (testBit(validBits_, base + w) && tags_[base + w] == block)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidAddr);
    std::fill(validBits_.begin(), validBits_.end(), 0);
    std::fill(dirtyBits_.begin(), dirtyBits_.end(), 0);
    std::fill(prefetchedBits_.begin(), prefetchedBits_.end(), 0);
    std::fill(partTick_.begin(), partTick_.end(), 0);
    resetStats();
}

bool
Cache::invalidate(Addr addr)
{
    const Addr block = addr >> blockBits;
    const std::uint32_t set = static_cast<std::uint32_t>(block & (sets - 1));
    const std::size_t base = static_cast<std::size_t>(set) * cfg.numWays;
    for (std::uint32_t w = 0; w < cfg.numWays; ++w) {
        const std::size_t idx = base + w;
        if (!testBit(validBits_, idx) || tags_[idx] != block)
            continue;
        tags_[idx] = kInvalidAddr;
        clearBit(validBits_, idx);
        clearBit(dirtyBits_, idx);
        clearBit(prefetchedBits_, idx);
        return true;
    }
    return false;
}

void
Cache::enableCoreAttribution(unsigned num_cores)
{
    CS_ASSERT(num_cores > 0, "attribution needs at least one core");
    coreStats_.assign(num_cores, CacheStats{});
    coreSlice_ = &coreStats_[0];
}

void
Cache::setWayPartition(std::uint32_t ways_per_core)
{
    if (ways_per_core == 0) {
        waysPerCore_ = 0;
        partLo_ = 0;
        partHi_ = 0;
        return;
    }
    CS_ASSERT(!coreStats_.empty(),
              "way partitioning requires core attribution");
    CS_ASSERT(static_cast<std::uint64_t>(ways_per_core) *
                      coreStats_.size() <=
                  cfg.numWays,
              "way partition exceeds the cache's associativity");
    waysPerCore_ = ways_per_core;
    partLo_ = 0;
    partHi_ = ways_per_core;
    if (partTick_.empty())
        partTick_.assign(tags_.size(), 0);
}

Cycle
Cache::access(Addr addr, Pc pc, AccessType type, Cycle now)
{
    const Addr block = addr >> blockBits;
    const std::uint32_t set = static_cast<std::uint32_t>(block & (sets - 1));
    const auto type_idx = static_cast<std::size_t>(type);
    const Cycle lookup_done = now + cfg.hitLatency;

    if (hooksArmed_ && accessHook && type != AccessType::Writeback)
        accessHook(block, pc, type);

    // Set-sampling filter. Placed after the access hook so the Belady
    // oracle still records the full stream, but before any state is
    // touched: an access to an unsampled set costs this one branch and
    // nothing else — no tag scan, no policy, no stats, no level below.
    // The event hook keeps its contract of seeing exactly what the
    // statistics count, so it does not fire for skipped accesses.
    if (sampling_) {
        if (!testBit(sampledSetBits_, set)) {
            ++skippedAccesses_;
            return lookup_done;
        }
        if (type == AccessType::Load || type == AccessType::Store)
            ++setDemandAccesses_[set];
    }

    // Lookup: a single pass over the set's contiguous tag run finds the
    // hit way and records the first invalid way so the miss path below
    // needs no second scan.
    const std::size_t base = static_cast<std::size_t>(set) * cfg.numWays;
    std::uint32_t first_invalid = ReplacementPolicy::kBypassWay;
    for (std::uint32_t w = 0; w < cfg.numWays; ++w) {
        const std::size_t idx = base + w;
        if (!testBit(validBits_, idx)) {
            // Under a way partition only the active core's window may
            // be filled; the extra range check stays inside this branch
            // because invalid ways are rare once the cache is warm.
            if (first_invalid == ReplacementPolicy::kBypassWay &&
                (partHi_ == 0 || (w >= partLo_ && w < partHi_)))
                first_invalid = w;
            continue;
        }
        if (tags_[idx] == block) {
            ++stats_.hits[type_idx];
            if (coreSlice_)
                ++coreSlice_->hits[type_idx];
            if (partHi_ != 0)
                partTick_[idx] = ++partClock_;
            if (type == AccessType::Store || type == AccessType::Writeback)
                setBit(dirtyBits_, idx);
            if (testBit(prefetchedBits_, idx) &&
                type != AccessType::Prefetch) {
                ++stats_.prefetchesUseful;
                if (coreSlice_)
                    ++coreSlice_->prefetchesUseful;
                clearBit(prefetchedBits_, idx);
            }
            switch (hitUpdate_) {
              case HitUpdate::LruTouch:
                lruFast_->touchHit(set, w);
                break;
              case HitUpdate::NoOp:
                break;
              case HitUpdate::NruMark:
                nruFast_->markReferenced(set, w);
                break;
              case HitUpdate::RripTouch:
                rripFast_->touchHit(set, w);
                break;
              case HitUpdate::Generic:
                repl->update(set, w, pc, block, type, /*hit=*/true);
                break;
            }
            if (hooksArmed_ && eventHook) {
                eventHook({block, pc, type, set, w, /*hit=*/true,
                           /*bypassed=*/false, kInvalidAddr});
            }
            if (type == AccessType::Load || type == AccessType::Store)
                issuePrefetches(block, pc, /*hit=*/true, now);
            return lookup_done;
        }
    }

    ++stats_.misses[type_idx];
    if (coreSlice_)
        ++coreSlice_->misses[type_idx];
    if (sampling_ &&
        (type == AccessType::Load || type == AccessType::Store))
        ++setDemandMisses_[set];

    // Fetch from below. Writebacks carry their own data and prefetches
    // of already-inflight lines are not modelled, so only demand types
    // and prefetches go down.
    Cycle fill_done = lookup_done;
    if (type != AccessType::Writeback)
        fill_done = belowAccess(addr, pc, type, lookup_done);

    // Victim selection: invalid ways fill first without consulting the
    // policy (matching ChampSim); the lookup scan already found one.
    std::uint32_t victim_way = first_invalid;
    Addr victim_block = kInvalidAddr;
    if (victim_way == ReplacementPolicy::kBypassWay) {
        if (partHi_ != 0) {
            // Partitioned: evict the least-recently-touched line in the
            // active core's window. The policy keeps training below but
            // does not choose victims and cannot bypass.
            victim_way = partLo_;
            std::uint64_t oldest = partTick_[base + partLo_];
            for (std::uint32_t w = partLo_ + 1; w < partHi_; ++w) {
                if (partTick_[base + w] < oldest) {
                    oldest = partTick_[base + w];
                    victim_way = w;
                }
            }
        } else {
            victim_way = repl->findVictim(set, pc, block, type);
        }
        if (victim_way == ReplacementPolicy::kBypassWay) {
            // Policy elected to bypass: nothing is installed and the
            // policy is not updated for this access.
            ++stats_.bypasses;
            if (coreSlice_)
                ++coreSlice_->bypasses;
            if (hooksArmed_ && eventHook) {
                eventHook({block, pc, type, set, 0, /*hit=*/false,
                           /*bypassed=*/true, kInvalidAddr});
            }
            return fill_done;
        }
        CS_ASSERT(victim_way < cfg.numWays, "policy returned a bad way");

        const std::size_t vidx = base + victim_way;
        victim_block = tags_[vidx];
        ++stats_.evictions;
        ++stats_.evictionsByFill[type_idx];
        if (coreSlice_) {
            ++coreSlice_->evictions;
            ++coreSlice_->evictionsByFill[type_idx];
        }
        if (testBit(dirtyBits_, vidx)) {
            ++stats_.writebacksIssued;
            if (coreSlice_)
                ++coreSlice_->writebacksIssued;
            // Off the critical path: latency result ignored.
            belowAccess(victim_block << blockBits, 0,
                        AccessType::Writeback, fill_done);
        }
    }

    const std::size_t idx = base + victim_way;
    tags_[idx] = block;
    setBit(validBits_, idx);
    if (partHi_ != 0)
        partTick_[idx] = ++partClock_;
    if (type == AccessType::Store || type == AccessType::Writeback)
        setBit(dirtyBits_, idx);
    else
        clearBit(dirtyBits_, idx);
    if (type == AccessType::Prefetch)
        setBit(prefetchedBits_, idx);
    else
        clearBit(prefetchedBits_, idx);
    repl->update(set, victim_way, pc, block, type, /*hit=*/false);
    if (hooksArmed_ && eventHook) {
        eventHook({block, pc, type, set, victim_way, /*hit=*/false,
                   /*bypassed=*/false, victim_block});
    }

    if (type == AccessType::Load || type == AccessType::Store)
        issuePrefetches(block, pc, /*hit=*/false, now);

    return fill_done;
}

void
Cache::exportDynamicMetrics(MetricsRegistry &metrics,
                            const std::string &prefix) const
{
    repl->exportMetrics(metrics, prefix + ".policy");
    if (prefetch)
        prefetch->exportMetrics(metrics, prefix + ".prefetcher");
    if (!sampling_)
        return;
    // Full-stream estimates from the sampled subset, exported beside
    // the raw counters (which keep counting exactly what was
    // simulated, so metric-tree merges and slice-sum checks stay
    // exact). With exactly numSets/sampleSets sampled sets the scale
    // factor is the integral rate, so the scaled counters stay uint64
    // and are always >= the raw values — check_bench_json relies on
    // both. Nothing under "sampled." exists when sampling is off.
    const std::string sp = prefix + ".sampled.";
    const std::uint64_t rate = cfg.sampleSets;
    metrics.setCounter(sp + "sample_rate", rate);
    metrics.setCounter(sp + "sets_total", sets);
    metrics.setCounter(sp + "sets_sampled", sampledSetCount_);
    metrics.setCounter(sp + "skipped_accesses", skippedAccesses_);
    metrics.setCounter(sp + "demand_accesses",
                       stats_.demandAccesses() * rate);
    metrics.setCounter(sp + "demand_hits", stats_.demandHits() * rate);
    metrics.setCounter(sp + "demand_misses",
                       stats_.demandMisses() * rate);
    metrics.setGauge(sp + "demand_miss_rate", stats_.demandMissRate());
    std::vector<double> per_set;
    per_set.reserve(sampledSetCount_);
    for (std::uint32_t s = 0; s < sets; ++s) {
        if (testBit(sampledSetBits_, s))
            per_set.push_back(static_cast<double>(setDemandMisses_[s]));
    }
    metrics.setGauge(sp + "relative_stderr",
                     sampledEstimateRelativeStderr(per_set, sets));
}

void
Cache::issuePrefetches(Addr block, Pc pc, bool hit, Cycle now)
{
    if (!prefetch)
        return;
    prefetchScratch.clear();
    prefetch->onAccess(block, pc, hit, prefetchScratch);
    for (Addr target : prefetchScratch) {
        if (contains(target << blockBits))
            continue;
        ++stats_.prefetchesIssued;
        if (coreSlice_)
            ++coreSlice_->prefetchesIssued;
        // Off the critical path; timing result ignored. The Prefetch
        // access type keeps this from re-triggering the prefetcher.
        access(target << blockBits, pc, AccessType::Prefetch, now);
    }
}

DramLevel::DramLevel(DramModel &dram) : dram(dram) {}

Cycle
DramLevel::access(Addr addr, Pc, AccessType type, Cycle now)
{
    if (type == AccessType::Writeback)
        return dram.write(addr, now);
    return dram.read(addr, now);
}

} // namespace cachescope
