/**
 * @file
 * Simulation driver implementation.
 */

#include "core/simulator.hh"

#include "stats/summary.hh"
#include "util/failpoint.hh"

namespace cachescope {

Status
SimConfig::validate() const
{
    CS_TRY(hierarchy.l1i.validate());
    CS_TRY(hierarchy.l1d.validate());
    CS_TRY(hierarchy.l2.validate());
    CS_TRY(hierarchy.llc.validate());
    // The budget check in onInstruction compares consumed against
    // warmup + measure; if that sum wraps, the budget is never reached
    // and a "bounded" run silently consumes the whole trace.
    if (measureInstructions != 0 &&
        warmupInstructions > ~InstCount{0} - measureInstructions) {
        return invalidArgumentError(
            "warmup %llu + measure %llu instructions overflows the "
            "instruction counter",
            static_cast<unsigned long long>(warmupInstructions),
            static_cast<unsigned long long>(measureInstructions));
    }
    return Status();
}

double
SimResult::mpkiL1d() const
{
    return mpki(l1d.demandMisses(), core.instructions);
}

double
SimResult::mpkiL2() const
{
    return mpki(l2.demandMisses(), core.instructions);
}

double
SimResult::mpkiLlc() const
{
    return mpki(llc.demandMisses(), core.instructions);
}

double
SimResult::dramServiceRatio() const
{
    const std::uint64_t l1d_misses = l1d.demandMisses();
    if (l1d_misses == 0)
        return 0.0;
    // Demand reads reaching DRAM over the same window; writebacks are
    // excluded on both sides of the ratio.
    return static_cast<double>(llc.demandMisses()) /
           static_cast<double>(l1d_misses);
}

void
SimResult::exportMetrics(MetricsRegistry &metrics,
                         const std::string &prefix) const
{
    const std::string p = prefix.empty() ? "" : prefix + ".";
    core.exportMetrics(metrics, p + "core");
    l1i.exportMetrics(metrics, p + "l1i");
    l1d.exportMetrics(metrics, p + "l1d");
    l2.exportMetrics(metrics, p + "l2");
    llc.exportMetrics(metrics, p + "llc");
    dram.exportMetrics(metrics, p + "dram");
    metrics.setGauge(p + "derived.mpki_l1d", mpkiL1d());
    metrics.setGauge(p + "derived.mpki_l2", mpkiL2());
    metrics.setGauge(p + "derived.mpki_llc", mpkiLlc());
    metrics.setGauge(p + "derived.dram_service_ratio", dramServiceRatio());
    metrics.merge(extraMetrics, prefix);
}

Simulator::Simulator(const SimConfig &config)
    : cfg(config), hier(config.hierarchy), cpu(config.core, hier)
{
    maybeAttachProfiler();
    beginFunctionalWarmup();
}

Simulator::Simulator(const SimConfig &config,
                     std::unique_ptr<ReplacementPolicy> llc_policy)
    : cfg(config), hier(config.hierarchy, std::move(llc_policy)),
      cpu(config.core, hier)
{
    maybeAttachProfiler();
    beginFunctionalWarmup();
}

Simulator::Simulator(const SimConfig &config, Cache *shared_llc,
                     DramModel *shared_dram)
    : cfg(config), hier(config.hierarchy, shared_llc, shared_dram),
      cpu(config.core, hier)
{
    // Shared-LLC arrangement: the co-run driver owns the LLC and
    // attaches (and resets) the one shared profiler itself; likewise
    // the shared LLC's functional-mode flag (cleared at the driver's
    // all-cores-warm barrier, not at this core's own boundary —
    // beginFunctionalWarmup's hierarchy call is a no-op here).
    beginFunctionalWarmup();
}

void
Simulator::beginFunctionalWarmup()
{
    functional_ = cfg.warmupMode == WarmupMode::Functional &&
                  cfg.warmupInstructions > 0;
    if (functional_)
        hier.setFunctionalMode(true);
}

void
Simulator::forceFunctional()
{
    functional_ = true;
    forcedFunctional_ = true;
    hier.setFunctionalMode(true);
}

double
Simulator::warmupWallSeconds() const
{
    if (!sawInstruction_)
        return 0.0;
    const auto end =
        warmupDone ? warmupEndedAt_ : std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - firstInstructionAt_)
        .count();
}

double
Simulator::measureWallSeconds() const
{
    if (!warmupDone)
        return 0.0;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - warmupEndedAt_)
        .count();
}

void
Simulator::maybeAttachProfiler()
{
    if (!cfg.profile.enabled)
        return;
    profiler_ = std::make_unique<OnlineProfiler>(
        cfg.profile, cfg.hierarchy.llc.numSets());
    // Demand accesses only: writebacks carry no PC worth correlating
    // and prefetch fills are the prefetcher's stream, not the
    // program's. This matches CacheStats::demandAccesses().
    hier.llc().setEventHook(
        [p = profiler_.get()](const Cache::AccessEvent &e) {
            if (e.type == AccessType::Load ||
                e.type == AccessType::Store) {
                p->onAccess(e.set, e.block, e.pc, e.hit);
            }
        });
}

void
Simulator::onInstruction(const TraceRecord &rec)
{
    if (budgetExhausted)
        return;

    // The cooperative polling point: cheap enough to sit in the hot
    // loop (one mask + predictable branch when idle), frequent enough
    // that deadlines and ^C are observed promptly.
    if ((consumed & (kCancelPollInterval - 1)) == 0) [[unlikely]] {
        if (!sawInstruction_) {
            sawInstruction_ = true;
            firstInstructionAt_ = std::chrono::steady_clock::now();
        }
        if (cfg.cancel && cfg.cancel->cancelled())
            throw CancelledError(cfg.cancel->reason());
        if (failpoint::anyArmed())
            failpoint::hitOrThrow("sim.loop");
    }

    if (!warmupDone && consumed >= cfg.warmupInstructions) {
        warmupDone = true;
        warmupEndedAt_ = std::chrono::steady_clock::now();
        // Hand over from the functional to the sealed timed path. The
        // architectural state carried across the boundary (tags,
        // replacement metadata, prefetcher and predictor state) is
        // exactly what timed warmup would have built; timing state
        // (ROB, MSHRs, DRAM bank queues) starts cold.
        if (functional_ && !forcedFunctional_) {
            functional_ = false;
            hier.setFunctionalMode(false);
        }
        hier.resetStats();
        cpu.resetStats();
        if (profiler_)
            profiler_->reset();
    }

    if (functional_)
        cpu.onInstructionFunctional(rec);
    else
        cpu.onInstruction(rec);
    ++consumed;
    if (warmupDone && cfg.measureInstructions != 0 &&
        consumed >= cfg.warmupInstructions + cfg.measureInstructions) {
        budgetExhausted = true;
    }
}

SimResult
Simulator::result() const
{
    SimResult r;
    r.llcPolicy = cfg.hierarchy.llc.replacement;
    r.llcPolicyState = hier.llc().policy().debugState();
    r.core = cpu.stats();
    r.l1i = hier.l1i().stats();
    r.l1d = hier.l1d().stats();
    r.l2 = hier.l2().stats();
    r.llc = hier.llc().stats();
    r.dram = hier.dram().stats();
    hier.l1i().exportDynamicMetrics(r.extraMetrics, "l1i");
    hier.l1d().exportDynamicMetrics(r.extraMetrics, "l1d");
    hier.l2().exportDynamicMetrics(r.extraMetrics, "l2");
    hier.llc().exportDynamicMetrics(r.extraMetrics, "llc");
    if (profiler_)
        profiler_->exportMetrics(r.extraMetrics, "profile");
    return r;
}

} // namespace cachescope
