/**
 * @file
 * Simulation driver implementation.
 */

#include "core/simulator.hh"

#include "stats/summary.hh"

namespace cachescope {

Status
SimConfig::validate() const
{
    CS_TRY(hierarchy.l1i.validate());
    CS_TRY(hierarchy.l1d.validate());
    CS_TRY(hierarchy.l2.validate());
    CS_TRY(hierarchy.llc.validate());
    return Status();
}

double
SimResult::mpkiL1d() const
{
    return mpki(l1d.demandMisses(), core.instructions);
}

double
SimResult::mpkiL2() const
{
    return mpki(l2.demandMisses(), core.instructions);
}

double
SimResult::mpkiLlc() const
{
    return mpki(llc.demandMisses(), core.instructions);
}

double
SimResult::dramServiceRatio() const
{
    const std::uint64_t l1d_misses = l1d.demandMisses();
    if (l1d_misses == 0)
        return 0.0;
    // Demand reads reaching DRAM over the same window; writebacks are
    // excluded on both sides of the ratio.
    return static_cast<double>(llc.demandMisses()) /
           static_cast<double>(l1d_misses);
}

Simulator::Simulator(const SimConfig &config)
    : cfg(config), hier(config.hierarchy), cpu(config.core, hier)
{}

Simulator::Simulator(const SimConfig &config,
                     std::unique_ptr<ReplacementPolicy> llc_policy)
    : cfg(config), hier(config.hierarchy, std::move(llc_policy)),
      cpu(config.core, hier)
{}

void
Simulator::onInstruction(const TraceRecord &rec)
{
    if (budgetExhausted)
        return;

    if (!warmupDone && consumed >= cfg.warmupInstructions) {
        warmupDone = true;
        hier.resetStats();
        cpu.resetStats();
    }

    cpu.onInstruction(rec);
    ++consumed;
    if (warmupDone && cfg.measureInstructions != 0 &&
        consumed >= cfg.warmupInstructions + cfg.measureInstructions) {
        budgetExhausted = true;
    }
}

SimResult
Simulator::result() const
{
    SimResult r;
    r.llcPolicy = cfg.hierarchy.llc.replacement;
    r.llcPolicyState = hier.llc().policy().debugState();
    r.core = cpu.stats();
    r.l1i = hier.l1i().stats();
    r.l1d = hier.l1d().stats();
    r.l2 = hier.l2().stats();
    r.llc = hier.llc().stats();
    r.dram = hier.dram().stats();
    return r;
}

} // namespace cachescope
