/**
 * @file
 * The set-associative cache model.
 *
 * Write-back, write-allocate, non-inclusive (ChampSim's default LLC
 * arrangement). Replacement is delegated to a ReplacementPolicy; the
 * level below is reached through the MemoryLevel interface so caches
 * and the DRAM adapter compose into an arbitrary-depth hierarchy.
 *
 * Timing: access() returns the cycle at which the requested data is
 * available. A hit costs the level's hit latency; a miss adds the level
 * below recursively. Writebacks update lower-level state but never
 * contribute to the returned (critical-path) latency.
 *
 * Hot-path layout: line state lives in structure-of-arrays form — one
 * contiguous tag array plus packed valid/dirty/prefetched bitmaps —
 * so the per-access set scan touches one dense tag run instead of
 * striding over padded structs. The class is `final` and the common
 * L1→L2→LLC→DRAM hops bypass the virtual MemoryLevel boundary through
 * cached concrete pointers; the virtual path remains for any other
 * MemoryLevel (e.g. the difftest FlatLevel).
 */

#ifndef CACHESCOPE_CORE_CACHE_HH
#define CACHESCOPE_CORE_CACHE_HH

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "replacement/replacement_policy.hh"
#include "util/status.hh"
#include "util/types.hh"

namespace cachescope {

class MetricsRegistry;
class LruPolicy;
class NruPolicy;
class RripBase;

/** Anything a cache can forward misses to. */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /**
     * Access this level.
     * @param addr full byte address.
     * @param pc PC of the causing instruction (0 for writebacks).
     * @param type access type.
     * @param now cycle the request arrives.
     * @return cycle at which the data is available.
     */
    virtual Cycle access(Addr addr, Pc pc, AccessType type, Cycle now) = 0;

    /** @return a short display name ("L1D", "DRAM", ...). */
    virtual const std::string &levelName() const = 0;
};

/** Static configuration of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t numWays = 8;
    std::uint32_t blockBytes = 64;
    /** Latency added by a lookup at this level (hit cost). */
    Cycle hitLatency = 4;
    /** Replacement policy registry name. */
    std::string replacement = "lru";
    /** Prefetcher name ("none", "next_line", "stride", "streamer"). */
    std::string prefetcher = "none";
    /**
     * Set-sampling rate: 1 simulates every set (the default, exact);
     * N > 1 simulates only a deterministic hash-selected 1-in-N subset
     * of the sets and skips all work (tags, policy, stats, the level
     * below) for the rest — the ChampSim/CRC2 sampled-set technique.
     * Sampled counters are exported scaled back to full-stream
     * estimates under "<prefix>.sampled."; the raw counters keep
     * counting exactly what was simulated. Must be a power of two no
     * larger than the set count.
     */
    std::uint32_t sampleSets = 1;

    /**
     * Check that the shape derives a usable geometry (power-of-two
     * block size, non-zero ways, power-of-two set count) and that the
     * replacement/prefetcher names are registered. Catching these here
     * keeps zero or non-power-of-two geometries from silently
     * corrupting set indexing and statistics downstream.
     */
    Status validate() const;

    /** @return derived number of sets; fatal() if the shape is invalid. */
    std::uint32_t numSets() const;

    /** @return the geometry handed to the replacement policy. */
    CacheGeometry geometry() const;
};

/** Counters exported by one cache level. */
struct CacheStats
{
    static constexpr std::size_t kNumTypes = 4;

    std::uint64_t hits[kNumTypes] = {};
    std::uint64_t misses[kNumTypes] = {};
    std::uint64_t bypasses = 0;
    std::uint64_t writebacksIssued = 0;  ///< dirty evictions sent below
    std::uint64_t evictions = 0;
    /** Evictions keyed by the access type of the incoming fill. */
    std::uint64_t evictionsByFill[kNumTypes] = {};
    std::uint64_t prefetchesIssued = 0;  ///< prefetch fills requested
    std::uint64_t prefetchesUseful = 0;  ///< prefetched lines later hit

    std::uint64_t hitsOf(AccessType t) const
    {
        return hits[static_cast<std::size_t>(t)];
    }
    std::uint64_t missesOf(AccessType t) const
    {
        return misses[static_cast<std::size_t>(t)];
    }

    /** Demand = loads + stores (what MPKI counts; no WB, no prefetch). */
    std::uint64_t demandHits() const;
    std::uint64_t demandMisses() const;
    std::uint64_t demandAccesses() const;
    double demandMissRate() const;

    /** Register every counter under "<prefix>." in @p metrics. */
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix) const;

    void reset() { *this = CacheStats{}; }
};

class DramLevel;

/**
 * One cache level.
 */
class Cache final : public MemoryLevel
{
  public:
    /**
     * Build a cache whose replacement policy is created by name from
     * @p config.replacement.
     * @param next the level below (not owned; may not be null).
     */
    Cache(const CacheConfig &config, MemoryLevel *next);

    /** Build a cache with an explicitly injected policy (Belady). */
    Cache(const CacheConfig &config, MemoryLevel *next,
          std::unique_ptr<ReplacementPolicy> policy);

    Cycle access(Addr addr, Pc pc, AccessType type, Cycle now) override;
    const std::string &levelName() const override { return cfg.name; }

    /**
     * Functional probe: @return true iff the block holding @p addr is
     * resident. Does not touch replacement state or statistics.
     */
    bool contains(Addr addr) const;

    const CacheConfig &config() const { return cfg; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Export the replacement policy's and prefetcher's internal
     * metrics under "<prefix>.policy." / "<prefix>.prefetcher.".
     * (The level's own counters travel in CacheStats snapshots and are
     * exported from there.)
     */
    void exportDynamicMetrics(MetricsRegistry &metrics,
                              const std::string &prefix) const;
    ReplacementPolicy &policy() { return *repl; }
    const ReplacementPolicy &policy() const { return *repl; }

    /** Clear line state and statistics (not policy state). */
    void invalidateAll();

    /**
     * Functional probe: invalidate the block holding @p addr if it is
     * resident. Clears the valid/dirty/prefetched bits (no writeback is
     * issued) and leaves replacement-policy metadata untouched, so the
     * next fill to the set lands in the freed way via the invalid-way
     * fast path. Used by tests to pin the fused-scan way choice.
     * @return true iff the block was resident.
     */
    bool invalidate(Addr addr);

    void
    resetStats()
    {
        stats_.reset();
        for (CacheStats &slice : coreStats_)
            slice.reset();
        skippedAccesses_ = 0;
        std::fill(setDemandAccesses_.begin(), setDemandAccesses_.end(), 0);
        std::fill(setDemandMisses_.begin(), setDemandMisses_.end(), 0);
    }

    // ---- two-speed simulation support -------------------------------

    /**
     * Functional (timing-free) warmup: while enabled, misses that
     * would go to DRAM (or any non-cache level below) return
     * immediately instead of walking the bank queues. Tags,
     * replacement metadata and prefetcher state still update exactly
     * as in timed mode — only timing state is skipped. Set on the
     * DRAM-adjacent cache by the simulator during functional warmup
     * and cleared at the warmup boundary.
     */
    void setFunctionalMode(bool on) { functional_ = on; }
    bool functionalMode() const { return functional_; }

    /** @return true iff set-sampling is enabled (sampleSets > 1). */
    bool samplingEnabled() const { return sampling_; }

    /** @return true iff @p set is simulated under the sampling filter
     *  (always true when sampling is off). The selection is a pure
     *  function of (set count, sample rate), so it is identical across
     *  runs, processes and --jobs values. */
    bool
    setIsSampled(std::uint32_t set) const
    {
        return !sampling_ || testBit(sampledSetBits_, set);
    }

    /** Number of sets actually simulated (== numSets / sampleSets). */
    std::uint32_t sampledSetCount() const
    {
        return sampling_ ? sampledSetCount_ : sets;
    }

    /** Accesses dropped by the sampling filter since the last reset. */
    std::uint64_t skippedAccesses() const { return skippedAccesses_; }

    // ---- multi-core co-run support ----------------------------------
    //
    // A shared LLC serving several cores attributes every statistic to
    // the core that caused it: each counter site increments both the
    // shared CacheStats and the active core's slice, so the slices sum
    // exactly to the shared totals by construction. Single-core caches
    // never enable this and pay one always-false branch per counter.

    /**
     * Allocate @p num_cores per-core statistics slices and start
     * attributing to core 0. Call once, before any traffic.
     */
    void enableCoreAttribution(unsigned num_cores);

    /**
     * Attribute subsequent accesses (and their evictions, writebacks
     * and prefetches) to @p core. The co-run arbiter calls this before
     * stepping each core's simulator. No-op requirement: attribution
     * must be enabled first.
     */
    void
    setActiveCore(unsigned core)
    {
        coreSlice_ = &coreStats_[core];
        if (waysPerCore_ != 0) {
            partLo_ = core * waysPerCore_;
            partHi_ = partLo_ + waysPerCore_;
        }
    }

    /** The statistics slice attributed to @p core. */
    const CacheStats &
    coreStats(unsigned core) const
    {
        return coreStats_[core];
    }

    /** Number of per-core slices (0 when attribution is disabled). */
    unsigned
    attributedCores() const
    {
        return static_cast<unsigned>(coreStats_.size());
    }

    /**
     * Statically partition the ways among the attributed cores: core c
     * may only fill ways [c*K, (c+1)*K). Hits are still allowed in any
     * way (lines are not migrated). Within its partition a core evicts
     * the least-recently-touched line via a cache-maintained tick; the
     * replacement policy is still trained on every access but no longer
     * chooses victims, and it can no longer bypass. Ways beyond
     * numCores*K are never filled. Requires enableCoreAttribution()
     * first; K == 0 restores the shared (unpartitioned) mode.
     */
    void setWayPartition(std::uint32_t ways_per_core);

    /**
     * Hook invoked at the start of every demand (non-writeback) access
     * with (block address, pc, type). Used to record the LLC stream for
     * the Belady oracle and by tests.
     */
    using AccessHook = std::function<void(Addr, Pc, AccessType)>;
    void setAccessHook(AccessHook hook)
    {
        accessHook = std::move(hook);
        rearmHooks();
    }

    /**
     * One fully resolved access, as observed by the event hook. Fired
     * once per access() call (including writebacks and recursive
     * prefetch fills), after the hit/miss outcome, victim choice and
     * installation are known. This is the observation point the
     * differential-testing subsystem replays against its reference
     * models; the hook sees exactly what the statistics count.
     */
    struct AccessEvent
    {
        Addr block = kInvalidAddr;  ///< block-aligned address accessed
        Pc pc = 0;
        AccessType type = AccessType::Load;
        std::uint32_t set = 0;
        /** Hit way, or the way filled; undefined when bypassed. */
        std::uint32_t way = 0;
        bool hit = false;
        /** True when the policy elected not to install the fill. */
        bool bypassed = false;
        /** Block evicted to make room, or kInvalidAddr if the fill
         *  landed in an invalid way (or the access hit/bypassed). */
        Addr victimBlock = kInvalidAddr;
    };

    using EventHook = std::function<void(const AccessEvent &)>;
    void setEventHook(EventHook hook)
    {
        eventHook = std::move(hook);
        rearmHooks();
    }

  private:
    /**
     * Devirtualized hit-path policy update. The builtin policies'
     * on-hit behaviour is a one-line metadata touch; detecting the
     * exact concrete type at construction lets the hit path skip the
     * virtual update() call. Detection is by exact typeid so unknown
     * subclasses always take Generic (the full virtual call).
     */
    enum class HitUpdate : std::uint8_t
    {
        Generic,   ///< virtual repl->update(..., hit=true)
        LruTouch,  ///< LruPolicy: lastUse = ++clock
        NoOp,      ///< FifoPolicy / RandomPolicy: hits change nothing
        NruMark,   ///< NruPolicy: referenced bit set
        RripTouch, ///< RRIP family: RRPV promoted to 0
    };

    /** Run the prefetcher after a demand access and issue its picks. */
    void issuePrefetches(Addr block, Pc pc, bool hit, Cycle now);

    /** Classify repl's concrete type and cache the fast-path pointer. */
    void detectHitFastPath();

    /** Keep hooksArmed_ in sync with the two hook slots. */
    void rearmHooks()
    {
        hooksArmed_ = static_cast<bool>(accessHook) ||
                      static_cast<bool>(eventHook);
    }

    /**
     * Forward an access to the level below, using the cached concrete
     * pointer (direct call — Cache and DramLevel are final) when the
     * next level is one of ours, else the virtual interface.
     */
    Cycle belowAccess(Addr addr, Pc pc, AccessType type, Cycle now);

    static bool
    testBit(const std::vector<std::uint64_t> &bits, std::size_t i)
    {
        return (bits[i >> 6] >> (i & 63)) & 1u;
    }
    static void
    setBit(std::vector<std::uint64_t> &bits, std::size_t i)
    {
        bits[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
    static void
    clearBit(std::vector<std::uint64_t> &bits, std::size_t i)
    {
        bits[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    CacheConfig cfg;
    std::uint32_t sets;
    unsigned blockBits;
    MemoryLevel *below;
    /** Concrete view of `below` when it is a Cache / DramLevel. */
    Cache *belowCache = nullptr;
    DramLevel *belowDram = nullptr;
    std::unique_ptr<ReplacementPolicy> repl;
    std::unique_ptr<Prefetcher> prefetch;

    /**
     * SoA line state, indexed [set * numWays + way]. A tag is
     * meaningful only while its valid bit is set.
     */
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> validBits_;
    std::vector<std::uint64_t> dirtyBits_;
    std::vector<std::uint64_t> prefetchedBits_;

    HitUpdate hitUpdate_ = HitUpdate::Generic;
    /** Concrete policy pointer backing the non-Generic fast paths. */
    LruPolicy *lruFast_ = nullptr;
    NruPolicy *nruFast_ = nullptr;
    RripBase *rripFast_ = nullptr;

    CacheStats stats_;
    /**
     * Per-core attribution slices (empty when disabled). coreSlice_
     * points at the active core's slice, or is null in single-core
     * mode so every counter site pays exactly one predictable branch.
     */
    std::vector<CacheStats> coreStats_;
    CacheStats *coreSlice_ = nullptr;
    /** Static way partitioning (0 = shared). */
    std::uint32_t waysPerCore_ = 0;
    /** Active core's fill window [partLo_, partHi_); whole cache when
     *  partHi_ == 0 (the unpartitioned common case). */
    std::uint32_t partLo_ = 0;
    std::uint32_t partHi_ = 0;
    /** Per-line last-touch ticks backing within-partition LRU
     *  eviction; allocated lazily by setWayPartition(). */
    std::vector<std::uint64_t> partTick_;
    std::uint64_t partClock_ = 0;
    AccessHook accessHook;
    EventHook eventHook;
    /** One-branch guard for the hook calls on the hot path. */
    bool hooksArmed_ = false;
    std::vector<Addr> prefetchScratch;

    /** Pick the sampled-set subset (ctor helper; no-op at rate 1). */
    void initSampling();

    /** One-branch guard for the sampling filter (sampleSets > 1). */
    bool sampling_ = false;
    /** Functional-warmup flag: skip the non-cache level below. */
    bool functional_ = false;
    /** Bitmap of simulated sets (empty when sampling is off). */
    std::vector<std::uint64_t> sampledSetBits_;
    std::uint32_t sampledSetCount_ = 0;
    /** Accesses dropped by the sampling filter. */
    std::uint64_t skippedAccesses_ = 0;
    /**
     * Per-set demand access/miss counts on sampled sets, backing the
     * exported sampling-error gauge (empty when sampling is off).
     */
    std::vector<std::uint64_t> setDemandAccesses_;
    std::vector<std::uint64_t> setDemandMisses_;
};

/** Adapter presenting a DramModel as the bottom MemoryLevel. */
class DramModel;

class DramLevel final : public MemoryLevel
{
  public:
    explicit DramLevel(DramModel &dram);

    Cycle access(Addr addr, Pc pc, AccessType type, Cycle now) override;
    const std::string &levelName() const override { return name; }

  private:
    DramModel &dram;
    std::string name = "DRAM";
};

} // namespace cachescope

#endif // CACHESCOPE_CORE_CACHE_HH
