/**
 * @file
 * Online PC/address-correlation profiler.
 *
 * The paper's explanation for why PC-indexed replacement policies
 * (SHiP, Hawkeye, Glider, MPPPB) collapse on graph analytics is a
 * property of the access stream itself: a handful of memory PCs each
 * touch enormous address footprints, so a PC carries almost no
 * information about the fate of the next line it touches. CacheScope's
 * end-state metrics (MPKI, speedup) show the *consequence*; this
 * subsystem measures the *evidence*, online, at the LLC.
 *
 * It attaches to Cache's per-access event hook and records, for every
 * demand access to a *sampled set* (set % sampleRate == 0):
 *  - per-PC access and hit counts,
 *  - per-PC distinct-block footprint via a HyperLogLog sketch
 *    (~6.5% standard error, 256 B per PC),
 *  - per-PC reuse distance (gap in sampled demand accesses since the
 *    block was last touched), in log2 buckets.
 * Globally it derives the PC-access entropy and the footprint
 * concentration curve (fraction of accesses from the top-k PCs) — the
 * paper's contrast is "top-8 PCs cover >90% of graph-kernel accesses".
 *
 * Set-sampling keeps the cost proportional to 1/sampleRate; with the
 * profiler disarmed the cache hot path pays only its existing
 * one-branch hook guard. Sampled estimates are scaled back to
 * full-stream units by sampleRate (documented per metric); rate 1 is
 * exact for counts and exact-up-to-sketch-error for footprints.
 *
 * Determinism: all exported values are derived from integer counters,
 * register-max sketches and a fixed summation order (PCs sorted by
 * access count, ties by PC), so equal access streams produce
 * byte-identical profile.* metric trees regardless of --jobs.
 */

#ifndef CACHESCOPE_PROFILE_ONLINE_PROFILER_HH
#define CACHESCOPE_PROFILE_ONLINE_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "profile/hll.hh"
#include "stats/metrics.hh"
#include "util/types.hh"

namespace cachescope {

/** Configuration of the online profiler (part of SimConfig). */
struct ProfileConfig
{
    /** Off by default: nothing is attached and nothing is exported. */
    bool enabled = false;
    /**
     * Profile only sets with (set index % sampleRate == 0). 1 = every
     * set (exact counts); N trades accuracy for speed and memory on
     * long runs. Counts and footprints are scaled back by sampleRate
     * on export.
     */
    std::uint32_t sampleRate = 1;
};

class OnlineProfiler
{
  public:
    /** Reuse-distance log2 buckets: [0], [1], [2,3], ... , [2^31,inf). */
    static constexpr std::size_t kReuseBuckets = 34;
    /** Ranked per-PC rows exported under top_pc.<rank>.*. */
    static constexpr std::size_t kTopPcs = 8;
    /** The k values of the exported concentration curve. */
    static constexpr std::array<std::uint32_t, 8> kConcentrationK = {
        1, 2, 4, 8, 16, 32, 64, 128};

    OnlineProfiler(const ProfileConfig &config, std::uint32_t num_sets);

    /**
     * Record one fully resolved demand access (the caller filters out
     * writebacks and prefetch fills). Unsampled sets cost one modulo
     * and a branch.
     */
    void onAccess(std::uint32_t set, Addr block, Pc pc, bool hit);

    /** Drop all recorded state (the warmup boundary). */
    void reset();

    /** One aggregated per-PC row. */
    struct PcRow
    {
        Pc pc = 0;
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t reuseSamples = 0;
        /** Estimated distinct blocks touched, scaled by sampleRate. */
        double footprintBlocks = 0.0;
        /** Mean reuse distance in demand accesses (scaled). */
        double reuseMean = 0.0;
        /** Bucket-resolution percentiles (lower bounds, scaled). */
        std::uint64_t reuseP50 = 0;
        std::uint64_t reuseP90 = 0;
    };

    /** The full derived characterization. */
    struct Summary
    {
        std::uint32_t sampleRate = 1;
        std::uint32_t sampledSets = 0;
        std::uint64_t demandAccesses = 0;
        std::uint64_t sampledAccesses = 0;
        std::uint64_t sampledHits = 0;
        /** Sampled accesses whose block had no prior touch. */
        std::uint64_t coldAccesses = 0;
        std::uint64_t reuseSamples = 0;
        /** Estimated distinct blocks over all PCs (scaled). */
        double footprintBlocks = 0.0;
        /** Shannon entropy of the per-PC access distribution. */
        double entropyBits = 0.0;
        /** Fraction of sampled accesses from the top-k PCs, for each
         *  k in kConcentrationK (1.0 once k >= distinct PCs). */
        std::array<double, kConcentrationK.size()> concentration = {};
        /** Smallest number of PCs covering >= 90% of accesses. */
        std::uint64_t pcsFor90 = 0;
        /** Every PC, sorted by accesses desc, then PC asc. */
        std::vector<PcRow> rows;
    };

    Summary summarize() const;

    /**
     * Export the summary under "<prefix>." (counters for exact
     * quantities, gauges for estimates/ratios; the top kTopPcs rows
     * under "<prefix>.top_pc.<rank>."). Deterministic byte-for-byte
     * for equal access streams.
     */
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix = "profile") const;

    const ProfileConfig &config() const { return cfg; }

  private:
    struct PcState
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t reuseCount = 0;
        std::uint64_t reuseSum = 0;
        std::array<std::uint64_t, kReuseBuckets> reuse = {};
        HllSketch footprint;
    };

    ProfileConfig cfg;
    std::uint32_t numSets;
    std::uint64_t demandAccesses_ = 0;
    std::uint64_t sampledAccesses_ = 0;
    std::uint64_t sampledHits_ = 0;
    std::uint64_t coldAccesses_ = 0;
    HllSketch globalFootprint_;
    std::unordered_map<Pc, PcState> perPc_;
    /** block -> sampled-access index of its last touch. */
    std::unordered_map<Addr, std::uint64_t> lastTouch_;
};

} // namespace cachescope

#endif // CACHESCOPE_PROFILE_ONLINE_PROFILER_HH
