/**
 * @file
 * A small HyperLogLog cardinality sketch for per-PC footprint tracking.
 *
 * The online profiler keeps one sketch per memory PC, so the constant
 * matters: 2^8 = 256 single-byte registers give a standard error of
 * 1.04/sqrt(256) ~= 6.5%, which is far below the footprint contrast the
 * paper's argument needs (graph kernels: millions of blocks per PC;
 * SPEC-like code: hundreds) at 256 bytes per tracked PC.
 *
 * Determinism contract: add() and merge() are commutative and
 * idempotent (registers only ever move up, by max), so sketches built
 * from any interleaving of the same multiset of values are identical —
 * this is what keeps profile.* metric trees byte-identical across
 * --jobs settings.
 */

#ifndef CACHESCOPE_PROFILE_HLL_HH
#define CACHESCOPE_PROFILE_HLL_HH

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace cachescope {

class HllSketch
{
  public:
    static constexpr unsigned kPrecision = 8;
    static constexpr std::size_t kRegisters = 1u << kPrecision;

    /** Record @p value (a block address) into the sketch. */
    void
    add(std::uint64_t value)
    {
        const std::uint64_t h = mix(value);
        const std::size_t idx =
            static_cast<std::size_t>(h >> (64 - kPrecision));
        // Rank of the remaining 56 bits: leading-zero count + 1,
        // saturated so an all-zero suffix still yields a valid rank.
        const std::uint64_t rest = h << kPrecision;
        const std::uint8_t rank = static_cast<std::uint8_t>(
            rest == 0 ? (64 - kPrecision + 1)
                      : std::countl_zero(rest) + 1);
        if (rank > regs[idx])
            regs[idx] = rank;
    }

    /** Fold @p other in (register-wise max; order-independent). */
    void
    merge(const HllSketch &other)
    {
        for (std::size_t i = 0; i < kRegisters; ++i)
            if (other.regs[i] > regs[i])
                regs[i] = other.regs[i];
    }

    /**
     * @return the estimated number of distinct values added, with the
     * standard linear-counting correction for the small-cardinality
     * range (where the raw harmonic estimator biases high).
     */
    double
    estimate() const
    {
        double inv_sum = 0.0;
        unsigned zeros = 0;
        for (const std::uint8_t r : regs) {
            inv_sum += std::ldexp(1.0, -static_cast<int>(r));
            zeros += (r == 0);
        }
        const double m = static_cast<double>(kRegisters);
        const double alpha = 0.7213 / (1.0 + 1.079 / m);
        const double raw = alpha * m * m / inv_sum;
        if (raw <= 2.5 * m && zeros != 0)
            return m * std::log(m / static_cast<double>(zeros));
        return raw;
    }

    bool
    empty() const
    {
        for (const std::uint8_t r : regs)
            if (r != 0)
                return false;
        return true;
    }

    void reset() { regs.fill(0); }

  private:
    /** splitmix64 finalizer: cheap, well-mixed, and fully specified
     *  here (no std:: hashing, which would vary across libraries). */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9E3779B97F4A7C15ull;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        return x ^ (x >> 31);
    }

    std::array<std::uint8_t, kRegisters> regs = {};
};

} // namespace cachescope

#endif // CACHESCOPE_PROFILE_HLL_HH
