/**
 * @file
 * Online profiler implementation.
 */

#include "profile/online_profiler.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace cachescope {

namespace {

/** Lower bound of log2 reuse bucket @p b (see kReuseBuckets). */
std::uint64_t
bucketLowerBound(std::size_t b)
{
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

/**
 * Smallest bucket lower bound v with P(distance <= bucket) >= q, in
 * sampled-access units. Bucket resolution only — the profiler trades
 * exact percentiles for O(1) memory per PC.
 */
std::uint64_t
bucketPercentile(const std::array<std::uint64_t,
                                  OnlineProfiler::kReuseBuckets> &buckets,
                 std::uint64_t count, double q)
{
    if (count == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        cum += buckets[b];
        if (cum >= target)
            return bucketLowerBound(b);
    }
    return bucketLowerBound(buckets.size() - 1);
}

std::uint64_t
roundToCounter(double v)
{
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

} // anonymous namespace

OnlineProfiler::OnlineProfiler(const ProfileConfig &config,
                               std::uint32_t num_sets)
    : cfg(config), numSets(num_sets)
{
    CS_ASSERT(cfg.sampleRate >= 1, "profile sample rate must be >= 1");
    CS_ASSERT(num_sets > 0, "profiler needs a non-empty cache");
}

void
OnlineProfiler::onAccess(std::uint32_t set, Addr block, Pc pc, bool hit)
{
    ++demandAccesses_;
    if (cfg.sampleRate != 1 && set % cfg.sampleRate != 0)
        return;

    ++sampledAccesses_;
    sampledHits_ += hit;
    globalFootprint_.add(block);

    PcState &state = perPc_[pc];
    ++state.accesses;
    state.hits += hit;
    state.footprint.add(block);

    // Reuse distance: gap in sampled demand accesses since this block
    // was last touched (by any PC), attributed to the touching PC.
    // First touches are "cold" — no distance to record.
    const std::uint64_t now = sampledAccesses_;
    auto [it, inserted] = lastTouch_.try_emplace(block, now);
    if (inserted) {
        ++coldAccesses_;
        return;
    }
    const std::uint64_t distance = now - it->second;
    it->second = now;
    ++state.reuseCount;
    state.reuseSum += distance;
    const auto bucket = std::min<std::size_t>(
        std::bit_width(distance), kReuseBuckets - 1);
    ++state.reuse[bucket];
}

void
OnlineProfiler::reset()
{
    demandAccesses_ = 0;
    sampledAccesses_ = 0;
    sampledHits_ = 0;
    coldAccesses_ = 0;
    globalFootprint_.reset();
    perPc_.clear();
    lastTouch_.clear();
}

OnlineProfiler::Summary
OnlineProfiler::summarize() const
{
    Summary s;
    s.sampleRate = cfg.sampleRate;
    // Sets 0, R, 2R, ... below numSets.
    s.sampledSets = (numSets + cfg.sampleRate - 1) / cfg.sampleRate;
    s.demandAccesses = demandAccesses_;
    s.sampledAccesses = sampledAccesses_;
    s.sampledHits = sampledHits_;
    s.coldAccesses = coldAccesses_;
    const double scale = static_cast<double>(cfg.sampleRate);
    s.footprintBlocks = globalFootprint_.estimate() * scale;

    s.rows.reserve(perPc_.size());
    for (const auto &[pc, state] : perPc_) {
        PcRow row;
        row.pc = pc;
        row.accesses = state.accesses;
        row.hits = state.hits;
        row.reuseSamples = state.reuseCount;
        row.footprintBlocks = state.footprint.estimate() * scale;
        if (state.reuseCount != 0) {
            row.reuseMean = static_cast<double>(state.reuseSum) /
                            static_cast<double>(state.reuseCount) * scale;
            row.reuseP50 =
                bucketPercentile(state.reuse, state.reuseCount, 0.50) *
                cfg.sampleRate;
            row.reuseP90 =
                bucketPercentile(state.reuse, state.reuseCount, 0.90) *
                cfg.sampleRate;
        }
        s.rows.push_back(row);
    }
    // The canonical order everything below sums in: hottest PC first,
    // ties by PC. Fixed order makes the floating-point reductions
    // (entropy, concentration) byte-stable across runs and --jobs.
    std::sort(s.rows.begin(), s.rows.end(),
              [](const PcRow &a, const PcRow &b) {
                  if (a.accesses != b.accesses)
                      return a.accesses > b.accesses;
                  return a.pc < b.pc;
              });

    if (sampledAccesses_ != 0) {
        const double total = static_cast<double>(sampledAccesses_);
        double entropy = 0.0;
        for (const PcRow &row : s.rows) {
            const double p = static_cast<double>(row.accesses) / total;
            entropy -= p * std::log2(p);
        }
        s.entropyBits = entropy;

        std::uint64_t cum = 0;
        std::size_t next_k = 0;
        const std::uint64_t threshold90 =
            (sampledAccesses_ * 9 + 9) / 10; // ceil(0.9 * accesses)
        for (std::size_t i = 0; i < s.rows.size(); ++i) {
            cum += s.rows[i].accesses;
            if (s.pcsFor90 == 0 && cum >= threshold90)
                s.pcsFor90 = i + 1;
            while (next_k < kConcentrationK.size() &&
                   i + 1 == kConcentrationK[next_k]) {
                s.concentration[next_k] =
                    static_cast<double>(cum) / total;
                ++next_k;
            }
        }
        // Fewer PCs than k: the curve saturates at full coverage.
        for (; next_k < kConcentrationK.size(); ++next_k)
            s.concentration[next_k] = 1.0;
    }
    return s;
}

void
OnlineProfiler::exportMetrics(MetricsRegistry &metrics,
                              const std::string &prefix) const
{
    const Summary s = summarize();
    const std::string p = prefix.empty() ? "" : prefix + ".";

    metrics.setCounter(p + "sample_rate", s.sampleRate);
    metrics.setCounter(p + "sampled_sets", s.sampledSets);
    metrics.setCounter(p + "demand_accesses", s.demandAccesses);
    metrics.setCounter(p + "sampled_accesses", s.sampledAccesses);
    metrics.setCounter(p + "sampled_hits", s.sampledHits);
    metrics.setCounter(p + "cold_accesses", s.coldAccesses);
    metrics.setCounter(p + "distinct_pcs", s.rows.size());
    metrics.setCounter(p + "pcs_for_90pct", s.pcsFor90);
    metrics.setCounter(p + "footprint_blocks",
                       roundToCounter(s.footprintBlocks));
    metrics.setGauge(p + "pc_entropy_bits", s.entropyBits);
    for (std::size_t i = 0; i < kConcentrationK.size(); ++i) {
        metrics.setGauge(p + "concentration.top_" +
                             std::to_string(kConcentrationK[i]),
                         s.concentration[i]);
    }

    const std::size_t ranked = std::min(s.rows.size(), kTopPcs);
    for (std::size_t i = 0; i < ranked; ++i) {
        const PcRow &row = s.rows[i];
        const std::string rp = p + "top_pc." + std::to_string(i + 1) + ".";
        metrics.setCounter(rp + "pc", row.pc);
        metrics.setCounter(rp + "accesses", row.accesses);
        metrics.setCounter(rp + "hits", row.hits);
        metrics.setCounter(rp + "reuse_samples", row.reuseSamples);
        metrics.setCounter(rp + "footprint_blocks",
                           roundToCounter(row.footprintBlocks));
        metrics.setGauge(rp + "hit_rate",
                         row.accesses == 0
                             ? 0.0
                             : static_cast<double>(row.hits) /
                                   static_cast<double>(row.accesses));
        metrics.setGauge(rp + "reuse_mean", row.reuseMean);
        metrics.setGauge(rp + "reuse_p50",
                         static_cast<double>(row.reuseP50));
        metrics.setGauge(rp + "reuse_p90",
                         static_cast<double>(row.reuseP90));
    }
}

} // namespace cachescope
