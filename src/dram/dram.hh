/**
 * @file
 * DDR4 SDRAM timing model.
 *
 * This is a bank-state model in the style of ChampSim's DRAM controller:
 * each bank tracks its open row and next-ready cycle, each channel tracks
 * data-bus occupancy, and a request's latency is derived from the DDR4
 * timing parameters (tCAS/tRCD/tRP) plus queueing behind earlier requests
 * to the same bank or bus. It is cycle-approximate, not a full command
 * scheduler — sufficient for studying LLC replacement, where what matters
 * is that DRAM is slow, row hits are cheaper, and bank contention grows
 * with miss pressure.
 */

#ifndef CACHESCOPE_DRAM_DRAM_HH
#define CACHESCOPE_DRAM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace cachescope {

class MetricsRegistry;

/**
 * DDR4 organization and timing configuration.
 *
 * Timings are expressed in CPU cycles; the factory dramDdr4_2933()
 * converts from nanoseconds at a given core frequency.
 */
struct DramConfig
{
    std::uint32_t channels = 1;
    std::uint32_t ranksPerChannel = 2;
    std::uint32_t banksPerRank = 16;
    std::uint64_t rowBytes = 8192;
    std::uint64_t capacityBytes = 8ull << 30;
    std::uint32_t blockBytes = 64;

    /** Column access strobe latency (CPU cycles). */
    Cycle tCas = 55;
    /** Row-to-column delay (CPU cycles). */
    Cycle tRcd = 55;
    /** Row precharge (CPU cycles). */
    Cycle tRp = 55;
    /** Data-bus occupancy of one 64 B burst (CPU cycles). */
    Cycle tBurst = 11;
    /** Fixed controller/queue pipeline overhead per request (CPU cycles). */
    Cycle tController = 20;

    /**
     * Build the paper's memory system: 8 GB DDR4-2933, one channel,
     * with nanosecond timings converted at @p cpu_freq_ghz.
     */
    static DramConfig ddr4_2933(double cpu_freq_ghz = 4.0);
};

/** Counters exported by the DRAM model. */
struct DramStats
{
    std::uint64_t reads = 0;
    /** Buffered writes (writebacks); cost bus bandwidth only. */
    std::uint64_t writes = 0;
    /** Row-buffer outcome counters; reads only (writes are buffered). */
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;     ///< bank had no open row
    std::uint64_t rowConflicts = 0;  ///< bank had a different row open
    Cycle totalLatency = 0;          ///< sum of request latencies

    std::uint64_t accesses() const { return reads + writes; }
    double
    avgLatency() const
    {
        return accesses() == 0
            ? 0.0
            : static_cast<double>(totalLatency) /
              static_cast<double>(accesses());
    }
    /** Fraction of reads hitting an open row. */
    double
    rowHitRate() const
    {
        return reads == 0
            ? 0.0
            : static_cast<double>(rowHits) / static_cast<double>(reads);
    }

    /** Register every counter under "<prefix>." in @p metrics. */
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix) const;
};

/**
 * The DRAM device + controller model. Requests are issued with the CPU
 * cycle at which they reach the memory controller and return the cycle
 * at which the critical word is delivered.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /**
     * Issue a read for the block containing @p addr.
     * @param addr physical byte address.
     * @param now cycle the request reaches the controller.
     * @return cycle at which data is available.
     */
    Cycle read(Addr addr, Cycle now) { return access(addr, now, false); }

    /** Issue a (writeback) write; returns completion cycle. */
    Cycle write(Addr addr, Cycle now) { return access(addr, now, true); }

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return cfg; }

    /** Reset all bank/bus state and statistics. */
    void reset();

    /** Reset statistics only; bank and bus state are preserved. */
    void resetStats() { stats_ = DramStats{}; }

    /** Decomposed address for tests and debugging. */
    struct Mapping
    {
        std::uint32_t channel;
        std::uint32_t rank;
        std::uint32_t bank;
        std::uint64_t row;
        std::uint64_t column;
    };

    /** @return the channel/rank/bank/row/column decomposition of @p addr. */
    Mapping map(Addr addr) const;

  private:
    struct BankState
    {
        std::uint64_t openRow = ~std::uint64_t{0};
        bool hasOpenRow = false;
        Cycle readyCycle = 0;
    };

    Cycle access(Addr addr, Cycle now, bool is_write);

    DramConfig cfg;
    DramStats stats_;
    /** One entry per (channel, rank, bank), flattened. */
    std::vector<BankState> banks;
    /** Data-bus next-free cycle, per channel. */
    std::vector<Cycle> busFree;

    std::uint64_t blocksPerRow;
    std::uint32_t totalBanksPerChannel;
};

} // namespace cachescope

#endif // CACHESCOPE_DRAM_DRAM_HH
