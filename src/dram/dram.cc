/**
 * @file
 * DDR4 model implementation.
 */

#include "dram/dram.hh"

#include <algorithm>
#include <cmath>

#include "stats/metrics.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

void
DramStats::exportMetrics(MetricsRegistry &metrics,
                         const std::string &prefix) const
{
    const std::string p = prefix.empty() ? "" : prefix + ".";
    metrics.setCounter(p + "reads", reads);
    metrics.setCounter(p + "writes", writes);
    metrics.setCounter(p + "row_hits", rowHits);
    metrics.setCounter(p + "row_misses", rowMisses);
    metrics.setCounter(p + "row_conflicts", rowConflicts);
    metrics.setCounter(p + "total_latency_cycles", totalLatency);
    if (accesses() > 0)
        metrics.setGauge(p + "avg_latency_cycles", avgLatency());
    if (reads > 0)
        metrics.setGauge(p + "row_hit_rate", rowHitRate());
}

DramConfig
DramConfig::ddr4_2933(double cpu_freq_ghz)
{
    // DDR4-2933 CL21-21-21: tCAS = tRCD = tRP = 21 / 1466.5 MHz ~= 14.3 ns.
    // One 64 B burst (BL8 on an 8 B bus) takes 8 beats at 2933 MT/s
    // ~= 2.73 ns. A constant ~5 ns covers controller pipeline and queue
    // arbitration.
    auto to_cycles = [cpu_freq_ghz](double ns) {
        return static_cast<Cycle>(std::llround(ns * cpu_freq_ghz));
    };
    DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 16;
    cfg.rowBytes = 8192;
    cfg.capacityBytes = 8ull << 30;
    cfg.blockBytes = 64;
    cfg.tCas = to_cycles(14.3);
    cfg.tRcd = to_cycles(14.3);
    cfg.tRp = to_cycles(14.3);
    cfg.tBurst = to_cycles(2.73);
    cfg.tController = to_cycles(5.0);
    return cfg;
}

DramModel::DramModel(const DramConfig &config) : cfg(config)
{
    CS_ASSERT(isPowerOf2(cfg.channels), "channels must be a power of 2");
    CS_ASSERT(isPowerOf2(cfg.ranksPerChannel), "ranks must be a power of 2");
    CS_ASSERT(isPowerOf2(cfg.banksPerRank), "banks must be a power of 2");
    CS_ASSERT(isPowerOf2(cfg.rowBytes), "row size must be a power of 2");
    CS_ASSERT(isPowerOf2(cfg.blockBytes), "block size must be a power of 2");
    CS_ASSERT(cfg.rowBytes >= cfg.blockBytes, "row smaller than a block");

    totalBanksPerChannel = cfg.ranksPerChannel * cfg.banksPerRank;
    blocksPerRow = cfg.rowBytes / cfg.blockBytes;
    banks.assign(static_cast<std::size_t>(cfg.channels) *
                 totalBanksPerChannel, BankState{});
    busFree.assign(cfg.channels, 0);
}

void
DramModel::reset()
{
    std::fill(banks.begin(), banks.end(), BankState{});
    std::fill(busFree.begin(), busFree.end(), Cycle{0});
    stats_ = DramStats{};
}

DramModel::Mapping
DramModel::map(Addr addr) const
{
    // Address layout (low to high):
    //   [block offset][channel][column][bank][rank][row]
    // Channel bits sit just above the block offset so consecutive blocks
    // stripe across channels; column bits next so a row's blocks stay in
    // one bank and produce row-buffer hits under streaming.
    std::uint64_t block = addr / cfg.blockBytes;
    Mapping m;
    m.channel = static_cast<std::uint32_t>(block & (cfg.channels - 1));
    block /= cfg.channels;
    m.column = block & (blocksPerRow - 1);
    block /= blocksPerRow;
    m.bank = static_cast<std::uint32_t>(block & (cfg.banksPerRank - 1));
    block /= cfg.banksPerRank;
    m.rank = static_cast<std::uint32_t>(block & (cfg.ranksPerChannel - 1));
    block /= cfg.ranksPerChannel;
    m.row = block;
    return m;
}

Cycle
DramModel::access(Addr addr, Cycle now, bool is_write)
{
    if (is_write) {
        // Writes land in the controller's write buffer and drain at
        // lowest priority when the bus idles. Modelling them inline —
        // closing rows or occupying the bus under the read stream —
        // makes read latency depend on *which* blocks were evicted and
        // *when*, an ordering artifact that swamps the replacement-
        // policy signal the experiments measure (observable as policies
        // with identical miss counts differing 2x in IPC). They are
        // therefore accounted for but not timed; see DESIGN.md.
        ++stats_.writes;
        stats_.totalLatency += cfg.tBurst;
        return now + cfg.tBurst;
    }

    const Mapping m = map(addr);
    const std::size_t bank_idx =
        static_cast<std::size_t>(m.channel) * totalBanksPerChannel +
        static_cast<std::size_t>(m.rank) * cfg.banksPerRank + m.bank;
    BankState &bank = banks[bank_idx];

    // The command cannot issue before the controller sees the request
    // or before the bank can accept its next command.
    const Cycle cmd_start = std::max(now + cfg.tController,
                                     bank.readyCycle);

    // Time from command issue to CAS issue (precharge/activate), and
    // the CAS itself.
    Cycle cas_at = cmd_start;
    if (bank.hasOpenRow && bank.openRow == m.row) {
        ++stats_.rowHits;
    } else if (!bank.hasOpenRow) {
        cas_at += cfg.tRcd;
        ++stats_.rowMisses;
    } else {
        cas_at += cfg.tRp + cfg.tRcd;
        ++stats_.rowConflicts;
    }

    bank.hasOpenRow = true; // open-page policy: leave the row open
    bank.openRow = m.row;

    // Column accesses to an open row pipeline: the bank can take the
    // next CAS one burst after this one, it does not wait for the data
    // to finish crossing the bus.
    bank.readyCycle = cas_at + cfg.tBurst;

    // Data transfer serializes on the channel's data bus.
    const Cycle data_start =
        std::max(cas_at + cfg.tCas, busFree[m.channel]);
    const Cycle done = data_start + cfg.tBurst;
    busFree[m.channel] = done;

    ++stats_.reads;
    stats_.totalLatency += done - now;

    return done;
}

} // namespace cachescope
