/**
 * @file
 * The metrics subsystem: a hierarchical counter/gauge/histogram
 * registry with a machine-readable JSON export.
 *
 * Every component that owns statistics (cache levels, the core, DRAM,
 * replacement policies, prefetchers, the sweep harness) exports into a
 * MetricsRegistry at *report* time — the hot path keeps its plain
 * `uint64_t` struct counters and pays nothing for this layer. Metrics
 * are keyed by dotted paths ("llc.hits.load"), which the JSON
 * serializer renders as nested objects, so downstream tooling (the
 * BENCH_*.json perf trajectory, the --metrics-json CLI flag) gets one
 * stable, greppable schema instead of hand-formatted tables.
 *
 * Three metric kinds:
 *  - counters: monotonically accumulated uint64 event counts. Merging
 *    two registries sums counters, so per-worker registries from a
 *    parallel sweep aggregate to exactly the serial totals
 *    (integer addition is order-independent).
 *  - gauges: point-in-time doubles (IPC, MPKI, wall time). Merging
 *    overwrites, so gauges are only meaningful under unique paths.
 *  - histograms: fixed-bucket distributions snapshotted from
 *    stats::Histogram. Merging sums counts bucket-wise.
 *
 * A path must name either a leaf or an interior node, never both
 * ("llc" and "llc.hits" cannot both be counters); violations are
 * internal errors caught at registration time.
 */

#ifndef CACHESCOPE_STATS_METRICS_HH
#define CACHESCOPE_STATS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/summary.hh"
#include "util/status.hh"

namespace cachescope {

/** JSON schema identifier emitted/required by the serializer. */
inline constexpr const char *kMetricsSchema = "cachescope-metrics-v1";

class MetricsRegistry
{
  public:
    /** Snapshot of a Histogram's buckets (width + counts + samples). */
    struct HistogramSnapshot
    {
        std::uint64_t width = 0;
        std::uint64_t samples = 0;
        std::vector<std::uint64_t> counts;

        bool
        operator==(const HistogramSnapshot &o) const
        {
            return width == o.width && samples == o.samples &&
                   counts == o.counts;
        }
    };

    /** Add @p delta to the counter at @p path (created at 0). */
    void addCounter(const std::string &path, std::uint64_t delta = 1);

    /** Overwrite the counter at @p path. */
    void setCounter(const std::string &path, std::uint64_t value);

    /** Overwrite the gauge at @p path. */
    void setGauge(const std::string &path, double value);

    /** Snapshot @p histogram under @p path (overwrites). */
    void setHistogram(const std::string &path, const Histogram &histogram);

    /** Install an already-built snapshot under @p path (overwrites). */
    void setHistogram(const std::string &path, HistogramSnapshot snapshot);

    /** @return the counter at @p path, or 0 if absent. */
    std::uint64_t counter(const std::string &path) const;

    /** @return the gauge at @p path, or 0.0 if absent. */
    double gauge(const std::string &path) const;

    bool hasCounter(const std::string &path) const;
    bool hasGauge(const std::string &path) const;
    bool hasHistogram(const std::string &path) const;

    /**
     * Fold @p other into this registry, optionally re-rooting its
     * paths under @p prefix. Counters sum, histograms sum bucket-wise
     * (widths must match), gauges overwrite.
     */
    void merge(const MetricsRegistry &other,
               const std::string &prefix = "");

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty() &&
               histograms_.empty();
    }

    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

    const std::map<std::string, double> &gauges() const { return gauges_; }

    const std::map<std::string, HistogramSnapshot> &
    histograms() const
    {
        return histograms_;
    }

    bool
    operator==(const MetricsRegistry &o) const
    {
        return counters_ == o.counters_ && gauges_ == o.gauges_ &&
               histograms_ == o.histograms_;
    }

  private:
    /** fatal() if @p path would be both a leaf and an interior node. */
    void checkPath(const std::string &path) const;

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, HistogramSnapshot> histograms_;
};

/**
 * One exportable metrics report: a registry plus the identification
 * and timing fields the BENCH_*.json perf-trajectory schema requires.
 */
struct MetricsDocument
{
    /** Experiment/run identifier ("fig2", "sweep:gap", ...). */
    std::string name;
    /** Wall-clock time of the run in milliseconds. */
    double wallMs = 0.0;
    MetricsRegistry metrics;
};

/**
 * @return @p doc rendered as pretty-printed JSON:
 * `{"schema": ..., "name": ..., "wall_ms": ..., "counters": {nested},
 *   "gauges": {nested}, "histograms": {flat path -> snapshot}}`.
 * Gauges are printed with round-trip precision.
 */
std::string metricsToJson(const MetricsDocument &doc);

/**
 * Parse a document produced by metricsToJson().
 * @return the document, or Corruption/InvalidArgument for malformed
 * input or an unknown schema identifier.
 */
Expected<MetricsDocument> metricsFromJson(const std::string &text);

/** Serialize @p doc to @p path (overwrites). */
Status writeMetricsJsonFile(const MetricsDocument &doc,
                            const std::string &path);

/** Read and parse the document at @p path. */
Expected<MetricsDocument> readMetricsJsonFile(const std::string &path);

} // namespace cachescope

#endif // CACHESCOPE_STATS_METRICS_HH
