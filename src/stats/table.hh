/**
 * @file
 * Result-table formatting: aligned ASCII tables for the console and CSV
 * for downstream plotting. Every bench binary reports through this so
 * figure data is regenerated in one consistent format.
 */

#ifndef CACHESCOPE_STATS_TABLE_HH
#define CACHESCOPE_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace cachescope {

/**
 * A simple rectangular table of strings with named columns.
 *
 * Cells are stored as text; addNumber() formats doubles with a fixed
 * precision so tables are stable across runs.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> column_names);

    /** Begin a new row; subsequent addCell()s fill it left to right. */
    void newRow();

    /** Append a text cell to the current row. */
    void addCell(std::string text);

    /** Append a numeric cell formatted to @p precision decimals. */
    void addNumber(double value, int precision = 3);

    /** @return number of data rows. */
    std::size_t numRows() const { return rows.size(); }

    /** @return cell text at (row, col). */
    const std::string &cell(std::size_t row, std::size_t col) const;

    /** Write an aligned, boxed ASCII rendering. */
    void printAscii(std::ostream &os) const;

    /** Write RFC-4180-ish CSV (quotes only when needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

} // namespace cachescope

#endif // CACHESCOPE_STATS_TABLE_HH
