/**
 * @file
 * Table rendering implementation.
 */

#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace cachescope {

Table::Table(std::vector<std::string> column_names)
    : columns(std::move(column_names))
{
    CS_ASSERT(!columns.empty(), "a table needs at least one column");
}

void
Table::newRow()
{
    if (!rows.empty() && rows.back().size() != columns.size()) {
        panic("previous table row has %zu cells, expected %zu",
              rows.back().size(), columns.size());
    }
    rows.emplace_back();
}

void
Table::addCell(std::string text)
{
    CS_ASSERT(!rows.empty(), "call newRow() before addCell()");
    CS_ASSERT(rows.back().size() < columns.size(), "row overflow");
    rows.back().push_back(std::move(text));
}

void
Table::addNumber(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    addCell(buf);
}

const std::string &
Table::cell(std::size_t row, std::size_t col) const
{
    return rows.at(row).at(col);
}

void
Table::printAscii(std::ostream &os) const
{
    std::vector<std::size_t> widths(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&]() {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << ' ' << text << std::string(widths[c] - text.size() + 1, ' ')
               << '|';
        }
        os << '\n';
    };

    rule();
    line(columns);
    rule();
    for (const auto &row : rows)
        line(row);
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::string &s) {
        if (s.find_first_of(",\"\n") != std::string::npos) {
            os << '"';
            for (char ch : s) {
                if (ch == '"')
                    os << '"';
                os << ch;
            }
            os << '"';
        } else {
            os << s;
        }
    };
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            os << ',';
        emit(columns[c]);
    }
    os << '\n';
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            emit(row[c]);
        }
        os << '\n';
    }
}

} // namespace cachescope
