/**
 * @file
 * Scalar summary statistics: means, geometric means, MPKI/IPC helpers.
 */

#ifndef CACHESCOPE_STATS_SUMMARY_HH
#define CACHESCOPE_STATS_SUMMARY_HH

#include <cstdint>
#include <vector>

namespace cachescope {

/** @return the arithmetic mean of @p values (0 for an empty vector). */
double mean(const std::vector<double> &values);

/**
 * @return the geometric mean of @p values (0 for an empty vector).
 * Non-positive and non-finite values are skipped with a warning (the
 * mean is taken over the remaining values; 0 if none remain) — one
 * failed speedup cell must not abort the whole summary. This is the
 * aggregation the paper uses for cross-workload speedups.
 */
double geomean(const std::vector<double> &values);

/** @return the population standard deviation of @p values. */
double stddev(const std::vector<double> &values);

/**
 * @return misses per kilo-instruction.
 * @param misses miss count over the measurement window.
 * @param instructions retired instructions over the same window.
 */
double mpki(std::uint64_t misses, std::uint64_t instructions);

/** @return instructions per cycle (0 if @p cycles is 0). */
double ipc(std::uint64_t instructions, std::uint64_t cycles);

/**
 * Relative standard error of a set-sampling estimate.
 *
 * Given per-set counts x_i observed on n sampled sets out of a
 * population of @p population_sets, the full-stream total is estimated
 * as T = population_sets * mean(x). Under sampling-without-replacement
 * the estimator's variance is population^2 * (1 - n/population) * s^2/n
 * (s^2 the sample variance), and this returns sqrt(Var)/T — the
 * fraction of the estimate one standard error spans. 0 when the
 * estimate is 0 or fewer than two sets were sampled (no variance
 * information). This is the "sampling-error gauge" exported per cell
 * with set-sampled simulations.
 */
double sampledEstimateRelativeStderr(
    const std::vector<double> &sampled_counts,
    std::uint64_t population_sets);

/**
 * Streaming mean/min/max accumulator for values observed one at a time.
 */
class RunningStat
{
  public:
    void add(double v);

    std::uint64_t count() const { return n; }
    double mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
    double min() const { return n == 0 ? 0.0 : lo; }
    double max() const { return n == 0 ? 0.0 : hi; }
    double total() const { return sum; }

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * A fixed-bucket histogram over [0, bucket_width * num_buckets), with an
 * overflow bucket. Used for reuse-distance and latency distributions.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    /** Record one sample. */
    void add(std::uint64_t value);

    /** @return count in bucket @p i (the last bucket is the overflow). */
    std::uint64_t bucket(std::size_t i) const { return counts.at(i); }

    std::size_t numBuckets() const { return counts.size(); }
    std::uint64_t bucketWidth() const { return width; }
    std::uint64_t totalSamples() const { return samples; }

    /**
     * @return the smallest value v such that P(X <= v) >= q, at bucket
     * resolution (a regular bucket answers with its inclusive upper
     * bound). A percentile landing in the open-ended overflow bucket
     * saturates to the overflow boundary bucketWidth()*(numBuckets()-1)
     * — "at least this" is all the histogram knows there.
     */
    std::uint64_t percentile(double q) const;

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> counts;
    std::uint64_t samples = 0;
};

} // namespace cachescope

#endif // CACHESCOPE_STATS_SUMMARY_HH
