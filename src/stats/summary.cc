/**
 * @file
 * Implementation of summary statistics.
 */

#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace cachescope {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    // The geometric mean is only defined over strictly positive
    // values. A zero (e.g. a failed cell reporting IPC 0) used to
    // abort the whole report; skip such values with a warning so one
    // bad cell cannot take down an otherwise complete summary.
    double log_sum = 0.0;
    std::size_t used = 0;
    for (double v : values) {
        if (!(v > 0.0) || !std::isfinite(v)) {
            warn("geomean: skipping non-positive or non-finite value "
                 "%g (%zu value(s) total)",
                 v, values.size());
            continue;
        }
        log_sum += std::log(v);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(used));
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
mpki(std::uint64_t misses, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(misses) /
           static_cast<double>(instructions);
}

double
ipc(std::uint64_t instructions, std::uint64_t cycles)
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double
sampledEstimateRelativeStderr(const std::vector<double> &sampled_counts,
                              std::uint64_t population_sets)
{
    const std::size_t n = sampled_counts.size();
    if (n < 2 || population_sets == 0)
        return 0.0;
    const double m = mean(sampled_counts);
    if (m <= 0.0)
        return 0.0;
    double acc = 0.0;
    for (double v : sampled_counts)
        acc += (v - m) * (v - m);
    // Sample (n-1) variance, finite-population correction, then the
    // standard error of the scaled total relative to the estimate. The
    // population factor cancels: rel = sqrt((1 - n/S) * s^2/n) / mean.
    const double s2 = acc / static_cast<double>(n - 1);
    const double fpc =
        1.0 - static_cast<double>(n) / static_cast<double>(population_sets);
    return std::sqrt(std::max(fpc, 0.0) * s2 / static_cast<double>(n)) / m;
}

void
RunningStat::add(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    sum += v;
    ++n;
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : width(bucket_width), counts(num_buckets + 1, 0)
{
    CS_ASSERT(bucket_width > 0, "bucket width must be non-zero");
    CS_ASSERT(num_buckets > 0, "need at least one bucket");
}

void
Histogram::add(std::uint64_t value)
{
    std::size_t idx = static_cast<std::size_t>(value / width);
    if (idx >= counts.size() - 1)
        idx = counts.size() - 1;
    ++counts[idx];
    ++samples;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (samples == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(samples)));
    // Regular buckets report their inclusive upper bound. The overflow
    // bucket covers [num_buckets * width, inf) and has no upper bound,
    // so a percentile landing there saturates to the overflow boundary
    // — the largest value the histogram can still resolve — instead of
    // fabricating a value one full bucket past the tracked range.
    const std::size_t overflow = counts.size() - 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= target)
            return i == overflow ? overflow * width : (i + 1) * width - 1;
    }
    return overflow * width;
}

} // namespace cachescope
