/**
 * @file
 * Metrics registry implementation and its JSON round-trip.
 *
 * The serializer emits dotted paths as nested objects; the parser is a
 * small recursive-descent JSON reader restricted to the subset the
 * serializer produces (objects, arrays, strings, numbers). Unsigned
 * integers are kept exact through the round trip rather than passed
 * through double.
 */

#include "stats/metrics.hh"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/failpoint.hh"
#include "util/logging.hh"
#include "util/parse.hh"

namespace cachescope {

namespace {

/** Split @p path at '.' into segments. */
std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> segs;
    std::size_t pos = 0;
    while (true) {
        const std::size_t dot = path.find('.', pos);
        segs.push_back(path.substr(
            pos, dot == std::string::npos ? dot : dot - pos));
        if (dot == std::string::npos)
            break;
        pos = dot + 1;
    }
    return segs;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderU64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

/** Round-trip-precision double; non-finite values become strings. */
std::string
renderDouble(double v)
{
    if (std::isnan(v))
        return "\"nan\"";
    if (std::isinf(v))
        return v > 0 ? "\"inf\"" : "\"-inf\"";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** A metric leaf flattened to its path segments + rendered value. */
struct Leaf
{
    std::vector<std::string> segs;
    std::string rendered;
};

void
indentTo(std::ostream &os, int depth)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
}

/**
 * Emit the leaves in [lo, hi) — all sharing the first @p depth path
 * segments — as one JSON object, grouping on segment @p depth.
 */
void
emitGroup(std::ostream &os, const std::vector<Leaf> &leaves,
          std::size_t lo, std::size_t hi, std::size_t depth,
          int indent_depth)
{
    os << "{";
    bool first = true;
    std::size_t i = lo;
    while (i < hi) {
        const std::string &seg = leaves[i].segs[depth];
        std::size_t j = i;
        while (j < hi && leaves[j].segs[depth] == seg)
            ++j;
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        indentTo(os, indent_depth + 1);
        os << '"' << jsonEscape(seg) << "\": ";
        if (leaves[i].segs.size() == depth + 1) {
            // checkPath() guarantees a leaf is never also a group.
            os << leaves[i].rendered;
        } else {
            emitGroup(os, leaves, i, j, depth + 1, indent_depth + 1);
        }
        i = j;
    }
    if (!first) {
        os << "\n";
        indentTo(os, indent_depth);
    }
    os << "}";
}

/** Render a path-keyed map as nested JSON via a segment-sorted list. */
template <typename Map, typename Render>
void
emitNested(std::ostream &os, const Map &map, Render render,
           int indent_depth)
{
    std::vector<Leaf> leaves;
    leaves.reserve(map.size());
    for (const auto &[path, value] : map)
        leaves.push_back({splitPath(path), render(value)});
    // Dotted-path string order is not segment-wise order when segment
    // names contain characters below '.' (e.g. '-'); re-sort.
    std::sort(leaves.begin(), leaves.end(),
              [](const Leaf &a, const Leaf &b) { return a.segs < b.segs; });
    emitGroup(os, leaves, 0, leaves.size(), 0, indent_depth);
}

// --------------------------------------------------------------------
// Parsing.

/** A parsed JSON value (subset: no booleans, no null). */
struct JsonValue
{
    enum class Kind { Object, Array, String, Number };

    Kind kind = Kind::Number;
    std::map<std::string, JsonValue> object;
    std::vector<JsonValue> array;
    std::string str;
    double num = 0.0;
    std::uint64_t unum = 0;
    bool isUint = false;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Expected<JsonValue>
    parse()
    {
        CS_TRY_ASSIGN(JsonValue v, parseValue(0));
        skipWs();
        if (pos != s.size())
            return err("trailing data after JSON value");
        return v;
    }

  private:
    Status
    errStatus(const char *what) const
    {
        return corruptionError("metrics JSON: %s at byte %zu", what, pos);
    }

    Expected<JsonValue>
    err(const char *what) const
    {
        return errStatus(what);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    Expected<JsonValue>
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            return err("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return err("unexpected end of input");
        const char c = s[pos];
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"')
            return parseStringValue();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        return err("unexpected character");
    }

    Expected<JsonValue>
    parseObject(int depth)
    {
        ++pos; // '{'
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return err("expected object key");
            CS_TRY_ASSIGN(std::string key, parseString());
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return err("expected ':'");
            ++pos;
            CS_TRY_ASSIGN(JsonValue member, parseValue(depth + 1));
            if (!v.object.emplace(std::move(key), std::move(member))
                     .second) {
                return err("duplicate object key");
            }
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return v;
            }
            return err("expected ',' or '}'");
        }
    }

    Expected<JsonValue>
    parseArray(int depth)
    {
        ++pos; // '['
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return v;
        }
        while (true) {
            CS_TRY_ASSIGN(JsonValue member, parseValue(depth + 1));
            v.array.push_back(std::move(member));
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return v;
            }
            return err("expected ',' or ']'");
        }
    }

    Expected<std::string>
    parseString()
    {
        ++pos; // '"'
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos];
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return Status(errStatus("unterminated escape"));
                switch (s[pos]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'u': {
                    if (pos + 4 >= s.size())
                        return Status(errStatus("truncated \\u escape"));
                    unsigned code = 0;
                    for (int k = 1; k <= 4; ++k) {
                        const char h = s[pos + k];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return Status(errStatus("bad \\u escape"));
                    }
                    if (code > 0x7f) {
                        // The serializer only \u-escapes control
                        // characters; anything else is out of scope.
                        return Status(
                            errStatus("non-ASCII \\u escape unsupported"));
                    }
                    pos += 4;
                    c = static_cast<char>(code);
                    break;
                  }
                  default:
                    return Status(errStatus("unknown escape"));
                }
            }
            out += c;
            ++pos;
        }
        if (pos >= s.size())
            return Status(errStatus("unterminated string"));
        ++pos; // closing '"'
        return out;
    }

    Expected<JsonValue>
    parseStringValue()
    {
        CS_TRY_ASSIGN(std::string str, parseString());
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = std::move(str);
        return v;
    }

    Expected<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        bool integral = true;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            if (!std::isdigit(static_cast<unsigned char>(s[pos])))
                integral = false;
            ++pos;
        }
        const std::string token = s.substr(start, pos - start);
        if (token.empty() || token == "-")
            return err("malformed number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        if (integral && token[0] != '-') {
            auto parsed = parseU64(token);
            if (parsed.ok()) {
                v.unum = parsed.take();
                v.num = static_cast<double>(v.unum);
                v.isUint = true;
                return v;
            }
        }
        char *end = nullptr;
        v.num = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return err("malformed number");
        return v;
    }

    static constexpr int kMaxDepth = 64;

    const std::string &s;
    std::size_t pos = 0;
};

/** Parse a gauge value: a number, or one of the non-finite strings. */
Expected<double>
gaugeOf(const JsonValue &v, const std::string &path)
{
    if (v.kind == JsonValue::Kind::Number)
        return v.num;
    if (v.kind == JsonValue::Kind::String) {
        if (v.str == "nan")
            return std::nan("");
        if (v.str == "inf")
            return std::numeric_limits<double>::infinity();
        if (v.str == "-inf")
            return -std::numeric_limits<double>::infinity();
    }
    return corruptionError("metrics JSON: gauge '%s' is not a number",
                           path.c_str());
}

/** Flatten an object tree of uint leaves into registry counters. */
Status
flattenCounters(const JsonValue &node, const std::string &prefix,
                MetricsRegistry &out)
{
    for (const auto &[key, value] : node.object) {
        const std::string path =
            prefix.empty() ? key : prefix + "." + key;
        if (value.kind == JsonValue::Kind::Object) {
            CS_TRY(flattenCounters(value, path, out));
        } else if (value.kind == JsonValue::Kind::Number && value.isUint) {
            out.setCounter(path, value.unum);
        } else {
            return corruptionError(
                "metrics JSON: counter '%s' is not an unsigned integer",
                path.c_str());
        }
    }
    return Status();
}

Status
flattenGauges(const JsonValue &node, const std::string &prefix,
              MetricsRegistry &out)
{
    for (const auto &[key, value] : node.object) {
        const std::string path =
            prefix.empty() ? key : prefix + "." + key;
        if (value.kind == JsonValue::Kind::Object) {
            CS_TRY(flattenGauges(value, path, out));
        } else {
            CS_TRY_ASSIGN(double gauge, gaugeOf(value, path));
            out.setGauge(path, gauge);
        }
    }
    return Status();
}

Expected<std::uint64_t>
uintField(const JsonValue &obj, const char *key, const std::string &path)
{
    auto it = obj.object.find(key);
    if (it == obj.object.end() || !it->second.isUint) {
        return corruptionError(
            "metrics JSON: histogram '%s' missing uint field '%s'",
            path.c_str(), key);
    }
    return it->second.unum;
}

} // anonymous namespace

void
MetricsRegistry::checkPath(const std::string &path) const
{
    CS_ASSERT(!path.empty(), "empty metric path");
    CS_ASSERT(path.front() != '.' && path.back() != '.' &&
                  path.find("..") == std::string::npos,
              "malformed metric path");
    // A path may not be both a leaf and an interior node within one
    // section; cross-section reuse (counter "x" + gauge "x.y") is also
    // rejected so the JSON sections stay structurally parallel.
    auto conflicts = [&path](const auto &map) {
        auto it = map.lower_bound(path + ".");
        if (it != map.end() &&
            it->first.compare(0, path.size() + 1, path + ".") == 0) {
            return true;
        }
        for (std::size_t dot = path.find('.'); dot != std::string::npos;
             dot = path.find('.', dot + 1)) {
            if (map.count(path.substr(0, dot)))
                return true;
        }
        return false;
    };
    CS_ASSERT(!conflicts(counters_) && !conflicts(gauges_) &&
                  !conflicts(histograms_),
              "metric path is both a leaf and an interior node");
}

void
MetricsRegistry::addCounter(const std::string &path, std::uint64_t delta)
{
    auto it = counters_.find(path);
    if (it == counters_.end()) {
        checkPath(path);
        counters_[path] = delta;
    } else {
        it->second += delta;
    }
}

void
MetricsRegistry::setCounter(const std::string &path, std::uint64_t value)
{
    if (!counters_.count(path))
        checkPath(path);
    counters_[path] = value;
}

void
MetricsRegistry::setGauge(const std::string &path, double value)
{
    if (!gauges_.count(path))
        checkPath(path);
    gauges_[path] = value;
}

void
MetricsRegistry::setHistogram(const std::string &path,
                              const Histogram &histogram)
{
    if (!histograms_.count(path))
        checkPath(path);
    HistogramSnapshot snap;
    snap.width = histogram.bucketWidth();
    snap.samples = histogram.totalSamples();
    snap.counts.reserve(histogram.numBuckets());
    for (std::size_t i = 0; i < histogram.numBuckets(); ++i)
        snap.counts.push_back(histogram.bucket(i));
    histograms_[path] = std::move(snap);
}

void
MetricsRegistry::setHistogram(const std::string &path,
                              HistogramSnapshot snapshot)
{
    if (!histograms_.count(path))
        checkPath(path);
    histograms_[path] = std::move(snapshot);
}

std::uint64_t
MetricsRegistry::counter(const std::string &path) const
{
    auto it = counters_.find(path);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &path) const
{
    auto it = gauges_.find(path);
    return it == gauges_.end() ? 0.0 : it->second;
}

bool
MetricsRegistry::hasCounter(const std::string &path) const
{
    return counters_.count(path) != 0;
}

bool
MetricsRegistry::hasGauge(const std::string &path) const
{
    return gauges_.count(path) != 0;
}

bool
MetricsRegistry::hasHistogram(const std::string &path) const
{
    return histograms_.count(path) != 0;
}

void
MetricsRegistry::merge(const MetricsRegistry &other,
                       const std::string &prefix)
{
    const std::string p = prefix.empty() ? "" : prefix + ".";
    for (const auto &[path, value] : other.counters_)
        addCounter(p + path, value);
    for (const auto &[path, value] : other.gauges_)
        setGauge(p + path, value);
    for (const auto &[path, snap] : other.histograms_) {
        const std::string full = p + path;
        auto it = histograms_.find(full);
        if (it == histograms_.end()) {
            checkPath(full);
            histograms_[full] = snap;
            continue;
        }
        HistogramSnapshot &mine = it->second;
        CS_ASSERT(mine.width == snap.width &&
                      mine.counts.size() == snap.counts.size(),
                  "merging histograms of different shapes");
        mine.samples += snap.samples;
        for (std::size_t i = 0; i < snap.counts.size(); ++i)
            mine.counts[i] += snap.counts[i];
    }
}

std::string
metricsToJson(const MetricsDocument &doc)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n"
       << "  \"name\": \"" << jsonEscape(doc.name) << "\",\n"
       << "  \"wall_ms\": " << renderDouble(doc.wallMs) << ",\n"
       << "  \"counters\": ";
    emitNested(os, doc.metrics.counters(),
               [](std::uint64_t v) { return renderU64(v); }, 1);
    os << ",\n  \"gauges\": ";
    emitNested(os, doc.metrics.gauges(),
               [](double v) { return renderDouble(v); }, 1);
    os << ",\n  \"histograms\": {";
    bool first = true;
    for (const auto &[path, snap] : doc.metrics.histograms()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    \"" << jsonEscape(path)
           << "\": {\"width\": " << renderU64(snap.width)
           << ", \"samples\": " << renderU64(snap.samples)
           << ", \"counts\": [";
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
            if (i)
                os << ", ";
            os << renderU64(snap.counts[i]);
        }
        os << "]}";
    }
    if (!first)
        os << "\n  ";
    os << "}\n}\n";
    return os.str();
}

Expected<MetricsDocument>
metricsFromJson(const std::string &text)
{
    JsonParser parser(text);
    CS_TRY_ASSIGN(JsonValue root, parser.parse());
    if (root.kind != JsonValue::Kind::Object)
        return corruptionError("metrics JSON: top level is not an object");

    auto schema = root.object.find("schema");
    if (schema == root.object.end() ||
        schema->second.kind != JsonValue::Kind::String ||
        schema->second.str != kMetricsSchema) {
        return corruptionError(
            "metrics JSON: missing or unknown schema (want \"%s\")",
            kMetricsSchema);
    }

    MetricsDocument doc;
    auto name = root.object.find("name");
    if (name == root.object.end() ||
        name->second.kind != JsonValue::Kind::String)
        return corruptionError("metrics JSON: missing \"name\" string");
    doc.name = name->second.str;

    auto wall = root.object.find("wall_ms");
    if (wall == root.object.end())
        return corruptionError("metrics JSON: missing \"wall_ms\"");
    CS_TRY_ASSIGN(doc.wallMs, gaugeOf(wall->second, "wall_ms"));

    auto counters = root.object.find("counters");
    if (counters != root.object.end()) {
        if (counters->second.kind != JsonValue::Kind::Object)
            return corruptionError(
                "metrics JSON: \"counters\" is not an object");
        CS_TRY(flattenCounters(counters->second, "", doc.metrics));
    }
    auto gauges = root.object.find("gauges");
    if (gauges != root.object.end()) {
        if (gauges->second.kind != JsonValue::Kind::Object)
            return corruptionError(
                "metrics JSON: \"gauges\" is not an object");
        CS_TRY(flattenGauges(gauges->second, "", doc.metrics));
    }
    auto histograms = root.object.find("histograms");
    if (histograms != root.object.end()) {
        if (histograms->second.kind != JsonValue::Kind::Object)
            return corruptionError(
                "metrics JSON: \"histograms\" is not an object");
        for (const auto &[path, value] : histograms->second.object) {
            if (value.kind != JsonValue::Kind::Object)
                return corruptionError(
                    "metrics JSON: histogram '%s' is not an object",
                    path.c_str());
            CS_TRY_ASSIGN(const std::uint64_t width,
                          uintField(value, "width", path));
            CS_TRY_ASSIGN(const std::uint64_t samples,
                          uintField(value, "samples", path));
            auto counts = value.object.find("counts");
            if (counts == value.object.end() ||
                counts->second.kind != JsonValue::Kind::Array) {
                return corruptionError(
                    "metrics JSON: histogram '%s' missing counts array",
                    path.c_str());
            }
            if (width == 0 || counts->second.array.size() < 2) {
                return corruptionError(
                    "metrics JSON: histogram '%s' has a degenerate shape",
                    path.c_str());
            }
            MetricsRegistry::HistogramSnapshot snap;
            snap.width = width;
            snap.samples = samples;
            snap.counts.reserve(counts->second.array.size());
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < counts->second.array.size(); ++i) {
                const JsonValue &c = counts->second.array[i];
                if (!c.isUint) {
                    return corruptionError(
                        "metrics JSON: histogram '%s' count %zu is not "
                        "an unsigned integer",
                        path.c_str(), i);
                }
                snap.counts.push_back(c.unum);
                total += c.unum;
            }
            if (total != samples) {
                return corruptionError(
                    "metrics JSON: histogram '%s' samples %" PRIu64
                    " != sum of counts %" PRIu64,
                    path.c_str(), samples, total);
            }
            doc.metrics.setHistogram(path, std::move(snap));
        }
    }
    return doc;
}

Status
writeMetricsJsonFile(const MetricsDocument &doc, const std::string &path)
{
    CS_FAILPOINT("metrics.json.write");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
        return ioError("cannot open '%s' for writing", path.c_str());
    out << metricsToJson(doc);
    out.flush();
    if (!out.good())
        return ioError("error writing metrics JSON to '%s'", path.c_str());
    return Status();
}

Expected<MetricsDocument>
readMetricsJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return ioError("cannot open '%s' for reading", path.c_str());
    std::ostringstream raw;
    raw << in.rdbuf();
    if (in.bad())
        return ioError("error reading '%s'", path.c_str());
    return metricsFromJson(raw.str());
}

} // namespace cachescope
