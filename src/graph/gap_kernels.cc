/**
 * @file
 * Instrumented GAP kernel implementations.
 *
 * Common shape: CSR arrays (OA/NA and, for SSSP, weights) are mirrored
 * into TracedArrays; property arrays are TracedArrays; frontier queues
 * are TracedArrays. Setup work that a real benchmark would do outside
 * the region of interest (initializing property arrays, sorting
 * adjacency lists) uses the untraced raw accessors.
 *
 * Every inner loop polls sink.wantsMore() at a coarse granularity so a
 * simulator with an instruction budget stops the workload early.
 */

#include "graph/gap_kernels.hh"

#include <algorithm>
#include <limits>

#include "trace/pc_site.hh"
#include "trace/traced_memory.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cachescope {

namespace {

/** Traced mirror of a CSR graph's arrays. */
struct TracedCsr
{
    TracedArray<EdgeId> oa;
    TracedArray<NodeId> na;

    TracedCsr(const CsrGraph &g, AddressSpace &space, InstructionSink &sink)
        : oa(g.numNodes() + 1, space, sink),
          na(g.numEdges() == 0 ? 1 : g.numEdges(), space, sink)
    {
        for (std::size_t i = 0; i < g.offsetArray().size(); ++i)
            oa.raw(i) = g.offsetArray()[i];
        for (std::size_t i = 0; i < g.neighborArray().size(); ++i)
            na.raw(i) = g.neighborArray()[i];
    }
};

/** Pick a source vertex with non-zero degree (few retries, then 0). */
NodeId
pickSource(const CsrGraph &g, Rng &rng)
{
    for (int tries = 0; tries < 32; ++tries) {
        const auto v = static_cast<NodeId>(rng.nextBounded(g.numNodes()));
        if (g.degree(v) > 0)
            return v;
    }
    return 0;
}

// ------------------------------------------------------------------ BFS --

void
runBfs(const CsrGraph &g, InstructionSink &sink, const GapKernelParams &p)
{
    const NodeId n = g.numNodes();
    AddressSpace space;
    TracedCsr csr(g, space, sink);
    TracedArray<std::int64_t> parent(n, space, sink, -1);
    TracedArray<NodeId> queue(n, space, sink, 0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_pop = region.allocate();
    const Pc pc_oa0 = region.allocate();
    const Pc pc_oa1 = region.allocate();
    const Pc pc_na = region.allocate();
    const Pc pc_parent_ld = region.allocate();
    const Pc pc_parent_st = region.allocate();
    const Pc pc_push = region.allocate();
    const Pc pc_alu_v = region.allocate();
    const Pc pc_alu_e = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    for (std::uint32_t rep = 0; rep < p.maxRepeats && sink.wantsMore();
         ++rep) {
        for (NodeId v = 0; v < n; ++v)
            parent.raw(v) = -1;
        const NodeId source = pickSource(g, rng);
        parent.store(source, source, pc_parent_st);
        queue.store(0, source, pc_push);
        NodeId head = 0, tail = 1;

        while (head < tail && sink.wantsMore()) {
            const NodeId u = queue.load(head++, pc_pop);
            mix.alu(pc_alu_v, p.aluPerVertex);
            const EdgeId off0 = csr.oa.load(u, pc_oa0);
            const EdgeId off1 = csr.oa.load(u + 1, pc_oa1);
            for (EdgeId e = off0; e < off1; ++e) {
                const NodeId v = csr.na.load(e, pc_na);
                mix.alu(pc_alu_e, p.aluPerEdge);
                mix.branch(pc_br);
                if (parent.load(v, pc_parent_ld) < 0) {
                    parent.store(v, static_cast<std::int64_t>(u),
                                 pc_parent_st);
                    queue.store(tail++, v, pc_push);
                }
                if (((e - off0) & 1023) == 1023 && !sink.wantsMore())
                    return;
            }
        }
    }
}

// ------------------------------------------- Direction-optimizing BFS --

/**
 * Beamer's direction-optimizing BFS: top-down edge expansion while the
 * frontier is small, switching to bottom-up parent search (every
 * unvisited vertex scans its neighbours for a frontier member) when
 * the frontier's out-edge count crosses edges/alpha, and back when the
 * frontier shrinks below n/beta. The bottom-up phase is what makes
 * real GAP BFS traffic distinctive: a sequential sweep of *all*
 * vertices with a random bitmap probe per edge.
 */
void
runBfsDirectionOptimizing(const CsrGraph &g, InstructionSink &sink,
                          const GapKernelParams &p)
{
    CS_ASSERT(p.bfsAlpha > 0 && p.bfsBeta > 0,
              "direction-optimizing thresholds must be positive");
    const NodeId n = g.numNodes();
    AddressSpace space;
    TracedCsr csr(g, space, sink);
    TracedArray<std::int64_t> parent(n, space, sink, -1);
    TracedArray<std::uint8_t> front(n, space, sink, 0);
    TracedArray<std::uint8_t> next_front(n, space, sink, 0);
    TracedArray<NodeId> queue(n, space, sink, 0);
    TracedArray<NodeId> next_queue(n, space, sink, 0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_pop = region.allocate();
    const Pc pc_oa0 = region.allocate();
    const Pc pc_oa1 = region.allocate();
    const Pc pc_na = region.allocate();
    const Pc pc_parent_ld = region.allocate();
    const Pc pc_parent_st = region.allocate();
    const Pc pc_front_ld = region.allocate();
    const Pc pc_front_st = region.allocate();
    const Pc pc_push = region.allocate();
    const Pc pc_alu_v = region.allocate();
    const Pc pc_alu_e = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    for (std::uint32_t rep = 0; rep < p.maxRepeats && sink.wantsMore();
         ++rep) {
        for (NodeId v = 0; v < n; ++v) {
            parent.raw(v) = -1;
            front.raw(v) = 0;
            next_front.raw(v) = 0;
        }
        const NodeId source = pickSource(g, rng);
        parent.store(source, source, pc_parent_st);
        front.store(source, 1, pc_front_st);
        queue.store(0, source, pc_push);
        NodeId frontier_size = 1;
        EdgeId frontier_edges = g.degree(source);
        bool top_down = true;
        std::uint64_t ops = 0;

        while (frontier_size > 0 && sink.wantsMore()) {
            NodeId next_size = 0;
            EdgeId next_edges = 0;

            if (top_down) {
                // Expand the queued frontier edge by edge.
                for (NodeId i = 0; i < frontier_size; ++i) {
                    const NodeId u = queue.load(i, pc_pop);
                    mix.alu(pc_alu_v, p.aluPerVertex);
                    const EdgeId off0 = csr.oa.load(u, pc_oa0);
                    const EdgeId off1 = csr.oa.load(u + 1, pc_oa1);
                    for (EdgeId e = off0; e < off1; ++e) {
                        const NodeId v = csr.na.load(e, pc_na);
                        mix.alu(pc_alu_e, p.aluPerEdge);
                        mix.branch(pc_br);
                        if (parent.load(v, pc_parent_ld) < 0) {
                            parent.store(v, static_cast<std::int64_t>(u),
                                         pc_parent_st);
                            next_front.store(v, 1, pc_front_st);
                            next_queue.store(next_size++, v, pc_push);
                            next_edges += g.degree(v);
                        }
                        if ((++ops & 1023) == 0 && !sink.wantsMore())
                            return;
                    }
                }
                for (NodeId i = 0; i < next_size; ++i)
                    queue.raw(i) = next_queue.raw(i);
            } else {
                // Bottom-up: every unvisited vertex probes its
                // neighbours for a frontier member.
                for (NodeId v = 0; v < n; ++v) {
                    mix.alu(pc_alu_v, p.aluPerVertex);
                    mix.branch(pc_br);
                    if ((++ops & 1023) == 0 && !sink.wantsMore())
                        return;
                    if (parent.load(v, pc_parent_ld) >= 0)
                        continue;
                    const EdgeId off0 = csr.oa.load(v, pc_oa0);
                    const EdgeId off1 = csr.oa.load(v + 1, pc_oa1);
                    for (EdgeId e = off0; e < off1; ++e) {
                        const NodeId u = csr.na.load(e, pc_na);
                        mix.alu(pc_alu_e, p.aluPerEdge);
                        mix.branch(pc_br);
                        if ((++ops & 1023) == 0 && !sink.wantsMore())
                            return;
                        if (front.load(u, pc_front_ld)) {
                            parent.store(v, static_cast<std::int64_t>(u),
                                         pc_parent_st);
                            next_front.store(v, 1, pc_front_st);
                            ++next_size;
                            next_edges += g.degree(v);
                            break;
                        }
                    }
                }
            }

            // Commit the next frontier: swap bitmaps (raw; the traced
            // stores above already accounted for the writes) and pick
            // the traversal direction for the next level.
            for (NodeId v = 0; v < n; ++v) {
                front.raw(v) = next_front.raw(v);
                next_front.raw(v) = 0;
            }
            frontier_size = next_size;
            frontier_edges = next_edges;
            const bool go_bottom_up =
                frontier_edges > g.numEdges() / p.bfsAlpha;
            const bool go_top_down = frontier_size < n / p.bfsBeta;
            if (top_down && go_bottom_up)
                top_down = false;
            else if (!top_down && go_top_down)
                top_down = true;
            // Bottom-up levels do not maintain the queue; rebuild it
            // (untraced bookkeeping) if we are returning to top-down.
            if (top_down) {
                NodeId qi = 0;
                for (NodeId v = 0; v < n && qi < frontier_size; ++v)
                    if (front.raw(v))
                        queue.raw(qi++) = v;
            }
        }
    }
}

// ------------------------------------------------------------- PageRank --

void
runPageRank(const CsrGraph &g, InstructionSink &sink,
            const GapKernelParams &p)
{
    const NodeId n = g.numNodes();
    constexpr double kDamping = 0.85;
    AddressSpace space;
    TracedCsr csr(g, space, sink);
    TracedArray<double> scores(n, space, sink, 1.0 / n);
    TracedArray<double> contrib(n, space, sink, 0.0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_score_ld = region.allocate();
    const Pc pc_contrib_st = region.allocate();
    const Pc pc_oa0 = region.allocate();
    const Pc pc_oa1 = region.allocate();
    const Pc pc_na = region.allocate();
    const Pc pc_contrib_ld = region.allocate();
    const Pc pc_score_st = region.allocate();
    const Pc pc_alu_v = region.allocate();
    const Pc pc_alu_e = region.allocate();
    const Pc pc_br = region.allocate();

    const double base_score = (1.0 - kDamping) / n;
    std::uint64_t ops = 0;
    for (std::uint32_t rep = 0; rep < p.maxRepeats && sink.wantsMore();
         ++rep) {
        for (std::uint32_t iter = 0;
             iter < p.pagerankIters && sink.wantsMore(); ++iter) {
            // Phase 1: per-vertex outgoing contribution (sequential).
            for (NodeId u = 0; u < n; ++u) {
                const NodeId deg = g.degree(u);
                mix.alu(pc_alu_v, p.aluPerVertex);
                const double s = scores.load(u, pc_score_ld);
                contrib.store(u, s / std::max<NodeId>(deg, 1),
                              pc_contrib_st);
                if ((++ops & 255) == 0 && !sink.wantsMore())
                    return;
            }
            // Phase 2: pull contributions along in-edges (the graph is
            // symmetric, so CSR doubles as CSC).
            for (NodeId v = 0; v < n; ++v) {
                const EdgeId off0 = csr.oa.load(v, pc_oa0);
                const EdgeId off1 = csr.oa.load(v + 1, pc_oa1);
                double incoming = 0.0;
                for (EdgeId e = off0; e < off1; ++e) {
                    const NodeId u = csr.na.load(e, pc_na);
                    incoming += contrib.load(u, pc_contrib_ld);
                    mix.alu(pc_alu_e, p.aluPerEdge);
                    mix.branch(pc_br);
                    if ((++ops & 255) == 0 && !sink.wantsMore())
                        return;
                }
                scores.store(v, base_score + kDamping * incoming,
                             pc_score_st);
            }
        }
    }
}

// ------------------------------------------------- Connected Components --

void
runCc(const CsrGraph &g, InstructionSink &sink, const GapKernelParams &p)
{
    const NodeId n = g.numNodes();
    AddressSpace space;
    TracedCsr csr(g, space, sink);
    TracedArray<NodeId> comp(n, space, sink, 0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_comp_u = region.allocate();
    const Pc pc_oa0 = region.allocate();
    const Pc pc_oa1 = region.allocate();
    const Pc pc_na = region.allocate();
    const Pc pc_comp_v = region.allocate();
    const Pc pc_comp_st = region.allocate();
    const Pc pc_alu_v = region.allocate();
    const Pc pc_alu_e = region.allocate();
    const Pc pc_br = region.allocate();

    for (std::uint32_t rep = 0; rep < p.maxRepeats && sink.wantsMore();
         ++rep) {
        for (NodeId v = 0; v < n; ++v)
            comp.raw(v) = v;
        bool changed = true;
        std::uint64_t ops = 0;
        while (changed && sink.wantsMore()) {
            changed = false;
            for (NodeId u = 0; u < n; ++u) {
                NodeId cu = comp.load(u, pc_comp_u);
                mix.alu(pc_alu_v, p.aluPerVertex);
                bool u_changed = false;
                const EdgeId off0 = csr.oa.load(u, pc_oa0);
                const EdgeId off1 = csr.oa.load(u + 1, pc_oa1);
                for (EdgeId e = off0; e < off1; ++e) {
                    const NodeId v = csr.na.load(e, pc_na);
                    const NodeId cv = comp.load(v, pc_comp_v);
                    mix.alu(pc_alu_e, p.aluPerEdge);
                    mix.branch(pc_br);
                    if (cv < cu) {
                        cu = cv;
                        u_changed = true;
                    }
                    if ((++ops & 255) == 0 && !sink.wantsMore())
                        return;
                }
                if (u_changed) {
                    comp.store(u, cu, pc_comp_st);
                    changed = true;
                }
            }
        }
    }
}

// ------------------------------------------------------------------- BC --

void
runBc(const CsrGraph &g, InstructionSink &sink, const GapKernelParams &p)
{
    const NodeId n = g.numNodes();
    AddressSpace space;
    TracedCsr csr(g, space, sink);
    TracedArray<std::int32_t> depth(n, space, sink, -1);
    TracedArray<double> sigma(n, space, sink, 0.0);
    TracedArray<double> delta(n, space, sink, 0.0);
    TracedArray<double> centrality(n, space, sink, 0.0);
    TracedArray<NodeId> order(n, space, sink, 0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_pop = region.allocate();
    const Pc pc_oa0 = region.allocate();
    const Pc pc_oa1 = region.allocate();
    const Pc pc_na = region.allocate();
    const Pc pc_depth_ld = region.allocate();
    const Pc pc_depth_st = region.allocate();
    const Pc pc_sigma_ld = region.allocate();
    const Pc pc_sigma_st = region.allocate();
    const Pc pc_delta_ld = region.allocate();
    const Pc pc_delta_st = region.allocate();
    const Pc pc_bc_st = region.allocate();
    const Pc pc_push = region.allocate();
    const Pc pc_alu_v = region.allocate();
    const Pc pc_alu_e = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    for (std::uint32_t rep = 0; rep < p.maxRepeats && sink.wantsMore();
         ++rep) {
        for (NodeId v = 0; v < n; ++v) {
            depth.raw(v) = -1;
            sigma.raw(v) = 0.0;
            delta.raw(v) = 0.0;
        }
        const NodeId source = pickSource(g, rng);
        depth.store(source, 0, pc_depth_st);
        sigma.store(source, 1.0, pc_sigma_st);
        order.store(0, source, pc_push);
        NodeId head = 0, tail = 1;

        // Forward phase: BFS recording visit order and path counts.
        while (head < tail && sink.wantsMore()) {
            const NodeId u = order.load(head++, pc_pop);
            mix.alu(pc_alu_v, p.aluPerVertex);
            const std::int32_t du = depth.load(u, pc_depth_ld);
            const double su = sigma.load(u, pc_sigma_ld);
            const EdgeId off0 = csr.oa.load(u, pc_oa0);
            const EdgeId off1 = csr.oa.load(u + 1, pc_oa1);
            for (EdgeId e = off0; e < off1; ++e) {
                const NodeId v = csr.na.load(e, pc_na);
                mix.alu(pc_alu_e, p.aluPerEdge);
                mix.branch(pc_br);
                const std::int32_t dv = depth.load(v, pc_depth_ld);
                if (dv < 0) {
                    depth.store(v, du + 1, pc_depth_st);
                    sigma.store(v, su, pc_sigma_st);
                    order.store(tail++, v, pc_push);
                } else if (dv == du + 1) {
                    sigma.store(v, sigma.load(v, pc_sigma_ld) + su,
                                pc_sigma_st);
                }
                if (((e - off0) & 1023) == 1023 && !sink.wantsMore())
                    return;
            }
        }

        // Backward phase: dependency accumulation in reverse BFS order.
        for (NodeId i = tail; i-- > 0 && sink.wantsMore();) {
            const NodeId w = order.load(i, pc_pop);
            mix.alu(pc_alu_v, p.aluPerVertex);
            const std::int32_t dw = depth.load(w, pc_depth_ld);
            const double sw = sigma.load(w, pc_sigma_ld);
            const double coeff = (1.0 + delta.load(w, pc_delta_ld)) /
                                 std::max(sw, 1.0);
            const EdgeId off0 = csr.oa.load(w, pc_oa0);
            const EdgeId off1 = csr.oa.load(w + 1, pc_oa1);
            for (EdgeId e = off0; e < off1; ++e) {
                const NodeId v = csr.na.load(e, pc_na);
                mix.alu(pc_alu_e, p.aluPerEdge);
                mix.branch(pc_br);
                if (depth.load(v, pc_depth_ld) == dw - 1) {
                    const double sv = sigma.load(v, pc_sigma_ld);
                    delta.store(v, delta.load(v, pc_delta_ld) + sv * coeff,
                                pc_delta_st);
                }
                if (((e - off0) & 1023) == 1023 && !sink.wantsMore())
                    return;
            }
            centrality.store(w, centrality.load(w, pc_delta_ld) +
                             delta.load(w, pc_delta_ld), pc_bc_st);
        }
    }
}

// ----------------------------------------------------------------- SSSP --

void
runSssp(const CsrGraph &g, InstructionSink &sink, const GapKernelParams &p)
{
    const NodeId n = g.numNodes();
    constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
    AddressSpace space;
    TracedCsr csr(g, space, sink);
    TracedArray<std::uint32_t> wt(
        g.numEdges() == 0 ? 1 : g.numEdges(), space, sink);
    for (std::size_t i = 0; i < g.weightArray().size(); ++i)
        wt.raw(i) = g.weightArray()[i];
    TracedArray<std::uint32_t> dist(n, space, sink, kInf);
    TracedArray<std::uint8_t> pending(n, space, sink, 0);
    TracedArray<NodeId> curr(n, space, sink, 0);
    TracedArray<NodeId> next(n, space, sink, 0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_pop = region.allocate();
    const Pc pc_oa0 = region.allocate();
    const Pc pc_oa1 = region.allocate();
    const Pc pc_na = region.allocate();
    const Pc pc_wt = region.allocate();
    const Pc pc_dist_u = region.allocate();
    const Pc pc_dist_v = region.allocate();
    const Pc pc_dist_st = region.allocate();
    const Pc pc_pend_ld = region.allocate();
    const Pc pc_pend_st = region.allocate();
    const Pc pc_push = region.allocate();
    const Pc pc_alu_v = region.allocate();
    const Pc pc_alu_e = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    for (std::uint32_t rep = 0; rep < p.maxRepeats && sink.wantsMore();
         ++rep) {
        for (NodeId v = 0; v < n; ++v) {
            dist.raw(v) = kInf;
            pending.raw(v) = 0;
        }
        const NodeId source = pickSource(g, rng);
        dist.store(source, 0, pc_dist_st);
        curr.store(0, source, pc_push);
        NodeId curr_size = 1;

        // Frontier-based Bellman-Ford relaxation: each round relaxes
        // the out-edges of every vertex whose distance improved last
        // round (GAP's delta-stepping degenerates to this shape for a
        // single bucket; the memory behaviour is equivalent).
        while (curr_size > 0 && sink.wantsMore()) {
            NodeId next_size = 0;
            for (NodeId i = 0; i < curr_size; ++i) {
                if ((i & 1023) == 1023 && !sink.wantsMore())
                    return;
                const NodeId u = curr.load(i, pc_pop);
                pending.store(u, 0, pc_pend_st);
                mix.alu(pc_alu_v, p.aluPerVertex);
                const std::uint32_t du = dist.load(u, pc_dist_u);
                const EdgeId off0 = csr.oa.load(u, pc_oa0);
                const EdgeId off1 = csr.oa.load(u + 1, pc_oa1);
                for (EdgeId e = off0; e < off1; ++e) {
                    const NodeId v = csr.na.load(e, pc_na);
                    const std::uint32_t w = wt.load(e, pc_wt);
                    mix.alu(pc_alu_e, p.aluPerEdge);
                    mix.branch(pc_br);
                    const std::uint32_t nd = du + w;
                    if (nd < dist.load(v, pc_dist_v)) {
                        dist.store(v, nd, pc_dist_st);
                        if (!pending.load(v, pc_pend_ld) &&
                            next_size < n) {
                            pending.store(v, 1, pc_pend_st);
                            next.store(next_size++, v, pc_push);
                        }
                    }
                    if (((e - off0) & 1023) == 1023 && !sink.wantsMore())
                        return;
                }
            }
            // Swap frontiers (raw copy; the queue arrays alternate).
            for (NodeId i = 0; i < next_size; ++i)
                curr.raw(i) = next.raw(i);
            curr_size = next_size;
        }
    }
}

// ------------------------------------------------------------------- TC --

void
runTc(const CsrGraph &g, InstructionSink &sink, const GapKernelParams &p)
{
    const NodeId n = g.numNodes();
    AddressSpace space;
    TracedCsr csr(g, space, sink);
    InstructionMix mix(sink);

    // GAP sorts adjacency lists before intersecting; this is setup work
    // outside the region of interest.
    NodeId *na_base = &csr.na.raw(0);
    for (NodeId v = 0; v < n; ++v) {
        const EdgeId off0 = g.offsetArray()[v];
        const EdgeId off1 = g.offsetArray()[v + 1];
        std::sort(na_base + off0, na_base + off1);
    }

    PcRegion region(p.pcWorkloadId);
    const Pc pc_oa0 = region.allocate();
    const Pc pc_oa1 = region.allocate();
    const Pc pc_na_u = region.allocate();
    const Pc pc_na_merge_a = region.allocate();
    const Pc pc_na_merge_b = region.allocate();
    const Pc pc_alu_v = region.allocate();
    const Pc pc_alu_e = region.allocate();
    const Pc pc_br = region.allocate();

    std::uint64_t triangles = 0;
    for (std::uint32_t rep = 0; rep < p.maxRepeats && sink.wantsMore();
         ++rep) {
        for (NodeId u = 0; u < n && sink.wantsMore(); ++u) {
            mix.alu(pc_alu_v, p.aluPerVertex);
            const EdgeId u0 = csr.oa.load(u, pc_oa0);
            const EdgeId u1 = csr.oa.load(u + 1, pc_oa1);
            for (EdgeId e = u0; e < u1; ++e) {
                const NodeId v = csr.na.load(e, pc_na_u);
                mix.branch(pc_br);
                if (v <= u)
                    continue;
                // Merge-intersect adj(u) and adj(v), counting common
                // neighbours w with w > v (each triangle once).
                const EdgeId v0 = csr.oa.load(v, pc_oa0);
                const EdgeId v1 = csr.oa.load(v + 1, pc_oa1);
                EdgeId i = u0, j = v0;
                std::uint32_t steps = 0;
                while (i < u1 && j < v1) {
                    const NodeId a = csr.na.load(i, pc_na_merge_a);
                    const NodeId b = csr.na.load(j, pc_na_merge_b);
                    mix.alu(pc_alu_e, p.aluPerEdge);
                    mix.branch(pc_br);
                    if (a < b) {
                        ++i;
                    } else if (b < a) {
                        ++j;
                    } else {
                        if (a > v)
                            ++triangles;
                        ++i;
                        ++j;
                    }
                    if ((++steps & 1023) == 1023 && !sink.wantsMore())
                        return;
                }
            }
        }
    }
    (void)triangles;
}

} // anonymous namespace

const char *
gapKernelName(GapKernel kernel)
{
    switch (kernel) {
      case GapKernel::Bfs: return "bfs";
      case GapKernel::PageRank: return "pr";
      case GapKernel::Cc: return "cc";
      case GapKernel::Bc: return "bc";
      case GapKernel::Sssp: return "sssp";
      case GapKernel::Tc: return "tc";
    }
    return "unknown";
}

GapWorkload::GapWorkload(GapKernel kernel, std::string graph_tag,
                         std::shared_ptr<const CsrGraph> graph,
                         GapKernelParams params)
    : kern(kernel),
      displayName(std::string(gapKernelName(kernel)) + "." +
                  std::move(graph_tag)),
      g(std::move(graph)), params(std::move(params))
{
    CS_ASSERT(g != nullptr, "GapWorkload needs a graph");
}

InstCount
GapWorkload::warmupHint() const
{
    if (kern != GapKernel::PageRank)
        return 0;
    // Phase 1 costs roughly (aluPerVertex + 3) records per vertex;
    // add slack so the window starts well inside phase 2.
    return static_cast<InstCount>(g->numNodes()) *
           (params.aluPerVertex + 3) + 1'000'000;
}

void
GapWorkload::run(InstructionSink &sink)
{
    switch (kern) {
      case GapKernel::Bfs:
        if (params.directionOptimizingBfs)
            runBfsDirectionOptimizing(*g, sink, params);
        else
            runBfs(*g, sink, params);
        break;
      case GapKernel::PageRank: runPageRank(*g, sink, params); break;
      case GapKernel::Cc: runCc(*g, sink, params); break;
      case GapKernel::Bc: runBc(*g, sink, params); break;
      case GapKernel::Sssp: runSssp(*g, sink, params); break;
      case GapKernel::Tc: runTc(*g, sink, params); break;
    }
    sink.onEnd();
}

} // namespace cachescope
