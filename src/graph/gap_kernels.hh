/**
 * @file
 * Instrumented implementations of the six GAP benchmark kernels
 * (Beamer, Asanović & Patterson): BFS, PageRank, Connected Components,
 * Betweenness Centrality, Single-Source Shortest Paths and Triangle
 * Counting.
 *
 * Each kernel is the real algorithm executing over TracedArray-mirrored
 * CSR structures, so the emitted stream has the genuine data-dependent
 * access pattern: sequential Offset/Neighbour Array scans interleaved
 * with random Property Array accesses indexed by neighbour ids. Static
 * access sites get stable synthetic PCs from a per-workload PcRegion —
 * a handful of memory PCs per kernel, exactly the regime the paper
 * analyses.
 */

#ifndef CACHESCOPE_GRAPH_GAP_KERNELS_HH
#define CACHESCOPE_GRAPH_GAP_KERNELS_HH

#include <memory>
#include <string>

#include "graph/csr_graph.hh"
#include "trace/workload.hh"

namespace cachescope {

/** The six GAP kernels. */
enum class GapKernel
{
    Bfs,       ///< breadth-first search (top-down, parent array)
    PageRank,  ///< pull-based PageRank
    Cc,        ///< connected components (label propagation)
    Bc,        ///< betweenness centrality (Brandes, sampled sources)
    Sssp,      ///< single-source shortest paths (frontier relaxation)
    Tc,        ///< triangle counting (sorted-list intersection)
};

/** @return the GAP short name ("bfs", "pr", ...). */
const char *gapKernelName(GapKernel kernel);

/** Tunables shared by the kernels. */
struct GapKernelParams
{
    /** Dense workload id selecting the synthetic PC region. */
    std::uint32_t pcWorkloadId = 0;
    /** Seed for source-vertex selection. */
    std::uint64_t seed = 1;
    /** Upper bound on kernel restarts while the sink wants more. */
    std::uint32_t maxRepeats = 1024;
    /** PageRank iterations per repeat. */
    std::uint32_t pagerankIters = 10;
    /** ALU instructions modelled per edge traversal (mix calibration). */
    std::uint32_t aluPerEdge = 10;
    /** ALU instructions modelled per vertex visit. */
    std::uint32_t aluPerVertex = 6;
    /**
     * Run BFS direction-optimizing (Beamer's top-down/bottom-up
     * switching), as the real GAP bfs does. Off by default so the
     * headline experiments use the simpler, more analysable top-down
     * traversal; the difference is an experiment of its own.
     */
    bool directionOptimizingBfs = false;
    /** Frontier-edges fraction that triggers the bottom-up switch. */
    std::uint32_t bfsAlpha = 15;
    /** Frontier-size fraction that triggers the switch back. */
    std::uint32_t bfsBeta = 18;
};

/**
 * A runnable (kernel, graph) pair.
 *
 * The graph is shared: a suite builds each input once and every kernel
 * workload references it. run() is deterministic for a fixed
 * construction, as Workload requires.
 */
class GapWorkload : public Workload
{
  public:
    GapWorkload(GapKernel kernel, std::string graph_tag,
                std::shared_ptr<const CsrGraph> graph,
                GapKernelParams params);

    const std::string &name() const override { return displayName; }
    void run(InstructionSink &sink) override;

    /**
     * PageRank's iteration begins with a sequential O(V) contribution
     * pass; measurement should start inside the edge-dominated gather
     * phase, which is where real PageRank executions spend >95 % of
     * their instructions.
     */
    InstCount warmupHint() const override;

    GapKernel kernel() const { return kern; }
    const CsrGraph &graph() const { return *g; }

  private:
    GapKernel kern;
    std::string displayName;
    std::shared_ptr<const CsrGraph> g;
    GapKernelParams params;
};

} // namespace cachescope

#endif // CACHESCOPE_GRAPH_GAP_KERNELS_HH
