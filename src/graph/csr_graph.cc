/**
 * @file
 * CSR construction.
 */

#include "graph/csr_graph.hh"

#include "util/logging.hh"

namespace cachescope {

CsrGraph
CsrGraph::fromEdges(NodeId num_nodes, std::vector<WeightedEdge> edges,
                    bool symmetrize)
{
    if (symmetrize) {
        const std::size_t original = edges.size();
        edges.reserve(2 * original);
        for (std::size_t i = 0; i < original; ++i) {
            const WeightedEdge &e = edges[i];
            if (e.src != e.dst)
                edges.push_back({e.dst, e.src, e.weight});
        }
    }

    CsrGraph g;
    g.n = num_nodes;
    g.offsets.assign(static_cast<std::size_t>(num_nodes) + 1, 0);

    for (const WeightedEdge &e : edges) {
        CS_ASSERT(e.src < num_nodes && e.dst < num_nodes,
                  "edge endpoint out of range");
        ++g.offsets[e.src + 1];
    }
    for (std::size_t v = 1; v <= num_nodes; ++v)
        g.offsets[v] += g.offsets[v - 1];

    g.neigh.resize(edges.size());
    g.wts.resize(edges.size());
    std::vector<EdgeId> cursor(g.offsets.begin(), g.offsets.end() - 1);
    for (const WeightedEdge &e : edges) {
        const EdgeId slot = cursor[e.src]++;
        g.neigh[slot] = e.dst;
        g.wts[slot] = e.weight;
    }
    return g;
}

CsrGraph
CsrGraph::transpose() const
{
    std::vector<WeightedEdge> reversed;
    reversed.reserve(neigh.size());
    for (NodeId v = 0; v < n; ++v) {
        const auto nbrs = neighbors(v);
        const auto ws = weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i)
            reversed.push_back({nbrs[i], v, ws[i]});
    }
    return fromEdges(n, std::move(reversed), /*symmetrize=*/false);
}

} // namespace cachescope
