/**
 * @file
 * Synthetic graph generators standing in for the GAP reference inputs.
 *
 * The GAP suite evaluates on Kronecker (kron) and uniform-random (urand)
 * synthetic graphs plus real web/social graphs. The kron and urand
 * generators below follow GAP's constructions (R-MAT with the Graph500
 * parameters; Erdős–Rényi-style uniform edges); sizes are scaled so the
 * per-vertex property arrays exceed the simulated 1.375 MB LLC by the
 * same order the paper's inputs exceed a real one.
 */

#ifndef CACHESCOPE_GRAPH_GENERATORS_HH
#define CACHESCOPE_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/csr_graph.hh"

namespace cachescope {

/**
 * R-MAT / Kronecker generator with Graph500 probabilities
 * (a=0.57, b=0.19, c=0.19, d=0.05), producing the skewed degree
 * distribution of social networks.
 *
 * @param scale log2 of the vertex count.
 * @param avg_degree edges generated per vertex (before symmetrizing).
 * @param seed RNG seed.
 * @param symmetrize add reverse edges (GAP does for undirected kernels).
 * @param max_weight weights drawn uniformly from [1, max_weight].
 */
CsrGraph makeKronecker(unsigned scale, unsigned avg_degree,
                       std::uint64_t seed, bool symmetrize = true,
                       std::uint32_t max_weight = 255);

/** Uniform-random graph (GAP's "urand"), same parameters as above. */
CsrGraph makeUniform(unsigned scale, unsigned avg_degree,
                     std::uint64_t seed, bool symmetrize = true,
                     std::uint32_t max_weight = 255);

/**
 * 2-D grid graph (4-neighbour torus) — a *regular* graph used by tests
 * and the PC-entropy bench as the locality-friendly contrast case.
 */
CsrGraph makeGrid(NodeId width, NodeId height);

} // namespace cachescope

#endif // CACHESCOPE_GRAPH_GENERATORS_HH
