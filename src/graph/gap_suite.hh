/**
 * @file
 * GAP suite assembly: builds each synthetic input graph once and wraps
 * every (kernel, graph) pair as a Workload, mirroring how the paper
 * runs the GAP benchmark suite over its inputs.
 */

#ifndef CACHESCOPE_GRAPH_GAP_SUITE_HH
#define CACHESCOPE_GRAPH_GAP_SUITE_HH

#include <memory>
#include <vector>

#include "graph/gap_kernels.hh"

namespace cachescope {

/** Suite construction parameters. */
struct GapSuiteConfig
{
    /** log2 vertex count of the generated inputs. */
    unsigned scale = 19;
    /** Edges per vertex before symmetrization. */
    unsigned avgDegree = 8;
    std::uint64_t seed = 42;
    /** Include the Kronecker (social-network-like) input. */
    bool includeKron = true;
    /** Include the uniform-random input. */
    bool includeUniform = true;
    /** Kernels to instantiate; empty = all six. */
    std::vector<GapKernel> kernels;
    GapKernelParams kernelParams;
    /** First PC-region workload id (suites must not overlap regions). */
    std::uint32_t firstPcWorkloadId = 0;
};

/** @return one Workload per (kernel, input) pair. */
std::vector<std::shared_ptr<Workload>>
makeGapSuite(const GapSuiteConfig &config = {});

} // namespace cachescope

#endif // CACHESCOPE_GRAPH_GAP_SUITE_HH
