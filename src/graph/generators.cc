/**
 * @file
 * Graph generator implementations.
 */

#include "graph/generators.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace cachescope {

CsrGraph
makeKronecker(unsigned scale, unsigned avg_degree, std::uint64_t seed,
              bool symmetrize, std::uint32_t max_weight)
{
    CS_ASSERT(scale > 0 && scale < 31, "unreasonable R-MAT scale");
    const NodeId n = NodeId{1} << scale;
    const EdgeId m = static_cast<EdgeId>(n) * avg_degree;

    // Graph500 R-MAT quadrant probabilities.
    constexpr double a = 0.57, b = 0.19, c = 0.19;

    Rng rng(seed);
    std::vector<WeightedEdge> edges;
    edges.reserve(m);
    for (EdgeId e = 0; e < m; ++e) {
        NodeId src = 0, dst = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double r = rng.nextDouble();
            if (r < a) {
                // top-left: neither bit set
            } else if (r < a + b) {
                dst |= NodeId{1} << bit;
            } else if (r < a + b + c) {
                src |= NodeId{1} << bit;
            } else {
                src |= NodeId{1} << bit;
                dst |= NodeId{1} << bit;
            }
        }
        const auto w = static_cast<std::uint32_t>(
            1 + rng.nextBounded(max_weight));
        edges.push_back({src, dst, w});
    }
    return CsrGraph::fromEdges(n, std::move(edges), symmetrize);
}

CsrGraph
makeUniform(unsigned scale, unsigned avg_degree, std::uint64_t seed,
            bool symmetrize, std::uint32_t max_weight)
{
    CS_ASSERT(scale > 0 && scale < 31, "unreasonable urand scale");
    const NodeId n = NodeId{1} << scale;
    const EdgeId m = static_cast<EdgeId>(n) * avg_degree;

    Rng rng(seed);
    std::vector<WeightedEdge> edges;
    edges.reserve(m);
    for (EdgeId e = 0; e < m; ++e) {
        const auto src = static_cast<NodeId>(rng.nextBounded(n));
        const auto dst = static_cast<NodeId>(rng.nextBounded(n));
        const auto w = static_cast<std::uint32_t>(
            1 + rng.nextBounded(max_weight));
        edges.push_back({src, dst, w});
    }
    return CsrGraph::fromEdges(n, std::move(edges), symmetrize);
}

CsrGraph
makeGrid(NodeId width, NodeId height)
{
    CS_ASSERT(width > 1 && height > 1, "grid needs at least 2x2 nodes");
    const NodeId n = width * height;
    std::vector<WeightedEdge> edges;
    edges.reserve(static_cast<std::size_t>(n) * 2);
    for (NodeId y = 0; y < height; ++y) {
        for (NodeId x = 0; x < width; ++x) {
            const NodeId v = y * width + x;
            const NodeId right = y * width + (x + 1) % width;
            const NodeId down = ((y + 1) % height) * width + x;
            edges.push_back({v, right, 1});
            edges.push_back({v, down, 1});
        }
    }
    return CsrGraph::fromEdges(n, std::move(edges), /*symmetrize=*/true);
}

} // namespace cachescope
