/**
 * @file
 * Compressed Sparse Row graph representation — the data layout whose
 * irregular traversal behaviour the paper characterizes.
 *
 * The CSR encoding stores the adjacency matrix as two arrays: the
 * Offset Array (OA, one entry per vertex plus one) and the Neighbours
 * Array (NA, one entry per edge). Property Arrays (PA) carrying
 * per-vertex algorithm state are owned by the kernels.
 */

#ifndef CACHESCOPE_GRAPH_CSR_GRAPH_HH
#define CACHESCOPE_GRAPH_CSR_GRAPH_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace cachescope {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

/** A directed edge with an integral weight (1 for unweighted use). */
struct WeightedEdge
{
    NodeId src;
    NodeId dst;
    std::uint32_t weight = 1;
};

/**
 * Immutable CSR graph. Build via fromEdges() or a generator.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an edge list.
     *
     * @param num_nodes vertex count (ids must be < num_nodes).
     * @param edges edge list; duplicates and self-loops are kept
     *              (GAP's generators produce them too).
     * @param symmetrize add the reverse of every edge (undirected use).
     */
    static CsrGraph fromEdges(NodeId num_nodes,
                              std::vector<WeightedEdge> edges,
                              bool symmetrize);

    NodeId numNodes() const { return n; }
    EdgeId numEdges() const { return static_cast<EdgeId>(neigh.size()); }

    NodeId
    degree(NodeId v) const
    {
        return static_cast<NodeId>(offsets[v + 1] - offsets[v]);
    }

    /** Out-neighbour ids of @p v. */
    std::span<const NodeId>
    neighbors(NodeId v) const
    {
        return {neigh.data() + offsets[v], offsets[v + 1] - offsets[v]};
    }

    /** Edge weights aligned with neighbors(). */
    std::span<const std::uint32_t>
    weights(NodeId v) const
    {
        return {wts.data() + offsets[v], offsets[v + 1] - offsets[v]};
    }

    /** Raw arrays, exposed so kernels can mirror them as TracedArrays. */
    const std::vector<EdgeId> &offsetArray() const { return offsets; }
    const std::vector<NodeId> &neighborArray() const { return neigh; }
    const std::vector<std::uint32_t> &weightArray() const { return wts; }

    /** @return the transpose (CSC view of the same adjacency matrix). */
    CsrGraph transpose() const;

  private:
    NodeId n = 0;
    std::vector<EdgeId> offsets;        ///< OA, size n + 1
    std::vector<NodeId> neigh;          ///< NA, size numEdges
    std::vector<std::uint32_t> wts;     ///< per-edge weights
};

} // namespace cachescope

#endif // CACHESCOPE_GRAPH_CSR_GRAPH_HH
