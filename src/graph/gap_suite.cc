/**
 * @file
 * GAP suite construction.
 */

#include "graph/gap_suite.hh"

#include "graph/generators.hh"

namespace cachescope {

std::vector<std::shared_ptr<Workload>>
makeGapSuite(const GapSuiteConfig &config)
{
    std::vector<GapKernel> kernels = config.kernels;
    if (kernels.empty()) {
        kernels = {GapKernel::Bfs, GapKernel::PageRank, GapKernel::Cc,
                   GapKernel::Bc, GapKernel::Sssp, GapKernel::Tc};
    }

    struct Input
    {
        std::string tag;
        std::shared_ptr<const CsrGraph> graph;
    };
    std::vector<Input> inputs;
    if (config.includeKron) {
        inputs.push_back(
            {"kron" + std::to_string(config.scale),
             std::make_shared<const CsrGraph>(makeKronecker(
                 config.scale, config.avgDegree, config.seed))});
    }
    if (config.includeUniform) {
        inputs.push_back(
            {"urand" + std::to_string(config.scale),
             std::make_shared<const CsrGraph>(makeUniform(
                 config.scale, config.avgDegree, config.seed + 1))});
    }

    std::vector<std::shared_ptr<Workload>> suite;
    std::uint32_t next_id = config.firstPcWorkloadId;
    for (const Input &input : inputs) {
        for (GapKernel kernel : kernels) {
            GapKernelParams params = config.kernelParams;
            params.pcWorkloadId = next_id++;
            suite.push_back(std::make_shared<GapWorkload>(
                kernel, input.tag, input.graph, params));
        }
    }
    return suite;
}

} // namespace cachescope
