/**
 * @file
 * RRIP family implementation.
 */

#include "replacement/rrip.hh"

#include <cstdio>

#include "util/logging.hh"

namespace cachescope {

RripBase::RripBase(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      rrpvs(static_cast<std::size_t>(geometry.numSets) * geometry.numWays,
            kMaxRrpv)
{}

std::uint8_t &
RripBase::rrpv(std::uint32_t set, std::uint32_t way)
{
    return rrpvs[static_cast<std::size_t>(set) * geom.numWays + way];
}

std::uint8_t
RripBase::rrpvOf(std::uint32_t set, std::uint32_t way) const
{
    return rrpvs[static_cast<std::size_t>(set) * geom.numWays + way];
}

std::uint32_t
RripBase::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    // Find a line predicted "distant"; age the whole set until one
    // exists. Ties break toward the lowest way, as in the reference
    // implementation.
    while (true) {
        for (std::uint32_t w = 0; w < geom.numWays; ++w) {
            if (rrpv(set, w) == kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < geom.numWays; ++w)
            ++rrpv(set, w);
    }
}

void
RripBase::update(std::uint32_t set, std::uint32_t way, Pc, Addr,
                 AccessType type, bool hit)
{
    if (hit) {
        // Hit-priority (HP) variant: promote to near-immediate.
        rrpv(set, way) = 0;
        return;
    }
    rrpv(set, way) = insertionRrpv(set, type);
    if (type != AccessType::Writeback)
        onMissFill(set);
}

DrripPolicy::DrripPolicy(const CacheGeometry &geometry) : RripBase(geometry)
{
    // Spread each policy's leaders evenly across the index space. With
    // fewer than 2 * kLeadersPerPolicy sets every set becomes a leader
    // alternating between the two policies.
    leaderStride = geom.numSets / (2 * kLeadersPerPolicy);
    if (leaderStride == 0)
        leaderStride = 1;
}

DrripPolicy::SetRole
DrripPolicy::roleOf(std::uint32_t set) const
{
    if (set % leaderStride != 0)
        return SetRole::Follower;
    const std::uint32_t leader_idx = set / leaderStride;
    if (leader_idx >= 2 * kLeadersPerPolicy)
        return SetRole::Follower;
    return (leader_idx % 2 == 0) ? SetRole::SrripLeader
                                 : SetRole::BrripLeader;
}

std::uint8_t
DrripPolicy::brripInsertion()
{
    if (++fillCount % BrripPolicy::kEpsilon == 0)
        return kMaxRrpv - 1;
    return kMaxRrpv;
}

std::uint8_t
DrripPolicy::insertionRrpv(std::uint32_t set, AccessType)
{
    switch (roleOf(set)) {
      case SetRole::SrripLeader:
        return kMaxRrpv - 1;
      case SetRole::BrripLeader:
        return brripInsertion();
      case SetRole::Follower:
        // PSEL above midpoint means BRRIP leaders missed more, so
        // followers use SRRIP insertion (and vice versa).
        return pselCounter > kPselMax / 2 ? kMaxRrpv - 1 : brripInsertion();
    }
    panic("unreachable DRRIP set role");
}

void
DrripPolicy::onMissFill(std::uint32_t set)
{
    // A miss in a leader set is a vote against that leader's policy.
    switch (roleOf(set)) {
      case SetRole::SrripLeader:
        if (pselCounter > 0)
            --pselCounter;
        break;
      case SetRole::BrripLeader:
        if (pselCounter < kPselMax)
            ++pselCounter;
        break;
      case SetRole::Follower:
        break;
    }
}

} // namespace cachescope

std::string
cachescope::DrripPolicy::debugState() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "psel=%u/%u follower_mode=%s",
                  pselCounter, kPselMax,
                  pselCounter > kPselMax / 2 ? "srrip" : "brrip");
    return buf;
}
