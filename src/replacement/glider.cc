/**
 * @file
 * Glider implementation.
 */

#include "replacement/glider.hh"

#include <algorithm>

#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

GliderPolicy::GliderPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      lines(static_cast<std::size_t>(geometry.numSets) * geometry.numWays),
      isvms(kIsvmTables)
{
    sampleStride = geom.numSets / kTargetSampledSets;
    if (sampleStride == 0)
        sampleStride = 1;
    pchr.reserve(kHistoryDepth);
}

GliderPolicy::LineMeta &
GliderPolicy::line(std::uint32_t set, std::uint32_t way)
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way];
}

std::uint8_t
GliderPolicy::rrpvOf(std::uint32_t set, std::uint32_t way) const
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way].rrpv;
}

std::uint32_t
GliderPolicy::isvmIndex(Pc pc)
{
    return static_cast<std::uint32_t>(foldXor(pc >> 2, kIsvmIndexBits));
}

std::uint32_t
GliderPolicy::weightSlot(Pc pc)
{
    return static_cast<std::uint32_t>(foldXor(pc >> 2, 4)) &
           (kWeightsPerIsvm - 1);
}

bool
GliderPolicy::isSampledSet(std::uint32_t set) const
{
    return set % sampleStride == 0 &&
           set / sampleStride < kTargetSampledSets;
}

GliderPolicy::HistorySnapshot
GliderPolicy::snapshotFor(Pc pc) const
{
    HistorySnapshot snap;
    snap.isvmIndex = isvmIndex(pc);
    for (Pc hist_pc : pchr) {
        if (snap.used >= kHistoryDepth)
            break;
        snap.slots[snap.used++] =
            static_cast<std::uint8_t>(weightSlot(hist_pc));
    }
    return snap;
}

std::int32_t
GliderPolicy::sumOf(const HistorySnapshot &snap) const
{
    const Isvm &isvm = isvms[snap.isvmIndex];
    std::int32_t sum = 0;
    for (std::uint8_t i = 0; i < snap.used; ++i)
        sum += isvm.weights[snap.slots[i]];
    return sum;
}

void
GliderPolicy::train(const HistorySnapshot &snap, bool opt_hit)
{
    // Perceptron-style update with a margin: only adjust weights while
    // the prediction is wrong or insufficiently confident.
    const std::int32_t sum = sumOf(snap);
    if (opt_hit && sum > kTrainingMargin)
        return;
    if (!opt_hit && sum < -kTrainingMargin)
        return;

    Isvm &isvm = isvms[snap.isvmIndex];
    for (std::uint8_t i = 0; i < snap.used; ++i) {
        std::int32_t &w = isvm.weights[snap.slots[i]];
        if (opt_hit)
            w = std::min(w + 1, kWeightLimit);
        else
            w = std::max(w - 1, -kWeightLimit);
    }
}

void
GliderPolicy::pushHistory(Pc pc)
{
    // Keep the most recent occurrence only, front = newest.
    auto it = std::find(pchr.begin(), pchr.end(), pc);
    if (it != pchr.end())
        pchr.erase(it);
    pchr.insert(pchr.begin(), pc);
    if (pchr.size() > kHistoryDepth)
        pchr.pop_back();
}

std::int32_t
GliderPolicy::predictionSum(Pc pc) const
{
    return sumOf(snapshotFor(pc));
}

void
GliderPolicy::sampleAccess(std::uint32_t set, Pc pc, Addr block_addr)
{
    auto it = sampledSets.find(set);
    if (it == sampledSets.end())
        it = sampledSets.emplace(set, SampledSet(geom.numWays)).first;
    SampledSet &s = it->second;

    const std::uint64_t curr = s.optgen.nextQuanta();
    OptSampler::Entry prev;
    if (s.sampler.lookup(block_addr, prev) &&
        curr - prev.lastQuanta < s.optgen.vectorSize()) {
        const bool opt_hit =
            s.optgen.accessWithHistory(curr, prev.lastQuanta);
        auto snap_it = s.snapshots.find(block_addr);
        if (snap_it != s.snapshots.end())
            train(snap_it->second, opt_hit);
    } else {
        s.optgen.accessFirstTouch(curr);
    }
    s.sampler.record(block_addr, curr, pc);
    s.snapshots[block_addr] = snapshotFor(pc);

    if ((curr & 0x3FF) == 0 && curr >= s.optgen.vectorSize()) {
        s.sampler.expireBefore(curr - s.optgen.vectorSize());
        if (s.snapshots.size() > 16 * kOptgenVectorSize)
            s.snapshots.clear();
    }
}

std::uint32_t
GliderPolicy::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        if (line(set, w).rrpv == kMaxRrpv)
            return w;
    }
    std::uint32_t victim = 0;
    std::uint8_t max_rrpv = 0;
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        if (line(set, w).rrpv >= max_rrpv) {
            max_rrpv = line(set, w).rrpv;
            victim = w;
        }
    }
    // Evicting a predicted-friendly line: detrain its fill context so
    // the ISVM learns from the misprediction.
    LineMeta &meta = line(set, victim);
    if (meta.valid && meta.friendly)
        train(snapshotFor(meta.fillPc), /*opt_hit=*/false);
    return victim;
}

void
GliderPolicy::update(std::uint32_t set, std::uint32_t way, Pc pc,
                     Addr block_addr, AccessType type, bool hit)
{
    if (type == AccessType::Writeback) {
        if (!hit) {
            LineMeta &meta = line(set, way);
            meta.rrpv = kMaxRrpv;
            meta.fillPc = pc;
            meta.friendly = false;
            meta.valid = true;
        }
        return;
    }

    if (isSampledSet(set))
        sampleAccess(set, pc, block_addr);

    const std::int32_t sum = predictionSum(pc);
    pushHistory(pc);

    LineMeta &meta = line(set, way);
    const bool friendly = sum >= 0;

    if (hit) {
        meta.rrpv = friendly ? 0 : kMaxRrpv;
        meta.fillPc = pc;
        meta.friendly = friendly;
        return;
    }

    if (sum >= kHighConfidence) {
        // Confidently friendly: protect and age peers.
        for (std::uint32_t w = 0; w < geom.numWays; ++w) {
            if (w != way && line(set, w).rrpv < kMaxRrpv - 1)
                ++line(set, w).rrpv;
        }
        meta.rrpv = 0;
    } else if (friendly) {
        // Low-confidence friendly: insert in the middle of the stack.
        meta.rrpv = kMaxRrpv / 4;
    } else {
        meta.rrpv = kMaxRrpv;
    }
    meta.fillPc = pc;
    meta.friendly = friendly;
    meta.valid = true;
}

} // namespace cachescope
