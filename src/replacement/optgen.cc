/**
 * @file
 * OPTgen implementation.
 */

#include "replacement/optgen.hh"

#include "util/logging.hh"

namespace cachescope {

OptGen::OptGen(std::uint32_t capacity, std::uint32_t vector_size)
    : capacity(capacity), size(vector_size), occupancy(vector_size, 0)
{
    CS_ASSERT(capacity > 0, "OPTgen capacity must be positive");
    CS_ASSERT(vector_size > 1, "OPTgen needs a multi-quantum window");
}

void
OptGen::accessFirstTouch(std::uint64_t curr_quanta)
{
    // A fresh quantum begins: its occupancy starts at zero.
    occupancy[curr_quanta % size] = 0;
    ++accesses;
}

bool
OptGen::accessWithHistory(std::uint64_t curr_quanta,
                          std::uint64_t last_quanta)
{
    occupancy[curr_quanta % size] = 0;
    ++accesses;

    CS_ASSERT(last_quanta <= curr_quanta, "time ran backwards in OPTgen");
    // Liveness intervals longer than the window cannot be decided; OPT
    // is charged a miss, the same conservative choice Hawkeye makes.
    if (curr_quanta - last_quanta >= size)
        return false;

    // OPT caches the line iff every quantum in [last, curr) has spare
    // capacity.
    for (std::uint64_t q = last_quanta; q < curr_quanta; ++q) {
        if (occupancy[q % size] >= capacity)
            return false;
    }
    for (std::uint64_t q = last_quanta; q < curr_quanta; ++q)
        ++occupancy[q % size];
    ++hits;
    return true;
}

bool
OptSampler::lookup(Addr block_addr, Entry &out) const
{
    auto it = table.find(block_addr);
    if (it == table.end())
        return false;
    out = it->second;
    return true;
}

void
OptSampler::record(Addr block_addr, std::uint64_t quanta, Pc pc)
{
    if (table.size() >= maxEntries && table.find(block_addr) == table.end()) {
        // Evict the stalest tracked line to stay bounded.
        auto oldest = table.begin();
        for (auto it = table.begin(); it != table.end(); ++it) {
            if (it->second.lastQuanta < oldest->second.lastQuanta)
                oldest = it;
        }
        table.erase(oldest);
    }
    table[block_addr] = Entry{quanta, pc};
}

void
OptSampler::expireBefore(std::uint64_t horizon)
{
    for (auto it = table.begin(); it != table.end();) {
        if (it->second.lastQuanta < horizon)
            it = table.erase(it);
        else
            ++it;
    }
}

} // namespace cachescope
