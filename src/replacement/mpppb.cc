/**
 * @file
 * MPPPB implementation.
 */

#include "replacement/mpppb.hh"

#include <cstdio>

#include <algorithm>

#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

MpppbPolicy::MpppbPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      lines(static_cast<std::size_t>(geometry.numSets) * geometry.numWays),
      weights(static_cast<std::size_t>(kNumFeatures) * kTableEntries, 0),
      sampler(static_cast<std::size_t>(kTargetSampledSets) * kSamplerAssoc)
{
    sampleStride = geom.numSets / kTargetSampledSets;
    if (sampleStride == 0)
        sampleStride = 1;
}

MpppbPolicy::LineMeta &
MpppbPolicy::line(std::uint32_t set, std::uint32_t way)
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way];
}

std::uint8_t
MpppbPolicy::rrpvOf(std::uint32_t set, std::uint32_t way) const
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way].rrpv;
}

bool
MpppbPolicy::isSampledSet(std::uint32_t set) const
{
    return set % sampleStride == 0 &&
           set / sampleStride < kTargetSampledSets;
}

void
MpppbPolicy::pushPath(Pc pc)
{
    for (std::uint32_t i = kPathDepth - 1; i > 0; --i)
        path[i] = path[i - 1];
    path[0] = pc;
}

MpppbPolicy::FeatureVec
MpppbPolicy::featuresFor(Pc pc, Addr block_addr) const
{
    const auto mask = kTableEntries - 1;
    auto fold = [mask](std::uint64_t v) {
        return static_cast<std::uint16_t>(foldXor(v, kTableIndexBits) & mask);
    };

    FeatureVec f;
    // Each perspective views the access context differently; indices
    // follow the paper's feature classes (PC, shifted PC, PC xor
    // address, path history, page number, block offset in page, and a
    // deep-path xor).
    f[0] = fold(pc >> 2);
    f[1] = fold(pc >> 5);
    f[2] = fold((pc >> 2) ^ (block_addr >> 6));
    f[3] = fold((path[0] >> 2) ^ ((path[1] >> 2) << 1));
    f[4] = fold(block_addr >> 12);
    f[5] = fold((block_addr >> 6) & 63);
    f[6] = fold(((path[2] >> 2) << 2) ^ ((path[3] >> 2) << 3) ^ (pc >> 2));
    return f;
}

std::int32_t
MpppbPolicy::sumOf(const FeatureVec &features) const
{
    std::int32_t sum = 0;
    for (std::uint32_t i = 0; i < kNumFeatures; ++i)
        sum += weights[static_cast<std::size_t>(i) * kTableEntries +
                       features[i]];
    return sum;
}

std::int32_t
MpppbPolicy::predictionSum(Pc pc, Addr block_addr) const
{
    return sumOf(featuresFor(pc, block_addr));
}

void
MpppbPolicy::train(const FeatureVec &features, bool reused)
{
    // Positive weights vote "dead"; a reused block drives its features'
    // weights down, an untouched block drives them up.
    for (std::uint32_t i = 0; i < kNumFeatures; ++i) {
        std::int32_t &w = weights[static_cast<std::size_t>(i) *
                                  kTableEntries + features[i]];
        if (reused)
            w = std::max(w - 1, -kWeightLimit);
        else
            w = std::min(w + 1, kWeightLimit);
    }
}

void
MpppbPolicy::samplerAccess(std::uint32_t set, Pc pc, Addr block_addr)
{
    const std::uint32_t slot = set / sampleStride;
    SamplerEntry *set_base = &sampler[static_cast<std::size_t>(slot) *
                                      kSamplerAssoc];
    const auto tag = static_cast<std::uint16_t>(
        foldXor(block_addr >> 6, 16));

    ++samplerClock;

    // Sampler hit: the inserted block was reused -> positive training.
    for (std::uint32_t w = 0; w < kSamplerAssoc; ++w) {
        SamplerEntry &e = set_base[w];
        if (e.valid && e.partialTag == tag) {
            train(e.features, /*reused=*/true);
            e.reused = true;
            e.lruStamp = samplerClock;
            e.features = featuresFor(pc, block_addr);
            return;
        }
    }

    // Sampler miss: evict LRU entry, training it "dead" if untouched.
    std::uint32_t victim = 0;
    std::uint32_t oldest = ~std::uint32_t{0};
    for (std::uint32_t w = 0; w < kSamplerAssoc; ++w) {
        SamplerEntry &e = set_base[w];
        if (!e.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (e.lruStamp < oldest) {
            oldest = e.lruStamp;
            victim = w;
        }
    }
    SamplerEntry &e = set_base[victim];
    if (e.valid && !e.reused)
        train(e.features, /*reused=*/false);
    e.partialTag = tag;
    e.valid = true;
    e.reused = false;
    e.lruStamp = samplerClock;
    e.features = featuresFor(pc, block_addr);
}

std::uint32_t
MpppbPolicy::findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                        AccessType type)
{
    // Bypass decision happens here: if the incoming block is predicted
    // dead with high confidence, install nothing. Writebacks are never
    // bypassed (the data must land somewhere).
    if (type != AccessType::Writeback &&
        predictionSum(pc, block_addr) >= kBypassThreshold) {
        ++bypasses;
        return kBypassWay;
    }

    while (true) {
        for (std::uint32_t w = 0; w < geom.numWays; ++w) {
            if (line(set, w).rrpv == kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < geom.numWays; ++w)
            ++line(set, w).rrpv;
    }
}

void
MpppbPolicy::update(std::uint32_t set, std::uint32_t way, Pc pc,
                    Addr block_addr, AccessType type, bool hit)
{
    if (type != AccessType::Writeback) {
        if (isSampledSet(set))
            samplerAccess(set, pc, block_addr);
        pushPath(pc);
    }

    LineMeta &meta = line(set, way);

    if (hit) {
        // Promotion: strong reuse prediction goes straight to MRU,
        // otherwise a conservative partial promotion.
        if (type == AccessType::Writeback) {
            return;
        }
        const std::int32_t sum = predictionSum(pc, block_addr);
        if (sum < kPromoteThreshold)
            meta.rrpv = 0;
        else if (meta.rrpv > 0)
            meta.rrpv = meta.rrpv / 2;
        return;
    }

    // Placement.
    if (type == AccessType::Writeback) {
        meta.rrpv = kMaxRrpv - 1;
        return;
    }
    const std::int32_t sum = predictionSum(pc, block_addr);
    if (sum >= kDistantThreshold)
        meta.rrpv = kMaxRrpv;
    else if (sum >= kPromoteThreshold)
        meta.rrpv = kMaxRrpv - 1;
    else
        meta.rrpv = 0;
}

std::string
MpppbPolicy::debugState() const
{
    std::int64_t weight_sum = 0;
    std::uint32_t saturated = 0;
    for (std::int32_t w : weights) {
        weight_sum += w;
        saturated += w == kWeightLimit || w == -kWeightLimit;
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "bypasses=%llu mean_weight=%.2f saturated=%.1f%%",
                  static_cast<unsigned long long>(bypasses),
                  static_cast<double>(weight_sum) / weights.size(),
                  100.0 * saturated / weights.size());
    return buf;
}

} // namespace cachescope
