/**
 * @file
 * BIP / DIP implementation.
 */

#include "replacement/dip.hh"

#include <cstdio>

#include "stats/metrics.hh"
#include "util/logging.hh"

namespace cachescope {

LruInsertionBase::LruInsertionBase(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      lastUse(static_cast<std::size_t>(geometry.numSets) * geometry.numWays,
              0)
{}

std::uint32_t
LruInsertionBase::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        const std::uint64_t t =
            lastUse[static_cast<std::size_t>(set) * geom.numWays + w];
        if (t < oldest) {
            oldest = t;
            victim = w;
        }
    }
    return victim;
}

void
LruInsertionBase::update(std::uint32_t set, std::uint32_t way, Pc, Addr,
                         AccessType type, bool hit)
{
    std::uint64_t &stamp =
        lastUse[static_cast<std::size_t>(set) * geom.numWays + way];
    if (hit) {
        stamp = ++clock;
        return;
    }
    if (insertAtMru(set, type)) {
        stamp = ++clock;
    } else {
        // LRU-position insertion: the line stays the set's oldest, so
        // it is replaced next unless it is re-referenced first. A zero
        // stamp is strictly older than every live timestamp.
        stamp = 0;
    }
    if (type != AccessType::Writeback)
        onMissFill(set);
}

DipPolicy::DipPolicy(const CacheGeometry &geometry)
    : LruInsertionBase(geometry)
{
    leaderStride = geom.numSets / (2 * kLeadersPerPolicy);
    if (leaderStride == 0)
        leaderStride = 1;
}

DipPolicy::SetRole
DipPolicy::roleOf(std::uint32_t set) const
{
    if (set % leaderStride != 0)
        return SetRole::Follower;
    const std::uint32_t leader_idx = set / leaderStride;
    if (leader_idx >= 2 * kLeadersPerPolicy)
        return SetRole::Follower;
    return leader_idx % 2 == 0 ? SetRole::LruLeader : SetRole::BipLeader;
}

bool
DipPolicy::bipInsertAtMru()
{
    return ++fillCount % BipPolicy::kEpsilon == 0;
}

bool
DipPolicy::insertAtMru(std::uint32_t set, AccessType)
{
    switch (roleOf(set)) {
      case SetRole::LruLeader:
        return true;
      case SetRole::BipLeader:
        return bipInsertAtMru();
      case SetRole::Follower:
        // High PSEL = BIP leaders missing more = follow LRU insertion.
        return pselCounter > kPselMax / 2 ? true : bipInsertAtMru();
    }
    panic("unreachable DIP set role");
}

void
DipPolicy::onMissFill(std::uint32_t set)
{
    switch (roleOf(set)) {
      case SetRole::LruLeader:
        if (pselCounter > 0)
            --pselCounter;
        break;
      case SetRole::BipLeader:
        if (pselCounter < kPselMax)
            ++pselCounter;
        break;
      case SetRole::Follower:
        break;
    }
}

} // namespace cachescope

std::string
cachescope::DipPolicy::debugState() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "psel=%u/%u follower_mode=%s",
                  pselCounter, kPselMax,
                  pselCounter > kPselMax / 2 ? "lru" : "bip");
    return buf;
}

void
cachescope::DipPolicy::exportMetrics(MetricsRegistry &metrics,
                                     const std::string &prefix) const
{
    metrics.setGauge(prefix + ".psel", pselCounter);
    metrics.setGauge(prefix + ".follower_mode_lru",
                     pselCounter > kPselMax / 2 ? 1.0 : 0.0);
}
