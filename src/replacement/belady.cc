/**
 * @file
 * Belady OPT implementation.
 */

#include "replacement/belady.hh"

#include "util/logging.hh"

namespace cachescope {

FutureOracle::FutureOracle(const std::vector<Addr> &block_stream)
    : length(block_stream.size())
{
    for (std::uint64_t i = 0; i < block_stream.size(); ++i)
        index[block_stream[i]].positions.push_back(i);
}

std::uint64_t
FutureOracle::nextUseAfter(Addr block_addr, std::uint64_t pos)
{
    auto it = index.find(block_addr);
    if (it == index.end())
        return kNever;
    PerBlock &pb = it->second;
    while (pb.cursor < pb.positions.size() &&
           pb.positions[pb.cursor] <= pos) {
        ++pb.cursor;
    }
    return pb.cursor < pb.positions.size() ? pb.positions[pb.cursor]
                                           : kNever;
}

BeladyPolicy::BeladyPolicy(const CacheGeometry &geometry,
                           std::shared_ptr<FutureOracle> oracle)
    : ReplacementPolicy(geometry), oracle(std::move(oracle)),
      resident(static_cast<std::size_t>(geometry.numSets) * geometry.numWays,
               kInvalidAddr)
{
    CS_ASSERT(this->oracle != nullptr, "BeladyPolicy needs a FutureOracle");
}

std::uint32_t
BeladyPolicy::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    // Evict the resident line re-used farthest in the future (or never).
    std::uint32_t victim = 0;
    std::uint64_t farthest = 0;
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        const Addr block =
            resident[static_cast<std::size_t>(set) * geom.numWays + w];
        if (block == kInvalidAddr)
            return w;
        const std::uint64_t next = oracle->nextUseAfter(block, pos);
        if (next == FutureOracle::kNever)
            return w;
        if (next > farthest) {
            farthest = next;
            victim = w;
        }
    }
    return victim;
}

void
BeladyPolicy::update(std::uint32_t set, std::uint32_t way, Pc,
                     Addr block_addr, AccessType type, bool hit)
{
    // The recorded stream of pass one contains demand accesses only
    // (the hierarchy records before writebacks are generated), so only
    // demand accesses advance the position.
    if (type != AccessType::Writeback)
        ++pos;
    if (!hit) {
        resident[static_cast<std::size_t>(set) * geom.numWays + way] =
            block_addr;
    }
    (void)type;
}

} // namespace cachescope
