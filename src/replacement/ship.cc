/**
 * @file
 * SHiP-PC implementation.
 */

#include "replacement/ship.hh"

#include <cstdio>

#include "util/intmath.hh"

namespace cachescope {

ShipPolicy::ShipPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      lines(static_cast<std::size_t>(geometry.numSets) * geometry.numWays),
      shct(kShctEntries, SatCounter(kShctCounterBits, 1))
{}

ShipPolicy::LineMeta &
ShipPolicy::line(std::uint32_t set, std::uint32_t way)
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way];
}

std::uint32_t
ShipPolicy::signatureOf(Pc pc)
{
    // Drop the byte-offset bits, then fold the PC down to 14 bits.
    return static_cast<std::uint32_t>(foldXor(pc >> 2, kSignatureBits));
}

std::uint32_t
ShipPolicy::shctValue(std::uint32_t signature) const
{
    return shct[signature & (kShctEntries - 1)].get();
}

std::uint8_t
ShipPolicy::rrpvOf(std::uint32_t set, std::uint32_t way) const
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way].rrpv;
}

std::uint32_t
ShipPolicy::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    while (true) {
        for (std::uint32_t w = 0; w < geom.numWays; ++w) {
            if (line(set, w).rrpv == kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < geom.numWays; ++w)
            ++line(set, w).rrpv;
    }
}

void
ShipPolicy::update(std::uint32_t set, std::uint32_t way, Pc pc, Addr,
                   AccessType type, bool hit)
{
    LineMeta &meta = line(set, way);

    if (hit) {
        meta.rrpv = 0;
        // Positive training: the inserting signature produced a hit.
        // Writeback hits carry no reuse information and do not train.
        if (type != AccessType::Writeback && meta.trainable &&
            !meta.outcome) {
            meta.outcome = true;
            shct[meta.signature].increment();
        }
        return;
    }

    // Fill path: the metadata still describes the evicted line, so train
    // the negative outcome (inserted but never hit) before overwriting.
    if (meta.trainable && !meta.outcome)
        shct[meta.signature].decrement();

    const std::uint32_t sig = signatureOf(pc);
    meta.signature = sig;
    meta.outcome = false;
    meta.trainable = type != AccessType::Writeback;

    if (type == AccessType::Writeback) {
        // Dirty data arriving from above has unknown reuse; insert long.
        meta.rrpv = kMaxRrpv - 1;
    } else if (shct[sig].isMin()) {
        // Signature has a history of zero reuse: predict dead on arrival.
        meta.rrpv = kMaxRrpv;
    } else {
        meta.rrpv = kMaxRrpv - 1;
    }
}

std::string
ShipPolicy::debugState() const
{
    std::uint32_t dead = 0, saturated = 0;
    for (const auto &ctr : shct) {
        dead += ctr.isMin();
        saturated += ctr.isMax();
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "shct_dead=%.1f%% shct_saturated=%.1f%%",
                  100.0 * dead / shct.size(),
                  100.0 * saturated / shct.size());
    return buf;
}

} // namespace cachescope
