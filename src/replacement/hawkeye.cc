/**
 * @file
 * Hawkeye implementation.
 */

#include "replacement/hawkeye.hh"

#include <cstdio>

#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

HawkeyePolicy::HawkeyePolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      lines(static_cast<std::size_t>(geometry.numSets) * geometry.numWays),
      predictor(kPredictorEntries,
                SatCounter(kPredictorCounterBits, kFriendlyThreshold))
{
    sampleStride = geom.numSets / kTargetSampledSets;
    if (sampleStride == 0)
        sampleStride = 1;
}

HawkeyePolicy::LineMeta &
HawkeyePolicy::line(std::uint32_t set, std::uint32_t way)
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way];
}

std::uint8_t
HawkeyePolicy::rrpvOf(std::uint32_t set, std::uint32_t way) const
{
    return lines[static_cast<std::size_t>(set) * geom.numWays + way].rrpv;
}

std::uint32_t
HawkeyePolicy::predictorIndex(Pc pc)
{
    return static_cast<std::uint32_t>(
        foldXor(pc >> 2, kPredictorIndexBits));
}

bool
HawkeyePolicy::predictsFriendly(Pc pc) const
{
    return predictor[predictorIndex(pc)].get() >= kFriendlyThreshold;
}

bool
HawkeyePolicy::isSampledSet(std::uint32_t set) const
{
    return set % sampleStride == 0 &&
           set / sampleStride < kTargetSampledSets;
}

void
HawkeyePolicy::train(Pc pc, bool opt_hit)
{
    auto &ctr = predictor[predictorIndex(pc)];
    if (opt_hit)
        ctr.increment();
    else
        ctr.decrement();
}

void
HawkeyePolicy::detrain(Pc pc)
{
    predictor[predictorIndex(pc)].decrement();
}

void
HawkeyePolicy::sampleAccess(std::uint32_t set, Pc pc, Addr block_addr)
{
    auto it = sampledSets.find(set);
    if (it == sampledSets.end()) {
        it = sampledSets.emplace(set, SampledSet(geom.numWays)).first;
    }
    SampledSet &s = it->second;

    const std::uint64_t curr = s.optgen.nextQuanta();
    OptSampler::Entry prev;
    if (s.sampler.lookup(block_addr, prev) &&
        curr - prev.lastQuanta < s.optgen.vectorSize()) {
        const bool opt_hit = s.optgen.accessWithHistory(curr,
                                                        prev.lastQuanta);
        // OPT's verdict labels the *previous* access's PC: that PC
        // brought the line in (or kept it), and OPT tells us whether
        // doing so paid off.
        train(prev.lastPc, opt_hit);
    } else {
        s.optgen.accessFirstTouch(curr);
    }
    s.sampler.record(block_addr, curr, pc);

    // Periodically drop sampler entries that fell out of the OPTgen
    // window so the map stays small.
    if ((curr & 0x3FF) == 0 && curr >= s.optgen.vectorSize())
        s.sampler.expireBefore(curr - s.optgen.vectorSize());
}

std::uint32_t
HawkeyePolicy::findVictim(std::uint32_t set, Pc pc, Addr, AccessType)
{
    // Cache-averse lines (RRPV saturated) go first.
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        if (line(set, w).rrpv == kMaxRrpv)
            return w;
    }
    // Otherwise evict the oldest cache-friendly line and tell the
    // predictor it was wrong about that line's PC.
    std::uint32_t victim = 0;
    std::uint8_t max_rrpv = 0;
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        if (line(set, w).rrpv >= max_rrpv) {
            max_rrpv = line(set, w).rrpv;
            victim = w;
        }
    }
    (void)pc;
    LineMeta &meta = line(set, victim);
    if (meta.valid && meta.friendly)
        detrain(meta.fillPc);
    return victim;
}

void
HawkeyePolicy::update(std::uint32_t set, std::uint32_t way, Pc pc,
                      Addr block_addr, AccessType type, bool hit)
{
    // Writebacks carry no program behaviour: they do not touch OPTgen
    // and are inserted cache-averse.
    if (type == AccessType::Writeback) {
        if (!hit) {
            LineMeta &meta = line(set, way);
            meta.rrpv = kMaxRrpv;
            meta.fillPc = pc;
            meta.friendly = false;
            meta.valid = true;
        }
        return;
    }

    if (isSampledSet(set))
        sampleAccess(set, pc, block_addr);

    const bool friendly = predictsFriendly(pc);
    LineMeta &meta = line(set, way);

    if (hit) {
        meta.rrpv = friendly ? 0 : kMaxRrpv;
        meta.fillPc = pc;
        meta.friendly = friendly;
        return;
    }

    // Fill path.
    if (friendly) {
        // Age the other friendly lines so relative recency among
        // friendly lines is preserved (RRPV saturates below averse).
        for (std::uint32_t w = 0; w < geom.numWays; ++w) {
            if (w != way && line(set, w).rrpv < kMaxRrpv - 1)
                ++line(set, w).rrpv;
        }
        meta.rrpv = 0;
    } else {
        meta.rrpv = kMaxRrpv;
    }
    meta.fillPc = pc;
    meta.friendly = friendly;
    meta.valid = true;
}

std::uint64_t
HawkeyePolicy::optgenHits() const
{
    std::uint64_t total = 0;
    for (const auto &[set, s] : sampledSets)
        total += s.optgen.optHits();
    return total;
}

std::uint64_t
HawkeyePolicy::optgenAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &[set, s] : sampledSets)
        total += s.optgen.optAccesses();
    return total;
}

std::string
HawkeyePolicy::debugState() const
{
    std::uint32_t friendly = 0;
    for (const auto &ctr : predictor)
        friendly += ctr.get() >= kFriendlyThreshold;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "friendly_entries=%.1f%% optgen_hit_rate=%.3f "
                  "sampled_accesses=%llu",
                  100.0 * friendly / predictor.size(),
                  optgenAccesses() == 0
                      ? 0.0
                      : static_cast<double>(optgenHits()) /
                        static_cast<double>(optgenAccesses()),
                  static_cast<unsigned long long>(optgenAccesses()));
    return buf;
}

} // namespace cachescope
