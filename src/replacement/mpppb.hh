/**
 * @file
 * MPPPB — Multiperspective Placement, Promotion and Bypass
 * (Jiménez & Teran, "Multiperspective Reuse Prediction", MICRO 2017).
 *
 * A hashed-perceptron reuse predictor: several independent *features*
 * (perspectives) each hash the access context (PC, PC history, address
 * bits, page, block offset) into their own table of small signed
 * weights. The sum of the selected weights predicts whether the block
 * will be reused; thresholds on the sum drive bypass (don't install),
 * placement (insertion RRPV) and promotion (hit RRPV).
 *
 * Training follows the paper's decoupled-sampler design: a small
 * set-sampled tag cache records the feature indices active when a block
 * was inserted; sampler hits train the weights toward "reused", sampler
 * evictions of untouched entries train toward "not reused". This keeps
 * bypass learnable — the sampler observes blocks even when the main
 * cache bypassed them.
 */

#ifndef CACHESCOPE_REPLACEMENT_MPPPB_HH
#define CACHESCOPE_REPLACEMENT_MPPPB_HH

#include <array>
#include <cstdint>
#include <vector>

#include "replacement/replacement_policy.hh"

namespace cachescope {

class MpppbPolicy : public ReplacementPolicy
{
  public:
    static constexpr unsigned kRrpvBits = 3;
    static constexpr std::uint8_t kMaxRrpv = (1u << kRrpvBits) - 1;
    /** Number of feature tables (perspectives). */
    static constexpr std::uint32_t kNumFeatures = 7;
    static constexpr unsigned kTableIndexBits = 8;
    static constexpr std::uint32_t kTableEntries = 1u << kTableIndexBits;
    static constexpr std::int32_t kWeightLimit = 31;
    /** Sum above this: predicted dead on arrival -> bypass. */
    static constexpr std::int32_t kBypassThreshold = 70;
    /** Sum above this: install at distant RRPV. */
    static constexpr std::int32_t kDistantThreshold = 25;
    /** Sum below this on a hit: strong reuse -> promote to MRU. */
    static constexpr std::int32_t kPromoteThreshold = 0;
    /** PC history depth feeding the path features. */
    static constexpr std::uint32_t kPathDepth = 4;
    static constexpr std::uint32_t kTargetSampledSets = 64;
    /** Associativity of each sampler set (> cache assoc, per paper). */
    static constexpr std::uint32_t kSamplerAssoc = 18;

    explicit MpppbPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    /** @return the current perceptron sum for an access context. */
    std::int32_t predictionSum(Pc pc, Addr block_addr) const;

    bool isSampledSet(std::uint32_t set) const;

    /** Exposed for tests. */
    std::uint8_t rrpvOf(std::uint32_t set, std::uint32_t way) const;
    std::uint64_t bypassCount() const { return bypasses; }

    std::string debugState() const override;

  private:
    using FeatureVec = std::array<std::uint16_t, kNumFeatures>;

    struct LineMeta
    {
        std::uint8_t rrpv = kMaxRrpv;
    };

    /** Sampler entry: partial tag + the features live at insertion. */
    struct SamplerEntry
    {
        std::uint16_t partialTag = 0;
        bool valid = false;
        bool reused = false;
        std::uint32_t lruStamp = 0;
        FeatureVec features{};
    };

    FeatureVec featuresFor(Pc pc, Addr block_addr) const;
    std::int32_t sumOf(const FeatureVec &features) const;
    void train(const FeatureVec &features, bool reused);
    void samplerAccess(std::uint32_t set, Pc pc, Addr block_addr);
    void pushPath(Pc pc);

    LineMeta &line(std::uint32_t set, std::uint32_t way);

    std::uint32_t sampleStride;
    std::vector<LineMeta> lines;
    /** kNumFeatures tables of kTableEntries signed weights, flattened. */
    std::vector<std::int32_t> weights;
    std::array<Pc, kPathDepth> path{};
    std::uint32_t samplerClock = 0;
    std::uint64_t bypasses = 0;
    /** [sampled_set_slot][kSamplerAssoc] entries, flattened. */
    std::vector<SamplerEntry> sampler;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_MPPPB_HH
