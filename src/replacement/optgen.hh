/**
 * @file
 * OPTgen — the sampled reconstruction of Belady's OPT used by Hawkeye
 * (Jain & Lin, ISCA 2016) and reused by Glider's online predictor.
 *
 * OPTgen answers, for a stream of accesses to one cache set, "would OPT
 * have hit this access?" using the insight that OPT caches a line iff
 * the cache has spare capacity in every time quantum of the line's
 * liveness interval. It maintains an occupancy vector over the last N
 * access quanta; an access to a line last touched at quantum t is an
 * OPT hit iff occupancy stayed below the associativity in [t, now).
 */

#ifndef CACHESCOPE_REPLACEMENT_OPTGEN_HH
#define CACHESCOPE_REPLACEMENT_OPTGEN_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace cachescope {

/**
 * Occupancy-vector OPT reconstruction for a single set.
 */
class OptGen
{
  public:
    /**
     * @param capacity lines the set can hold (associativity).
     * @param vector_size history window in access quanta.
     */
    explicit OptGen(std::uint32_t capacity, std::uint32_t vector_size = 128);

    /**
     * Record an access whose previous access to the same line happened
     * at absolute quantum @p last_quanta.
     *
     * @param curr_quanta absolute index of this access (from quanta()).
     * @param last_quanta absolute index of the previous access.
     * @return true iff OPT would have hit.
     */
    bool accessWithHistory(std::uint64_t curr_quanta,
                           std::uint64_t last_quanta);

    /** Record a first-touch access (always an OPT miss). */
    void accessFirstTouch(std::uint64_t curr_quanta);

    /** @return the next absolute quantum index and advance the clock. */
    std::uint64_t nextQuanta() { return clock++; }

    std::uint32_t vectorSize() const { return size; }
    std::uint64_t optHits() const { return hits; }
    std::uint64_t optAccesses() const { return accesses; }

  private:
    std::uint32_t capacity;
    std::uint32_t size;
    std::uint64_t clock = 0;
    std::uint64_t hits = 0;
    std::uint64_t accesses = 0;
    std::vector<std::uint16_t> occupancy;
};

/**
 * Per-set address sampler feeding OPTgen: remembers, for recently seen
 * lines, the quantum and PC of their last access, so the owner policy
 * can train its predictor with OPT's verdict on the *previous* PC.
 */
class OptSampler
{
  public:
    struct Entry
    {
        std::uint64_t lastQuanta = 0;
        Pc lastPc = 0;
    };

    /** @param max_entries bound on tracked lines per set. */
    explicit OptSampler(std::uint32_t max_entries = 512)
        : maxEntries(max_entries)
    {}

    /**
     * Look up @p block_addr; if present, copy its entry into @p out.
     * @return true if the line was being tracked.
     */
    bool lookup(Addr block_addr, Entry &out) const;

    /** Insert or refresh the entry for @p block_addr. */
    void record(Addr block_addr, std::uint64_t quanta, Pc pc);

    /** Drop entries whose last access is older than @p horizon quanta. */
    void expireBefore(std::uint64_t horizon);

    std::size_t size() const { return table.size(); }

  private:
    std::uint32_t maxEntries;
    std::unordered_map<Addr, Entry> table;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_OPTGEN_HH
