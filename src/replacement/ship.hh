/**
 * @file
 * SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011),
 * PC-signature variant (SHiP-PC).
 *
 * SHiP layers a learned insertion policy on top of SRRIP: a table of
 * saturating counters (the SHCT), indexed by a hash of the missing
 * instruction's PC, tracks whether lines inserted by that PC tend to be
 * re-referenced before eviction. Lines whose signature has never
 * produced hits are inserted with distant RRPV (effectively predicted
 * dead on arrival).
 *
 * This is the first of the PC-correlating policies the paper shows
 * failing on graph workloads: when one PC streams over millions of
 * blocks with mixed reuse, its single SHCT counter carries no signal.
 */

#ifndef CACHESCOPE_REPLACEMENT_SHIP_HH
#define CACHESCOPE_REPLACEMENT_SHIP_HH

#include <cstdint>
#include <vector>

#include "replacement/replacement_policy.hh"
#include "util/sat_counter.hh"

namespace cachescope {

class ShipPolicy : public ReplacementPolicy
{
  public:
    static constexpr unsigned kRrpvBits = 2;
    static constexpr std::uint8_t kMaxRrpv = (1u << kRrpvBits) - 1;
    static constexpr unsigned kSignatureBits = 14;
    static constexpr std::uint32_t kShctEntries = 1u << kSignatureBits;
    static constexpr unsigned kShctCounterBits = 2;

    explicit ShipPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    /** @return the 14-bit signature SHiP derives from @p pc. */
    static std::uint32_t signatureOf(Pc pc);

    /** Exposed for tests. */
    std::uint32_t shctValue(std::uint32_t signature) const;
    std::uint8_t rrpvOf(std::uint32_t set, std::uint32_t way) const;

    std::string debugState() const override;

  private:
    struct LineMeta
    {
        std::uint8_t rrpv = kMaxRrpv;
        std::uint32_t signature = 0;
        bool outcome = false;    ///< line produced at least one hit
        bool trainable = false;  ///< filled by a demand access (not WB)
    };

    LineMeta &line(std::uint32_t set, std::uint32_t way);

    std::vector<LineMeta> lines;
    std::vector<SatCounter> shct;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_SHIP_HH
