/**
 * @file
 * Belady's OPT — the offline optimal replacement oracle.
 *
 * OPT evicts the resident line whose next use lies farthest in the
 * future. It needs the future, so it cannot exist in hardware; here it
 * runs in two passes: pass one records the sequence of block addresses
 * reaching the LLC (which is replacement-policy-independent, because
 * the upper levels are fixed at LRU), pass two replays the workload
 * with this policy consulting the recorded future. Used by the
 * opt-headroom experiment (E7) to bound what any online policy could
 * possibly gain.
 */

#ifndef CACHESCOPE_REPLACEMENT_BELADY_HH
#define CACHESCOPE_REPLACEMENT_BELADY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "replacement/replacement_policy.hh"

namespace cachescope {

/**
 * Precomputed next-use index over an LLC access stream.
 *
 * Build it from the block-address sequence of pass one; it answers
 * "when is block X next accessed strictly after stream position i?"
 * in amortized O(1) via per-block cursors.
 */
class FutureOracle
{
  public:
    /** Sentinel meaning "never accessed again". */
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

    explicit FutureOracle(const std::vector<Addr> &block_stream);

    /**
     * @return the stream position of the first access to @p block_addr
     * strictly after @p pos, or kNever.
     *
     * Positions passed to nextUseAfter() must be non-decreasing per
     * block (the replay is monotone), which the cursor design assumes.
     */
    std::uint64_t nextUseAfter(Addr block_addr, std::uint64_t pos);

    std::uint64_t streamLength() const { return length; }

  private:
    struct PerBlock
    {
        std::vector<std::uint64_t> positions;
        std::size_t cursor = 0;
    };

    std::uint64_t length;
    std::unordered_map<Addr, PerBlock> index;
};

/**
 * The OPT policy. Counts LLC accesses itself to stay aligned with the
 * recorded stream: pass two must present exactly the same demand
 * accesses in the same order as pass one.
 */
class BeladyPolicy : public ReplacementPolicy
{
  public:
    BeladyPolicy(const CacheGeometry &geometry,
                 std::shared_ptr<FutureOracle> oracle);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    std::uint64_t position() const { return pos; }

  private:
    std::shared_ptr<FutureOracle> oracle;
    std::uint64_t pos = 0;
    /** Resident block address per (set, way); kInvalidAddr when empty. */
    std::vector<Addr> resident;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_BELADY_HH
