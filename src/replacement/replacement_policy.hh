/**
 * @file
 * The replacement-policy framework.
 *
 * The interface mirrors the ChampSim / Cache Replacement Championship
 * (CRC2) contract that all the evaluated policies were originally
 * published against: the cache asks the policy for a victim way when a
 * set is full, and notifies it on every access (hit or fill) so it can
 * maintain its own per-line metadata. Policies may also elect to bypass
 * the cache entirely by returning kBypassWay.
 */

#ifndef CACHESCOPE_REPLACEMENT_REPLACEMENT_POLICY_HH
#define CACHESCOPE_REPLACEMENT_REPLACEMENT_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hh"
#include "util/types.hh"

namespace cachescope {

class MetricsRegistry;

/** Why the cache is being accessed, as seen by the replacement policy. */
enum class AccessType : std::uint8_t {
    Load = 0,       ///< demand read (includes instruction fetch)
    Store = 1,      ///< demand write / read-for-ownership
    Writeback = 2,  ///< dirty eviction arriving from the level above
    Prefetch = 3,   ///< prefetcher-initiated fill
};

/** @return a short lowercase name for @p type. */
const char *accessTypeName(AccessType type);

/** Static shape of the cache a policy instance manages. */
struct CacheGeometry
{
    std::uint32_t numSets = 0;
    std::uint32_t numWays = 0;
    std::uint32_t blockBytes = 64;

    std::uint64_t
    sizeBytes() const
    {
        return std::uint64_t{numSets} * numWays * blockBytes;
    }
};

/**
 * Abstract base class for all replacement policies.
 *
 * Call protocol, guaranteed by the cache:
 *  - findVictim() is invoked only when every way in @p set holds a valid
 *    line; it returns the way to evict, or kBypassWay to skip the fill.
 *  - update() is invoked on every hit (with the hitting way) and on
 *    every fill (with the way being filled, hit = false). On fills the
 *    policy's metadata for that way still describes the *evicted* line
 *    when update() begins, so eviction-time training (SHiP, Hawkeye)
 *    happens there before the metadata is overwritten.
 *  - update() is never invoked for bypassed fills; policies that bypass
 *    get their training signal from findVictim() itself.
 */
class ReplacementPolicy
{
  public:
    /** Returned by findVictim() to install nothing (cache bypass). */
    static constexpr std::uint32_t kBypassWay = ~std::uint32_t{0};

    explicit ReplacementPolicy(const CacheGeometry &geometry)
        : geom(geometry)
    {}

    virtual ~ReplacementPolicy() = default;

    ReplacementPolicy(const ReplacementPolicy &) = delete;
    ReplacementPolicy &operator=(const ReplacementPolicy &) = delete;

    /**
     * Choose a victim in a full set.
     *
     * @param set the set index.
     * @param pc PC of the instruction that missed.
     * @param block_addr block-aligned address being filled.
     * @param type access type of the miss.
     * @return victim way in [0, numWays), or kBypassWay.
     */
    virtual std::uint32_t findVictim(std::uint32_t set, Pc pc,
                                     Addr block_addr, AccessType type) = 0;

    /**
     * Observe an access.
     *
     * @param set the set index.
     * @param way the hitting way (hit) or the way being filled (miss).
     * @param pc PC of the accessing instruction.
     * @param block_addr block-aligned address accessed.
     * @param type access type.
     * @param hit true for hits, false for fills.
     */
    virtual void update(std::uint32_t set, std::uint32_t way, Pc pc,
                        Addr block_addr, AccessType type, bool hit) = 0;

    /** @return the registry name this instance was created under. */
    const std::string &name() const { return policyName; }

    const CacheGeometry &geometry() const { return geom; }

    /**
     * @return a one-line human-readable snapshot of the policy's
     * learned state ("psel=312/1023", "friendly_pcs=12%", ...), empty
     * for stateless policies. Purely observational — used by the CLI's
     * --policy-state flag and by tests.
     */
    virtual std::string debugState() const { return ""; }

    /**
     * Register the policy's learned-state metrics (selector counters,
     * predictor occupancy, ...) under "<prefix>." in @p metrics.
     * Stateless policies export nothing; purely observational, called
     * at report time only.
     */
    virtual void
    exportMetrics(MetricsRegistry &metrics, const std::string &prefix) const
    {
        (void)metrics;
        (void)prefix;
    }

  protected:
    CacheGeometry geom;

  private:
    friend class ReplacementPolicyFactory;
    std::string policyName;
};

/**
 * Name-to-constructor registry so simulations can select policies from
 * strings ("lru", "hawkeye", ...), mirroring how ChampSim links policy
 * modules.
 */
class ReplacementPolicyFactory
{
  public:
    using Creator = std::function<std::unique_ptr<ReplacementPolicy>(
        const CacheGeometry &)>;

    /** Register @p creator under @p name; fatal() on duplicates. */
    static void registerPolicy(const std::string &name, Creator creator);

    /** Instantiate policy @p name; fatal() if unknown. */
    static std::unique_ptr<ReplacementPolicy>
    create(const std::string &name, const CacheGeometry &geometry);

    /**
     * Instantiate policy @p name, reporting unknown names (and other
     * bad input) as a Status instead of terminating.
     */
    static Expected<std::unique_ptr<ReplacementPolicy>>
    tryCreate(const std::string &name, const CacheGeometry &geometry);

    /** @return all registered names, sorted. */
    static std::vector<std::string> availablePolicies();

    /** @return true iff @p name is registered. */
    static bool isRegistered(const std::string &name);
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_REPLACEMENT_POLICY_HH
