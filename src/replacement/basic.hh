/**
 * @file
 * Baseline replacement policies: LRU, FIFO, Random, NRU and Tree-PLRU.
 *
 * LRU is the paper's baseline — every speedup in Fig. 3 is normalized to
 * it. The others are classic low-cost alternatives used by the tests and
 * ablation benches to sanity-check the framework.
 */

#ifndef CACHESCOPE_REPLACEMENT_BASIC_HH
#define CACHESCOPE_REPLACEMENT_BASIC_HH

#include <cstdint>
#include <vector>

#include "replacement/replacement_policy.hh"
#include "util/rng.hh"

namespace cachescope {

/**
 * True LRU via per-line access timestamps (64-bit, never wraps in
 * practice). Writebacks refresh recency exactly like demand accesses,
 * matching ChampSim's baseline lru module.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    explicit LruPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    /** Exposed for tests: current timestamp of (set, way). */
    std::uint64_t timestamp(std::uint32_t set, std::uint32_t way) const;

    /**
     * Non-virtual hit-path shortcut: identical to update(hit=true),
     * which refreshes the line's recency stamp regardless of access
     * type. Called directly by the cache's devirtualized fast path.
     */
    void
    touchHit(std::uint32_t set, std::uint32_t way)
    {
        lastUse[static_cast<std::size_t>(set) * geom.numWays + way] =
            ++clock;
    }

  private:
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> lastUse; // [set * ways + way]
};

/** FIFO: evict the line that was filled earliest; hits do not promote. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    explicit FifoPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

  private:
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> fillTime;
};

/** Uniform-random victim selection (seed-deterministic). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

  private:
    Rng rng;
};

/**
 * Not-Recently-Used: one reference bit per line; victim is the first
 * line with a clear bit, clearing all bits when every line is referenced.
 */
class NruPolicy : public ReplacementPolicy
{
  public:
    explicit NruPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    /**
     * Non-virtual hit-path shortcut: identical to update(hit=true),
     * which sets the line's reference bit. Called directly by the
     * cache's devirtualized fast path.
     */
    void
    markReferenced(std::uint32_t set, std::uint32_t way)
    {
        referenced[static_cast<std::size_t>(set) * geom.numWays + way] = 1;
    }

  private:
    std::vector<std::uint8_t> referenced;
};

/**
 * Tree pseudo-LRU. The tree covers the next power of two above the
 * associativity; victim walks cold pointers and clamps to the last way
 * when the walk lands past the associativity (standard treatment for
 * non-power-of-two caches such as the 11-way Cascade Lake LLC).
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    explicit TreePlruPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

  private:
    std::uint32_t leafCount;              ///< pow2 >= numWays
    std::vector<std::uint8_t> treeBits;   ///< [set][leafCount - 1] flattened
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_BASIC_HH
