/**
 * @file
 * Baseline policy implementations.
 */

#include "replacement/basic.hh"

#include <algorithm>

#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

namespace {

std::size_t
lineIndex(const CacheGeometry &g, std::uint32_t set, std::uint32_t way)
{
    return static_cast<std::size_t>(set) * g.numWays + way;
}

} // anonymous namespace

// ---------------------------------------------------------------- LRU --

LruPolicy::LruPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      lastUse(static_cast<std::size_t>(geometry.numSets) * geometry.numWays,
              0)
{}

std::uint32_t
LruPolicy::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        const std::uint64_t t = lastUse[lineIndex(geom, set, w)];
        if (t < oldest) {
            oldest = t;
            victim = w;
        }
    }
    return victim;
}

void
LruPolicy::update(std::uint32_t set, std::uint32_t way, Pc, Addr, AccessType,
                  bool)
{
    lastUse[lineIndex(geom, set, way)] = ++clock;
}

std::uint64_t
LruPolicy::timestamp(std::uint32_t set, std::uint32_t way) const
{
    return lastUse[lineIndex(geom, set, way)];
}

// --------------------------------------------------------------- FIFO --

FifoPolicy::FifoPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      fillTime(static_cast<std::size_t>(geometry.numSets) * geometry.numWays,
               0)
{}

std::uint32_t
FifoPolicy::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        const std::uint64_t t = fillTime[lineIndex(geom, set, w)];
        if (t < oldest) {
            oldest = t;
            victim = w;
        }
    }
    return victim;
}

void
FifoPolicy::update(std::uint32_t set, std::uint32_t way, Pc, Addr, AccessType,
                   bool hit)
{
    if (!hit)
        fillTime[lineIndex(geom, set, way)] = ++clock;
}

// ------------------------------------------------------------- Random --

RandomPolicy::RandomPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry), rng(0xC0FFEEull)
{}

std::uint32_t
RandomPolicy::findVictim(std::uint32_t, Pc, Addr, AccessType)
{
    return static_cast<std::uint32_t>(rng.nextBounded(geom.numWays));
}

void
RandomPolicy::update(std::uint32_t, std::uint32_t, Pc, Addr, AccessType, bool)
{}

// ---------------------------------------------------------------- NRU --

NruPolicy::NruPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      referenced(static_cast<std::size_t>(geometry.numSets) *
                 geometry.numWays, 0)
{}

std::uint32_t
NruPolicy::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        if (!referenced[lineIndex(geom, set, w)])
            return w;
    }
    // Everything referenced: clear the set's bits and take way 0.
    for (std::uint32_t w = 0; w < geom.numWays; ++w)
        referenced[lineIndex(geom, set, w)] = 0;
    return 0;
}

void
NruPolicy::update(std::uint32_t set, std::uint32_t way, Pc, Addr, AccessType,
                  bool)
{
    referenced[lineIndex(geom, set, way)] = 1;
}

// ---------------------------------------------------------- Tree-PLRU --

TreePlruPolicy::TreePlruPolicy(const CacheGeometry &geometry)
    : ReplacementPolicy(geometry),
      leafCount(1u << ceilLog2(geometry.numWays)),
      treeBits(static_cast<std::size_t>(geometry.numSets) *
               (leafCount - 1), 0)
{}

std::uint32_t
TreePlruPolicy::findVictim(std::uint32_t set, Pc, Addr, AccessType)
{
    // Single-way: the tree has zero internal nodes and treeBits is
    // empty — indexing it (even to form a reference) would be UB.
    if (leafCount == 1)
        return 0;
    std::uint8_t *tree =
        &treeBits[static_cast<std::size_t>(set) * (leafCount - 1)];
    // Walk from the root following the "cold" direction indicated by
    // each node bit (bit = 0 means the left subtree is colder).
    std::uint32_t node = 0;
    while (node < leafCount - 1)
        node = 2 * node + 1 + tree[node];
    std::uint32_t way = node - (leafCount - 1);
    // Non-power-of-two associativity: walks that land past the last
    // real way are clamped onto it.
    if (way >= geom.numWays)
        way = geom.numWays - 1;
    return way;
}

void
TreePlruPolicy::update(std::uint32_t set, std::uint32_t way, Pc, Addr,
                       AccessType, bool)
{
    if (leafCount == 1)
        return;
    std::uint8_t *tree =
        &treeBits[static_cast<std::size_t>(set) * (leafCount - 1)];
    // Flip every node on the root-to-leaf path to point away from the
    // just-touched way.
    std::uint32_t node = way + (leafCount - 1);
    while (node != 0) {
        const std::uint32_t parent = (node - 1) / 2;
        const bool came_from_left = (node == 2 * parent + 1);
        tree[parent] = came_from_left ? 1 : 0;
        node = parent;
    }
}

} // namespace cachescope
