/**
 * @file
 * Replacement-policy factory implementation.
 *
 * Built-in policies are registered lazily on first use (see builtin.cc),
 * which avoids the static-initialization-order and dead-stripping
 * hazards of self-registering translation units in static libraries.
 */

#include "replacement/replacement_policy.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "util/logging.hh"

namespace cachescope {

/** Defined in builtin.cc; registers every built-in policy exactly once. */
void registerBuiltinPolicies();

namespace {

std::map<std::string, ReplacementPolicyFactory::Creator> &
creatorMap()
{
    static std::map<std::string, ReplacementPolicyFactory::Creator> map;
    return map;
}

void
ensureBuiltins()
{
    static std::once_flag flag;
    std::call_once(flag, registerBuiltinPolicies);
}

} // anonymous namespace

const char *
accessTypeName(AccessType type)
{
    switch (type) {
      case AccessType::Load: return "load";
      case AccessType::Store: return "store";
      case AccessType::Writeback: return "writeback";
      case AccessType::Prefetch: return "prefetch";
    }
    return "unknown";
}

void
ReplacementPolicyFactory::registerPolicy(const std::string &name,
                                         Creator creator)
{
    auto [it, inserted] = creatorMap().emplace(name, std::move(creator));
    (void)it;
    if (!inserted)
        fatal("replacement policy '%s' registered twice", name.c_str());
}

std::unique_ptr<ReplacementPolicy>
ReplacementPolicyFactory::create(const std::string &name,
                                 const CacheGeometry &geometry)
{
    auto policy = tryCreate(name, geometry);
    if (!policy.ok())
        fatal("%s", policy.status().message().c_str());
    return policy.take();
}

Expected<std::unique_ptr<ReplacementPolicy>>
ReplacementPolicyFactory::tryCreate(const std::string &name,
                                    const CacheGeometry &geometry)
{
    ensureBuiltins();
    if (geometry.numSets == 0 || geometry.numWays == 0) {
        return invalidArgumentError(
            "cannot build policy '%s' on an empty geometry (%u sets x "
            "%u ways)",
            name.c_str(), geometry.numSets, geometry.numWays);
    }
    auto it = creatorMap().find(name);
    if (it == creatorMap().end())
        return notFoundError("unknown replacement policy '%s'",
                             name.c_str());
    auto policy = it->second(geometry);
    policy->policyName = name;
    return policy;
}

std::vector<std::string>
ReplacementPolicyFactory::availablePolicies()
{
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(creatorMap().size());
    for (const auto &[name, creator] : creatorMap())
        names.push_back(name);
    return names;
}

bool
ReplacementPolicyFactory::isRegistered(const std::string &name)
{
    ensureBuiltins();
    return creatorMap().count(name) != 0;
}

} // namespace cachescope
