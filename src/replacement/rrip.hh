/**
 * @file
 * Re-Reference Interval Prediction policies (Jaleel et al., ISCA 2010):
 * SRRIP, BRRIP and the set-dueling hybrid DRRIP.
 *
 * Each line carries an M-bit re-reference prediction value (RRPV);
 * 0 predicts near-immediate re-reference, 2^M - 1 predicts distant.
 * Victims are lines with the maximum RRPV; if none exists all RRPVs in
 * the set age until one does. Hits promote to RRPV 0 (hit-priority).
 */

#ifndef CACHESCOPE_REPLACEMENT_RRIP_HH
#define CACHESCOPE_REPLACEMENT_RRIP_HH

#include <cstdint>
#include <vector>

#include "replacement/replacement_policy.hh"

namespace cachescope {

/**
 * Shared RRPV machinery for the RRIP family.
 */
class RripBase : public ReplacementPolicy
{
  public:
    static constexpr unsigned kRrpvBits = 2;
    static constexpr std::uint8_t kMaxRrpv = (1u << kRrpvBits) - 1;

    explicit RripBase(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    /** Exposed for tests. */
    std::uint8_t rrpvOf(std::uint32_t set, std::uint32_t way) const;

    /**
     * Non-virtual hit-path shortcut: identical to update(hit=true),
     * which promotes the line to RRPV 0 (hit-priority) for every
     * member of the RRIP family — none of them overrides update().
     * Called directly by the cache's devirtualized fast path.
     */
    void
    touchHit(std::uint32_t set, std::uint32_t way)
    {
        rrpvs[static_cast<std::size_t>(set) * geom.numWays + way] = 0;
    }

  protected:
    /**
     * @return the RRPV a newly filled line should get.
     * @param set the set being filled (DRRIP duels per set).
     */
    virtual std::uint8_t insertionRrpv(std::uint32_t set,
                                       AccessType type) = 0;

    /** Hook for DRRIP's PSEL training: called on every demand miss fill. */
    virtual void onMissFill(std::uint32_t set) { (void)set; }

    std::uint8_t &rrpv(std::uint32_t set, std::uint32_t way);

  private:
    std::vector<std::uint8_t> rrpvs;
};

/** Static RRIP: always insert with "long" re-reference (maxRrpv - 1). */
class SrripPolicy : public RripBase
{
  public:
    explicit SrripPolicy(const CacheGeometry &geometry) : RripBase(geometry)
    {}

  protected:
    std::uint8_t
    insertionRrpv(std::uint32_t, AccessType) override
    {
        return kMaxRrpv - 1;
    }
};

/**
 * Bimodal RRIP: insert with "distant" (maxRrpv) most of the time and
 * "long" (maxRrpv - 1) once every kEpsilon fills, which protects a
 * trickle of lines in thrashing access patterns.
 */
class BrripPolicy : public RripBase
{
  public:
    static constexpr std::uint32_t kEpsilon = 32;

    explicit BrripPolicy(const CacheGeometry &geometry) : RripBase(geometry)
    {}

  protected:
    std::uint8_t
    insertionRrpv(std::uint32_t, AccessType) override
    {
        if (++fillCount % kEpsilon == 0)
            return kMaxRrpv - 1;
        return kMaxRrpv;
    }

  private:
    std::uint32_t fillCount = 0;
};

/**
 * Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion.
 *
 * A few leader sets always use SRRIP insertion, a few always use BRRIP;
 * misses in leader sets steer a PSEL counter, and follower sets adopt
 * whichever leader group is missing less.
 */
class DrripPolicy : public RripBase
{
  public:
    /** Leader sets per constituent policy. */
    static constexpr std::uint32_t kLeadersPerPolicy = 32;
    static constexpr std::uint32_t kPselBits = 10;
    static constexpr std::uint32_t kPselMax = (1u << kPselBits) - 1;

    explicit DrripPolicy(const CacheGeometry &geometry);

    /** Exposed for tests. */
    enum class SetRole : std::uint8_t { SrripLeader, BrripLeader, Follower };
    SetRole roleOf(std::uint32_t set) const;
    std::uint32_t psel() const { return pselCounter; }

    std::string debugState() const override;

  protected:
    std::uint8_t insertionRrpv(std::uint32_t set, AccessType type) override;
    void onMissFill(std::uint32_t set) override;

  private:
    std::uint8_t brripInsertion();

    std::uint32_t pselCounter = kPselMax / 2;
    std::uint32_t fillCount = 0;
    std::uint32_t leaderStride;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_RRIP_HH
