/**
 * @file
 * One-shot registration of every built-in replacement policy.
 *
 * Belady's OPT is deliberately absent: it needs a FutureOracle and is
 * therefore constructed explicitly by the harness, not by name.
 */

#include <memory>

#include "replacement/basic.hh"
#include "replacement/dip.hh"
#include "replacement/glider.hh"
#include "replacement/hawkeye.hh"
#include "replacement/mpppb.hh"
#include "replacement/replacement_policy.hh"
#include "replacement/rrip.hh"
#include "replacement/ship.hh"

namespace cachescope {

namespace {

template <typename PolicyType>
void
reg(const char *name)
{
    ReplacementPolicyFactory::registerPolicy(
        name, [](const CacheGeometry &g) {
            return std::make_unique<PolicyType>(g);
        });
}

} // anonymous namespace

void
registerBuiltinPolicies()
{
    reg<LruPolicy>("lru");
    reg<FifoPolicy>("fifo");
    reg<RandomPolicy>("random");
    reg<NruPolicy>("nru");
    reg<TreePlruPolicy>("plru");
    reg<BipPolicy>("bip");
    reg<DipPolicy>("dip");
    reg<SrripPolicy>("srrip");
    reg<BrripPolicy>("brrip");
    reg<DrripPolicy>("drrip");
    reg<ShipPolicy>("ship");
    reg<HawkeyePolicy>("hawkeye");
    reg<GliderPolicy>("glider");
    reg<MpppbPolicy>("mpppb");
}

} // namespace cachescope
