/**
 * @file
 * DIP — Dynamic Insertion Policy (Qureshi et al., ISCA 2007) — and its
 * constituent BIP, the pre-RRIP generation of thrash-resistant
 * replacement. Included alongside the paper's six policies so the
 * ablation benches can compare the RRIP-era designs against their
 * ancestors on the same workloads.
 *
 * BIP inserts at the LRU position except for 1-in-epsilon fills at
 * MRU; DIP set-duels traditional LRU insertion against BIP with a PSEL
 * counter, adapting per workload phase.
 */

#ifndef CACHESCOPE_REPLACEMENT_DIP_HH
#define CACHESCOPE_REPLACEMENT_DIP_HH

#include <cstdint>
#include <vector>

#include "replacement/replacement_policy.hh"

namespace cachescope {

/**
 * Timestamp-LRU base with a pluggable insertion position, shared by
 * BIP and DIP.
 */
class LruInsertionBase : public ReplacementPolicy
{
  public:
    explicit LruInsertionBase(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

  protected:
    /** @return true to insert at MRU, false to insert at LRU. */
    virtual bool insertAtMru(std::uint32_t set, AccessType type) = 0;

    /** Hook for DIP's PSEL training on demand-miss fills. */
    virtual void onMissFill(std::uint32_t set) { (void)set; }

  private:
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> lastUse;
};

/** Bimodal Insertion Policy: LRU insertion, 1-in-32 at MRU. */
class BipPolicy : public LruInsertionBase
{
  public:
    static constexpr std::uint32_t kEpsilon = 32;

    explicit BipPolicy(const CacheGeometry &geometry)
        : LruInsertionBase(geometry)
    {}

  protected:
    bool
    insertAtMru(std::uint32_t, AccessType) override
    {
        return ++fillCount % kEpsilon == 0;
    }

  private:
    std::uint32_t fillCount = 0;
};

/** Dynamic Insertion Policy: set-dueling LRU-insertion vs BIP. */
class DipPolicy : public LruInsertionBase
{
  public:
    static constexpr std::uint32_t kLeadersPerPolicy = 32;
    static constexpr std::uint32_t kPselBits = 10;
    static constexpr std::uint32_t kPselMax = (1u << kPselBits) - 1;

    explicit DipPolicy(const CacheGeometry &geometry);

    enum class SetRole : std::uint8_t { LruLeader, BipLeader, Follower };
    SetRole roleOf(std::uint32_t set) const;
    std::uint32_t psel() const { return pselCounter; }

    std::string debugState() const override;
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix) const override;

  protected:
    bool insertAtMru(std::uint32_t set, AccessType type) override;
    void onMissFill(std::uint32_t set) override;

  private:
    bool bipInsertAtMru();

    std::uint32_t pselCounter = kPselMax / 2;
    std::uint32_t fillCount = 0;
    std::uint32_t leaderStride;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_DIP_HH
