/**
 * @file
 * Glider (Shi, Huang, Jain & Lin, MICRO 2019) — the practical, online
 * version distilled from their offline LSTM study.
 *
 * Glider keeps Hawkeye's OPTgen training source but replaces the single
 * per-PC counter with an Integer Support Vector Machine (ISVM) over the
 * *PC history*: a register of the last k distinct load PCs. Each PC in
 * the history selects one integer weight inside the ISVM table of the
 * current PC; the prediction is the sum of selected weights compared
 * against confidence thresholds. This captures cross-PC context that a
 * single-PC counter cannot — and is precisely the mechanism the paper
 * shows collapsing when graph traversals funnel through a handful of
 * PCs with data-dependent behaviour.
 */

#ifndef CACHESCOPE_REPLACEMENT_GLIDER_HH
#define CACHESCOPE_REPLACEMENT_GLIDER_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "replacement/optgen.hh"
#include "replacement/replacement_policy.hh"

namespace cachescope {

class GliderPolicy : public ReplacementPolicy
{
  public:
    static constexpr unsigned kRrpvBits = 3;
    static constexpr std::uint8_t kMaxRrpv = (1u << kRrpvBits) - 1;
    /** Depth of the PC history register (PCHR). */
    static constexpr std::uint32_t kHistoryDepth = 5;
    /** Weights per ISVM (PCHR entries hash into these). */
    static constexpr std::uint32_t kWeightsPerIsvm = 16;
    /** Number of ISVM tables (indexed by hashed current PC). */
    static constexpr unsigned kIsvmIndexBits = 11;
    static constexpr std::uint32_t kIsvmTables = 1u << kIsvmIndexBits;
    /** Weight saturation bound. */
    static constexpr std::int32_t kWeightLimit = 31;
    /** Prediction sum >= this: high-confidence cache-friendly. */
    static constexpr std::int32_t kHighConfidence = 30;
    /** Training stops once |sum| exceeds this margin and is correct. */
    static constexpr std::int32_t kTrainingMargin = 60;
    static constexpr std::uint32_t kTargetSampledSets = 64;
    static constexpr std::uint32_t kOptgenVectorSize = 128;

    explicit GliderPolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    /** @return the current ISVM output for @p pc with today's history. */
    std::int32_t predictionSum(Pc pc) const;

    bool isSampledSet(std::uint32_t set) const;

    /** Exposed for tests. */
    std::uint8_t rrpvOf(std::uint32_t set, std::uint32_t way) const;

  private:
    struct LineMeta
    {
        std::uint8_t rrpv = kMaxRrpv;
        Pc fillPc = 0;
        bool friendly = false;
        bool valid = false;
    };

    /** One ISVM: a small bank of integer weights. */
    struct Isvm
    {
        std::array<std::int32_t, kWeightsPerIsvm> weights{};
    };

    /** Snapshot of PCHR weight slots used to train a past prediction. */
    struct HistorySnapshot
    {
        std::array<std::uint8_t, kHistoryDepth> slots{};
        std::uint8_t used = 0;
        std::uint32_t isvmIndex = 0;
    };

    static std::uint32_t isvmIndex(Pc pc);
    static std::uint32_t weightSlot(Pc pc);

    HistorySnapshot snapshotFor(Pc pc) const;
    std::int32_t sumOf(const HistorySnapshot &snap) const;
    void train(const HistorySnapshot &snap, bool opt_hit);
    void pushHistory(Pc pc);
    void sampleAccess(std::uint32_t set, Pc pc, Addr block_addr);

    LineMeta &line(std::uint32_t set, std::uint32_t way);

    std::uint32_t sampleStride;
    std::vector<LineMeta> lines;
    std::vector<Isvm> isvms;
    std::vector<Pc> pchr; ///< most recent distinct PCs, front = newest

    struct SampledSet
    {
        OptGen optgen;
        OptSampler sampler;
        /** Snapshot taken when each tracked line was last accessed. */
        std::unordered_map<Addr, HistorySnapshot> snapshots;

        explicit SampledSet(std::uint32_t ways)
            : optgen(ways, kOptgenVectorSize), sampler(8 * kOptgenVectorSize)
        {}
    };
    std::unordered_map<std::uint32_t, SampledSet> sampledSets;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_GLIDER_HH
