/**
 * @file
 * Hawkeye (Jain & Lin, ISCA 2016): learn what Belady's OPT would have
 * done on the recent past and mimic it on the future.
 *
 * A handful of sampled sets feed OPTgen; OPT's verdict on each access
 * trains a PC-indexed table of 3-bit counters (the Hawkeye predictor).
 * At fill time the predictor classifies the missing PC as cache-friendly
 * or cache-averse: friendly lines are inserted with RRPV 0 (and age
 * their peers), averse lines with RRPV 7 so they are evicted first.
 * Evicting a friendly line means the predictor was wrong, so the
 * corresponding PC is detrained.
 */

#ifndef CACHESCOPE_REPLACEMENT_HAWKEYE_HH
#define CACHESCOPE_REPLACEMENT_HAWKEYE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "replacement/optgen.hh"
#include "replacement/replacement_policy.hh"
#include "util/sat_counter.hh"

namespace cachescope {

class HawkeyePolicy : public ReplacementPolicy
{
  public:
    static constexpr unsigned kRrpvBits = 3;
    static constexpr std::uint8_t kMaxRrpv = (1u << kRrpvBits) - 1;
    static constexpr unsigned kPredictorIndexBits = 13;
    static constexpr std::uint32_t kPredictorEntries =
        1u << kPredictorIndexBits;
    static constexpr unsigned kPredictorCounterBits = 3;
    /** Counter value at or above which a PC is considered friendly. */
    static constexpr std::uint32_t kFriendlyThreshold = 4;
    /** Target number of sampled sets. */
    static constexpr std::uint32_t kTargetSampledSets = 64;
    static constexpr std::uint32_t kOptgenVectorSize = 128;

    explicit HawkeyePolicy(const CacheGeometry &geometry);

    std::uint32_t findVictim(std::uint32_t set, Pc pc, Addr block_addr,
                             AccessType type) override;
    void update(std::uint32_t set, std::uint32_t way, Pc pc, Addr block_addr,
                AccessType type, bool hit) override;

    /** @return true iff the predictor currently calls @p pc friendly. */
    bool predictsFriendly(Pc pc) const;

    /** @return true iff @p set feeds OPTgen. */
    bool isSampledSet(std::uint32_t set) const;

    /** Exposed for tests. */
    std::uint8_t rrpvOf(std::uint32_t set, std::uint32_t way) const;
    std::uint64_t optgenHits() const;
    std::uint64_t optgenAccesses() const;

    std::string debugState() const override;

  private:
    struct LineMeta
    {
        std::uint8_t rrpv = kMaxRrpv;
        Pc fillPc = 0;
        bool friendly = false;
        bool valid = false;
    };

    static std::uint32_t predictorIndex(Pc pc);
    void train(Pc pc, bool opt_hit);
    void detrain(Pc pc);
    void sampleAccess(std::uint32_t set, Pc pc, Addr block_addr);

    LineMeta &line(std::uint32_t set, std::uint32_t way);

    std::uint32_t sampleStride;
    std::vector<LineMeta> lines;
    std::vector<SatCounter> predictor;

    /** OPTgen state, allocated lazily per sampled set. */
    struct SampledSet
    {
        OptGen optgen;
        OptSampler sampler;

        explicit SampledSet(std::uint32_t ways)
            : optgen(ways, kOptgenVectorSize), sampler(8 * kOptgenVectorSize)
        {}
    };
    std::unordered_map<std::uint32_t, SampledSet> sampledSets;
};

} // namespace cachescope

#endif // CACHESCOPE_REPLACEMENT_HAWKEYE_HH
