/**
 * @file
 * A Workload backed by a captured binary trace file — the classic
 * ChampSim workflow (capture once, replay under many configurations)
 * expressed in the Workload interface, so trace files drop into the
 * same sweeps as live kernels.
 */

#ifndef CACHESCOPE_TRACE_TRACE_WORKLOAD_HH
#define CACHESCOPE_TRACE_TRACE_WORKLOAD_HH

#include <memory>
#include <string>

#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace cachescope {

class TraceFileWorkload : public Workload
{
  public:
    /**
     * Open @p path, validating the header eagerly so bad files are
     * reported here rather than mid-sweep.
     * @param display_name name used in result tables; defaults to the
     *        file path.
     */
    static Expected<std::shared_ptr<TraceFileWorkload>>
    open(std::string path, std::string display_name = "");

    /** Convenience wrapper around open(); fatal() if unusable. */
    explicit TraceFileWorkload(std::string path,
                               std::string display_name = "");

    const std::string &name() const override { return displayName; }

    /**
     * Replays the file; each call opens a fresh reader. Throws
     * std::runtime_error if the trace turns out to be truncated or
     * corrupt mid-replay (recoverable by SuiteRunner cell isolation).
     */
    void run(InstructionSink &sink) override;

    /** @return records the header promises. */
    std::uint64_t numRecords() const { return records; }

  private:
    TraceFileWorkload(std::string path, std::string display_name,
                      std::uint64_t records);

    std::string path;
    std::string displayName;
    std::uint64_t records = 0;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_TRACE_WORKLOAD_HH
