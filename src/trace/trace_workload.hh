/**
 * @file
 * A Workload backed by a captured binary trace file — the classic
 * ChampSim workflow (capture once, replay under many configurations)
 * expressed in the Workload interface, so trace files drop into the
 * same sweeps as live kernels.
 */

#ifndef CACHESCOPE_TRACE_TRACE_WORKLOAD_HH
#define CACHESCOPE_TRACE_TRACE_WORKLOAD_HH

#include <string>

#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace cachescope {

class TraceFileWorkload : public Workload
{
  public:
    /**
     * @param path trace file (validated eagerly; fatal() if unusable).
     * @param display_name name used in result tables; defaults to the
     *        file path.
     */
    explicit TraceFileWorkload(std::string path,
                               std::string display_name = "");

    const std::string &name() const override { return displayName; }

    /** Replays the file; each call opens a fresh reader. */
    void run(InstructionSink &sink) override;

    /** @return records the header promises. */
    std::uint64_t numRecords() const { return records; }

  private:
    std::string path;
    std::string displayName;
    std::uint64_t records;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_TRACE_WORKLOAD_HH
