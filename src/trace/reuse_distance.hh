/**
 * @file
 * Reuse-distance (LRU stack distance) profiling.
 *
 * The stack distance of an access is the number of *distinct* blocks
 * touched since the previous access to the same block; an access hits
 * in a fully-associative LRU cache of C blocks iff its stack distance
 * is < C. The distance histogram therefore predicts the miss ratio of
 * every cache size at once — the cleanest way to show that graph
 * workloads' reuse lives far beyond any feasible LLC (experiment
 * abl_reuse).
 *
 * Implementation: classic Mattson analysis accelerated with a Fenwick
 * tree over access timestamps, O(log n) per access.
 */

#ifndef CACHESCOPE_TRACE_REUSE_DISTANCE_HH
#define CACHESCOPE_TRACE_REUSE_DISTANCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"

namespace cachescope {

/**
 * InstructionSink computing the stack-distance histogram of the memory
 * access stream at cache-block granularity.
 */
class ReuseDistanceProfiler : public InstructionSink
{
  public:
    /** Distance bucket value for first-touch (cold) accesses. */
    static constexpr std::uint64_t kCold = ~std::uint64_t{0};

    /** @param block_bits log2 of the block size (6 = 64 B blocks). */
    explicit ReuseDistanceProfiler(unsigned block_bits = 6);

    void onInstruction(const TraceRecord &rec) override;

    /** @return number of memory accesses with a prior touch. */
    std::uint64_t reuses() const { return reuseCount; }

    /** @return number of first-touch (cold) accesses. */
    std::uint64_t coldAccesses() const { return coldCount; }

    /**
     * @return the fraction of *reuse* accesses whose stack distance is
     * less than @p blocks — i.e. the hit ratio of a fully-associative
     * LRU cache with that many blocks, ignoring cold misses.
     * Distances are bucketed by powers of two; within the straddling
     * bucket the ratio is interpolated linearly.
     */
    double hitRatioAtCapacity(std::uint64_t blocks) const;

    /** Number of power-of-two distance buckets. */
    static constexpr std::size_t kNumBuckets = 48;

    /**
     * @return samples in bucket @p i: distance 0 for i = 0, otherwise
     * distances in [2^(i-1), 2^i).
     */
    std::uint64_t bucket(std::size_t i) const
    {
        return distanceBuckets.at(i);
    }

  private:
    void fenwickAdd(std::size_t pos, std::int64_t delta);
    std::int64_t fenwickSuffixSum(std::size_t pos) const;

    unsigned blockBits;
    std::uint64_t reuseCount = 0;
    std::uint64_t coldCount = 0;

    /** Fenwick tree over access-time slots (1 where a block's most
     *  recent access lives, 0 elsewhere). Grows with the stream. */
    std::vector<std::int64_t> fenwick;
    std::unordered_map<Addr, std::uint64_t> lastAccess; ///< block -> time
    std::uint64_t timeCursor = 0;
    /** Power-of-two-bucketed distance samples. */
    std::vector<std::uint64_t> distanceBuckets;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_REUSE_DISTANCE_HH
