/**
 * @file
 * The workload abstraction: anything that can push an instruction
 * stream into a sink. GAP graph kernels and the synthetic SPEC-like
 * kernels both implement this, which is what lets the harness sweep
 * workload x policy grids uniformly.
 */

#ifndef CACHESCOPE_TRACE_WORKLOAD_HH
#define CACHESCOPE_TRACE_WORKLOAD_HH

#include <string>

#include "trace/record.hh"

namespace cachescope {

class Workload
{
  public:
    virtual ~Workload() = default;

    /** @return a unique display name ("bfs.kron18", "spec06.mcf_like"). */
    virtual const std::string &name() const = 0;

    /**
     * Execute the workload, pushing records into @p sink until the
     * algorithm finishes or sink.wantsMore() turns false. Must be
     * deterministic: running twice into two sinks yields identical
     * streams (the Belady oracle's two-pass design depends on it).
     */
    virtual void run(InstructionSink &sink) = 0;

    /**
     * @return the minimum warmup (in instructions) needed before the
     * measurement window is representative of this workload's steady
     * state. The harness takes the max of this and the configured
     * warmup. Workloads with long setup phases (e.g. PageRank's
     * sequential contribution pass) override this.
     */
    virtual InstCount warmupHint() const { return 0; }
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_WORKLOAD_HH
