/**
 * @file
 * Binary trace reader/writer implementation.
 */

#include "trace/trace_io.hh"

#include <cstring>

#include "util/logging.hh"

namespace cachescope {

namespace {

/** Packed on-disk record layout (24 bytes, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint8_t kind;
    std::uint8_t size;
    std::uint8_t pad[6];
};

static_assert(sizeof(DiskRecord) == 24, "trace record must pack to 24 B");

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    TraceFileHeader hdr;
    if (std::fwrite(&hdr, sizeof(hdr), 1, file) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    finalize();
}

void
TraceWriter::onInstruction(const TraceRecord &rec)
{
    CS_ASSERT(!finalized, "write after onEnd()");
    DiskRecord d{};
    d.pc = rec.pc;
    d.addr = rec.addr;
    d.kind = static_cast<std::uint8_t>(rec.kind);
    d.size = rec.size;
    if (std::fwrite(&d, sizeof(d), 1, file) != 1)
        fatal("short write to trace file");
    ++count;
}

void
TraceWriter::onEnd()
{
    finalize();
}

void
TraceWriter::finalize()
{
    if (finalized || !file)
        return;
    finalized = true;
    TraceFileHeader hdr;
    hdr.numRecords = count;
    std::fseek(file, 0, SEEK_SET);
    if (std::fwrite(&hdr, sizeof(hdr), 1, file) != 1)
        fatal("cannot back-patch trace header");
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s' for reading", path.c_str());
    if (std::fread(&header, sizeof(header), 1, file) != 1)
        fatal("trace file '%s' is too short for a header", path.c_str());
    if (header.magic != TraceFileHeader::kMagic)
        fatal("'%s' is not a CacheScope trace (bad magic)", path.c_str());
    if (header.version != TraceFileHeader::kVersion) {
        fatal("trace '%s' has unsupported version %u", path.c_str(),
              header.version);
    }
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceReader::next(TraceRecord &rec)
{
    DiskRecord d;
    if (std::fread(&d, sizeof(d), 1, file) != 1)
        return false;
    if (d.kind > static_cast<std::uint8_t>(InstKind::Branch))
        fatal("corrupt trace record (kind=%u)", d.kind);
    rec.pc = d.pc;
    rec.addr = d.addr;
    rec.kind = static_cast<InstKind>(d.kind);
    rec.size = d.size;
    return true;
}

std::uint64_t
TraceReader::replayInto(InstructionSink &sink)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.onInstruction(rec);
        ++n;
    }
    sink.onEnd();
    return n;
}

} // namespace cachescope
