/**
 * @file
 * Binary trace reader/writer implementation.
 */

#include "trace/trace_io.hh"

#include <cstring>

#include "util/failpoint.hh"
#include "util/logging.hh"

namespace cachescope {

namespace {

/** Packed on-disk record layout (24 bytes, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint8_t kind;
    std::uint8_t size;
    std::uint8_t pad[6];
};

static_assert(sizeof(DiskRecord) == 24, "trace record must pack to 24 B");

} // anonymous namespace

Expected<std::unique_ptr<TraceWriter>>
TraceWriter::open(const std::string &path)
{
    std::unique_ptr<TraceWriter> writer(new TraceWriter());
    CS_TRY(writer->init(path));
    return writer;
}

TraceWriter::TraceWriter(const std::string &path)
{
    if (Status s = init(path); !s.ok())
        fatal("%s", s.message().c_str());
}

Status
TraceWriter::init(const std::string &file_path)
{
    path = file_path;
    if (Status fp = failpoint::hit("trace.open.write"); !fp.ok())
        return fp;
    file = std::fopen(path.c_str(), "wb");
    if (!file) {
        return ioError("cannot open trace file '%s' for writing",
                       path.c_str());
    }
    TraceFileHeader hdr;
    if (!failpoint::hit("trace.write.header").ok() ||
        std::fwrite(&hdr, sizeof(hdr), 1, file) != 1) {
        std::fclose(file);
        file = nullptr;
        return ioError("cannot write trace header to '%s'", path.c_str());
    }
    return Status();
}

TraceWriter::~TraceWriter()
{
    const bool pending = !finalized && file != nullptr;
    finalize();
    if (pending && !status_.ok()) {
        warn("trace writer for '%s' destroyed with unreported error: %s",
             path.c_str(), status_.message().c_str());
    }
}

void
TraceWriter::onInstruction(const TraceRecord &rec)
{
    CS_ASSERT(!finalized, "write after onEnd()");
    if (!status_.ok())
        return; // already failed; drop further records
    if (failpoint::anyArmed()) {
        if (Status fp = failpoint::hit("trace.write.record"); !fp.ok()) {
            status_ = fp;
            return;
        }
    }
    DiskRecord d{};
    d.pc = rec.pc;
    d.addr = rec.addr;
    d.kind = static_cast<std::uint8_t>(rec.kind);
    d.size = rec.size;
    if (std::fwrite(&d, sizeof(d), 1, file) != 1) {
        status_ = ioError("short write to trace file '%s' after %llu "
                          "records (disk full?)",
                          path.c_str(),
                          static_cast<unsigned long long>(count));
        return;
    }
    checksum.update(&d, sizeof(d));
    ++count;
}

void
TraceWriter::onEnd()
{
    finalize();
}

Status
TraceWriter::finish()
{
    finalize();
    return status_;
}

void
TraceWriter::finalize()
{
    if (finalized || !file)
        return;
    finalized = true;
    if (status_.ok()) {
        if (Status fp = failpoint::hit("trace.finalize"); !fp.ok())
            status_ = fp;
    }
    TraceFileHeader hdr;
    hdr.numRecords = count;
    hdr.checksum = checksum.digest();
    // Report the first failure but always release the FILE.
    if (status_.ok() && std::fseek(file, 0, SEEK_SET) != 0)
        status_ = ioError("cannot seek to trace header in '%s'",
                          path.c_str());
    if (status_.ok() && std::fwrite(&hdr, sizeof(hdr), 1, file) != 1)
        status_ = ioError("cannot back-patch trace header in '%s'",
                          path.c_str());
    if (status_.ok() && std::fflush(file) != 0)
        status_ = ioError("cannot flush trace file '%s' (disk full?)",
                          path.c_str());
    if (std::fclose(file) != 0 && status_.ok())
        status_ = ioError("cannot close trace file '%s'", path.c_str());
    file = nullptr;
}

Expected<std::unique_ptr<TraceReader>>
TraceReader::open(const std::string &path)
{
    std::unique_ptr<TraceReader> reader(new TraceReader());
    CS_TRY(reader->init(path));
    return reader;
}

TraceReader::TraceReader(const std::string &path)
{
    if (Status s = init(path); !s.ok())
        fatal("%s", s.message().c_str());
}

Status
TraceReader::init(const std::string &file_path)
{
    path = file_path;
    CS_FAILPOINT("trace.open.read");
    file = std::fopen(path.c_str(), "rb");
    if (!file) {
        return ioError("cannot open trace file '%s' for reading",
                       path.c_str());
    }
    CS_FAILPOINT("trace.read.header");
    // Read the version-independent 16-byte prefix first; only v2+
    // carries the trailing checksum word.
    if (std::fread(&header, TraceFileHeader::kV1Bytes, 1, file) != 1) {
        return corruptionError("trace file '%s' is too short for a header",
                               path.c_str());
    }
    if (header.magic != TraceFileHeader::kMagic) {
        return corruptionError("'%s' is not a CacheScope trace (bad magic)",
                               path.c_str());
    }
    if (header.version != TraceFileHeader::kVersionV1 &&
        header.version != TraceFileHeader::kVersion) {
        return invalidArgumentError(
            "trace '%s' has unsupported version %u (this build reads "
            "v1 and v2)",
            path.c_str(), header.version);
    }
    if (header.version >= TraceFileHeader::kVersion) {
        if (std::fread(&header.checksum, sizeof(header.checksum), 1,
                       file) != 1) {
            return corruptionError(
                "trace file '%s' is too short for a v%u header",
                path.c_str(), header.version);
        }
    } else {
        header.checksum = 0;
    }
    return Status();
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (done)
        return false;
    if (failpoint::anyArmed()) {
        if (Status fp = failpoint::hit("trace.read.record"); !fp.ok()) {
            done = true;
            status_ = fp;
            return false;
        }
    }
    DiskRecord d;
    const std::size_t got = std::fread(&d, 1, sizeof(d), file);
    if (got != sizeof(d)) {
        done = true;
        if (std::ferror(file)) {
            status_ = ioError("read error in trace '%s' after %llu records",
                              path.c_str(),
                              static_cast<unsigned long long>(recordsRead_));
        } else if (got != 0) {
            status_ = corruptionError(
                "trace '%s' is truncated mid-record: expected %llu "
                "records, found %llu complete records plus %zu stray "
                "bytes",
                path.c_str(),
                static_cast<unsigned long long>(header.numRecords),
                static_cast<unsigned long long>(recordsRead_), got);
        } else if (recordsRead_ != header.numRecords) {
            status_ = corruptionError(
                "trace '%s' record count mismatch: header expected %llu "
                "records, file actually holds %llu",
                path.c_str(),
                static_cast<unsigned long long>(header.numRecords),
                static_cast<unsigned long long>(recordsRead_));
        } else if (header.version >= TraceFileHeader::kVersion &&
                   checksum.digest() != header.checksum) {
            status_ = corruptionError(
                "trace '%s' checksum mismatch: header says %016llx, "
                "records hash to %016llx (bit rot or concurrent write?)",
                path.c_str(),
                static_cast<unsigned long long>(header.checksum),
                static_cast<unsigned long long>(checksum.digest()));
        }
        return false;
    }
    if (d.kind > static_cast<std::uint8_t>(InstKind::Branch)) {
        done = true;
        status_ = corruptionError(
            "corrupt record %llu in trace '%s' (kind=%u)",
            static_cast<unsigned long long>(recordsRead_), path.c_str(),
            d.kind);
        return false;
    }
    checksum.update(&d, sizeof(d));
    ++recordsRead_;
    rec.pc = d.pc;
    rec.addr = d.addr;
    rec.kind = static_cast<InstKind>(d.kind);
    rec.size = d.size;
    return true;
}

Status
TraceReader::replayInto(InstructionSink &sink, std::uint64_t *replayed)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.onInstruction(rec);
        ++n;
    }
    if (replayed)
        *replayed = n;
    CS_TRY(status_);
    sink.onEnd();
    return Status();
}

} // namespace cachescope
