/**
 * @file
 * Binary trace reader/writer implementation.
 */

#include "trace/trace_io.hh"

#include <cstdlib>
#include <cstring>

#include "util/failpoint.hh"
#include "util/logging.hh"

namespace cachescope {

namespace {

/** Packed on-disk record layout (24 bytes, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint8_t kind;
    std::uint8_t size;
    std::uint8_t pad[6];
};

static_assert(sizeof(DiskRecord) == TraceFileHeader::kRecordBytes,
              "trace record must pack to 24 B");

} // anonymous namespace

Expected<std::unique_ptr<TraceWriter>>
TraceWriter::open(const std::string &path)
{
    std::unique_ptr<TraceWriter> writer(new TraceWriter());
    CS_TRY(writer->init(path));
    return writer;
}

TraceWriter::TraceWriter(const std::string &path)
{
    if (Status s = init(path); !s.ok())
        fatal("%s", s.message().c_str());
}

Status
TraceWriter::init(const std::string &file_path)
{
    path = file_path;
    if (Status fp = failpoint::hit("trace.open.write"); !fp.ok())
        return fp;
    file = std::fopen(path.c_str(), "wb");
    if (!file) {
        return ioError("cannot open trace file '%s' for writing",
                       path.c_str());
    }
    TraceFileHeader hdr;
    if (!failpoint::hit("trace.write.header").ok() ||
        std::fwrite(&hdr, sizeof(hdr), 1, file) != 1) {
        std::fclose(file);
        file = nullptr;
        return ioError("cannot write trace header to '%s'", path.c_str());
    }
    return Status();
}

TraceWriter::~TraceWriter()
{
    const bool pending = !finalized && file != nullptr;
    finalize();
    if (pending && !status_.ok()) {
        warn("trace writer for '%s' destroyed with unreported error: %s",
             path.c_str(), status_.message().c_str());
    }
}

void
TraceWriter::onInstruction(const TraceRecord &rec)
{
    CS_ASSERT(!finalized, "write after onEnd()");
    if (!status_.ok())
        return; // already failed; drop further records
    if (failpoint::anyArmed()) {
        if (Status fp = failpoint::hit("trace.write.record"); !fp.ok()) {
            status_ = fp;
            return;
        }
    }
    DiskRecord d{};
    d.pc = rec.pc;
    d.addr = rec.addr;
    d.kind = static_cast<std::uint8_t>(rec.kind);
    d.size = rec.size;
    if (std::fwrite(&d, sizeof(d), 1, file) != 1) {
        status_ = ioError("short write to trace file '%s' after %llu "
                          "records (disk full?)",
                          path.c_str(),
                          static_cast<unsigned long long>(count));
        return;
    }
    checksum.update(&d, sizeof(d));
    ++count;
}

void
TraceWriter::onEnd()
{
    finalize();
}

Status
TraceWriter::finish()
{
    finalize();
    return status_;
}

void
TraceWriter::finalize()
{
    if (finalized || !file)
        return;
    finalized = true;
    if (status_.ok()) {
        if (Status fp = failpoint::hit("trace.finalize"); !fp.ok())
            status_ = fp;
    }
    TraceFileHeader hdr;
    hdr.numRecords = count;
    hdr.checksum = checksum.digest();
    // Report the first failure but always release the FILE.
    if (status_.ok() && std::fseek(file, 0, SEEK_SET) != 0)
        status_ = ioError("cannot seek to trace header in '%s'",
                          path.c_str());
    if (status_.ok() && std::fwrite(&hdr, sizeof(hdr), 1, file) != 1)
        status_ = ioError("cannot back-patch trace header in '%s'",
                          path.c_str());
    if (status_.ok() && std::fflush(file) != 0)
        status_ = ioError("cannot flush trace file '%s' (disk full?)",
                          path.c_str());
    if (std::fclose(file) != 0 && status_.ok())
        status_ = ioError("cannot close trace file '%s'", path.c_str());
    file = nullptr;
}

Expected<std::unique_ptr<TraceReader>>
TraceReader::open(const std::string &path)
{
    std::unique_ptr<TraceReader> reader(new TraceReader());
    CS_TRY(reader->init(path));
    return reader;
}

TraceReader::TraceReader(const std::string &path)
{
    if (Status s = init(path); !s.ok())
        fatal("%s", s.message().c_str());
}

Status
TraceReader::init(const std::string &file_path)
{
    path = file_path;
    CS_FAILPOINT("trace.open.read");
    file = std::fopen(path.c_str(), "rb");
    if (!file) {
        return ioError("cannot open trace file '%s' for reading",
                       path.c_str());
    }
    CS_FAILPOINT("trace.read.header");
    // Read the version-independent 16-byte prefix first; only v2+
    // carries the trailing checksum word.
    if (std::fread(&header, TraceFileHeader::kV1Bytes, 1, file) != 1) {
        return corruptionError("trace file '%s' is too short for a header",
                               path.c_str());
    }
    if (header.magic != TraceFileHeader::kMagic) {
        return corruptionError("'%s' is not a CacheScope trace (bad magic)",
                               path.c_str());
    }
    if (header.version != TraceFileHeader::kVersionV1 &&
        header.version != TraceFileHeader::kVersionV2 &&
        header.version != TraceFileHeader::kVersion) {
        return invalidArgumentError(
            "trace '%s' has unsupported version %u (this build reads "
            "v1 through v3)",
            path.c_str(), header.version);
    }
    if (header.version >= TraceFileHeader::kVersionV2) {
        if (std::fread(&header.checksum, sizeof(header.checksum), 1,
                       file) != 1) {
            return corruptionError(
                "trace file '%s' is too short for a v%u header",
                path.c_str(), header.version);
        }
    } else {
        header.checksum = 0;
    }
    // Large trace on a multicore host: hand fread + digest to a
    // read-ahead thread so they overlap the consumer's simulation
    // work instead of gating it. On a single CPU the thread can't
    // overlap anything and only adds switch overhead, so small traces
    // and unicore hosts take the synchronous path.
    // CACHESCOPE_TRACE_PIPELINE=0/1 overrides the heuristic (tests use
    // it to exercise the pipelined path on unicore CI).
    bool pipeline = header.numRecords >= kPipelineMinRecords &&
                    std::thread::hardware_concurrency() > 1;
    if (const char *env = std::getenv("CACHESCOPE_TRACE_PIPELINE"))
        pipeline = env[0] == '1';
    if (pipeline) {
        pipelined_ = true;
        chunkPool_.resize(3);
        for (Chunk &c : chunkPool_) {
            c.bytes.resize(kBatchRecords * sizeof(DiskRecord));
            freeChunks_.push_back(&c);
        }
        producer_ = std::thread(&TraceReader::producerLoop, this);
    }
    return Status();
}

TraceReader::~TraceReader()
{
    if (producer_.joinable()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            shuttingDown_ = true;
        }
        cvProducer_.notify_all();
        producer_.join();
    }
    if (file)
        std::fclose(file);
}

void
TraceReader::digestUpdate(const void *data, std::size_t len)
{
    if (header.version >= TraceFileHeader::kVersion)
        checksumX8_.update(data, len);
    else
        checksum.update(data, len);
}

std::uint64_t
TraceReader::digestValue() const
{
    return header.version >= TraceFileHeader::kVersion
        ? checksumX8_.digest()
        : checksum.digest();
}

void
TraceReader::producerLoop()
{
    const bool checksummed =
        header.version >= TraceFileHeader::kVersionV2;
    for (;;) {
        Chunk *c = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvProducer_.wait(lk, [&] {
                return shuttingDown_ || !freeChunks_.empty();
            });
            if (shuttingDown_)
                return;
            c = freeChunks_.front();
            freeChunks_.pop_front();
        }
        const std::size_t got =
            std::fread(c->bytes.data(), 1, c->bytes.size(), file);
        c->readError = std::ferror(file) != 0;
        c->stray = c->readError ? 0 : got % sizeof(DiskRecord);
        c->len = c->readError ? 0 : got - c->stray;
        if (checksummed && c->len != 0)
            digestUpdate(c->bytes.data(), c->len);
        // A short read on a regular file means EOF (or the error
        // above): this chunk is the last.
        const bool last = c->readError || got < c->bytes.size();
        {
            std::lock_guard<std::mutex> lk(mu_);
            readyChunks_.push_back(c);
            if (last)
                producerDone_ = true;
        }
        cvConsumer_.notify_one();
        if (last)
            return;
    }
}

void
TraceReader::finishStream(std::size_t stray, bool read_error)
{
    done = true;
    if (read_error) {
        status_ = ioError("read error in trace '%s' after %llu records",
                          path.c_str(),
                          static_cast<unsigned long long>(recordsRead_));
    } else if (stray != 0) {
        status_ = corruptionError(
            "trace '%s' is truncated mid-record: expected %llu "
            "records, found %llu complete records plus %zu stray "
            "bytes",
            path.c_str(),
            static_cast<unsigned long long>(header.numRecords),
            static_cast<unsigned long long>(recordsRead_), stray);
    } else if (recordsRead_ != header.numRecords) {
        status_ = corruptionError(
            "trace '%s' record count mismatch: header expected %llu "
            "records, file actually holds %llu",
            path.c_str(),
            static_cast<unsigned long long>(header.numRecords),
            static_cast<unsigned long long>(recordsRead_));
    } else if (header.version >= TraceFileHeader::kVersionV2 &&
               digestValue() != header.checksum) {
        status_ = corruptionError(
            "trace '%s' checksum mismatch: header says %016llx, "
            "records hash to %016llx (bit rot or concurrent write?)",
            path.c_str(),
            static_cast<unsigned long long>(header.checksum),
            static_cast<unsigned long long>(digestValue()));
    }
}

bool
TraceReader::refill()
{
    return pipelined_ ? refillPipelined() : refillSync();
}

bool
TraceReader::refillSync()
{
    if (buffer_.empty())
        buffer_.resize(kBatchRecords * sizeof(DiskRecord));
    bufPos_ = 0;
    bufLen_ = 0;
    const std::size_t got =
        std::fread(buffer_.data(), 1, buffer_.size(), file);
    if (std::ferror(file)) {
        finishStream(0, /*read_error=*/true);
        return false;
    }
    // A short read on a regular file means EOF: any non-multiple-of-24
    // remainder is a torn final record. The complete records in front
    // of it are still delivered; the truncation verdict is issued once
    // they are consumed and the next refill comes up empty.
    const std::size_t stray = got % sizeof(DiskRecord);
    if (stray != 0)
        stray_ = stray;
    bufLen_ = got - stray;
    if (bufLen_ != 0) {
        if (header.version >= TraceFileHeader::kVersionV2)
            digestUpdate(buffer_.data(), bufLen_);
        bufData_ = buffer_.data();
        return true;
    }
    finishStream(stray_, /*read_error=*/false);
    return false;
}

bool
TraceReader::refillPipelined()
{
    bufPos_ = 0;
    bufLen_ = 0;
    Chunk *c = nullptr;
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (current_) {
            freeChunks_.push_back(current_);
            current_ = nullptr;
            cvProducer_.notify_one();
        }
        cvConsumer_.wait(lk, [&] {
            return !readyChunks_.empty() || producerDone_;
        });
        if (readyChunks_.empty()) {
            // Producer exited after an earlier (possibly torn) chunk:
            // nothing more is coming. producerDone_ was observed under
            // the mutex, so the digest is safe to read.
            lk.unlock();
            finishStream(stray_, /*read_error=*/false);
            return false;
        }
        c = readyChunks_.front();
        readyChunks_.pop_front();
    }
    if (c->len == 0) {
        finishStream(c->stray != 0 ? c->stray : stray_, c->readError);
        return false;
    }
    if (c->stray != 0)
        stray_ = c->stray; // torn tail follows these complete records
    current_ = c;
    bufData_ = c->bytes.data();
    bufLen_ = c->len;
    return true;
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (done)
        return false;
    if (failpoint::anyArmed()) {
        if (Status fp = failpoint::hit("trace.read.record"); !fp.ok()) {
            done = true;
            status_ = fp;
            return false;
        }
    }
    if (bufPos_ == bufLen_ && !refill())
        return false;
    DiskRecord d;
    std::memcpy(&d, bufData_ + bufPos_, sizeof(d));
    if (d.kind > static_cast<std::uint8_t>(InstKind::Branch)) {
        done = true;
        status_ = corruptionError(
            "corrupt record %llu in trace '%s' (kind=%u)",
            static_cast<unsigned long long>(recordsRead_), path.c_str(),
            d.kind);
        return false;
    }
    bufPos_ += sizeof(d);
    ++recordsRead_;
    rec.pc = d.pc;
    rec.addr = d.addr;
    rec.kind = static_cast<InstKind>(d.kind);
    rec.size = d.size;
    return true;
}

Status
TraceReader::replayInto(InstructionSink &sink, std::uint64_t *replayed)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.onInstruction(rec);
        ++n;
    }
    if (replayed)
        *replayed = n;
    CS_TRY(status_);
    sink.onEnd();
    return Status();
}

} // namespace cachescope
