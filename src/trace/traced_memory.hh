/**
 * @file
 * Instrumented data structures — the replacement for Pin.
 *
 * The paper traces real binaries with a binary-instrumentation tool.
 * We instead run real algorithms over TracedArray<T> containers: every
 * semantic load/store goes through an accessor that emits a TraceRecord
 * carrying the simulated address and the static call site's synthetic
 * PC. Arrays live in a simulated flat address space handed out by
 * AddressSpace, so cache behaviour (set conflicts, spatial locality,
 * page boundaries) matches what the real data layout would produce.
 */

#ifndef CACHESCOPE_TRACE_TRACED_MEMORY_HH
#define CACHESCOPE_TRACE_TRACED_MEMORY_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace cachescope {

/**
 * Bump allocator for the simulated physical address space.
 *
 * Allocations are page-aligned so distinct arrays never share a cache
 * block, matching separately malloc'd buffers in a real run.
 */
class AddressSpace
{
  public:
    static constexpr Addr kHeapBase = 0x1000'0000;
    static constexpr Addr kPageBytes = 4096;

    /** @return the base address of a fresh region of @p bytes bytes. */
    Addr
    allocate(std::uint64_t bytes)
    {
        const Addr base = cursor;
        const Addr span = (bytes + kPageBytes - 1) & ~(kPageBytes - 1);
        cursor += span == 0 ? kPageBytes : span;
        return base;
    }

    Addr bytesAllocated() const { return cursor - kHeapBase; }

  private:
    Addr cursor = kHeapBase;
};

/**
 * A vector whose element accesses emit trace records.
 *
 * Traced accessors take the synthetic PC of the static access site;
 * raw accessors skip tracing for setup/verification code that would not
 * be part of the measured kernel.
 */
template <typename T>
class TracedArray
{
  public:
    /**
     * @param count element count.
     * @param space simulated address space to allocate from.
     * @param sink where access records go.
     * @param init initial element value.
     */
    TracedArray(std::size_t count, AddressSpace &space,
                InstructionSink &sink, const T &init = T{})
        : data(count, init), base(space.allocate(count * sizeof(T))),
          out(&sink)
    {}

    /** Traced read of element @p i from call site @p pc. */
    T
    load(std::size_t i, Pc pc) const
    {
        out->onInstruction(TraceRecord::load(pc, addressOf(i), sizeof(T)));
        return data[i];
    }

    /** Traced write of element @p i from call site @p pc. */
    void
    store(std::size_t i, const T &value, Pc pc)
    {
        out->onInstruction(TraceRecord::store(pc, addressOf(i), sizeof(T)));
        data[i] = value;
    }

    /** Untraced access for setup and result checking. */
    T &raw(std::size_t i) { return data[i]; }
    const T &raw(std::size_t i) const { return data[i]; }

    /** @return simulated address of element @p i. */
    Addr
    addressOf(std::size_t i) const
    {
        return base + static_cast<Addr>(i) * sizeof(T);
    }

    std::size_t size() const { return data.size(); }
    Addr baseAddress() const { return base; }

  private:
    std::vector<T> data;
    Addr base;
    InstructionSink *out;
};

/**
 * Helper emitting the non-memory instructions that surround the traced
 * loads/stores, so the stream's instruction mix (and therefore MPKI
 * denominators) resembles the compiled kernel rather than a pure
 * address stream.
 */
class InstructionMix
{
  public:
    explicit InstructionMix(InstructionSink &sink) : out(&sink) {}

    /** Emit @p n ALU instructions from call site @p pc. */
    void
    alu(Pc pc, unsigned n = 1)
    {
        for (unsigned i = 0; i < n; ++i)
            out->onInstruction(TraceRecord::alu(pc));
    }

    /** Emit one branch instruction from call site @p pc. */
    void branch(Pc pc) { out->onInstruction(TraceRecord::branch(pc)); }

  private:
    InstructionSink *out;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_TRACED_MEMORY_HH
