/**
 * @file
 * PC fan-out profiler implementation.
 */

#include "trace/profile.hh"

#include <algorithm>
#include <cmath>

namespace cachescope {

void
PcProfiler::onInstruction(const TraceRecord &rec)
{
    if (!rec.isMemory())
        return;
    auto &entry = table[rec.pc];
    ++entry.accesses;
    entry.blocks.insert(rec.addr >> blockBits);
    ++totalMemAccesses;
}

std::vector<PcFanout>
PcProfiler::fanouts() const
{
    std::vector<PcFanout> out;
    out.reserve(table.size());
    for (const auto &[pc, entry] : table)
        out.push_back({pc, entry.accesses, entry.blocks.size()});
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        return a.accesses > b.accesses;
    });
    return out;
}

PcProfileSummary
PcProfiler::summarize() const
{
    PcProfileSummary s;
    s.memoryAccesses = totalMemAccesses;
    s.distinctMemoryPcs = table.size();
    if (table.empty())
        return s;

    const auto rows = fanouts();
    std::uint64_t block_sum = 0;
    for (const auto &row : rows) {
        block_sum += row.distinctBlocks;
        s.maxBlocksPerPc = std::max(s.maxBlocksPerPc, row.distinctBlocks);
    }
    s.meanBlocksPerPc =
        static_cast<double>(block_sum) / static_cast<double>(rows.size());

    const auto target = static_cast<std::uint64_t>(
        std::ceil(0.9 * static_cast<double>(totalMemAccesses)));
    std::uint64_t cum = 0;
    for (const auto &row : rows) {
        cum += row.accesses;
        ++s.pcsFor90PctAccesses;
        if (cum >= target)
            break;
    }

    double entropy = 0.0;
    for (const auto &row : rows) {
        const double p = static_cast<double>(row.accesses) /
                         static_cast<double>(totalMemAccesses);
        entropy -= p * std::log2(p);
    }
    s.pcEntropyBits = entropy;
    return s;
}

} // namespace cachescope
