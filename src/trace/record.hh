/**
 * @file
 * The instruction trace record — the unit of exchange between workloads
 * (which produce records by running instrumented algorithms) and
 * consumers (the timing simulator, trace files, profilers).
 *
 * The format follows ChampSim's model at one-memory-op-per-instruction
 * granularity: an instruction is either a pure ALU op, a branch, or a
 * single load/store with a byte address and size.
 */

#ifndef CACHESCOPE_TRACE_RECORD_HH
#define CACHESCOPE_TRACE_RECORD_HH

#include <cstdint>

#include "util/types.hh"

namespace cachescope {

/** Classification of a traced instruction. */
enum class InstKind : std::uint8_t {
    Alu = 0,     ///< non-memory, non-branch instruction
    Load = 1,    ///< memory read
    Store = 2,   ///< memory write
    Branch = 3,  ///< control transfer (conditional or not)
};

/**
 * One traced instruction.
 *
 * For Load/Store records @c addr and @c size describe the access; for
 * Alu/Branch records they are kInvalidAddr / 0. The @c pc identifies the
 * static instruction; instrumented workloads assign one stable synthetic
 * PC per static access site so PC-indexed predictors see realistic
 * signatures.
 */
struct TraceRecord
{
    Pc pc = 0;
    Addr addr = kInvalidAddr;
    InstKind kind = InstKind::Alu;
    std::uint8_t size = 0;

    static TraceRecord
    alu(Pc pc)
    {
        return {pc, kInvalidAddr, InstKind::Alu, 0};
    }

    static TraceRecord
    load(Pc pc, Addr addr, std::uint8_t size = 8)
    {
        return {pc, addr, InstKind::Load, size};
    }

    static TraceRecord
    store(Pc pc, Addr addr, std::uint8_t size = 8)
    {
        return {pc, addr, InstKind::Store, size};
    }

    static TraceRecord
    branch(Pc pc)
    {
        return {pc, kInvalidAddr, InstKind::Branch, 0};
    }

    bool
    isMemory() const
    {
        return kind == InstKind::Load || kind == InstKind::Store;
    }

    bool operator==(const TraceRecord &) const = default;
};

/**
 * Consumer interface for instruction streams (push model).
 *
 * Workloads run for real and push each instruction into a sink; the
 * timing simulator, the binary trace writer, and the profilers all
 * implement this interface, so any workload can drive any consumer
 * without materializing multi-gigabyte traces.
 */
class InstructionSink
{
  public:
    virtual ~InstructionSink() = default;

    /** Consume one traced instruction, in program order. */
    virtual void onInstruction(const TraceRecord &rec) = 0;

    /**
     * @return false once the sink has consumed all it needs (e.g. the
     * simulator hit its instruction budget). Producers should poll this
     * periodically and stop early; pushing more records stays legal but
     * wasted.
     */
    virtual bool wantsMore() const { return true; }

    /**
     * Notification that the producing workload finished. Optional for
     * sinks that do not buffer.
     */
    virtual void onEnd() {}
};

/** A sink that discards everything (useful for dry runs and tests). */
class NullSink : public InstructionSink
{
  public:
    void onInstruction(const TraceRecord &) override {}
};

/** A sink that counts records by kind. */
class CountingSink : public InstructionSink
{
  public:
    void
    onInstruction(const TraceRecord &rec) override
    {
        ++total;
        switch (rec.kind) {
          case InstKind::Alu: ++alu; break;
          case InstKind::Load: ++loads; break;
          case InstKind::Store: ++stores; break;
          case InstKind::Branch: ++branches; break;
        }
    }

    std::uint64_t total = 0;
    std::uint64_t alu = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_RECORD_HH
