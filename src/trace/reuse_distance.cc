/**
 * @file
 * Reuse-distance profiler implementation.
 */

#include "trace/reuse_distance.hh"

#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

namespace {

/** Shared bucket count for the log2 distance histogram. */
constexpr std::size_t kNumLogBuckets =
    ReuseDistanceProfiler::kNumBuckets;

/** @return the log2 bucket of @p distance (0 for distance 0). */
std::size_t
logBucket(std::uint64_t distance)
{
    if (distance == 0)
        return 0;
    const std::size_t b = floorLog2(distance) + 1;
    return b >= kNumLogBuckets ? kNumLogBuckets - 1 : b;
}

} // anonymous namespace

ReuseDistanceProfiler::ReuseDistanceProfiler(unsigned block_bits)
    : blockBits(block_bits), distanceBuckets(kNumLogBuckets, 0)
{
    fenwick.assign(1, 0);
}

void
ReuseDistanceProfiler::fenwickAdd(std::size_t pos, std::int64_t delta)
{
    for (; pos < fenwick.size(); pos += pos & (~pos + 1))
        fenwick[pos] += delta;
}

std::int64_t
ReuseDistanceProfiler::fenwickSuffixSum(std::size_t pos) const
{
    // Prefix sum [1, pos].
    std::int64_t sum = 0;
    for (; pos > 0; pos -= pos & (~pos + 1))
        sum += fenwick[pos];
    return sum;
}

void
ReuseDistanceProfiler::onInstruction(const TraceRecord &rec)
{
    if (!rec.isMemory())
        return;

    const Addr block = rec.addr >> blockBits;
    const std::uint64_t t = ++timeCursor;

    // Grow the Fenwick tree by rebuilding from scratch when the time
    // cursor outruns it; the live bits are exactly the stored
    // last-access positions, so a rebuild re-adds one 1 per live block.
    if (t >= fenwick.size()) {
        std::size_t new_size = fenwick.size() * 2;
        while (t >= new_size)
            new_size *= 2;
        fenwick.assign(new_size, 0);
        for (const auto &[blk, pos] : lastAccess) {
            (void)blk;
            fenwickAdd(pos, +1);
        }
    }

    auto it = lastAccess.find(block);
    if (it != lastAccess.end()) {
        const std::uint64_t last = it->second;
        const auto distinct =
            static_cast<std::int64_t>(lastAccess.size());
        const std::int64_t le_last = fenwickSuffixSum(last);
        const auto distance = static_cast<std::uint64_t>(
            distinct - le_last);
        ++distanceBuckets[logBucket(distance)];
        ++reuseCount;
        fenwickAdd(last, -1);
        it->second = t;
    } else {
        ++coldCount;
        lastAccess.emplace(block, t);
    }
    fenwickAdd(t, +1);
}

double
ReuseDistanceProfiler::hitRatioAtCapacity(std::uint64_t blocks) const
{
    if (reuseCount == 0)
        return 0.0;
    // Sum whole buckets whose upper bound fits, then linearly
    // interpolate the straddling bucket.
    std::uint64_t covered = 0;
    double partial = 0.0;
    for (std::size_t b = 0; b < kNumLogBuckets; ++b) {
        const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
        const std::uint64_t hi = b == 0 ? 1 : (std::uint64_t{1} << b);
        if (hi <= blocks) {
            covered += distanceBuckets[b];
        } else if (lo < blocks) {
            partial = static_cast<double>(distanceBuckets[b]) *
                      static_cast<double>(blocks - lo) /
                      static_cast<double>(hi - lo);
        }
    }
    return (static_cast<double>(covered) + partial) /
           static_cast<double>(reuseCount);
}

} // namespace cachescope
