/**
 * @file
 * Binary trace file round-tripping.
 *
 * The on-disk format is a fixed 24-byte little-endian record preceded
 * by a header, so traces captured from one workload run can be replayed
 * later (ChampSim-style) without re-executing the workload.
 *
 * Format v2 extends the v1 header with a 64-bit checksum over the
 * record bytes; the reader verifies both the checksum and the promised
 * record count, so truncated or bit-flipped traces are reported as
 * Status errors instead of silently replaying short. Format v3 keeps
 * the v2 header layout but computes the digest with the 8-lane
 * interleaved FNV (Checksum64x8), whose independent dependency chains
 * hash several times faster than v2's byte-serial Checksum64 — on big
 * traces the digest used to dominate replay wall-clock. v1 and v2
 * files remain readable (verified with their own digest rules).
 *
 * Error reporting: the static open() factories return Expected and
 * never terminate the process; the legacy path-taking constructors are
 * convenience wrappers that fatal() on the same errors.
 */

#ifndef CACHESCOPE_TRACE_TRACE_IO_HH
#define CACHESCOPE_TRACE_TRACE_IO_HH

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/record.hh"
#include "util/checksum.hh"
#include "util/status.hh"

namespace cachescope {

/** Trace file header. */
struct TraceFileHeader
{
    static constexpr std::uint32_t kMagic = 0x43535452; // "CSTR"
    static constexpr std::uint32_t kVersionV1 = 1;
    static constexpr std::uint32_t kVersionV2 = 2;
    static constexpr std::uint32_t kVersion = 3;

    /** Bytes of header preceding the records, per version. */
    static constexpr std::size_t kV1Bytes = 16;
    /** v2 and v3 share the 24-byte header layout. */
    static constexpr std::size_t kV2Bytes = 24;

    /** Bytes per on-disk record (pinned; all versions). */
    static constexpr std::size_t kRecordBytes = 24;

    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint64_t numRecords = 0;
    /**
     * v2+: digest over all record bytes, in file order — Checksum64
     * for v2 files, Checksum64x8 for v3.
     */
    std::uint64_t checksum = 0;
};

static_assert(sizeof(TraceFileHeader) == TraceFileHeader::kV2Bytes,
              "v2 header must pack to 24 B");

/**
 * An InstructionSink that appends every record to a binary trace file.
 * The record count and checksum are back-patched into the header by
 * finish()/onEnd()/destruction.
 *
 * I/O errors (e.g. a full disk) are sticky: the first failure is
 * recorded, further records are dropped, and finish() (or status())
 * reports it. The destructor warns about unretrieved errors.
 */
class TraceWriter : public InstructionSink
{
  public:
    /** Open @p path for writing. */
    static Expected<std::unique_ptr<TraceWriter>>
    open(const std::string &path);

    /** Convenience wrapper around open(); fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void onInstruction(const TraceRecord &rec) override;
    void onEnd() override;

    /**
     * Back-patch the header, flush, and close the file.
     * @return the first error hit during writing or finalization.
     */
    Status finish();

    /** Sticky error state (OK while everything has succeeded). */
    const Status &status() const { return status_; }

    std::uint64_t recordsWritten() const { return count; }

  private:
    TraceWriter() = default;
    Status init(const std::string &path);
    void finalize();

    std::FILE *file = nullptr;
    std::string path;
    Checksum64x8 checksum; // writes the current (v3) format
    Status status_;
    std::uint64_t count = 0;
    bool finalized = false;
};

/**
 * Reads a binary trace file and replays it into a sink.
 *
 * next() returns false at end of input; status() distinguishes a
 * verified clean end (record count and, for v2, checksum both match
 * the header) from truncation, corruption, or read errors.
 */
class TraceReader
{
  public:
    /** Open @p path and validate its header. */
    static Expected<std::unique_ptr<TraceReader>>
    open(const std::string &path);

    /** Convenience wrapper around open(); fatal() on failure. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return the number of records the header promises. */
    std::uint64_t numRecords() const { return header.numRecords; }

    /** @return the on-disk format version (1 or 2). */
    std::uint32_t version() const { return header.version; }

    /**
     * @return the digest the v2+/v3 header promises for the record
     * bytes (0 for v1 traces, which carry no checksum).
     */
    std::uint64_t headerChecksum() const { return header.checksum; }

    /**
     * Read the next record.
     * @return false at end of input; check status() afterwards to tell
     *         clean EOF from truncation/corruption.
     */
    bool next(TraceRecord &rec);

    /** Non-OK once next() has hit truncation, corruption, or EIO. */
    const Status &status() const { return status_; }

    /** Records successfully returned by next() so far. */
    std::uint64_t recordsRead() const { return recordsRead_; }

    /**
     * Push all (remaining) records into @p sink.
     *
     * On success calls sink.onEnd() and returns OK; on a corrupt or
     * truncated trace returns the error without calling onEnd().
     * @param replayed if non-null, receives the replayed-record count.
     */
    Status replayInto(InstructionSink &sink,
                      std::uint64_t *replayed = nullptr);

  private:
    /** Records fetched per buffered read on the replay hot path. */
    static constexpr std::size_t kBatchRecords = 4096;

    /**
     * Traces at least this many records long are read through a
     * pipelined producer thread that overlaps the fread and the
     * (inherently serial, format-pinned) FNV checksum with the
     * consumer's simulation work. Shorter traces stay synchronous —
     * the thread would cost more than it hides.
     */
    static constexpr std::uint64_t kPipelineMinRecords = 8 * kBatchRecords;

    /** One read-ahead unit handed from producer to consumer. */
    struct Chunk
    {
        std::vector<unsigned char> bytes;
        std::size_t len = 0;    ///< complete-record bytes in `bytes`
        std::size_t stray = 0;  ///< partial trailing bytes (EOF tear)
        bool readError = false; ///< ferror() fired during this read
    };

    TraceReader() = default;
    Status init(const std::string &path);

    /**
     * Pull the next chunk of complete records into the decode buffer.
     * @return true when at least one record is buffered; false at end
     * of input, with `done` set and status_ holding the end-of-stream
     * verdict (clean EOF, truncation, count or checksum mismatch).
     */
    bool refill();

    /** Synchronous read+checksum of the next chunk into buffer_. */
    bool refillSync();

    /** Pipelined variant: swap in the next producer-filled chunk. */
    bool refillPipelined();

    /** Body of the read-ahead thread. */
    void producerLoop();

    /** Issue the end-of-stream verdict into status_; sets `done`. */
    void finishStream(std::size_t stray, bool read_error);

    /** Feed record bytes to the digest this file's version uses. */
    void digestUpdate(const void *data, std::size_t len);

    /** The digest of every record byte fed so far. */
    std::uint64_t digestValue() const;

    std::FILE *file = nullptr;
    std::string path;
    TraceFileHeader header;
    Checksum64 checksum;      ///< v2 digest (byte-serial)
    Checksum64x8 checksumX8_; ///< v3 digest (8-lane interleaved)
    Status status_;
    std::uint64_t recordsRead_ = 0;
    bool done = false;

    /** Decode cursor over the current chunk's complete-record bytes. */
    const unsigned char *bufData_ = nullptr;
    std::size_t bufPos_ = 0;
    std::size_t bufLen_ = 0;
    /** Trailing partial-record bytes seen at EOF (truncation proof). */
    std::size_t stray_ = 0;

    /** Synchronous-path buffer (small traces). */
    std::vector<unsigned char> buffer_;

    // ---- pipelined read-ahead state (large traces only) ----
    bool pipelined_ = false;
    std::thread producer_;
    std::mutex mu_;
    std::condition_variable cvProducer_;
    std::condition_variable cvConsumer_;
    /** Chunks available to the producer / filled for the consumer. */
    std::deque<Chunk *> freeChunks_;
    std::deque<Chunk *> readyChunks_;
    std::vector<Chunk> chunkPool_;
    Chunk *current_ = nullptr;
    bool producerDone_ = false;
    bool shuttingDown_ = false;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_TRACE_IO_HH
