/**
 * @file
 * Binary trace file round-tripping.
 *
 * The on-disk format is a fixed 24-byte little-endian record preceded by
 * a 16-byte header, so traces captured from one workload run can be
 * replayed later (ChampSim-style) without re-executing the workload.
 */

#ifndef CACHESCOPE_TRACE_TRACE_IO_HH
#define CACHESCOPE_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>

#include "trace/record.hh"

namespace cachescope {

/** Trace file header. */
struct TraceFileHeader
{
    static constexpr std::uint32_t kMagic = 0x43535452; // "CSTR"
    static constexpr std::uint32_t kVersion = 1;

    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint64_t numRecords = 0;
};

/**
 * An InstructionSink that appends every record to a binary trace file.
 * The record count in the header is back-patched on onEnd()/destruction.
 */
class TraceWriter : public InstructionSink
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void onInstruction(const TraceRecord &rec) override;
    void onEnd() override;

    std::uint64_t recordsWritten() const { return count; }

  private:
    void finalize();

    std::FILE *file = nullptr;
    std::uint64_t count = 0;
    bool finalized = false;
};

/**
 * Reads a binary trace file and replays it into a sink.
 */
class TraceReader
{
  public:
    /** Open @p path for reading; fatal() on failure or bad header. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return the number of records the header promises. */
    std::uint64_t numRecords() const { return header.numRecords; }

    /**
     * Read the next record.
     * @return false at end of file.
     */
    bool next(TraceRecord &rec);

    /** Push all (remaining) records into @p sink, then call onEnd(). */
    std::uint64_t replayInto(InstructionSink &sink);

  private:
    std::FILE *file = nullptr;
    TraceFileHeader header;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_TRACE_IO_HH
