/**
 * @file
 * Binary trace file round-tripping.
 *
 * The on-disk format is a fixed 24-byte little-endian record preceded
 * by a header, so traces captured from one workload run can be replayed
 * later (ChampSim-style) without re-executing the workload.
 *
 * Format v2 extends the v1 header with a 64-bit checksum over the
 * record bytes; the reader verifies both the checksum and the promised
 * record count, so truncated or bit-flipped traces are reported as
 * Status errors instead of silently replaying short. v1 files remain
 * readable (no checksum to verify, but the record count still is).
 *
 * Error reporting: the static open() factories return Expected and
 * never terminate the process; the legacy path-taking constructors are
 * convenience wrappers that fatal() on the same errors.
 */

#ifndef CACHESCOPE_TRACE_TRACE_IO_HH
#define CACHESCOPE_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>

#include "trace/record.hh"
#include "util/checksum.hh"
#include "util/status.hh"

namespace cachescope {

/** Trace file header. */
struct TraceFileHeader
{
    static constexpr std::uint32_t kMagic = 0x43535452; // "CSTR"
    static constexpr std::uint32_t kVersionV1 = 1;
    static constexpr std::uint32_t kVersion = 2;

    /** Bytes of header preceding the records, per version. */
    static constexpr std::size_t kV1Bytes = 16;
    static constexpr std::size_t kV2Bytes = 24;

    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint64_t numRecords = 0;
    /** v2+: Checksum64 digest over all record bytes, in file order. */
    std::uint64_t checksum = 0;
};

static_assert(sizeof(TraceFileHeader) == TraceFileHeader::kV2Bytes,
              "v2 header must pack to 24 B");

/**
 * An InstructionSink that appends every record to a binary trace file.
 * The record count and checksum are back-patched into the header by
 * finish()/onEnd()/destruction.
 *
 * I/O errors (e.g. a full disk) are sticky: the first failure is
 * recorded, further records are dropped, and finish() (or status())
 * reports it. The destructor warns about unretrieved errors.
 */
class TraceWriter : public InstructionSink
{
  public:
    /** Open @p path for writing. */
    static Expected<std::unique_ptr<TraceWriter>>
    open(const std::string &path);

    /** Convenience wrapper around open(); fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void onInstruction(const TraceRecord &rec) override;
    void onEnd() override;

    /**
     * Back-patch the header, flush, and close the file.
     * @return the first error hit during writing or finalization.
     */
    Status finish();

    /** Sticky error state (OK while everything has succeeded). */
    const Status &status() const { return status_; }

    std::uint64_t recordsWritten() const { return count; }

  private:
    TraceWriter() = default;
    Status init(const std::string &path);
    void finalize();

    std::FILE *file = nullptr;
    std::string path;
    Checksum64 checksum;
    Status status_;
    std::uint64_t count = 0;
    bool finalized = false;
};

/**
 * Reads a binary trace file and replays it into a sink.
 *
 * next() returns false at end of input; status() distinguishes a
 * verified clean end (record count and, for v2, checksum both match
 * the header) from truncation, corruption, or read errors.
 */
class TraceReader
{
  public:
    /** Open @p path and validate its header. */
    static Expected<std::unique_ptr<TraceReader>>
    open(const std::string &path);

    /** Convenience wrapper around open(); fatal() on failure. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return the number of records the header promises. */
    std::uint64_t numRecords() const { return header.numRecords; }

    /** @return the on-disk format version (1 or 2). */
    std::uint32_t version() const { return header.version; }

    /**
     * @return the Checksum64 digest the v2 header promises for the
     * record bytes (0 for v1 traces, which carry no checksum).
     */
    std::uint64_t headerChecksum() const { return header.checksum; }

    /**
     * Read the next record.
     * @return false at end of input; check status() afterwards to tell
     *         clean EOF from truncation/corruption.
     */
    bool next(TraceRecord &rec);

    /** Non-OK once next() has hit truncation, corruption, or EIO. */
    const Status &status() const { return status_; }

    /** Records successfully returned by next() so far. */
    std::uint64_t recordsRead() const { return recordsRead_; }

    /**
     * Push all (remaining) records into @p sink.
     *
     * On success calls sink.onEnd() and returns OK; on a corrupt or
     * truncated trace returns the error without calling onEnd().
     * @param replayed if non-null, receives the replayed-record count.
     */
    Status replayInto(InstructionSink &sink,
                      std::uint64_t *replayed = nullptr);

  private:
    TraceReader() = default;
    Status init(const std::string &path);

    std::FILE *file = nullptr;
    std::string path;
    TraceFileHeader header;
    Checksum64 checksum;
    Status status_;
    std::uint64_t recordsRead_ = 0;
    bool done = false;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_TRACE_IO_HH
