/**
 * @file
 * Synthetic program-counter management for instrumented workloads.
 *
 * Real traces carry the PCs of the compiled binary; our workloads run as
 * instrumented C++ instead, so each *static access site* in a kernel is
 * assigned a stable synthetic PC. This preserves the property the paper's
 * argument depends on: the number of distinct memory PCs in a kernel
 * equals the number of static loads/stores in its inner loops, while the
 * number of addresses each PC touches is data-dependent.
 */

#ifndef CACHESCOPE_TRACE_PC_SITE_HH
#define CACHESCOPE_TRACE_PC_SITE_HH

#include <cstdint>

#include "util/types.hh"

namespace cachescope {

/**
 * Allocates synthetic PCs inside a per-workload code region.
 *
 * Each workload gets a disjoint 64 KB region (so PCs never collide
 * across workloads in a suite) and hands out 4-byte-spaced PCs inside
 * it, mimicking fixed-width instruction placement.
 */
class PcRegion
{
  public:
    /** @param workload_id dense id of the workload (0, 1, 2, ...). */
    explicit PcRegion(std::uint32_t workload_id)
        : base(kTextBase + static_cast<Pc>(workload_id) * kRegionBytes)
    {}

    /** @return the PC of static site @p site_id within this region. */
    Pc
    pc(std::uint32_t site_id) const
    {
        return base + static_cast<Pc>(site_id) * 4;
    }

    /** Allocate the next unused site and return its PC. */
    Pc
    allocate()
    {
        return pc(nextSite++);
    }

    Pc regionBase() const { return base; }

    static constexpr Pc kTextBase = 0x400000;
    static constexpr Pc kRegionBytes = 64 * 1024;

  private:
    Pc base;
    std::uint32_t nextSite = 0;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_PC_SITE_HH
