/**
 * @file
 * PC/address-correlation profiler.
 *
 * The paper's central argument for why PC-indexed replacement policies
 * fail on graph analytics is that those workloads execute very few
 * distinct memory PCs, each touching an enormous number of addresses,
 * so no stable per-PC reuse behaviour exists to learn. This profiler
 * quantifies exactly that: per-PC access counts and distinct-block
 * fan-out over an instruction stream (experiment E4 / Fig. 5).
 */

#ifndef CACHESCOPE_TRACE_PROFILE_HH
#define CACHESCOPE_TRACE_PROFILE_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/record.hh"

namespace cachescope {

/** Aggregated fan-out statistics for one memory PC. */
struct PcFanout
{
    Pc pc = 0;
    std::uint64_t accesses = 0;
    std::uint64_t distinctBlocks = 0;
};

/** Summary of a whole stream's PC/address correlation structure. */
struct PcProfileSummary
{
    std::uint64_t memoryAccesses = 0;
    std::uint64_t distinctMemoryPcs = 0;
    /** Mean distinct 64 B blocks touched per memory PC. */
    double meanBlocksPerPc = 0.0;
    /** Maximum distinct blocks touched by any single PC. */
    std::uint64_t maxBlocksPerPc = 0;
    /** Smallest number of PCs covering >= 90 % of memory accesses. */
    std::uint64_t pcsFor90PctAccesses = 0;
    /**
     * Shannon entropy (bits) of the access distribution over PCs.
     * Low entropy = few hot PCs carry all traffic.
     */
    double pcEntropyBits = 0.0;
};

/**
 * InstructionSink that builds a per-PC fan-out profile.
 */
class PcProfiler : public InstructionSink
{
  public:
    /** @param block_bits log2 of the block size used for fan-out (6 = 64B). */
    explicit PcProfiler(unsigned block_bits = 6) : blockBits(block_bits) {}

    void onInstruction(const TraceRecord &rec) override;

    /** @return per-PC fan-out rows, sorted by access count descending. */
    std::vector<PcFanout> fanouts() const;

    /** @return the aggregate summary. */
    PcProfileSummary summarize() const;

  private:
    struct PerPc
    {
        std::uint64_t accesses = 0;
        std::unordered_set<std::uint64_t> blocks;
    };

    unsigned blockBits;
    std::uint64_t totalMemAccesses = 0;
    std::unordered_map<Pc, PerPc> table;
};

} // namespace cachescope

#endif // CACHESCOPE_TRACE_PROFILE_HH
