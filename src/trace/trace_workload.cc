/**
 * @file
 * Trace-file workload implementation.
 */

#include "trace/trace_workload.hh"

namespace cachescope {

TraceFileWorkload::TraceFileWorkload(std::string path,
                                     std::string display_name)
    : path(std::move(path)),
      displayName(display_name.empty() ? this->path
                                       : std::move(display_name))
{
    // Validate the header now so bad paths fail at construction, not
    // mid-sweep.
    TraceReader probe(this->path);
    records = probe.numRecords();
}

void
TraceFileWorkload::run(InstructionSink &sink)
{
    TraceReader reader(path);
    TraceRecord rec;
    while (sink.wantsMore() && reader.next(rec))
        sink.onInstruction(rec);
    sink.onEnd();
}

} // namespace cachescope
