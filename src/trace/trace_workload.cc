/**
 * @file
 * Trace-file workload implementation.
 */

#include "trace/trace_workload.hh"

#include <stdexcept>

namespace cachescope {

Expected<std::shared_ptr<TraceFileWorkload>>
TraceFileWorkload::open(std::string path, std::string display_name)
{
    // Validate the header now so bad paths fail at construction, not
    // mid-sweep.
    CS_TRY_ASSIGN(auto probe, TraceReader::open(path));
    std::shared_ptr<TraceFileWorkload> workload(
        new TraceFileWorkload(std::move(path), std::move(display_name),
                              probe->numRecords()));
    return workload;
}

TraceFileWorkload::TraceFileWorkload(std::string path,
                                     std::string display_name)
{
    auto opened = open(std::move(path), std::move(display_name));
    if (!opened.ok())
        fatal("%s", opened.status().message().c_str());
    this->path = opened.value()->path;
    this->displayName = opened.value()->displayName;
    this->records = opened.value()->records;
}

TraceFileWorkload::TraceFileWorkload(std::string path,
                                     std::string display_name,
                                     std::uint64_t records)
    : path(std::move(path)),
      displayName(display_name.empty() ? this->path
                                       : std::move(display_name)),
      records(records)
{}

void
TraceFileWorkload::run(InstructionSink &sink)
{
    auto reader = TraceReader::open(path);
    if (!reader.ok())
        throw std::runtime_error(reader.status().toString());
    TraceRecord rec;
    while (sink.wantsMore() && reader.value()->next(rec))
        sink.onInstruction(rec);
    // Distinguish a clean stop (EOF or satisfied sink) from a trace
    // that ended early because it is damaged. Thrown rather than
    // fatal()ed so a sweep harness can isolate the failing cell.
    if (!reader.value()->status().ok())
        throw std::runtime_error(reader.value()->status().toString());
    sink.onEnd();
}

} // namespace cachescope
