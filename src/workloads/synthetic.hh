/**
 * @file
 * Synthetic CPU-workload kernels standing in for SPEC CPU 2006/2017.
 *
 * SPEC is proprietary, so the paper's SPEC trace sets cannot be
 * reproduced verbatim. What the evaluated replacement policies actually
 * key on, however, is a small set of access-pattern *classes* — and
 * SPEC's value in the paper is as the regime where those classes occur
 * with learnable, PC-stable behaviour. Each kernel below is one such
 * class, executing for real over TracedArray memory:
 *
 *  - StreamTriad:  pure streaming (a[i] = b[i] + s*c[i]), no reuse.
 *  - ScanThrash:   cyclic scan over a working set slightly larger than
 *                  the LLC — LRU's pathological case, RRIP's best case.
 *  - HotCold:      skewed reuse on a resident hot set plus a cold
 *                  stream from distinct PCs — SHiP/Hawkeye territory.
 *  - PointerChase: dependent random chase, defeats everything.
 *  - Stencil2D:    5-point stencil; rows reused across sweeps.
 *  - MixedPhase:   alternating thrash/reuse phases — DRRIP's dueling.
 *  - DeadFill:     a store-only output stream (dead on arrival) over a
 *                  live reuse set — bypass/DOA insertion pays off.
 *  - GatherZipf:   indexed gather with Zipf-skewed indices.
 *  - TreeSearch:   implicit binary-tree descent with one PC per level:
 *                  top levels cache-friendly, leaf levels averse.
 *  - SmallWs:      cache-resident working set (sanity anchor ~1.0x).
 *  - PcMosaic:     many static access sites, each streaming through
 *                  its own small private slice — the many-PCs /
 *                  small-per-PC-footprint extreme the online profiler
 *                  contrasts against the graph kernels.
 *
 * Unlike the graph kernels, these expose many distinct memory PCs with
 * stable per-PC reuse — the contrast the paper's Fig. 3 argument needs.
 */

#ifndef CACHESCOPE_WORKLOADS_SYNTHETIC_HH
#define CACHESCOPE_WORKLOADS_SYNTHETIC_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace cachescope {

/** The synthetic access-pattern classes. */
enum class SynthPattern
{
    StreamTriad,
    ScanThrash,
    HotCold,
    PointerChase,
    Stencil2D,
    MixedPhase,
    DeadFill,
    GatherZipf,
    TreeSearch,
    SmallWs,
    PcMosaic,
};

/** @return a short name for @p pattern ("stream_triad", ...). */
const char *synthPatternName(SynthPattern pattern);

/** Parameters of one synthetic kernel instance. */
struct SynthParams
{
    std::uint32_t pcWorkloadId = 0;
    std::uint64_t seed = 7;
    /** Primary working-set size in bytes. */
    std::uint64_t mainBytes = 8ull << 20;
    /** Hot-subset size for HotCold / DeadFill / MixedPhase. */
    std::uint64_t hotBytes = 768ull << 10;
    /** Fraction of accesses hitting the hot subset. */
    double hotFraction = 0.9;
    /** Zipf skew for GatherZipf. */
    double zipfSkew = 0.8;
    /** ALU instructions modelled per memory operation. */
    std::uint32_t aluPerOp = 6;
    /** Operations per phase for MixedPhase. */
    std::uint64_t phaseOps = 1ull << 18;
    /** Distinct memory access sites for PcMosaic. */
    std::uint32_t mosaicPcs = 48;
};

/**
 * One synthetic workload = (pattern, params). Runs until the sink stops
 * wanting records (the kernels are endless by construction).
 */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param suite_tag suite prefix for the display name ("spec06").
     * @param pattern access-pattern class.
     * @param params kernel parameters.
     * @param variant optional suffix distinguishing same-pattern suite
     *        members ("2", "small", ...).
     */
    SyntheticWorkload(std::string suite_tag, SynthPattern pattern,
                      SynthParams params, std::string variant = "");

    const std::string &name() const override { return displayName; }
    void run(InstructionSink &sink) override;

    SynthPattern pattern() const { return pat; }
    const SynthParams &params() const { return prm; }

  private:
    SynthPattern pat;
    SynthParams prm;
    std::string displayName;
};

/**
 * @return the "SPEC 2006-like" suite: ten kernels with working sets
 * and skews sized for the simulated 1.375 MB LLC.
 * @param first_pc_workload_id PC-region id of the first member.
 */
std::vector<std::shared_ptr<Workload>>
makeSpec06Suite(std::uint32_t first_pc_workload_id = 100);

/**
 * @return the "SPEC 2017-like" suite: the same classes at the larger
 * footprints and higher skews typical of the 2017 refresh.
 */
std::vector<std::shared_ptr<Workload>>
makeSpec17Suite(std::uint32_t first_pc_workload_id = 200);

} // namespace cachescope

#endif // CACHESCOPE_WORKLOADS_SYNTHETIC_HH
