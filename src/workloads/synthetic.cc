/**
 * @file
 * Synthetic kernel implementations.
 */

#include "workloads/synthetic.hh"

#include <algorithm>

#include "trace/pc_site.hh"
#include "trace/traced_memory.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cachescope {

namespace {

/** Periodicity of sink.wantsMore() polling in the endless loops. */
constexpr std::uint64_t kPollMask = 4095;

// ---------------------------------------------------------- StreamTriad --

void
runStreamTriad(InstructionSink &sink, const SynthParams &p)
{
    const std::size_t n = std::max<std::size_t>(p.mainBytes / 24, 1024);
    AddressSpace space;
    TracedArray<double> a(n, space, sink, 0.0);
    TracedArray<double> b(n, space, sink, 1.0);
    TracedArray<double> c(n, space, sink, 2.0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_b = region.allocate();
    const Pc pc_c = region.allocate();
    const Pc pc_a = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    std::uint64_t i = 0;
    while (sink.wantsMore()) {
        const std::size_t idx = i % n;
        const double x = b.load(idx, pc_b) + 3.0 * c.load(idx, pc_c);
        a.store(idx, x, pc_a);
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            return;
    }
}

// ----------------------------------------------------------- ScanThrash --

void
runScanThrash(InstructionSink &sink, const SynthParams &p)
{
    // One load per cache block; the scan wraps around a buffer sized
    // just beyond the LLC so LRU evicts every block moments before its
    // next use.
    const std::size_t n = std::max<std::size_t>(p.mainBytes / 8, 1024);
    AddressSpace space;
    TracedArray<std::uint64_t> buf(n, space, sink, 1);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_ld = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    std::uint64_t i = 0;
    std::uint64_t acc = 0;
    while (sink.wantsMore()) {
        const std::size_t idx = (i * 8) % n; // one access per 64 B block
        acc += buf.load(idx, pc_ld);
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            break;
    }
    (void)acc;
}

// -------------------------------------------------------------- HotCold --

void
runHotCold(InstructionSink &sink, const SynthParams &p)
{
    const std::size_t hot_n = std::max<std::size_t>(p.hotBytes / 8, 512);
    const std::size_t cold_n = std::max<std::size_t>(p.mainBytes / 8, 4096);
    AddressSpace space;
    TracedArray<std::uint64_t> hot(hot_n, space, sink, 1);
    TracedArray<std::uint64_t> cold(cold_n, space, sink, 2);
    InstructionMix mix(sink);

    // Several distinct hot-access sites so the PC-indexed predictors
    // see a population of "reusing" signatures, one cold-stream site
    // that they can learn as dead-on-arrival.
    PcRegion region(p.pcWorkloadId);
    Pc pc_hot[4];
    for (Pc &pc : pc_hot)
        pc = region.allocate();
    const Pc pc_cold = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    std::uint64_t i = 0;
    std::uint64_t cold_pos = 0;
    std::uint64_t acc = 0;
    while (sink.wantsMore()) {
        if (rng.nextBool(p.hotFraction)) {
            const std::size_t idx = rng.nextBounded(hot_n);
            acc += hot.load(idx, pc_hot[i & 3]);
        } else {
            cold_pos = (cold_pos + 8) % cold_n; // streaming, block stride
            acc += cold.load(cold_pos, pc_cold);
        }
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            break;
    }
    (void)acc;
}

// --------------------------------------------------------- PointerChase --

void
runPointerChase(InstructionSink &sink, const SynthParams &p)
{
    const std::size_t n = std::max<std::size_t>(p.mainBytes / 8, 1024);
    AddressSpace space;
    TracedArray<std::uint64_t> next(n, space, sink, 0);
    InstructionMix mix(sink);

    // Sattolo's algorithm: a single cycle covering every node, so the
    // chase never revisits a node until the whole set has been walked.
    Rng rng(p.seed);
    for (std::size_t i = 0; i < n; ++i)
        next.raw(i) = i;
    for (std::size_t i = n - 1; i > 0; --i) {
        const std::size_t j = rng.nextBounded(i);
        std::swap(next.raw(i), next.raw(j));
    }

    PcRegion region(p.pcWorkloadId);
    const Pc pc_chase = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    std::uint64_t pos = 0;
    std::uint64_t i = 0;
    while (sink.wantsMore()) {
        pos = next.load(pos, pc_chase);
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            return;
    }
}

// ------------------------------------------------------------ Stencil2D --

void
runStencil2D(InstructionSink &sink, const SynthParams &p)
{
    // Square-ish grid of doubles totalling mainBytes; a row triple
    // (width * 24 bytes) is the reusable unit between sweeps of y.
    const std::size_t cells = std::max<std::size_t>(p.mainBytes / 8, 4096);
    const std::size_t width = 1024;
    const std::size_t height = std::max<std::size_t>(cells / width, 8);
    AddressSpace space;
    TracedArray<double> in(width * height, space, sink, 1.0);
    TracedArray<double> out(width * height, space, sink, 0.0);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_c = region.allocate();
    const Pc pc_w = region.allocate();
    const Pc pc_e = region.allocate();
    const Pc pc_n = region.allocate();
    const Pc pc_s = region.allocate();
    const Pc pc_st = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    std::uint64_t ops = 0;
    while (sink.wantsMore()) {
        for (std::size_t y = 1; y + 1 < height; ++y) {
            for (std::size_t x = 1; x + 1 < width; ++x) {
                const std::size_t i = y * width + x;
                const double v = 0.2 * (in.load(i, pc_c) +
                                        in.load(i - 1, pc_w) +
                                        in.load(i + 1, pc_e) +
                                        in.load(i - width, pc_n) +
                                        in.load(i + width, pc_s));
                out.store(i, v, pc_st);
                mix.alu(pc_alu, p.aluPerOp);
                mix.branch(pc_br);
                if ((++ops & kPollMask) == 0 && !sink.wantsMore())
                    return;
            }
        }
    }
}

// ------------------------------------------------------------ MixedPhase --

void
runMixedPhase(InstructionSink &sink, const SynthParams &p)
{
    const std::size_t scan_n = std::max<std::size_t>(p.mainBytes / 8, 4096);
    const std::size_t hot_n = std::max<std::size_t>(p.hotBytes / 8, 512);
    AddressSpace space;
    TracedArray<std::uint64_t> scan(scan_n, space, sink, 1);
    TracedArray<std::uint64_t> hot(hot_n, space, sink, 2);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_scan = region.allocate();
    const Pc pc_hot = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    std::uint64_t acc = 0;
    std::uint64_t scan_pos = 0;
    bool scanning = true;
    while (sink.wantsMore()) {
        for (std::uint64_t op = 0; op < p.phaseOps; ++op) {
            if (scanning) {
                scan_pos = (scan_pos + 8) % scan_n;
                acc += scan.load(scan_pos, pc_scan);
            } else {
                acc += hot.load(rng.nextBounded(hot_n), pc_hot);
            }
            mix.alu(pc_alu, p.aluPerOp);
            mix.branch(pc_br);
            if ((op & kPollMask) == 0 && !sink.wantsMore())
                return;
        }
        scanning = !scanning;
    }
    (void)acc;
}

// -------------------------------------------------------------- DeadFill --

void
runDeadFill(InstructionSink &sink, const SynthParams &p)
{
    const std::size_t out_n = std::max<std::size_t>(p.mainBytes / 8, 4096);
    const std::size_t live_n = std::max<std::size_t>(p.hotBytes / 8, 512);
    AddressSpace space;
    TracedArray<std::uint64_t> output(out_n, space, sink, 0);
    TracedArray<std::uint64_t> live(live_n, space, sink, 3);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_dead_st = region.allocate();
    const Pc pc_live_ld = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    std::uint64_t i = 0;
    std::uint64_t out_pos = 0;
    while (sink.wantsMore()) {
        // Produce one output block (dead: never read back), consuming
        // a couple of live values.
        const std::uint64_t v = live.load(rng.nextBounded(live_n),
                                          pc_live_ld) +
                                live.load(rng.nextBounded(live_n),
                                          pc_live_ld);
        out_pos = (out_pos + 8) % out_n;
        output.store(out_pos, v, pc_dead_st);
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            return;
    }
}

// ------------------------------------------------------------ GatherZipf --

void
runGatherZipf(InstructionSink &sink, const SynthParams &p)
{
    const std::size_t table_n = std::max<std::size_t>(p.mainBytes / 8, 4096);
    const std::size_t idx_n = 1u << 16;
    AddressSpace space;
    TracedArray<std::uint32_t> indices(idx_n, space, sink, 0);
    TracedArray<std::uint64_t> table(table_n, space, sink, 5);
    InstructionMix mix(sink);

    Rng rng(p.seed);
    for (std::size_t i = 0; i < idx_n; ++i) {
        indices.raw(i) =
            static_cast<std::uint32_t>(rng.nextZipf(table_n, p.zipfSkew));
    }

    PcRegion region(p.pcWorkloadId);
    const Pc pc_idx = region.allocate();
    const Pc pc_gather = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    std::uint64_t i = 0;
    std::uint64_t acc = 0;
    while (sink.wantsMore()) {
        const std::uint32_t target = indices.load(i % idx_n, pc_idx);
        acc += table.load(target, pc_gather);
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            break;
    }
    (void)acc;
}

// ------------------------------------------------------------ TreeSearch --

void
runTreeSearch(InstructionSink &sink, const SynthParams &p)
{
    // Implicit binary tree in an array; each level gets its own access
    // PC, so the top levels (tiny, always resident) and the deep levels
    // (huge, effectively random) have cleanly separable signatures.
    const std::size_t n = std::max<std::size_t>(p.mainBytes / 16, 1024);
    AddressSpace space;
    TracedArray<std::uint64_t> keys(n, space, sink, 0);
    InstructionMix mix(sink);

    for (std::size_t i = 0; i < n; ++i)
        keys.raw(i) = i * 2654435761ull; // arbitrary stable key mix

    constexpr unsigned kMaxLevels = 28;
    PcRegion region(p.pcWorkloadId);
    Pc pc_level[kMaxLevels];
    for (Pc &pc : pc_level)
        pc = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    std::uint64_t i = 0;
    std::uint64_t acc = 0;
    while (sink.wantsMore()) {
        const std::uint64_t probe = rng.next();
        std::size_t node = 0;
        unsigned level = 0;
        while (node < n && level < kMaxLevels) {
            acc += keys.load(node, pc_level[level]);
            mix.alu(pc_alu, 2);
            mix.branch(pc_br);
            node = 2 * node + 1 + ((probe >> level) & 1);
            ++level;
        }
        mix.alu(pc_alu, p.aluPerOp);
        if ((++i & 255) == 0 && !sink.wantsMore())
            break;
    }
    (void)acc;
}

// --------------------------------------------------------------- SmallWs --

void
runSmallWs(InstructionSink &sink, const SynthParams &p)
{
    const std::size_t n =
        std::max<std::size_t>(std::min<std::uint64_t>(p.mainBytes,
                                                      512 * 1024) / 8, 512);
    AddressSpace space;
    TracedArray<std::uint64_t> buf(n, space, sink, 7);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    const Pc pc_ld = region.allocate();
    const Pc pc_st = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    Rng rng(p.seed);
    std::uint64_t i = 0;
    std::uint64_t acc = 0;
    while (sink.wantsMore()) {
        const std::size_t idx = rng.nextBounded(n);
        acc += buf.load(idx, pc_ld);
        if ((i & 7) == 0)
            buf.store(idx, acc, pc_st);
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            break;
    }
    (void)acc;
}

// -------------------------------------------------------------- PcMosaic --

void
runPcMosaic(InstructionSink &sink, const SynthParams &p)
{
    // The inverse of a graph kernel's PC/address structure: mosaicPcs
    // static load sites, each streaming through a private slice of the
    // buffer. Every PC touches only mainBytes/mosaicPcs worth of
    // blocks, and accesses spread uniformly over the sites, so the
    // top-k concentration curve stays flat (top-8 of 48 sites ~ 17%)
    // where a graph kernel's jumps past 90%.
    const std::uint32_t sites = std::max<std::uint32_t>(p.mosaicPcs, 2);
    const std::size_t n =
        std::max<std::size_t>(p.mainBytes / 8, std::size_t{64} * sites);
    const std::size_t slice = n / sites;
    AddressSpace space;
    TracedArray<std::uint64_t> buf(n, space, sink, 9);
    InstructionMix mix(sink);

    PcRegion region(p.pcWorkloadId);
    std::vector<Pc> pc_site(sites);
    for (Pc &pc : pc_site)
        pc = region.allocate();
    const Pc pc_alu = region.allocate();
    const Pc pc_br = region.allocate();

    // Per-site stream positions, in blocks within the site's slice.
    Rng rng(p.seed);
    std::vector<std::uint64_t> pos(sites, 0);
    std::uint64_t i = 0;
    std::uint64_t acc = 0;
    while (sink.wantsMore()) {
        const std::size_t site = rng.nextBounded(sites);
        pos[site] = (pos[site] + 8) % slice; // one access per block
        acc += buf.load(site * slice + pos[site], pc_site[site]);
        mix.alu(pc_alu, p.aluPerOp);
        mix.branch(pc_br);
        if ((++i & kPollMask) == 0 && !sink.wantsMore())
            break;
    }
    (void)acc;
}

} // anonymous namespace

const char *
synthPatternName(SynthPattern pattern)
{
    switch (pattern) {
      case SynthPattern::StreamTriad: return "stream_triad";
      case SynthPattern::ScanThrash: return "scan_thrash";
      case SynthPattern::HotCold: return "hot_cold";
      case SynthPattern::PointerChase: return "pointer_chase";
      case SynthPattern::Stencil2D: return "stencil2d";
      case SynthPattern::MixedPhase: return "mixed_phase";
      case SynthPattern::DeadFill: return "dead_fill";
      case SynthPattern::GatherZipf: return "gather_zipf";
      case SynthPattern::TreeSearch: return "tree_search";
      case SynthPattern::SmallWs: return "small_ws";
      case SynthPattern::PcMosaic: return "pc_mosaic";
    }
    return "unknown";
}

SyntheticWorkload::SyntheticWorkload(std::string suite_tag,
                                     SynthPattern pattern,
                                     SynthParams params,
                                     std::string variant)
    : pat(pattern), prm(params),
      displayName(std::move(suite_tag) + "." + synthPatternName(pattern) +
                  (variant.empty() ? "" : "_" + variant))
{}

void
SyntheticWorkload::run(InstructionSink &sink)
{
    switch (pat) {
      case SynthPattern::StreamTriad: runStreamTriad(sink, prm); break;
      case SynthPattern::ScanThrash: runScanThrash(sink, prm); break;
      case SynthPattern::HotCold: runHotCold(sink, prm); break;
      case SynthPattern::PointerChase: runPointerChase(sink, prm); break;
      case SynthPattern::Stencil2D: runStencil2D(sink, prm); break;
      case SynthPattern::MixedPhase: runMixedPhase(sink, prm); break;
      case SynthPattern::DeadFill: runDeadFill(sink, prm); break;
      case SynthPattern::GatherZipf: runGatherZipf(sink, prm); break;
      case SynthPattern::TreeSearch: runTreeSearch(sink, prm); break;
      case SynthPattern::SmallWs: runSmallWs(sink, prm); break;
      case SynthPattern::PcMosaic: runPcMosaic(sink, prm); break;
    }
    sink.onEnd();
}

std::vector<std::shared_ptr<Workload>>
makeSpec06Suite(std::uint32_t first_pc_workload_id)
{
    // Like SPEC itself, the suite is mostly cache-friendly or policy-
    // neutral members with a minority of replacement-sensitive ones;
    // the geomean should move by percent, not by factors.
    std::vector<std::shared_ptr<Workload>> suite;
    std::uint32_t id = first_pc_workload_id;
    auto add = [&](SynthPattern pattern, SynthParams p,
                   const char *variant = "") {
        p.pcWorkloadId = id++;
        suite.push_back(std::make_shared<SyntheticWorkload>(
            "spec06", pattern, p, variant));
    };

    // Footprints tuned against the 1.375 MB simulated LLC.
    SynthParams p;

    p.mainBytes = 16ull << 20;
    add(SynthPattern::StreamTriad, p);

    p = SynthParams{};
    p.mainBytes = 2ull << 20; // just past the LLC: RRIP's best case
    add(SynthPattern::ScanThrash, p);

    p = SynthParams{};
    p.mainBytes = 32ull << 20;
    p.hotBytes = 640ull << 10;
    p.hotFraction = 0.9;
    add(SynthPattern::HotCold, p);

    p = SynthParams{};
    p.mainBytes = 8ull << 20;
    add(SynthPattern::PointerChase, p);

    p.mainBytes = 6ull << 20;
    add(SynthPattern::Stencil2D, p);

    p = SynthParams{};
    p.mainBytes = 2ull << 20;
    p.hotBytes = 512ull << 10;
    add(SynthPattern::MixedPhase, p);

    p = SynthParams{};
    p.mainBytes = 16ull << 20;
    p.hotBytes = 512ull << 10;
    add(SynthPattern::DeadFill, p);

    p = SynthParams{};
    p.mainBytes = 8ull << 20;
    p.zipfSkew = 0.8;
    add(SynthPattern::GatherZipf, p);

    p = SynthParams{};
    p.mainBytes = 16ull << 20;
    add(SynthPattern::TreeSearch, p);

    p = SynthParams{};
    p.mainBytes = 512ull << 10;
    add(SynthPattern::SmallWs, p);

    // Policy-neutral members (cache-resident or purely streaming),
    // mirroring the majority of the real suite.
    p = SynthParams{};
    p.mainBytes = 384ull << 10;
    p.seed = 11;
    add(SynthPattern::SmallWs, p, "2");

    p = SynthParams{};
    p.mainBytes = 24ull << 20;
    p.seed = 12;
    add(SynthPattern::StreamTriad, p, "2");

    p = SynthParams{};
    p.mainBytes = 1ull << 20; // grid fits the L2+LLC
    add(SynthPattern::Stencil2D, p, "small");

    p = SynthParams{};
    p.mainBytes = 4ull << 20;
    p.hotBytes = 448ull << 10;
    p.hotFraction = 0.97; // nearly resident
    add(SynthPattern::HotCold, p, "resident");

    return suite;
}

std::vector<std::shared_ptr<Workload>>
makeSpec17Suite(std::uint32_t first_pc_workload_id)
{
    std::vector<std::shared_ptr<Workload>> suite;
    std::uint32_t id = first_pc_workload_id;
    auto add = [&](SynthPattern pattern, SynthParams p,
                   const char *variant = "") {
        p.pcWorkloadId = id++;
        p.seed ^= 0x2017;
        suite.push_back(std::make_shared<SyntheticWorkload>(
            "spec17", pattern, p, variant));
    };

    // The 2017 refresh grew working sets; same classes, bigger and
    // more skewed.
    SynthParams p;

    p.mainBytes = 48ull << 20;
    add(SynthPattern::StreamTriad, p);

    p = SynthParams{};
    p.mainBytes = 3ull << 20;
    add(SynthPattern::ScanThrash, p);

    p = SynthParams{};
    p.mainBytes = 64ull << 20;
    p.hotBytes = 1024ull << 10;
    p.hotFraction = 0.85;
    add(SynthPattern::HotCold, p);

    p = SynthParams{};
    p.mainBytes = 24ull << 20;
    add(SynthPattern::PointerChase, p);

    p.mainBytes = 16ull << 20;
    add(SynthPattern::Stencil2D, p);

    p = SynthParams{};
    p.mainBytes = 3ull << 20;
    p.hotBytes = 768ull << 10;
    p.phaseOps = 1ull << 19;
    add(SynthPattern::MixedPhase, p);

    p = SynthParams{};
    p.mainBytes = 32ull << 20;
    p.hotBytes = 896ull << 10;
    add(SynthPattern::DeadFill, p);

    p = SynthParams{};
    p.mainBytes = 24ull << 20;
    p.zipfSkew = 1.05;
    add(SynthPattern::GatherZipf, p);

    p = SynthParams{};
    p.mainBytes = 40ull << 20;
    add(SynthPattern::TreeSearch, p);

    p = SynthParams{};
    p.mainBytes = 768ull << 10;
    add(SynthPattern::SmallWs, p);

    // Policy-neutral members.
    p = SynthParams{};
    p.mainBytes = 256ull << 10;
    p.seed = 21;
    add(SynthPattern::SmallWs, p, "2");

    p = SynthParams{};
    p.mainBytes = 64ull << 20;
    p.seed = 22;
    add(SynthPattern::StreamTriad, p, "2");

    p = SynthParams{};
    p.mainBytes = (1280ull) << 10;
    add(SynthPattern::Stencil2D, p, "small");

    p = SynthParams{};
    p.mainBytes = 6ull << 20;
    p.hotBytes = 512ull << 10;
    p.hotFraction = 0.97;
    add(SynthPattern::HotCold, p, "resident");

    return suite;
}

} // namespace cachescope
