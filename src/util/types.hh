/**
 * @file
 * Fundamental scalar types shared across all CacheScope modules.
 */

#ifndef CACHESCOPE_UTIL_TYPES_HH
#define CACHESCOPE_UTIL_TYPES_HH

#include <cstdint>

namespace cachescope {

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** A simulated CPU cycle count. */
using Cycle = std::uint64_t;

/** A retired-instruction count. */
using InstCount = std::uint64_t;

/** Program-counter value of the instruction performing an access. */
using Pc = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = ~Addr{0};

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kInvalidCycle = ~Cycle{0};

} // namespace cachescope

#endif // CACHESCOPE_UTIL_TYPES_HH
