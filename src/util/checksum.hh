/**
 * @file
 * Streaming 64-bit checksum for trace-file integrity.
 *
 * FNV-1a over the byte stream with an xxhash-style avalanche finisher,
 * so single-bit flips anywhere in a multi-gigabyte trace change the
 * digest with overwhelming probability. Not cryptographic — it guards
 * against truncation and bit rot, not adversaries.
 */

#ifndef CACHESCOPE_UTIL_CHECKSUM_HH
#define CACHESCOPE_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace cachescope {

class Checksum64
{
  public:
    /**
     * FNV-1a 64-bit offset basis — the initial state of every
     * Checksum64. Pinned as part of the on-disk trace format: traces
     * written by one build must verify identically under every other,
     * so this value (and the update/finisher math below) must never
     * change without bumping the trace-format version.
     */
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;

    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        std::uint64_t h = state;
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull; // FNV-1a prime
        }
        state = h;
    }

    /** @return the digest of everything update()d so far. */
    std::uint64_t
    digest() const
    {
        std::uint64_t h = state;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        return h;
    }

    void reset() { state = kOffsetBasis; }

  private:
    std::uint64_t state = kOffsetBasis;
};

} // namespace cachescope

#endif // CACHESCOPE_UTIL_CHECKSUM_HH
