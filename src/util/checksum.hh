/**
 * @file
 * Streaming 64-bit checksum for trace-file integrity.
 *
 * FNV-1a over the byte stream with an xxhash-style avalanche finisher,
 * so single-bit flips anywhere in a multi-gigabyte trace change the
 * digest with overwhelming probability. Not cryptographic — it guards
 * against truncation and bit rot, not adversaries.
 */

#ifndef CACHESCOPE_UTIL_CHECKSUM_HH
#define CACHESCOPE_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace cachescope {

class Checksum64
{
  public:
    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        std::uint64_t h = state;
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull; // FNV-1a prime
        }
        state = h;
    }

    /** @return the digest of everything update()d so far. */
    std::uint64_t
    digest() const
    {
        std::uint64_t h = state;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        return h;
    }

    void reset() { state = kSeed; }

  private:
    static constexpr std::uint64_t kSeed = 0xcbf29ce484222325ull;
    std::uint64_t state = kSeed;
};

} // namespace cachescope

#endif // CACHESCOPE_UTIL_CHECKSUM_HH
