/**
 * @file
 * Streaming 64-bit checksum for trace-file integrity.
 *
 * FNV-1a over the byte stream with an xxhash-style avalanche finisher,
 * so single-bit flips anywhere in a multi-gigabyte trace change the
 * digest with overwhelming probability. Not cryptographic — it guards
 * against truncation and bit rot, not adversaries.
 */

#ifndef CACHESCOPE_UTIL_CHECKSUM_HH
#define CACHESCOPE_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace cachescope {

class Checksum64
{
  public:
    /**
     * FNV-1a 64-bit offset basis — the initial state of every
     * Checksum64. Pinned as part of the on-disk trace format: traces
     * written by one build must verify identically under every other,
     * so this value (and the update/finisher math below) must never
     * change without bumping the trace-format version.
     */
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;

    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        std::uint64_t h = state;
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull; // FNV-1a prime
        }
        state = h;
    }

    /** @return the digest of everything update()d so far. */
    std::uint64_t
    digest() const
    {
        std::uint64_t h = state;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        return h;
    }

    void reset() { state = kOffsetBasis; }

  private:
    std::uint64_t state = kOffsetBasis;
};

/**
 * Eight-lane interleaved FNV-1a (trace format v3).
 *
 * Byte j of the stream feeds lane (j mod 8); each lane is an
 * independent serial FNV-1a chain, so the CPU keeps eight multiplies
 * in flight instead of waiting on one — several times the digest
 * bandwidth of Checksum64 on a single core, with the same bit-rot
 * detection properties. digest() folds the lane states and the total
 * length through the same avalanche finisher.
 *
 * Like Checksum64, every constant and the update/fold math below are
 * pinned as part of the on-disk trace format: changing any of it
 * requires a trace-format version bump.
 */
class Checksum64x8
{
  public:
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    /** Distinct per-lane seeds so lane permutations change the digest. */
    static constexpr std::uint64_t
    laneSeed(unsigned lane)
    {
        return Checksum64::kOffsetBasis ^
               (0x9e3779b97f4a7c15ull * (lane + 1));
    }

    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        std::size_t i = 0;
        // Realign to lane 0. Trace records are 24 B, so in practice
        // every chunk is 8-byte aligned and this peel never runs.
        while ((off_ & 7) != 0 && i < len) {
            lane_[off_ & 7] = (lane_[off_ & 7] ^ p[i]) * kPrime;
            ++off_;
            ++i;
        }
        std::uint64_t s0 = lane_[0], s1 = lane_[1], s2 = lane_[2],
                      s3 = lane_[3], s4 = lane_[4], s5 = lane_[5],
                      s6 = lane_[6], s7 = lane_[7];
        const std::size_t fast_start = i;
        for (; i + 8 <= len; i += 8) {
            s0 = (s0 ^ p[i + 0]) * kPrime;
            s1 = (s1 ^ p[i + 1]) * kPrime;
            s2 = (s2 ^ p[i + 2]) * kPrime;
            s3 = (s3 ^ p[i + 3]) * kPrime;
            s4 = (s4 ^ p[i + 4]) * kPrime;
            s5 = (s5 ^ p[i + 5]) * kPrime;
            s6 = (s6 ^ p[i + 6]) * kPrime;
            s7 = (s7 ^ p[i + 7]) * kPrime;
        }
        lane_[0] = s0, lane_[1] = s1, lane_[2] = s2, lane_[3] = s3;
        lane_[4] = s4, lane_[5] = s5, lane_[6] = s6, lane_[7] = s7;
        off_ += i - fast_start;
        while (i < len) {
            lane_[off_ & 7] = (lane_[off_ & 7] ^ p[i]) * kPrime;
            ++off_;
            ++i;
        }
    }

    /** @return the digest of everything update()d so far. */
    std::uint64_t
    digest() const
    {
        std::uint64_t h = Checksum64::kOffsetBasis;
        for (std::uint64_t s : lane_)
            h = (h ^ s) * kPrime;
        h ^= off_; // length matters: "ab" and "ab\0" must differ
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        return h;
    }

    void reset() { *this = Checksum64x8(); }

  private:
    std::uint64_t lane_[8] = {laneSeed(0), laneSeed(1), laneSeed(2),
                              laneSeed(3), laneSeed(4), laneSeed(5),
                              laneSeed(6), laneSeed(7)};
    /** Total bytes consumed; (off_ & 7) is the next byte's lane. */
    std::uint64_t off_ = 0;
};

} // namespace cachescope

#endif // CACHESCOPE_UTIL_CHECKSUM_HH
