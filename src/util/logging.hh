/**
 * @file
 * Error-reporting and status-message helpers, following the gem5
 * fatal/panic convention.
 *
 * panic() flags an internal simulator bug (aborts, may dump core);
 * fatal() flags a user error such as a bad configuration (clean exit(1));
 * warn() and inform() emit non-fatal status messages on stderr.
 */

#ifndef CACHESCOPE_UTIL_LOGGING_HH
#define CACHESCOPE_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace cachescope {

/**
 * Abort the process because of an internal invariant violation.
 *
 * Use only for conditions that indicate a bug in CacheScope itself,
 * never for user mistakes.
 *
 * @param fmt printf-style format string followed by its arguments.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate the process because of an unrecoverable user error
 * (bad configuration, invalid arguments, unusable input file).
 *
 * @param fmt printf-style format string followed by its arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assertion macro for simulator invariants that also fires in release
 * builds. Prefer this over assert() for conditions whose violation
 * would silently corrupt simulation statistics.
 */
#define CS_ASSERT(cond, msg)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::cachescope::panic("assertion '%s' failed at %s:%d: %s",     \
                                #cond, __FILE__, __LINE__, (msg));        \
        }                                                                 \
    } while (0)

} // namespace cachescope

#endif // CACHESCOPE_UTIL_LOGGING_HH
