/**
 * @file
 * Status implementation: code names and printf-style constructors.
 */

#include "util/status.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace cachescope {

namespace {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed <= 0)
        return "";
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

} // anonymous namespace

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::InvalidArgument: return "invalid_argument";
      case StatusCode::NotFound: return "not_found";
      case StatusCode::IoError: return "io_error";
      case StatusCode::Corruption: return "corruption";
      case StatusCode::Internal: return "internal";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

#define CS_STATUS_CTOR(fn, code)                                          \
    Status fn(const char *fmt, ...)                                       \
    {                                                                     \
        std::va_list args;                                                \
        va_start(args, fmt);                                              \
        std::string msg = vformat(fmt, args);                             \
        va_end(args);                                                     \
        return Status(StatusCode::code, std::move(msg));                  \
    }

CS_STATUS_CTOR(invalidArgumentError, InvalidArgument)
CS_STATUS_CTOR(notFoundError, NotFound)
CS_STATUS_CTOR(ioError, IoError)
CS_STATUS_CTOR(corruptionError, Corruption)
CS_STATUS_CTOR(internalError, Internal)

#undef CS_STATUS_CTOR

} // namespace cachescope
