/**
 * @file
 * Saturating counters, the workhorse state element of branch predictors
 * and reuse predictors alike.
 */

#ifndef CACHESCOPE_UTIL_SAT_COUNTER_HH
#define CACHESCOPE_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace cachescope {

/**
 * An unsigned saturating counter of a run-time-configurable bit width.
 *
 * Increment saturates at 2^bits - 1, decrement saturates at 0.
 */
class SatCounter
{
  public:
    /**
     * @param num_bits counter width in bits (1..31).
     * @param initial initial value, clamped to the representable range.
     */
    explicit SatCounter(unsigned num_bits = 2, std::uint32_t initial = 0)
        : maxValue((std::uint32_t{1} << num_bits) - 1),
          value(initial > maxValue ? maxValue : initial)
    {
        CS_ASSERT(num_bits >= 1 && num_bits <= 31, "bad counter width");
    }

    /** Saturating increment. */
    void increment() { if (value < maxValue) ++value; }

    /** Saturating decrement. */
    void decrement() { if (value > 0) --value; }

    /** @return the raw counter value. */
    std::uint32_t get() const { return value; }

    /** Overwrite the counter, clamping to the representable range. */
    void set(std::uint32_t v) { value = v > maxValue ? maxValue : v; }

    /** @return the saturation ceiling (2^bits - 1). */
    std::uint32_t max() const { return maxValue; }

    /** @return true iff the counter is in its upper half (weakly "taken"). */
    bool isHigh() const { return value > maxValue / 2; }

    /** @return true iff the counter is saturated at its maximum. */
    bool isMax() const { return value == maxValue; }

    /** @return true iff the counter is saturated at zero. */
    bool isMin() const { return value == 0; }

  private:
    std::uint32_t maxValue;
    std::uint32_t value;
};

/**
 * A signed saturating weight clamped to [-limit, +limit], as used by
 * perceptron-style predictors (MPPPB, Glider's ISVM).
 */
class SignedSatWeight
{
  public:
    explicit SignedSatWeight(std::int32_t limit = 31, std::int32_t initial = 0)
        : bound(limit), value(clamp(initial))
    {
        CS_ASSERT(limit > 0, "weight bound must be positive");
    }

    /** Add @p delta with saturation. */
    void
    add(std::int32_t delta)
    {
        value = clamp(value + delta);
    }

    /** Move one step toward +limit. */
    void increment() { add(1); }

    /** Move one step toward -limit. */
    void decrement() { add(-1); }

    std::int32_t get() const { return value; }
    std::int32_t limit() const { return bound; }
    bool isSaturated() const { return value == bound || value == -bound; }

  private:
    std::int32_t
    clamp(std::int32_t v) const
    {
        if (v > bound)
            return bound;
        if (v < -bound)
            return -bound;
        return v;
    }

    std::int32_t bound;
    std::int32_t value;
};

} // namespace cachescope

#endif // CACHESCOPE_UTIL_SAT_COUNTER_HH
