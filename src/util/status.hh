/**
 * @file
 * Recoverable-error types.
 *
 * The logging layer's fatal()/panic() terminate the process, which is
 * the right call for internal invariants but not for user input: a
 * mistyped policy name or a truncated trace file must not kill a sweep
 * that has hours of completed cells behind it. Library code that
 * validates user input therefore reports failures through Status (an
 * error code plus a human-readable message) or Expected<T> (a value or
 * a Status), and only the outermost layer decides whether to abort,
 * retry, or record the failure and move on.
 */

#ifndef CACHESCOPE_UTIL_STATUS_HH
#define CACHESCOPE_UTIL_STATUS_HH

#include <string>
#include <utility>

#include "util/logging.hh"

namespace cachescope {

/** Coarse classification of recoverable failures. */
enum class StatusCode
{
    Ok = 0,
    /** Malformed user input: bad flag value, invalid geometry, ... */
    InvalidArgument,
    /** A name was not found in a registry (policy, workload, suite). */
    NotFound,
    /** The operating system refused an open/read/write/close. */
    IoError,
    /** Data failed an integrity check (bad magic, checksum, count). */
    Corruption,
    /** An escaped exception or other internal failure. */
    Internal,
};

/** @return a stable lowercase name for @p code ("io_error", ...). */
const char *statusCodeName(StatusCode code);

/**
 * An error code plus message. Default-constructed Status is success.
 *
 * Marked [[nodiscard]] so dropped errors are compile-time visible.
 */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** @return "ok" or "<code>: <message>". */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** printf-style constructors for each error code. */
Status invalidArgumentError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status notFoundError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status ioError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status corruptionError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status internalError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * A value of type T or the Status explaining why there is none.
 *
 * T must be default-constructible and movable (true of every type this
 * codebase returns: smart pointers, integers, vectors).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    /** Success (implicit, so `return value;` works). */
    Expected(T value) : value_(std::move(value)) {}

    /** Failure (implicit, so `return someStatus;` works). */
    Expected(Status status) : status_(std::move(status))
    {
        CS_ASSERT(!status_.ok(), "Expected built from an OK status");
    }

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    const T &value() const
    {
        CS_ASSERT(ok(), "value() on an errored Expected");
        return value_;
    }

    T &value()
    {
        CS_ASSERT(ok(), "value() on an errored Expected");
        return value_;
    }

    /** Move the value out (the Expected is dead afterwards). */
    T take()
    {
        CS_ASSERT(ok(), "take() on an errored Expected");
        return std::move(value_);
    }

    const T &operator*() const { return value(); }
    T &operator*() { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    Status status_;
    T value_{};
};

/** Propagate a non-OK Status out of the enclosing function. */
#define CS_TRY(expr)                                                      \
    do {                                                                  \
        ::cachescope::Status cs_try_status_ = (expr);                     \
        if (!cs_try_status_.ok())                                         \
            return cs_try_status_;                                        \
    } while (0)

#define CS_TRY_CONCAT_(a, b) a##b
#define CS_TRY_CONCAT(a, b) CS_TRY_CONCAT_(a, b)

/**
 * Evaluate @p expr (an Expected<T>); on error return its Status, on
 * success move the value into @p lhs (a declaration or an lvalue).
 *
 *   CS_TRY_ASSIGN(auto reader, TraceReader::open(path));
 */
#define CS_TRY_ASSIGN(lhs, expr)                                          \
    CS_TRY_ASSIGN_IMPL_(CS_TRY_CONCAT(cs_try_exp_, __COUNTER__), lhs,     \
                        expr)

#define CS_TRY_ASSIGN_IMPL_(tmp, lhs, expr)                               \
    auto tmp = (expr);                                                    \
    if (!tmp.ok())                                                        \
        return tmp.status();                                              \
    lhs = tmp.take()

} // namespace cachescope

#endif // CACHESCOPE_UTIL_STATUS_HH
