/**
 * @file
 * xoshiro256** implementation.
 */

#include "util/rng.hh"

#include <cmath>

namespace cachescope {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    if (s <= 0.0)
        return nextBounded(n);
    // Inverse-CDF sampling from the continuous power-law approximation
    // of the Zipf distribution over [1, n]: fast, seed-deterministic,
    // and accurate enough to model hot-vertex access skew.
    const double u = nextDouble();
    double v;
    if (s == 1.0) {
        v = std::exp(u * std::log(static_cast<double>(n)));
    } else {
        const double one_minus_s = 1.0 - s;
        const double nn = std::pow(static_cast<double>(n), one_minus_s);
        v = std::pow(u * (nn - 1.0) + 1.0, 1.0 / one_minus_s);
    }
    std::uint64_t idx = static_cast<std::uint64_t>(v) - 1;
    return idx >= n ? n - 1 : idx;
}

} // namespace cachescope
