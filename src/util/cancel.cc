/**
 * @file
 * Cooperative-cancellation implementation.
 */

#include "util/cancel.hh"

namespace cachescope {

namespace {

thread_local const CancelToken *tl_current_token = nullptr;

} // anonymous namespace

const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None: return "none";
      case CancelReason::CellDeadline: return "cell_deadline";
      case CancelReason::SweepDeadline: return "sweep_deadline";
      case CancelReason::Signal: return "signal";
    }
    return "unknown";
}

CancelledError::CancelledError(CancelReason reason) : reason_(reason)
{
    // Static strings only: the harness formats these into CellOutcome
    // errors, and tests grep for the stable "cancelled:" prefix.
    switch (reason) {
      case CancelReason::CellDeadline:
        message = "cancelled: cell wall-clock timeout exceeded";
        break;
      case CancelReason::SweepDeadline:
        message = "cancelled: sweep deadline exceeded";
        break;
      case CancelReason::Signal:
        message = "cancelled: termination requested (signal)";
        break;
      default:
        message = "cancelled";
        break;
    }
}

CancelScope::CancelScope(const CancelToken *token)
    : previous(tl_current_token)
{
    tl_current_token = token;
}

CancelScope::~CancelScope()
{
    tl_current_token = previous;
}

const CancelToken *
currentCancelToken() noexcept
{
    return tl_current_token;
}

} // namespace cachescope
