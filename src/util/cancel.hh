/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is a shared flag that long loops poll at safe points.
 * Cancellation is *cooperative*: nothing is interrupted mid-operation,
 * so data structures are never torn — the polling code observes the
 * request and unwinds by throwing CancelledError, which the harness
 * converts into a failed CellOutcome instead of a hung or killed
 * process.
 *
 * Three request paths feed a token:
 *  - requestCancel(): an explicit request, e.g. from a SIGINT/SIGTERM
 *    handler. The store is a lock-free atomic, so it is
 *    async-signal-safe.
 *  - a deadline: setDeadline() arms a steady_clock time point; the
 *    first cancelled() call at or past it latches the token. This is
 *    how per-cell (--cell-timeout-s) and whole-sweep (--deadline-s)
 *    watchdog budgets reap overruns.
 *  - a parent token: cell tokens chain to the sweep token, so one
 *    sweep-wide request cancels every in-flight cell.
 *
 * All timing uses std::chrono::steady_clock — deadlines must survive
 * wall-clock adjustments (NTP slew, DST) on multi-hour campaigns.
 */

#ifndef CACHESCOPE_UTIL_CANCEL_HH
#define CACHESCOPE_UTIL_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>

namespace cachescope {

/** Why a token was cancelled (ordered by escalation priority). */
enum class CancelReason : int
{
    None = 0,
    /** The per-cell wall-clock budget (--cell-timeout-s) expired. */
    CellDeadline,
    /** The whole-sweep wall-clock budget (--deadline-s) expired. */
    SweepDeadline,
    /** An external request, e.g. a SIGINT/SIGTERM handler. */
    Signal,
};

/** @return a stable lowercase name ("cell_deadline", ...). */
const char *cancelReasonName(CancelReason reason);

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /**
     * Request cancellation. Lock-free atomic store: safe to call from
     * a signal handler (on every platform this project targets,
     * std::atomic<int> is lock-free). The first reason wins.
     */
    void
    requestCancel(CancelReason reason) noexcept
    {
        int expected = 0;
        reason_.compare_exchange_strong(expected,
                                        static_cast<int>(reason),
                                        std::memory_order_relaxed);
    }

    /**
     * Arm a deadline: cancelled() latches @p reason once steady time
     * reaches @p deadline. Call before sharing the token with workers.
     */
    void
    setDeadline(Clock::time_point deadline, CancelReason reason)
    {
        deadlineNs_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          deadline.time_since_epoch())
                          .count();
        deadlineReason_ = reason;
    }

    /** Chain to @p parent: its cancellation also cancels this token. */
    void setParent(const CancelToken *parent) { parent_ = parent; }

    /**
     * Poll. Checks, in order: this token's latched reason, its armed
     * deadline (latching on first observation), and the parent chain.
     */
    bool
    cancelled() const noexcept
    {
        if (reason_.load(std::memory_order_relaxed) != 0)
            return true;
        if (deadlineNs_ != 0 &&
            Clock::now().time_since_epoch() >=
                std::chrono::nanoseconds(deadlineNs_)) {
            int expected = 0;
            reason_.compare_exchange_strong(
                expected, static_cast<int>(deadlineReason_),
                std::memory_order_relaxed);
            return true;
        }
        return parent_ && parent_->cancelled();
    }

    /** The latched reason (the parent's if only the parent fired). */
    CancelReason
    reason() const noexcept
    {
        const int r = reason_.load(std::memory_order_relaxed);
        if (r != 0)
            return static_cast<CancelReason>(r);
        return parent_ ? parent_->reason() : CancelReason::None;
    }

  private:
    /** 0 = not cancelled; otherwise the latched CancelReason. */
    mutable std::atomic<int> reason_{0};
    /** Steady-clock deadline in ns since epoch; 0 = no deadline. */
    std::int64_t deadlineNs_ = 0;
    CancelReason deadlineReason_ = CancelReason::None;
    const CancelToken *parent_ = nullptr;
};

/**
 * Thrown by polling points (the simulator's instruction loop) when
 * their token is cancelled. The harness catches it separately from
 * std::exception so cancellations are never retried.
 */
class CancelledError : public std::exception
{
  public:
    explicit CancelledError(CancelReason reason);
    const char *what() const noexcept override { return message; }
    CancelReason reason() const noexcept { return reason_; }

  private:
    CancelReason reason_;
    const char *message;
};

/**
 * RAII registration of the calling thread's "current" token, so deep
 * layers without a token parameter (e.g. the failpoint sleep action)
 * can still honour cancellation. Scopes nest; each thread sees its own.
 */
class CancelScope
{
  public:
    explicit CancelScope(const CancelToken *token);
    ~CancelScope();

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    const CancelToken *previous;
};

/** @return the innermost CancelScope token, or nullptr. */
const CancelToken *currentCancelToken() noexcept;

} // namespace cachescope

#endif // CACHESCOPE_UTIL_CANCEL_HH
