/**
 * @file
 * Failpoint registry, spec parsing, and trigger evaluation.
 */

#include "util/failpoint.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/cancel.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "util/rng.hh"

namespace cachescope {
namespace failpoint {

namespace detail {
std::atomic<bool> g_any_armed{false};
} // namespace detail

namespace {

/**
 * Every instrumented site in the binary. configure() validates spec
 * names against this list, and hit() asserts membership, so the list
 * cannot silently drift from the instrumentation.
 */
const std::vector<std::string> kKnownSites = {
    "checkpoint.append",
    "checkpoint.open",
    "checkpoint.replay",
    "harness.cell.attempt",
    "metrics.json.write",
    "sim.build.alloc",
    "sim.loop",
    "trace.finalize",
    "trace.open.read",
    "trace.open.write",
    "trace.read.header",
    "trace.read.record",
    "trace.write.header",
    "trace.write.record",
};

enum class Trigger { Off, Always, Hit, Every, Prob };
enum class Action { Error, Throw, Sleep, Abort };

struct Schedule
{
    Trigger trigger = Trigger::Off;
    Action action = Action::Error;
    std::uint64_t n = 0;      ///< hit()/every() ordinal
    double probability = 0.0; ///< prob() chance per hit
    Rng rng{0};               ///< prob() per-site deterministic stream
    std::uint64_t sleepMs = 0;
};

struct SiteState
{
    Schedule schedule;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

/** Guards the site map; only armed runs ever contend on it. */
std::mutex g_mutex;
std::map<std::string, SiteState> g_sites;

bool
isKnownSite(const std::string &name)
{
    return std::binary_search(kKnownSites.begin(), kKnownSites.end(),
                              name);
}

/** FNV-1a over the site name, to decorrelate per-site prob() streams. */
std::uint64_t
siteHash(const std::string &site)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : site) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Parse "name(arg[,arg])" into its pieces. @return false if @p text
 * does not have the shape keyword '(' ... ')'.
 */
bool
splitCall(const std::string &text, std::string &name,
          std::vector<std::string> &args)
{
    const std::size_t open = text.find('(');
    if (open == std::string::npos || text.back() != ')')
        return false;
    name = text.substr(0, open);
    const std::string inner =
        text.substr(open + 1, text.size() - open - 2);
    args.clear();
    std::size_t pos = 0;
    while (pos <= inner.size()) {
        const std::size_t comma = inner.find(',', pos);
        args.push_back(inner.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

Expected<Schedule>
parseTrigger(const std::string &site, const std::string &text)
{
    Schedule sched;
    if (text == "off") {
        sched.trigger = Trigger::Off;
        return sched;
    }
    if (text == "always") {
        sched.trigger = Trigger::Always;
        return sched;
    }
    std::string name;
    std::vector<std::string> args;
    if (!splitCall(text, name, args)) {
        return invalidArgumentError(
            "failpoint '%s': unknown trigger '%s' (expected off, "
            "always, hit(N), every(N), or prob(P[,SEED]))",
            site.c_str(), text.c_str());
    }
    if (name == "hit" || name == "every") {
        if (args.size() != 1) {
            return invalidArgumentError(
                "failpoint '%s': %s() takes exactly one argument",
                site.c_str(), name.c_str());
        }
        CS_TRY_ASSIGN(sched.n, parseU64(args[0]));
        if (sched.n == 0) {
            return invalidArgumentError(
                "failpoint '%s': %s(N) needs N >= 1", site.c_str(),
                name.c_str());
        }
        sched.trigger = name == "hit" ? Trigger::Hit : Trigger::Every;
        return sched;
    }
    if (name == "prob") {
        if (args.empty() || args.size() > 2) {
            return invalidArgumentError(
                "failpoint '%s': prob() takes one or two arguments",
                site.c_str());
        }
        CS_TRY_ASSIGN(sched.probability, parseF64NonNegative(args[0]));
        if (sched.probability > 1.0) {
            return invalidArgumentError(
                "failpoint '%s': probability %s is not in [0, 1]",
                site.c_str(), args[0].c_str());
        }
        std::uint64_t seed = 0x9E3779B97F4A7C15ull;
        if (args.size() == 2) {
            CS_TRY_ASSIGN(seed, parseU64(args[1]));
        }
        sched.rng = Rng(seed ^ siteHash(site));
        sched.trigger = Trigger::Prob;
        return sched;
    }
    return invalidArgumentError("failpoint '%s': unknown trigger '%s'",
                                site.c_str(), text.c_str());
}

Status
parseAction(const std::string &site, const std::string &text,
            Schedule &sched)
{
    if (text == "error") {
        sched.action = Action::Error;
        return Status();
    }
    if (text == "throw") {
        sched.action = Action::Throw;
        return Status();
    }
    if (text == "abort") {
        sched.action = Action::Abort;
        return Status();
    }
    std::string name;
    std::vector<std::string> args;
    if (splitCall(text, name, args) && name == "sleep") {
        if (args.size() != 1) {
            return invalidArgumentError(
                "failpoint '%s': sleep() takes exactly one argument",
                site.c_str());
        }
        CS_TRY_ASSIGN(sched.sleepMs, parseU64(args[0]));
        sched.action = Action::Sleep;
        return Status();
    }
    return invalidArgumentError(
        "failpoint '%s': unknown action '%s' (expected error, throw, "
        "sleep(MS), or abort)",
        site.c_str(), text.c_str());
}

/**
 * Perform a fired schedule's action. Runs outside the registry lock
 * (sleeps must not serialize other sites).
 */
Status
performAction(const char *site, Action action, std::uint64_t sleep_ms)
{
    switch (action) {
      case Action::Error:
        return ioError("injected failure at failpoint '%s'", site);
      case Action::Throw:
        throw FailpointError(
            std::string("injected failure at failpoint '") + site +
            "' (throw action)");
      case Action::Abort:
        // Simulated hard kill: no flushing, no destructors, so
        // half-written files are left exactly as a real SIGKILL or
        // power loss would leave them.
        std::_Exit(kAbortExitCode);
      case Action::Sleep: {
        // Cooperative stall: sleep in slices, waking early if the
        // thread's CancelToken fires, so --cell-timeout-s can reap a
        // deliberately hung cell.
        using namespace std::chrono;
        const auto end =
            steady_clock::now() + milliseconds(sleep_ms);
        const CancelToken *token = currentCancelToken();
        while (steady_clock::now() < end) {
            if (token && token->cancelled())
                break;
            std::this_thread::sleep_for(milliseconds(5));
        }
        return Status();
      }
    }
    return Status();
}

} // anonymous namespace

Status
configure(const std::string &spec)
{
    std::map<std::string, SiteState> parsed;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t semi = spec.find(';', pos);
        const std::string entry = spec.substr(
            pos, semi == std::string::npos ? semi : semi - pos);
        pos = semi == std::string::npos ? spec.size() : semi + 1;
        if (entry.empty())
            continue;

        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
            return invalidArgumentError(
                "failpoint entry '%s' is missing '='", entry.c_str());
        }
        const std::string site = entry.substr(0, eq);
        if (!isKnownSite(site)) {
            std::string known;
            for (const auto &s : kKnownSites)
                known += (known.empty() ? "" : " ") + s;
            return invalidArgumentError(
                "unknown failpoint site '%s' (known sites: %s)",
                site.c_str(), known.c_str());
        }

        // Split "trigger[:action]". ':' cannot appear inside trigger
        // arguments (they are integers/decimals), so the first ':'
        // after the trigger is the separator.
        std::string rest = entry.substr(eq + 1);
        std::string trigger_text = rest;
        std::string action_text = "error";
        const std::size_t colon = rest.find(':');
        if (colon != std::string::npos) {
            trigger_text = rest.substr(0, colon);
            action_text = rest.substr(colon + 1);
        }

        CS_TRY_ASSIGN(Schedule sched, parseTrigger(site, trigger_text));
        CS_TRY(parseAction(site, action_text, sched));
        parsed[site].schedule = sched;
    }

    bool any_armed = false;
    for (const auto &[site, state] : parsed)
        any_armed |= state.schedule.trigger != Trigger::Off;

    std::lock_guard<std::mutex> lock(g_mutex);
    g_sites = std::move(parsed);
    detail::g_any_armed.store(any_armed, std::memory_order_relaxed);
    return Status();
}

Status
configureFromEnv()
{
    const char *spec = std::getenv("CACHESCOPE_FAILPOINTS");
    if (!spec || !*spec)
        return Status();
    return configure(spec);
}

void
reset()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_sites.clear();
    detail::g_any_armed.store(false, std::memory_order_relaxed);
}

Status
hit(const char *site)
{
    if (!anyArmed())
        return Status();
    Action action = Action::Error;
    std::uint64_t sleep_ms = 0;
    bool fired = false;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        CS_ASSERT(isKnownSite(site),
                  "failpoint site is missing from kKnownSites");
        SiteState &state = g_sites[site]; // counts even un-armed sites
        ++state.hits;
        Schedule &sched = state.schedule;
        switch (sched.trigger) {
          case Trigger::Off:
            break;
          case Trigger::Always:
            fired = true;
            break;
          case Trigger::Hit:
            fired = state.hits == sched.n;
            break;
          case Trigger::Every:
            fired = state.hits % sched.n == 0;
            break;
          case Trigger::Prob:
            fired = sched.rng.nextBool(sched.probability);
            break;
        }
        if (fired) {
            ++state.fires;
            action = sched.action;
            sleep_ms = sched.sleepMs;
        }
    }
    if (!fired)
        return Status();
    return performAction(site, action, sleep_ms);
}

void
hitOrThrow(const char *site)
{
    if (Status s = hit(site); !s.ok())
        throw FailpointError(s.message());
}

const std::vector<std::string> &
knownSites()
{
    return kKnownSites;
}

std::uint64_t
hitCount(const std::string &site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.hits;
}

std::uint64_t
fireCount(const std::string &site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.fires;
}

} // namespace failpoint
} // namespace cachescope
