/**
 * @file
 * Small integer-math helpers used throughout the cache and DRAM models.
 */

#ifndef CACHESCOPE_UTIL_INTMATH_HH
#define CACHESCOPE_UTIL_INTMATH_HH

#include <bit>
#include <cstdint>

namespace cachescope {

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** @return ceil(log2(v)); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v == 1 ? 0u : floorLog2(v - 1) + 1;
}

/** @return @p v rounded up to the next multiple of @p align (power of 2). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of @p v, right-justified. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    const std::uint64_t mask =
        hi >= 63 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (hi + 1)) - 1);
    return (v & mask) >> lo;
}

/**
 * Fold a 64-bit value down to @p width bits by XOR-ing successive
 * @p width -bit chunks together. Used to build table indices and
 * signatures from PCs and addresses.
 */
constexpr std::uint64_t
foldXor(std::uint64_t v, unsigned width)
{
    std::uint64_t out = 0;
    while (v != 0) {
        out ^= v & ((std::uint64_t{1} << width) - 1);
        v >>= width;
    }
    return out;
}

} // namespace cachescope

#endif // CACHESCOPE_UTIL_INTMATH_HH
