/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use xoshiro256** rather than std::mt19937 because it is faster,
 * has a tiny state, and — critically for reproducibility — its output
 * sequence is fully specified here rather than delegated to the
 * standard library implementation.
 */

#ifndef CACHESCOPE_UTIL_RNG_HH
#define CACHESCOPE_UTIL_RNG_HH

#include <array>
#include <cstdint>

namespace cachescope {

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna), seeded via splitmix64
 * so that any 64-bit seed yields a well-mixed state.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** @return the next raw 64-bit output. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

    /** @return a uniform integer in [0, bound) using Lemire reduction. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool nextBool(double p) { return nextDouble() < p; }

    /**
     * @return a sample from a bounded discrete Zipf-like distribution
     * over [0, n), with skew parameter @p s (s = 0 gives uniform).
     * Implemented via inverse-CDF on a power-law approximation, which
     * is what graph degree distributions and hot-set accesses need.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

  private:
    std::array<std::uint64_t, 4> state;
};

} // namespace cachescope

#endif // CACHESCOPE_UTIL_RNG_HH
