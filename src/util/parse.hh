/**
 * @file
 * Strict string-to-number parsing for user-supplied values.
 *
 * std::strtoull silently returns 0 for garbage and accepts trailing
 * junk ("12abc" -> 12), so a typo like `--measure 5OOOOOO` used to run
 * a 5-instruction simulation without complaint. These helpers reject
 * anything that is not exactly one non-negative integer.
 */

#ifndef CACHESCOPE_UTIL_PARSE_HH
#define CACHESCOPE_UTIL_PARSE_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace cachescope {

/**
 * Parse @p text as a base-10 unsigned 64-bit integer.
 *
 * Rejects empty strings, signs, whitespace, trailing garbage, and
 * out-of-range values.
 */
Expected<std::uint64_t> parseU64(const std::string &text);

/**
 * Parse @p text as a non-negative base-10 decimal ("30", "1.5",
 * "2e-3"). Used for duration flags (--cell-timeout-s, --deadline-s)
 * and failpoint probabilities.
 *
 * Rejects empty strings, signs, whitespace, hex/inf/nan forms,
 * trailing garbage, and values that overflow to infinity.
 */
Expected<double> parseF64NonNegative(const std::string &text);

} // namespace cachescope

#endif // CACHESCOPE_UTIL_PARSE_HH
