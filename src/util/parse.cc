/**
 * @file
 * Strict numeric parsing implementation.
 */

#include "util/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace cachescope {

Expected<std::uint64_t>
parseU64(const std::string &text)
{
    if (text.empty())
        return invalidArgumentError("expected an unsigned integer, got ''");
    // strtoull tolerates leading whitespace and a sign (it even wraps
    // negatives); forbid both so "-1" and " 7" are rejected.
    if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
        return invalidArgumentError(
            "expected an unsigned integer, got '%s'", text.c_str());
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE) {
        return invalidArgumentError("value '%s' is out of range",
                                    text.c_str());
    }
    if (end != text.c_str() + text.size()) {
        return invalidArgumentError(
            "trailing garbage in integer '%s'", text.c_str());
    }
    return static_cast<std::uint64_t>(value);
}

Expected<double>
parseF64NonNegative(const std::string &text)
{
    if (text.empty())
        return invalidArgumentError("expected a non-negative number, got ''");
    // strtod accepts leading whitespace, signs, hex floats ("0x1p4"),
    // and inf/nan spellings; restrict the alphabet first so only plain
    // decimal forms (digits, one '.', one exponent) get through.
    if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
        return invalidArgumentError(
            "expected a non-negative number, got '%s'", text.c_str());
    }
    bool seen_point = false, seen_exp = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (std::isdigit(static_cast<unsigned char>(c)))
            continue;
        if (c == '.' && !seen_point && !seen_exp) {
            seen_point = true;
            continue;
        }
        if ((c == 'e' || c == 'E') && !seen_exp && i > 0) {
            seen_exp = true;
            // An optional sign may follow the exponent marker.
            if (i + 1 < text.size() &&
                (text[i + 1] == '+' || text[i + 1] == '-'))
                ++i;
            continue;
        }
        return invalidArgumentError(
            "malformed number '%s'", text.c_str());
    }
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
        return invalidArgumentError(
            "malformed number '%s'", text.c_str());
    }
    if (errno == ERANGE || !std::isfinite(value)) {
        return invalidArgumentError("value '%s' is out of range",
                                    text.c_str());
    }
    return value;
}

} // namespace cachescope
