/**
 * @file
 * Strict numeric parsing implementation.
 */

#include "util/parse.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace cachescope {

Expected<std::uint64_t>
parseU64(const std::string &text)
{
    if (text.empty())
        return invalidArgumentError("expected an unsigned integer, got ''");
    // strtoull tolerates leading whitespace and a sign (it even wraps
    // negatives); forbid both so "-1" and " 7" are rejected.
    if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
        return invalidArgumentError(
            "expected an unsigned integer, got '%s'", text.c_str());
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE) {
        return invalidArgumentError("value '%s' is out of range",
                                    text.c_str());
    }
    if (end != text.c_str() + text.size()) {
        return invalidArgumentError(
            "trailing garbage in integer '%s'", text.c_str());
    }
    return static_cast<std::uint64_t>(value);
}

} // namespace cachescope
