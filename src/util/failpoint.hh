/**
 * @file
 * Deterministic failpoint fault injection.
 *
 * A failpoint is a named site at an I/O or resource boundary
 * ("trace.write.record", "checkpoint.append", ...) that normally does
 * nothing. Tests, the chaos-soak driver, or a user armed with
 * `--failpoints=` / the CACHESCOPE_FAILPOINTS environment variable can
 * attach a *schedule* to any site, making it misbehave on purpose so
 * the recovery paths (Status propagation, per-cell fault isolation,
 * checkpoint resume) are exercised for real instead of trusted.
 *
 * Spec grammar (one string configures everything):
 *
 *   spec    := entry (';' entry)*
 *   entry   := site '=' trigger [ ':' action ]
 *   trigger := 'always' | 'off'
 *            | 'hit(N)'          fire exactly once, on the Nth hit
 *            | 'every(N)'        fire on every Nth hit
 *            | 'prob(P[,SEED])'  fire each hit with probability P,
 *                                 from a deterministic per-site RNG
 *   action  := 'error'           return an injected IoError (default)
 *            | 'throw'           throw FailpointError
 *            | 'sleep(MS)'       stall MS milliseconds (cooperatively:
 *                                 wakes early if the thread's
 *                                 CancelToken fires), then continue
 *            | 'abort'           _Exit(42) — a simulated hard kill
 *
 *   e.g. --failpoints='checkpoint.append=hit(3);sim.loop=prob(0.001,7):throw'
 *
 * Sites are compiled into a fixed registry (knownSites());
 * configure() rejects unknown names so a typo cannot silently arm
 * nothing. Hit counting is per-site and thread-safe; with the same
 * spec and the same execution, injection is deterministic.
 *
 * Cost when inactive: every site first checks one relaxed atomic
 * (anyArmed()); with no schedule configured that is the entire cost,
 * so production runs pay one predictable branch per site.
 */

#ifndef CACHESCOPE_UTIL_FAILPOINT_HH
#define CACHESCOPE_UTIL_FAILPOINT_HH

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.hh"

namespace cachescope {

/** Thrown by the 'throw' action and by hitOrThrow()'s 'error' action. */
class FailpointError : public std::runtime_error
{
  public:
    explicit FailpointError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace failpoint {

/** The process exit code of the 'abort' action (a simulated kill). */
inline constexpr int kAbortExitCode = 42;

namespace detail {
/** One relaxed load: the whole cost of an un-armed site. */
extern std::atomic<bool> g_any_armed;
} // namespace detail

/** @return true iff at least one site currently has a schedule. */
inline bool
anyArmed() noexcept
{
    return detail::g_any_armed.load(std::memory_order_relaxed);
}

/**
 * Replace all schedules with those parsed from @p spec (see the file
 * comment for the grammar). An empty spec disarms everything.
 * @return InvalidArgument for grammar errors or unknown site names;
 * on error the previous configuration is left untouched.
 */
Status configure(const std::string &spec);

/**
 * configure() from the CACHESCOPE_FAILPOINTS environment variable.
 * Absent/empty variable is a no-op success.
 */
Status configureFromEnv();

/** Disarm every site and zero all hit/fire counters. */
void reset();

/**
 * Evaluate @p site against its schedule, bumping its hit counter.
 * @return an injected IoError when an 'error' action fires; throws
 * FailpointError for 'throw'; stalls for 'sleep'; exits for 'abort';
 * OK otherwise. Un-armed sites only pay the anyArmed() load (callers
 * typically guard with it; hit() re-checks regardless).
 */
Status hit(const char *site);

/**
 * As hit(), but for contexts without a Status return path
 * (constructors, the simulation loop): a fired 'error' action becomes
 * a thrown FailpointError.
 */
void hitOrThrow(const char *site);

/** Every site name compiled into this binary, sorted. */
const std::vector<std::string> &knownSites();

/** Times @p site was evaluated since the last reset()/configure(). */
std::uint64_t hitCount(const std::string &site);

/** Times @p site's schedule fired since the last reset()/configure(). */
std::uint64_t fireCount(const std::string &site);

} // namespace failpoint

/**
 * Evaluate a failpoint site inside a function returning Status or
 * Expected<T>: a fired 'error' action propagates as the return value.
 */
#define CS_FAILPOINT(site)                                                \
    do {                                                                  \
        if (::cachescope::failpoint::anyArmed()) {                        \
            ::cachescope::Status cs_fp_status_ =                          \
                ::cachescope::failpoint::hit(site);                       \
            if (!cs_fp_status_.ok())                                      \
                return cs_fp_status_;                                     \
        }                                                                 \
    } while (0)

} // namespace cachescope

#endif // CACHESCOPE_UTIL_FAILPOINT_HH
