/**
 * @file
 * Prefetcher implementations.
 */

#include "prefetch/prefetcher.hh"

#include "stats/metrics.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope {

void
NextLinePrefetcher::onAccess(Addr block_addr, Pc, bool, std::vector<Addr> &out)
{
    for (unsigned i = 1; i <= degree; ++i)
        out.push_back(block_addr + i);
}

StridePrefetcher::StridePrefetcher(std::uint32_t table_entries,
                                   unsigned degree)
    : mask(table_entries - 1), degree(degree), table(table_entries)
{
    CS_ASSERT(isPowerOf2(table_entries),
              "stride table size must be a power of two");
}

void
StridePrefetcher::onAccess(Addr block_addr, Pc pc, bool,
                           std::vector<Addr> &out)
{
    Entry &e = table[foldXor(pc >> 2, 16) & mask];
    if (!e.valid || e.tag != pc) {
        e.tag = pc;
        e.lastBlock = block_addr;
        e.stride = 0;
        e.confidence = 0;
        e.valid = true;
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(block_addr) -
        static_cast<std::int64_t>(e.lastBlock);
    if (stride == 0)
        return; // same block; nothing learned

    if (stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = 0;
    }
    e.lastBlock = block_addr;

    if (e.confidence >= 2) {
        Addr target = block_addr;
        for (unsigned i = 0; i < degree; ++i) {
            target = static_cast<Addr>(
                static_cast<std::int64_t>(target) + e.stride);
            out.push_back(target);
        }
    }
}

void
StridePrefetcher::exportMetrics(MetricsRegistry &metrics,
                                const std::string &prefix) const
{
    std::uint64_t valid = 0, confident = 0;
    for (const Entry &e : table) {
        valid += e.valid ? 1 : 0;
        confident += (e.valid && e.confidence >= 2) ? 1 : 0;
    }
    metrics.setGauge(prefix + ".valid_entries",
                     static_cast<double>(valid));
    metrics.setGauge(prefix + ".confident_entries",
                     static_cast<double>(confident));
}

StreamPrefetcher::StreamPrefetcher(std::uint32_t num_streams,
                                   unsigned distance)
    : numStreams(num_streams), distance(distance), streams(num_streams)
{
    CS_ASSERT(num_streams > 0, "need at least one stream tracker");
}

void
StreamPrefetcher::onAccess(Addr block_addr, Pc, bool,
                           std::vector<Addr> &out)
{
    // Region id at 4 KB granularity; block_addr is already in blocks.
    const Addr region = block_addr >> (kRegionBits - kBlockBits);
    ++clock;

    // Find the stream tracking this region, or allocate the LRU one.
    Stream *victim = &streams[0];
    for (Stream &s : streams) {
        if (s.valid && s.region == region) {
            const int dir = block_addr > s.lastBlock ? 1
                          : block_addr < s.lastBlock ? -1 : 0;
            if (dir != 0) {
                if (dir == s.direction) {
                    if (s.hits < 255)
                        ++s.hits;
                } else {
                    s.direction = dir;
                    s.hits = 1;
                }
            }
            s.lastBlock = block_addr;
            s.lruStamp = clock;
            // A trained stream (2+ same-direction accesses) runs a
            // window ahead of the demand pointer.
            if (s.hits >= 2) {
                for (unsigned i = 1; i <= distance; ++i) {
                    const std::int64_t target =
                        static_cast<std::int64_t>(block_addr) +
                        s.direction * static_cast<std::int64_t>(i);
                    if (target >= 0)
                        out.push_back(static_cast<Addr>(target));
                }
            }
            return;
        }
        if (!s.valid || s.lruStamp < victim->lruStamp)
            victim = &s;
    }

    victim->region = region;
    victim->lastBlock = block_addr;
    victim->direction = 0;
    victim->hits = 0;
    victim->lruStamp = clock;
    victim->valid = true;
}

void
StreamPrefetcher::exportMetrics(MetricsRegistry &metrics,
                                const std::string &prefix) const
{
    std::uint64_t valid = 0, trained = 0;
    for (const Stream &s : streams) {
        valid += s.valid ? 1 : 0;
        trained += (s.valid && s.hits >= 2) ? 1 : 0;
    }
    metrics.setGauge(prefix + ".valid_streams",
                     static_cast<double>(valid));
    metrics.setGauge(prefix + ".trained_streams",
                     static_cast<double>(trained));
}

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name)
{
    auto prefetcher = tryMakePrefetcher(name);
    if (!prefetcher.ok())
        fatal("%s", prefetcher.status().message().c_str());
    return prefetcher.take();
}

Expected<std::unique_ptr<Prefetcher>>
tryMakePrefetcher(const std::string &name)
{
    if (name.empty() || name == "none")
        return std::unique_ptr<Prefetcher>();
    if (name == "next_line")
        return std::unique_ptr<Prefetcher>(new NextLinePrefetcher());
    if (name == "stride")
        return std::unique_ptr<Prefetcher>(new StridePrefetcher());
    if (name == "streamer")
        return std::unique_ptr<Prefetcher>(new StreamPrefetcher());
    return notFoundError("unknown prefetcher '%s' (try: none next_line "
                         "stride streamer)",
                         name.c_str());
}

bool
isKnownPrefetcher(const std::string &name)
{
    if (name.empty() || name == "none")
        return true;
    for (const auto &known : availablePrefetchers())
        if (name == known)
            return true;
    return false;
}

std::vector<std::string>
availablePrefetchers()
{
    return {"next_line", "stride", "streamer"};
}

} // namespace cachescope
