/**
 * @file
 * Hardware-prefetcher models.
 *
 * The paper's configuration (like the CRC2 kits its policies come
 * from) runs without prefetching, but prefetching is the obvious
 * follow-up question for memory-bound graph analytics — the sequential
 * Offset/Neighbour Array scans are prefetchable even though the
 * Property Array accesses are not. CacheScope therefore models the
 * three classic prefetchers so the ablation benches can ask how much
 * of the problem they solve (answer, per the abl_prefetch experiment:
 * the streaming part only).
 *
 * Prefetchers observe the demand-access stream of the cache that owns
 * them and emit candidate block addresses; the cache issues those as
 * AccessType::Prefetch fills.
 */

#ifndef CACHESCOPE_PREFETCH_PREFETCHER_HH
#define CACHESCOPE_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hh"
#include "util/types.hh"

namespace cachescope {

class MetricsRegistry;

/** Abstract prefetcher interface. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one demand access to the owning cache.
     *
     * @param block_addr block-aligned address accessed.
     * @param pc PC of the accessing instruction.
     * @param hit whether the demand access hit.
     * @param out candidate block addresses to prefetch are appended.
     */
    virtual void onAccess(Addr block_addr, Pc pc, bool hit,
                          std::vector<Addr> &out) = 0;

    /**
     * Register internal-state metrics (table occupancy, ...) under
     * "<prefix>." in @p metrics. Report-time only; default exports
     * nothing.
     */
    virtual void
    exportMetrics(MetricsRegistry &metrics, const std::string &prefix) const
    {
        (void)metrics;
        (void)prefix;
    }
};

/**
 * Next-N-line prefetcher: on every demand access, prefetch the next
 * @c degree sequential blocks.
 */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree = 1) : degree(degree) {}

    void onAccess(Addr block_addr, Pc pc, bool hit,
                  std::vector<Addr> &out) override;

  private:
    unsigned degree;
};

/**
 * IP-stride prefetcher: a PC-indexed table learns per-instruction
 * strides and prefetches ahead once a stride repeats (2-bit
 * confidence).
 */
class StridePrefetcher : public Prefetcher
{
  public:
    /**
     * @param table_entries tracked PCs (power of two).
     * @param degree prefetches issued per confident access.
     */
    explicit StridePrefetcher(std::uint32_t table_entries = 256,
                              unsigned degree = 2);

    void onAccess(Addr block_addr, Pc pc, bool hit,
                  std::vector<Addr> &out) override;

    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix) const override;

  private:
    struct Entry
    {
        Pc tag = 0;
        Addr lastBlock = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::uint32_t mask;
    unsigned degree;
    std::vector<Entry> table;
};

/**
 * Stream prefetcher: detects ascending/descending access streams
 * within aligned 4 KB regions and runs a prefetch window ahead of the
 * demand stream (a simplified L2 streamer).
 */
class StreamPrefetcher : public Prefetcher
{
  public:
    /**
     * @param num_streams concurrently tracked streams.
     * @param distance how far ahead of the demand stream to run.
     */
    explicit StreamPrefetcher(std::uint32_t num_streams = 16,
                              unsigned distance = 4);

    void onAccess(Addr block_addr, Pc pc, bool hit,
                  std::vector<Addr> &out) override;

    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix) const override;

  private:
    struct Stream
    {
        Addr region = 0;       ///< 4 KB-aligned region id
        Addr lastBlock = 0;
        int direction = 0;     ///< +1 ascending, -1 descending, 0 unset
        std::uint8_t hits = 0; ///< consecutive in-region accesses
        std::uint32_t lruStamp = 0;
        bool valid = false;
    };

    static constexpr unsigned kRegionBits = 12; // 4 KB
    static constexpr unsigned kBlockBits = 6;

    std::uint32_t numStreams;
    unsigned distance;
    std::uint32_t clock = 0;
    std::vector<Stream> streams;
};

/**
 * Name-based factory ("none" returns nullptr): next_line, stride,
 * streamer. fatal() on unknown names.
 */
std::unique_ptr<Prefetcher> makePrefetcher(const std::string &name);

/**
 * As makePrefetcher(), but unknown names come back as a Status error
 * instead of terminating the process.
 */
Expected<std::unique_ptr<Prefetcher>>
tryMakePrefetcher(const std::string &name);

/** @return true iff @p name is "none"/"" or a registered prefetcher. */
bool isKnownPrefetcher(const std::string &name);

/** @return the registered prefetcher names (excluding "none"). */
std::vector<std::string> availablePrefetchers();

} // namespace cachescope

#endif // CACHESCOPE_PREFETCH_PREFETCHER_HH
