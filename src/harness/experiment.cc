/**
 * @file
 * Experiment harness implementation.
 */

#include "harness/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "replacement/belady.hh"
#include "stats/summary.hh"
#include "util/logging.hh"

namespace cachescope {

SimResult
runOne(Workload &workload, const SimConfig &config)
{
    SimConfig cfg = config;
    cfg.warmupInstructions =
        std::max(cfg.warmupInstructions, workload.warmupHint());
    Simulator sim(cfg);
    workload.run(sim);
    return sim.result();
}

SimResult
runBelady(Workload &workload, const SimConfig &base_config)
{
    SimConfig config = base_config;
    config.warmupInstructions =
        std::max(config.warmupInstructions, workload.warmupHint());

    // Pass 1: record the LLC demand stream. The stream is independent
    // of the LLC policy (the levels above are fixed), so any policy
    // works for recording; use the configured one.
    auto stream = std::make_shared<std::vector<Addr>>();
    {
        Simulator sim(config);
        sim.hierarchy().llc().setAccessHook(
            [&stream](Addr block, Pc, AccessType) {
                stream->push_back(block);
            });
        workload.run(sim);
    }

    // Pass 2: replay against the recorded future.
    auto oracle = std::make_shared<FutureOracle>(*stream);
    auto policy = std::make_unique<BeladyPolicy>(
        config.hierarchy.llc.geometry(), oracle);
    Simulator sim(config, std::move(policy));
    workload.run(sim);
    SimResult result = sim.result();
    result.llcPolicy = "belady";
    result.llcPolicyState.clear();
    return result;
}

SuiteRunner::SuiteRunner(SimConfig base, unsigned jobs)
    : base(std::move(base)), jobs(jobs)
{
    if (this->jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        this->jobs = hw == 0 ? 1 : hw;
    }
}

SweepResults
SuiteRunner::run(const std::vector<std::shared_ptr<Workload>> &suite,
                 const std::vector<std::string> &policies) const
{
    struct Cell
    {
        std::shared_ptr<Workload> workload;
        std::string policy;
    };
    std::vector<Cell> cells;
    for (const auto &workload : suite)
        for (const auto &policy : policies)
            cells.push_back({workload, policy});

    SweepResults results;
    std::mutex results_mutex;
    std::atomic<std::size_t> cursor{0};

    auto worker = [&]() {
        while (true) {
            const std::size_t i = cursor.fetch_add(1);
            if (i >= cells.size())
                return;
            const Cell &cell = cells[i];
            SimConfig config = base;
            SimResult result;
            if (cell.policy == "belady") {
                result = runBelady(*cell.workload, config);
            } else {
                config.hierarchy.llc.replacement = cell.policy;
                result = runOne(*cell.workload, config);
            }
            {
                std::lock_guard<std::mutex> lock(results_mutex);
                results[cell.workload->name()][cell.policy] = result;
                if (verbose_) {
                    std::fprintf(stderr,
                                 "  [%zu/%zu] %-24s %-8s ipc=%.3f "
                                 "llc_mpki=%.2f\n",
                                 i + 1, cells.size(),
                                 cell.workload->name().c_str(),
                                 cell.policy.c_str(), result.ipc(),
                                 result.mpkiLlc());
                }
            }
        }
    };

    const unsigned nthreads =
        static_cast<unsigned>(std::min<std::size_t>(jobs, cells.size()));
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();

    return results;
}

std::map<std::string, double>
speedupsOver(const SweepResults &results, const std::string &policy,
             const std::string &baseline)
{
    std::map<std::string, double> out;
    for (const auto &[workload, by_policy] : results) {
        auto p = by_policy.find(policy);
        auto b = by_policy.find(baseline);
        if (p == by_policy.end() || b == by_policy.end())
            continue;
        const double base_ipc = b->second.ipc();
        if (base_ipc <= 0.0) {
            warn("workload '%s' has non-positive baseline IPC",
                 workload.c_str());
            continue;
        }
        out[workload] = p->second.ipc() / base_ipc;
    }
    return out;
}

double
geomeanSpeedup(const SweepResults &results, const std::string &policy,
               const std::string &baseline)
{
    std::vector<double> ratios;
    for (const auto &[workload, ratio] : speedupsOver(results, policy,
                                                      baseline)) {
        (void)workload;
        ratios.push_back(ratio);
    }
    return ratios.empty() ? 0.0 : geomean(ratios);
}

const std::vector<std::string> &
paperPolicies()
{
    static const std::vector<std::string> policies = {
        "srrip", "drrip", "ship", "hawkeye", "glider", "mpppb",
    };
    return policies;
}

} // namespace cachescope
