/**
 * @file
 * Experiment harness implementation.
 */

#include "harness/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "harness/checkpoint.hh"
#include "replacement/belady.hh"
#include "stats/summary.hh"
#include "util/cancel.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"

namespace cachescope {

namespace {

/**
 * Record how fast the simulator itself ran: sim.wall_seconds and
 * sim.throughput_mips (instructions pushed through the pipeline,
 * warmup included, per wall-clock second), split into
 * sim.warmup_wall_seconds + sim.measure_wall_seconds so the functional
 * warmup speedup is directly observable in every BENCH JSON.
 * steady_clock only, so the numbers survive clock adjustments
 * mid-campaign. All of these gauges are nondeterministic by nature and
 * are stripped by the determinism tooling (difftest byte-identity,
 * golden metric-tree tests).
 */
void
setThroughputGauges(SimResult &result, InstCount instructions,
                    std::chrono::steady_clock::time_point start,
                    double measure_seconds)
{
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    // A tiny trace can finish inside the clock's resolution, making
    // `secs` zero (or denormal-small, where the division overflows to
    // inf). Clamp the divisor so the gauge is always present and
    // finite: an absent or non-finite value poisons BENCH JSON
    // baseline comparisons downstream (check_bench_json rejects both).
    constexpr double kMinSeconds = 1e-9;
    const double divisor = secs > kMinSeconds ? secs : kMinSeconds;
    const double measure =
        std::clamp(measure_seconds, 0.0, secs < 0.0 ? 0.0 : secs);
    result.extraMetrics.setGauge("sim.wall_seconds", secs);
    result.extraMetrics.setGauge("sim.warmup_wall_seconds",
                                 secs - measure);
    result.extraMetrics.setGauge("sim.measure_wall_seconds", measure);
    result.extraMetrics.setGauge(
        "sim.throughput_mips",
        static_cast<double>(instructions) / divisor / 1e6);
}

/** warn() once when a run's input dried up inside its warmup window —
 *  a too-short trace otherwise yields an all-warmup, zero-measurement
 *  result that looks like a clean (but empty) run. */
void
warnIfAllWarmup(const Simulator &sim, const SimConfig &cfg,
                const std::string &what)
{
    if (cfg.warmupInstructions == 0 || sim.inMeasurement())
        return;
    warn("%s ended after %llu of %llu warmup instructions; the "
         "measured window is empty",
         what.c_str(),
         static_cast<unsigned long long>(sim.instructionsConsumed()),
         static_cast<unsigned long long>(cfg.warmupInstructions));
}

} // anonymous namespace

SimResult
runOne(Workload &workload, const SimConfig &config)
{
    SimConfig cfg = config;
    cfg.warmupInstructions =
        std::max(cfg.warmupInstructions, workload.warmupHint());
    const auto start = std::chrono::steady_clock::now();
    Simulator sim(cfg);
    workload.run(sim);
    SimResult result = sim.result();
    warnIfAllWarmup(sim, cfg, "workload '" + workload.name() + "'");
    setThroughputGauges(result, sim.instructionsConsumed(), start,
                        sim.measureWallSeconds());
    return result;
}

SimResult
runBelady(Workload &workload, const SimConfig &base_config)
{
    const auto start = std::chrono::steady_clock::now();
    SimConfig config = base_config;
    config.warmupInstructions =
        std::max(config.warmupInstructions, workload.warmupHint());
    // Belady is incompatible with LLC set-sampling: the FutureOracle
    // counts positions over the *full* recorded stream, and a sampled
    // replay would consume oracle positions out of step. Force exact
    // simulation for both passes; the fast-sweep preset still speeds
    // pass 1 up via functional mode below.
    config.hierarchy.llc.sampleSets = 1;

    // Pass 1: record the LLC demand stream. The stream is independent
    // of the LLC policy (the levels above are fixed), so any policy
    // works for recording; use the configured one. Only architectural
    // state matters here — the recorded stream carries no timing — so
    // the whole pass runs functionally when functional warmup is on.
    auto stream = std::make_shared<std::vector<Addr>>();
    InstCount pass1_instructions = 0;
    {
        Simulator sim(config);
        if (config.warmupMode == WarmupMode::Functional)
            sim.forceFunctional();
        sim.hierarchy().llc().setAccessHook(
            [&stream](Addr block, Pc, AccessType) {
                stream->push_back(block);
            });
        workload.run(sim);
        pass1_instructions = sim.instructionsConsumed();
    }

    // Pass 2: replay against the recorded future.
    auto oracle = std::make_shared<FutureOracle>(*stream);
    auto policy = std::make_unique<BeladyPolicy>(
        config.hierarchy.llc.geometry(), oracle);
    Simulator sim(config, std::move(policy));
    workload.run(sim);
    SimResult result = sim.result();
    result.llcPolicy = "belady";
    result.llcPolicyState.clear();
    warnIfAllWarmup(sim, config,
                    "belady replay of '" + workload.name() + "'");
    // Both passes count: the oracle's cost is real simulated work.
    // Pass 1 is all bookkeeping for the oracle, so it lands on the
    // warmup side of the wall-time split.
    setThroughputGauges(result,
                        pass1_instructions + sim.instructionsConsumed(),
                        start, sim.measureWallSeconds());
    return result;
}

SuiteRunner::SuiteRunner(SimConfig base, unsigned jobs)
    : base(std::move(base)), jobs(jobs)
{
    if (this->jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        this->jobs = hw == 0 ? 1 : hw;
    }
}

std::size_t
SweepReport::failed() const
{
    std::size_t n = 0;
    for (const auto &outcome : outcomes)
        if (!outcome.ok)
            ++n;
    return n;
}

void
CellOutcome::exportCellMetrics(MetricsRegistry &metrics,
                               const std::string &prefix) const
{
    if (hasCellMetrics)
        metrics.merge(cellMetrics, prefix);
    else
        result.exportMetrics(metrics, prefix);
}

CellOutcome
SuiteRunner::runCell(Workload &workload, const std::string &policy,
                     const CancelToken *sweep_token) const
{
    CellOutcome out;
    out.workload = workload.name();
    out.policy = policy;
    // steady_clock everywhere: cell timing and deadlines must survive
    // wall-clock adjustments mid-campaign.
    const auto start = std::chrono::steady_clock::now();

    // The cell's own token: chained to the sweep token (signal /
    // sweep deadline) and armed with the per-cell budget. CancelScope
    // publishes it thread-locally so even layers without a token
    // parameter (the failpoint sleep action) honour it.
    CancelToken cell_token;
    cell_token.setParent(sweep_token);
    if (cellTimeoutS_ > 0.0) {
        cell_token.setDeadline(
            start + std::chrono::duration_cast<
                        CancelToken::Clock::duration>(
                        std::chrono::duration<double>(cellTimeoutS_)),
            CancelReason::CellDeadline);
    }
    CancelScope scope(&cell_token);

    SimConfig config = base;
    config.cancel = &cell_token;
    if (fastSweep_) {
        config.warmupMode = WarmupMode::Functional;
        if (config.hierarchy.llc.sampleSets == 1)
            config.hierarchy.llc.sampleSets = 16;
    }
    // "belady" is the offline oracle, injected rather than looked up in
    // the registry; validate the base configuration unchanged for it.
    const bool belady = policy == "belady";
    if (!belady)
        config.hierarchy.llc.replacement = policy;

    if (Status valid = config.validate(); !valid.ok()) {
        out.error = valid.toString();
    } else {
        const unsigned max_attempts = retries_ + 1;
        for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
            out.attempts = attempt;
            try {
                if (failpoint::anyArmed())
                    failpoint::hitOrThrow("harness.cell.attempt");
                out.result = belady ? runBelady(workload, config)
                                    : runOne(workload, config);
                out.ok = true;
                out.error.clear();
                break;
            } catch (const CancelledError &e) {
                // Cancellation is not a transient fault: no retry, and
                // the distinct flag keeps the accounting honest.
                out.cancelled = true;
                out.error = e.what();
                break;
            } catch (const std::exception &e) {
                out.error = e.what();
            } catch (...) {
                out.error = "non-standard exception";
            }
            // A timeout that fired between attempts must not burn the
            // remaining retries on cells that can no longer finish.
            if (cell_token.cancelled()) {
                out.cancelled = true;
                out.error = CancelledError(cell_token.reason()).what();
                break;
            }
        }
    }

    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    return out;
}

SweepReport
SuiteRunner::runChecked(const std::vector<std::shared_ptr<Workload>> &suite,
                        const std::vector<std::string> &policies) const
{
    struct Cell
    {
        std::shared_ptr<Workload> workload;
        std::string policy;
    };
    std::vector<Cell> cells;
    for (const auto &workload : suite)
        for (const auto &policy : policies)
            cells.push_back({workload, policy});

    SweepReport report;
    report.outcomes.resize(cells.size());

    // Cell wall times in 10 ms buckets up to ~2.5 s plus overflow.
    Histogram wall_hist(10, 256);

    // Fold one finished cell into the report's metric tree. Callers
    // must hold the report mutex once workers are running; counter
    // sums are order-independent, which is what keeps a parallel
    // sweep's counters identical to a serial one's.
    auto recordCell = [&report, &wall_hist](const CellOutcome &out) {
        const std::string cell_prefix =
            "cell." + out.workload + "." + out.policy;
        if (out.ok) {
            report.metrics.addCounter("sweep.cells_ok");
            // exportCellMetrics prefers the tree a v2 checkpoint
            // carried over; that is what keeps a resumed sweep's
            // metric tree byte-identical to an uninterrupted run's.
            out.exportCellMetrics(report.metrics, cell_prefix);
            // Counters additionally sum across cells under "total.";
            // gauges and histograms stay per-cell only.
            MetricsRegistry cell_metrics;
            out.exportCellMetrics(cell_metrics);
            for (const auto &[path, value] : cell_metrics.counters())
                report.metrics.addCounter("total." + path, value);
        } else {
            report.metrics.addCounter("sweep.cells_failed");
        }
        if (out.cancelled)
            report.metrics.addCounter("sweep.cells_cancelled");
        report.metrics.addCounter("sweep.attempts_total", out.attempts);
        if (out.fromCheckpoint)
            report.metrics.addCounter("sweep.checkpoint_restores");
        report.metrics.setGauge(cell_prefix + ".wall_ms", out.wallMs);
        wall_hist.add(static_cast<std::uint64_t>(
            out.wallMs < 0.0 ? 0.0 : out.wallMs));
    };

    // Restore cells a previous (interrupted) run already finished.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        const CellOutcome *done = journal_
            ? journal_->find(cell.workload->name(), cell.policy)
            : nullptr;
        if (done) {
            report.outcomes[i] = *done;
            report.outcomes[i].fromCheckpoint = true;
            report.results[cell.workload->name()][cell.policy] =
                done->result;
            recordCell(report.outcomes[i]);
            if (verbose_) {
                std::fprintf(stderr, "  [%zu/%zu] %-24s %-8s restored "
                             "from checkpoint\n",
                             i + 1, cells.size(),
                             cell.workload->name().c_str(),
                             cell.policy.c_str());
            }
        } else {
            pending.push_back(i);
        }
    }

    // The sweep-wide token: chained to any external (signal) token and
    // armed with the whole-sweep deadline. Workers consult it before
    // pulling work; runCell chains each cell token to it so in-flight
    // simulations unwind too.
    CancelToken sweep_token;
    sweep_token.setParent(external_);
    if (deadlineS_ > 0.0) {
        sweep_token.setDeadline(
            std::chrono::steady_clock::now() +
                std::chrono::duration_cast<CancelToken::Clock::duration>(
                    std::chrono::duration<double>(deadlineS_)),
            CancelReason::SweepDeadline);
    }

    // Watchdog bookkeeping: which cells are currently simulating, so a
    // cell stuck in non-cooperative code (never reaching a polling
    // point) is at least reported even though it cannot be reaped.
    struct ActiveCell
    {
        std::string workload;
        std::string policy;
        std::chrono::steady_clock::time_point start;
        bool warned = false;
    };
    std::mutex active_mutex;
    std::map<std::size_t, ActiveCell> active;

    std::mutex report_mutex;
    std::atomic<std::size_t> cursor{0};

    auto worker = [&]() {
        while (true) {
            // Checked before claiming work, so cancellation stops
            // scheduling promptly; cells claimed before the check still
            // run (and unwind almost immediately via their own token).
            if (sweep_token.cancelled())
                return;
            const std::size_t k = cursor.fetch_add(1);
            if (k >= pending.size())
                return;
            const std::size_t i = pending[k];
            const Cell &cell = cells[i];
            {
                std::lock_guard<std::mutex> lock(active_mutex);
                active[i] = {cell.workload->name(), cell.policy,
                             std::chrono::steady_clock::now(), false};
            }
            CellOutcome out = runCell(*cell.workload, cell.policy,
                                      &sweep_token);
            {
                std::lock_guard<std::mutex> lock(active_mutex);
                active.erase(i);
            }
            {
                std::lock_guard<std::mutex> lock(report_mutex);
                ++report.executed;
                if (out.ok) {
                    report.results[out.workload][out.policy] = out.result;
                    if (journal_) {
                        if (Status s = journal_->append(out); !s.ok()) {
                            warn("checkpoint append failed: %s",
                                 s.message().c_str());
                        }
                    }
                }
                if (verbose_ && out.ok) {
                    const auto &gauges = out.result.extraMetrics.gauges();
                    const auto mips =
                        gauges.find("sim.throughput_mips");
                    std::fprintf(stderr,
                                 "  [%zu/%zu] %-24s %-8s ipc=%.3f "
                                 "llc_mpki=%.2f wall=%.2fs mips=%.1f\n",
                                 i + 1, cells.size(),
                                 out.workload.c_str(), out.policy.c_str(),
                                 out.result.ipc(), out.result.mpkiLlc(),
                                 out.wallMs / 1000.0,
                                 mips == gauges.end() ? 0.0
                                                      : mips->second);
                } else if (verbose_) {
                    std::fprintf(stderr,
                                 "  [%zu/%zu] %-24s %-8s FAILED after "
                                 "%u attempt(s): %s\n",
                                 i + 1, cells.size(),
                                 out.workload.c_str(), out.policy.c_str(),
                                 out.attempts, out.error.c_str());
                }
                recordCell(out);
                report.outcomes[i] = std::move(out);
            }
        }
    };

    // Watchdog: a cell that blows well past its budget without being
    // reaped is stuck somewhere that never polls; cancellation is
    // cooperative, so all we can do is tell the operator which one.
    std::mutex watchdog_mutex;
    std::condition_variable watchdog_cv;
    bool watchdog_done = false;
    std::thread watchdog;
    if (cellTimeoutS_ > 0.0) {
        watchdog = std::thread([&]() {
            const auto grace =
                std::chrono::duration<double>(2.0 * cellTimeoutS_);
            std::unique_lock<std::mutex> lock(watchdog_mutex);
            while (!watchdog_done) {
                watchdog_cv.wait_for(lock,
                                     std::chrono::milliseconds(200));
                if (watchdog_done)
                    return;
                const auto now = std::chrono::steady_clock::now();
                std::lock_guard<std::mutex> alock(active_mutex);
                for (auto &[idx, cell] : active) {
                    if (cell.warned || now - cell.start <= grace)
                        continue;
                    cell.warned = true;
                    warn("cell %s/%s is %0.1fs past 2x its "
                         "--cell-timeout-s budget and not responding "
                         "to cancellation; it may be stuck in "
                         "non-cooperative code",
                         cell.workload.c_str(), cell.policy.c_str(),
                         std::chrono::duration<double>(
                             now - cell.start - grace)
                             .count());
                }
            }
        });
    }

    const unsigned nthreads =
        static_cast<unsigned>(std::min<std::size_t>(jobs, pending.size()));
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();

    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchdog_mutex);
            watchdog_done = true;
        }
        watchdog_cv.notify_all();
        watchdog.join();
    }

    // Cells the cancelled sweep never started: record them so the
    // report still has one outcome per grid cell and the accounting
    // (cells_total == ok + failed) stays closed.
    for (const std::size_t i : pending) {
        CellOutcome &out = report.outcomes[i];
        if (!out.workload.empty())
            continue;
        out.workload = cells[i].workload->name();
        out.policy = cells[i].policy;
        out.cancelled = true;
        out.attempts = 0;
        out.error = std::string("cancelled before start: ") +
                    cancelReasonName(sweep_token.reason());
        recordCell(out);
    }

    report.metrics.setCounter("sweep.cells_total", cells.size());
    report.metrics.setCounter("sweep.executed", report.executed);
    report.metrics.setHistogram("sweep.cell_wall_ms", wall_hist);
    return report;
}

SweepResults
SuiteRunner::run(const std::vector<std::shared_ptr<Workload>> &suite,
                 const std::vector<std::string> &policies) const
{
    SweepReport report = runChecked(suite, policies);
    for (const auto &outcome : report.outcomes) {
        if (!outcome.ok) {
            warn("sweep cell %s/%s failed: %s", outcome.workload.c_str(),
                 outcome.policy.c_str(), outcome.error.c_str());
        }
    }
    return std::move(report.results);
}

std::map<std::string, double>
speedupsOver(const SweepResults &results, const std::string &policy,
             const std::string &baseline)
{
    std::map<std::string, double> out;
    for (const auto &[workload, by_policy] : results) {
        auto p = by_policy.find(policy);
        auto b = by_policy.find(baseline);
        if (p == by_policy.end() || b == by_policy.end())
            continue;
        const double base_ipc = b->second.ipc();
        if (base_ipc <= 0.0) {
            warn("workload '%s' has non-positive baseline IPC",
                 workload.c_str());
            continue;
        }
        out[workload] = p->second.ipc() / base_ipc;
    }
    return out;
}

double
geomeanSpeedup(const SweepResults &results, const std::string &policy,
               const std::string &baseline)
{
    std::vector<double> ratios;
    for (const auto &[workload, ratio] : speedupsOver(results, policy,
                                                      baseline)) {
        (void)workload;
        ratios.push_back(ratio);
    }
    return ratios.empty() ? 0.0 : geomean(ratios);
}

const std::vector<std::string> &
paperPolicies()
{
    static const std::vector<std::string> policies = {
        "srrip", "drrip", "ship", "hawkeye", "glider", "mpppb",
    };
    return policies;
}

} // namespace cachescope
