/**
 * @file
 * Shared result reporting: the canonical metric table for one
 * simulation, used by the CLI, the examples and the benches so every
 * surface prints the same numbers the same way.
 */

#ifndef CACHESCOPE_HARNESS_REPORT_HH
#define CACHESCOPE_HARNESS_REPORT_HH

#include <ostream>

#include "core/simulator.hh"
#include "stats/table.hh"

namespace cachescope {

/** @return the standard metric/value table for @p result. */
Table simResultTable(const SimResult &result);

/** Print the standard table for @p result to @p os. */
void printSimResult(const SimResult &result, std::ostream &os);

} // namespace cachescope

#endif // CACHESCOPE_HARNESS_REPORT_HH
