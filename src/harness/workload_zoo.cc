/**
 * @file
 * Workload zoo implementation.
 */

#include "harness/workload_zoo.hh"

#include <map>

#include "graph/gap_suite.hh"
#include "graph/generators.hh"
#include "util/logging.hh"
#include "workloads/synthetic.hh"

namespace cachescope {

namespace {

const std::map<std::string, GapKernel> &
gapByName()
{
    static const std::map<std::string, GapKernel> map = {
        {"bfs", GapKernel::Bfs},   {"pr", GapKernel::PageRank},
        {"cc", GapKernel::Cc},     {"bc", GapKernel::Bc},
        {"sssp", GapKernel::Sssp}, {"tc", GapKernel::Tc},
    };
    return map;
}

const std::map<std::string, SynthPattern> &
synthByName()
{
    static const std::map<std::string, SynthPattern> map = {
        {"stream_triad", SynthPattern::StreamTriad},
        {"scan_thrash", SynthPattern::ScanThrash},
        {"hot_cold", SynthPattern::HotCold},
        {"pointer_chase", SynthPattern::PointerChase},
        {"stencil2d", SynthPattern::Stencil2D},
        {"mixed_phase", SynthPattern::MixedPhase},
        {"dead_fill", SynthPattern::DeadFill},
        {"gather_zipf", SynthPattern::GatherZipf},
        {"tree_search", SynthPattern::TreeSearch},
        {"small_ws", SynthPattern::SmallWs},
        {"pc_mosaic", SynthPattern::PcMosaic},
    };
    return map;
}

} // anonymous namespace

std::shared_ptr<Workload>
makeNamedWorkload(const std::string &name, const ZooOptions &options)
{
    auto workload = tryMakeNamedWorkload(name, options);
    if (!workload.ok())
        fatal("%s", workload.status().message().c_str());
    return workload.take();
}

Expected<std::shared_ptr<Workload>>
tryMakeNamedWorkload(const std::string &name, const ZooOptions &options)
{
    // "bfs_do" selects GAP's direction-optimizing BFS variant.
    const bool bfs_do = name == "bfs_do";
    const std::string gap_name = bfs_do ? "bfs" : name;
    if (auto it = gapByName().find(gap_name); it != gapByName().end()) {
        auto graph = std::make_shared<const CsrGraph>(
            options.uniformGraph
                ? makeUniform(options.scale, options.avgDegree,
                              options.seed)
                : makeKronecker(options.scale, options.avgDegree,
                                options.seed));
        const std::string tag =
            (options.uniformGraph ? "urand" : "kron") +
            std::to_string(options.scale);
        GapKernelParams params;
        params.directionOptimizingBfs = bfs_do;
        return std::shared_ptr<Workload>(
            std::make_shared<GapWorkload>(it->second, tag, graph, params));
    }
    if (auto it = synthByName().find(name); it != synthByName().end()) {
        SynthParams params;
        params.mainBytes = options.synthMainBytes;
        params.seed = options.seed;
        return std::shared_ptr<Workload>(std::make_shared<SyntheticWorkload>(
            "synth", it->second, params));
    }
    return notFoundError(
        "unknown workload '%s' (try one of: bfs bfs_do pr cc bc sssp tc "
        "stream_triad scan_thrash hot_cold pointer_chase stencil2d "
        "mixed_phase dead_fill gather_zipf tree_search small_ws "
        "pc_mosaic)",
        name.c_str());
}

std::vector<std::shared_ptr<Workload>>
makeNamedSuite(const std::string &name, const ZooOptions &options)
{
    auto suite = tryMakeNamedSuite(name, options);
    if (!suite.ok())
        fatal("%s", suite.status().message().c_str());
    return suite.take();
}

Expected<std::vector<std::shared_ptr<Workload>>>
tryMakeNamedSuite(const std::string &name, const ZooOptions &options)
{
    if (name == "gap") {
        GapSuiteConfig cfg;
        cfg.scale = options.scale;
        cfg.avgDegree = options.avgDegree;
        cfg.seed = options.seed;
        return makeGapSuite(cfg);
    }
    if (name == "spec06")
        return makeSpec06Suite();
    if (name == "spec17")
        return makeSpec17Suite();
    return notFoundError("unknown suite '%s' (try: gap, spec06, spec17)",
                         name.c_str());
}

std::vector<std::string>
zooWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &[name, kernel] : gapByName()) {
        (void)kernel;
        names.push_back(name);
    }
    names.push_back("bfs_do");
    for (const auto &[name, pattern] : synthByName()) {
        (void)pattern;
        names.push_back(name);
    }
    return names;
}

} // namespace cachescope
