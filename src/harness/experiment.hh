/**
 * @file
 * The experiment harness: runs (workload x policy) grids, including the
 * two-pass Belady oracle, and aggregates speedups the way the paper
 * reports them (geometric mean of per-workload IPC ratios over LRU).
 */

#ifndef CACHESCOPE_HARNESS_EXPERIMENT_HH
#define CACHESCOPE_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "trace/workload.hh"

namespace cachescope {

/**
 * Run @p workload through a simulator built from @p config.
 * @return the measured-window result.
 */
SimResult runOne(Workload &workload, const SimConfig &config);

/**
 * Run @p workload under the offline Belady OPT policy at the LLC.
 *
 * Two passes: the first records the LLC demand stream under the
 * baseline configuration, the second replays with a BeladyPolicy
 * consulting that future. Requires the workload to be deterministic.
 */
SimResult runBelady(Workload &workload, const SimConfig &config);

/** Results of a suite sweep: workload name -> policy name -> result. */
using SweepResults =
    std::map<std::string, std::map<std::string, SimResult>>;

/**
 * Runs workload x policy grids, optionally in parallel.
 */
class SuiteRunner
{
  public:
    /**
     * @param base configuration template; the LLC policy field is
     *        overridden per grid cell.
     * @param jobs worker threads (0 = hardware concurrency).
     */
    explicit SuiteRunner(SimConfig base, unsigned jobs = 0);

    /** Run every workload under every policy. */
    SweepResults run(
        const std::vector<std::shared_ptr<Workload>> &suite,
        const std::vector<std::string> &policies) const;

    /** Enable/disable per-cell progress lines on stderr. */
    void setVerbose(bool verbose) { verbose_ = verbose; }

  private:
    SimConfig base;
    unsigned jobs;
    bool verbose_ = true;
};

/**
 * @return per-workload speedup of @p policy over @p baseline
 * (IPC ratio), keyed by workload name.
 */
std::map<std::string, double>
speedupsOver(const SweepResults &results, const std::string &policy,
             const std::string &baseline = "lru");

/** @return the geometric-mean speedup of @p policy over @p baseline. */
double geomeanSpeedup(const SweepResults &results, const std::string &policy,
                      const std::string &baseline = "lru");

/** The six LLC policies the paper evaluates, in its order. */
const std::vector<std::string> &paperPolicies();

} // namespace cachescope

#endif // CACHESCOPE_HARNESS_EXPERIMENT_HH
