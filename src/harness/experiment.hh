/**
 * @file
 * The experiment harness: runs (workload x policy) grids, including the
 * two-pass Belady oracle, and aggregates speedups the way the paper
 * reports them (geometric mean of per-workload IPC ratios over LRU).
 */

#ifndef CACHESCOPE_HARNESS_EXPERIMENT_HH
#define CACHESCOPE_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "trace/workload.hh"

namespace cachescope {

/**
 * Run @p workload through a simulator built from @p config.
 * @return the measured-window result.
 */
SimResult runOne(Workload &workload, const SimConfig &config);

/**
 * Run @p workload under the offline Belady OPT policy at the LLC.
 *
 * Two passes: the first records the LLC demand stream under the
 * baseline configuration, the second replays with a BeladyPolicy
 * consulting that future. Requires the workload to be deterministic.
 */
SimResult runBelady(Workload &workload, const SimConfig &config);

/** Results of a suite sweep: workload name -> policy name -> result. */
using SweepResults =
    std::map<std::string, std::map<std::string, SimResult>>;

/** Fate of a single (workload x policy) grid cell. */
struct CellOutcome
{
    std::string workload;
    std::string policy;
    /** True iff `result` holds a completed simulation. */
    bool ok = false;
    /** True iff restored from a checkpoint journal, not simulated. */
    bool fromCheckpoint = false;
    /**
     * True iff the cell was reaped by cooperative cancellation: its
     * --cell-timeout-s budget, the sweep --deadline-s, or a signal.
     * Cancelled cells are never retried and never checkpointed.
     */
    bool cancelled = false;
    /** Simulation attempts consumed (0 = rejected before running). */
    unsigned attempts = 0;
    /** Wall-clock steady_clock time on this cell, across attempts. */
    double wallMs = 0.0;
    /** Human-readable failure description; empty when ok. */
    std::string error;
    SimResult result;
    /**
     * Full exported metric tree of the cell, restored from a v2
     * checkpoint record (set iff hasCellMetrics). Simulated cells
     * leave this empty and export from `result` instead; carrying the
     * tree through the journal is what makes a resumed sweep's metric
     * tree byte-identical to an uninterrupted run's.
     */
    bool hasCellMetrics = false;
    MetricsRegistry cellMetrics;

    /**
     * Export this cell's metric tree into @p metrics under @p prefix:
     * the restored tree when hasCellMetrics, else `result`'s export.
     */
    void exportCellMetrics(MetricsRegistry &metrics,
                           const std::string &prefix = "") const;
};

/** Everything a fault-isolating sweep reports. */
struct SweepReport
{
    /** Successful cells only, in the legacy map shape. */
    SweepResults results;
    /** One entry per grid cell, in grid (workload-major) order. */
    std::vector<CellOutcome> outcomes;
    /** Cells actually simulated this run (checkpoint hits excluded). */
    std::size_t executed = 0;
    /**
     * Aggregated metric tree: per-cell trees under
     * "cell.<workload>.<policy>.", counter sums across all successful
     * cells under "total.", and sweep bookkeeping (cells_ok,
     * cells_failed, attempts_total, checkpoint_restores, cell wall-time
     * histogram) under "sweep.". Counters are merged per cell under the
     * report mutex; their sums are order-independent, so a parallel
     * sweep reports exactly the counters of a serial one.
     */
    MetricsRegistry metrics;

    std::size_t failed() const;
    bool allOk() const { return failed() == 0; }
};

class CheckpointJournal;

/**
 * Runs workload x policy grids, optionally in parallel.
 *
 * runChecked() isolates faults per cell: a cell whose configuration
 * fails validation (e.g. an unknown policy name) or whose workload
 * throws is recorded as a failed CellOutcome while every other cell
 * completes normally. Optional per-cell retries absorb transient
 * failures, and an optional CheckpointJournal makes interrupted sweeps
 * resumable.
 */
class SuiteRunner
{
  public:
    /**
     * @param base configuration template; the LLC policy field is
     *        overridden per grid cell.
     * @param jobs worker threads (0 = hardware concurrency).
     */
    explicit SuiteRunner(SimConfig base, unsigned jobs = 0);

    /**
     * Run every workload under every policy, isolating per-cell
     * failures instead of propagating them.
     */
    SweepReport runChecked(
        const std::vector<std::shared_ptr<Workload>> &suite,
        const std::vector<std::string> &policies) const;

    /**
     * Legacy wrapper around runChecked(): returns the successful cells
     * and warn()s about failed ones.
     */
    SweepResults run(
        const std::vector<std::shared_ptr<Workload>> &suite,
        const std::vector<std::string> &policies) const;

    /** Enable/disable per-cell progress lines on stderr. */
    void setVerbose(bool verbose) { verbose_ = verbose; }

    /** Extra simulation attempts per cell after a failure (default 0). */
    void setRetries(unsigned retries) { retries_ = retries; }

    /**
     * Attach a checkpoint journal (not owned; must outlive the run).
     * Cells already completed in the journal are restored instead of
     * re-simulated; newly completed cells are appended to it.
     */
    void setCheckpoint(CheckpointJournal *journal) { journal_ = journal; }

    /**
     * Per-cell wall-clock budget in seconds (0 = none). A cell past
     * its budget is cooperatively cancelled and recorded as a failed,
     * cancelled CellOutcome; the rest of the sweep continues. A
     * watchdog thread additionally warns about cells that overrun
     * without polling (stuck in non-cooperative code).
     */
    void setCellTimeout(double seconds) { cellTimeoutS_ = seconds; }

    /**
     * Whole-sweep wall-clock budget in seconds (0 = none), measured
     * from runChecked() entry. On expiry, in-flight cells are
     * cancelled and not-yet-started cells are recorded as cancelled
     * without running; completed cells keep their results.
     */
    void setSweepDeadline(double seconds) { deadlineS_ = seconds; }

    /**
     * Chain the sweep to an external token (not owned; e.g. one fired
     * by a SIGINT/SIGTERM handler). Cancelling it stops scheduling new
     * cells and cooperatively cancels in-flight ones; cells that
     * complete during shutdown are still checkpointed.
     */
    void setCancelToken(const CancelToken *token) { external_ = token; }

    /**
     * Fast-sweep preset: functional warmup plus 1/16 LLC set-sampling
     * applied to every cell (an explicit base sampleSets > 1 wins over
     * the preset's 16). Trades exact timing during warmup and exact
     * LLC counters for a >= 5x wall-clock speedup on fig6-style
     * sweeps; sampled estimates land under each cell's "llc.sampled.*"
     * subtree with a relative-standard-error gauge. The Belady cell is
     * only partially accelerated (functional pass 1; sampling is
     * incompatible with the oracle and stays off there).
     */
    void setFastSweep(bool on) { fastSweep_ = on; }

  private:
    CellOutcome runCell(Workload &workload, const std::string &policy,
                        const CancelToken *sweep_token) const;

    SimConfig base;
    unsigned jobs;
    bool verbose_ = true;
    unsigned retries_ = 0;
    CheckpointJournal *journal_ = nullptr;
    double cellTimeoutS_ = 0.0;
    double deadlineS_ = 0.0;
    bool fastSweep_ = false;
    const CancelToken *external_ = nullptr;
};

/**
 * @return per-workload speedup of @p policy over @p baseline
 * (IPC ratio), keyed by workload name.
 */
std::map<std::string, double>
speedupsOver(const SweepResults &results, const std::string &policy,
             const std::string &baseline = "lru");

/** @return the geometric-mean speedup of @p policy over @p baseline. */
double geomeanSpeedup(const SweepResults &results, const std::string &policy,
                      const std::string &baseline = "lru");

/** The six LLC policies the paper evaluates, in its order. */
const std::vector<std::string> &paperPolicies();

} // namespace cachescope

#endif // CACHESCOPE_HARNESS_EXPERIMENT_HH
