/**
 * @file
 * Name-based workload construction shared by the CLI tool and the
 * example programs: "bfs", "pr", ... build GAP kernels on a generated
 * Kronecker graph; "scan_thrash", "hot_cold", ... build synthetic
 * kernels; "suite:gap", "suite:spec06", "suite:spec17" build whole
 * suites.
 */

#ifndef CACHESCOPE_HARNESS_WORKLOAD_ZOO_HH
#define CACHESCOPE_HARNESS_WORKLOAD_ZOO_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"
#include "util/status.hh"

namespace cachescope {

/** Parameters for name-based construction. */
struct ZooOptions
{
    /** Graph scale for GAP kernels. */
    unsigned scale = 19;
    /** Average degree for generated graphs. */
    unsigned avgDegree = 8;
    /** Generator seed. */
    std::uint64_t seed = 42;
    /** Use the uniform-random generator instead of Kronecker. */
    bool uniformGraph = false;
    /** Main working-set size for synthetic kernels. */
    std::uint64_t synthMainBytes = 8ull << 20;
};

/**
 * @return the workload registered under @p name; fatal() for unknown
 * names. Accepted names: the six GAP kernels (bfs pr cc bc sssp tc),
 * the ten synthetic patterns (stream_triad scan_thrash hot_cold
 * pointer_chase stencil2d mixed_phase dead_fill gather_zipf
 * tree_search small_ws).
 */
std::shared_ptr<Workload> makeNamedWorkload(const std::string &name,
                                            const ZooOptions &options = {});

/**
 * @return the suite registered under @p name: "gap", "spec06",
 * "spec17"; fatal() for unknown names.
 */
std::vector<std::shared_ptr<Workload>>
makeNamedSuite(const std::string &name, const ZooOptions &options = {});

/** As makeNamedWorkload(), but unknown names become Status errors. */
Expected<std::shared_ptr<Workload>>
tryMakeNamedWorkload(const std::string &name,
                     const ZooOptions &options = {});

/** As makeNamedSuite(), but unknown names become Status errors. */
Expected<std::vector<std::shared_ptr<Workload>>>
tryMakeNamedSuite(const std::string &name, const ZooOptions &options = {});

/** @return all individual workload names the zoo accepts. */
std::vector<std::string> zooWorkloadNames();

} // namespace cachescope

#endif // CACHESCOPE_HARNESS_WORKLOAD_ZOO_HH
