/**
 * @file
 * Checkpoint journal implementation.
 */

#include "harness/checkpoint.hh"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "stats/metrics.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"
#include "util/parse.hh"

namespace cachescope {

namespace {

/** First line of new journals; bump the suffix on format changes. */
constexpr const char *kJournalHeaderV2 = "cachescope-checkpoint v2";
/** Previous format (records lack the metric-tree field); still read. */
constexpr const char *kJournalHeaderV1 = "cachescope-checkpoint v1";

/** Summary fields per record line (see serialize()). */
constexpr std::size_t kNumSummaryFields = 10;
/** v2 adds one trailing field: the cell's metric tree as JSON. */
constexpr std::size_t kNumFieldsV2 = kNumSummaryFields + 1;

std::size_t
typeIndex(AccessType type)
{
    return static_cast<std::size_t>(type);
}

/**
 * One completed cell per line:
 * workload policy attempts wall_us instructions cycles
 * llc_load_hits llc_store_hits llc_load_misses llc_store_misses
 * cell_metrics_json
 * (tab-separated; wall time in integer microseconds so the line stays
 * locale- and float-format-proof). The final field is the cell's full
 * exported metric tree as metricsToJson() output with the newlines
 * stripped: the JSON serializer escapes tabs and newlines inside
 * strings and indents with spaces, so the flattened document contains
 * neither record separator and splits back out cleanly.
 */
std::string
serialize(const CellOutcome &out)
{
    MetricsDocument doc;
    doc.name = "cell";
    out.exportCellMetrics(doc.metrics);
    std::string json = metricsToJson(doc);
    json.erase(std::remove(json.begin(), json.end(), '\n'), json.end());

    std::ostringstream line;
    line << out.workload << '\t' << out.policy << '\t' << out.attempts
         << '\t'
         << static_cast<std::uint64_t>(out.wallMs * 1000.0) << '\t'
         << out.result.core.instructions << '\t' << out.result.core.cycles
         << '\t' << out.result.llc.hitsOf(AccessType::Load) << '\t'
         << out.result.llc.hitsOf(AccessType::Store) << '\t'
         << out.result.llc.missesOf(AccessType::Load) << '\t'
         << out.result.llc.missesOf(AccessType::Store) << '\t' << json;
    return line.str();
}

/** @return the parsed outcome, or an error for a malformed line. */
Expected<CellOutcome>
deserialize(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (true) {
        const std::size_t tab = line.find('\t', pos);
        fields.push_back(line.substr(
            pos, tab == std::string::npos ? tab : tab - pos));
        if (tab == std::string::npos)
            break;
        pos = tab + 1;
    }
    if (fields.size() != kNumSummaryFields &&
        fields.size() != kNumFieldsV2) {
        return corruptionError("expected %zu or %zu fields, found %zu",
                               kNumSummaryFields, kNumFieldsV2,
                               fields.size());
    }
    if (fields[0].empty() || fields[1].empty())
        return corruptionError("empty workload or policy name");

    std::uint64_t numbers[kNumSummaryFields - 2];
    for (std::size_t i = 2; i < kNumSummaryFields; ++i) {
        CS_TRY_ASSIGN(numbers[i - 2], parseU64(fields[i]));
    }

    CellOutcome out;
    out.workload = fields[0];
    out.policy = fields[1];
    out.ok = true;
    out.attempts = static_cast<unsigned>(numbers[0]);
    out.wallMs = static_cast<double>(numbers[1]) / 1000.0;
    out.result.llcPolicy = out.policy;
    out.result.core.instructions = numbers[2];
    out.result.core.cycles = numbers[3];
    out.result.llc.hits[typeIndex(AccessType::Load)] = numbers[4];
    out.result.llc.hits[typeIndex(AccessType::Store)] = numbers[5];
    out.result.llc.misses[typeIndex(AccessType::Load)] = numbers[6];
    out.result.llc.misses[typeIndex(AccessType::Store)] = numbers[7];

    if (fields.size() == kNumFieldsV2) {
        // The JSON parser is newline-agnostic, so the flattened
        // document parses as written. A record whose JSON is damaged
        // is rejected whole — the caller treats it like any other
        // corrupt line and the cell re-runs.
        auto doc = metricsFromJson(fields[kNumSummaryFields]);
        if (!doc.ok()) {
            return corruptionError("bad cell metric tree: %s",
                                   doc.status().message().c_str());
        }
        out.hasCellMetrics = true;
        out.cellMetrics = std::move(doc->metrics);
    }
    return out;
}

} // anonymous namespace

CheckpointJournal::~CheckpointJournal()
{
    close();
}

Status
CheckpointJournal::open(const std::string &path)
{
    // The journal is a recovery mechanism: nothing it does — including
    // parsing arbitrarily damaged files — may take the process down.
    // Exceptions escaping the body (bad_alloc under memory pressure,
    // filesystem errors) degrade to a recoverable Status instead.
    try {
        return openImpl(path);
    } catch (const std::exception &e) {
        return internalError(
            "checkpoint journal '%s': unexpected exception: %s",
            path.c_str(), e.what());
    }
}

Status
CheckpointJournal::openImpl(const std::string &path)
{
    CS_FAILPOINT("checkpoint.open");
    std::lock_guard<std::mutex> lock(mutex_);
    CS_ASSERT(file == nullptr, "journal opened twice");
    path_ = path;
    bool needs_header = true;

    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) {
        std::ostringstream raw;
        raw << in.rdbuf();
        in.close();
        const std::string contents = raw.str();

        // Walk the file line by line, tracking byte offsets, so a tail
        // left by an interrupted append — torn mid-line or complete
        // but unparseable — can be truncated back to the last intact
        // record instead of rejecting or silently keeping wreckage.
        std::size_t keep_end = 0;  ///< bytes up to the last intact line
        std::size_t line_no = 0;
        std::size_t pos = 0;
        while (pos < contents.size()) {
            const std::size_t nl = contents.find('\n', pos);
            const bool torn = nl == std::string::npos;
            const std::size_t line_end =
                torn ? contents.size() : nl + 1;
            const std::string line = contents.substr(
                pos, torn ? std::string::npos : nl - pos);
            ++line_no;
            if (line_no == 1) {
                if (torn) {
                    // The run died while writing the very first line.
                    // Nothing intact exists: treat as a fresh journal.
                    break;
                }
                if (line != kJournalHeaderV2 &&
                    line != kJournalHeaderV1) {
                    return corruptionError(
                        "'%s' is not a cachescope checkpoint journal "
                        "(unexpected first line); refusing to touch it",
                        path.c_str());
                }
                needs_header = false;
                keep_end = line_end;
                pos = line_end;
                continue;
            }
            if (torn) {
                // Mid-line torn write: the classic killed-mid-append
                // signature. The partial record re-runs.
                break;
            }
            if (line.empty()) {
                keep_end = line_end;
                pos = line_end;
                continue;
            }
            CS_FAILPOINT("checkpoint.replay");
            auto outcome = deserialize(line);
            if (!outcome.ok()) {
                // Malformed but newline-terminated. Skip it; keep_end
                // stays put, so unless an intact record follows, the
                // file is truncated back to here and the cell re-runs.
                warn("checkpoint '%s' line %zu ignored (%s)",
                     path.c_str(), line_no,
                     outcome.status().message().c_str());
                pos = line_end;
                continue;
            }
            Key key{outcome->workload, outcome->policy};
            entries[std::move(key)] = outcome.take();
            keep_end = line_end;
            pos = line_end;
        }

        if (keep_end < contents.size()) {
            warn("checkpoint '%s': truncating %zu byte(s) after the "
                 "last intact record (interrupted append)",
                 path.c_str(), contents.size() - keep_end);
            std::error_code ec;
            std::filesystem::resize_file(path, keep_end, ec);
            if (ec) {
                return ioError(
                    "cannot repair checkpoint journal '%s': %s",
                    path.c_str(), ec.message().c_str());
            }
        }
        if (keep_end == 0)
            needs_header = true;
    }

    file = std::fopen(path.c_str(), "ab");
    if (!file) {
        return ioError("cannot open checkpoint journal '%s' for append",
                       path.c_str());
    }
    if (needs_header) {
        if (std::fprintf(file, "%s\n", kJournalHeaderV2) < 0 ||
            !flushLocked().ok()) {
            return ioError("cannot write checkpoint header to '%s'",
                           path.c_str());
        }
    }
    return Status();
}

Status
CheckpointJournal::flushLocked()
{
    if (std::fflush(file) != 0)
        return ioError("fflush failed on '%s'", path_.c_str());
    if (sync_ && ::fsync(::fileno(file)) != 0)
        return ioError("fsync failed on '%s'", path_.c_str());
    return Status();
}

void
CheckpointJournal::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

const CellOutcome *
CheckpointJournal::find(const std::string &workload,
                        const std::string &policy) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries.find(Key{workload, policy});
    return it == entries.end() ? nullptr : &it->second;
}

Status
CheckpointJournal::append(const CellOutcome &outcome)
{
    // Same no-throw contract as open(): a failure to checkpoint must
    // degrade to a warning at the call site, never unwind a sweep.
    try {
        return appendImpl(outcome);
    } catch (const std::exception &e) {
        return internalError(
            "checkpoint journal '%s': unexpected exception: %s",
            path_.c_str(), e.what());
    }
}

Status
CheckpointJournal::appendImpl(const CellOutcome &outcome)
{
    if (!outcome.ok) {
        return invalidArgumentError(
            "refusing to checkpoint failed cell %s/%s (failures re-run "
            "on resume)",
            outcome.workload.c_str(), outcome.policy.c_str());
    }
    CS_FAILPOINT("checkpoint.append");
    const std::string line = serialize(outcome);
    // One critical section covers both the file write and the index
    // update: a record must never appear in one but not the other, and
    // two appends must never interleave bytes on disk.
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file)
        return internalError("checkpoint journal is not open");
    if (std::fprintf(file, "%s\n", line.c_str()) < 0 ||
        !flushLocked().ok()) {
        return ioError("cannot append to checkpoint journal '%s'",
                       path_.c_str());
    }
    entries[Key{outcome.workload, outcome.policy}] = outcome;
    return Status();
}

} // namespace cachescope
