/**
 * @file
 * Co-run harness implementation: tenant capture, stream assembly, the
 * shared-LLC simulation itself, and the solo-baseline pass behind
 * weighted speedup and fairness.
 */

#include "harness/corun.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "harness/experiment.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

namespace cachescope {

namespace {

/**
 * Captures a workload's instruction stream into memory, bounded by a
 * budget (0 = capture everything). The co-run arbiter pulls records,
 * while workloads push them — this sink is the adapter between the two.
 */
class CaptureSink final : public InstructionSink
{
  public:
    explicit CaptureSink(std::uint64_t budget) : budget_(budget) {}

    void
    onInstruction(const TraceRecord &rec) override
    {
        records_.push_back(rec);
    }

    bool
    wantsMore() const override
    {
        return budget_ == 0 || records_.size() < budget_;
    }

    std::vector<TraceRecord>
    take()
    {
        return std::move(records_);
    }

  private:
    std::uint64_t budget_;
    std::vector<TraceRecord> records_;
};

/** Solo IPC of a trace tenant under @p config (for baselines). */
Expected<double>
soloTraceIpc(const std::string &path, const SimConfig &config)
{
    auto reader_or = TraceReader::open(path);
    if (!reader_or.ok())
        return reader_or.status();
    std::unique_ptr<TraceReader> reader = reader_or.take();
    Simulator sim(config);
    TraceRecord rec;
    while (sim.wantsMore() && reader->next(rec))
        sim.onInstruction(rec);
    CS_TRY(reader->status());
    return sim.result().ipc();
}

} // namespace

std::string
CorunTenant::name() const
{
    return workload ? workload->name() : tracePath;
}

void
CorunReport::exportMetrics(MetricsRegistry &metrics,
                           const std::string &prefix) const
{
    result.exportMetrics(metrics, prefix);
    const std::string p = prefix.empty() ? "" : prefix + ".";
    // Same timing gauges runOne() emits, so the 1-core co-run tree has
    // exactly the single-core tree's shape (values differ only by
    // wall-clock noise, which the identity test strips). As in runOne,
    // everything outside the measured phase — tenant capture included —
    // lands on the warmup side of the split.
    const double wall = std::max(wallSeconds, 0.0);
    const double measure =
        std::clamp(result.measureWallSeconds, 0.0, wall);
    metrics.setGauge(p + "sim.wall_seconds", wallSeconds);
    metrics.setGauge(p + "sim.warmup_wall_seconds", wall - measure);
    metrics.setGauge(p + "sim.measure_wall_seconds", measure);
    metrics.setGauge(p + "sim.throughput_mips", throughputMips);
    if (soloIpc.empty() || result.cores.size() < 2)
        return;
    metrics.setGauge(p + "corun.weighted_speedup", weightedSpeedup);
    metrics.setGauge(p + "corun.fairness", fairness);
    for (std::size_t i = 0; i < result.cores.size(); ++i) {
        const std::string cp = p + "core" + std::to_string(i);
        metrics.setGauge(cp + ".derived.solo_ipc", soloIpc[i]);
        if (soloIpc[i] > 0.0) {
            metrics.setGauge(cp + ".derived.speedup_over_solo",
                             result.cores[i].ipc() / soloIpc[i]);
        }
    }
}

Expected<CorunReport>
runCorun(const std::vector<CorunTenant> &tenants,
         const CorunRunOptions &options)
{
    const auto start = std::chrono::steady_clock::now();
    const std::size_t n = tenants.size();
    CorunConfig config = options.config;

    // Per-tenant warmups: workload tenants get their warmupHint()
    // honoured exactly like runOne(); trace tenants use the template's.
    config.coreWarmups.assign(n, config.base.warmupInstructions);
    for (std::size_t i = 0; i < n; ++i) {
        if (tenants[i].workload) {
            config.coreWarmups[i] =
                std::max(config.coreWarmups[i],
                         tenants[i].workload->warmupHint());
        }
    }
    CS_TRY(config.validate(n));
    for (const CorunTenant &t : tenants) {
        if (!t.workload && t.tracePath.empty())
            return invalidArgumentError(
                "corun tenant has neither a workload nor a trace path");
    }

    std::vector<std::unique_ptr<CorunStream>> streams;
    std::vector<TraceFileStream *> file_streams(n, nullptr);
    streams.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (tenants[i].workload) {
            const InstCount measure = config.base.measureInstructions;
            const std::uint64_t budget =
                measure == 0 ? 0 : config.coreWarmups[i] + measure;
            CaptureSink sink(budget);
            tenants[i].workload->run(sink);
            streams.push_back(std::make_unique<VectorStream>(
                tenants[i].workload->name(), sink.take()));
        } else {
            auto stream_or = TraceFileStream::open(tenants[i].tracePath);
            if (!stream_or.ok())
                return stream_or.status();
            file_streams[i] = stream_or.value().get();
            streams.push_back(stream_or.take());
        }
    }

    CorunSimulator sim(config, n);
    std::vector<CorunStream *> raw;
    raw.reserve(n);
    for (const auto &s : streams)
        raw.push_back(s.get());
    sim.run(raw);

    // A trace stream that dried up because of truncation or corruption
    // is an input error, not a short tenant.
    for (std::size_t i = 0; i < n; ++i) {
        if (file_streams[i] != nullptr)
            CS_TRY(file_streams[i]->status());
    }

    // A tenant whose stream ended inside its warmup produced no
    // measured traffic at all; worth a warning, not an error.
    for (std::size_t i = 0; i < n; ++i) {
        if (config.coreWarmups[i] > 0 && !sim.core(i).inMeasurement()) {
            warn("corun tenant '%s' ended after %llu of %llu warmup "
                 "instructions; its measured window is empty",
                 tenants[i].name().c_str(),
                 static_cast<unsigned long long>(
                     sim.core(i).instructionsConsumed()),
                 static_cast<unsigned long long>(config.coreWarmups[i]));
        }
    }

    CorunReport report;
    report.result = sim.result();
    report.tenantNames.reserve(n);
    InstCount total_instructions = 0;
    for (std::size_t i = 0; i < n; ++i) {
        report.tenantNames.push_back(tenants[i].name());
        total_instructions += sim.core(i).instructionsConsumed();
    }

    constexpr double kMinSeconds = 1e-9;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    report.wallSeconds = secs;
    report.throughputMips = static_cast<double>(total_instructions) /
                            std::max(secs, kMinSeconds) / 1e6;

    if (!options.soloBaselines)
        return report;

    // Solo pass: each tenant alone under the same template (same
    // warmup/measure windows, same LLC policy, whole LLC to itself).
    report.soloIpc.assign(n, 0.0);
    double speedup_sum = 0.0;
    double rel_min = 0.0;
    double rel_max = 0.0;
    bool have_rel = false;
    for (std::size_t i = 0; i < n; ++i) {
        double solo = 0.0;
        if (tenants[i].workload) {
            solo = runOne(*tenants[i].workload, config.base).ipc();
        } else {
            SimConfig solo_cfg = config.base;
            solo_cfg.warmupInstructions = config.coreWarmups[i];
            auto ipc_or = soloTraceIpc(tenants[i].tracePath, solo_cfg);
            if (!ipc_or.ok())
                return ipc_or.status();
            solo = ipc_or.value();
        }
        report.soloIpc[i] = solo;
        if (solo > 0.0) {
            const double rel = report.result.cores[i].ipc() / solo;
            speedup_sum += rel;
            if (!have_rel || rel < rel_min)
                rel_min = rel;
            if (!have_rel || rel > rel_max)
                rel_max = rel;
            have_rel = true;
        }
    }
    report.weightedSpeedup = speedup_sum;
    report.fairness = (have_rel && rel_max > 0.0) ? rel_min / rel_max : 0.0;
    return report;
}

} // namespace cachescope
