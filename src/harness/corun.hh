/**
 * @file
 * The co-run harness: turns named tenants (zoo workloads or captured
 * trace files) into CorunStreams, drives a CorunSimulator, and reports
 * the multi-programmed summary metrics the scheduling literature uses —
 * weighted speedup (sum of each tenant's IPC relative to running alone)
 * and fairness (min/max relative progress).
 */

#ifndef CACHESCOPE_HARNESS_CORUN_HH
#define CACHESCOPE_HARNESS_CORUN_HH

#include <memory>
#include <string>
#include <vector>

#include "core/corun.hh"
#include "trace/workload.hh"

namespace cachescope {

/**
 * One co-run tenant: either a live workload (captured into memory and
 * replayed through the arbiter) or a pre-recorded trace file (streamed
 * from disk). Exactly one of the two fields is set.
 */
struct CorunTenant
{
    std::shared_ptr<Workload> workload;
    std::string tracePath;

    static CorunTenant
    fromWorkload(std::shared_ptr<Workload> w)
    {
        CorunTenant t;
        t.workload = std::move(w);
        return t;
    }

    static CorunTenant
    fromTrace(std::string path)
    {
        CorunTenant t;
        t.tracePath = std::move(path);
        return t;
    }

    /** Display name: the workload's name or the trace path. */
    std::string name() const;
};

/** Options for one harness-level co-run. */
struct CorunRunOptions
{
    CorunConfig config;
    /**
     * Additionally simulate each tenant *alone* under the same
     * configuration to compute weighted speedup and fairness. Roughly
     * doubles the work; off by default.
     */
    bool soloBaselines = false;
};

/** Everything a harness-level co-run reports. */
struct CorunReport
{
    CorunResult result;
    std::vector<std::string> tenantNames;
    /** Per-tenant solo IPCs (empty unless soloBaselines). */
    std::vector<double> soloIpc;
    /** Sum over tenants of IPC_corun / IPC_alone (0 w/o baselines). */
    double weightedSpeedup = 0.0;
    /** min/max of the per-tenant relative progress (0 w/o baselines). */
    double fairness = 0.0;
    /** Wall-clock duration of the co-run pass (baselines excluded). */
    double wallSeconds = 0.0;
    /** Aggregate simulation throughput over all cores, in MIPS. */
    double throughputMips = 0.0;

    /**
     * Export the full co-run tree (CorunResult::exportMetrics) plus,
     * when baselines ran, "corun.weighted_speedup"/"corun.fairness"
     * and per-core "core<i>.derived.solo_ipc"/".speedup_over_solo".
     * Baseline gauges are only emitted for N >= 2 cores, keeping the
     * 1-core export byte-identical to a single-core run.
     */
    void exportMetrics(MetricsRegistry &metrics,
                       const std::string &prefix = "") const;
};

/**
 * Run @p tenants together over one shared LLC.
 *
 * Workload tenants get their warmup raised by warmupHint() (matching
 * runOne) and are captured up to warmup + measure instructions; trace
 * tenants stream straight from disk and use the configured warmup.
 * @return the report, or an error for unreadable/corrupt trace tenants
 * and invalid configurations. Throws CancelledError on cancellation,
 * like runOne.
 */
Expected<CorunReport> runCorun(const std::vector<CorunTenant> &tenants,
                               const CorunRunOptions &options);

} // namespace cachescope

#endif // CACHESCOPE_HARNESS_CORUN_HH
