/**
 * @file
 * Result reporting implementation.
 */

#include "harness/report.hh"

namespace cachescope {

Table
simResultTable(const SimResult &result)
{
    Table table({"metric", "value"});
    auto row = [&table](const char *metric, double value, int precision) {
        table.newRow();
        table.addCell(metric);
        table.addNumber(value, precision);
    };
    row("IPC", result.ipc(), 3);
    row("instructions", static_cast<double>(result.core.instructions), 0);
    row("cycles", static_cast<double>(result.core.cycles), 0);
    row("L1D MPKI", result.mpkiL1d(), 2);
    row("L2 MPKI", result.mpkiL2(), 2);
    row("LLC MPKI", result.mpkiLlc(), 2);
    row("LLC miss rate", result.llc.demandMissRate(), 3);
    row("L1D-miss DRAM ratio", result.dramServiceRatio(), 3);
    row("DRAM reads", static_cast<double>(result.dram.reads), 0);
    row("DRAM writes", static_cast<double>(result.dram.writes), 0);
    row("DRAM row-hit rate", result.dram.rowHitRate(), 3);
    row("DRAM avg latency (cyc)", result.dram.avgLatency(), 1);
    if (result.l2.prefetchesIssued > 0) {
        row("L2 prefetches issued",
            static_cast<double>(result.l2.prefetchesIssued), 0);
        row("L2 prefetch accuracy",
            static_cast<double>(result.l2.prefetchesUseful) /
                static_cast<double>(result.l2.prefetchesIssued), 3);
    }
    return table;
}

void
printSimResult(const SimResult &result, std::ostream &os)
{
    simResultTable(result).printAscii(os);
}

} // namespace cachescope
