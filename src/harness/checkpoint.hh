/**
 * @file
 * Append-only checkpoint journal for sweep resumability.
 *
 * Every successfully completed (workload x policy) cell is appended as
 * one line and flushed immediately, so a sweep killed mid-run (OOM,
 * ^C, node preemption) can be re-invoked with the same journal file
 * and only the unfinished cells are simulated again. A v2 record
 * carries both the summary statistics the reporting layer needs (IPC
 * and LLC demand behaviour) and the cell's full exported metric tree,
 * so a resumed sweep reproduces the uninterrupted run's metrics
 * byte-for-byte. v1 journals (summary fields only) are still read.
 *
 * The format is line-oriented, tab-separated text: a header line
 * followed by one record per cell. Parsing is deliberately tolerant of
 * a malformed *trailing* line — the expected wreckage of a process
 * killed mid-append — which is skipped with a warning.
 *
 * Durability: by default each record is pushed to the kernel with
 * fflush() but NOT fsynced, so a machine crash (power loss, kernel
 * panic — not a mere process kill) can still tear the last record or
 * lose recently appended ones; open() repairs the tear and the lost
 * cells simply re-run. setSync(true) (CLI: --checkpoint-sync) closes
 * that window by fsync()ing after every append, at a per-record
 * latency cost that is negligible next to a simulation cell.
 */

#ifndef CACHESCOPE_HARNESS_CHECKPOINT_HH
#define CACHESCOPE_HARNESS_CHECKPOINT_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "harness/experiment.hh"
#include "util/status.hh"

namespace cachescope {

class CheckpointJournal
{
  public:
    CheckpointJournal() = default;
    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /**
     * Open @p path for resuming and appending; loads any cells a
     * previous run completed. Creates the file if missing; rejects
     * files that are not checkpoint journals.
     */
    Status open(const std::string &path);

    /** Flush and close (also run by the destructor). */
    void close();

    /**
     * @return the completed outcome recorded for this cell, or nullptr
     * if the cell has not been completed yet. The pointer stays valid
     * across concurrent append()s (entries are never erased), but the
     * cell it names must not also be appended concurrently.
     */
    const CellOutcome *find(const std::string &workload,
                            const std::string &policy) const;

    /**
     * Record a successfully completed cell; flushed immediately.
     * Safe to call from multiple threads: the line write and the
     * in-memory index update happen under an internal mutex, so
     * concurrent appends can never interleave bytes within the
     * journal file.
     */
    Status append(const CellOutcome &outcome);

    /** Number of completed cells currently in the journal. */
    std::size_t
    completedCells() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries.size();
    }

    const std::string &path() const { return path_; }

    /**
     * When enabled, fsync() the journal after the header write and
     * after every append, closing the machine-crash torn-write window
     * described in the file comment. Takes effect from the next write;
     * call it before open() to cover the header too.
     */
    void
    setSync(bool sync)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sync_ = sync;
    }

  private:
    /** open()/append() bodies; the public wrappers add the
     * exception-to-Status boundary. */
    Status openImpl(const std::string &path);
    Status appendImpl(const CellOutcome &outcome);

    /** Flush `file`, and fsync it too when sync_ is set. */
    Status flushLocked();

    using Key = std::pair<std::string, std::string>;

    /** Guards `file` and `entries` against concurrent append()s. */
    mutable std::mutex mutex_;
    std::string path_;
    std::FILE *file = nullptr;
    bool sync_ = false;
    std::map<Key, CellOutcome> entries;
};

} // namespace cachescope

#endif // CACHESCOPE_HARNESS_CHECKPOINT_HH
