/**
 * @file
 * Append-only checkpoint journal for sweep resumability.
 *
 * Every successfully completed (workload x policy) cell is appended as
 * one line and flushed immediately, so a sweep killed mid-run (OOM,
 * ^C, node preemption) can be re-invoked with the same journal file
 * and only the unfinished cells are simulated again. The journal
 * stores the summary statistics the reporting layer needs (IPC and LLC
 * demand behaviour), not full SimResult detail.
 *
 * The format is line-oriented, tab-separated text: a header line
 * followed by one record per cell. Parsing is deliberately tolerant of
 * a malformed *trailing* line — the expected wreckage of a process
 * killed mid-append — which is skipped with a warning.
 */

#ifndef CACHESCOPE_HARNESS_CHECKPOINT_HH
#define CACHESCOPE_HARNESS_CHECKPOINT_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "harness/experiment.hh"
#include "util/status.hh"

namespace cachescope {

class CheckpointJournal
{
  public:
    CheckpointJournal() = default;
    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /**
     * Open @p path for resuming and appending; loads any cells a
     * previous run completed. Creates the file if missing; rejects
     * files that are not checkpoint journals.
     */
    Status open(const std::string &path);

    /** Flush and close (also run by the destructor). */
    void close();

    /**
     * @return the completed outcome recorded for this cell, or nullptr
     * if the cell has not been completed yet. The pointer stays valid
     * across concurrent append()s (entries are never erased), but the
     * cell it names must not also be appended concurrently.
     */
    const CellOutcome *find(const std::string &workload,
                            const std::string &policy) const;

    /**
     * Record a successfully completed cell; flushed immediately.
     * Safe to call from multiple threads: the line write and the
     * in-memory index update happen under an internal mutex, so
     * concurrent appends can never interleave bytes within the
     * journal file.
     */
    Status append(const CellOutcome &outcome);

    /** Number of completed cells currently in the journal. */
    std::size_t
    completedCells() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries.size();
    }

    const std::string &path() const { return path_; }

  private:
    using Key = std::pair<std::string, std::string>;

    /** Guards `file` and `entries` against concurrent append()s. */
    mutable std::mutex mutex_;
    std::string path_;
    std::FILE *file = nullptr;
    std::map<Key, CellOutcome> entries;
};

} // namespace cachescope

#endif // CACHESCOPE_HARNESS_CHECKPOINT_HH
