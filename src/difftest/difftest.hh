/**
 * @file
 * The differential-testing driver.
 *
 * Ties the pieces of the difftest subsystem together: for a seed it
 * generates an adversarial stream (stream_fuzzer), replays it through
 * both the production Cache and the reference model (reference_cache),
 * and checks six invariant families:
 *
 *  1. model agreement — per-access hit/miss/way/victim equality between
 *     core/cache.cc and the reference model, for every policy with a
 *     reference implementation (LRU, SRRIP);
 *  2. OPT dominance — Belady's optimal-with-bypass hit count bounds
 *     every registered policy's on the same stream;
 *  3. trace round-trip — write -> read -> write of the stream as a v2
 *     trace preserves every record and produces byte-identical files;
 *  4. conservation — the exported metrics tree of a full Simulator run
 *     obeys the hierarchy's flow-conservation laws (e.g. LLC accesses
 *     of a type equal L2 misses of that type);
 *  5. sweep equality — a serial and a parallel SuiteRunner sweep over
 *     the stream produce byte-identical metric trees (modulo wall-clock
 *     gauges);
 *  6. sampling accuracy — for every registered policy, 1-in-N LLC
 *     set-sampling obeys exact structural laws (scaled counters,
 *     published set selection); for strictly per-set policies the
 *     sampled run additionally equals the full run restricted to the
 *     sampled sets bit-exactly, and its scaled estimate agrees with
 *     the full run within a configurable relative-error budget
 *     slackened by the true (population) sampling standard error.
 *
 * A violation is reported as a DiffFailure carrying the expected and
 * actual metric trees; minimize() shrinks the triggering stream by
 * prefix bisection plus chunk removal while the violation reproduces.
 */

#ifndef CACHESCOPE_DIFFTEST_DIFFTEST_HH
#define CACHESCOPE_DIFFTEST_DIFFTEST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "difftest/stream_fuzzer.hh"
#include "stats/metrics.hh"
#include "trace/workload.hh"
#include "util/status.hh"

namespace cachescope::difftest {

/** How the differential driver exercises one registered policy. */
enum class CheckKind : std::uint8_t {
    /** Checked access-by-access against a reference model + dominance. */
    ExactModel,
    /** Checked against the OPT hit-count bound only. */
    DominanceOnly,
};

/** One registered policy and the invariant family that covers it. */
struct RunMatrixEntry
{
    std::string policy;
    CheckKind kind = CheckKind::DominanceOnly;
    /** Sampling-accuracy budget multiplier. > 0: strictly per-set
     *  state, held to exact restriction equality plus the statistical
     *  bound (budget x this). 0: globally-coupled state (PSEL,
     *  predictor tables, shared fill counters, a single RNG stream),
     *  structural checks only. */
    double samplingSlack = 1.0;
};

/**
 * Build the policy run matrix from @p registered (normally the live
 * ReplacementPolicyFactory listing). Every registered policy must have
 * a coverage entry and vice versa; a divergence in either direction is
 * an Internal error, so adding a policy without difftest coverage
 * fails loudly rather than silently shrinking the net.
 */
Expected<std::vector<RunMatrixEntry>>
buildRunMatrixFor(const std::vector<std::string> &registered);

/** buildRunMatrixFor() over the live policy registry. */
Expected<std::vector<RunMatrixEntry>> buildRunMatrix();

/** Sentinel for "no single access localizes this failure". */
inline constexpr std::size_t kNoAccess = ~std::size_t{0};

/** One invariant violation found by the driver. */
struct DiffFailure
{
    std::uint64_t seed = 0;
    StreamKind kind = StreamKind::ScanThrash;
    /** Violated invariant id, "family" or "family:detail"
     *  ("model_agreement:lru", "opt_dominance:ship", ...). */
    std::string invariant;
    /** Human-readable description of the divergence. */
    std::string detail;
    /** Index (into the memory records) of the first diverging access,
     *  or kNoAccess when the violation is not access-localized. */
    std::size_t firstBadAccess = kNoAccess;
    /** Memory records in the stream that was checked. */
    std::size_t memoryAccesses = 0;
    /** What the invariant demanded, as a metric tree. */
    MetricsRegistry expected;
    /** What the system under test produced. */
    MetricsRegistry actual;
};

/** Knobs of one differential run. */
struct DiffOptions
{
    /** Memory records per generated stream. */
    std::size_t memoryAccesses = 8192;
    /** Geometry of the bare cache under differential test. */
    CacheGeometry geometry{64, 8, 64};
    /** Directory for trace round-trip scratch files; "" skips trace
     *  round-trip checks (e.g. minimization inner loops). */
    std::string scratchDir;
    /** Run the serial-vs-parallel sweep equality family. */
    bool checkSweep = true;
    /** Run the full-Simulator metrics conservation family. */
    bool checkConservation = true;
    /**
     * Run the sampled-vs-full accuracy family: every registered policy
     * is run twice over the stream on a bare cache — exact, and with
     * 1-in-samplingRate LLC set-sampling. Structural invariants hold
     * exactly for every policy (scaled counters = raw x rate, the
     * access-count estimate equals an independent recount over the
     * published set selection, miss rate = misses/accesses in [0,1],
     * finite stderr). Policies whose replacement state is strictly
     * per-set must additionally (a) reproduce the full run restricted
     * to the sampled sets bit-exactly — sampling is a pure set filter
     * — and (b) agree statistically with the full run within
     * samplingErrorBudget, slackened by the estimator's true standard
     * error from the full run's per-set miss distribution and a
     * small-count floor. Globally-coupled policies (set dueling, PC
     * predictors, shared bimodal counters, RNG streams) are exempt
     * from (a) and (b) — filtering the stream changes the surviving
     * sets' behaviour (training dilution) — and their accuracy is
     * instead held on the realistic LLC geometry by the fastsim tests.
     */
    bool checkSampling = true;
    /** Relative-error budget of the sampling accuracy family. */
    double samplingErrorBudget = 0.02;
    /** Set-sampling rate the accuracy family simulates with (a power
     *  of two dividing geometry.numSets; 1 disables the family). */
    std::uint32_t samplingRate = 4;
    /**
     * Test-only bug injection: replace the simulator-side LRU with an
     * off-by-one victim pick, which the model-agreement family must
     * catch. Never set outside tests of the difftest subsystem itself.
     */
    bool injectOffByOneLru = false;
};

/** An in-memory Workload replaying a fixed record vector. */
class VectorWorkload : public Workload
{
  public:
    VectorWorkload(std::string name, std::vector<TraceRecord> records)
        : name_(std::move(name)), records(std::move(records))
    {}

    const std::string &name() const override { return name_; }

    void
    run(InstructionSink &sink) override
    {
        for (const TraceRecord &rec : records) {
            if (!sink.wantsMore())
                break;
            sink.onInstruction(rec);
        }
        sink.onEnd();
    }

  private:
    std::string name_;
    std::vector<TraceRecord> records;
};

/**
 * The differential driver. Construction validates that the run matrix
 * covers the live policy registry exactly.
 */
class DifferentialDriver
{
  public:
    /** Result of shrinking a failing stream. */
    struct MinimizeResult
    {
        std::vector<TraceRecord> stream;
        /** Predicate evaluations consumed. */
        std::size_t evaluations = 0;
    };

    static Expected<std::unique_ptr<DifferentialDriver>>
    create(DiffOptions options);

    const DiffOptions &options() const { return opts; }
    const std::vector<RunMatrixEntry> &runMatrix() const { return matrix; }

    /** @return the full (filler included) stream for @p seed. */
    std::vector<TraceRecord> streamForSeed(std::uint64_t seed) const;

    /**
     * Generate the stream for @p seed and check every enabled invariant
     * family. @return the violations found (empty = all invariants
     * hold); a non-OK Expected signals an infrastructure error (e.g.
     * an unwritable scratch directory), not an invariant violation.
     */
    Expected<std::vector<DiffFailure>> runSeed(std::uint64_t seed);

    /**
     * Check every enabled invariant family on an explicit stream
     * (attributed to @p seed / the seed's kind in reports).
     */
    Expected<std::vector<DiffFailure>>
    checkStream(const std::vector<TraceRecord> &stream, std::uint64_t seed);

    /**
     * @return true iff @p invariant (as reported in a DiffFailure)
     * still fires on @p stream. Re-runs only the relevant family, so
     * it is cheap enough to drive minimization.
     */
    bool failsOn(const std::vector<TraceRecord> &stream,
                 std::uint64_t seed, const std::string &invariant);

    /**
     * Shrink @p stream while @p failure's invariant keeps firing:
     * truncate after the first diverging access if one is known, then
     * bisect to the shortest failing prefix, then drop chunks ddmin-
     * style. Bounded by @p maxEvaluations predicate runs. The result
     * is always a failing stream (or the input, if nothing smaller
     * fails within budget).
     */
    MinimizeResult minimize(const std::vector<TraceRecord> &stream,
                            const DiffFailure &failure,
                            std::size_t maxEvaluations = 200);

  private:
    explicit DifferentialDriver(DiffOptions options,
                                std::vector<RunMatrixEntry> matrix);

    void checkModelAgreement(const std::vector<TraceRecord> &mem,
                             const std::string &policy, std::uint64_t seed,
                             std::vector<DiffFailure> &out) const;
    void checkOptDominance(const std::vector<TraceRecord> &mem,
                           const std::string &policy, std::uint64_t seed,
                           std::vector<DiffFailure> &out) const;
    Status checkTraceRoundTrip(const std::vector<TraceRecord> &stream,
                               std::uint64_t seed,
                               std::vector<DiffFailure> &out) const;
    void checkConservation(const std::vector<TraceRecord> &stream,
                           std::uint64_t seed,
                           std::vector<DiffFailure> &out) const;
    void checkSweepEquality(const std::vector<TraceRecord> &stream,
                            std::uint64_t seed,
                            std::vector<DiffFailure> &out) const;
    void checkSamplingAccuracy(const std::vector<TraceRecord> &mem,
                               const RunMatrixEntry &entry,
                               std::uint64_t seed,
                               std::vector<DiffFailure> &out) const;

    DiffOptions opts;
    std::vector<RunMatrixEntry> matrix;
};

} // namespace cachescope::difftest

#endif // CACHESCOPE_DIFFTEST_DIFFTEST_HH
