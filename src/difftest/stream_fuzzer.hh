/**
 * @file
 * Deterministic, seeded generators of adversarial access streams.
 *
 * Each generator targets a known cache-model failure mode: scan/thrash
 * cycles sized at multiples of the associativity (RRIP aging and
 * set-dueling corner cases), pointer chases (recency-stack churn),
 * PC-starved graph-like streams (PC-indexed predictor aliasing), mixed
 * working sets (hot/cold interleaving that flips DIP/DRRIP duels), and
 * prefetch-friendly strides punctuated by pollution (prefetch-fill
 * bookkeeping). Streams are ordinary TraceRecord vectors, so every
 * failing input can be written out as a v2 trace and replayed bit-for-
 * bit by the normal tooling.
 *
 * Everything is a pure function of the seed: the same (seed, length,
 * geometry) always produces byte-identical streams.
 */

#ifndef CACHESCOPE_DIFFTEST_STREAM_FUZZER_HH
#define CACHESCOPE_DIFFTEST_STREAM_FUZZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "replacement/replacement_policy.hh"
#include "trace/record.hh"

namespace cachescope::difftest {

/** The adversarial access-pattern families the fuzzer draws from. */
enum class StreamKind : std::uint8_t {
    ScanThrash = 0,      ///< cyclic scans at K x assoc working sets
    PointerChase = 1,    ///< permutation walk, no spatial locality
    PcStarved = 2,       ///< few PCs over many addresses (graph-like)
    MixedWorkingSets = 3,///< zipf-hot set + cold scans, mixed ld/st
    PrefetchPolluted = 4,///< strided runs punctuated by random noise
};

inline constexpr std::size_t kNumStreamKinds = 5;

/** @return a short lowercase name for @p kind. */
const char *streamKindName(StreamKind kind);

/** Shape parameters of one generated stream. */
struct StreamSpec
{
    std::uint64_t seed = 1;
    /** Memory records generated (ALU/branch filler rides on top). */
    std::size_t memoryAccesses = 8192;
    /** Geometry the working sets are scaled against. */
    CacheGeometry geometry{64, 8, 64};
    StreamKind kind = StreamKind::ScanThrash;
};

/** @return the deterministic kind the seeded mix assigns to @p seed. */
StreamKind kindForSeed(std::uint64_t seed);

/**
 * Generate the stream described by @p spec. Records are loads/stores
 * with stable synthetic PCs plus ALU/branch filler, so the same vector
 * drives a bare Cache (memory records only), a full Simulator, or a
 * TraceWriter unchanged.
 */
std::vector<TraceRecord> generateStream(const StreamSpec &spec);

/** @return only the memory records of @p stream, in order. */
std::vector<TraceRecord>
memoryRecordsOf(const std::vector<TraceRecord> &stream);

} // namespace cachescope::difftest

#endif // CACHESCOPE_DIFFTEST_STREAM_FUZZER_HH
