/**
 * @file
 * Stream generator implementations.
 */

#include "difftest/stream_fuzzer.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace cachescope::difftest {

namespace {

/** Base of the synthetic PC space (arbitrary, recognizable). */
constexpr Pc kPcBase = 0x400000;

/** Block-aligned byte address for block index @p b. */
Addr
blockAddr(const StreamSpec &spec, std::uint64_t b)
{
    return b * spec.geometry.blockBytes;
}

/** Emit one memory record, with a store mix ratio and PC choice. */
void
emitMem(std::vector<TraceRecord> &out, Rng &rng, Pc pc, Addr addr,
        double store_prob)
{
    if (rng.nextBool(store_prob))
        out.push_back(TraceRecord::store(pc, addr));
    else
        out.push_back(TraceRecord::load(pc, addr));
}

/** Sprinkle ALU/branch filler so Simulator runs exercise the frontend. */
void
emitFiller(std::vector<TraceRecord> &out, Rng &rng, Pc pc)
{
    if (rng.nextBool(0.15))
        out.push_back(TraceRecord::alu(pc + 4));
    if (rng.nextBool(0.05))
        out.push_back(TraceRecord::branch(pc + 8));
}

/**
 * Cyclic scans over a working set of K x (ways x sets) blocks, with K
 * drawn from just-fits through 2x-thrash. Direction occasionally
 * reverses and the scan restarts from random phases, the classic
 * LRU-pathological / RRIP-friendly family.
 */
void
genScanThrash(const StreamSpec &spec, Rng &rng,
              std::vector<TraceRecord> &out)
{
    const std::uint64_t cache_blocks =
        std::uint64_t{spec.geometry.numSets} * spec.geometry.numWays;
    // K in {0.5, 1, 1.25, 1.5, 2} of the cache size.
    constexpr double kFactors[] = {0.5, 1.0, 1.25, 1.5, 2.0};
    const double k = kFactors[rng.nextBounded(5)];
    const std::uint64_t ws = std::max<std::uint64_t>(
        spec.geometry.numWays,
        static_cast<std::uint64_t>(static_cast<double>(cache_blocks) * k));
    const std::uint64_t base = rng.nextBounded(1 << 20);
    const double store_prob = rng.nextDouble() * 0.3;

    std::uint64_t cursor = rng.nextBounded(ws);
    bool forward = true;
    for (std::size_t i = 0; i < spec.memoryAccesses; ++i) {
        const Pc pc = kPcBase + 16 * (cursor % 7);
        emitMem(out, rng, pc, blockAddr(spec, base + cursor), store_prob);
        emitFiller(out, rng, pc);
        cursor = forward ? (cursor + 1) % ws : (cursor + ws - 1) % ws;
        if (rng.nextBool(0.001)) {
            forward = !forward;
            cursor = rng.nextBounded(ws);
        }
    }
}

/** Random permutation walk: every access depends on the previous one. */
void
genPointerChase(const StreamSpec &spec, Rng &rng,
                std::vector<TraceRecord> &out)
{
    const std::uint64_t cache_blocks =
        std::uint64_t{spec.geometry.numSets} * spec.geometry.numWays;
    const std::uint64_t n =
        cache_blocks * (1 + rng.nextBounded(7));  // 1x..7x the cache
    std::vector<std::uint32_t> next(n);
    std::iota(next.begin(), next.end(), 0u);
    // Fisher-Yates into a single cycle-free permutation.
    for (std::uint64_t i = n - 1; i > 0; --i) {
        const std::uint64_t j = rng.nextBounded(i + 1);
        std::swap(next[i], next[j]);
    }
    const std::uint64_t base = rng.nextBounded(1 << 20);
    std::uint64_t node = rng.nextBounded(n);
    for (std::size_t i = 0; i < spec.memoryAccesses; ++i) {
        emitMem(out, rng, kPcBase + 32, blockAddr(spec, base + node), 0.0);
        emitFiller(out, rng, kPcBase + 32);
        node = next[node];
    }
}

/**
 * Graph-like: one or two PCs issue uniform random accesses over a large
 * footprint. PC-indexed predictors (SHiP, Hawkeye, Glider, MPPPB) see a
 * single starved signature carrying no signal.
 */
void
genPcStarved(const StreamSpec &spec, Rng &rng,
             std::vector<TraceRecord> &out)
{
    const std::uint64_t cache_blocks =
        std::uint64_t{spec.geometry.numSets} * spec.geometry.numWays;
    const std::uint64_t footprint = cache_blocks * (2 + rng.nextBounded(7));
    const std::uint64_t base = rng.nextBounded(1 << 20);
    const unsigned num_pcs = 1 + static_cast<unsigned>(rng.nextBounded(2));
    for (std::size_t i = 0; i < spec.memoryAccesses; ++i) {
        const Pc pc = kPcBase + 16 * rng.nextBounded(num_pcs);
        const std::uint64_t b = rng.nextBounded(footprint);
        emitMem(out, rng, pc, blockAddr(spec, base + b), 0.1);
    }
}

/**
 * A zipf-distributed hot set that fits in the cache, interleaved with
 * cold scan bursts that do not — the pattern that flips DIP/DRRIP
 * set-duels back and forth.
 */
void
genMixedWorkingSets(const StreamSpec &spec, Rng &rng,
                    std::vector<TraceRecord> &out)
{
    const std::uint64_t cache_blocks =
        std::uint64_t{spec.geometry.numSets} * spec.geometry.numWays;
    const std::uint64_t hot = std::max<std::uint64_t>(8, cache_blocks / 2);
    const std::uint64_t cold = cache_blocks * 4;
    const std::uint64_t hot_base = rng.nextBounded(1 << 20);
    const std::uint64_t cold_base = hot_base + hot + rng.nextBounded(1 << 20);
    const double zipf_s = 0.5 + rng.nextDouble();
    std::uint64_t cold_cursor = 0;
    std::size_t i = 0;
    while (i < spec.memoryAccesses) {
        if (rng.nextBool(0.1)) {
            // Cold scan burst.
            const std::size_t burst =
                std::min<std::size_t>(spec.memoryAccesses - i,
                                      64 + rng.nextBounded(256));
            for (std::size_t j = 0; j < burst; ++j, ++i) {
                emitMem(out, rng, kPcBase + 96,
                        blockAddr(spec, cold_base + cold_cursor), 0.05);
                cold_cursor = (cold_cursor + 1) % cold;
            }
        } else {
            const std::uint64_t b = rng.nextZipf(hot, zipf_s);
            const Pc pc = kPcBase + 16 * (b % 5);
            emitMem(out, rng, pc, blockAddr(spec, hot_base + b), 0.3);
            emitFiller(out, rng, pc);
            ++i;
        }
    }
}

/**
 * Long unit-stride runs (textbook prefetcher food) punctuated by random
 * hot-set touches, so a prefetching hierarchy fills lines the demand
 * stream then evicts — the prefetch-pollution bookkeeping family.
 */
void
genPrefetchPolluted(const StreamSpec &spec, Rng &rng,
                    std::vector<TraceRecord> &out)
{
    const std::uint64_t cache_blocks =
        std::uint64_t{spec.geometry.numSets} * spec.geometry.numWays;
    const std::uint64_t hot = std::max<std::uint64_t>(8, cache_blocks / 4);
    const std::uint64_t hot_base = rng.nextBounded(1 << 20);
    std::uint64_t stream_base = hot_base + hot + rng.nextBounded(1 << 20);
    std::size_t i = 0;
    while (i < spec.memoryAccesses) {
        const std::size_t run = std::min<std::size_t>(
            spec.memoryAccesses - i, 16 + rng.nextBounded(48));
        for (std::size_t j = 0; j < run && i < spec.memoryAccesses; ++j) {
            emitMem(out, rng, kPcBase + 48,
                    blockAddr(spec, stream_base + j), 0.0);
            ++i;
            if (i < spec.memoryAccesses && rng.nextBool(0.25)) {
                emitMem(out, rng, kPcBase + 64,
                        blockAddr(spec, hot_base + rng.nextBounded(hot)),
                        0.5);
                ++i;
            }
        }
        stream_base += run + rng.nextBounded(1 << 12);
    }
}

} // anonymous namespace

const char *
streamKindName(StreamKind kind)
{
    switch (kind) {
      case StreamKind::ScanThrash: return "scan_thrash";
      case StreamKind::PointerChase: return "pointer_chase";
      case StreamKind::PcStarved: return "pc_starved";
      case StreamKind::MixedWorkingSets: return "mixed_working_sets";
      case StreamKind::PrefetchPolluted: return "prefetch_polluted";
    }
    return "unknown";
}

StreamKind
kindForSeed(std::uint64_t seed)
{
    // Decorrelate the kind choice from the stream RNG (which consumes
    // the seed itself) with one splitmix-style scramble.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<StreamKind>((z ^ (z >> 31)) % kNumStreamKinds);
}

std::vector<TraceRecord>
generateStream(const StreamSpec &spec)
{
    CS_ASSERT(spec.geometry.numSets > 0 && spec.geometry.numWays > 0,
              "stream generator needs a non-empty geometry");
    Rng rng(spec.seed ^ (static_cast<std::uint64_t>(spec.kind) << 56));
    std::vector<TraceRecord> out;
    out.reserve(spec.memoryAccesses + spec.memoryAccesses / 4);
    switch (spec.kind) {
      case StreamKind::ScanThrash:
        genScanThrash(spec, rng, out);
        break;
      case StreamKind::PointerChase:
        genPointerChase(spec, rng, out);
        break;
      case StreamKind::PcStarved:
        genPcStarved(spec, rng, out);
        break;
      case StreamKind::MixedWorkingSets:
        genMixedWorkingSets(spec, rng, out);
        break;
      case StreamKind::PrefetchPolluted:
        genPrefetchPolluted(spec, rng, out);
        break;
    }
    return out;
}

std::vector<TraceRecord>
memoryRecordsOf(const std::vector<TraceRecord> &stream)
{
    std::vector<TraceRecord> mem;
    mem.reserve(stream.size());
    for (const TraceRecord &rec : stream) {
        if (rec.isMemory())
            mem.push_back(rec);
    }
    return mem;
}

} // namespace cachescope::difftest
