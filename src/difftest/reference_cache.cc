/**
 * @file
 * Reference cache model implementation.
 */

#include "difftest/reference_cache.hh"

#include <algorithm>
#include <unordered_map>

#include "util/logging.hh"

namespace cachescope::difftest {

// ------------------------------------------------------------- RefLru --

RefLru::RefLru(const CacheGeometry &geometry) : stacks(geometry.numSets)
{
    for (auto &stack : stacks)
        stack.reserve(geometry.numWays);
}

std::uint32_t
RefLru::chooseVictim(std::uint32_t set, const std::vector<Addr> &,
                     Addr, std::uint64_t)
{
    const auto &stack = stacks[set];
    CS_ASSERT(!stack.empty(), "LRU victim requested for an empty set");
    return stack.back();
}

void
RefLru::onAccess(std::uint32_t set, std::uint32_t way, Addr, AccessType,
                 bool, std::uint64_t)
{
    // Every touch — demand, writeback or prefetch, hit or fill — makes
    // the way most-recent, exactly like ChampSim's baseline module.
    auto &stack = stacks[set];
    auto it = std::find(stack.begin(), stack.end(), way);
    if (it != stack.end())
        stack.erase(it);
    stack.insert(stack.begin(), way);
}

// ----------------------------------------------------------- RefSrrip --

RefSrrip::RefSrrip(const CacheGeometry &geometry)
    : ways(geometry.numWays),
      rrpvs(static_cast<std::size_t>(geometry.numSets) * geometry.numWays,
            kMaxRrpv)
{}

std::uint32_t
RefSrrip::chooseVictim(std::uint32_t set, const std::vector<Addr> &,
                       Addr, std::uint64_t)
{
    std::uint8_t *row = &rrpvs[static_cast<std::size_t>(set) * ways];
    // Victim = lowest way predicted "distant"; age everyone until one
    // exists (guaranteed to terminate: aging is monotone).
    while (true) {
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (row[w] == kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < ways; ++w)
            ++row[w];
    }
}

void
RefSrrip::onAccess(std::uint32_t set, std::uint32_t way, Addr, AccessType,
                   bool hit, std::uint64_t)
{
    std::uint8_t &r = rrpvs[static_cast<std::size_t>(set) * ways + way];
    // Hit-priority promotion; fills insert at "long" (kMaxRrpv - 1).
    r = hit ? 0 : kMaxRrpv - 1;
}

// ---------------------------------------------------------- RefBelady --

RefBelady::RefBelady(const CacheGeometry &geometry,
                     const std::vector<RefAccess> &stream)
    : ways(geometry.numWays),
      nextUse(stream.size(), kNever),
      lineNextUse(static_cast<std::size_t>(geometry.numSets) *
                      geometry.numWays,
                  kNever)
{
    // Backward scan: lastSeen[block] is the next use of any earlier
    // access to the same block.
    std::unordered_map<Addr, std::uint64_t> last_seen;
    last_seen.reserve(stream.size());
    for (std::size_t i = stream.size(); i-- > 0;) {
        auto it = last_seen.find(stream[i].block);
        if (it != last_seen.end())
            nextUse[i] = it->second;
        last_seen[stream[i].block] = i;
    }
}

std::uint32_t
RefBelady::chooseVictim(std::uint32_t set, const std::vector<Addr> &,
                        Addr, std::uint64_t pos)
{
    CS_ASSERT(pos < nextUse.size(), "access past the announced stream");
    const std::uint64_t incoming_next = nextUse[pos];
    const std::uint64_t *row =
        &lineNextUse[static_cast<std::size_t>(set) * ways];
    // Victim = the line reused farthest in the future (dead lines,
    // kNever, win; ties break to the lowest way — any tie is optimal).
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways; ++w) {
        if (row[w] > row[victim])
            victim = w;
    }
    // If the incoming line's next use lies beyond every resident's,
    // installing it cannot help: bypass (OPT with bypass).
    if (incoming_next >= row[victim])
        return kBypassWay;
    return victim;
}

void
RefBelady::onAccess(std::uint32_t set, std::uint32_t way, Addr, AccessType,
                    bool, std::uint64_t pos)
{
    CS_ASSERT(pos < nextUse.size(), "access past the announced stream");
    lineNextUse[static_cast<std::size_t>(set) * ways + way] = nextUse[pos];
}

// ------------------------------------------------------ ReferenceCache --

ReferenceCache::ReferenceCache(const CacheGeometry &geometry,
                               std::unique_ptr<ReferencePolicy> policy)
    : geom(geometry), pol(std::move(policy)),
      lines(static_cast<std::size_t>(geometry.numSets) * geometry.numWays),
      logs(geometry.numSets)
{
    CS_ASSERT(geom.numSets > 0 && geom.numWays > 0,
              "reference cache needs a non-empty geometry");
    CS_ASSERT(pol != nullptr, "reference cache needs a policy");
    residentScratch.resize(geom.numWays);
}

RefEvent
ReferenceCache::access(const RefAccess &acc)
{
    const std::uint64_t pos = position++;
    const std::uint32_t set =
        static_cast<std::uint32_t>(acc.block % geom.numSets);
    RefLine *row = &lines[static_cast<std::size_t>(set) * geom.numWays];

    RefEvent ev;
    ev.set = set;

    // Lookup.
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        if (row[w].valid && row[w].block == acc.block) {
            ev.hit = true;
            ev.way = w;
            ++hits_;
            pol->onAccess(set, w, acc.block, acc.type, /*hit=*/true, pos);
            if (logging)
                logs[set].push_back(ev);
            return ev;
        }
    }
    ++misses_;

    // Invalid ways fill first, lowest way first, like the simulator.
    std::uint32_t victim = ReferencePolicy::kBypassWay;
    for (std::uint32_t w = 0; w < geom.numWays; ++w) {
        if (!row[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == ReferencePolicy::kBypassWay) {
        for (std::uint32_t w = 0; w < geom.numWays; ++w)
            residentScratch[w] = row[w].block;
        victim = pol->chooseVictim(set, residentScratch, acc.block, pos);
        if (victim == ReferencePolicy::kBypassWay) {
            ++bypasses_;
            ev.bypassed = true;
            if (logging)
                logs[set].push_back(ev);
            return ev;
        }
        CS_ASSERT(victim < geom.numWays,
                  "reference policy returned a bad way");
        ev.victimBlock = row[victim].block;
    }

    row[victim].block = acc.block;
    row[victim].valid = true;
    ev.way = victim;
    pol->onAccess(set, victim, acc.block, acc.type, /*hit=*/false, pos);
    if (logging)
        logs[set].push_back(ev);
    return ev;
}

const std::vector<RefEvent> &
ReferenceCache::setLog(std::uint32_t set) const
{
    CS_ASSERT(set < logs.size(), "set log out of range");
    return logs[set];
}

std::unique_ptr<ReferencePolicy>
makeReferencePolicy(const std::string &name, const CacheGeometry &geometry,
                    const std::vector<RefAccess> &stream)
{
    if (name == "lru")
        return std::make_unique<RefLru>(geometry);
    if (name == "srrip")
        return std::make_unique<RefSrrip>(geometry);
    if (name == "belady")
        return std::make_unique<RefBelady>(geometry, stream);
    return nullptr;
}

} // namespace cachescope::difftest
