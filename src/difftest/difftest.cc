/**
 * @file
 * Differential driver implementation.
 */

#include "difftest/difftest.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>

#include "core/cache.hh"
#include "core/cascade_lake.hh"
#include "difftest/reference_cache.hh"
#include "harness/experiment.hh"
#include "trace/trace_io.hh"
#include "util/intmath.hh"
#include "util/logging.hh"

namespace cachescope::difftest {

namespace {

/**
 * The coverage table: every policy the registry can name, and the
 * strongest invariant family the subsystem has for it. Kept next to
 * buildRunMatrixFor() so adding a policy without deciding its coverage
 * is a hard error, not a silent gap.
 */
struct PolicyCoverage
{
    const char *policy;
    CheckKind kind;
    /**
     * Sampling-accuracy budget multiplier. > 0 marks a policy whose
     * replacement state is strictly per-set (a set's victim choices
     * depend only on the accesses that set saw): for those, a sampled
     * run must reproduce the full run *restricted to the sampled
     * sets* bit-exactly — sampling is a pure set filter — and the
     * scaled estimate must additionally agree with the full run
     * within the base budget times this multiplier, slackened by the
     * true (full-run population) sampling standard error. 0 marks a
     * policy whose state couples sets globally — set-dueling PSEL
     * counters, PC-indexed predictor tables, BIP/BRRIP's shared
     * bimodal fill counter, the random policy's single RNG stream —
     * where filtering the stream changes the surviving sets' own
     * behaviour (training dilution: the textbook caveat of sampled
     * simulation, observed at 30%+ relative error for glider on the
     * tiny adversarial difftest geometry). Those policies get the
     * exact structural checks only — still fatal for scaling bugs
     * like a forgotten x-rate — and their statistical accuracy is
     * enforced on the realistic LLC geometry by the fastsim property
     * tests instead.
     */
    double samplingSlack;
};

constexpr PolicyCoverage kCoverage[] = {
    {"lru", CheckKind::ExactModel, 1.0},
    {"srrip", CheckKind::ExactModel, 1.0},
    {"fifo", CheckKind::DominanceOnly, 1.0},
    {"random", CheckKind::DominanceOnly, 0.0},
    {"nru", CheckKind::DominanceOnly, 1.0},
    {"plru", CheckKind::DominanceOnly, 1.0},
    {"bip", CheckKind::DominanceOnly, 0.0},
    {"dip", CheckKind::DominanceOnly, 0.0},
    {"brrip", CheckKind::DominanceOnly, 0.0},
    {"drrip", CheckKind::DominanceOnly, 0.0},
    {"ship", CheckKind::DominanceOnly, 0.0},
    {"hawkeye", CheckKind::DominanceOnly, 0.0},
    {"glider", CheckKind::DominanceOnly, 0.0},
    {"mpppb", CheckKind::DominanceOnly, 0.0},
};

/** A bottomless MemoryLevel: every request returns after one cycle. */
class FlatLevel : public MemoryLevel
{
  public:
    Cycle
    access(Addr, Pc, AccessType, Cycle now) override
    {
        return now + 1;
    }

    const std::string &levelName() const override { return name; }

  private:
    std::string name = "flat";
};

/**
 * A test-only broken LRU: correct timestamps, but the victim pick is
 * rotated one way past the true least-recently-used line. Exists to
 * prove the model-agreement net catches single-way mistakes.
 */
class OffByOneLruPolicy : public ReplacementPolicy
{
  public:
    explicit OffByOneLruPolicy(const CacheGeometry &geometry)
        : ReplacementPolicy(geometry),
          stamps(static_cast<std::size_t>(geometry.numSets) *
                     geometry.numWays,
                 0)
    {}

    std::uint32_t
    findVictim(std::uint32_t set, Pc, Addr, AccessType) override
    {
        const std::uint32_t ways = geometry().numWays;
        const std::uint64_t *row =
            &stamps[static_cast<std::size_t>(set) * ways];
        std::uint32_t oldest = 0;
        for (std::uint32_t w = 1; w < ways; ++w) {
            if (row[w] < row[oldest])
                oldest = w;
        }
        // The injected bug: evict the way *after* the true victim.
        return (oldest + 1) % ways;
    }

    void
    update(std::uint32_t set, std::uint32_t way, Pc, Addr, AccessType,
           bool) override
    {
        stamps[static_cast<std::size_t>(set) * geometry().numWays + way] =
            ++clock;
    }

  private:
    std::vector<std::uint64_t> stamps;
    std::uint64_t clock = 0;
};

AccessType
typeOf(const TraceRecord &rec)
{
    return rec.kind == InstKind::Store ? AccessType::Store
                                       : AccessType::Load;
}

/** Lower a record stream to block-granular reference accesses. */
std::vector<RefAccess>
refAccessesOf(const std::vector<TraceRecord> &mem, std::uint32_t block_bits)
{
    std::vector<RefAccess> accs;
    accs.reserve(mem.size());
    for (const TraceRecord &rec : mem)
        accs.push_back({rec.addr >> block_bits, rec.pc, typeOf(rec)});
    return accs;
}

/** Cache config matching @p geometry with @p policy, no prefetcher. */
CacheConfig
bareConfig(const CacheGeometry &geometry, const std::string &policy)
{
    CacheConfig cfg;
    cfg.name = "difftest";
    cfg.blockBytes = geometry.blockBytes;
    cfg.numWays = geometry.numWays;
    cfg.sizeBytes = std::uint64_t{geometry.numSets} * geometry.numWays *
                    geometry.blockBytes;
    cfg.hitLatency = 1;
    cfg.replacement = policy;
    return cfg;
}

std::string
hex(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

std::string
describeEvent(const RefEvent &ev)
{
    if (ev.bypassed)
        return "bypass";
    std::string s = ev.hit ? "hit" : "fill";
    s += " way " + std::to_string(ev.way);
    if (!ev.hit && ev.victimBlock != kInvalidAddr)
        s += " evicting " + hex(ev.victimBlock);
    return s;
}

/** The simulation config the conservation/sweep families run under. */
SimConfig
fullSimConfig(const std::string &llc_policy)
{
    SimConfig cfg = cascadeLakeConfig(llc_policy, /*warmup=*/0,
                                      /*measure=*/0);
    // Prefetchers on two levels so the prefetch-flow laws (issued
    // prefetches reappear as accesses, pollute lower levels, ...) are
    // exercised, not vacuous.
    cfg.hierarchy.l1d.prefetcher = "next_line";
    cfg.hierarchy.l2.prefetcher = "stride";
    return cfg;
}

/** Copy @p in minus the wall-clock noise a parallel sweep reorders. */
MetricsRegistry
stripNondeterministic(const MetricsRegistry &in)
{
    MetricsRegistry out;
    for (const auto &[path, value] : in.counters())
        out.setCounter(path, value);
    for (const auto &[path, value] : in.gauges()) {
        const auto ends_with = [&path](const char *suffix,
                                       std::size_t n) {
            return path.size() >= n &&
                   path.compare(path.size() - n, n, suffix) == 0;
        };
        if (ends_with(".wall_ms", 8) || ends_with("wall_seconds", 12) ||
            ends_with(".throughput_mips", 16))
            continue;
        out.setGauge(path, value);
    }
    for (const auto &[path, snap] : in.histograms()) {
        if (path == "sweep.cell_wall_ms")
            continue;
        out.setHistogram(path, snap);
    }
    return out;
}

/** Read a whole file; @return false on any I/O error. */
bool
slurp(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

std::string
invariantFamily(const std::string &invariant)
{
    const std::size_t colon = invariant.find(':');
    return colon == std::string::npos ? invariant
                                      : invariant.substr(0, colon);
}

} // anonymous namespace

Expected<std::vector<RunMatrixEntry>>
buildRunMatrixFor(const std::vector<std::string> &registered)
{
    std::set<std::string> live(registered.begin(), registered.end());
    std::vector<RunMatrixEntry> matrix;
    for (const PolicyCoverage &cov : kCoverage) {
        if (live.erase(cov.policy) == 0) {
            return internalError(
                "difftest coverage table lists policy '%s' which is not "
                "registered; remove it from kCoverage in difftest.cc",
                cov.policy);
        }
        matrix.push_back({cov.policy, cov.kind, cov.samplingSlack});
    }
    if (!live.empty()) {
        return internalError(
            "registered policy '%s' has no difftest coverage entry; add "
            "it to kCoverage in difftest.cc and pick its CheckKind",
            live.begin()->c_str());
    }
    return matrix;
}

Expected<std::vector<RunMatrixEntry>>
buildRunMatrix()
{
    return buildRunMatrixFor(ReplacementPolicyFactory::availablePolicies());
}

DifferentialDriver::DifferentialDriver(DiffOptions options,
                                       std::vector<RunMatrixEntry> entries)
    : opts(std::move(options)), matrix(std::move(entries))
{}

Expected<std::unique_ptr<DifferentialDriver>>
DifferentialDriver::create(DiffOptions options)
{
    CS_TRY_ASSIGN(auto matrix, buildRunMatrix());
    if (options.memoryAccesses == 0)
        return invalidArgumentError("difftest streams cannot be empty");
    return std::unique_ptr<DifferentialDriver>(new DifferentialDriver(
        std::move(options), std::move(matrix)));
}

std::vector<TraceRecord>
DifferentialDriver::streamForSeed(std::uint64_t seed) const
{
    StreamSpec spec;
    spec.seed = seed;
    spec.memoryAccesses = opts.memoryAccesses;
    spec.geometry = opts.geometry;
    spec.kind = kindForSeed(seed);
    return generateStream(spec);
}

void
DifferentialDriver::checkModelAgreement(const std::vector<TraceRecord> &mem,
                                        const std::string &policy,
                                        std::uint64_t seed,
                                        std::vector<DiffFailure> &out) const
{
    const std::uint32_t block_bits = floorLog2(opts.geometry.blockBytes);
    const std::vector<RefAccess> accs = refAccessesOf(mem, block_bits);

    auto ref_policy = makeReferencePolicy(policy, opts.geometry, accs);
    CS_ASSERT(ref_policy != nullptr,
              "model agreement requested for a policy with no reference");
    ReferenceCache ref(opts.geometry, std::move(ref_policy));

    FlatLevel flat;
    const CacheConfig cfg = bareConfig(opts.geometry, policy);
    std::unique_ptr<Cache> sim;
    if (opts.injectOffByOneLru && policy == "lru") {
        sim = std::make_unique<Cache>(
            cfg, &flat, std::make_unique<OffByOneLruPolicy>(opts.geometry));
    } else {
        sim = std::make_unique<Cache>(cfg, &flat);
    }

    RefEvent sim_ev;
    sim->setEventHook([&sim_ev](const Cache::AccessEvent &ev) {
        sim_ev = {ev.hit, ev.bypassed, ev.set, ev.way, ev.victimBlock};
    });

    for (std::size_t i = 0; i < accs.size(); ++i) {
        sim_ev = RefEvent{};
        sim->access(accs[i].block << block_bits, accs[i].pc, accs[i].type,
                    /*now=*/0);
        const RefEvent ref_ev = ref.access(accs[i]);
        if (sim_ev == ref_ev)
            continue;

        DiffFailure f;
        f.seed = seed;
        f.kind = kindForSeed(seed);
        f.invariant = "model_agreement:" + policy;
        f.detail = "access #" + std::to_string(i) + " block " +
                   hex(accs[i].block) + " set " +
                   std::to_string(ref_ev.set) + ": sim " +
                   describeEvent(sim_ev) + ", reference " +
                   describeEvent(ref_ev);
        f.firstBadAccess = i;
        f.memoryAccesses = mem.size();
        f.expected.setCounter("ref.hits", ref.hits());
        f.expected.setCounter("ref.misses", ref.misses());
        f.expected.setCounter("ref.bypasses", ref.bypasses());
        f.expected.setCounter("ref.divergence_index", i);
        sim->stats().exportMetrics(f.actual, "sim");
        out.push_back(std::move(f));
        return;
    }
}

void
DifferentialDriver::checkOptDominance(const std::vector<TraceRecord> &mem,
                                      const std::string &policy,
                                      std::uint64_t seed,
                                      std::vector<DiffFailure> &out) const
{
    const std::uint32_t block_bits = floorLog2(opts.geometry.blockBytes);
    const std::vector<RefAccess> accs = refAccessesOf(mem, block_bits);

    ReferenceCache opt(opts.geometry,
                       std::make_unique<RefBelady>(opts.geometry, accs));
    for (const RefAccess &acc : accs)
        opt.access(acc);

    FlatLevel flat;
    Cache sim(bareConfig(opts.geometry, policy), &flat);
    for (const RefAccess &acc : accs)
        sim.access(acc.block << block_bits, acc.pc, acc.type, /*now=*/0);

    const std::uint64_t policy_hits = sim.stats().demandHits();
    if (policy_hits <= opt.hits())
        return;

    DiffFailure f;
    f.seed = seed;
    f.kind = kindForSeed(seed);
    f.invariant = "opt_dominance:" + policy;
    f.detail = "policy '" + policy + "' scored " +
               std::to_string(policy_hits) + " hits, above Belady OPT's " +
               std::to_string(opt.hits()) + " on " +
               std::to_string(accs.size()) + " accesses";
    f.memoryAccesses = mem.size();
    f.expected.setCounter("opt.hits", opt.hits());
    f.expected.setCounter("opt.bypasses", opt.bypasses());
    f.actual.setCounter("policy.hits", policy_hits);
    sim.stats().exportMetrics(f.actual, "sim");
    out.push_back(std::move(f));
}

Status
DifferentialDriver::checkTraceRoundTrip(
    const std::vector<TraceRecord> &stream, std::uint64_t seed,
    std::vector<DiffFailure> &out) const
{
    // Scratch names carry the pid and a per-process nonce besides the
    // seed: concurrent drivers checking the same seed (ctest -j runs
    // gtest cases of this binary in parallel) must not clobber or
    // clean up each other's files.
    static std::atomic<std::uint64_t> rt_nonce{0};
    const std::string base =
        opts.scratchDir + "/difftest_rt_" +
        std::to_string(static_cast<long long>(::getpid())) + "_" +
        std::to_string(rt_nonce.fetch_add(1)) + "_" +
        std::to_string(seed);
    const std::string path_a = base + "_a.trace";
    const std::string path_b = base + "_b.trace";

    auto fail = [&](const std::string &detail, std::uint64_t expected_n,
                    std::uint64_t actual_n) {
        DiffFailure f;
        f.seed = seed;
        f.kind = kindForSeed(seed);
        f.invariant = "trace_roundtrip";
        f.detail = detail;
        f.memoryAccesses = memoryRecordsOf(stream).size();
        f.expected.setCounter("records", expected_n);
        f.actual.setCounter("records", actual_n);
        out.push_back(std::move(f));
    };
    auto cleanup = [&] {
        std::remove(path_a.c_str());
        std::remove(path_b.c_str());
    };

    // Pass 1: write the stream.
    {
        CS_TRY_ASSIGN(auto writer, TraceWriter::open(path_a));
        for (const TraceRecord &rec : stream)
            writer->onInstruction(rec);
        CS_TRY(writer->finish());
    }

    // Read it back; a freshly written trace failing to parse or verify
    // is itself a round-trip violation, not an infrastructure error.
    std::vector<TraceRecord> replayed;
    {
        auto reader = TraceReader::open(path_a);
        if (!reader.ok()) {
            fail("freshly written trace rejected on open: " +
                     reader.status().toString(),
                 stream.size(), 0);
            cleanup();
            return Status();
        }
        replayed.reserve(stream.size());
        TraceRecord rec;
        while ((*reader)->next(rec))
            replayed.push_back(rec);
        if (!(*reader)->status().ok()) {
            fail("freshly written trace failed verification: " +
                     (*reader)->status().toString(),
                 stream.size(), replayed.size());
            cleanup();
            return Status();
        }
    }
    if (replayed != stream) {
        std::size_t i = 0;
        while (i < std::min(replayed.size(), stream.size()) &&
               replayed[i] == stream[i])
            ++i;
        fail("replayed records diverge from the source at record #" +
                 std::to_string(i),
             stream.size(), replayed.size());
        cleanup();
        return Status();
    }

    // Pass 2: re-write what was read; the files must be byte-identical
    // (headers, checksums and all).
    {
        CS_TRY_ASSIGN(auto writer, TraceWriter::open(path_b));
        for (const TraceRecord &rec : replayed)
            writer->onInstruction(rec);
        CS_TRY(writer->finish());
    }
    std::string bytes_a, bytes_b;
    if (!slurp(path_a, bytes_a) || !slurp(path_b, bytes_b)) {
        cleanup();
        return ioError("cannot re-read round-trip scratch files under %s",
                       opts.scratchDir.c_str());
    }
    if (bytes_a != bytes_b) {
        fail("write->read->write is not byte-stable (" +
                 std::to_string(bytes_a.size()) + " vs " +
                 std::to_string(bytes_b.size()) + " bytes)",
             bytes_a.size(), bytes_b.size());
    }
    cleanup();
    return Status();
}

void
DifferentialDriver::checkConservation(const std::vector<TraceRecord> &stream,
                                      std::uint64_t seed,
                                      std::vector<DiffFailure> &out) const
{
    VectorWorkload workload("difftest_conservation", stream);
    const SimResult result = runOne(workload, fullSimConfig("lru"));
    MetricsRegistry m;
    result.exportMetrics(m, "");

    std::vector<std::pair<std::string, std::string>> violations;
    auto counter = [&m](const std::string &path) { return m.counter(path); };
    auto check_eq = [&](const std::string &law, std::uint64_t lhs,
                        std::uint64_t rhs) {
        if (lhs != rhs) {
            violations.emplace_back(law, std::to_string(lhs) +
                                             " != " + std::to_string(rhs));
        }
    };
    auto check_le = [&](const std::string &law, std::uint64_t lhs,
                        std::uint64_t rhs) {
        if (lhs > rhs) {
            violations.emplace_back(law, std::to_string(lhs) + " > " +
                                             std::to_string(rhs));
        }
    };

    // Flow conservation: every access at a level is caused by a miss
    // above it or by the level's own prefetcher.
    for (const char *t : {"load", "store", "prefetch"}) {
        const std::string ty(t);
        const bool pf = ty == "prefetch";
        check_eq("l2_accesses_" + ty,
                 counter("l2.hits." + ty) + counter("l2.misses." + ty),
                 counter("l1i.misses." + ty) + counter("l1d.misses." + ty) +
                     (pf ? counter("l2.prefetches_issued") : 0));
        check_eq("llc_accesses_" + ty,
                 counter("llc.hits." + ty) + counter("llc.misses." + ty),
                 counter("l2.misses." + ty) +
                     (pf ? counter("llc.prefetches_issued") : 0));
    }
    check_eq("l2_writeback_accesses",
             counter("l2.hits.writeback") + counter("l2.misses.writeback"),
             counter("l1d.writebacks_issued") +
                 counter("l1i.writebacks_issued"));
    check_eq("llc_writeback_accesses",
             counter("llc.hits.writeback") +
                 counter("llc.misses.writeback"),
             counter("l2.writebacks_issued"));
    check_eq("dram_reads", counter("dram.reads"),
             counter("llc.misses.load") + counter("llc.misses.store") +
                 counter("llc.misses.prefetch"));
    check_eq("dram_writes", counter("dram.writes"),
             counter("llc.writebacks_issued"));

    // The demand stream entering L1 is exactly the core's memory mix.
    check_eq("l1d_loads",
             counter("l1d.hits.load") + counter("l1d.misses.load"),
             counter("core.loads"));
    check_eq("l1d_stores",
             counter("l1d.hits.store") + counter("l1d.misses.store"),
             counter("core.stores"));
    check_le("mix_le_instructions",
             counter("core.loads") + counter("core.stores") +
                 counter("core.branches"),
             counter("core.instructions"));
    check_le("fetch_le_instructions",
             counter("l1i.hits.load") + counter("l1i.misses.load"),
             counter("core.instructions"));

    // Per-level bookkeeping identities.
    for (const char *lvl : {"l1i", "l1d", "l2", "llc"}) {
        const std::string p(lvl);
        std::uint64_t misses = 0, by_fill = 0;
        for (const char *t : {"load", "store", "writeback", "prefetch"}) {
            misses += counter(p + ".misses." + t);
            by_fill += counter(p + ".evictions_by_fill." + t);
        }
        check_eq("evictions_split_" + p, counter(p + ".evictions"),
                 by_fill);
        check_le("writebacks_le_evictions_" + p,
                 counter(p + ".writebacks_issued"),
                 counter(p + ".evictions"));
        check_le("evictions_le_misses_" + p,
                 counter(p + ".evictions") + counter(p + ".bypasses"),
                 misses);
        // "Useful" is charged when a prefetch-tagged fill sees its
        // first demand hit, and fills tag prefetched only for accesses
        // of type prefetch — whether issued by this level or arriving
        // from the prefetcher above. Each tagged fill is useful at
        // most once, so the bound is prefetch-typed fills, not this
        // level's own issues.
        check_le("useful_le_prefetch_fills_" + p,
                 counter(p + ".prefetches_useful"),
                 counter(p + ".misses.prefetch"));
    }

    for (const auto &[law, what] : violations) {
        DiffFailure f;
        f.seed = seed;
        f.kind = kindForSeed(seed);
        f.invariant = "conservation:" + law;
        f.detail = "conservation law '" + law + "' violated: " + what;
        f.memoryAccesses = memoryRecordsOf(stream).size();
        f.expected.setCounter("law_violations", 0);
        f.actual = m;
        out.push_back(std::move(f));
    }
}

void
DifferentialDriver::checkSweepEquality(const std::vector<TraceRecord> &stream,
                                       std::uint64_t seed,
                                       std::vector<DiffFailure> &out) const
{
    auto workload =
        std::make_shared<VectorWorkload>("difftest_sweep", stream);
    const std::vector<std::shared_ptr<Workload>> suite{workload};
    const std::vector<std::string> policies{"lru", "srrip", "dip"};
    const SimConfig base = fullSimConfig("lru");

    SuiteRunner serial(base, /*jobs=*/1);
    serial.setVerbose(false);
    SuiteRunner parallel(base, /*jobs=*/2);
    parallel.setVerbose(false);

    const SweepReport rs = serial.runChecked(suite, policies);
    const SweepReport rp = parallel.runChecked(suite, policies);

    MetricsDocument ds{"sweep", 0.0, stripNondeterministic(rs.metrics)};
    MetricsDocument dp{"sweep", 0.0, stripNondeterministic(rp.metrics)};
    const std::string js = metricsToJson(ds);
    const std::string jp = metricsToJson(dp);
    if (js == jp && rs.failed() == 0 && rp.failed() == 0)
        return;

    DiffFailure f;
    f.seed = seed;
    f.kind = kindForSeed(seed);
    f.invariant = "sweep_equality";
    if (rs.failed() != 0 || rp.failed() != 0) {
        f.detail = "sweep cells failed (serial " +
                   std::to_string(rs.failed()) + ", parallel " +
                   std::to_string(rp.failed()) + ")";
    } else {
        f.detail = "serial and parallel sweep metric trees differ (" +
                   std::to_string(js.size()) + " vs " +
                   std::to_string(jp.size()) + " JSON bytes)";
    }
    f.memoryAccesses = memoryRecordsOf(stream).size();
    f.expected = ds.metrics;
    f.actual = dp.metrics;
    out.push_back(std::move(f));
}

void
DifferentialDriver::checkSamplingAccuracy(const std::vector<TraceRecord> &mem,
                                          const RunMatrixEntry &entry,
                                          std::uint64_t seed,
                                          std::vector<DiffFailure> &out) const
{
    const std::string &policy = entry.policy;
    // slack 0 = globally-coupled policy state: restricting the stream
    // to the sampled sets changes those sets' own behaviour (training
    // dilution), so only the exact structural checks apply (see
    // kCoverage).
    const bool gross = entry.samplingSlack <= 0.0;
    const double budget = opts.samplingErrorBudget * entry.samplingSlack;
    const std::uint32_t block_bits = floorLog2(opts.geometry.blockBytes);
    const std::vector<RefAccess> accs = refAccessesOf(mem, block_bits);
    const std::uint32_t num_sets = opts.geometry.numSets;

    // Full (every-set) run, tallying per-set demand misses through the
    // event hook. Exactly one event fires per demand access — hit,
    // bypass, or fill — and a bypassed access counts as a miss, which
    // matches the stats counters (both increment before the bypass
    // branch). The tallies are the *population* behind the sampled
    // estimator: they feed both the exact restriction check and the
    // true sampling standard error below.
    std::vector<std::uint64_t> full_set_misses(num_sets, 0);
    FlatLevel full_flat;
    Cache full_cache(bareConfig(opts.geometry, policy), &full_flat);
    full_cache.setEventHook([&](const Cache::AccessEvent &e) {
        if ((e.type == AccessType::Load || e.type == AccessType::Store) &&
            !e.hit) {
            ++full_set_misses[e.set];
        }
    });
    for (const RefAccess &acc : accs) {
        full_cache.access(acc.block << block_bits, acc.pc, acc.type,
                          /*now=*/0);
    }
    const CacheStats full = full_cache.stats();

    // Sampled run.
    FlatLevel sampled_flat;
    CacheConfig sampled_cfg = bareConfig(opts.geometry, policy);
    sampled_cfg.sampleSets = opts.samplingRate;
    Cache sampled_cache(sampled_cfg, &sampled_flat);
    for (const RefAccess &acc : accs) {
        sampled_cache.access(acc.block << block_bits, acc.pc, acc.type,
                             /*now=*/0);
    }
    MetricsRegistry dyn;
    sampled_cache.exportDynamicMetrics(dyn, "c");
    const CacheStats raw = sampled_cache.stats();

    // Independent per-set recount of the demand stream against the
    // cache's own published set selection: the restriction of the full
    // run to the sampled subset, computed without trusting the sampled
    // run's bookkeeping.
    const std::uint64_t set_mask = num_sets - 1;
    std::vector<std::uint64_t> per_set_accs(num_sets, 0);
    for (const RefAccess &acc : accs)
        ++per_set_accs[static_cast<std::size_t>(acc.block & set_mask)];
    std::uint64_t in_sample_accs = 0;
    std::uint64_t in_sample_misses = 0;
    for (std::uint32_t s = 0; s < num_sets; ++s) {
        if (sampled_cache.setIsSampled(s)) {
            in_sample_accs += per_set_accs[s];
            in_sample_misses += full_set_misses[s];
        }
    }
    const std::uint64_t expected_accesses =
        in_sample_accs * opts.samplingRate;

    auto fail = [&](const std::string &what, double expected,
                    double actual, double tolerance) {
        DiffFailure f;
        f.seed = seed;
        f.kind = kindForSeed(seed);
        f.invariant = "sampling_accuracy:" + policy;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s: sampled estimate %.6g vs full %.6g "
                      "(tolerance %.6g, 1-in-%u sets)",
                      what.c_str(), actual, expected, tolerance,
                      opts.samplingRate);
        f.detail = buf;
        f.memoryAccesses = mem.size();
        f.expected.setGauge("full." + what, expected);
        f.actual = dyn;
        full.exportMetrics(f.expected, "full");
        raw.exportMetrics(f.actual, "raw");
        out.push_back(std::move(f));
    };

    // Scaled counters are raw * rate by construction; their being >=
    // the raw values is the check_bench_json contract, re-checked here
    // where a violation is cheapest to localize.
    const double rate = static_cast<double>(opts.samplingRate);
    const double est_misses = static_cast<double>(
        dyn.counter("c.sampled.demand_misses"));
    const double raw_misses = static_cast<double>(raw.demandMisses());
    if (est_misses < raw_misses) {
        fail("scaled_ge_raw", raw_misses, est_misses, 0.0);
        return;
    }

    const double se = dyn.gauge("c.sampled.relative_stderr");
    if (!std::isfinite(se)) {
        fail("relative_stderr_finite", 0.0, se, 0.0);
        return;
    }

    // The access-count estimate is policy-independent (every demand
    // access reaches the bare cache), so it is checked *exactly*
    // against the independent recount — any set-selection or scaling
    // bug trips this for every policy, with zero statistical slack.
    const double est_accesses = static_cast<double>(
        dyn.counter("c.sampled.demand_accesses"));
    if (est_accesses != static_cast<double>(expected_accesses)) {
        fail("demand_accesses_exact",
             static_cast<double>(expected_accesses), est_accesses, 0.0);
        return;
    }
    if (est_misses > est_accesses) {
        fail("misses_le_accesses", est_accesses, est_misses, 0.0);
        return;
    }
    const double mr_est = dyn.gauge("c.sampled.demand_miss_rate");
    if (!(mr_est >= 0.0 && mr_est <= 1.0)) {
        fail("miss_rate_in_unit_range", 0.0, mr_est, 1.0);
        return;
    }
    // The exported miss rate must be the quotient of the exported
    // counts (exact: the x-rate scaling is a power of two, so it
    // cancels without rounding) — catches a wrong-denominator export.
    if (est_accesses > 0.0 &&
        std::abs(mr_est - est_misses / est_accesses) > 1e-12) {
        fail("miss_rate_consistent", est_misses / est_accesses, mr_est,
             1e-12);
        return;
    }
    if (gross)
        return;

    // The load-bearing invariant for per-set policies: sampling must
    // be a *pure filter*. The sampled run's raw miss count must equal
    // the full run's misses restricted to the sampled sets, exactly —
    // a set's victim choices depend only on its own access
    // subsequence, which sampling preserves. Any cross-set leak in the
    // skip path (touching the policy, the tag store, or another set's
    // counters) breaks this equality with zero statistical slack.
    if (raw.demandMisses() != in_sample_misses) {
        fail("restriction_exact", static_cast<double>(in_sample_misses),
             raw_misses, 0.0);
        return;
    }

    // Statistical agreement of the scaled estimate with the full run.
    // The budget is slackened by the estimator's *true* standard error
    // — computed from the full run's per-set miss distribution, the
    // actual population behind the subset — not the sample-derived
    // c.sampled.relative_stderr, which cannot see unsampled hot sets
    // on concentrated streams (a pointer chase landing 3/4 of its
    // misses outside the subset reports a tiny SE around a wildly
    // wrong estimate). ~5 sigma keeps arbitrary fuzz seeds quiet; the
    // 3 x rate floor covers streams whose subset sees only a handful
    // of misses.
    const double full_misses = static_cast<double>(full.demandMisses());
    const double n_sampled =
        static_cast<double>(sampled_cache.sampledSetCount());
    const double mean = full_misses / num_sets;
    double var = 0.0;
    for (std::uint32_t s = 0; s < num_sets; ++s) {
        const double d = static_cast<double>(full_set_misses[s]) - mean;
        var += d * d;
    }
    var /= std::max(num_sets - 1.0, 1.0);
    const double se_true =
        mean > 0.0 && n_sampled > 0.0
            ? std::sqrt(std::max(1.0 - n_sampled / num_sets, 0.0) * var /
                        n_sampled) /
                  mean
            : 0.0;
    const double miss_tol = std::max(
        {budget * full_misses, 5.0 * se_true * full_misses, 3.0 * rate});
    if (std::abs(est_misses - full_misses) > miss_tol)
        fail("demand_misses", full_misses, est_misses, miss_tol);
}

Expected<std::vector<DiffFailure>>
DifferentialDriver::checkStream(const std::vector<TraceRecord> &stream,
                                std::uint64_t seed)
{
    std::vector<DiffFailure> failures;
    const std::vector<TraceRecord> mem = memoryRecordsOf(stream);

    for (const RunMatrixEntry &entry : matrix) {
        if (entry.kind == CheckKind::ExactModel)
            checkModelAgreement(mem, entry.policy, seed, failures);
        checkOptDominance(mem, entry.policy, seed, failures);
        if (opts.checkSampling && opts.samplingRate > 1)
            checkSamplingAccuracy(mem, entry, seed, failures);
    }
    if (!opts.scratchDir.empty())
        CS_TRY(checkTraceRoundTrip(stream, seed, failures));
    if (opts.checkConservation)
        checkConservation(stream, seed, failures);
    if (opts.checkSweep)
        checkSweepEquality(stream, seed, failures);
    return failures;
}

Expected<std::vector<DiffFailure>>
DifferentialDriver::runSeed(std::uint64_t seed)
{
    return checkStream(streamForSeed(seed), seed);
}

bool
DifferentialDriver::failsOn(const std::vector<TraceRecord> &stream,
                            std::uint64_t seed,
                            const std::string &invariant)
{
    const std::string family = invariantFamily(invariant);
    std::vector<DiffFailure> failures;

    if (family == "model_agreement" || family == "opt_dominance" ||
        family == "sampling_accuracy") {
        const std::string policy = invariant.substr(family.size() + 1);
        const std::vector<TraceRecord> mem = memoryRecordsOf(stream);
        if (mem.empty())
            return false;
        if (family == "model_agreement") {
            checkModelAgreement(mem, policy, seed, failures);
        } else if (family == "opt_dominance") {
            checkOptDominance(mem, policy, seed, failures);
        } else {
            for (const RunMatrixEntry &entry : matrix) {
                if (entry.policy == policy)
                    checkSamplingAccuracy(mem, entry, seed, failures);
            }
        }
        return !failures.empty();
    }
    if (family == "conservation") {
        checkConservation(stream, seed, failures);
    } else if (family == "sweep_equality") {
        checkSweepEquality(stream, seed, failures);
    } else if (family == "trace_roundtrip") {
        if (opts.scratchDir.empty())
            return false;
        if (!checkTraceRoundTrip(stream, seed, failures).ok())
            return false;
    } else {
        warn("failsOn: unknown invariant family '%s'", family.c_str());
        return false;
    }
    // These families report law-level ids; any failure in the family
    // counts as "still failing" for minimization purposes.
    return !failures.empty();
}

DifferentialDriver::MinimizeResult
DifferentialDriver::minimize(const std::vector<TraceRecord> &stream,
                             const DiffFailure &failure,
                             std::size_t maxEvaluations)
{
    MinimizeResult res;
    res.stream = stream;
    auto fails = [&](const std::vector<TraceRecord> &candidate) {
        ++res.evaluations;
        return failsOn(candidate, failure.seed, failure.invariant);
    };
    auto budget = [&] { return res.evaluations < maxEvaluations; };

    // 1. If the failure is access-localized, everything after the first
    // diverging memory access is dead weight: truncate right past it.
    if (failure.firstBadAccess != kNoAccess && budget()) {
        std::size_t mem_seen = 0;
        std::size_t cut = res.stream.size();
        for (std::size_t i = 0; i < res.stream.size(); ++i) {
            if (res.stream[i].isMemory() &&
                ++mem_seen > failure.firstBadAccess) {
                cut = i + 1;
                break;
            }
        }
        if (cut < res.stream.size()) {
            std::vector<TraceRecord> cand(res.stream.begin(),
                                          res.stream.begin() + cut);
            if (fails(cand))
                res.stream = std::move(cand);
        }
    }

    // 2. Bisect to the shortest failing prefix. Failure need not be
    // monotone in prefix length, so the search is a heuristic; the
    // candidate it lands on is re-verified before being accepted.
    std::size_t lo = 1, hi = res.stream.size();
    while (lo < hi && budget()) {
        const std::size_t mid = lo + (hi - lo) / 2;
        std::vector<TraceRecord> cand(res.stream.begin(),
                                      res.stream.begin() + mid);
        if (fails(cand))
            hi = mid;
        else
            lo = mid + 1;
    }
    if (hi < res.stream.size() && budget()) {
        std::vector<TraceRecord> cand(res.stream.begin(),
                                      res.stream.begin() + hi);
        if (fails(cand))
            res.stream = std::move(cand);
    }

    // 3. ddmin-style chunk removal over what remains.
    for (std::size_t chunk = res.stream.size() / 2; chunk >= 1 && budget();
         chunk /= 2) {
        std::size_t start = 0;
        while (start + chunk <= res.stream.size() && budget()) {
            std::vector<TraceRecord> cand;
            cand.reserve(res.stream.size() - chunk);
            cand.insert(cand.end(), res.stream.begin(),
                        res.stream.begin() + start);
            cand.insert(cand.end(), res.stream.begin() + start + chunk,
                        res.stream.end());
            if (!cand.empty() && fails(cand))
                res.stream = std::move(cand);
            else
                start += chunk;
        }
        if (chunk == 1)
            break;
    }
    return res;
}

} // namespace cachescope::difftest
