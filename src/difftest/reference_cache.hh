/**
 * @file
 * The reference cache model for differential testing.
 *
 * A deliberately slow, obviously-correct single-level set-associative
 * cache that replays an access stream and reports per-access outcomes.
 * It shares no code with core/cache.cc: line state is a plain per-set
 * array, recency is an explicit MRU->LRU stack, RRIP counters are
 * re-derived from the paper's pseudocode, and Belady's OPT consults a
 * precomputed next-use index. Any divergence between this model and the
 * simulator's Cache under the same stream is a bug in one of them.
 *
 * Call protocol mirrored from the simulator (so outcomes compare
 * one-to-one): invalid ways fill first in way order without consulting
 * the policy, hits touch the policy, writeback misses install without a
 * fetch, and a policy may bypass a fill.
 */

#ifndef CACHESCOPE_DIFFTEST_REFERENCE_CACHE_HH
#define CACHESCOPE_DIFFTEST_REFERENCE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "replacement/replacement_policy.hh"
#include "util/types.hh"

namespace cachescope::difftest {

/** One access of a difftest stream (block-granular, demand or not). */
struct RefAccess
{
    Addr block = kInvalidAddr;  ///< block-aligned address
    Pc pc = 0;
    AccessType type = AccessType::Load;
};

/** Outcome of one access through a cache model. */
struct RefEvent
{
    bool hit = false;
    bool bypassed = false;
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    /** Valid block evicted by the fill, or kInvalidAddr. */
    Addr victimBlock = kInvalidAddr;

    bool operator==(const RefEvent &) const = default;
};

/**
 * Replacement logic of the reference model. Implementations see every
 * access (hit or fill) and pick victims in full sets. The global
 * stream position is passed through so offline policies (Belady) can
 * consult the future.
 */
class ReferencePolicy
{
  public:
    static constexpr std::uint32_t kBypassWay = ~std::uint32_t{0};

    virtual ~ReferencePolicy() = default;

    /** @return a short display name ("ref-lru", ...). */
    virtual const char *name() const = 0;

    /**
     * Choose a victim in a full set (every way valid).
     * @param resident the numWays resident block addresses, by way.
     * @param incoming the block being filled.
     * @param pos global 0-based index of this access in the stream.
     * @return the victim way, or kBypassWay to skip the install.
     */
    virtual std::uint32_t chooseVictim(std::uint32_t set,
                                       const std::vector<Addr> &resident,
                                       Addr incoming,
                                       std::uint64_t pos) = 0;

    /** Observe a hit (way already resident) or a fill (way replaced). */
    virtual void onAccess(std::uint32_t set, std::uint32_t way, Addr block,
                          AccessType type, bool hit, std::uint64_t pos) = 0;
};

/** True LRU as an explicit per-set recency stack (front = MRU). */
class RefLru : public ReferencePolicy
{
  public:
    explicit RefLru(const CacheGeometry &geometry);

    const char *name() const override { return "ref-lru"; }
    std::uint32_t chooseVictim(std::uint32_t set,
                               const std::vector<Addr> &resident,
                               Addr incoming, std::uint64_t pos) override;
    void onAccess(std::uint32_t set, std::uint32_t way, Addr block,
                  AccessType type, bool hit, std::uint64_t pos) override;

  private:
    /** Per-set list of ways, most recent first. */
    std::vector<std::vector<std::uint32_t>> stacks;
};

/** SRRIP re-derived from Jaleel et al.: 2-bit RRPVs, hit-priority. */
class RefSrrip : public ReferencePolicy
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3;

    explicit RefSrrip(const CacheGeometry &geometry);

    const char *name() const override { return "ref-srrip"; }
    std::uint32_t chooseVictim(std::uint32_t set,
                               const std::vector<Addr> &resident,
                               Addr incoming, std::uint64_t pos) override;
    void onAccess(std::uint32_t set, std::uint32_t way, Addr block,
                  AccessType type, bool hit, std::uint64_t pos) override;

  private:
    std::uint32_t ways;
    std::vector<std::uint8_t> rrpvs;  ///< [set * ways + way]
};

/**
 * Belady's OPT with bypass: evicts (or refuses to install over) the
 * line whose next use lies farthest in the future, consulting a
 * next-use index built from the whole stream up front. Optimal per set,
 * so its hit count bounds every online policy's on the same stream.
 */
class RefBelady : public ReferencePolicy
{
  public:
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

    RefBelady(const CacheGeometry &geometry,
              const std::vector<RefAccess> &stream);

    const char *name() const override { return "ref-belady"; }
    std::uint32_t chooseVictim(std::uint32_t set,
                               const std::vector<Addr> &resident,
                               Addr incoming, std::uint64_t pos) override;
    void onAccess(std::uint32_t set, std::uint32_t way, Addr block,
                  AccessType type, bool hit, std::uint64_t pos) override;

  private:
    std::uint32_t ways;
    /** nextUse[i] = next position accessing stream[i].block, or kNever. */
    std::vector<std::uint64_t> nextUse;
    /** Next use of the line resident in [set * ways + way]. */
    std::vector<std::uint64_t> lineNextUse;
};

/**
 * The reference model proper: line state plus a pluggable policy.
 */
class ReferenceCache
{
  public:
    ReferenceCache(const CacheGeometry &geometry,
                   std::unique_ptr<ReferencePolicy> policy);

    /** Replay one access; @return its fully resolved outcome. */
    RefEvent access(const RefAccess &acc);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t bypasses() const { return bypasses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    const ReferencePolicy &policy() const { return *pol; }

    /**
     * Per-set event log (every outcome of every access to the set, in
     * order) — the auditable artifact a failing differential run dumps.
     */
    const std::vector<RefEvent> &setLog(std::uint32_t set) const;

    /** Enable/disable per-set event logging (off by default). */
    void setLogging(bool enabled) { logging = enabled; }

  private:
    struct RefLine
    {
        Addr block = kInvalidAddr;
        bool valid = false;
    };

    CacheGeometry geom;
    std::unique_ptr<ReferencePolicy> pol;
    std::vector<RefLine> lines;     ///< [set * ways + way]
    std::vector<std::vector<RefEvent>> logs;
    std::vector<Addr> residentScratch;
    std::uint64_t position = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t bypasses_ = 0;
    bool logging = false;
};

/**
 * @return a reference policy instance for @p name ("lru", "srrip",
 * "belady"), or nullptr if the name has no reference implementation.
 * Belady needs the whole stream to build its future index.
 */
std::unique_ptr<ReferencePolicy>
makeReferencePolicy(const std::string &name, const CacheGeometry &geometry,
                    const std::vector<RefAccess> &stream);

} // namespace cachescope::difftest

#endif // CACHESCOPE_DIFFTEST_REFERENCE_CACHE_HH
