/**
 * @file
 * Property-based invariants over every registered replacement policy.
 *
 * Instead of per-policy behavioural tests (test_rrip.cc, test_ship.cc,
 * ...), these properties quantify over ReplacementPolicyFactory's full
 * registry, so a newly registered policy is covered the moment it
 * exists. Three families, each driven by seeded random streams:
 *
 *  (a) conservation: every demand access is classified exactly once —
 *      hit + miss counts across all access types equal the accesses
 *      issued, and the event hook fires once per access;
 *  (b) victim validity: every non-bypassed access resolves to a way
 *      index inside the set (the event hook sees the chosen way after
 *      victim selection, so an out-of-range victim surfaces here
 *      before it corrupts the tag store);
 *  (c) degeneration: in a single-set single-way cache there is nothing
 *      left to decide, so every policy must behave exactly like a
 *      direct-mapped cache — an access hits iff the block is the one
 *      resident, modulo explicitly-signalled bypasses.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cache.hh"
#include "replacement/replacement_policy.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

/** Seeded demand stream: ~4x the cache's block capacity, 1/5 stores. */
struct StreamParams
{
    std::uint64_t accesses = 20'000;
    std::uint64_t blockUniverse = 1024;
    std::uint64_t seed = 0xC0FFEE;
};

struct DriveOutcome
{
    std::uint64_t issued = 0;
    std::uint64_t events = 0;
    std::uint64_t invalidWays = 0;
};

DriveOutcome
drive(Cache &cache, std::uint32_t num_ways, const StreamParams &sp)
{
    DriveOutcome out;
    cache.setEventHook([&](const Cache::AccessEvent &e) {
        ++out.events;
        if (!e.bypassed && e.way >= num_ways)
            ++out.invalidWays;
    });
    Rng rng(sp.seed);
    Cycle now = 0;
    for (std::uint64_t i = 0; i < sp.accesses; ++i) {
        const Addr addr = rng.nextBounded(sp.blockUniverse) * 64;
        const Pc pc = 0x400000 + (rng.nextBounded(16) * 4);
        const AccessType type =
            rng.nextBounded(5) == 0 ? AccessType::Store : AccessType::Load;
        now = cache.access(addr, pc, type, now);
        ++out.issued;
    }
    cache.setEventHook(nullptr);
    return out;
}

TEST(PolicyProperties, HitMissCountsConserveAccesses)
{
    for (const std::string &name :
         ReplacementPolicyFactory::availablePolicies()) {
        SCOPED_TRACE("policy: " + name);
        // 16 sets x 4 ways of 64 B blocks = 64 blocks; the 1024-block
        // universe keeps sets full and victim selection exercised.
        test::RecordingLevel below;
        Cache cache(test::smallCacheConfig("llc", 4096, 4, 1,
                                           name.c_str()),
                    &below);
        const DriveOutcome out = drive(cache, 4, StreamParams{});

        const CacheStats stats = cache.stats();
        std::uint64_t classified = 0;
        for (std::size_t t = 0; t < CacheStats::kNumTypes; ++t)
            classified += stats.hits[t] + stats.misses[t];
        EXPECT_EQ(classified, out.issued);
        EXPECT_EQ(out.events, out.issued)
            << "event hook must fire exactly once per access";
        // Bypasses are a subset of the misses, never extra accesses.
        EXPECT_LE(stats.bypasses, stats.demandMisses());
    }
}

TEST(PolicyProperties, VictimWayAlwaysValid)
{
    for (const std::string &name :
         ReplacementPolicyFactory::availablePolicies()) {
        SCOPED_TRACE("policy: " + name);
        test::RecordingLevel below;
        // Two shapes with different way counts, both under heavy
        // conflict so findVictim() runs constantly.
        for (const std::uint32_t ways : {2u, 8u}) {
            Cache cache(test::smallCacheConfig("llc", 64ull * 8 * ways,
                                               ways, 1, name.c_str()),
                        &below);
            StreamParams sp;
            sp.seed = 0xBEEF + ways;
            const DriveOutcome out = drive(cache, ways, sp);
            EXPECT_EQ(out.invalidWays, 0u)
                << ways << "-way cache saw an out-of-range way";
            EXPECT_EQ(out.events, out.issued);
        }
    }
}

TEST(PolicyProperties, SingleSetSingleWayDegeneratesToDirectMapped)
{
    for (const std::string &name :
         ReplacementPolicyFactory::availablePolicies()) {
        SCOPED_TRACE("policy: " + name);
        test::RecordingLevel below;
        // 64 bytes, 1 way: one set, one way. The only resident block
        // fully determines every outcome; a policy may still bypass a
        // fill (signalled in the event), which leaves the resident
        // block in place.
        Cache cache(test::smallCacheConfig("llc", 64, 1, 1,
                                           name.c_str()),
                    &below);
        Addr resident = kInvalidAddr;
        std::uint64_t mismatches = 0;
        cache.setEventHook([&](const Cache::AccessEvent &e) {
            const bool expect_hit = (e.block == resident);
            if (e.hit != expect_hit)
                ++mismatches;
            if (!e.hit && !e.bypassed)
                resident = e.block;
        });
        Rng rng(0xD1CE);
        Cycle now = 0;
        for (std::uint64_t i = 0; i < 5'000; ++i) {
            // 8 blocks: small enough that repeats (and thus hits) are
            // common, so both outcomes are exercised.
            const Addr addr = rng.nextBounded(8) * 64;
            const AccessType type = rng.nextBounded(4) == 0
                                        ? AccessType::Store
                                        : AccessType::Load;
            now = cache.access(addr, 0x400000, type, now);
        }
        cache.setEventHook(nullptr);
        EXPECT_EQ(mismatches, 0u)
            << "hit/miss outcomes diverged from direct-mapped behavior";
        const CacheStats stats = cache.stats();
        EXPECT_GT(stats.demandHits(), 0u);
        EXPECT_GT(stats.demandMisses(), 0u);
    }
}

} // anonymous namespace
} // namespace cachescope
