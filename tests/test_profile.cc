/**
 * @file
 * Tests for the online PC/address-correlation profiler: the HLL
 * footprint sketch, exact rate-1 accounting, set-sampled estimates,
 * the Simulator/sweep/co-run integration, and the determinism
 * contract (profile.* byte-identical across --jobs and across the
 * run-vs-1-core-corun boundary).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cascade_lake.hh"
#include "harness/corun.hh"
#include "harness/experiment.hh"
#include "profile/hll.hh"
#include "profile/online_profiler.hh"
#include "stats/metrics.hh"
#include "workloads/synthetic.hh"

namespace cachescope {
namespace {

TEST(HllSketch, EmptyAndSmallCardinalities)
{
    HllSketch sketch;
    EXPECT_TRUE(sketch.empty());
    EXPECT_EQ(sketch.estimate(), 0.0);

    sketch.add(0xDEADBEEF);
    EXPECT_FALSE(sketch.empty());
    // Linear counting is near-exact at tiny cardinalities.
    EXPECT_NEAR(sketch.estimate(), 1.0, 0.05);
    sketch.add(0xDEADBEEF); // duplicates must not move the estimate
    EXPECT_NEAR(sketch.estimate(), 1.0, 0.05);

    for (std::uint64_t i = 0; i < 100; ++i)
        sketch.add(i);
    EXPECT_NEAR(sketch.estimate(), 101.0, 101.0 * 0.15);

    sketch.reset();
    EXPECT_TRUE(sketch.empty());
    EXPECT_EQ(sketch.estimate(), 0.0);
}

TEST(HllSketch, LargeCardinalityWithinDocumentedError)
{
    // p=8 gives ~6.5% standard error; assert a 2.5-sigma envelope.
    // The inputs are fixed, so this is a deterministic check, not a
    // flaky statistical one.
    HllSketch sketch;
    const std::uint64_t n = 10'000;
    for (std::uint64_t i = 0; i < n; ++i)
        sketch.add(i * 64 + 0x7F000000);
    EXPECT_NEAR(sketch.estimate(), static_cast<double>(n), n * 0.17);
}

TEST(HllSketch, MergeIsExactlyTheUnionSketch)
{
    // Register-max merge means merge(A, B) has *identical* registers
    // to a sketch built from the union stream — not just a similar
    // estimate. That identity is what makes sampled merges
    // order-independent.
    HllSketch a, b, ab, ba, direct;
    for (std::uint64_t i = 0; i < 1'000; ++i) {
        a.add(i);
        direct.add(i);
    }
    for (std::uint64_t i = 1'000; i < 2'000; ++i) {
        b.add(i);
        direct.add(i);
    }
    ab = a;
    ab.merge(b);
    ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.estimate(), direct.estimate());
    EXPECT_EQ(ba.estimate(), direct.estimate());
    // Idempotence: merging a sketch into itself changes nothing.
    HllSketch aa = a;
    aa.merge(a);
    EXPECT_EQ(aa.estimate(), a.estimate());
}

/** Feed @p n accesses for @p pc cycling over @p blocks distinct
 *  blocks starting at @p base; set = block index % num_sets. */
void
feedCyclic(OnlineProfiler &prof, Pc pc, std::uint64_t base,
           std::uint64_t blocks, std::uint64_t n, std::uint32_t num_sets)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t b = base + (i % blocks);
        prof.onAccess(static_cast<std::uint32_t>(b % num_sets), b * 64,
                      pc, /*hit=*/i >= blocks);
    }
}

TEST(OnlineProfiler, RateOneCountsAreExact)
{
    ProfileConfig cfg;
    cfg.enabled = true;
    cfg.sampleRate = 1;
    OnlineProfiler prof(cfg, /*num_sets=*/64);

    // Three PCs with disjoint block ranges and known weights:
    // 600 / 300 / 100 accesses over 100 / 50 / 10 distinct blocks.
    feedCyclic(prof, 0xA1, 0, 100, 600, 64);
    feedCyclic(prof, 0xB2, 10'000, 50, 300, 64);
    feedCyclic(prof, 0xC3, 20'000, 10, 100, 64);

    const OnlineProfiler::Summary s = prof.summarize();
    EXPECT_EQ(s.sampleRate, 1u);
    EXPECT_EQ(s.sampledSets, 64u);
    EXPECT_EQ(s.demandAccesses, 1'000u);
    EXPECT_EQ(s.sampledAccesses, 1'000u);
    EXPECT_EQ(s.coldAccesses, 160u); // one per distinct block
    ASSERT_EQ(s.rows.size(), 3u);

    // Rows sorted hottest-first.
    EXPECT_EQ(s.rows[0].pc, 0xA1u);
    EXPECT_EQ(s.rows[0].accesses, 600u);
    EXPECT_EQ(s.rows[1].pc, 0xB2u);
    EXPECT_EQ(s.rows[1].accesses, 300u);
    EXPECT_EQ(s.rows[2].pc, 0xC3u);
    EXPECT_EQ(s.rows[2].accesses, 100u);

    // Small footprints sit in the sketch's linear-counting regime.
    EXPECT_NEAR(s.rows[0].footprintBlocks, 100.0, 10.0);
    EXPECT_NEAR(s.rows[1].footprintBlocks, 50.0, 5.0);
    EXPECT_NEAR(s.rows[2].footprintBlocks, 10.0, 1.0);
    EXPECT_NEAR(s.footprintBlocks, 160.0, 16.0);

    // Concentration: 0.6, then 0.9, then saturation at 1.0.
    EXPECT_DOUBLE_EQ(s.concentration[0], 0.6);
    EXPECT_DOUBLE_EQ(s.concentration[1], 0.9);
    for (std::size_t k = 2; k < s.concentration.size(); ++k)
        EXPECT_DOUBLE_EQ(s.concentration[k], 1.0);
    EXPECT_EQ(s.pcsFor90, 2u); // 600 + 300 == ceil(0.9 * 1000)

    // H(0.6, 0.3, 0.1) in bits.
    EXPECT_NEAR(s.entropyBits, 1.2955, 1e-3);
}

TEST(OnlineProfiler, ReuseDistanceMeanAndPercentiles)
{
    ProfileConfig cfg;
    cfg.enabled = true;
    OnlineProfiler prof(cfg, /*num_sets=*/16);

    // One PC cycling over 4 blocks: every non-cold access revisits its
    // block exactly 4 sampled accesses later.
    feedCyclic(prof, 0xF00D, 0, 4, 400, 16);

    const OnlineProfiler::Summary s = prof.summarize();
    ASSERT_EQ(s.rows.size(), 1u);
    const OnlineProfiler::PcRow &row = s.rows[0];
    EXPECT_EQ(row.accesses, 400u);
    EXPECT_EQ(row.hits, 396u);
    EXPECT_EQ(row.reuseSamples, 396u);
    EXPECT_DOUBLE_EQ(row.reuseMean, 4.0);
    // Distance 4 lands in the [4,8) bucket, whose lower bound is 4.
    EXPECT_EQ(row.reuseP50, 4u);
    EXPECT_EQ(row.reuseP90, 4u);
    EXPECT_EQ(s.coldAccesses, 4u);

    prof.reset();
    const OnlineProfiler::Summary empty = prof.summarize();
    EXPECT_EQ(empty.demandAccesses, 0u);
    EXPECT_TRUE(empty.rows.empty());
    EXPECT_EQ(empty.entropyBits, 0.0);
}

TEST(OnlineProfiler, SetSamplingScalesBackToFullStreamUnits)
{
    const std::uint32_t num_sets = 64;
    ProfileConfig exact_cfg;
    exact_cfg.enabled = true;
    exact_cfg.sampleRate = 1;
    ProfileConfig sampled_cfg;
    sampled_cfg.enabled = true;
    sampled_cfg.sampleRate = 4;
    OnlineProfiler exact(exact_cfg, num_sets);
    OnlineProfiler sampled(sampled_cfg, num_sets);

    // 4 sequential sweeps over 4096 blocks, uniform across sets, so
    // the 16 sampled sets see exactly 1/4 of everything.
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t b = 0; b < 4'096; ++b) {
            const auto set = static_cast<std::uint32_t>(b % num_sets);
            exact.onAccess(set, b * 64, 0xAB, round > 0);
            sampled.onAccess(set, b * 64, 0xAB, round > 0);
        }
    }

    const OnlineProfiler::Summary se = exact.summarize();
    const OnlineProfiler::Summary ss = sampled.summarize();
    EXPECT_EQ(ss.sampleRate, 4u);
    EXPECT_EQ(ss.sampledSets, 16u);
    // Demand counting is exact regardless of the sampling rate.
    EXPECT_EQ(ss.demandAccesses, se.demandAccesses);
    EXPECT_EQ(ss.sampledAccesses, se.sampledAccesses / 4);
    // Scaled footprint within the sketch error of the exact one
    // (sampling adds no error here because the stream is set-uniform).
    EXPECT_NEAR(ss.footprintBlocks, se.footprintBlocks,
                se.footprintBlocks * 0.17);
    EXPECT_NEAR(se.footprintBlocks, 4'096.0, 4'096.0 * 0.17);
    // Reuse distances are measured in sampled-access units and scaled
    // by the rate, so both agree on full-stream distances: a block
    // revisited 4096 accesses later reads ~1024 * 4 under rate 4.
    ASSERT_EQ(ss.rows.size(), 1u);
    ASSERT_EQ(se.rows.size(), 1u);
    EXPECT_NEAR(ss.rows[0].reuseMean, se.rows[0].reuseMean,
                se.rows[0].reuseMean * 0.05);
}

/** Shrunken hierarchy (the golden-test shape) with profiling on. */
SimConfig
profiledConfig(std::uint32_t sample_rate = 1)
{
    SimConfig cfg = cascadeLakeConfig("lru", /*warmup=*/5'000,
                                      /*measure=*/60'000);
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l1i.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1i.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    cfg.profile.enabled = true;
    cfg.profile.sampleRate = sample_rate;
    return cfg;
}

std::shared_ptr<Workload>
profiledWorkload(std::uint32_t id = 81)
{
    SynthParams p;
    p.pcWorkloadId = id;
    p.seed = 31 + id;
    p.mainBytes = 256ull << 10;
    p.hotBytes = 24ull << 10;
    p.hotFraction = 0.9;
    p.aluPerOp = 2;
    return std::make_shared<SyntheticWorkload>(
        "profiled", SynthPattern::HotCold, p);
}

/** A second suite member with a *distinct name*: sweep cell paths are
 *  keyed by workload name, and two same-named workloads would share
 *  one cell subtree (summed counters, last-writer gauges). */
std::shared_ptr<Workload>
profiledThrashWorkload()
{
    SynthParams p;
    p.pcWorkloadId = 82;
    p.seed = 41;
    p.mainBytes = 96ull << 10;
    p.aluPerOp = 2;
    return std::make_shared<SyntheticWorkload>(
        "profiled", SynthPattern::ScanThrash, p);
}

TEST(ProfileIntegration, DemandAccountingMatchesLlcStats)
{
    auto workload = profiledWorkload();
    const SimResult r = runOne(*workload, profiledConfig());
    // The profiler and CacheStats count the same thing: LLC demand
    // (Load/Store) accesses over the measured window.
    ASSERT_TRUE(r.extraMetrics.hasCounter("profile.demand_accesses"));
    EXPECT_EQ(r.extraMetrics.counter("profile.demand_accesses"),
              r.llc.demandAccesses());
    EXPECT_EQ(r.extraMetrics.counter("profile.sampled_hits"),
              r.llc.demandHits());
    EXPECT_GT(r.extraMetrics.counter("profile.distinct_pcs"), 0u);
    EXPECT_GT(r.extraMetrics.gauge("profile.pc_entropy_bits"), 0.0);
}

TEST(ProfileIntegration, DisabledProfileExportsNothing)
{
    auto workload = profiledWorkload();
    SimConfig cfg = profiledConfig();
    cfg.profile.enabled = false;
    const SimResult r = runOne(*workload, cfg);
    EXPECT_FALSE(r.extraMetrics.hasCounter("profile.demand_accesses"));
    EXPECT_FALSE(r.extraMetrics.hasGauge("profile.pc_entropy_bits"));
}

TEST(ProfileIntegration, SampledRunApproximatesExactRun)
{
    // The same deterministic workload under rate 1 and rate 4: exact
    // demand totals must match, and the scaled estimates must stay
    // within the documented sampling + sketch error envelope.
    auto workload = profiledWorkload();
    const SimResult exact = runOne(*workload, profiledConfig(1));
    const SimResult sampled = runOne(*workload, profiledConfig(4));

    EXPECT_EQ(sampled.extraMetrics.counter("profile.demand_accesses"),
              exact.extraMetrics.counter("profile.demand_accesses"));
    const auto exact_fp = static_cast<double>(
        exact.extraMetrics.counter("profile.footprint_blocks"));
    const auto sampled_fp = static_cast<double>(
        sampled.extraMetrics.counter("profile.footprint_blocks"));
    ASSERT_GT(exact_fp, 0.0);
    // 1-in-4 set sampling of a hot/cold mix: generous 35% envelope —
    // this guards against unit mistakes (forgotten scaling gives 4x
    // error), not sketch noise.
    EXPECT_NEAR(sampled_fp, exact_fp, exact_fp * 0.35);
    const double exact_top8 =
        exact.extraMetrics.gauge("profile.concentration.top_8");
    const double sampled_top8 =
        sampled.extraMetrics.gauge("profile.concentration.top_8");
    EXPECT_NEAR(sampled_top8, exact_top8, 0.15);
}

/** Copy of @p in restricted to profile subtrees (any depth). */
MetricsRegistry
profileOnly(const MetricsRegistry &in)
{
    const auto is_profile = [](const std::string &path) {
        return path.rfind("profile.", 0) == 0 ||
               path.find(".profile.") != std::string::npos;
    };
    MetricsRegistry out;
    for (const auto &[path, value] : in.counters()) {
        if (is_profile(path))
            out.setCounter(path, value);
    }
    for (const auto &[path, value] : in.gauges()) {
        if (is_profile(path))
            out.setGauge(path, value);
    }
    return out;
}

std::string
profileJson(const MetricsRegistry &in)
{
    MetricsDocument doc;
    doc.name = "profile";
    doc.wallMs = 0.0;
    doc.metrics = profileOnly(in);
    return metricsToJson(doc);
}

TEST(ProfileIntegration, SweepProfileTreeIsJobsInvariant)
{
    // Two workloads x two policies with sampling on: the aggregated
    // profile.* subtree must be byte-identical between a serial and a
    // 4-worker sweep (integer counters, max-merged sketches, fixed
    // reduction order).
    const std::vector<std::shared_ptr<Workload>> suite = {
        profiledWorkload(), profiledThrashWorkload()};
    const std::vector<std::string> policies = {"lru", "srrip"};

    SuiteRunner serial(profiledConfig(2), /*jobs=*/1);
    serial.setVerbose(false);
    SuiteRunner parallel(profiledConfig(2), /*jobs=*/4);
    parallel.setVerbose(false);

    const SweepReport a = serial.runChecked(suite, policies);
    const SweepReport b = parallel.runChecked(suite, policies);
    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());

    const std::string ja = profileJson(a.metrics);
    const std::string jb = profileJson(b.metrics);
    EXPECT_FALSE(profileOnly(a.metrics).counters().empty());
    EXPECT_EQ(ja, jb);
}

TEST(ProfileIntegration, OneCoreCorunProfileMatchesSingleRun)
{
    // The shared-LLC profiler resets at the all-cores-warm barrier,
    // which for one core is the single core's warmup boundary — so a
    // profiled 1-core co-run must export the same profile.* bytes as
    // a plain run.
    auto workload = profiledWorkload();
    const SimResult solo = runOne(*workload, profiledConfig());
    MetricsRegistry solo_metrics;
    solo.exportMetrics(solo_metrics);

    CorunRunOptions options;
    options.config.base = profiledConfig();
    auto report_or =
        runCorun({CorunTenant::fromWorkload(profiledWorkload())}, options);
    ASSERT_TRUE(report_or.ok()) << report_or.status().message();
    MetricsRegistry corun_metrics;
    report_or.value().exportMetrics(corun_metrics);

    EXPECT_FALSE(profileOnly(solo_metrics).counters().empty());
    EXPECT_EQ(profileJson(solo_metrics), profileJson(corun_metrics));
}

} // anonymous namespace
} // namespace cachescope
