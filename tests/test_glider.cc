/**
 * @file
 * Unit tests for Glider: ISVM predictions, PCHR maintenance via
 * observable behaviour, training from OPTgen labels, and insertion
 * tiers.
 */

#include <gtest/gtest.h>

#include "replacement/glider.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::smallGeometry;

TEST(Glider, InitialPredictionIsZero)
{
    GliderPolicy glider(smallGeometry(64, 4));
    EXPECT_EQ(glider.predictionSum(0x400000), 0);
}

TEST(Glider, ZeroSumCountsAsFriendlyMidInsertion)
{
    GliderPolicy glider(smallGeometry(64, 4));
    // Sum 0 (>= 0 but < high confidence): mid-stack insertion.
    glider.update(1, 0, 0x400000, 1, AccessType::Load, false);
    EXPECT_EQ(glider.rrpvOf(1, 0), GliderPolicy::kMaxRrpv / 4);
}

TEST(Glider, WritebackInsertsAverse)
{
    GliderPolicy glider(smallGeometry(64, 4));
    glider.update(1, 2, 0, 7, AccessType::Writeback, false);
    EXPECT_EQ(glider.rrpvOf(1, 2), GliderPolicy::kMaxRrpv);
}

TEST(Glider, SampledSetCountMatchesTarget)
{
    GliderPolicy glider({2048, 11, 64});
    int sampled = 0;
    for (std::uint32_t s = 0; s < 2048; ++s)
        sampled += glider.isSampledSet(s);
    EXPECT_EQ(sampled, 64);
}

TEST(Glider, ReusePatternTrainsPositive)
{
    GliderPolicy glider(smallGeometry(64, 4));
    const Pc pc = 0x400040;
    // Tight reuse in a sampled set: OPT hits, ISVM weights grow.
    for (int i = 0; i < 200; ++i) {
        glider.update(0, static_cast<std::uint32_t>(i % 2), pc,
                      0x3000 + (i % 2), AccessType::Load, i >= 2);
    }
    EXPECT_GT(glider.predictionSum(pc), 0);
}

TEST(Glider, ThrashPatternTrainsNegative)
{
    GliderPolicy glider(smallGeometry(64, 4));
    const Pc pc = 0x400080;
    // 16-block cycle over capacity 4: mostly OPT misses.
    for (int round = 0; round < 50; ++round) {
        for (Addr blk = 0; blk < 16; ++blk) {
            glider.update(0, static_cast<std::uint32_t>(blk % 4), pc,
                          0x4000 + blk, AccessType::Load, false);
        }
    }
    EXPECT_LT(glider.predictionSum(pc), 0);

    // Negative-sum fills insert at distant RRPV.
    glider.update(1, 1, pc, 0x9000, AccessType::Load, false);
    EXPECT_EQ(glider.rrpvOf(1, 1), GliderPolicy::kMaxRrpv);
}

TEST(Glider, HighConfidencePredictionProtectsAndAges)
{
    GliderPolicy glider(smallGeometry(64, 4));
    const Pc pc = 0x4000C0;
    for (int i = 0; i < 400; ++i) {
        glider.update(0, static_cast<std::uint32_t>(i % 2), pc,
                      0x5000 + (i % 2), AccessType::Load, i >= 2);
    }
    ASSERT_GE(glider.predictionSum(pc), GliderPolicy::kHighConfidence);

    // Plant a mid line, then a high-confidence fill: peer ages by one.
    GliderPolicy fresh(smallGeometry(64, 4));
    // (use the trained instance; unsampled set 65 doesn't exist, use
    // set 1 which is sampled but training effect of two accesses is
    // negligible next to the established weights)
    glider.update(1, 0, 0x400FF0, 0x6000, AccessType::Load, false);
    const std::uint8_t before = glider.rrpvOf(1, 0);
    glider.update(1, 1, pc, 0x6001, AccessType::Load, false);
    EXPECT_EQ(glider.rrpvOf(1, 1), 0);
    EXPECT_EQ(glider.rrpvOf(1, 0), before + 1);
    (void)fresh;
}

TEST(Glider, HistoryInfluencesPrediction)
{
    // The same fill PC must be able to produce different predictions
    // under different PC histories — the capability Hawkeye lacks.
    GliderPolicy glider(smallGeometry(64, 4));
    const Pc target = 0x400100;
    const Pc ctx_a = 0x400200;
    const Pc ctx_b = 0x400300;

    // Phase A: ctx_a preceding target with reuse (positive label).
    for (int i = 0; i < 150; ++i) {
        glider.update(0, 0, ctx_a, 0x7000, AccessType::Load, true);
        glider.update(0, static_cast<std::uint32_t>(i % 2), target,
                      0x7100 + (i % 2), AccessType::Load, i >= 2);
    }
    const std::int32_t sum_with_a = glider.predictionSum(target);
    EXPECT_GT(sum_with_a, 0);

    // Flush the trained context out of the depth-5 PC history with
    // untrained PCs: the same target PC now predicts differently.
    for (int i = 0; i < 5; ++i) {
        glider.update(0, 3, ctx_b + 4 * static_cast<Pc>(i), 0x7200 + i,
                      AccessType::Load, true);
    }
    const std::int32_t sum_flushed = glider.predictionSum(target);
    EXPECT_LT(sum_flushed, sum_with_a);
}

TEST(Glider, VictimPrefersAverse)
{
    GliderPolicy glider(smallGeometry(64, 4));
    glider.update(1, 0, 0x400000, 1, AccessType::Load, false);
    glider.update(1, 1, 0x400004, 2, AccessType::Load, false);
    glider.update(1, 2, 0x400008, 3, AccessType::Load, false);
    glider.update(1, 3, 0, 4, AccessType::Writeback, false);
    EXPECT_EQ(glider.findVictim(1, 0x400500, 9, AccessType::Load), 3u);
}

} // namespace
} // namespace cachescope
