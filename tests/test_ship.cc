/**
 * @file
 * Unit tests for SHiP-PC: signature hashing, SHCT training, and
 * insertion decisions.
 */

#include <gtest/gtest.h>

#include "replacement/ship.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::smallGeometry;

TEST(Ship, SignatureIsStableAndBounded)
{
    const std::uint32_t s1 = ShipPolicy::signatureOf(0x400123);
    EXPECT_EQ(s1, ShipPolicy::signatureOf(0x400123));
    EXPECT_LT(s1, ShipPolicy::kShctEntries);
    // Nearby PCs map to different signatures (not a constant hash).
    EXPECT_NE(ShipPolicy::signatureOf(0x400120),
              ShipPolicy::signatureOf(0x400160));
}

TEST(Ship, InsertionStartsLong)
{
    ShipPolicy ship(smallGeometry(1, 4));
    ship.update(0, 0, 0x400000, 1, AccessType::Load, false);
    // Fresh SHCT counters start at 1 (not dead): long insertion.
    EXPECT_EQ(ship.rrpvOf(0, 0), ShipPolicy::kMaxRrpv - 1);
}

TEST(Ship, ReuseTrainsSignatureUp)
{
    ShipPolicy ship(smallGeometry(1, 4));
    const Pc pc = 0x400040;
    const std::uint32_t sig = ShipPolicy::signatureOf(pc);
    const std::uint32_t before = ship.shctValue(sig);
    ship.update(0, 0, pc, 1, AccessType::Load, false);
    ship.update(0, 0, pc, 1, AccessType::Load, true); // reuse
    EXPECT_EQ(ship.shctValue(sig), before + 1);
}

TEST(Ship, ReuseTrainsOnlyOncePerResidency)
{
    ShipPolicy ship(smallGeometry(1, 4));
    const Pc pc = 0x400040;
    const std::uint32_t sig = ShipPolicy::signatureOf(pc);
    ship.update(0, 0, pc, 1, AccessType::Load, false);
    for (int i = 0; i < 5; ++i)
        ship.update(0, 0, pc, 1, AccessType::Load, true);
    EXPECT_EQ(ship.shctValue(sig), 2u); // 1 initial + 1, not + 5
}

TEST(Ship, DeadLineTrainsSignatureDown)
{
    ShipPolicy ship(smallGeometry(1, 4));
    const Pc pc = 0x400080;
    const std::uint32_t sig = ShipPolicy::signatureOf(pc);
    const std::uint32_t before = ship.shctValue(sig);
    // Fill with pc, never hit, then the fill of a different block
    // overwrites the same way -> negative training for pc.
    ship.update(0, 2, pc, 1, AccessType::Load, false);
    ship.update(0, 2, 0x400100, 2, AccessType::Load, false);
    EXPECT_EQ(ship.shctValue(sig), before - 1);
}

TEST(Ship, SaturatedDeadSignatureInsertsDistant)
{
    ShipPolicy ship(smallGeometry(1, 4));
    const Pc dead_pc = 0x4000C0;
    // Drive the signature's counter to zero with dead residencies.
    for (int i = 0; i < 8; ++i) {
        ship.update(0, 0, dead_pc, i, AccessType::Load, false);
        ship.update(0, 0, 0x400F00, 100 + i, AccessType::Load, false);
    }
    EXPECT_EQ(ship.shctValue(ShipPolicy::signatureOf(dead_pc)), 0u);
    ship.update(0, 1, dead_pc, 50, AccessType::Load, false);
    EXPECT_EQ(ship.rrpvOf(0, 1), ShipPolicy::kMaxRrpv);
}

TEST(Ship, WritebacksNeitherTrainNorPredict)
{
    ShipPolicy ship(smallGeometry(1, 4));
    const Pc pc = 0x400200;
    const std::uint32_t sig = ShipPolicy::signatureOf(pc);
    const std::uint32_t before = ship.shctValue(sig);

    // Writeback fill: inserted long, marked untrainable.
    ship.update(0, 0, pc, 1, AccessType::Writeback, false);
    EXPECT_EQ(ship.rrpvOf(0, 0), ShipPolicy::kMaxRrpv - 1);
    // Overwriting it must not detrain pc.
    ship.update(0, 0, 0x400300, 2, AccessType::Load, false);
    EXPECT_EQ(ship.shctValue(sig), before);

    // Writeback hit on a demand-filled line must not train either.
    ship.update(0, 1, pc, 3, AccessType::Load, false);
    ship.update(0, 1, 0, 3, AccessType::Writeback, true);
    EXPECT_EQ(ship.shctValue(sig), before);
}

TEST(Ship, VictimPrefersDistantLines)
{
    ShipPolicy ship(smallGeometry(1, 4));
    for (std::uint32_t w = 0; w < 4; ++w)
        ship.update(0, w, 0x400000 + 4 * w, w, AccessType::Load, false);
    // Promote ways 0..2; way 3 stays at long (2): aging finds it first.
    for (std::uint32_t w = 0; w < 3; ++w)
        ship.update(0, w, 0x400000 + 4 * w, w, AccessType::Load, true);
    EXPECT_EQ(ship.findVictim(0, 0, 9, AccessType::Load), 3u);
}

TEST(Ship, LearnsStreamingVsReusingPcs)
{
    // Integration-flavoured unit test: one PC streams (never reuses),
    // another reuses heavily. After a training period, the streaming
    // PC's insertions must be distant and the reusing PC's long.
    ShipPolicy ship(smallGeometry(4, 4));
    const Pc stream_pc = 0x400400;
    const Pc reuse_pc = 0x400404;

    for (int round = 0; round < 16; ++round) {
        const auto set = static_cast<std::uint32_t>(round % 4);
        // Streaming fill, immediately replaced without a hit.
        ship.update(set, 0, stream_pc, 1000 + round, AccessType::Load,
                    false);
        ship.update(set, 0, 0x400FF0, 2000 + round, AccessType::Load,
                    false);
        // Reusing fill: filled, hit, hit.
        ship.update(set, 1, reuse_pc, 3000 + round, AccessType::Load,
                    false);
        ship.update(set, 1, reuse_pc, 3000 + round, AccessType::Load,
                    true);
    }

    ship.update(0, 2, stream_pc, 42, AccessType::Load, false);
    EXPECT_EQ(ship.rrpvOf(0, 2), ShipPolicy::kMaxRrpv);
    ship.update(0, 3, reuse_pc, 43, AccessType::Load, false);
    EXPECT_EQ(ship.rrpvOf(0, 3), ShipPolicy::kMaxRrpv - 1);
}

} // namespace
} // namespace cachescope
