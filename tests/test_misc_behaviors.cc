/**
 * @file
 * Cross-cutting behavioural tests added alongside the calibration
 * work: DRAM write buffering, warmup hints, prefetch statistics
 * plumbing, and parameterized policy-geometry sweeps.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/cascade_lake.hh"
#include "dram/dram.hh"
#include "harness/experiment.hh"
#include "harness/workload_zoo.hh"
#include "replacement/replacement_policy.hh"
#include "trace/pc_site.hh"
#include "trace/traced_memory.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

// -------------------------------------------------- DRAM write buffering --

TEST(DramWrites, WritesDoNotDisturbReadTiming)
{
    // Two identical read streams, one interleaved with writes to the
    // same banks: read completion times must be identical (writes are
    // buffered and drained off the modelled timeline).
    DramModel clean(DramConfig::ddr4_2933());
    DramModel dirty(DramConfig::ddr4_2933());
    Rng rng(9);
    Cycle now_clean = 0, now_dirty = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.nextBounded(1ull << 28) & ~Addr{63};
        now_clean = clean.read(addr, now_clean);
        dirty.write(addr ^ 0x40, now_dirty); // adjacent block, same row
        now_dirty = dirty.read(addr, now_dirty);
    }
    EXPECT_EQ(now_clean, now_dirty);
    EXPECT_EQ(dirty.stats().writes, 2000u);
    EXPECT_EQ(clean.stats().rowHits, dirty.stats().rowHits);
}

TEST(DramWrites, WritesAreCountedWithBandwidthCost)
{
    DramModel dram(DramConfig::ddr4_2933());
    const Cycle done = dram.write(0, 100);
    EXPECT_EQ(done, 100 + dram.config().tBurst);
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().reads, 0u);
}

// ----------------------------------------------------------- warmup hints --

TEST(WarmupHint, PageRankHintCoversPhaseOne)
{
    ZooOptions options;
    options.scale = 12;
    auto pr = makeNamedWorkload("pr", options);
    auto bfs = makeNamedWorkload("bfs", options);
    // Phase 1 is ~9 records per vertex; the hint must exceed it.
    EXPECT_GT(pr->warmupHint(), (1u << 12) * 9ull);
    EXPECT_EQ(bfs->warmupHint(), 0u);
}

TEST(WarmupHint, HarnessExtendsConfiguredWarmup)
{
    ZooOptions options;
    options.scale = 12;
    auto pr = makeNamedWorkload("pr", options);
    SimConfig cfg = cascadeLakeConfig("lru", /*warmup=*/1'000,
                                      /*measure=*/50'000);
    const SimResult r = runOne(*pr, cfg);
    // If the hint were ignored the measured window would start inside
    // the sequential phase-1 and show near-zero LLC pressure relative
    // to the gather phase; instead the measured window must contain
    // the gather's irregular loads.
    EXPECT_EQ(r.core.instructions, 50'000u);
    EXPECT_GT(r.mpkiL1d(), 5.0);
}

// ----------------------------------------------- prefetch stats plumbing --

TEST(PrefetchPlumbing, L2PrefetchStatsReachSimResult)
{
    ZooOptions options;
    options.synthMainBytes = 4ull << 20;
    auto stream = makeNamedWorkload("stream_triad", options);
    SimConfig cfg = cascadeLakeConfig("lru", 10'000, 200'000);
    cfg.hierarchy.l2.prefetcher = "streamer";
    const SimResult r = runOne(*stream, cfg);
    EXPECT_GT(r.l2.prefetchesIssued, 1000u);
    // A pure stream is the streamer's best case.
    EXPECT_GT(static_cast<double>(r.l2.prefetchesUseful) /
              static_cast<double>(r.l2.prefetchesIssued), 0.8);
    // And prefetching a stream reduces L2 demand misses.
    SimConfig nopf = cfg;
    nopf.hierarchy.l2.prefetcher = "none";
    auto stream2 = makeNamedWorkload("stream_triad", options);
    const SimResult base = runOne(*stream2, nopf);
    EXPECT_LT(r.l2.demandMisses(), base.l2.demandMisses() / 2);
}

TEST(PrefetchPlumbing, DefaultConfigHasNoPrefetcher)
{
    const SimConfig cfg = cascadeLakeConfig();
    EXPECT_EQ(cfg.hierarchy.l1d.prefetcher, "none");
    EXPECT_EQ(cfg.hierarchy.l2.prefetcher, "none");
    EXPECT_EQ(cfg.hierarchy.llc.prefetcher, "none");
}

// ------------------------------------- policy x geometry property sweep --

using PolicyGeometry = std::tuple<const char *, std::uint32_t>;

class PolicyGeometryTest
    : public ::testing::TestWithParam<PolicyGeometry>
{};

TEST_P(PolicyGeometryTest, SurvivesRandomStreamAtAnyAssociativity)
{
    const auto [name, ways] = GetParam();
    const CacheGeometry geom{64, ways, 64};
    auto policy = ReplacementPolicyFactory::create(name, geom);
    Rng rng(1234);
    // Random mixed stream incl. writebacks; invariant: victims in
    // range, no crashes, and a line that was just updated as a hit is
    // tracked (exercised indirectly by the update path).
    for (int i = 0; i < 4000; ++i) {
        const auto set = static_cast<std::uint32_t>(rng.nextBounded(64));
        const Addr block = rng.nextBounded(1 << 18);
        const Pc pc = 0x400000 + 4 * rng.nextBounded(32);
        const auto type = static_cast<AccessType>(rng.nextBounded(4));
        const std::uint32_t victim =
            policy->findVictim(set, pc, block, type);
        if (victim == ReplacementPolicy::kBypassWay)
            continue;
        ASSERT_LT(victim, ways);
        policy->update(set, victim, pc, block, type, rng.nextBool(0.4));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PolicyGeometryTest,
    ::testing::Combine(
        ::testing::Values("lru", "plru", "srrip", "drrip", "dip", "ship",
                          "hawkeye", "glider", "mpppb"),
        ::testing::Values(1u, 2u, 4u, 11u, 16u)),
    [](const ::testing::TestParamInfo<PolicyGeometry> &info) {
        return std::string(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------- PC region hygiene --

TEST(PcRegions, GapAndSpecSuitesNeverCollide)
{
    // GAP ids start at 0 and the synthetic suites at 100/200; a GAP
    // suite would need >100 workloads to collide.
    ZooOptions options;
    options.scale = 8;
    const auto gap = makeNamedSuite("gap", options);
    EXPECT_LT(gap.size(), 100u);
    const Pc spec06_base =
        PcRegion(100).regionBase();
    const Pc gap_last_end =
        PcRegion(static_cast<std::uint32_t>(gap.size())).regionBase();
    EXPECT_LT(gap_last_end, spec06_base);
}

} // namespace
} // namespace cachescope
