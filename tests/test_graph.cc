/**
 * @file
 * Unit tests for the graph substrate: CSR construction invariants,
 * transposition, and the generators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/csr_graph.hh"
#include "graph/generators.hh"
#include "util/checksum.hh"

namespace cachescope {
namespace {

TEST(CsrGraph, BuildsFromEdgeList)
{
    //   0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
    std::vector<WeightedEdge> edges = {
        {0, 1, 5}, {0, 2, 6}, {1, 2, 7}, {2, 0, 8}};
    const CsrGraph g = CsrGraph::fromEdges(3, edges, /*symmetrize=*/false);

    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 1u);

    const auto n0 = g.neighbors(0);
    EXPECT_EQ(std::set<NodeId>(n0.begin(), n0.end()),
              (std::set<NodeId>{1, 2}));
    EXPECT_EQ(g.neighbors(1)[0], 2u);
    EXPECT_EQ(g.weights(1)[0], 7u);
}

TEST(CsrGraph, OffsetsAreMonotoneAndComplete)
{
    std::vector<WeightedEdge> edges = {{0, 3, 1}, {3, 0, 1}, {1, 2, 1}};
    const CsrGraph g = CsrGraph::fromEdges(5, edges, false);
    const auto &oa = g.offsetArray();
    ASSERT_EQ(oa.size(), 6u);
    EXPECT_EQ(oa.front(), 0u);
    EXPECT_EQ(oa.back(), g.numEdges());
    EXPECT_TRUE(std::is_sorted(oa.begin(), oa.end()));
    // Vertex 4 has no edges.
    EXPECT_EQ(g.degree(4), 0u);
    EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(CsrGraph, SymmetrizeAddsReverseEdges)
{
    std::vector<WeightedEdge> edges = {{0, 1, 9}};
    const CsrGraph g = CsrGraph::fromEdges(2, edges, /*symmetrize=*/true);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.neighbors(1)[0], 0u);
    EXPECT_EQ(g.weights(1)[0], 9u);
}

TEST(CsrGraph, SymmetrizeKeepsSelfLoopsSingle)
{
    std::vector<WeightedEdge> edges = {{0, 0, 1}, {0, 1, 1}};
    const CsrGraph g = CsrGraph::fromEdges(2, edges, true);
    // Self-loop is not duplicated: 2 originals + 1 reverse = 3.
    EXPECT_EQ(g.numEdges(), 3u);
}

TEST(CsrGraph, TransposeReversesAdjacency)
{
    std::vector<WeightedEdge> edges = {{0, 1, 3}, {0, 2, 4}, {2, 1, 5}};
    const CsrGraph g = CsrGraph::fromEdges(3, edges, false);
    const CsrGraph t = g.transpose();
    EXPECT_EQ(t.numEdges(), g.numEdges());
    EXPECT_EQ(t.degree(1), 2u); // in-degree of 1 was 2
    EXPECT_EQ(t.degree(0), 0u);
    const auto n1 = t.neighbors(1);
    EXPECT_EQ(std::set<NodeId>(n1.begin(), n1.end()),
              (std::set<NodeId>{0, 2}));
}

TEST(CsrGraph, DoubleTransposeIsIdentity)
{
    const CsrGraph g = makeUniform(8, 4, 7, /*symmetrize=*/false);
    const CsrGraph tt = g.transpose().transpose();
    ASSERT_EQ(tt.numNodes(), g.numNodes());
    ASSERT_EQ(tt.numEdges(), g.numEdges());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto a = g.neighbors(v);
        auto b = tt.neighbors(v);
        std::vector<NodeId> sa(a.begin(), a.end()), sb(b.begin(), b.end());
        std::sort(sa.begin(), sa.end());
        std::sort(sb.begin(), sb.end());
        EXPECT_EQ(sa, sb) << "vertex " << v;
    }
}

TEST(Generators, KroneckerShape)
{
    const CsrGraph g = makeKronecker(10, 8, 1, /*symmetrize=*/false);
    EXPECT_EQ(g.numNodes(), 1024u);
    EXPECT_EQ(g.numEdges(), 1024u * 8);
    // Every neighbour id in range.
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (NodeId u : g.neighbors(v))
            EXPECT_LT(u, g.numNodes());
}

TEST(Generators, KroneckerIsDeterministic)
{
    const CsrGraph a = makeKronecker(8, 4, 99);
    const CsrGraph b = makeKronecker(8, 4, 99);
    EXPECT_EQ(a.offsetArray(), b.offsetArray());
    EXPECT_EQ(a.neighborArray(), b.neighborArray());
    const CsrGraph c = makeKronecker(8, 4, 100);
    EXPECT_NE(a.neighborArray(), c.neighborArray());
}

TEST(Generators, KroneckerIsSkewed)
{
    // R-MAT with Graph500 parameters concentrates edges on low ids:
    // the max degree should far exceed the average.
    const CsrGraph g = makeKronecker(12, 8, 5, /*symmetrize=*/false);
    NodeId max_deg = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    EXPECT_GT(max_deg, 20u * 8);
}

TEST(Generators, UniformIsNotSkewed)
{
    const CsrGraph g = makeUniform(12, 8, 5, /*symmetrize=*/false);
    NodeId max_deg = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    // Poisson(8): max over 4096 draws stays small.
    EXPECT_LT(max_deg, 40u);
}

TEST(Generators, WeightsInRange)
{
    const CsrGraph g = makeUniform(8, 4, 3, true, /*max_weight=*/16);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (std::uint32_t w : g.weights(v)) {
            EXPECT_GE(w, 1u);
            EXPECT_LE(w, 16u);
        }
    }
}

TEST(Generators, GridIsRegular)
{
    const CsrGraph g = makeGrid(8, 4);
    EXPECT_EQ(g.numNodes(), 32u);
    // Torus: every vertex has out-degree 4 after symmetrization
    // (right+down owned, left+up from reverses).
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(g.degree(v), 4u);
}

/** Digest a CSR graph's three arrays, order- and layout-sensitive. */
std::uint64_t
digestOf(const CsrGraph &g)
{
    Checksum64 sum;
    const auto &off = g.offsetArray();
    const auto &nbr = g.neighborArray();
    const auto &wts = g.weightArray();
    sum.update(off.data(), off.size() * sizeof(off[0]));
    sum.update(nbr.data(), nbr.size() * sizeof(nbr[0]));
    sum.update(wts.data(), wts.size() * sizeof(wts[0]));
    return sum.digest();
}

TEST(Generators, CrossRunDigestsMatchPinnedKnownAnswers)
{
    // Known-answer digests over the full CSR arrays (offsets,
    // neighbours, weights). These pin the generators' byte-exact
    // output across runs, builds, and platforms: the Belady oracle's
    // two-pass replay, checkpoint resume, and the difftest sweep-
    // equality family all assume workload construction is a pure
    // function of the seed. If a digest changes, the generator's
    // output changed — bump these only for an intentional format or
    // algorithm change, never to quiet a flaky run.
    EXPECT_EQ(digestOf(makeKronecker(8, 4, 99)),
              0x94d4c87a64b1b595ull);
    EXPECT_EQ(digestOf(makeKronecker(10, 8, 1, /*symmetrize=*/false)),
              0xa7295a0d7d714478ull);
    EXPECT_EQ(digestOf(makeUniform(8, 4, 99)),
              0x1faab5084998233aull);
    EXPECT_EQ(digestOf(makeUniform(10, 8, 7, /*symmetrize=*/false,
                                   /*max_weight=*/15)),
              0xf34f1d2834167a0aull);
    EXPECT_EQ(digestOf(makeGrid(16, 16)), 0xcdc45ac61bc0d422ull);

    // And the digest is stable across repeated in-process builds.
    EXPECT_EQ(digestOf(makeKronecker(8, 4, 99)),
              digestOf(makeKronecker(8, 4, 99)));
}

} // namespace
} // namespace cachescope
