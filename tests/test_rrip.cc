/**
 * @file
 * Unit tests for the RRIP family: SRRIP insertion/aging/promotion,
 * BRRIP's bimodal insertion, DRRIP's set dueling.
 */

#include <gtest/gtest.h>

#include "replacement/rrip.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::smallGeometry;

TEST(Srrip, InsertsWithLongInterval)
{
    SrripPolicy srrip(smallGeometry(1, 4));
    srrip.update(0, 0, 0, 10, AccessType::Load, false);
    EXPECT_EQ(srrip.rrpvOf(0, 0), RripBase::kMaxRrpv - 1);
}

TEST(Srrip, HitPromotesToZero)
{
    SrripPolicy srrip(smallGeometry(1, 4));
    srrip.update(0, 2, 0, 10, AccessType::Load, false);
    srrip.update(0, 2, 0, 10, AccessType::Load, true);
    EXPECT_EQ(srrip.rrpvOf(0, 2), 0);
}

TEST(Srrip, VictimIsDistantLine)
{
    SrripPolicy srrip(smallGeometry(1, 4));
    // Initial RRPVs are all max: way 0 wins the tie.
    EXPECT_EQ(srrip.findVictim(0, 0, 1, AccessType::Load), 0u);

    for (std::uint32_t w = 0; w < 4; ++w)
        srrip.update(0, w, 0, w, AccessType::Load, false); // all at 2
    srrip.update(0, 1, 0, 1, AccessType::Load, true);      // way 1 -> 0

    // No line at max: aging brings ways 0,2,3 (rrpv 2) to 3 first.
    const std::uint32_t v = srrip.findVictim(0, 0, 9, AccessType::Load);
    EXPECT_EQ(v, 0u);
    // Aging must not have pushed way 1 to max.
    EXPECT_LT(srrip.rrpvOf(0, 1), RripBase::kMaxRrpv);
}

TEST(Srrip, AgingPreservesOrder)
{
    SrripPolicy srrip(smallGeometry(1, 2));
    srrip.update(0, 0, 0, 0, AccessType::Load, false);
    srrip.update(0, 1, 0, 1, AccessType::Load, false);
    srrip.update(0, 0, 0, 0, AccessType::Load, true); // way 0 -> 0
    EXPECT_EQ(srrip.findVictim(0, 0, 9, AccessType::Load), 1u);
    // After the search aged the set, way 0 is still younger.
    EXPECT_LT(srrip.rrpvOf(0, 0), srrip.rrpvOf(0, 1));
}

TEST(Brrip, MostlyInsertsDistant)
{
    BrripPolicy brrip(smallGeometry(1, 4));
    int distant = 0, lon = 0;
    for (int i = 0; i < 256; ++i) {
        brrip.update(0, static_cast<std::uint32_t>(i % 4), 0, i,
                     AccessType::Load, false);
        if (brrip.rrpvOf(0, i % 4) == RripBase::kMaxRrpv)
            ++distant;
        else
            ++lon;
    }
    // Exactly one in kEpsilon fills gets the long interval.
    EXPECT_EQ(lon, 256 / BrripPolicy::kEpsilon);
    EXPECT_EQ(distant, 256 - 256 / BrripPolicy::kEpsilon);
}

TEST(Drrip, LeaderSetsExistForBothPolicies)
{
    DrripPolicy drrip({2048, 11, 64});
    int srrip_leaders = 0, brrip_leaders = 0, followers = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        switch (drrip.roleOf(s)) {
          case DrripPolicy::SetRole::SrripLeader: ++srrip_leaders; break;
          case DrripPolicy::SetRole::BrripLeader: ++brrip_leaders; break;
          case DrripPolicy::SetRole::Follower: ++followers; break;
        }
    }
    EXPECT_EQ(srrip_leaders, 32);
    EXPECT_EQ(brrip_leaders, 32);
    EXPECT_EQ(followers, 2048 - 64);
}

TEST(Drrip, PselMovesOnLeaderMisses)
{
    DrripPolicy drrip({2048, 4, 64});
    const std::uint32_t initial = drrip.psel();

    // Find one SRRIP leader set and miss in it repeatedly.
    std::uint32_t srrip_leader = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        if (drrip.roleOf(s) == DrripPolicy::SetRole::SrripLeader) {
            srrip_leader = s;
            break;
        }
    }
    for (int i = 0; i < 100; ++i)
        drrip.update(srrip_leader, 0, 0, i, AccessType::Load, false);
    EXPECT_LT(drrip.psel(), initial);

    std::uint32_t brrip_leader = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        if (drrip.roleOf(s) == DrripPolicy::SetRole::BrripLeader) {
            brrip_leader = s;
            break;
        }
    }
    for (int i = 0; i < 300; ++i)
        drrip.update(brrip_leader, 0, 0, i, AccessType::Load, false);
    EXPECT_GT(drrip.psel(), initial);
}

TEST(Drrip, FollowersTrackWinningLeader)
{
    DrripPolicy drrip({2048, 4, 64});
    std::uint32_t follower = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        if (drrip.roleOf(s) == DrripPolicy::SetRole::Follower) {
            follower = s;
            break;
        }
    }

    // Bias PSEL high (BRRIP leaders miss a lot -> SRRIP wins).
    std::uint32_t brrip_leader = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        if (drrip.roleOf(s) == DrripPolicy::SetRole::BrripLeader) {
            brrip_leader = s;
            break;
        }
    }
    for (std::uint32_t i = 0; i < DrripPolicy::kPselMax; ++i)
        drrip.update(brrip_leader, 0, 0, i, AccessType::Load, false);

    // Follower fills should now use SRRIP insertion (maxRrpv - 1).
    drrip.update(follower, 1, 0, 7, AccessType::Load, false);
    EXPECT_EQ(drrip.rrpvOf(follower, 1), RripBase::kMaxRrpv - 1);
}

TEST(Drrip, WritebackFillsDoNotTrainPsel)
{
    DrripPolicy drrip({2048, 4, 64});
    std::uint32_t srrip_leader = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        if (drrip.roleOf(s) == DrripPolicy::SetRole::SrripLeader) {
            srrip_leader = s;
            break;
        }
    }
    const std::uint32_t before = drrip.psel();
    for (int i = 0; i < 50; ++i)
        drrip.update(srrip_leader, 0, 0, i, AccessType::Writeback, false);
    EXPECT_EQ(drrip.psel(), before);
}

TEST(Drrip, TinyCacheEverySetIsLeader)
{
    // Fewer sets than 2 * kLeadersPerPolicy: stride clamps to 1 and the
    // first sets alternate roles.
    DrripPolicy drrip(smallGeometry(8, 4));
    EXPECT_EQ(drrip.roleOf(0), DrripPolicy::SetRole::SrripLeader);
    EXPECT_EQ(drrip.roleOf(1), DrripPolicy::SetRole::BrripLeader);
    EXPECT_EQ(drrip.roleOf(2), DrripPolicy::SetRole::SrripLeader);
}

} // namespace
} // namespace cachescope
