/**
 * @file
 * Tests for the experiment harness: single runs, the two-pass Belady
 * flow, sweeps, and speedup aggregation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "core/cascade_lake.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "trace/pc_site.hh"
#include "trace/traced_memory.hh"
#include "util/failpoint.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

/**
 * A small deterministic workload with LLC-unfriendly cyclic scans plus
 * a hot set, designed so replacement policy quality matters.
 */
class MiniWorkload : public Workload
{
  public:
    explicit MiniWorkload(std::string tag = "mini")
        : displayName(std::move(tag))
    {}

    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        AddressSpace space;
        TracedArray<std::uint64_t> scan(24 * 1024, space, sink, 1);
        TracedArray<std::uint64_t> hot(1024, space, sink, 2);
        PcRegion region(90);
        const Pc pc_scan = region.allocate();
        const Pc pc_hot = region.allocate();
        const Pc pc_alu = region.allocate();
        InstructionMix mix(sink);
        Rng rng(3);

        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; sink.wantsMore(); ++i) {
            acc += scan.load((i * 8) % scan.size(), pc_scan);
            acc += hot.load(rng.nextBounded(hot.size()), pc_hot);
            mix.alu(pc_alu, 4);
            if ((i & 1023) == 0 && !sink.wantsMore())
                break;
        }
        (void)acc;
        sink.onEnd();
    }

  private:
    std::string displayName;
};

SimConfig
testConfig(const std::string &policy = "lru")
{
    SimConfig cfg = cascadeLakeConfig(policy, /*warmup=*/20'000,
                                      /*measure=*/200'000);
    // Shrink the hierarchy so MiniWorkload stresses the LLC.
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    cfg.core.simulateFetch = false;
    return cfg;
}

TEST(Harness, RunOneProducesMeasuredWindow)
{
    MiniWorkload w;
    const SimResult r = runOne(w, testConfig());
    EXPECT_EQ(r.core.instructions, 200'000u);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_GT(r.mpkiLlc(), 0.0);
    EXPECT_EQ(r.llcPolicy, "lru");
}

TEST(Harness, ThroughputGaugesAreAlwaysPresentAndFinite)
{
    // A tiny run can finish inside the steady_clock's resolution;
    // the throughput gauge must still come out finite (the divisor is
    // clamped), or BENCH JSON baseline comparisons poison downstream.
    MiniWorkload w;
    SimConfig cfg = testConfig();
    cfg.warmupInstructions = 0;
    cfg.measureInstructions = 100;
    const SimResult r = runOne(w, cfg);
    const auto &gauges = r.extraMetrics.gauges();
    const auto secs = gauges.find("sim.wall_seconds");
    ASSERT_NE(secs, gauges.end());
    EXPECT_TRUE(std::isfinite(secs->second));
    EXPECT_GE(secs->second, 0.0);
    const auto mips = gauges.find("sim.throughput_mips");
    ASSERT_NE(mips, gauges.end());
    EXPECT_TRUE(std::isfinite(mips->second));
    EXPECT_GT(mips->second, 0.0);
}

TEST(Harness, BeladyBeatsEveryOnlinePolicyOnLlcMisses)
{
    MiniWorkload w;
    const SimResult opt = runBelady(w, testConfig());
    EXPECT_EQ(opt.llcPolicy, "belady");
    for (const char *policy : {"lru", "srrip", "ship"}) {
        MiniWorkload w2;
        const SimResult online = runOne(w2, testConfig(policy));
        EXPECT_LE(opt.llc.demandMisses(), online.llc.demandMisses())
            << "OPT lost to " << policy;
    }
}

TEST(Harness, SweepCoversGrid)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini.a"),
        std::make_shared<MiniWorkload>("mini.b"),
    };
    SuiteRunner runner(testConfig(), /*jobs=*/2);
    runner.setVerbose(false);
    const SweepResults results =
        runner.run(suite, {"lru", "srrip", "belady"});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &[workload, by_policy] : results) {
        (void)workload;
        ASSERT_EQ(by_policy.size(), 3u);
        EXPECT_GT(by_policy.at("lru").ipc(), 0.0);
        EXPECT_GT(by_policy.at("belady").ipc(), 0.0);
    }
}

TEST(Harness, SweepIsDeterministicAcrossJobCounts)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini.a"),
        std::make_shared<MiniWorkload>("mini.b"),
    };
    SuiteRunner serial(testConfig(), 1);
    SuiteRunner parallel(testConfig(), 4);
    serial.setVerbose(false);
    parallel.setVerbose(false);
    const auto a = serial.run(suite, {"lru", "drrip"});
    const auto b = parallel.run(suite, {"lru", "drrip"});
    for (const auto &[workload, by_policy] : a) {
        for (const auto &[policy, result] : by_policy) {
            EXPECT_EQ(result.core.cycles,
                      b.at(workload).at(policy).core.cycles);
        }
    }
}

TEST(Harness, SpeedupMath)
{
    SweepResults results;
    auto mk = [](double ipc_value) {
        SimResult r;
        r.core.instructions = static_cast<InstCount>(ipc_value * 1000);
        r.core.cycles = 1000;
        return r;
    };
    results["w1"]["lru"] = mk(1.0);
    results["w1"]["x"] = mk(1.1);
    results["w2"]["lru"] = mk(2.0);
    results["w2"]["x"] = mk(1.8);

    const auto per_workload = speedupsOver(results, "x");
    ASSERT_EQ(per_workload.size(), 2u);
    EXPECT_NEAR(per_workload.at("w1"), 1.1, 1e-9);
    EXPECT_NEAR(per_workload.at("w2"), 0.9, 1e-9);
    EXPECT_NEAR(geomeanSpeedup(results, "x"), std::sqrt(1.1 * 0.9),
                1e-9);
    // Missing policies are skipped silently.
    EXPECT_TRUE(speedupsOver(results, "nope").empty());
    EXPECT_DOUBLE_EQ(geomeanSpeedup(results, "nope"), 0.0);
}

TEST(Harness, PaperPolicyListIsThePaperSix)
{
    const auto &policies = paperPolicies();
    ASSERT_EQ(policies.size(), 6u);
    EXPECT_EQ(policies[0], "srrip");
    EXPECT_EQ(policies[3], "hawkeye");
    for (const auto &p : policies)
        EXPECT_TRUE(ReplacementPolicyFactory::isRegistered(p)) << p;
}

// ---------------------------------------------------- fault isolation --

/** A workload that always throws partway into its run. */
class ThrowingWorkload : public Workload
{
  public:
    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        sink.onInstruction(TraceRecord::alu(1));
        throw std::runtime_error("simulated segfault in kernel");
    }

  private:
    std::string displayName = "exploder";
};

/** Throws on the first @p failures runs, then behaves like mini. */
class FlakyWorkload : public Workload
{
  public:
    explicit FlakyWorkload(int failures) : failuresLeft(failures) {}

    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        if (failuresLeft-- > 0)
            throw std::runtime_error("transient failure");
        MiniWorkload("mini").run(sink);
    }

  private:
    int failuresLeft;
    std::string displayName = "flaky";
};

TEST(Harness, RunCheckedIsolatesBadPolicyAndThrowingWorkload)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
        std::make_shared<ThrowingWorkload>(),
    };
    SuiteRunner runner(testConfig(), /*jobs=*/2);
    runner.setVerbose(false);
    const SweepReport report =
        runner.runChecked(suite, {"lru", "nosuch_policy"});

    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.failed(), 3u);
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.executed, 4u);

    // The one healthy cell completed normally despite its neighbours.
    ASSERT_EQ(report.results.size(), 1u);
    ASSERT_TRUE(report.results.count("mini"));
    ASSERT_TRUE(report.results.at("mini").count("lru"));
    EXPECT_GT(report.results.at("mini").at("lru").ipc(), 0.0);

    for (const CellOutcome &cell : report.outcomes) {
        if (cell.workload == "mini" && cell.policy == "lru") {
            EXPECT_TRUE(cell.ok);
            EXPECT_EQ(cell.attempts, 1u);
            EXPECT_TRUE(cell.error.empty());
            continue;
        }
        EXPECT_FALSE(cell.ok) << cell.workload << "/" << cell.policy;
        EXPECT_FALSE(cell.error.empty());
        if (cell.policy == "nosuch_policy") {
            // Rejected by validation before any simulation ran.
            EXPECT_EQ(cell.attempts, 0u);
            EXPECT_NE(cell.error.find("unknown replacement policy"),
                      std::string::npos);
        } else {
            EXPECT_NE(cell.error.find("simulated segfault"),
                      std::string::npos);
        }
    }
}

TEST(Harness, RetriesAbsorbTransientFailures)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<FlakyWorkload>(/*failures=*/1),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    runner.setRetries(1);
    const SweepReport report = runner.runChecked(suite, {"lru"});
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_TRUE(report.outcomes[0].ok);
    EXPECT_EQ(report.outcomes[0].attempts, 2u);
    EXPECT_TRUE(report.allOk());
}

TEST(Harness, WithoutRetriesTransientFailureFailsTheCell)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<FlakyWorkload>(/*failures=*/1),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    const SweepReport report = runner.runChecked(suite, {"lru"});
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_FALSE(report.outcomes[0].ok);
    EXPECT_EQ(report.outcomes[0].attempts, 1u);
    EXPECT_NE(report.outcomes[0].error.find("transient failure"),
              std::string::npos);
}

// -------------------------------------------- failure accounting --

/** Sum of per-cell attempts, for checking sweep.attempts_total. */
std::uint64_t
attemptsSum(const SweepReport &report)
{
    std::uint64_t sum = 0;
    for (const CellOutcome &out : report.outcomes)
        sum += out.attempts;
    return sum;
}

/**
 * The bookkeeping invariants every sweep report must satisfy, however
 * chaotic the run: the sweep.* counters are exactly the outcome list
 * re-aggregated, and every failure carries a description.
 */
void
expectConsistentAccounting(const SweepReport &report)
{
    std::size_t ok = 0, failed = 0, cancelled = 0, restored = 0;
    for (const CellOutcome &out : report.outcomes) {
        ok += out.ok ? 1 : 0;
        failed += out.ok ? 0 : 1;
        cancelled += out.cancelled ? 1 : 0;
        restored += out.fromCheckpoint ? 1 : 0;
        EXPECT_GE(out.wallMs, 0.0);
        if (!out.ok) {
            EXPECT_FALSE(out.error.empty())
                << out.workload << "/" << out.policy;
        }
        if (out.cancelled) {
            EXPECT_FALSE(out.ok);
        }
    }
    const MetricsRegistry &m = report.metrics;
    EXPECT_EQ(m.counter("sweep.cells_total"), report.outcomes.size());
    EXPECT_EQ(m.counter("sweep.cells_ok"), ok);
    EXPECT_EQ(m.counter("sweep.cells_failed"), failed);
    EXPECT_EQ(m.counter("sweep.cells_cancelled"), cancelled);
    EXPECT_EQ(m.counter("sweep.checkpoint_restores"), restored);
    EXPECT_EQ(m.counter("sweep.attempts_total"), attemptsSum(report));
    EXPECT_EQ(m.counter("sweep.executed"), report.executed);
    EXPECT_EQ(report.failed(), failed);
}

/** Failpoint-driven tests leave the global registry disarmed. */
class HarnessFailpoint : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

TEST_F(HarnessFailpoint, InjectedAttemptFailuresKeepAccountingConsistent)
{
    // Every second simulation attempt dies at the harness boundary;
    // with one retry per cell some cells recover and some do not,
    // depending on scheduling. The books must balance regardless.
    ASSERT_TRUE(
        failpoint::configure("harness.cell.attempt=every(2)").ok());
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini.a"),
        std::make_shared<MiniWorkload>("mini.b"),
    };
    SuiteRunner runner(testConfig(), /*jobs=*/2);
    runner.setVerbose(false);
    runner.setRetries(1);
    const SweepReport report =
        runner.runChecked(suite, {"lru", "srrip"});

    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.executed, 4u);
    expectConsistentAccounting(report);
    for (const CellOutcome &out : report.outcomes) {
        EXPECT_FALSE(out.cancelled);
        EXPECT_GE(out.attempts, 1u);
        EXPECT_LE(out.attempts, 2u);
        if (!out.ok) {
            EXPECT_NE(out.error.find("harness.cell.attempt"),
                      std::string::npos);
        }
    }
}

TEST_F(HarnessFailpoint, RetriedCellCountsEveryAttemptOnce)
{
    ASSERT_TRUE(
        failpoint::configure("harness.cell.attempt=hit(1)").ok());
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    runner.setRetries(1);
    const SweepReport report = runner.runChecked(suite, {"lru"});

    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_TRUE(report.outcomes[0].ok);
    EXPECT_EQ(report.outcomes[0].attempts, 2u);
    EXPECT_EQ(report.metrics.counter("sweep.attempts_total"), 2u);
    EXPECT_EQ(report.metrics.counter("sweep.cells_ok"), 1u);
    EXPECT_EQ(report.metrics.counter("sweep.cells_failed"), 0u);
    expectConsistentAccounting(report);
}

TEST_F(HarnessFailpoint, CheckpointRestoreDoesNotDoubleCountWork)
{
    const std::string path =
        ::testing::TempDir() + "/harness_accounting.journal";
    std::remove(path.c_str());
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
    };

    std::uint64_t first_attempts = 0;
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        SuiteRunner runner(testConfig(), 1);
        runner.setVerbose(false);
        runner.setCheckpoint(&journal);
        const SweepReport report =
            runner.runChecked(suite, {"lru", "srrip"});
        EXPECT_EQ(report.executed, 2u);
        EXPECT_EQ(report.metrics.counter("sweep.checkpoint_restores"),
                  0u);
        expectConsistentAccounting(report);
        first_attempts = report.metrics.counter("sweep.attempts_total");
    }

    // The resumed run restores both cells: nothing executes, no new
    // attempts are invented, and the accounting still balances.
    CheckpointJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    runner.setCheckpoint(&journal);
    const SweepReport report =
        runner.runChecked(suite, {"lru", "srrip"});
    EXPECT_EQ(report.executed, 0u);
    EXPECT_EQ(report.metrics.counter("sweep.checkpoint_restores"), 2u);
    EXPECT_EQ(report.metrics.counter("sweep.cells_ok"), 2u);
    EXPECT_EQ(report.metrics.counter("sweep.attempts_total"),
              first_attempts);
    for (const CellOutcome &out : report.outcomes)
        EXPECT_TRUE(out.fromCheckpoint);
    expectConsistentAccounting(report);
    std::remove(path.c_str());
}

TEST_F(HarnessFailpoint, CellTimeoutReapsHungCellWithoutRetries)
{
    // The cell sleeps 5 s inside the simulation loop; its 0.2 s budget
    // must reap it long before that, and cancellation must not burn
    // the configured retries.
    ASSERT_TRUE(
        failpoint::configure("sim.loop=hit(1):sleep(5000)").ok());
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    runner.setRetries(3);
    runner.setCellTimeout(0.2);
    const SweepReport report = runner.runChecked(suite, {"lru"});

    ASSERT_EQ(report.outcomes.size(), 1u);
    const CellOutcome &out = report.outcomes[0];
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.cancelled);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(out.error.rfind("cancelled:", 0), 0u) << out.error;
    EXPECT_LT(out.wallMs, 3000.0);
    EXPECT_EQ(report.metrics.counter("sweep.cells_cancelled"), 1u);
    expectConsistentAccounting(report);
}

TEST_F(HarnessFailpoint, SweepDeadlinePreemptsUnstartedCells)
{
    // One serial worker; the first cell stalls past the 0.25 s sweep
    // deadline, so the remaining cells must be recorded as cancelled
    // sentinels without ever running.
    ASSERT_TRUE(
        failpoint::configure("sim.loop=hit(1):sleep(5000)").ok());
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini.a"),
        std::make_shared<MiniWorkload>("mini.b"),
        std::make_shared<MiniWorkload>("mini.c"),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    runner.setSweepDeadline(0.25);
    const SweepReport report = runner.runChecked(suite, {"lru"});

    ASSERT_EQ(report.outcomes.size(), 3u);
    EXPECT_EQ(report.metrics.counter("sweep.cells_cancelled"), 3u);
    EXPECT_EQ(report.metrics.counter("sweep.cells_ok"), 0u);
    // The stalled cell consumed the only real attempt.
    EXPECT_EQ(report.outcomes[0].attempts, 1u);
    for (std::size_t i = 1; i < report.outcomes.size(); ++i) {
        EXPECT_EQ(report.outcomes[i].attempts, 0u);
        EXPECT_NE(report.outcomes[i].error.find("cancelled before start"),
                  std::string::npos)
            << report.outcomes[i].error;
    }
    expectConsistentAccounting(report);
}

TEST(Harness, LegacyRunReturnsTheSurvivors)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
        std::make_shared<ThrowingWorkload>(),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    ::testing::internal::CaptureStderr();
    const SweepResults results = runner.run(suite, {"lru"});
    const std::string log = ::testing::internal::GetCapturedStderr();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results.count("mini"));
    EXPECT_NE(log.find("exploder"), std::string::npos);
}

} // namespace
} // namespace cachescope
