/**
 * @file
 * Tests for the experiment harness: single runs, the two-pass Belady
 * flow, sweeps, and speedup aggregation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/cascade_lake.hh"
#include "harness/experiment.hh"
#include "trace/pc_site.hh"
#include "trace/traced_memory.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

/**
 * A small deterministic workload with LLC-unfriendly cyclic scans plus
 * a hot set, designed so replacement policy quality matters.
 */
class MiniWorkload : public Workload
{
  public:
    explicit MiniWorkload(std::string tag = "mini")
        : displayName(std::move(tag))
    {}

    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        AddressSpace space;
        TracedArray<std::uint64_t> scan(24 * 1024, space, sink, 1);
        TracedArray<std::uint64_t> hot(1024, space, sink, 2);
        PcRegion region(90);
        const Pc pc_scan = region.allocate();
        const Pc pc_hot = region.allocate();
        const Pc pc_alu = region.allocate();
        InstructionMix mix(sink);
        Rng rng(3);

        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; sink.wantsMore(); ++i) {
            acc += scan.load((i * 8) % scan.size(), pc_scan);
            acc += hot.load(rng.nextBounded(hot.size()), pc_hot);
            mix.alu(pc_alu, 4);
            if ((i & 1023) == 0 && !sink.wantsMore())
                break;
        }
        (void)acc;
        sink.onEnd();
    }

  private:
    std::string displayName;
};

SimConfig
testConfig(const std::string &policy = "lru")
{
    SimConfig cfg = cascadeLakeConfig(policy, /*warmup=*/20'000,
                                      /*measure=*/200'000);
    // Shrink the hierarchy so MiniWorkload stresses the LLC.
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    cfg.core.simulateFetch = false;
    return cfg;
}

TEST(Harness, RunOneProducesMeasuredWindow)
{
    MiniWorkload w;
    const SimResult r = runOne(w, testConfig());
    EXPECT_EQ(r.core.instructions, 200'000u);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_GT(r.mpkiLlc(), 0.0);
    EXPECT_EQ(r.llcPolicy, "lru");
}

TEST(Harness, BeladyBeatsEveryOnlinePolicyOnLlcMisses)
{
    MiniWorkload w;
    const SimResult opt = runBelady(w, testConfig());
    EXPECT_EQ(opt.llcPolicy, "belady");
    for (const char *policy : {"lru", "srrip", "ship"}) {
        MiniWorkload w2;
        const SimResult online = runOne(w2, testConfig(policy));
        EXPECT_LE(opt.llc.demandMisses(), online.llc.demandMisses())
            << "OPT lost to " << policy;
    }
}

TEST(Harness, SweepCoversGrid)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini.a"),
        std::make_shared<MiniWorkload>("mini.b"),
    };
    SuiteRunner runner(testConfig(), /*jobs=*/2);
    runner.setVerbose(false);
    const SweepResults results =
        runner.run(suite, {"lru", "srrip", "belady"});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &[workload, by_policy] : results) {
        (void)workload;
        ASSERT_EQ(by_policy.size(), 3u);
        EXPECT_GT(by_policy.at("lru").ipc(), 0.0);
        EXPECT_GT(by_policy.at("belady").ipc(), 0.0);
    }
}

TEST(Harness, SweepIsDeterministicAcrossJobCounts)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini.a"),
        std::make_shared<MiniWorkload>("mini.b"),
    };
    SuiteRunner serial(testConfig(), 1);
    SuiteRunner parallel(testConfig(), 4);
    serial.setVerbose(false);
    parallel.setVerbose(false);
    const auto a = serial.run(suite, {"lru", "drrip"});
    const auto b = parallel.run(suite, {"lru", "drrip"});
    for (const auto &[workload, by_policy] : a) {
        for (const auto &[policy, result] : by_policy) {
            EXPECT_EQ(result.core.cycles,
                      b.at(workload).at(policy).core.cycles);
        }
    }
}

TEST(Harness, SpeedupMath)
{
    SweepResults results;
    auto mk = [](double ipc_value) {
        SimResult r;
        r.core.instructions = static_cast<InstCount>(ipc_value * 1000);
        r.core.cycles = 1000;
        return r;
    };
    results["w1"]["lru"] = mk(1.0);
    results["w1"]["x"] = mk(1.1);
    results["w2"]["lru"] = mk(2.0);
    results["w2"]["x"] = mk(1.8);

    const auto per_workload = speedupsOver(results, "x");
    ASSERT_EQ(per_workload.size(), 2u);
    EXPECT_NEAR(per_workload.at("w1"), 1.1, 1e-9);
    EXPECT_NEAR(per_workload.at("w2"), 0.9, 1e-9);
    EXPECT_NEAR(geomeanSpeedup(results, "x"), std::sqrt(1.1 * 0.9),
                1e-9);
    // Missing policies are skipped silently.
    EXPECT_TRUE(speedupsOver(results, "nope").empty());
    EXPECT_DOUBLE_EQ(geomeanSpeedup(results, "nope"), 0.0);
}

TEST(Harness, PaperPolicyListIsThePaperSix)
{
    const auto &policies = paperPolicies();
    ASSERT_EQ(policies.size(), 6u);
    EXPECT_EQ(policies[0], "srrip");
    EXPECT_EQ(policies[3], "hawkeye");
    for (const auto &p : policies)
        EXPECT_TRUE(ReplacementPolicyFactory::isRegistered(p)) << p;
}

// ---------------------------------------------------- fault isolation --

/** A workload that always throws partway into its run. */
class ThrowingWorkload : public Workload
{
  public:
    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        sink.onInstruction(TraceRecord::alu(1));
        throw std::runtime_error("simulated segfault in kernel");
    }

  private:
    std::string displayName = "exploder";
};

/** Throws on the first @p failures runs, then behaves like mini. */
class FlakyWorkload : public Workload
{
  public:
    explicit FlakyWorkload(int failures) : failuresLeft(failures) {}

    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        if (failuresLeft-- > 0)
            throw std::runtime_error("transient failure");
        MiniWorkload("mini").run(sink);
    }

  private:
    int failuresLeft;
    std::string displayName = "flaky";
};

TEST(Harness, RunCheckedIsolatesBadPolicyAndThrowingWorkload)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
        std::make_shared<ThrowingWorkload>(),
    };
    SuiteRunner runner(testConfig(), /*jobs=*/2);
    runner.setVerbose(false);
    const SweepReport report =
        runner.runChecked(suite, {"lru", "nosuch_policy"});

    ASSERT_EQ(report.outcomes.size(), 4u);
    EXPECT_EQ(report.failed(), 3u);
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.executed, 4u);

    // The one healthy cell completed normally despite its neighbours.
    ASSERT_EQ(report.results.size(), 1u);
    ASSERT_TRUE(report.results.count("mini"));
    ASSERT_TRUE(report.results.at("mini").count("lru"));
    EXPECT_GT(report.results.at("mini").at("lru").ipc(), 0.0);

    for (const CellOutcome &cell : report.outcomes) {
        if (cell.workload == "mini" && cell.policy == "lru") {
            EXPECT_TRUE(cell.ok);
            EXPECT_EQ(cell.attempts, 1u);
            EXPECT_TRUE(cell.error.empty());
            continue;
        }
        EXPECT_FALSE(cell.ok) << cell.workload << "/" << cell.policy;
        EXPECT_FALSE(cell.error.empty());
        if (cell.policy == "nosuch_policy") {
            // Rejected by validation before any simulation ran.
            EXPECT_EQ(cell.attempts, 0u);
            EXPECT_NE(cell.error.find("unknown replacement policy"),
                      std::string::npos);
        } else {
            EXPECT_NE(cell.error.find("simulated segfault"),
                      std::string::npos);
        }
    }
}

TEST(Harness, RetriesAbsorbTransientFailures)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<FlakyWorkload>(/*failures=*/1),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    runner.setRetries(1);
    const SweepReport report = runner.runChecked(suite, {"lru"});
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_TRUE(report.outcomes[0].ok);
    EXPECT_EQ(report.outcomes[0].attempts, 2u);
    EXPECT_TRUE(report.allOk());
}

TEST(Harness, WithoutRetriesTransientFailureFailsTheCell)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<FlakyWorkload>(/*failures=*/1),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    const SweepReport report = runner.runChecked(suite, {"lru"});
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_FALSE(report.outcomes[0].ok);
    EXPECT_EQ(report.outcomes[0].attempts, 1u);
    EXPECT_NE(report.outcomes[0].error.find("transient failure"),
              std::string::npos);
}

TEST(Harness, LegacyRunReturnsTheSurvivors)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
        std::make_shared<ThrowingWorkload>(),
    };
    SuiteRunner runner(testConfig(), 1);
    runner.setVerbose(false);
    ::testing::internal::CaptureStderr();
    const SweepResults results = runner.run(suite, {"lru"});
    const std::string log = ::testing::internal::GetCapturedStderr();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results.count("mini"));
    EXPECT_NE(log.find("exploder"), std::string::npos);
}

} // namespace
} // namespace cachescope
