/**
 * @file
 * Tests for the extension features: direction-optimizing BFS, the
 * trace-file workload adapter, and the shared result reporting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>

#include "core/cascade_lake.hh"
#include "graph/gap_kernels.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/workload_zoo.hh"
#include "test_helpers.hh"
#include "trace/trace_workload.hh"
#include "workloads/synthetic.hh"

namespace cachescope {
namespace {

std::shared_ptr<const CsrGraph>
doGraph()
{
    static auto g = std::make_shared<const CsrGraph>(
        makeKronecker(12, 8, 42));
    return g;
}

GapKernelParams
doParams()
{
    GapKernelParams params;
    params.directionOptimizingBfs = true;
    params.maxRepeats = 1;
    return params;
}

TEST(DirectionOptimizingBfs, RunsAndIsDeterministic)
{
    GapWorkload w1(GapKernel::Bfs, "kron12", doGraph(), doParams());
    GapWorkload w2(GapKernel::Bfs, "kron12", doGraph(), doParams());
    test::HashingSink a, b;
    w1.run(a);
    w2.run(b);
    EXPECT_GT(a.count, 10000u);
    EXPECT_EQ(a.hash, b.hash);
}

TEST(DirectionOptimizingBfs, DiffersFromTopDown)
{
    GapKernelParams plain = doParams();
    plain.directionOptimizingBfs = false;
    GapWorkload top_down(GapKernel::Bfs, "kron12", doGraph(), plain);
    GapWorkload dir_opt(GapKernel::Bfs, "kron12", doGraph(), doParams());
    test::HashingSink a, b;
    top_down.run(a);
    dir_opt.run(b);
    EXPECT_NE(a.hash, b.hash);
}

TEST(DirectionOptimizingBfs, UsesBottomUpOnKron)
{
    // On a Kronecker graph the frontier explodes after a level or two,
    // so the bottom-up switch must fire: observable as loads of the
    // frontier bitmap (the fourth traced array region).
    GapWorkload w(GapKernel::Bfs, "kron12", doGraph(), doParams());
    test::VectorSink sink;
    w.run(sink);
    // The front bitmap is the third allocation (oa, na, parent, front):
    // count loads of byte-sized records (the bitmap probe).
    std::uint64_t byte_loads = 0;
    for (const auto &rec : sink.records) {
        if (rec.kind == InstKind::Load && rec.size == 1)
            ++byte_loads;
    }
    EXPECT_GT(byte_loads, 1000u);
}

TEST(DirectionOptimizingBfs, RespectsBudget)
{
    GapKernelParams params = doParams();
    params.maxRepeats = 1024;
    GapWorkload w(GapKernel::Bfs, "kron12", doGraph(), params);
    test::BoundedSink sink(300000);
    w.run(sink);
    EXPECT_EQ(sink.consumed, 300000u);
    EXPECT_LT(sink.overflow, 100000u);
}

TEST(DirectionOptimizingBfs, AvailableViaZoo)
{
    ZooOptions options;
    options.scale = 10;
    auto w = makeNamedWorkload("bfs_do", options);
    EXPECT_EQ(w->name(), "bfs.kron10");
    test::BoundedSink sink(50000);
    w->run(sink);
    EXPECT_EQ(sink.consumed, 50000u);
}

// --------------------------------------------------- TraceFileWorkload --

TEST(TraceFileWorkloadTest, ReplaysDeterministically)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/tfw.trace";
    {
        TraceWriter writer(path);
        for (int i = 0; i < 5000; ++i) {
            writer.onInstruction(
                TraceRecord::load(0x400000, static_cast<Addr>(i) * 64));
            writer.onInstruction(TraceRecord::alu(0x400004));
        }
        writer.onEnd();
    }

    TraceFileWorkload workload(path, "captured");
    EXPECT_EQ(workload.name(), "captured");
    EXPECT_EQ(workload.numRecords(), 10000u);

    test::HashingSink a, b;
    workload.run(a);
    workload.run(b); // a second run re-opens the file
    EXPECT_EQ(a.count, 10000u);
    EXPECT_EQ(a.hash, b.hash);
    std::remove(path.c_str());
}

TEST(TraceFileWorkloadTest, StopsAtSinkBudget)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/tfw2.trace";
    {
        TraceWriter writer(path);
        for (int i = 0; i < 5000; ++i)
            writer.onInstruction(TraceRecord::alu(1));
        writer.onEnd();
    }
    TraceFileWorkload workload(path);
    test::BoundedSink sink(100);
    workload.run(sink);
    EXPECT_EQ(sink.consumed, 100u);
    EXPECT_LE(sink.overflow, 1u);
    std::remove(path.c_str());
}

TEST(TraceFileWorkloadTest, WorksInSweeps)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/tfw3.trace";
    {
        SynthParams p;
        p.mainBytes = 256 * 1024;
        SyntheticWorkload producer("t", SynthPattern::GatherZipf, p);
        TraceWriter writer(path);
        struct Bounded : InstructionSink
        {
            explicit Bounded(TraceWriter &writer) : out(writer) {}
            void
            onInstruction(const TraceRecord &rec) override
            {
                out.onInstruction(rec);
            }
            bool
            wantsMore() const override
            {
                return out.recordsWritten() < 200'000;
            }
            TraceWriter &out;
        } sink(writer);
        producer.run(sink);
        writer.onEnd();
    }

    auto workload = std::make_shared<TraceFileWorkload>(path, "zipf");
    SuiteRunner runner(cascadeLakeConfig("lru", 10'000, 100'000), 2);
    runner.setVerbose(false);
    const SweepResults results = runner.run({workload}, {"lru", "drrip"});
    EXPECT_EQ(results.at("zipf").size(), 2u);
    EXPECT_GT(results.at("zipf").at("drrip").ipc(), 0.0);
    std::remove(path.c_str());
}

TEST(TraceFileWorkloadDeathTest, BadPathFailsAtConstruction)
{
    EXPECT_EXIT(TraceFileWorkload workload("/no/such/file.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

// ----------------------------------------------------- policy debugState --

TEST(DebugState, StatelessPoliciesReturnEmpty)
{
    const CacheGeometry geom{64, 8, 64};
    for (const char *name : {"lru", "fifo", "random", "nru", "plru"}) {
        auto policy = ReplacementPolicyFactory::create(name, geom);
        EXPECT_TRUE(policy->debugState().empty()) << name;
    }
}

TEST(DebugState, AdaptivePoliciesReportState)
{
    const CacheGeometry geom{64, 8, 64};
    for (const char *name : {"drrip", "dip", "ship", "hawkeye", "mpppb"}) {
        auto policy = ReplacementPolicyFactory::create(name, geom);
        EXPECT_FALSE(policy->debugState().empty()) << name;
    }
    auto drrip = ReplacementPolicyFactory::create("drrip", geom);
    EXPECT_NE(drrip->debugState().find("psel="), std::string::npos);
}

TEST(DebugState, ReachesSimResult)
{
    ZooOptions options;
    options.synthMainBytes = 512 * 1024;
    auto w = makeNamedWorkload("gather_zipf", options);
    SimConfig cfg = cascadeLakeConfig("ship", 10'000, 100'000);
    const SimResult r = runOne(*w, cfg);
    EXPECT_NE(r.llcPolicyState.find("shct"), std::string::npos);
    auto w2 = makeNamedWorkload("gather_zipf", options);
    const SimResult opt = runBelady(*w2, cfg);
    EXPECT_TRUE(opt.llcPolicyState.empty());
}

// --------------------------------------------------------- report table --

TEST(Report, TableCarriesCoreMetrics)
{
    SimResult r;
    r.core.instructions = 1000;
    r.core.cycles = 500;
    const Table table = simResultTable(r);
    EXPECT_GT(table.numRows(), 8u);
    EXPECT_EQ(table.cell(0, 0), "IPC");
    EXPECT_EQ(table.cell(0, 1), "2.000");
}

TEST(Report, PrefetchRowsOnlyWhenActive)
{
    SimResult without;
    SimResult with;
    with.l2.prefetchesIssued = 100;
    with.l2.prefetchesUseful = 80;
    EXPECT_EQ(simResultTable(with).numRows(),
              simResultTable(without).numRows() + 2);
    std::ostringstream os;
    printSimResult(with, os);
    EXPECT_NE(os.str().find("prefetch accuracy"), std::string::npos);
}

} // namespace
} // namespace cachescope
