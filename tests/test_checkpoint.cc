/**
 * @file
 * Tests for the checkpoint journal and sweep resumability: journal
 * round trips, rejection of foreign files, tolerance of kill-mid-write
 * wreckage, and the end-to-end "run, crash, resume" flow where only the
 * unfinished cells are simulated again.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cascade_lake.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "stats/metrics.hh"
#include "trace/pc_site.hh"
#include "trace/traced_memory.hh"
#include "util/failpoint.hh"

namespace cachescope {
namespace {

std::string
tempJournalPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cachescope_" + tag +
           ".ckpt";
}

CellOutcome
makeOutcome(const std::string &workload, const std::string &policy,
            std::uint64_t cycles)
{
    CellOutcome outcome;
    outcome.workload = workload;
    outcome.policy = policy;
    outcome.ok = true;
    outcome.attempts = 1;
    outcome.wallMs = 12.5;
    outcome.result.llcPolicy = policy;
    outcome.result.core.instructions = 1000;
    outcome.result.core.cycles = cycles;
    outcome.result.llc.hits[static_cast<int>(AccessType::Load)] = 40;
    outcome.result.llc.misses[static_cast<int>(AccessType::Load)] = 60;
    outcome.result.llc.hits[static_cast<int>(AccessType::Store)] = 7;
    outcome.result.llc.misses[static_cast<int>(AccessType::Store)] = 3;
    return outcome;
}

TEST(CheckpointJournal, RoundTripsCompletedCells)
{
    const std::string path = tempJournalPath("roundtrip");
    std::remove(path.c_str());
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        EXPECT_EQ(journal.completedCells(), 0u);
        ASSERT_TRUE(journal.append(makeOutcome("bfs", "lru", 2000)).ok());
        ASSERT_TRUE(journal.append(makeOutcome("bfs", "ship", 1500)).ok());
        EXPECT_EQ(journal.completedCells(), 2u);
    }

    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(), 2u);
    const CellOutcome *cell = resumed.find("bfs", "ship");
    ASSERT_NE(cell, nullptr);
    EXPECT_TRUE(cell->ok);
    EXPECT_EQ(cell->result.core.cycles, 1500u);
    EXPECT_EQ(cell->result.core.instructions, 1000u);
    EXPECT_EQ(cell->result.llcPolicy, "ship");
    EXPECT_EQ(cell->result.llc.hitsOf(AccessType::Load), 40u);
    EXPECT_EQ(cell->result.llc.missesOf(AccessType::Store), 3u);
    EXPECT_DOUBLE_EQ(cell->result.ipc(), 1000.0 / 1500.0);
    EXPECT_EQ(resumed.find("bfs", "nope"), nullptr);
    EXPECT_EQ(resumed.find("pr", "lru"), nullptr);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, RefusesForeignFiles)
{
    const std::string path = tempJournalPath("foreign");
    {
        std::ofstream out(path);
        out << "important lab notes, definitely not a journal\n";
    }
    CheckpointJournal journal;
    const Status s = journal.open(path);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    // The original file must survive the refusal.
    std::ifstream in(path);
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_EQ(first_line, "important lab notes, definitely not a journal");
    std::remove(path.c_str());
}

TEST(CheckpointJournal, ToleratesKillMidAppend)
{
    const std::string path = tempJournalPath("ragged");
    std::remove(path.c_str());
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        ASSERT_TRUE(journal.append(makeOutcome("bfs", "lru", 2000)).ok());
    }
    // Simulate a kill mid-append: a truncated trailing line.
    {
        std::ofstream out(path, std::ios::app);
        out << "pr\tlru\t1\t9";
    }
    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(), 1u); // ragged line dropped
    EXPECT_NE(resumed.find("bfs", "lru"), nullptr);
    EXPECT_EQ(resumed.find("pr", "lru"), nullptr);
    // The journal stays appendable after recovery.
    ASSERT_TRUE(resumed.append(makeOutcome("pr", "lru", 800)).ok());
    resumed.close();

    CheckpointJournal third;
    ASSERT_TRUE(third.open(path).ok());
    EXPECT_EQ(third.completedCells(), 2u);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, RefusesToRecordFailures)
{
    const std::string path = tempJournalPath("nofail");
    std::remove(path.c_str());
    CheckpointJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    CellOutcome failed = makeOutcome("bfs", "lru", 2000);
    failed.ok = false;
    failed.error = "exploded";
    EXPECT_FALSE(journal.append(failed).ok());
    EXPECT_EQ(journal.completedCells(), 0u);
    std::remove(path.c_str());
}

// ------------------------------------------------------ sweep resume --

/** Deterministic cheap workload that counts how often it is run. */
class CountingWorkload : public Workload
{
  public:
    CountingWorkload(std::string tag, std::atomic<int> &runs)
        : displayName(std::move(tag)), runs(runs)
    {}

    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        ++runs;
        AddressSpace space;
        TracedArray<std::uint64_t> data(4096, space, sink, 1);
        PcRegion region(91);
        const Pc pc = region.allocate();
        for (std::uint64_t i = 0; sink.wantsMore(); ++i)
            data.load((i * 8) % data.size(), pc);
        sink.onEnd();
    }

  private:
    std::string displayName;
    std::atomic<int> &runs;
};

SimConfig
tinyConfig()
{
    SimConfig cfg = cascadeLakeConfig("lru", /*warmup=*/2'000,
                                      /*measure=*/20'000);
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    cfg.core.simulateFetch = false;
    return cfg;
}

TEST(CheckpointResume, SecondRunSkipsCompletedCells)
{
    const std::string path = tempJournalPath("resume");
    std::remove(path.c_str());
    std::atomic<int> runs{0};
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<CountingWorkload>("count.a", runs),
        std::make_shared<CountingWorkload>("count.b", runs),
    };
    const std::vector<std::string> policies = {"lru", "srrip"};

    SweepReport first;
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        SuiteRunner runner(tinyConfig(), 2);
        runner.setVerbose(false);
        runner.setCheckpoint(&journal);
        first = runner.runChecked(suite, policies);
    }
    EXPECT_EQ(first.executed, 4u);
    EXPECT_EQ(runs.load(), 4);
    EXPECT_TRUE(first.allOk());

    // "Crash" and resume: a fresh journal object on the same file.
    CheckpointJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    EXPECT_EQ(journal.completedCells(), 4u);
    SuiteRunner runner(tinyConfig(), 2);
    runner.setVerbose(false);
    runner.setCheckpoint(&journal);
    const SweepReport second = runner.runChecked(suite, policies);

    EXPECT_EQ(second.executed, 0u); // nothing re-simulated
    EXPECT_EQ(runs.load(), 4);
    ASSERT_EQ(second.outcomes.size(), 4u);
    for (const CellOutcome &cell : second.outcomes) {
        EXPECT_TRUE(cell.ok);
        EXPECT_TRUE(cell.fromCheckpoint);
    }
    // Restored results carry the stats reporting needs.
    const SimResult &restored = second.results.at("count.a").at("lru");
    const SimResult &fresh = first.results.at("count.a").at("lru");
    EXPECT_EQ(restored.core.cycles, fresh.core.cycles);
    EXPECT_EQ(restored.llc.demandMisses(), fresh.llc.demandMisses());
    std::remove(path.c_str());
}

TEST(CheckpointResume, PartialJournalRunsOnlyTheMissingCells)
{
    const std::string path = tempJournalPath("partial");
    std::remove(path.c_str());
    std::atomic<int> runs{0};
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<CountingWorkload>("count.a", runs),
        std::make_shared<CountingWorkload>("count.b", runs),
    };

    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        SuiteRunner runner(tinyConfig(), 1);
        runner.setVerbose(false);
        runner.setCheckpoint(&journal);
        runner.runChecked(suite, {"lru"});
    }
    EXPECT_EQ(runs.load(), 2);

    // The resumed sweep widens the policy grid: only the new column
    // should be simulated.
    CheckpointJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    SuiteRunner runner(tinyConfig(), 1);
    runner.setVerbose(false);
    runner.setCheckpoint(&journal);
    const SweepReport report = runner.runChecked(suite, {"lru", "srrip"});
    EXPECT_EQ(report.executed, 2u);
    EXPECT_EQ(runs.load(), 4);
    EXPECT_EQ(report.outcomes.size(), 4u);
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(journal.completedCells(), 4u);
    std::remove(path.c_str());
}

/** "w<t>_<i>", without the operator+ chains GCC 12's -Wrestrict
 * false-positives on when it inlines them into the thread lambda. */
std::string
cellName(int t, int i)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "w%d_%d", t, i);
    return buf;
}

TEST(CheckpointJournal, ConcurrentAppendsNeverCorruptTheJournal)
{
    const std::string path = tempJournalPath("threads");
    std::remove(path.c_str());
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&journal, t]() {
                for (int i = 0; i < kPerThread; ++i) {
                    const auto outcome =
                        makeOutcome(cellName(t, i), "lru", 1000 + i);
                    ASSERT_TRUE(journal.append(outcome).ok());
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
        EXPECT_EQ(journal.completedCells(),
                  static_cast<std::size_t>(kThreads * kPerThread));
    }

    // Every line must parse back on reopen: interleaved bytes from
    // racing appends would show up as malformed (skipped) records.
    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(),
              static_cast<std::size_t>(kThreads * kPerThread));
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            const CellOutcome *cell =
                resumed.find(cellName(t, i), "lru");
            ASSERT_NE(cell, nullptr);
            EXPECT_EQ(cell->result.core.cycles,
                      static_cast<Cycle>(1000 + i));
        }
    }
    std::remove(path.c_str());
}

TEST(CheckpointJournal, TruncatesCorruptFinalLineToLastValidRecord)
{
    const std::string path = tempJournalPath("corrupt_final");
    std::remove(path.c_str());
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        ASSERT_TRUE(journal.append(makeOutcome("bfs", "lru", 2000)).ok());
        ASSERT_TRUE(journal.append(makeOutcome("pr", "lru", 900)).ok());
    }
    const auto good_size = std::filesystem::file_size(path);
    // Corrupt the final record: newline-terminated, wrong field count —
    // the signature of a torn write that happened to land on a '\n'.
    {
        std::ofstream out(path, std::ios::app);
        out << "cc\tlru\tnot-a-number\n";
    }
    ASSERT_GT(std::filesystem::file_size(path), good_size);

    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(), 2u);
    EXPECT_EQ(resumed.find("cc", "lru"), nullptr);
    resumed.close();
    // The wreckage must be gone from disk, not merely skipped, so the
    // next append is not glued onto a half-written record.
    EXPECT_EQ(std::filesystem::file_size(path), good_size);

    CheckpointJournal third;
    ASSERT_TRUE(third.open(path).ok());
    EXPECT_EQ(third.completedCells(), 2u);
    ASSERT_TRUE(third.append(makeOutcome("cc", "lru", 700)).ok());
    third.close();

    CheckpointJournal fourth;
    ASSERT_TRUE(fourth.open(path).ok());
    EXPECT_EQ(fourth.completedCells(), 3u);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, RecoversFromTornHeaderLine)
{
    const std::string path = tempJournalPath("torn_header");
    std::remove(path.c_str());
    // A run killed while writing the very first line leaves a torn,
    // unterminated header prefix. That is wreckage, not a foreign
    // file: open() must recover to an empty journal, not refuse.
    {
        std::ofstream out(path, std::ios::binary);
        out << "cachescope-check";
    }
    CheckpointJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    EXPECT_EQ(journal.completedCells(), 0u);
    ASSERT_TRUE(journal.append(makeOutcome("bfs", "lru", 1200)).ok());
    journal.close();

    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(), 1u);
    EXPECT_NE(resumed.find("bfs", "lru"), nullptr);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, StillRefusesCompleteForeignFirstLine)
{
    const std::string path = tempJournalPath("foreign_complete");
    std::remove(path.c_str());
    // A complete (newline-terminated) non-header first line is a
    // foreign file, not a torn write; refusing protects user data.
    {
        std::ofstream out(path, std::ios::binary);
        out << "some other file format\n";
    }
    CheckpointJournal journal;
    const Status st = journal.open(path);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::Corruption);
    std::remove(path.c_str());
}

// ------------------------------------------------- v2 metric trees --

TEST(CheckpointJournal, V2RecordsCarryTheFullCellMetricTree)
{
    const std::string path = tempJournalPath("v2_tree");
    std::remove(path.c_str());
    const CellOutcome original = makeOutcome("bfs", "lru", 2000);
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        ASSERT_TRUE(journal.append(original).ok());
    }
    {
        std::ifstream in(path);
        std::string header;
        std::getline(in, header);
        EXPECT_EQ(header, "cachescope-checkpoint v2");
    }

    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    const CellOutcome *cell = resumed.find("bfs", "lru");
    ASSERT_NE(cell, nullptr);
    EXPECT_TRUE(cell->hasCellMetrics);
    // The restored export must be byte-for-byte the original's: this
    // is what makes resumed sweeps' metric trees identical to
    // uninterrupted ones.
    MetricsRegistry fresh, restored;
    original.exportCellMetrics(fresh);
    cell->exportCellMetrics(restored);
    EXPECT_TRUE(fresh == restored);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, V1JournalsRemainReadable)
{
    const std::string path = tempJournalPath("v1_compat");
    std::remove(path.c_str());
    // A journal written by the previous release: v1 header, 10-field
    // summary records with no metric-tree column.
    {
        std::ofstream out(path, std::ios::binary);
        out << "cachescope-checkpoint v1\n"
            << "bfs\tlru\t1\t12500\t1000\t2000\t40\t7\t60\t3\n";
    }
    CheckpointJournal journal;
    ASSERT_TRUE(journal.open(path).ok());
    EXPECT_EQ(journal.completedCells(), 1u);
    const CellOutcome *cell = journal.find("bfs", "lru");
    ASSERT_NE(cell, nullptr);
    EXPECT_TRUE(cell->ok);
    EXPECT_FALSE(cell->hasCellMetrics); // summary only
    EXPECT_EQ(cell->result.core.cycles, 2000u);
    EXPECT_EQ(cell->result.llc.hitsOf(AccessType::Load), 40u);
    // The journal stays appendable; new records use the v2 shape.
    ASSERT_TRUE(journal.append(makeOutcome("pr", "lru", 900)).ok());
    journal.close();

    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(), 2u);
    const CellOutcome *appended = resumed.find("pr", "lru");
    ASSERT_NE(appended, nullptr);
    EXPECT_TRUE(appended->hasCellMetrics);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, DamagedMetricTreeFieldRejectsOnlyThatRecord)
{
    const std::string path = tempJournalPath("bad_tree");
    std::remove(path.c_str());
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        ASSERT_TRUE(journal.append(makeOutcome("bfs", "lru", 2000)).ok());
    }
    // A record whose summary is fine but whose JSON field is mangled —
    // e.g. a torn write inside the tree — must re-run that cell only.
    {
        std::ofstream out(path, std::ios::app);
        out << "pr\tlru\t1\t12500\t1000\t900\t40\t7\t60\t3\t{oops\n";
    }
    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(), 1u);
    EXPECT_NE(resumed.find("bfs", "lru"), nullptr);
    EXPECT_EQ(resumed.find("pr", "lru"), nullptr);
    std::remove(path.c_str());
}

TEST(CheckpointJournal, SyncModeRoundTrips)
{
    const std::string path = tempJournalPath("sync");
    std::remove(path.c_str());
    {
        CheckpointJournal journal;
        journal.setSync(true); // fsync after header and every record
        ASSERT_TRUE(journal.open(path).ok());
        ASSERT_TRUE(journal.append(makeOutcome("bfs", "lru", 2000)).ok());
        ASSERT_TRUE(journal.append(makeOutcome("pr", "lru", 900)).ok());
    }
    CheckpointJournal resumed;
    ASSERT_TRUE(resumed.open(path).ok());
    EXPECT_EQ(resumed.completedCells(), 2u);
    std::remove(path.c_str());
}

// ---------------------------------------------- injected failures --

/** Failpoint-driven tests leave the global registry disarmed. */
class CheckpointFailpoint : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

TEST_F(CheckpointFailpoint, OpenAndAppendFailuresSurfaceAsStatus)
{
    const std::string path = tempJournalPath("fp_status");
    std::remove(path.c_str());

    ASSERT_TRUE(failpoint::configure("checkpoint.open=hit(1)").ok());
    CheckpointJournal journal;
    EXPECT_FALSE(journal.open(path).ok());

    CheckpointJournal journal2;
    ASSERT_TRUE(journal2.open(path).ok());
    ASSERT_TRUE(
        failpoint::configure("checkpoint.append=hit(1)").ok());
    EXPECT_FALSE(journal2.append(makeOutcome("bfs", "lru", 1)).ok());
    // The failed append must not poison the journal.
    EXPECT_TRUE(journal2.append(makeOutcome("bfs", "lru", 1)).ok());
    EXPECT_EQ(journal2.completedCells(), 1u);
    std::remove(path.c_str());
}

TEST_F(CheckpointFailpoint, ThrowingFailpointsDegradeToStatusNotAbort)
{
    // Regression test for a bug the chaos soak caught: an exception
    // escaping open()/append() — here injected, in production
    // bad_alloc or a filesystem error — used to unwind uncaught and
    // abort the process instead of degrading to a recoverable Status.
    const std::string path = tempJournalPath("fp_throw");
    std::remove(path.c_str());

    ASSERT_TRUE(
        failpoint::configure("checkpoint.open=hit(1):throw").ok());
    CheckpointJournal journal;
    const Status open_status = journal.open(path);
    ASSERT_FALSE(open_status.ok());
    EXPECT_EQ(open_status.code(), StatusCode::Internal);
    EXPECT_NE(open_status.message().find("unexpected exception"),
              std::string::npos);

    CheckpointJournal journal2;
    ASSERT_TRUE(journal2.open(path).ok());
    ASSERT_TRUE(failpoint::configure(
                    "checkpoint.append=hit(1):throw").ok());
    const Status append_status =
        journal2.append(makeOutcome("bfs", "lru", 1));
    ASSERT_FALSE(append_status.ok());
    EXPECT_EQ(append_status.code(), StatusCode::Internal);
    std::remove(path.c_str());
}

TEST_F(CheckpointFailpoint, ReplayFailureDegradesToPartialRestore)
{
    const std::string path = tempJournalPath("fp_replay");
    std::remove(path.c_str());
    {
        CheckpointJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        ASSERT_TRUE(journal.append(makeOutcome("bfs", "lru", 1)).ok());
        ASSERT_TRUE(journal.append(makeOutcome("pr", "lru", 2)).ok());
    }
    // An error while replaying record 2: the reopen surfaces it (or,
    // for the default error action, skips the damaged record) without
    // crashing; cells re-run at worst.
    ASSERT_TRUE(
        failpoint::configure("checkpoint.replay=hit(2):throw").ok());
    CheckpointJournal resumed;
    const Status s = resumed.open(path);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Internal);
    std::remove(path.c_str());
}

} // namespace
} // namespace cachescope
