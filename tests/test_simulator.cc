/**
 * @file
 * Unit tests for the simulation driver: warmup windows, instruction
 * budgets, result plumbing, and the Cascade Lake configuration.
 */

#include <gtest/gtest.h>

#include "core/cascade_lake.hh"
#include "core/simulator.hh"

namespace cachescope {
namespace {

SimConfig
smallConfig(const std::string &policy = "lru", InstCount warmup = 0,
            InstCount measure = 0)
{
    SimConfig cfg = cascadeLakeConfig(policy, warmup, measure);
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 32 * 1024;
    cfg.hierarchy.llc.numWays = 4;
    cfg.core.simulateFetch = false;
    return cfg;
}

TEST(CascadeLake, MatchesPaperTable)
{
    const SimConfig cfg = cascadeLakeConfig("ship");
    EXPECT_EQ(cfg.hierarchy.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.hierarchy.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.hierarchy.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.hierarchy.llc.sizeBytes, 11u * 128 * 1024);
    EXPECT_EQ(cfg.hierarchy.llc.numWays, 11u);
    EXPECT_EQ(cfg.hierarchy.llc.numSets(), 2048u);
    EXPECT_EQ(cfg.hierarchy.llc.replacement, "ship");
    EXPECT_EQ(cfg.hierarchy.l2.replacement, "lru");
    EXPECT_EQ(cfg.core.robSize, 352u);
    EXPECT_EQ(cfg.hierarchy.dram.capacityBytes, 8ull << 30);
}

TEST(SimulatorTest, ConsumesAndCounts)
{
    Simulator sim(smallConfig());
    for (int i = 0; i < 500; ++i)
        sim.onInstruction(TraceRecord::alu(0x400000));
    EXPECT_EQ(sim.instructionsConsumed(), 500u);
    EXPECT_TRUE(sim.wantsMore());
    const SimResult r = sim.result();
    EXPECT_EQ(r.core.instructions, 500u);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_EQ(r.llcPolicy, "lru");
}

TEST(SimulatorTest, BudgetStopsConsumption)
{
    Simulator sim(smallConfig("lru", /*warmup=*/100, /*measure=*/200));
    int pushed = 0;
    while (sim.wantsMore() && pushed < 10000) {
        sim.onInstruction(TraceRecord::alu(0x400000));
        ++pushed;
    }
    EXPECT_EQ(pushed, 300);
    EXPECT_FALSE(sim.wantsMore());
    // Further pushes are ignored.
    sim.onInstruction(TraceRecord::alu(0x400000));
    EXPECT_EQ(sim.instructionsConsumed(), 300u);
    EXPECT_EQ(sim.result().core.instructions, 200u);
}

TEST(SimulatorTest, WarmupExcludedFromStats)
{
    // 1000 warmup loads stream through a small buffer; measurement
    // then hits the same buffer. Without warmup isolation the stats
    // would include the 1000 cold misses.
    SimConfig cfg = smallConfig("lru", /*warmup=*/1000, /*measure=*/0);
    Simulator sim(cfg);
    for (int i = 0; i < 1000; ++i)
        sim.onInstruction(TraceRecord::load(0x400010, (i % 16) * 64));
    EXPECT_TRUE(sim.inMeasurement());
    for (int i = 0; i < 1000; ++i)
        sim.onInstruction(TraceRecord::load(0x400010, (i % 16) * 64));

    const SimResult r = sim.result();
    EXPECT_EQ(r.core.instructions, 1000u);
    // All measured accesses hit the warmed cache.
    EXPECT_EQ(r.l1d.demandMisses(), 0u);
    EXPECT_EQ(r.mpkiL1d(), 0.0);
}

TEST(SimulatorTest, MpkiPlumbing)
{
    Simulator sim(smallConfig());
    // Every load is a cold miss at every level.
    for (int i = 0; i < 1000; ++i) {
        sim.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 64));
    }
    const SimResult r = sim.result();
    EXPECT_NEAR(r.mpkiL1d(), 1000.0, 1.0);
    EXPECT_NEAR(r.mpkiL2(), 1000.0, 1.0);
    EXPECT_NEAR(r.mpkiLlc(), 1000.0, 1.0);
    EXPECT_NEAR(r.dramServiceRatio(), 1.0, 0.01);
    EXPECT_GT(r.dram.reads, 990u);
}

TEST(SimulatorTest, DeterministicAcrossRuns)
{
    auto run = [] {
        Simulator sim(smallConfig("drrip"));
        std::uint64_t x = 123456789;
        for (int i = 0; i < 50000; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if (x % 3 == 0) {
                sim.onInstruction(
                    TraceRecord::load(0x400010, x % (1u << 22)));
            } else {
                sim.onInstruction(TraceRecord::alu(0x400000));
            }
        }
        return sim.result();
    };
    const SimResult a = run();
    const SimResult b = run();
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.llc.demandMisses(), b.llc.demandMisses());
    EXPECT_EQ(a.dram.reads, b.dram.reads);
}

TEST(SimulatorTest, PolicyChangesOnlyAffectLlc)
{
    auto run = [](const char *policy) {
        Simulator sim(smallConfig(policy));
        std::uint64_t x = 42;
        for (int i = 0; i < 100000; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sim.onInstruction(
                TraceRecord::load(0x400010 + 4 * (x % 8),
                                  x % (1u << 21)));
        }
        return sim.result();
    };
    const SimResult lru = run("lru");
    const SimResult hawkeye = run("hawkeye");
    // Upper levels see the identical stream.
    EXPECT_EQ(lru.l1d.demandMisses(), hawkeye.l1d.demandMisses());
    EXPECT_EQ(lru.l2.demandMisses(), hawkeye.l2.demandMisses());
    // The LLC behaves differently (policy state differs).
    EXPECT_NE(lru.llc.demandHits(), hawkeye.llc.demandHits());
}

} // namespace
} // namespace cachescope
