/**
 * @file
 * The two-speed simulation engine's contracts: functional warmup's
 * cache-counter bit-identity with timed warmup, deterministic LLC
 * set-sampling, the sampled estimator's accuracy on the realistic LLC
 * geometry, the fast-sweep preset's reproducibility across --jobs,
 * and the configuration validation both fast paths rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cache.hh"
#include "core/cascade_lake.hh"
#include "difftest/stream_fuzzer.hh"
#include "harness/corun.hh"
#include "harness/experiment.hh"
#include "stats/metrics.hh"
#include "workloads/synthetic.hh"

namespace cachescope {
namespace {

using difftest::StreamKind;
using difftest::StreamSpec;

/** Shrunken hierarchy so small windows produce real LLC traffic. */
SimConfig
fastsimConfig(InstCount warmup = 20'000, InstCount measure = 60'000)
{
    SimConfig cfg = cascadeLakeConfig("lru", warmup, measure);
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l1i.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1i.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    return cfg;
}

std::shared_ptr<Workload>
makeHotCold(std::uint64_t seed = 9)
{
    SynthParams p;
    p.pcWorkloadId = 81;
    p.seed = seed;
    p.mainBytes = 256ull << 10;
    p.hotBytes = 24ull << 10;
    p.hotFraction = 0.9;
    p.aluPerOp = 2;
    return std::make_shared<SyntheticWorkload>(
        "fastsim", SynthPattern::HotCold, p);
}

std::shared_ptr<Workload>
makeThrash(std::uint64_t seed = 5)
{
    SynthParams p;
    p.pcWorkloadId = 82;
    p.seed = seed;
    p.mainBytes = 96ull << 10;
    p.aluPerOp = 2;
    return std::make_shared<SyntheticWorkload>(
        "fastsim", SynthPattern::ScanThrash, p);
}

/** Copy of @p in holding only the paths under the cache subtrees. */
MetricsRegistry
cacheSubtrees(const MetricsRegistry &in)
{
    const auto keep = [](const std::string &path) {
        return path.rfind("l1i.", 0) == 0 || path.rfind("l1d.", 0) == 0 ||
               path.rfind("l2.", 0) == 0 || path.rfind("llc.", 0) == 0;
    };
    MetricsRegistry out;
    for (const auto &[path, value] : in.counters())
        if (keep(path))
            out.setCounter(path, value);
    for (const auto &[path, value] : in.gauges())
        if (keep(path))
            out.setGauge(path, value);
    for (const auto &[path, snap] : in.histograms())
        if (keep(path))
            out.setHistogram(path, snap);
    return out;
}

std::string
registryJson(const MetricsRegistry &metrics, const std::string &name)
{
    MetricsDocument doc;
    doc.name = name;
    doc.wallMs = 0.0;
    doc.metrics = metrics;
    return metricsToJson(doc);
}

/** Copy @p in minus wall-clock noise (same rule as the golden test). */
MetricsRegistry
stripTiming(const MetricsRegistry &in)
{
    const auto ends_with = [](const std::string &s, const char *suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
    };
    MetricsRegistry out;
    for (const auto &[path, value] : in.counters())
        out.setCounter(path, value);
    for (const auto &[path, value] : in.gauges()) {
        if (ends_with(path, ".wall_ms") ||
            ends_with(path, "wall_seconds") ||
            ends_with(path, ".throughput_mips"))
            continue;
        out.setGauge(path, value);
    }
    for (const auto &[path, snap] : in.histograms()) {
        // sweep.cell_wall_ms buckets move with host load.
        if (path.find("wall_ms") != std::string::npos)
            continue;
        out.setHistogram(path, snap);
    }
    return out;
}

// --- Functional warmup ---------------------------------------------------

/**
 * The load-bearing fidelity contract: functional and timed warmup feed
 * the hierarchy byte-identical (addr, pc, type) streams, so every
 * cache counter — warmup-reset and accumulated over the measured
 * window — is bit-identical between the two modes. Only timing state
 * (core cycles, DRAM row/bank history) may differ.
 */
TEST(FunctionalWarmup, CacheCountersBitIdenticalToTimed)
{
    auto workload = makeHotCold();
    SimConfig timed = fastsimConfig();
    SimConfig functional = timed;
    functional.warmupMode = WarmupMode::Functional;

    const SimResult rt = runOne(*workload, timed);
    const SimResult rf = runOne(*workload, functional);

    MetricsRegistry mt;
    rt.exportMetrics(mt);
    MetricsRegistry mf;
    rf.exportMetrics(mf);
    EXPECT_EQ(registryJson(cacheSubtrees(mt), "caches"),
              registryJson(cacheSubtrees(mf), "caches"));

    EXPECT_EQ(rt.core.instructions, rf.core.instructions);
    EXPECT_EQ(rt.core.loads, rf.core.loads);
    EXPECT_EQ(rt.core.stores, rf.core.stores);
    // The measured window itself runs the sealed timed path in both
    // modes, so IPC stays a real number even after a functional warmup.
    EXPECT_GT(rf.ipc(), 0.0);
}

TEST(FunctionalWarmup, ZeroWarmupDegeneratesToTimed)
{
    auto workload = makeThrash();
    SimConfig timed = fastsimConfig(/*warmup=*/0);
    SimConfig functional = timed;
    functional.warmupMode = WarmupMode::Functional;

    const SimResult rt = runOne(*workload, timed);
    const SimResult rf = runOne(*workload, functional);
    // No warmup window: the functional path never engages, so even
    // timing is identical.
    EXPECT_EQ(rt.core.cycles, rf.core.cycles);
    EXPECT_EQ(rt.llc.demandMisses(), rf.llc.demandMisses());
}

TEST(FunctionalWarmup, CorunSmokeAndWallSplit)
{
    CorunRunOptions options;
    options.config.base = fastsimConfig(/*warmup=*/5'000, /*measure=*/40'000);
    options.config.base.warmupMode = WarmupMode::Functional;
    std::vector<CorunTenant> tenants;
    tenants.push_back(CorunTenant::fromWorkload(makeThrash()));
    tenants.push_back(CorunTenant::fromWorkload(makeHotCold()));

    auto report_or = runCorun(tenants, options);
    ASSERT_TRUE(report_or.ok()) << report_or.status().message();
    const CorunReport &report = report_or.value();
    ASSERT_EQ(report.result.cores.size(), 2u);
    EXPECT_GT(report.result.llc.demandAccesses(), 0u);
    for (const SimResult &core : report.result.cores)
        EXPECT_GT(core.core.instructions, 0u);

    MetricsRegistry metrics;
    report.exportMetrics(metrics, "");
    const auto &gauges = metrics.gauges();
    ASSERT_TRUE(gauges.count("sim.warmup_wall_seconds"));
    ASSERT_TRUE(gauges.count("sim.measure_wall_seconds"));
    // The split partitions the total wall clock.
    EXPECT_NEAR(gauges.at("sim.warmup_wall_seconds") +
                    gauges.at("sim.measure_wall_seconds"),
                gauges.at("sim.wall_seconds"), 1e-9);
    // Per-core warmup boundaries are observable too.
    EXPECT_TRUE(gauges.count("core0.sim.warmup_wall_seconds"));
    EXPECT_TRUE(gauges.count("core1.sim.warmup_wall_seconds"));
}

TEST(FunctionalWarmup, SingleRunWallSplitPartitionsTotal)
{
    auto workload = makeHotCold();
    SimConfig cfg = fastsimConfig();
    cfg.warmupMode = WarmupMode::Functional;
    const SimResult result = runOne(*workload, cfg);
    const auto &gauges = result.extraMetrics.gauges();
    ASSERT_TRUE(gauges.count("sim.wall_seconds"));
    ASSERT_TRUE(gauges.count("sim.warmup_wall_seconds"));
    ASSERT_TRUE(gauges.count("sim.measure_wall_seconds"));
    EXPECT_GE(gauges.at("sim.warmup_wall_seconds"), 0.0);
    EXPECT_GE(gauges.at("sim.measure_wall_seconds"), 0.0);
    EXPECT_NEAR(gauges.at("sim.warmup_wall_seconds") +
                    gauges.at("sim.measure_wall_seconds"),
                gauges.at("sim.wall_seconds"), 1e-9);
}

// --- Configuration validation --------------------------------------------

TEST(FastsimValidate, RejectsWarmupPlusMeasureOverflow)
{
    SimConfig cfg = fastsimConfig();
    cfg.warmupInstructions = ~InstCount{0} - 1;
    cfg.measureInstructions = 2;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.warmupInstructions = 1'000;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(FastsimValidate, RejectsBadSampleSets)
{
    SimConfig cfg = fastsimConfig();
    cfg.hierarchy.llc.sampleSets = 3; // not a power of two
    EXPECT_FALSE(cfg.validate().ok());
    cfg.hierarchy.llc.sampleSets = 1u << 30; // more than the set count
    EXPECT_FALSE(cfg.validate().ok());
    cfg.hierarchy.llc.sampleSets = 16;
    EXPECT_TRUE(cfg.validate().ok());
}

// --- Set-sampling --------------------------------------------------------

CacheConfig
bareLlc(const std::string &policy, std::uint32_t sample_sets)
{
    CacheConfig cfg = cascadeLakeConfig("lru", 0, 0).hierarchy.llc;
    cfg.replacement = policy;
    cfg.prefetcher = "none";
    cfg.sampleSets = sample_sets;
    return cfg;
}

/** A bottomless MemoryLevel: every request returns after one cycle. */
class FlatLevel : public MemoryLevel
{
  public:
    Cycle
    access(Addr, Pc, AccessType, Cycle now) override
    {
        return now + 1;
    }

    const std::string &levelName() const override { return name; }

  private:
    std::string name = "flat";
};

/**
 * --sample-sets must pick the same subset on every construction: the
 * selection is a pure function of (set count, rate), independent of
 * run order, jobs, or anything else. Two caches agreeing set-by-set,
 * with the exact expected subset size, pins that.
 */
TEST(SetSampling, SelectionIsDeterministicAndExactlySized)
{
    FlatLevel flat_a;
    FlatLevel flat_b;
    Cache a(bareLlc("lru", 16), &flat_a);
    Cache b(bareLlc("lru", 16), &flat_b);
    ASSERT_TRUE(a.samplingEnabled());
    const std::uint32_t sets = bareLlc("lru", 16).geometry().numSets;
    EXPECT_EQ(a.sampledSetCount(), sets / 16);
    EXPECT_EQ(b.sampledSetCount(), sets / 16);
    for (std::uint32_t s = 0; s < sets; ++s)
        EXPECT_EQ(a.setIsSampled(s), b.setIsSampled(s)) << "set " << s;
}

struct AccuracyCase
{
    const char *policy;
    StreamKind kind;
    /** Relative budget; globally-trained policies get extra head-room
     *  for training dilution, which realistic geometry keeps small. */
    double budget;
};

class SampledAccuracy : public ::testing::TestWithParam<AccuracyCase>
{};

/**
 * The sampled estimator's accuracy on the *realistic* LLC geometry —
 * the regime the fast-sweep preset actually runs in, and the
 * statistical gate the adversarial difftest geometry is too small to
 * host for globally-trained policies. The tolerance is the relative
 * budget slackened by the estimator's true standard error, computed
 * from the full run's per-set miss distribution (the population the
 * subset was drawn from), plus a small-count floor.
 */
TEST_P(SampledAccuracy, MissEstimateWithinBudgetOnRealisticGeometry)
{
    const AccuracyCase &c = GetParam();
    constexpr std::uint32_t kRate = 16;

    StreamSpec spec;
    spec.seed = 17;
    spec.kind = c.kind;
    spec.memoryAccesses = 150'000;
    CacheConfig llc = bareLlc(c.policy, 1);
    spec.geometry = llc.geometry();
    const std::vector<TraceRecord> mem =
        difftest::memoryRecordsOf(difftest::generateStream(spec));

    const std::uint32_t num_sets = llc.geometry().numSets;
    const std::uint64_t set_mask = num_sets - 1;
    std::vector<std::uint64_t> set_misses(num_sets, 0);

    FlatLevel full_flat;
    Cache full(llc, &full_flat);
    full.setEventHook([&](const Cache::AccessEvent &e) {
        if ((e.type == AccessType::Load || e.type == AccessType::Store) &&
            !e.hit) {
            ++set_misses[e.set];
        }
    });
    for (const TraceRecord &rec : mem) {
        full.access(rec.addr & ~Addr{63}, rec.pc,
                    rec.kind == InstKind::Store ? AccessType::Store
                                                : AccessType::Load,
                    /*now=*/0);
    }

    FlatLevel sampled_flat;
    Cache sampled(bareLlc(c.policy, kRate), &sampled_flat);
    for (const TraceRecord &rec : mem) {
        sampled.access(rec.addr & ~Addr{63}, rec.pc,
                       rec.kind == InstKind::Store ? AccessType::Store
                                                   : AccessType::Load,
                       /*now=*/0);
    }

    const double full_misses =
        static_cast<double>(full.stats().demandMisses());
    const double est_misses =
        static_cast<double>(sampled.stats().demandMisses()) * kRate;
    ASSERT_GT(full_misses, 0.0);

    // True (population) relative standard error of the subset total.
    const double mean = full_misses / num_sets;
    double var = 0.0;
    for (std::uint32_t s = 0; s < num_sets; ++s) {
        const double d = static_cast<double>(set_misses[s]) - mean;
        var += d * d;
    }
    var /= num_sets - 1.0;
    const double n_sampled = static_cast<double>(num_sets) / kRate;
    const double se_true =
        std::sqrt((1.0 - n_sampled / num_sets) * var / n_sampled) / mean;

    const double tol = std::max({c.budget * full_misses,
                                 5.0 * se_true * full_misses,
                                 3.0 * static_cast<double>(kRate)});
    EXPECT_LE(std::abs(est_misses - full_misses), tol)
        << c.policy << "/" << difftest::streamKindName(c.kind)
        << ": estimate " << est_misses << " vs full " << full_misses
        << " (se_true " << se_true << ")";

    // Sanity on the address side, independent of the miss estimate:
    // the sampled subset saw roughly 1/rate of the stream.
    std::uint64_t in_sample = 0;
    for (const TraceRecord &rec : mem) {
        if (sampled.setIsSampled(
                static_cast<std::uint32_t>((rec.addr >> 6) & set_mask)))
            ++in_sample;
    }
    EXPECT_EQ(sampled.stats().demandAccesses(), in_sample);

    // Miss-*rate* agreement (the figure the sweeps actually plot).
    const double mr_full =
        full_misses / static_cast<double>(full.stats().demandAccesses());
    const double mr_est =
        static_cast<double>(sampled.stats().demandMisses()) /
        static_cast<double>(sampled.stats().demandAccesses());
    EXPECT_NEAR(mr_est, mr_full,
                std::max(0.05, 5.0 * se_true * mr_full));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SampledAccuracy,
    ::testing::Values(
        AccuracyCase{"lru", StreamKind::ScanThrash, 0.02},
        AccuracyCase{"lru", StreamKind::MixedWorkingSets, 0.02},
        AccuracyCase{"srrip", StreamKind::ScanThrash, 0.02},
        AccuracyCase{"srrip", StreamKind::MixedWorkingSets, 0.02},
        AccuracyCase{"hawkeye", StreamKind::ScanThrash, 0.06},
        AccuracyCase{"hawkeye", StreamKind::MixedWorkingSets, 0.06}),
    [](const ::testing::TestParamInfo<AccuracyCase> &info) {
        return std::string(info.param.policy) + "_" +
               difftest::streamKindName(info.param.kind);
    });

// --- Fast sweep ----------------------------------------------------------

/**
 * The fast-sweep preset must be bit-reproducible across --jobs: the
 * set selection is order-independent and functional warmup touches no
 * shared state, so serial and parallel sweeps agree byte-for-byte
 * (modulo wall-clock gauges).
 */
TEST(FastSweep, DeterministicAcrossJobs)
{
    SimConfig base = fastsimConfig(/*warmup=*/10'000, /*measure=*/40'000);
    std::vector<std::shared_ptr<Workload>> suite{makeThrash(),
                                                 makeHotCold()};
    std::vector<std::string> policies{"lru", "srrip"};

    SuiteRunner serial(base, /*jobs=*/1);
    serial.setVerbose(false);
    serial.setFastSweep(true);
    SuiteRunner parallel(base, /*jobs=*/4);
    parallel.setVerbose(false);
    parallel.setFastSweep(true);

    const SweepReport rs = serial.runChecked(suite, policies);
    const SweepReport rp = parallel.runChecked(suite, policies);
    ASSERT_EQ(rs.failed(), 0u);
    ASSERT_EQ(rp.failed(), 0u);
    EXPECT_EQ(registryJson(stripTiming(rs.metrics), "sweep"),
              registryJson(stripTiming(rp.metrics), "sweep"));

    // The preset actually engaged: every cell carries the sampled
    // subtree at the preset's 1/16 rate.
    const std::string marker = "llc.sampled.sample_rate";
    bool saw_sampled = false;
    for (const auto &[path, value] : rs.metrics.counters()) {
        // Per-cell trees only: the total.* aggregate sums the marker
        // across cells.
        if (path.rfind("cell.", 0) == 0 && path.size() >= marker.size() &&
            path.compare(path.size() - marker.size(), marker.size(),
                         marker) == 0) {
            EXPECT_EQ(value, 16u) << path;
            saw_sampled = true;
        }
    }
    EXPECT_TRUE(saw_sampled);
}

} // namespace
} // namespace cachescope
