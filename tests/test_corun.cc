/**
 * @file
 * Co-run invariants: the 1-core byte-identity contract, two-core
 * symmetry under way partitioning, per-core LLC attribution
 * conservation, bit-reproducibility across repeat runs (with a pinned
 * golden digest), and configuration validation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cascade_lake.hh"
#include "core/corun.hh"
#include "harness/corun.hh"
#include "harness/experiment.hh"
#include "stats/metrics.hh"
#include "trace/trace_io.hh"
#include "util/checksum.hh"
#include "workloads/synthetic.hh"

namespace cachescope {
namespace {

/**
 * Pinned digest of the stripped two-core co-run metric tree produced
 * by goldenCorunReport(). Computed when the co-run subsystem landed;
 * any change to arbitration order, stream tagging, attribution, or
 * metric export shifts it and fails here. Re-pin only for intentional
 * simulated-behavior changes, and say so in the commit message.
 */
constexpr std::uint64_t kCorunGoldenDigest = 0x7cceb5c5d08eb1c0ull;

/** Shrunken hierarchy so tiny windows produce real LLC traffic. */
SimConfig
corunConfig(InstCount warmup = 5'000, InstCount measure = 60'000)
{
    SimConfig cfg = cascadeLakeConfig("lru", warmup, measure);
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l1i.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1i.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    return cfg;
}

std::shared_ptr<Workload>
makeThrash()
{
    SynthParams p;
    p.pcWorkloadId = 71;
    p.seed = 21;
    p.mainBytes = 96ull << 10;
    p.aluPerOp = 2;
    return std::make_shared<SyntheticWorkload>(
        "corun", SynthPattern::ScanThrash, p);
}

std::shared_ptr<Workload>
makeHotCold()
{
    SynthParams p;
    p.pcWorkloadId = 72;
    p.seed = 22;
    p.mainBytes = 256ull << 10;
    p.hotBytes = 24ull << 10;
    p.hotFraction = 0.9;
    p.aluPerOp = 2;
    return std::make_shared<SyntheticWorkload>(
        "corun", SynthPattern::HotCold, p);
}

/** Copy @p in minus wall-clock noise (same rule as the golden test). */
MetricsRegistry
stripTiming(const MetricsRegistry &in)
{
    const auto ends_with = [](const std::string &s, const char *suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
    };
    MetricsRegistry out;
    for (const auto &[path, value] : in.counters())
        out.setCounter(path, value);
    for (const auto &[path, value] : in.gauges()) {
        if (ends_with(path, ".wall_ms") ||
            ends_with(path, "wall_seconds") ||
            ends_with(path, ".throughput_mips"))
            continue;
        out.setGauge(path, value);
    }
    for (const auto &[path, snap] : in.histograms())
        out.setHistogram(path, snap);
    return out;
}

std::string
strippedJson(const MetricsRegistry &metrics, const std::string &name)
{
    MetricsDocument doc;
    doc.name = name;
    doc.wallMs = 0.0;
    doc.metrics = stripTiming(metrics);
    return metricsToJson(doc);
}

TEST(CorunConfigTest, ValidateRejectsBadShapes)
{
    CorunConfig cfg;
    cfg.base = corunConfig();
    EXPECT_FALSE(cfg.validate(0).ok());
    EXPECT_TRUE(cfg.validate(2).ok());

    // 8-way LLC cannot give 5 ways each to 2 cores.
    cfg.llcWaysPerCore = 5;
    EXPECT_FALSE(cfg.validate(2).ok());
    cfg.llcWaysPerCore = 4;
    EXPECT_TRUE(cfg.validate(2).ok());

    // Warmup overrides must be one per core.
    cfg.coreWarmups = {1'000};
    EXPECT_FALSE(cfg.validate(2).ok());
    cfg.coreWarmups = {1'000, 2'000};
    EXPECT_TRUE(cfg.validate(2).ok());
}

TEST(CorunHarnessTest, TenantWithoutSourceIsRejected)
{
    CorunRunOptions options;
    options.config.base = corunConfig();
    const std::vector<CorunTenant> tenants = {CorunTenant{}};
    EXPECT_FALSE(runCorun(tenants, options).ok());
}

/**
 * Acceptance contract: a 1-core co-run exports byte-for-byte the
 * single-core metric tree — same paths, same values, no corun.*
 * summary, no core0 prefix. Only wall-clock gauges may differ.
 */
TEST(CorunIdentity, OneCoreCorunMatchesSingleCoreRun)
{
    const SimConfig cfg = corunConfig();
    auto workload = makeHotCold();
    const SimResult solo = runOne(*workload, cfg);
    MetricsRegistry solo_metrics;
    solo.exportMetrics(solo_metrics);
    // runOne() adds the timing gauges after export; mirror the shape.
    solo_metrics.setGauge("sim.wall_seconds", 0.0);
    solo_metrics.setGauge("sim.throughput_mips", 0.0);

    CorunRunOptions options;
    options.config.base = cfg;
    auto report_or =
        runCorun({CorunTenant::fromWorkload(makeHotCold())}, options);
    ASSERT_TRUE(report_or.ok()) << report_or.status().message();
    MetricsRegistry corun_metrics;
    report_or.value().exportMetrics(corun_metrics);

    EXPECT_EQ(strippedJson(solo_metrics, "identity"),
              strippedJson(corun_metrics, "identity"));
}

/** True for metric paths whose value depends on retire-clock timing
 *  (cycle counts and the rates derived from them). */
bool
isTimingPath(const std::string &path)
{
    const auto ends_with = [&path](const char *suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    return ends_with(".cycles") || ends_with(".ipc");
}

/** True for host wall-clock gauges (sim.*wall_seconds, throughput):
 *  nondeterministic by nature, so identical tenants only produce
 *  *near* values — structure is checked, magnitudes are not. */
bool
isWallClockPath(const std::string &path)
{
    return path.find("wall_seconds") != std::string::npos ||
           path.find("throughput_mips") != std::string::npos;
}

/**
 * Two cores fed identical streams over a way-partitioned LLC must
 * produce identical per-core *functional* metric subtrees: the
 * arbiter's warmup barrier, stream tagging, attribution, and the
 * partitioned fill path treat cores symmetrically, so hit/miss/
 * eviction counts match exactly. Cycle counts (and IPC) are compared
 * with a small tolerance instead: even with flat DRAM timing the
 * cores genuinely share the bank/bus queues, so each tenant's
 * latency depends slightly on the interleaving — that bandwidth
 * coupling is the point of a co-run, not an asymmetry bug.
 */
TEST(CorunDifftest, IdenticalTenantsProduceIdenticalSubtrees)
{
    CorunRunOptions options;
    options.config.base = corunConfig();
    // Flat DRAM: every read costs tController + tCas plus queueing,
    // no row-state history, so timing skew stays small.
    options.config.base.hierarchy.dram.tRcd = 0;
    options.config.base.hierarchy.dram.tRp = 0;
    options.config.base.hierarchy.dram.tBurst = 0;
    options.config.llcWaysPerCore = 4; // 8-way LLC, half each

    auto report_or = runCorun({CorunTenant::fromWorkload(makeHotCold()),
                               CorunTenant::fromWorkload(makeHotCold())},
                              options);
    ASSERT_TRUE(report_or.ok()) << report_or.status().message();
    MetricsRegistry metrics;
    report_or.value().exportMetrics(metrics);

    // Every core0.* path must exist under core1.* with the same value,
    // and vice versa (checked by comparing subtree sizes).
    std::size_t core0_counters = 0, core1_counters = 0;
    for (const auto &[path, value] : metrics.counters()) {
        if (path.rfind("core0.", 0) == 0) {
            ++core0_counters;
            const std::string twin = "core1." + path.substr(6);
            ASSERT_TRUE(metrics.hasCounter(twin)) << twin;
            if (isTimingPath(path)) {
                EXPECT_NEAR(static_cast<double>(metrics.counter(twin)),
                            static_cast<double>(value), 0.02 * value)
                    << twin;
            } else {
                EXPECT_EQ(metrics.counter(twin), value) << twin;
            }
        } else if (path.rfind("core1.", 0) == 0) {
            ++core1_counters;
        }
    }
    EXPECT_GT(core0_counters, 0u);
    EXPECT_EQ(core0_counters, core1_counters);

    std::size_t core0_gauges = 0, core1_gauges = 0;
    const auto &gauges = metrics.gauges();
    for (const auto &[path, value] : gauges) {
        if (path.rfind("core0.", 0) == 0) {
            ++core0_gauges;
            const auto twin = gauges.find("core1." + path.substr(6));
            ASSERT_NE(twin, gauges.end()) << path;
            if (isWallClockPath(path)) {
                // Existence-only: host time, not simulated behavior.
            } else if (isTimingPath(path)) {
                EXPECT_NEAR(twin->second, value, 0.02 * value) << path;
            } else {
                EXPECT_DOUBLE_EQ(twin->second, value) << path;
            }
        } else if (path.rfind("core1.", 0) == 0) {
            ++core1_gauges;
        }
    }
    EXPECT_GT(core0_gauges, 0u);
    EXPECT_EQ(core0_gauges, core1_gauges);
}

/**
 * The per-core LLC attribution slices must sum *exactly* to the shared
 * totals — on a contended configuration (no partition, full DRAM
 * timing), where the cores genuinely interleave and evict each other.
 */
TEST(CorunDifftest, AttributionSlicesSumToSharedTotals)
{
    CorunRunOptions options;
    options.config.base = corunConfig();
    auto report_or = runCorun({CorunTenant::fromWorkload(makeThrash()),
                               CorunTenant::fromWorkload(makeHotCold())},
                              options);
    ASSERT_TRUE(report_or.ok()) << report_or.status().message();
    MetricsRegistry metrics;
    report_or.value().exportMetrics(metrics);

    std::size_t checked = 0;
    for (const auto &[path, value] : metrics.counters()) {
        if (path.rfind("llc.", 0) != 0 ||
            path.find(".policy.") != std::string::npos ||
            path.find(".prefetcher.") != std::string::npos)
            continue;
        const std::uint64_t sum = metrics.counter("core0." + path) +
                                  metrics.counter("core1." + path);
        EXPECT_EQ(sum, value) << path;
        ++checked;
    }
    EXPECT_GT(checked, 10u);
    // The run must have produced real shared-LLC traffic for the
    // invariant to mean anything.
    EXPECT_GT(report_or.value().result.llc.demandAccesses(), 0u);
}

/**
 * Acceptance contract: a two-core co-run is bit-reproducible — two
 * runs of the same configuration produce byte-identical stripped
 * metric trees, and the tree's digest is pinned. The arbiter is a
 * serial loop, so there is no --jobs analog to vary; repeatability
 * plus the pin is the whole determinism surface.
 */
TEST(CorunGolden, RepeatRunsAreBitIdenticalAndDigestIsPinned)
{
    const auto run_once = [] {
        CorunRunOptions options;
        options.config.base = corunConfig();
        options.config.base.hierarchy.llc.replacement = "srrip";
        auto report_or =
            runCorun({CorunTenant::fromWorkload(makeThrash()),
                      CorunTenant::fromWorkload(makeHotCold())},
                     options);
        EXPECT_TRUE(report_or.ok()) << report_or.status().message();
        MetricsRegistry metrics;
        report_or.value().exportMetrics(metrics);
        return strippedJson(metrics, "corun-golden");
    };
    const std::string first = run_once();
    const std::string second = run_once();
    EXPECT_EQ(first, second);

    Checksum64 sum;
    sum.update(first.data(), first.size());
    const std::uint64_t digest = sum.digest();
    char actual[32];
    std::snprintf(actual, sizeof(actual), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    EXPECT_EQ(digest, kCorunGoldenDigest)
        << "Co-run golden tree changed: digest is now " << actual
        << " over " << first.size() << " JSON bytes. Re-pin "
        << "kCorunGoldenDigest in tests/test_corun.cc only for an "
        << "intentional simulated-behavior change.";
}

/** Trace-file tenants stream from disk through the same arbiter. */
TEST(CorunHarnessTest, TraceTenantsCoRun)
{
    const std::string path = std::string(::testing::TempDir()) +
                             "/cachescope_corun_tenant.trace";
    {
        TraceWriter writer(path);
        auto workload = makeHotCold();
        struct Bounded : InstructionSink
        {
            explicit Bounded(TraceWriter &out) : out(out) {}
            void
            onInstruction(const TraceRecord &rec) override
            {
                out.onInstruction(rec);
            }
            bool
            wantsMore() const override
            {
                return out.recordsWritten() < 40'000;
            }
            TraceWriter &out;
        } sink(writer);
        workload->run(sink);
        writer.onEnd();
    }

    CorunRunOptions options;
    options.config.base = corunConfig(2'000, 30'000);
    auto report_or = runCorun({CorunTenant::fromTrace(path),
                               CorunTenant::fromTrace(path)},
                              options);
    ASSERT_TRUE(report_or.ok()) << report_or.status().message();
    const CorunResult &r = report_or.value().result;
    ASSERT_EQ(r.cores.size(), 2u);
    EXPECT_GT(r.cores[0].core.instructions, 0u);
    EXPECT_GT(r.cores[1].core.instructions, 0u);
    EXPECT_EQ(report_or.value().tenantNames[0], path);

    // A missing trace surfaces as a Status, not a crash.
    EXPECT_FALSE(
        runCorun({CorunTenant::fromTrace("/nonexistent/x.trace")},
                 options)
            .ok());
    std::remove(path.c_str());
}

} // namespace
} // namespace cachescope
