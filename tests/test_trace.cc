/**
 * @file
 * Unit tests for the trace substrate: records, sinks, file round
 * trips, PC regions, traced memory and the PC profiler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "test_helpers.hh"
#include "trace/pc_site.hh"
#include "util/checksum.hh"
#include "trace/profile.hh"
#include "trace/trace_io.hh"
#include "trace/traced_memory.hh"

namespace cachescope {
namespace {

using test::VectorSink;

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cachescope_" + tag +
           ".trace";
}

TEST(TraceRecord, Factories)
{
    const TraceRecord l = TraceRecord::load(0x400000, 0x1000, 4);
    EXPECT_EQ(l.kind, InstKind::Load);
    EXPECT_EQ(l.pc, 0x400000u);
    EXPECT_EQ(l.addr, 0x1000u);
    EXPECT_EQ(l.size, 4);
    EXPECT_TRUE(l.isMemory());

    const TraceRecord s = TraceRecord::store(1, 2);
    EXPECT_EQ(s.kind, InstKind::Store);
    EXPECT_TRUE(s.isMemory());

    const TraceRecord a = TraceRecord::alu(9);
    EXPECT_FALSE(a.isMemory());
    EXPECT_EQ(a.addr, kInvalidAddr);

    const TraceRecord b = TraceRecord::branch(9);
    EXPECT_EQ(b.kind, InstKind::Branch);
    EXPECT_FALSE(b.isMemory());
}

TEST(CountingSink, CountsByKind)
{
    CountingSink sink;
    sink.onInstruction(TraceRecord::alu(1));
    sink.onInstruction(TraceRecord::alu(1));
    sink.onInstruction(TraceRecord::load(1, 8));
    sink.onInstruction(TraceRecord::store(1, 8));
    sink.onInstruction(TraceRecord::branch(1));
    EXPECT_EQ(sink.total, 5u);
    EXPECT_EQ(sink.alu, 2u);
    EXPECT_EQ(sink.loads, 1u);
    EXPECT_EQ(sink.stores, 1u);
    EXPECT_EQ(sink.branches, 1u);
}

TEST(TraceIo, RoundTrip)
{
    const std::string path = tempTracePath("roundtrip");
    std::vector<TraceRecord> originals = {
        TraceRecord::load(0x400010, 0xDEAD00, 8),
        TraceRecord::store(0x400014, 0xBEEF40, 4),
        TraceRecord::alu(0x400018),
        TraceRecord::branch(0x40001C),
    };
    {
        TraceWriter writer(path);
        for (const auto &rec : originals)
            writer.onInstruction(rec);
        writer.onEnd();
        EXPECT_EQ(writer.recordsWritten(), originals.size());
    }

    TraceReader reader(path);
    EXPECT_EQ(reader.numRecords(), originals.size());
    EXPECT_EQ(reader.version(), TraceFileHeader::kVersion);
    VectorSink sink;
    std::uint64_t replayed = 0;
    EXPECT_TRUE(reader.replayInto(sink, &replayed).ok());
    EXPECT_EQ(replayed, originals.size());
    ASSERT_EQ(sink.records.size(), originals.size());
    for (std::size_t i = 0; i < originals.size(); ++i)
        EXPECT_EQ(sink.records[i], originals[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, V2ChecksumIsDeterministicAcrossWrites)
{
    // Writing the same records twice must produce bit-identical header
    // checksums (the digest seed is pinned, not e.g. time- or
    // ASLR-dependent), and a re-read must verify cleanly against it.
    const std::vector<TraceRecord> records = {
        TraceRecord::load(0x400010, 0xDEAD00, 8),
        TraceRecord::store(0x400014, 0xBEEF40, 4),
        TraceRecord::alu(0x400018),
        TraceRecord::branch(0x40001C),
    };
    auto write = [&records](const std::string &path) {
        TraceWriter writer(path);
        for (const auto &rec : records)
            writer.onInstruction(rec);
        writer.onEnd();
    };
    const std::string path_a = tempTracePath("det_a");
    const std::string path_b = tempTracePath("det_b");
    write(path_a);
    write(path_b);

    TraceReader reader_a(path_a);
    TraceReader reader_b(path_b);
    EXPECT_EQ(reader_a.version(), TraceFileHeader::kVersion);
    EXPECT_NE(reader_a.headerChecksum(), 0u);
    EXPECT_EQ(reader_a.headerChecksum(), reader_b.headerChecksum());

    // Replaying verifies the stored digest against the record bytes.
    VectorSink sink_a, sink_b;
    EXPECT_TRUE(reader_a.replayInto(sink_a).ok());
    EXPECT_TRUE(reader_b.replayInto(sink_b).ok());
    ASSERT_EQ(sink_a.records.size(), records.size());

    // And a second independent read of the same file sees the same
    // checksum again.
    TraceReader reread(path_a);
    EXPECT_EQ(reread.headerChecksum(), reader_b.headerChecksum());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(TraceIo, TailLengthsRoundTripAtEveryLaneOffset)
{
    // The v3 checksum interleaves 8 lanes, so the serializer's tail
    // handling depends on recordCount % 8: exercise every residue
    // (counts 0..9) and verify a bit-exact round trip plus a clean
    // checksum verification for each.
    for (std::size_t count = 0; count <= 9; ++count) {
        const std::string path = tempTracePath("tail_small");
        std::vector<TraceRecord> originals;
        for (std::size_t i = 0; i < count; ++i) {
            originals.push_back(TraceRecord::load(
                0x400010 + 4 * static_cast<Pc>(i),
                0x10000 + 64 * static_cast<Addr>(i), 8));
        }
        {
            TraceWriter writer(path);
            for (const auto &rec : originals)
                writer.onInstruction(rec);
            writer.onEnd();
        }
        TraceReader reader(path);
        ASSERT_EQ(reader.numRecords(), count) << "count=" << count;
        VectorSink sink;
        ASSERT_TRUE(reader.replayInto(sink).ok()) << "count=" << count;
        ASSERT_EQ(sink.records.size(), count) << "count=" << count;
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(sink.records[i], originals[i]) << "count=" << count;
        std::remove(path.c_str());
    }
}

TEST(TraceIo, TailStraddlingTheDecodeBatchRoundTrips)
{
    // Counts around kBatchRecords make the final decode batch carry
    // 0..3 records past a full batch, so the checksum tail is fed in
    // two differently-sized update() calls. Every such split must
    // verify against the digest the writer computed in one pass.
    const std::size_t batch = 4096; // mirrors TraceReader::kBatchRecords
    for (std::size_t count = batch - 3; count <= batch + 3; ++count) {
        const std::string path = tempTracePath("tail_batch");
        {
            TraceWriter writer(path);
            for (std::size_t i = 0; i < count; ++i) {
                writer.onInstruction(TraceRecord::load(
                    0x400010, 0x10000 + 64 * static_cast<Addr>(i), 8));
            }
            writer.onEnd();
        }
        TraceReader reader(path);
        ASSERT_EQ(reader.numRecords(), count) << "count=" << count;
        CountingSink sink;
        ASSERT_TRUE(reader.replayInto(sink).ok()) << "count=" << count;
        EXPECT_EQ(sink.total, count) << "count=" << count;
        std::remove(path.c_str());
    }
}

TEST(Checksum64x8, ChunkingDoesNotChangeTheDigest)
{
    // The 8-lane checksum must be a pure function of the byte stream:
    // any split of the input into update() calls — including splits
    // that leave the lane cursor mid-group — yields the writer's
    // one-shot digest.
    std::vector<std::uint8_t> bytes(3 * 8 * 13 + 5);
    std::uint8_t x = 7;
    for (auto &b : bytes) {
        x = static_cast<std::uint8_t>(x * 31 + 11);
        b = x;
    }
    Checksum64x8 oneshot;
    oneshot.update(bytes.data(), bytes.size());
    const std::uint64_t want = oneshot.digest();

    for (std::size_t first : {std::size_t{0}, std::size_t{1},
                              std::size_t{3}, std::size_t{7},
                              std::size_t{8}, std::size_t{9},
                              std::size_t{64}, bytes.size() - 1}) {
        Checksum64x8 split;
        split.update(bytes.data(), first);
        split.update(bytes.data() + first, bytes.size() - first);
        EXPECT_EQ(split.digest(), want) << "first=" << first;

        Checksum64x8 trickle;
        std::size_t off = 0;
        std::size_t step = first == 0 ? 1 : first;
        while (off < bytes.size()) {
            const std::size_t n = std::min(step, bytes.size() - off);
            trickle.update(bytes.data() + off, n);
            off += n;
        }
        EXPECT_EQ(trickle.digest(), want) << "step=" << step;
    }
}

TEST(TraceIo, WriterFinalizesOnDestruction)
{
    const std::string path = tempTracePath("dtor");
    {
        TraceWriter writer(path);
        writer.onInstruction(TraceRecord::alu(1));
        // no explicit onEnd(): destructor must back-patch the header
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.numRecords(), 1u);
    std::remove(path.c_str());
}

// ------------------------------------------ recoverable error paths --

/** Mirror of trace_io.cc's on-disk record layout, for fixture forging. */
struct RawDiskRecord
{
    std::uint64_t pc = 0;
    std::uint64_t addr = 0;
    std::uint8_t kind = 0;
    std::uint8_t size = 0;
    std::uint8_t pad[6] = {};
};
static_assert(sizeof(RawDiskRecord) == 24, "fixture layout drifted");

/** Write a 4-record trace and return its path. */
std::string
writeSmallTrace(const char *tag)
{
    const std::string path = tempTracePath(tag);
    TraceWriter writer(path);
    for (int i = 0; i < 4; ++i)
        writer.onInstruction(TraceRecord::load(0x400000 + 4 * i, 64 * i));
    writer.onEnd();
    return path;
}

/** Truncate (or leave) the file at @p bytes. */
void
resizeFile(const std::string &path, std::size_t bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<char> contents(bytes);
    ASSERT_EQ(std::fread(contents.data(), 1, bytes, f), bytes);
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(contents.data(), 1, bytes, f), bytes);
    std::fclose(f);
}

/** XOR one byte of the file in place. */
void
flipByte(const std::string &path, long offset)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
}

TEST(TraceIoStatus, OpenReportsMissingFile)
{
    auto reader = TraceReader::open("/nonexistent/path/x.trace");
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::IoError);
    EXPECT_NE(reader.status().message().find("cannot open"),
              std::string::npos);
}

TEST(TraceIoStatus, OpenReportsBadMagic)
{
    const std::string path = tempTracePath("status_garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace, it is a potato", f);
    std::fclose(f);
    auto reader = TraceReader::open(path);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::Corruption);
    EXPECT_NE(reader.status().message().find("bad magic"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoStatus, OpenReportsUnsupportedVersion)
{
    const std::string path = tempTracePath("status_badver");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    TraceFileHeader hdr;
    hdr.version = 99;
    std::fwrite(&hdr, sizeof(hdr), 1, f);
    std::fclose(f);
    auto reader = TraceReader::open(path);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::InvalidArgument);
    EXPECT_NE(reader.status().message().find("version 99"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoStatus, TruncatedMidRecordIsReported)
{
    const std::string path = writeSmallTrace("status_midrec");
    // Header + 2 full records + 11 stray bytes of the third.
    resizeFile(path, TraceFileHeader::kV2Bytes + 2 * 24 + 11);
    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    VectorSink sink;
    std::uint64_t replayed = 0;
    const Status s = reader.value()->replayInto(sink, &replayed);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    // The diagnostic names the expected and actual record counts.
    EXPECT_NE(s.message().find("expected 4"), std::string::npos);
    EXPECT_NE(s.message().find("2 complete records"), std::string::npos);
    EXPECT_EQ(replayed, 2u); // the complete prefix was delivered
    std::remove(path.c_str());
}

TEST(TraceIoStatus, RecordCountMismatchIsReported)
{
    const std::string path = writeSmallTrace("status_count");
    // Cut cleanly at a record boundary: indistinguishable from EOF
    // without the header cross-check.
    resizeFile(path, TraceFileHeader::kV2Bytes + 3 * 24);
    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    VectorSink sink;
    const Status s = reader.value()->replayInto(sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_NE(s.message().find("expected 4"), std::string::npos);
    EXPECT_NE(s.message().find("holds 3"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoStatus, ChecksumMismatchIsReported)
{
    const std::string path = writeSmallTrace("status_bitrot");
    // Flip a bit inside the second record's address field: the record
    // still parses, so only the checksum can catch it.
    flipByte(path,
             static_cast<long>(TraceFileHeader::kV2Bytes + 24 + 8));
    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    VectorSink sink;
    const Status s = reader.value()->replayInto(sink);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoStatus, V1TracesRemainReadable)
{
    const std::string path = tempTracePath("status_v1");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // A v1 header is the 16-byte prefix only: magic, version, count.
    const std::uint32_t magic = TraceFileHeader::kMagic;
    const std::uint32_t version = TraceFileHeader::kVersionV1;
    const std::uint64_t count = 2;
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&count, sizeof(count), 1, f);
    for (std::uint64_t i = 0; i < count; ++i) {
        RawDiskRecord rec;
        rec.pc = 0x400000 + 4 * i;
        rec.addr = 64 * i;
        rec.kind = static_cast<std::uint8_t>(InstKind::Load);
        rec.size = 8;
        std::fwrite(&rec, sizeof(rec), 1, f);
    }
    std::fclose(f);

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.value()->version(), TraceFileHeader::kVersionV1);
    EXPECT_EQ(reader.value()->numRecords(), count);
    VectorSink sink;
    std::uint64_t replayed = 0;
    EXPECT_TRUE(reader.value()->replayInto(sink, &replayed).ok());
    EXPECT_EQ(replayed, count);
    std::remove(path.c_str());
}

/** RAII: force the reader's pipelined path on for one test. */
struct ForcePipeline
{
    ForcePipeline() { setenv("CACHESCOPE_TRACE_PIPELINE", "1", 1); }
    ~ForcePipeline() { unsetenv("CACHESCOPE_TRACE_PIPELINE"); }
};

TEST(TraceIoPipelined, MatchesSynchronousRead)
{
    // Multiple chunks' worth of records read through the producer
    // thread must replay identically to the synchronous path.
    const std::string path = tempTracePath("pipe_ok");
    const std::uint64_t count = 10'000; // ~3 chunks of 4096
    {
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < count; ++i)
            writer.onInstruction(
                TraceRecord::load(0x400000 + 4 * i, 64 * (i % 977), 8));
        writer.onEnd();
    }
    VectorSink sync_sink;
    {
        TraceReader reader(path);
        ASSERT_TRUE(reader.replayInto(sync_sink).ok());
    }
    VectorSink pipe_sink;
    {
        ForcePipeline force;
        TraceReader reader(path);
        ASSERT_TRUE(reader.replayInto(pipe_sink).ok());
    }
    ASSERT_EQ(pipe_sink.records.size(), sync_sink.records.size());
    for (std::size_t i = 0; i < sync_sink.records.size(); ++i)
        EXPECT_EQ(pipe_sink.records[i], sync_sink.records[i]);
    std::remove(path.c_str());
}

TEST(TraceIoPipelined, TruncationStillDetected)
{
    const std::string path = tempTracePath("pipe_trunc");
    const std::uint64_t count = 10'000;
    {
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < count; ++i)
            writer.onInstruction(TraceRecord::alu(0x400000 + 4 * i));
        writer.onEnd();
    }
    resizeFile(path, 24 + 5000 * 24 + 11); // mid-record tear
    ForcePipeline force;
    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    VectorSink sink;
    const Status s = reader.value()->replayInto(sink);
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_NE(s.message().find("truncated mid-record"), std::string::npos);
    EXPECT_EQ(sink.records.size(), 5000u);
    std::remove(path.c_str());
}

TEST(TraceIoPipelined, ChecksumMismatchStillDetected)
{
    const std::string path = tempTracePath("pipe_flip");
    const std::uint64_t count = 10'000;
    {
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < count; ++i)
            writer.onInstruction(TraceRecord::alu(0x400000 + 4 * i));
        writer.onEnd();
    }
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24 + 7777 * 24 + 2, SEEK_SET);
    std::fputc(0x5a, f);
    std::fclose(f);
    ForcePipeline force;
    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    VectorSink sink;
    const Status s = reader.value()->replayInto(sink);
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoPipelined, EarlyDestructionJoinsReader)
{
    // Destroying the reader mid-stream (consumer stopped early) must
    // shut the producer thread down cleanly, not hang or leak.
    const std::string path = tempTracePath("pipe_abort");
    {
        TraceWriter writer(path);
        for (std::uint64_t i = 0; i < 10'000; ++i)
            writer.onInstruction(TraceRecord::alu(0x400000 + 4 * i));
        writer.onEnd();
    }
    ForcePipeline force;
    {
        TraceReader reader(path);
        TraceRecord rec;
        for (int i = 0; i < 100; ++i)
            ASSERT_TRUE(reader.next(rec));
        // reader destroyed with ~9900 records unconsumed
    }
    std::remove(path.c_str());
}

TEST(TraceIoStatus, V2TracesRemainReadableWithSerialChecksum)
{
    // The writer emits v3 (8-lane digest) now, so the v2 read path —
    // byte-serial Checksum64 verification — needs a hand-crafted file.
    const std::string path = tempTracePath("status_v2");
    const std::uint64_t count = 3;
    std::vector<RawDiskRecord> recs(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        recs[i].pc = 0x400000 + 4 * i;
        recs[i].addr = 64 * i;
        recs[i].kind = static_cast<std::uint8_t>(InstKind::Load);
        recs[i].size = 8;
    }
    Checksum64 digest;
    digest.update(recs.data(), count * sizeof(RawDiskRecord));

    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::uint32_t magic = TraceFileHeader::kMagic;
    const std::uint32_t version = TraceFileHeader::kVersionV2;
    const std::uint64_t checksum = digest.digest();
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&count, sizeof(count), 1, f);
    std::fwrite(&checksum, sizeof(checksum), 1, f);
    std::fwrite(recs.data(), sizeof(RawDiskRecord), count, f);
    std::fclose(f);

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.value()->version(), TraceFileHeader::kVersionV2);
    VectorSink sink;
    std::uint64_t replayed = 0;
    EXPECT_TRUE(reader.value()->replayInto(sink, &replayed).ok());
    EXPECT_EQ(replayed, count);

    // A flipped record byte must still fail v2 verification.
    f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24 + 3, SEEK_SET);
    std::fputc(0x7e, f);
    std::fclose(f);
    auto reread = TraceReader::open(path);
    ASSERT_TRUE(reread.ok());
    VectorSink sink2;
    const Status s = reread.value()->replayInto(sink2);
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoStatus, V1TruncationStillDetectedViaRecordCount)
{
    const std::string path = tempTracePath("status_v1_short");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    const std::uint32_t magic = TraceFileHeader::kMagic;
    const std::uint32_t version = TraceFileHeader::kVersionV1;
    const std::uint64_t count = 5; // promises 5, delivers 1
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&count, sizeof(count), 1, f);
    RawDiskRecord rec;
    rec.kind = static_cast<std::uint8_t>(InstKind::Alu);
    std::fwrite(&rec, sizeof(rec), 1, f);
    std::fclose(f);

    auto reader = TraceReader::open(path);
    ASSERT_TRUE(reader.ok());
    VectorSink sink;
    EXPECT_EQ(reader.value()->replayInto(sink).code(),
              StatusCode::Corruption);
    std::remove(path.c_str());
}

TEST(TraceIoStatus, WriterOpenReportsBadPath)
{
    auto writer = TraceWriter::open("/nonexistent/dir/out.trace");
    ASSERT_FALSE(writer.ok());
    EXPECT_EQ(writer.status().code(), StatusCode::IoError);
}

TEST(TraceIoStatus, WriterFinishReportsSuccess)
{
    const std::string path = tempTracePath("status_finish");
    auto writer = TraceWriter::open(path);
    ASSERT_TRUE(writer.ok());
    writer.value()->onInstruction(TraceRecord::alu(1));
    EXPECT_TRUE(writer.value()->finish().ok());
    EXPECT_EQ(writer.value()->recordsWritten(), 1u);
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, RejectsGarbageFile)
{
    const std::string path = tempTracePath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader reader(path), ::testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, RejectsMissingFile)
{
    EXPECT_EXIT(TraceReader reader("/nonexistent/path/x.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(PcRegion, DisjointPerWorkload)
{
    PcRegion r0(0), r1(1);
    EXPECT_NE(r0.regionBase(), r1.regionBase());
    EXPECT_GE(r1.regionBase(), r0.regionBase() + PcRegion::kRegionBytes);
}

TEST(PcRegion, AllocationIsStableAndSpaced)
{
    PcRegion r(3);
    const Pc first = r.allocate();
    const Pc second = r.allocate();
    EXPECT_EQ(second, first + 4);
    EXPECT_EQ(r.pc(0), first);
    EXPECT_EQ(r.pc(1), second);
}

TEST(AddressSpace, PageAlignedDisjointRegions)
{
    AddressSpace space;
    const Addr a = space.allocate(100);
    const Addr b = space.allocate(5000);
    const Addr c = space.allocate(1);
    EXPECT_EQ(a % AddressSpace::kPageBytes, 0u);
    EXPECT_EQ(b % AddressSpace::kPageBytes, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(c, b + 5000);
    EXPECT_GT(space.bytesAllocated(), 0u);
}

TEST(TracedArray, EmitsLoadAndStoreRecords)
{
    AddressSpace space;
    VectorSink sink;
    TracedArray<std::uint32_t> arr(16, space, sink, 7);

    EXPECT_EQ(arr.load(3, /*pc=*/0x400000), 7u);
    arr.store(3, 42, /*pc=*/0x400004);
    EXPECT_EQ(arr.load(3, 0x400000), 42u);

    ASSERT_EQ(sink.records.size(), 3u);
    EXPECT_EQ(sink.records[0].kind, InstKind::Load);
    EXPECT_EQ(sink.records[0].addr, arr.addressOf(3));
    EXPECT_EQ(sink.records[0].size, sizeof(std::uint32_t));
    EXPECT_EQ(sink.records[1].kind, InstKind::Store);
    EXPECT_EQ(sink.records[1].pc, 0x400004u);
}

TEST(TracedArray, RawAccessEmitsNothing)
{
    AddressSpace space;
    VectorSink sink;
    TracedArray<int> arr(4, space, sink, 0);
    arr.raw(2) = 5;
    EXPECT_EQ(arr.raw(2), 5);
    EXPECT_TRUE(sink.records.empty());
}

TEST(TracedArray, AddressesAreContiguous)
{
    AddressSpace space;
    VectorSink sink;
    TracedArray<std::uint64_t> arr(8, space, sink);
    for (std::size_t i = 0; i + 1 < arr.size(); ++i)
        EXPECT_EQ(arr.addressOf(i + 1), arr.addressOf(i) + 8);
}

TEST(InstructionMix, EmitsRequestedCounts)
{
    CountingSink sink;
    InstructionMix mix(sink);
    mix.alu(0x400000, 5);
    mix.branch(0x400004);
    EXPECT_EQ(sink.alu, 5u);
    EXPECT_EQ(sink.branches, 1u);
}

// ----------------------------------------------------------- profiler --

TEST(PcProfiler, IgnoresNonMemory)
{
    PcProfiler prof;
    prof.onInstruction(TraceRecord::alu(1));
    prof.onInstruction(TraceRecord::branch(2));
    const auto s = prof.summarize();
    EXPECT_EQ(s.memoryAccesses, 0u);
    EXPECT_EQ(s.distinctMemoryPcs, 0u);
}

TEST(PcProfiler, CountsFanout)
{
    PcProfiler prof(/*block_bits=*/6);
    // PC 100 touches 3 distinct blocks (addresses 0, 64, 128), twice
    // each; PC 200 touches one block 4 times.
    for (int rep = 0; rep < 2; ++rep)
        for (Addr a : {0, 64, 128})
            prof.onInstruction(TraceRecord::load(100, a));
    for (int rep = 0; rep < 4; ++rep)
        prof.onInstruction(TraceRecord::load(200, 0x10000));

    const auto rows = prof.fanouts();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].pc, 100u); // more accesses first
    EXPECT_EQ(rows[0].accesses, 6u);
    EXPECT_EQ(rows[0].distinctBlocks, 3u);
    EXPECT_EQ(rows[1].distinctBlocks, 1u);

    const auto s = prof.summarize();
    EXPECT_EQ(s.memoryAccesses, 10u);
    EXPECT_EQ(s.distinctMemoryPcs, 2u);
    EXPECT_DOUBLE_EQ(s.meanBlocksPerPc, 2.0);
    EXPECT_EQ(s.maxBlocksPerPc, 3u);
}

TEST(PcProfiler, SameBlockDifferentOffsetsCountsOnce)
{
    PcProfiler prof(6);
    prof.onInstruction(TraceRecord::load(1, 0));
    prof.onInstruction(TraceRecord::load(1, 63));
    const auto rows = prof.fanouts();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].distinctBlocks, 1u);
}

TEST(PcProfiler, EntropyZeroForSinglePc)
{
    PcProfiler prof;
    for (int i = 0; i < 8; ++i)
        prof.onInstruction(TraceRecord::load(1, i * 64));
    EXPECT_DOUBLE_EQ(prof.summarize().pcEntropyBits, 0.0);
}

TEST(PcProfiler, EntropyMaxForUniformPcs)
{
    PcProfiler prof;
    for (Pc pc = 0; pc < 8; ++pc)
        for (int i = 0; i < 10; ++i)
            prof.onInstruction(TraceRecord::load(pc * 4 + 0x400000, 0));
    EXPECT_NEAR(prof.summarize().pcEntropyBits, 3.0, 1e-9);
}

TEST(PcProfiler, PcsFor90Pct)
{
    PcProfiler prof;
    // One PC does 90 of 100 accesses; covering 90 % needs only it.
    for (int i = 0; i < 90; ++i)
        prof.onInstruction(TraceRecord::load(1, i * 64));
    for (int i = 0; i < 10; ++i)
        prof.onInstruction(TraceRecord::load(2, i * 64));
    EXPECT_EQ(prof.summarize().pcsFor90PctAccesses, 1u);
}

} // namespace
} // namespace cachescope
