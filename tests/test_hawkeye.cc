/**
 * @file
 * Unit tests for OPTgen and Hawkeye: occupancy-vector decisions,
 * predictor training, insertion, aging and detraining.
 */

#include <gtest/gtest.h>

#include "replacement/hawkeye.hh"
#include "replacement/optgen.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

using test::smallGeometry;

// --------------------------------------------------------------- OptGen --

TEST(OptGen, FirstTouchIsMiss)
{
    OptGen optgen(/*capacity=*/2, /*vector_size=*/16);
    optgen.accessFirstTouch(optgen.nextQuanta());
    EXPECT_EQ(optgen.optHits(), 0u);
    EXPECT_EQ(optgen.optAccesses(), 1u);
}

TEST(OptGen, ReuseWithinCapacityHits)
{
    OptGen optgen(2, 16);
    const std::uint64_t t0 = optgen.nextQuanta();
    optgen.accessFirstTouch(t0); // A
    const std::uint64_t t1 = optgen.nextQuanta();
    EXPECT_TRUE(optgen.accessWithHistory(t1, t0)); // A again: OPT hit
    EXPECT_EQ(optgen.optHits(), 1u);
}

TEST(OptGen, CapacityExhaustionMisses)
{
    // Capacity 1: A B A cannot keep A cached while B passes through...
    // actually OPT evicts B (never reused), so A still hits. The miss
    // case needs two overlapping liveness intervals: A B A B.
    OptGen optgen(1, 16);
    const std::uint64_t a0 = optgen.nextQuanta();
    optgen.accessFirstTouch(a0); // A
    const std::uint64_t b0 = optgen.nextQuanta();
    optgen.accessFirstTouch(b0); // B
    const std::uint64_t a1 = optgen.nextQuanta();
    EXPECT_TRUE(optgen.accessWithHistory(a1, a0)); // A: hit, occupies [a0,a1)
    const std::uint64_t b1 = optgen.nextQuanta();
    // B's interval [b0, b1) overlaps quantum b0..a1 where occupancy is
    // already 1 = capacity: OPT must miss one of them.
    EXPECT_FALSE(optgen.accessWithHistory(b1, b0));
    EXPECT_EQ(optgen.optHits(), 1u);
    EXPECT_EQ(optgen.optAccesses(), 4u);
}

TEST(OptGen, HigherCapacityKeepsBoth)
{
    OptGen optgen(2, 16);
    const std::uint64_t a0 = optgen.nextQuanta();
    optgen.accessFirstTouch(a0);
    const std::uint64_t b0 = optgen.nextQuanta();
    optgen.accessFirstTouch(b0);
    EXPECT_TRUE(optgen.accessWithHistory(optgen.nextQuanta(), a0));
    EXPECT_TRUE(optgen.accessWithHistory(optgen.nextQuanta(), b0));
    EXPECT_EQ(optgen.optHits(), 2u);
}

TEST(OptGen, IntervalBeyondWindowIsMiss)
{
    OptGen optgen(4, 8);
    const std::uint64_t t0 = optgen.nextQuanta();
    optgen.accessFirstTouch(t0);
    for (int i = 0; i < 10; ++i)
        optgen.accessFirstTouch(optgen.nextQuanta());
    EXPECT_FALSE(optgen.accessWithHistory(optgen.nextQuanta(), t0));
}

TEST(OptGen, BeladyLikeOnCyclicPattern)
{
    // Cyclic scan of 3 blocks through capacity 2. OPTgen models OPT
    // *with bypass* (an access need not be cached), so the optimum is
    // to pin two blocks and let the third always miss: hit rate 2/3 —
    // higher than install-always OPT's 1/2 on this pattern.
    OptGen optgen(2, 64);
    std::uint64_t last[3] = {0, 0, 0};
    bool seen[3] = {false, false, false};
    int hits = 0, total = 0;
    for (int i = 0; i < 300; ++i) {
        const int blk = i % 3;
        const std::uint64_t q = optgen.nextQuanta();
        if (seen[blk]) {
            hits += optgen.accessWithHistory(q, last[blk]);
            ++total;
        } else {
            optgen.accessFirstTouch(q);
            seen[blk] = true;
        }
        last[blk] = q;
    }
    const double rate = static_cast<double>(hits) / total;
    EXPECT_NEAR(rate, 2.0 / 3.0, 0.05);
}

// ------------------------------------------------------------ OptSampler --

TEST(OptSampler, RecordsAndLooksUp)
{
    OptSampler sampler(4);
    OptSampler::Entry e;
    EXPECT_FALSE(sampler.lookup(0x100, e));
    sampler.record(0x100, 5, 0x400000);
    ASSERT_TRUE(sampler.lookup(0x100, e));
    EXPECT_EQ(e.lastQuanta, 5u);
    EXPECT_EQ(e.lastPc, 0x400000u);
}

TEST(OptSampler, BoundedEvictsOldest)
{
    OptSampler sampler(2);
    sampler.record(0xA, 1, 0);
    sampler.record(0xB, 2, 0);
    sampler.record(0xC, 3, 0); // evicts 0xA (oldest)
    OptSampler::Entry e;
    EXPECT_FALSE(sampler.lookup(0xA, e));
    EXPECT_TRUE(sampler.lookup(0xB, e));
    EXPECT_TRUE(sampler.lookup(0xC, e));
    EXPECT_EQ(sampler.size(), 2u);
}

TEST(OptSampler, ExpireDropsStaleEntries)
{
    OptSampler sampler(16);
    sampler.record(0xA, 1, 0);
    sampler.record(0xB, 100, 0);
    sampler.expireBefore(50);
    OptSampler::Entry e;
    EXPECT_FALSE(sampler.lookup(0xA, e));
    EXPECT_TRUE(sampler.lookup(0xB, e));
}

// -------------------------------------------------------------- Hawkeye --

TEST(Hawkeye, StartsPredictingFriendly)
{
    HawkeyePolicy hawkeye(smallGeometry(64, 4));
    EXPECT_TRUE(hawkeye.predictsFriendly(0x400000));
}

TEST(Hawkeye, FriendlyFillInsertsAtZero)
{
    HawkeyePolicy hawkeye(smallGeometry(64, 4));
    hawkeye.update(1, 0, 0x400000, 1, AccessType::Load, false);
    EXPECT_EQ(hawkeye.rrpvOf(1, 0), 0);
}

TEST(Hawkeye, SampledSetsAreSpreadOut)
{
    HawkeyePolicy hawkeye({2048, 11, 64});
    int sampled = 0;
    for (std::uint32_t s = 0; s < 2048; ++s)
        sampled += hawkeye.isSampledSet(s);
    EXPECT_EQ(sampled, 64);
}

TEST(Hawkeye, StreamingPcBecomesAverse)
{
    // Drive a sampled set with a long no-reuse stream from one PC:
    // OPTgen sees only first touches... training happens on the
    // *previous* access to the same block, so stream the same blocks
    // in a pattern whose liveness intervals overflow capacity.
    HawkeyePolicy hawkeye(smallGeometry(64, 4));
    const std::uint32_t sampled_set = 0; // stride = 1 for 64 sets
    ASSERT_TRUE(hawkeye.isSampledSet(sampled_set));
    const Pc pc = 0x400010;

    // Cyclic pattern over 16 blocks with capacity 4: OPT misses most,
    // so pc trains toward averse.
    for (int round = 0; round < 24; ++round) {
        for (Addr blk = 0; blk < 16; ++blk) {
            hawkeye.update(sampled_set, static_cast<std::uint32_t>(blk % 4),
                           pc, 0x1000 + blk, AccessType::Load, false);
        }
    }
    EXPECT_FALSE(hawkeye.predictsFriendly(pc));

    // An averse fill goes straight to max RRPV.
    hawkeye.update(1, 2, pc, 0x9999, AccessType::Load, false);
    EXPECT_EQ(hawkeye.rrpvOf(1, 2), HawkeyePolicy::kMaxRrpv);
}

TEST(Hawkeye, TightReusePcStaysFriendly)
{
    HawkeyePolicy hawkeye(smallGeometry(64, 4));
    const Pc pc = 0x400020;
    // Two blocks ping-ponging: OPT always hits with capacity 4.
    for (int i = 0; i < 100; ++i) {
        hawkeye.update(0, static_cast<std::uint32_t>(i % 2), pc,
                       0x2000 + (i % 2), AccessType::Load, i >= 2);
    }
    EXPECT_TRUE(hawkeye.predictsFriendly(pc));
    EXPECT_GT(hawkeye.optgenHits(), 50u);
}

TEST(Hawkeye, VictimPrefersAverseLines)
{
    HawkeyePolicy hawkeye(smallGeometry(64, 4));
    // Fill ways 0..2 friendly (default prediction), then hand-plant an
    // averse line by writeback (always inserted averse, rrpv max).
    hawkeye.update(1, 0, 0x400000, 1, AccessType::Load, false);
    hawkeye.update(1, 1, 0x400004, 2, AccessType::Load, false);
    hawkeye.update(1, 2, 0x400008, 3, AccessType::Load, false);
    hawkeye.update(1, 3, 0, 4, AccessType::Writeback, false);
    EXPECT_EQ(hawkeye.findVictim(1, 0x400100, 9, AccessType::Load), 3u);
}

TEST(Hawkeye, EvictingFriendlyLineDetrainsItsPc)
{
    HawkeyePolicy hawkeye(smallGeometry(64, 4));
    const Pc victim_pc = 0x400030;
    // Fill the whole (unsampled) set with friendly lines from one PC.
    for (std::uint32_t w = 0; w < 4; ++w)
        hawkeye.update(1, w, victim_pc, w, AccessType::Load, false);
    // Repeatedly forcing evictions of friendly lines must eventually
    // flip the PC to averse (counter decremented each time).
    for (int i = 0; i < 16 && hawkeye.predictsFriendly(victim_pc); ++i) {
        const std::uint32_t v =
            hawkeye.findVictim(1, 0x400FF0, 100 + i, AccessType::Load);
        hawkeye.update(1, v, victim_pc, 100 + i, AccessType::Load, false);
    }
    EXPECT_FALSE(hawkeye.predictsFriendly(victim_pc));
}

TEST(Hawkeye, FriendlyInsertionAgesPeers)
{
    HawkeyePolicy hawkeye(smallGeometry(64, 4));
    hawkeye.update(1, 0, 0x400000, 1, AccessType::Load, false);
    const std::uint8_t before = hawkeye.rrpvOf(1, 0);
    hawkeye.update(1, 1, 0x400004, 2, AccessType::Load, false);
    EXPECT_EQ(hawkeye.rrpvOf(1, 0), before + 1);
    // Aging saturates below the averse level.
    for (int i = 0; i < 20; ++i)
        hawkeye.update(1, 2, 0x400008, 3 + i, AccessType::Load, false);
    EXPECT_LE(hawkeye.rrpvOf(1, 0), HawkeyePolicy::kMaxRrpv - 1);
}

} // namespace
} // namespace cachescope
