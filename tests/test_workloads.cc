/**
 * @file
 * Tests for the synthetic SPEC-like workloads: stream shape per
 * pattern, determinism, budget handling, and suite assembly.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "test_helpers.hh"
#include "trace/pc_site.hh"
#include "trace/profile.hh"
#include "trace/traced_memory.hh"
#include "workloads/synthetic.hh"

namespace cachescope {
namespace {

using test::BoundedSink;
using test::HashingSink;
using test::VectorSink;

const std::vector<SynthPattern> &
allPatterns()
{
    static const std::vector<SynthPattern> patterns = {
        SynthPattern::StreamTriad, SynthPattern::ScanThrash,
        SynthPattern::HotCold, SynthPattern::PointerChase,
        SynthPattern::Stencil2D, SynthPattern::MixedPhase,
        SynthPattern::DeadFill, SynthPattern::GatherZipf,
        SynthPattern::TreeSearch, SynthPattern::SmallWs};
    return patterns;
}

SynthParams
tinyParams()
{
    SynthParams p;
    p.mainBytes = 256 * 1024;
    p.hotBytes = 32 * 1024;
    p.phaseOps = 4096;
    return p;
}

class SynthPatternTest : public ::testing::TestWithParam<SynthPattern>
{};

TEST_P(SynthPatternTest, RunsToBudgetAndStops)
{
    SyntheticWorkload w("t", GetParam(), tinyParams());
    BoundedSink sink(200000);
    w.run(sink);
    EXPECT_EQ(sink.consumed, 200000u);
    EXPECT_LT(sink.overflow, 100000u);
}

TEST_P(SynthPatternTest, StreamIsDeterministic)
{
    SyntheticWorkload w1("t", GetParam(), tinyParams());
    SyntheticWorkload w2("t", GetParam(), tinyParams());
    // Use bounded+hash: run the same budget twice.
    struct BoundedHash : HashingSink
    {
        bool wantsMore() const override { return count < 100000; }
    } a, b;
    w1.run(a);
    w2.run(b);
    EXPECT_EQ(a.hash, b.hash);
}

TEST_P(SynthPatternTest, EmitsAllInstructionKinds)
{
    SyntheticWorkload w("t", GetParam(), tinyParams());
    struct BoundedCount : CountingSink
    {
        bool wantsMore() const override { return total < 100000; }
    } sink;
    w.run(sink);
    EXPECT_GT(sink.loads + sink.stores, 0u);
    EXPECT_GT(sink.alu, 0u);
    EXPECT_GT(sink.branches, 0u);
}

TEST_P(SynthPatternTest, ManyPcsModestFanout)
{
    // The contrast to the graph kernels: synthetic SPEC-like kernels
    // must expose learnable per-PC behaviour. We check the milder
    // property that they have at least a handful of PCs (TreeSearch
    // has dozens) and that accesses stay inside allocated regions.
    SyntheticWorkload w("t", GetParam(), tinyParams());
    struct BoundedProf : PcProfiler
    {
        bool wantsMore() const override { return done < 200000; }
        void
        onInstruction(const TraceRecord &rec) override
        {
            PcProfiler::onInstruction(rec);
            ++done;
        }
        std::uint64_t done = 0;
    } profiler;
    w.run(profiler);
    const auto s = profiler.summarize();
    EXPECT_GE(s.distinctMemoryPcs, 1u);
    EXPECT_GT(s.memoryAccesses, 10000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, SynthPatternTest, ::testing::ValuesIn(allPatterns()),
    [](const ::testing::TestParamInfo<SynthPattern> &info) {
        return synthPatternName(info.param);
    });

TEST(SynthPatterns, PointerChaseIsFullCycle)
{
    // The chase must not collapse into a short loop: within a budget
    // smaller than the element count, no address repeats.
    SynthParams p = tinyParams();
    p.mainBytes = 64 * 1024; // 8192 elements
    SyntheticWorkload w("t", SynthPattern::PointerChase, p);
    struct ChaseSink : InstructionSink
    {
        void
        onInstruction(const TraceRecord &rec) override
        {
            if (rec.kind == InstKind::Load)
                addrs.push_back(rec.addr);
        }
        bool wantsMore() const override { return addrs.size() < 4000; }
        std::vector<Addr> addrs;
    } sink;
    w.run(sink);
    std::unordered_set<Addr> unique(sink.addrs.begin(), sink.addrs.end());
    EXPECT_EQ(unique.size(), sink.addrs.size());
}

TEST(SynthPatterns, HotColdRatioRoughlyHonoured)
{
    SynthParams p = tinyParams();
    p.hotFraction = 0.8;
    SyntheticWorkload w("t", SynthPattern::HotCold, p);
    struct Split : InstructionSink
    {
        void
        onInstruction(const TraceRecord &rec) override
        {
            if (rec.kind != InstKind::Load)
                return;
            ++total;
            // The hot array is allocated first, at the heap base.
            if (rec.addr < AddressSpace::kHeapBase + 32 * 1024 + 4096)
                ++hot;
        }
        bool wantsMore() const override { return total < 50000; }
        std::uint64_t total = 0, hot = 0;
    } sink;
    w.run(sink);
    EXPECT_NEAR(static_cast<double>(sink.hot) /
                static_cast<double>(sink.total), 0.8, 0.05);
}

TEST(SynthPatterns, ScanThrashTouchesEveryBlockCyclically)
{
    SynthParams p = tinyParams();
    p.mainBytes = 64 * 1024;
    SyntheticWorkload w("t", SynthPattern::ScanThrash, p);
    VectorSink all;
    struct Bounded : InstructionSink
    {
        explicit Bounded(VectorSink &v) : v(v) {}
        void
        onInstruction(const TraceRecord &rec) override
        {
            v.records.push_back(rec);
        }
        bool wantsMore() const override { return v.records.size() < 50000; }
        VectorSink &v;
    } sink(all);
    w.run(sink);
    std::set<Addr> blocks;
    for (const auto &rec : all.records)
        if (rec.kind == InstKind::Load)
            blocks.insert(rec.addr >> 6);
    EXPECT_EQ(blocks.size(), 64u * 1024 / 64);
}

TEST(SynthPatterns, DeadFillStoresAreNeverReloaded)
{
    SyntheticWorkload w("t", SynthPattern::DeadFill, tinyParams());
    struct Watch : InstructionSink
    {
        void
        onInstruction(const TraceRecord &rec) override
        {
            ++n;
            if (rec.kind == InstKind::Store)
                stored.insert(rec.addr >> 6);
            if (rec.kind == InstKind::Load) {
                EXPECT_EQ(stored.count(rec.addr >> 6), 0u);
            }
        }
        bool wantsMore() const override { return n < 100000; }
        std::uint64_t n = 0;
        std::unordered_set<Addr> stored;
    } sink;
    w.run(sink);
}

TEST(SynthPatterns, TreeSearchUsesLevelPcs)
{
    SyntheticWorkload w("t", SynthPattern::TreeSearch, tinyParams());
    struct BoundedProf : PcProfiler
    {
        bool wantsMore() const override { return done < 100000; }
        void
        onInstruction(const TraceRecord &rec) override
        {
            PcProfiler::onInstruction(rec);
            ++done;
        }
        std::uint64_t done = 0;
    } prof;
    w.run(prof);
    // One PC per level: with 16K nodes the tree has 14 levels.
    EXPECT_GE(prof.summarize().distinctMemoryPcs, 10u);
}

TEST(Suites, Spec06HasFourteenUniqueNames)
{
    const auto suite = makeSpec06Suite();
    ASSERT_EQ(suite.size(), 14u);
    std::set<std::string> names;
    for (const auto &w : suite) {
        EXPECT_EQ(w->name().rfind("spec06.", 0), 0u) << w->name();
        names.insert(w->name());
    }
    EXPECT_EQ(names.size(), 14u);
}

TEST(Suites, Spec17HasFourteenUniqueNames)
{
    const auto suite = makeSpec17Suite();
    ASSERT_EQ(suite.size(), 14u);
    std::set<std::string> names;
    for (const auto &w : suite)
        names.insert(w->name());
    EXPECT_EQ(names.size(), 14u);
    EXPECT_TRUE(names.count("spec17.scan_thrash"));
}

TEST(Suites, PcRegionsDoNotOverlapAcrossSuites)
{
    // spec06 ids start at 100, spec17 at 200; GAP suites at 0. A
    // paranoid check that the factory defaults keep them disjoint.
    const auto s06 = makeSpec06Suite();
    const auto s17 = makeSpec17Suite();
    auto region_of = [](Workload &w) {
        struct One : InstructionSink
        {
            void
            onInstruction(const TraceRecord &rec) override
            {
                if (pc == 0)
                    pc = rec.pc;
            }
            bool wantsMore() const override { return pc == 0; }
            Pc pc = 0;
        } sink;
        w.run(sink);
        return sink.pc / PcRegion::kRegionBytes;
    };
    std::set<Pc> regions;
    for (const auto &w : s06)
        regions.insert(region_of(*w));
    for (const auto &w : s17)
        regions.insert(region_of(*w));
    EXPECT_EQ(regions.size(), s06.size() + s17.size());
}

} // namespace
} // namespace cachescope
