/**
 * @file
 * Unit tests for the DDR4 model: address mapping, row-buffer timing,
 * bank and bus contention, and statistics.
 */

#include <gtest/gtest.h>

#include "dram/dram.hh"

namespace cachescope {
namespace {

DramConfig
tinyConfig()
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 1;
    cfg.banksPerRank = 4;
    cfg.rowBytes = 1024;
    cfg.blockBytes = 64;
    cfg.tCas = 10;
    cfg.tRcd = 10;
    cfg.tRp = 10;
    cfg.tBurst = 4;
    cfg.tController = 2;
    return cfg;
}

TEST(DramConfig, Ddr4FactoryScalesWithFrequency)
{
    const DramConfig at4 = DramConfig::ddr4_2933(4.0);
    const DramConfig at2 = DramConfig::ddr4_2933(2.0);
    EXPECT_EQ(at4.capacityBytes, 8ull << 30);
    EXPECT_NEAR(static_cast<double>(at4.tCas),
                2.0 * static_cast<double>(at2.tCas), 1.0);
    EXPECT_GT(at4.tCas, 0u);
    EXPECT_GT(at4.tBurst, 0u);
}

TEST(DramMap, DecompositionRoundTrips)
{
    DramModel dram(tinyConfig());
    // blocks per row = 16; banks = 4.
    const auto m0 = dram.map(0);
    EXPECT_EQ(m0.channel, 0u);
    EXPECT_EQ(m0.bank, 0u);
    EXPECT_EQ(m0.row, 0u);
    EXPECT_EQ(m0.column, 0u);

    // Next block: same row, next column.
    const auto m1 = dram.map(64);
    EXPECT_EQ(m1.bank, m0.bank);
    EXPECT_EQ(m1.row, m0.row);
    EXPECT_EQ(m1.column, 1u);

    // One full row later: next bank.
    const auto m2 = dram.map(1024);
    EXPECT_EQ(m2.bank, 1u);
    EXPECT_EQ(m2.row, 0u);

    // Past all banks: row increments.
    const auto m3 = dram.map(1024 * 4);
    EXPECT_EQ(m3.bank, 0u);
    EXPECT_EQ(m3.row, 1u);
}

TEST(DramTiming, RowMissThenHit)
{
    const DramConfig cfg = tinyConfig();
    DramModel dram(cfg);

    // First access to a closed bank: controller + tRCD + tCAS + burst.
    const Cycle done1 = dram.read(0, 0);
    EXPECT_EQ(done1, cfg.tController + cfg.tRcd + cfg.tCas + cfg.tBurst);
    EXPECT_EQ(dram.stats().rowMisses, 1u);

    // Same row, much later: row hit, no tRCD.
    const Cycle start = 1000;
    const Cycle done2 = dram.read(64, start);
    EXPECT_EQ(done2, start + cfg.tController + cfg.tCas + cfg.tBurst);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(DramTiming, RowConflictPaysPrecharge)
{
    const DramConfig cfg = tinyConfig();
    DramModel dram(cfg);
    dram.read(0, 0);
    // Same bank (bank stride = rowBytes), different row.
    const Cycle start = 1000;
    const Addr other_row = 1024 * 4; // bank 0, row 1
    const Cycle done = dram.read(other_row, start);
    EXPECT_EQ(done, start + cfg.tController + cfg.tRp + cfg.tRcd +
                        cfg.tCas + cfg.tBurst);
    EXPECT_EQ(dram.stats().rowConflicts, 1u);
}

TEST(DramTiming, OpenRowColumnsPipelineAtBurstRate)
{
    const DramConfig cfg = tinyConfig();
    DramModel dram(cfg);
    const Cycle done1 = dram.read(0, 0);
    // Back-to-back same-row request: the CAS pipelines behind the
    // first one and the data bus is the bottleneck.
    const Cycle done2 = dram.read(64, 0);
    EXPECT_EQ(done2, done1 + cfg.tBurst);
    // Sustained row-hit streaming stays bus-rate limited.
    Cycle prev = done2;
    for (int i = 2; i < 10; ++i) {
        const Cycle done = dram.read(static_cast<Addr>(i) * 64, 0);
        EXPECT_EQ(done, prev + cfg.tBurst);
        prev = done;
    }
}

TEST(DramTiming, RowConflictOccupiesTheBank)
{
    const DramConfig cfg = tinyConfig();
    DramModel dram(cfg);
    dram.read(0, 0); // opens row 0 of bank 0
    // Conflicting row in the same bank, then a hit to the new row:
    // the second request waits for precharge+activate of the first.
    const Cycle conflict_done = dram.read(1024 * 4, 0);
    const Cycle after = dram.read(1024 * 4 + 64, 0);
    EXPECT_GT(conflict_done, cfg.tRp + cfg.tRcd);
    EXPECT_GE(after, conflict_done);
}

TEST(DramTiming, DifferentBanksOverlap)
{
    const DramConfig cfg = tinyConfig();
    DramModel dram(cfg);
    const Cycle done1 = dram.read(0, 0);       // bank 0
    const Cycle done2 = dram.read(1024, 0);    // bank 1, same time
    // Bank 1 works in parallel; only the data bus serializes, so the
    // second finishes one burst after the first, not a full access.
    EXPECT_EQ(done2, done1 + cfg.tBurst);
}

TEST(DramTiming, LatencyMonotoneWithTime)
{
    DramModel dram(tinyConfig());
    Cycle prev = 0;
    for (int i = 0; i < 100; ++i) {
        const Cycle done = dram.read(static_cast<Addr>(i) * 64, prev);
        EXPECT_GT(done, prev);
        prev = done;
    }
}

TEST(DramStatsTest, CountsReadsWritesAndLatency)
{
    DramModel dram(tinyConfig());
    dram.read(0, 0);
    dram.write(64, 0);
    dram.write(128, 0);
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.reads, 1u);
    EXPECT_EQ(s.writes, 2u);
    EXPECT_EQ(s.accesses(), 3u);
    EXPECT_GT(s.avgLatency(), 0.0);
    EXPECT_GE(s.rowHitRate(), 0.0);
    EXPECT_LE(s.rowHitRate(), 1.0);
}

TEST(DramStatsTest, ResetClearsEverything)
{
    DramModel dram(tinyConfig());
    dram.read(0, 0);
    dram.reset();
    EXPECT_EQ(dram.stats().accesses(), 0u);
    // After reset the bank is closed again: a re-read is a row miss.
    dram.read(0, 0);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
}

TEST(DramStatsTest, ResetStatsKeepsBankState)
{
    DramModel dram(tinyConfig());
    dram.read(0, 1000);
    dram.resetStats();
    EXPECT_EQ(dram.stats().accesses(), 0u);
    // Row stays open across a stats reset: this access is a row hit.
    dram.read(64, 5000);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(DramTiming, StreamingGetsHighRowHitRate)
{
    DramModel dram(DramConfig::ddr4_2933());
    Cycle now = 0;
    for (Addr a = 0; a < 512 * 1024; a += 64)
        now = dram.read(a, now);
    EXPECT_GT(dram.stats().rowHitRate(), 0.9);
}

TEST(DramTiming, RandomAccessGetsLowRowHitRate)
{
    DramModel dram(DramConfig::ddr4_2933());
    Cycle now = 0;
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 4096; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        now = dram.read((x % (1ull << 30)) & ~Addr{63}, now);
    }
    EXPECT_LT(dram.stats().rowHitRate(), 0.2);
}

} // namespace
} // namespace cachescope
