/**
 * @file
 * Unit tests for the CPU timing model: dispatch/retire width limits,
 * load stalls, store-buffer semantics, ROB-bounded MLP, and fetch.
 */

#include <gtest/gtest.h>

#include "core/cascade_lake.hh"
#include "core/cpu_core.hh"

namespace cachescope {
namespace {

/** A tiny hierarchy with fast caches for deterministic latencies. */
HierarchyConfig
tinyHierarchy()
{
    SimConfig base = cascadeLakeConfig();
    HierarchyConfig h = base.hierarchy;
    // Shrink caches so misses are easy to provoke.
    h.l1d.sizeBytes = 4 * 1024;
    h.l1d.numWays = 4;
    h.l2.sizeBytes = 16 * 1024;
    h.l2.numWays = 4;
    h.llc.sizeBytes = 32 * 1024;
    h.llc.numWays = 4;
    return h;
}

CoreConfig
simpleCore(std::uint32_t rob = 32, std::uint32_t width = 4)
{
    CoreConfig cfg;
    cfg.robSize = rob;
    cfg.dispatchWidth = width;
    cfg.retireWidth = width;
    cfg.simulateFetch = false; // isolate data-path timing
    // Generous MSHRs so the ROB is the binding MLP limit in these
    // unit tests; the MSHR-specific test overrides this.
    cfg.maxOutstandingMisses = 64;
    return cfg;
}

TEST(CpuCore, AluStreamRunsAtDispatchWidth)
{
    CacheHierarchy hier(tinyHierarchy());
    CpuCore core(simpleCore(32, 4), hier);
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        core.onInstruction(TraceRecord::alu(0x400000));
    EXPECT_NEAR(core.stats().ipc(), 4.0, 0.1);
    EXPECT_EQ(core.stats().instructions, static_cast<InstCount>(n));
}

TEST(CpuCore, NarrowerDispatchIsSlower)
{
    CacheHierarchy h1(tinyHierarchy()), h2(tinyHierarchy());
    CpuCore wide(simpleCore(32, 4), h1);
    CpuCore narrow(simpleCore(32, 1), h2);
    for (int i = 0; i < 1000; ++i) {
        wide.onInstruction(TraceRecord::alu(0x400000));
        narrow.onInstruction(TraceRecord::alu(0x400000));
    }
    EXPECT_GT(wide.stats().ipc(), 2.0 * narrow.stats().ipc());
    EXPECT_NEAR(narrow.stats().ipc(), 1.0, 0.05);
}

TEST(CpuCore, LoadMissesStallRetirement)
{
    CacheHierarchy hier(tinyHierarchy());
    CpuCore core(simpleCore(), hier);
    // Interleave ALU work with loads streaming over a large footprint:
    // every load misses everywhere, IPC collapses well below width.
    for (int i = 0; i < 20000; ++i) {
        core.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 64));
        core.onInstruction(TraceRecord::alu(0x400014));
    }
    EXPECT_LT(core.stats().ipc(), 1.0);
    EXPECT_EQ(core.stats().loads, 20000u);
}

TEST(CpuCore, CacheHitsAreFasterThanMisses)
{
    CacheHierarchy h1(tinyHierarchy()), h2(tinyHierarchy());
    CpuCore hitting(simpleCore(), h1);
    CpuCore missing(simpleCore(), h2);
    for (int i = 0; i < 10000; ++i) {
        // Hitting core loops over 2 blocks; missing core streams.
        hitting.onInstruction(
            TraceRecord::load(0x400010, (i % 2) * 64));
        missing.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 64));
    }
    EXPECT_GT(hitting.stats().ipc(), 2.0 * missing.stats().ipc());
}

TEST(CpuCore, StoresDoNotStallRetirement)
{
    CacheHierarchy h1(tinyHierarchy()), h2(tinyHierarchy());
    CpuCore storing(simpleCore(), h1);
    CpuCore loading(simpleCore(), h2);
    for (int i = 0; i < 10000; ++i) {
        storing.onInstruction(
            TraceRecord::store(0x400010, static_cast<Addr>(i) * 64));
        loading.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 64));
    }
    // Both miss constantly, but stores retire through the store buffer.
    EXPECT_GT(storing.stats().ipc(), 2.0 * loading.stats().ipc());
    EXPECT_EQ(storing.stats().stores, 10000u);
    // The stores still produced cache traffic.
    EXPECT_GT(h1.l1d().stats().missesOf(AccessType::Store), 9000u);
}

TEST(CpuCore, BiggerRobExtractsMoreMlp)
{
    // Independent misses overlap within the ROB window; a larger ROB
    // must overlap more of them and finish faster.
    CacheHierarchy h1(tinyHierarchy()), h2(tinyHierarchy());
    CpuCore small(simpleCore(/*rob=*/8), h1);
    CpuCore large(simpleCore(/*rob=*/256), h2);
    // Page-strided misses: high per-access latency (row conflicts),
    // low bus utilization -> latency-bound, where run-ahead pays.
    for (int i = 0; i < 20000; ++i) {
        small.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 4096));
        large.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 4096));
    }
    EXPECT_GT(large.stats().ipc(), 1.2 * small.stats().ipc());
}

TEST(CpuCore, MshrsBoundMemoryLevelParallelism)
{
    // With a huge ROB, the MSHR count becomes the MLP limit: 2 vs 16
    // MSHRs on a miss stream must differ markedly in throughput.
    CoreConfig few = simpleCore(/*rob=*/256);
    few.maxOutstandingMisses = 2;
    CoreConfig many = simpleCore(/*rob=*/256);
    many.maxOutstandingMisses = 16;
    CacheHierarchy h1(tinyHierarchy()), h2(tinyHierarchy());
    CpuCore core_few(few, h1);
    CpuCore core_many(many, h2);
    for (int i = 0; i < 20000; ++i) {
        core_few.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 4096));
        core_many.onInstruction(
            TraceRecord::load(0x400010, static_cast<Addr>(i) * 4096));
    }
    EXPECT_GT(core_many.stats().ipc(), 2.0 * core_few.stats().ipc());
}

TEST(CpuCore, FetchMissesThrottleTheFrontend)
{
    CoreConfig with_fetch = simpleCore();
    with_fetch.simulateFetch = true;
    CacheHierarchy h1(tinyHierarchy()), h2(tinyHierarchy());
    CpuCore fetching(with_fetch, h1);
    CpuCore ideal(simpleCore(), h2);
    // Jump through PC space so every fetch block is new.
    for (int i = 0; i < 20000; ++i) {
        const Pc pc = 0x400000 + static_cast<Pc>(i) * 64;
        fetching.onInstruction(TraceRecord::alu(pc));
        ideal.onInstruction(TraceRecord::alu(pc));
    }
    EXPECT_LT(fetching.stats().ipc(), 0.8 * ideal.stats().ipc());
    EXPECT_GT(h1.l1i().stats().missesOf(AccessType::Load), 19000u);
}

TEST(CpuCore, SequentialCodeFetchesOncePerBlock)
{
    CoreConfig with_fetch = simpleCore();
    with_fetch.simulateFetch = true;
    CacheHierarchy hier(tinyHierarchy());
    CpuCore core(with_fetch, hier);
    // 16 instructions per 64 B block, looping over two blocks; long
    // enough to amortize the two cold fetch misses.
    for (int i = 0; i < 128000; ++i) {
        const Pc pc = 0x400000 + static_cast<Pc>(i % 32) * 4;
        core.onInstruction(TraceRecord::alu(pc));
    }
    const auto &l1i = hier.l1i().stats();
    // Two cold misses, everything else hits.
    EXPECT_EQ(l1i.missesOf(AccessType::Load), 2u);
    EXPECT_NEAR(core.stats().ipc(), 4.0, 0.2);
}

TEST(CpuCore, ResetStatsStartsFreshWindow)
{
    CacheHierarchy hier(tinyHierarchy());
    CpuCore core(simpleCore(), hier);
    for (int i = 0; i < 1000; ++i)
        core.onInstruction(TraceRecord::alu(0x400000));
    core.resetStats();
    EXPECT_EQ(core.stats().instructions, 0u);
    EXPECT_EQ(core.stats().cycles, 0u);
    for (int i = 0; i < 1000; ++i)
        core.onInstruction(TraceRecord::alu(0x400000));
    EXPECT_EQ(core.stats().instructions, 1000u);
    EXPECT_NEAR(core.stats().ipc(), 4.0, 0.2);
}

TEST(CpuCore, BranchesCountAndRetire)
{
    CacheHierarchy hier(tinyHierarchy());
    CpuCore core(simpleCore(), hier);
    for (int i = 0; i < 100; ++i)
        core.onInstruction(TraceRecord::branch(0x400000));
    EXPECT_EQ(core.stats().branches, 100u);
    EXPECT_GT(core.stats().ipc(), 1.0);
}

} // namespace
} // namespace cachescope
