/**
 * @file
 * Unit tests for the failpoint fault-injection subsystem: spec
 * parsing, trigger schedules, actions, determinism, and the
 * instrumented I/O boundaries (trace and metrics files).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "stats/metrics.hh"
#include "trace/trace_io.hh"
#include "util/cancel.hh"
#include "util/failpoint.hh"

namespace cachescope {
namespace {

/** Every test leaves the global registry disarmed. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

TEST_F(FailpointTest, KnownSitesAreSortedAndCoverTheBoundaries)
{
    const auto &sites = failpoint::knownSites();
    ASSERT_FALSE(sites.empty());
    EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
    // Spot-check the boundaries the harness depends on.
    for (const char *site :
         {"checkpoint.append", "checkpoint.open", "checkpoint.replay",
          "harness.cell.attempt", "metrics.json.write", "sim.loop",
          "trace.write.record", "trace.read.record"}) {
        EXPECT_TRUE(std::binary_search(sites.begin(), sites.end(),
                                       std::string(site)))
            << site;
    }
}

TEST_F(FailpointTest, UnarmedByDefault)
{
    EXPECT_FALSE(failpoint::anyArmed());
    EXPECT_TRUE(failpoint::hit("checkpoint.append").ok());
}

TEST_F(FailpointTest, ConfigureRejectsUnknownSitesAndBadGrammar)
{
    EXPECT_FALSE(failpoint::configure("no.such.site=always").ok());
    EXPECT_FALSE(failpoint::configure("checkpoint.append").ok());
    EXPECT_FALSE(failpoint::configure("checkpoint.append=").ok());
    EXPECT_FALSE(failpoint::configure("checkpoint.append=maybe").ok());
    EXPECT_FALSE(failpoint::configure("checkpoint.append=hit()").ok());
    EXPECT_FALSE(failpoint::configure("checkpoint.append=hit(0)").ok());
    EXPECT_FALSE(failpoint::configure("checkpoint.append=hit(x)").ok());
    EXPECT_FALSE(failpoint::configure("checkpoint.append=prob(2)").ok());
    EXPECT_FALSE(
        failpoint::configure("checkpoint.append=always:explode").ok());
}

TEST_F(FailpointTest, ConfigureErrorLeavesPreviousConfigUntouched)
{
    ASSERT_TRUE(failpoint::configure("checkpoint.append=always").ok());
    EXPECT_TRUE(failpoint::anyArmed());
    // A bad spec must not disturb the armed schedule.
    EXPECT_FALSE(failpoint::configure("no.such.site=always").ok());
    EXPECT_TRUE(failpoint::anyArmed());
    EXPECT_FALSE(failpoint::hit("checkpoint.append").ok());
}

TEST_F(FailpointTest, EmptySpecDisarms)
{
    ASSERT_TRUE(failpoint::configure("checkpoint.append=always").ok());
    ASSERT_TRUE(failpoint::anyArmed());
    ASSERT_TRUE(failpoint::configure("").ok());
    EXPECT_FALSE(failpoint::anyArmed());
    EXPECT_TRUE(failpoint::hit("checkpoint.append").ok());
}

TEST_F(FailpointTest, HitNFiresExactlyOnceOnTheNthHit)
{
    ASSERT_TRUE(failpoint::configure("checkpoint.append=hit(3)").ok());
    EXPECT_TRUE(failpoint::hit("checkpoint.append").ok());
    EXPECT_TRUE(failpoint::hit("checkpoint.append").ok());
    EXPECT_FALSE(failpoint::hit("checkpoint.append").ok());
    EXPECT_TRUE(failpoint::hit("checkpoint.append").ok());
    EXPECT_TRUE(failpoint::hit("checkpoint.append").ok());
    EXPECT_EQ(failpoint::hitCount("checkpoint.append"), 5u);
    EXPECT_EQ(failpoint::fireCount("checkpoint.append"), 1u);
}

TEST_F(FailpointTest, EveryNFiresPeriodically)
{
    ASSERT_TRUE(failpoint::configure("checkpoint.append=every(2)").ok());
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += failpoint::hit("checkpoint.append").ok() ? 0 : 1;
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(failpoint::fireCount("checkpoint.append"), 5u);
}

TEST_F(FailpointTest, AlwaysAndOffTriggers)
{
    ASSERT_TRUE(failpoint::configure("checkpoint.append=always;"
                                     "checkpoint.open=off")
                    .ok());
    EXPECT_FALSE(failpoint::hit("checkpoint.append").ok());
    EXPECT_FALSE(failpoint::hit("checkpoint.append").ok());
    EXPECT_TRUE(failpoint::hit("checkpoint.open").ok());
}

TEST_F(FailpointTest, InjectedErrorNamesTheSite)
{
    ASSERT_TRUE(failpoint::configure("checkpoint.append=always").ok());
    const Status s = failpoint::hit("checkpoint.append");
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("checkpoint.append"), std::string::npos);
}

TEST_F(FailpointTest, ProbIsDeterministicForAGivenSeed)
{
    auto pattern = [](std::uint64_t seed) {
        std::string out;
        char spec[64];
        std::snprintf(spec, sizeof spec,
                      "checkpoint.append=prob(0.5,%llu)",
                      static_cast<unsigned long long>(seed));
        EXPECT_TRUE(failpoint::configure(spec).ok());
        for (int i = 0; i < 64; ++i)
            out += failpoint::hit("checkpoint.append").ok() ? '.' : 'X';
        return out;
    };
    const std::string a = pattern(7);
    const std::string b = pattern(7);
    EXPECT_EQ(a, b);
    // ~50% fire rate, not all-or-nothing.
    const auto fires = std::count(a.begin(), a.end(), 'X');
    EXPECT_GT(fires, 10);
    EXPECT_LT(fires, 54);
    // A different seed gives a different pattern.
    EXPECT_NE(pattern(8), a);
}

TEST_F(FailpointTest, ThrowActionThrowsFailpointError)
{
    ASSERT_TRUE(
        failpoint::configure("checkpoint.append=hit(1):throw").ok());
    EXPECT_THROW((void)failpoint::hit("checkpoint.append"),
                 FailpointError);
    EXPECT_TRUE(failpoint::hit("checkpoint.append").ok());
}

TEST_F(FailpointTest, HitOrThrowConvertsErrorActionToException)
{
    ASSERT_TRUE(failpoint::configure("sim.loop=hit(1)").ok());
    EXPECT_THROW(failpoint::hitOrThrow("sim.loop"), FailpointError);
    EXPECT_NO_THROW(failpoint::hitOrThrow("sim.loop"));
}

TEST_F(FailpointTest, SleepActionWakesEarlyOnCancellation)
{
    ASSERT_TRUE(
        failpoint::configure("sim.loop=always:sleep(30000)").ok());
    CancelToken token;
    token.requestCancel(CancelReason::Signal);
    CancelScope scope(&token);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_TRUE(failpoint::hit("sim.loop").ok()); // sleep, not error
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // 30 s requested; the fired token must cut it to roughly one
    // polling slice.
    EXPECT_LT(elapsed_s, 2.0);
}

TEST_F(FailpointTest, ConfigureFromEnvReadsTheVariable)
{
    ::setenv("CACHESCOPE_FAILPOINTS", "checkpoint.append=always", 1);
    EXPECT_TRUE(failpoint::configureFromEnv().ok());
    EXPECT_FALSE(failpoint::hit("checkpoint.append").ok());
    ::setenv("CACHESCOPE_FAILPOINTS", "bogus-spec", 1);
    EXPECT_FALSE(failpoint::configureFromEnv().ok());
    ::unsetenv("CACHESCOPE_FAILPOINTS");
    EXPECT_TRUE(failpoint::configureFromEnv().ok());
}

// ------------------------- instrumented I/O boundaries -------------------

TEST_F(FailpointTest, TraceWriteFailuresSurfaceAsCleanStatus)
{
    const std::string path =
        ::testing::TempDir() + "/fp_trace_write.bin";
    ASSERT_TRUE(failpoint::configure("trace.open.write=always").ok());
    auto writer_or = TraceWriter::open(path);
    EXPECT_FALSE(writer_or.ok());

    ASSERT_TRUE(
        failpoint::configure("trace.write.record=hit(3)").ok());
    auto writer2_or = TraceWriter::open(path);
    ASSERT_TRUE(writer2_or.ok());
    TraceRecord rec;
    rec.pc = 0x1000;
    for (int i = 0; i < 5; ++i)
        writer2_or.value()->onInstruction(rec);
    // The injected failure is sticky, mirrors a real short write, and
    // is reported by finish().
    EXPECT_FALSE(writer2_or.value()->status().ok());
    EXPECT_FALSE(writer2_or.value()->finish().ok());
    std::remove(path.c_str());
}

TEST_F(FailpointTest, TraceReadFailuresSurfaceAsCleanStatus)
{
    const std::string path = ::testing::TempDir() + "/fp_trace_read.bin";
    {
        auto writer_or = TraceWriter::open(path);
        ASSERT_TRUE(writer_or.ok());
        TraceRecord rec;
        rec.pc = 0x2000;
        for (int i = 0; i < 10; ++i)
            writer_or.value()->onInstruction(rec);
        ASSERT_TRUE(writer_or.value()->finish().ok());
    }

    ASSERT_TRUE(failpoint::configure("trace.open.read=always").ok());
    EXPECT_FALSE(TraceReader::open(path).ok());

    ASSERT_TRUE(failpoint::configure("trace.read.record=hit(4)").ok());
    auto reader_or = TraceReader::open(path);
    ASSERT_TRUE(reader_or.ok());
    TraceRecord rec;
    int read = 0;
    while (reader_or.value()->next(rec))
        ++read;
    EXPECT_LT(read, 10);
    EXPECT_FALSE(reader_or.value()->status().ok());
    std::remove(path.c_str());
}

TEST_F(FailpointTest, MetricsJsonWriteFailureSurfacesAsCleanStatus)
{
    ASSERT_TRUE(failpoint::configure("metrics.json.write=always").ok());
    MetricsDocument doc;
    doc.name = "fp";
    doc.metrics.addCounter("a.b", 1);
    const std::string path = ::testing::TempDir() + "/fp_metrics.json";
    EXPECT_FALSE(writeMetricsJsonFile(doc, path).ok());
    failpoint::reset();
    EXPECT_TRUE(writeMetricsJsonFile(doc, path).ok());
    std::remove(path.c_str());
}

} // namespace
} // namespace cachescope
