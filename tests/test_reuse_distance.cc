/**
 * @file
 * Unit and property tests for the reuse-distance profiler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "trace/reuse_distance.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

/** Push a sequence of block ids as 64 B-aligned loads. */
void
pushBlocks(ReuseDistanceProfiler &prof, const std::vector<Addr> &blocks)
{
    for (Addr b : blocks)
        prof.onInstruction(TraceRecord::load(0x400000, b * 64));
}

TEST(ReuseDistance, ColdAccessesCounted)
{
    ReuseDistanceProfiler prof;
    pushBlocks(prof, {1, 2, 3});
    EXPECT_EQ(prof.coldAccesses(), 3u);
    EXPECT_EQ(prof.reuses(), 0u);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero)
{
    ReuseDistanceProfiler prof;
    pushBlocks(prof, {7, 7, 7});
    EXPECT_EQ(prof.reuses(), 2u);
    EXPECT_EQ(prof.bucket(0), 2u);
    // Distance 0 hits in any cache.
    EXPECT_DOUBLE_EQ(prof.hitRatioAtCapacity(1), 1.0);
}

TEST(ReuseDistance, SimpleDistances)
{
    ReuseDistanceProfiler prof;
    // A B C A : A's reuse distance is 2 (B and C intervened).
    pushBlocks(prof, {1, 2, 3, 1});
    EXPECT_EQ(prof.reuses(), 1u);
    // Distance 2 lands in bucket [2, 4) = bucket 2.
    EXPECT_EQ(prof.bucket(2), 1u);
}

TEST(ReuseDistance, RepeatedIntervenersCountOnce)
{
    ReuseDistanceProfiler prof;
    // A B B B A : only one distinct intervener.
    pushBlocks(prof, {1, 2, 2, 2, 1});
    // A's distance 1 -> bucket [1, 2) = bucket 1.
    EXPECT_EQ(prof.bucket(1), 1u);
}

TEST(ReuseDistance, SubBlockAccessesShareABlock)
{
    ReuseDistanceProfiler prof;
    prof.onInstruction(TraceRecord::load(1, 0));
    prof.onInstruction(TraceRecord::load(1, 32)); // same 64 B block
    EXPECT_EQ(prof.reuses(), 1u);
    EXPECT_EQ(prof.coldAccesses(), 1u);
}

TEST(ReuseDistance, NonMemoryIgnored)
{
    ReuseDistanceProfiler prof;
    prof.onInstruction(TraceRecord::alu(1));
    prof.onInstruction(TraceRecord::branch(1));
    EXPECT_EQ(prof.coldAccesses(), 0u);
}

TEST(ReuseDistance, CyclicScanDistanceEqualsFootprint)
{
    ReuseDistanceProfiler prof;
    std::vector<Addr> stream;
    const std::uint64_t n = 100;
    for (int round = 0; round < 4; ++round)
        for (Addr b = 0; b < n; ++b)
            stream.push_back(b);
    pushBlocks(prof, stream);
    // Every reuse has distance n - 1 = 99 -> bucket [64, 128) = 7.
    EXPECT_EQ(prof.reuses(), 3 * n);
    EXPECT_EQ(prof.bucket(7), 3 * n);
    // A 128-block cache captures the scan; a 64-block cache does not.
    EXPECT_DOUBLE_EQ(prof.hitRatioAtCapacity(128), 1.0);
    EXPECT_DOUBLE_EQ(prof.hitRatioAtCapacity(64), 0.0);
}

/**
 * Property: against a brute-force Mattson stack on random streams,
 * bucketed distances must agree exactly.
 */
TEST(ReuseDistance, MatchesBruteForceStack)
{
    Rng rng(77);
    std::vector<Addr> stream;
    for (int i = 0; i < 3000; ++i)
        stream.push_back(rng.nextBounded(200));

    ReuseDistanceProfiler prof;
    pushBlocks(prof, stream);

    // Brute force: scan back for distinct blocks.
    std::vector<std::uint64_t> buckets(ReuseDistanceProfiler::kNumBuckets,
                                       0);
    std::unordered_map<Addr, std::size_t> last;
    std::uint64_t reuses = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        auto it = last.find(stream[i]);
        if (it != last.end()) {
            std::vector<Addr> seen;
            for (std::size_t j = it->second + 1; j < i; ++j)
                seen.push_back(stream[j]);
            std::sort(seen.begin(), seen.end());
            seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
            const std::uint64_t d = seen.size();
            std::size_t b = 0;
            if (d > 0) {
                b = 1;
                while ((std::uint64_t{1} << b) <= d)
                    ++b;
            }
            ++buckets[b];
            ++reuses;
        }
        last[stream[i]] = i;
    }

    EXPECT_EQ(prof.reuses(), reuses);
    for (std::size_t b = 0; b < buckets.size(); ++b)
        EXPECT_EQ(prof.bucket(b), buckets[b]) << "bucket " << b;
}

TEST(ReuseDistance, HitRatioMonotoneInCapacity)
{
    Rng rng(5);
    ReuseDistanceProfiler prof;
    std::vector<Addr> stream;
    for (int i = 0; i < 20000; ++i)
        stream.push_back(rng.nextZipf(4096, 0.9));
    pushBlocks(prof, stream);
    double prev = 0.0;
    for (std::uint64_t c = 1; c <= 1 << 14; c *= 2) {
        const double ratio = prof.hitRatioAtCapacity(c);
        EXPECT_GE(ratio, prev);
        EXPECT_LE(ratio, 1.0);
        prev = ratio;
    }
    EXPECT_DOUBLE_EQ(prof.hitRatioAtCapacity(1 << 20), 1.0);
}

TEST(ReuseDistance, FenwickGrowthKeepsCorrectness)
{
    // Stream long enough to force several tree rebuilds.
    ReuseDistanceProfiler prof;
    std::vector<Addr> stream;
    for (int round = 0; round < 40; ++round)
        for (Addr b = 0; b < 300; ++b)
            stream.push_back(b);
    pushBlocks(prof, stream);
    EXPECT_EQ(prof.reuses(), 39u * 300);
    // All distances are 299 -> bucket [256, 512) = 9.
    EXPECT_EQ(prof.bucket(9), 39u * 300);
}

} // namespace
} // namespace cachescope
