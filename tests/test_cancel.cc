/**
 * @file
 * Unit tests for the cooperative cancellation layer: token latching,
 * first-reason-wins, deadlines, parent chaining, thread-local scopes,
 * and the CancelledError messages.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "util/cancel.hh"

namespace cachescope {
namespace {

TEST(CancelToken, DefaultNotCancelled)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::None);
}

TEST(CancelToken, RequestCancelLatches)
{
    CancelToken token;
    token.requestCancel(CancelReason::Signal);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::Signal);
    // Repeated polls stay cancelled.
    EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, FirstReasonWins)
{
    CancelToken token;
    token.requestCancel(CancelReason::CellDeadline);
    token.requestCancel(CancelReason::Signal);
    EXPECT_EQ(token.reason(), CancelReason::CellDeadline);
}

TEST(CancelToken, PastDeadlineLatchesItsReason)
{
    CancelToken token;
    token.setDeadline(CancelToken::Clock::now() -
                          std::chrono::milliseconds(1),
                      CancelReason::SweepDeadline);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::SweepDeadline);
}

TEST(CancelToken, FutureDeadlineNotYetCancelled)
{
    CancelToken token;
    token.setDeadline(CancelToken::Clock::now() +
                          std::chrono::hours(1),
                      CancelReason::CellDeadline);
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::None);
}

TEST(CancelToken, ExplicitRequestBeatsALaterDeadline)
{
    CancelToken token;
    token.setDeadline(CancelToken::Clock::now() -
                          std::chrono::milliseconds(1),
                      CancelReason::CellDeadline);
    token.requestCancel(CancelReason::Signal);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::Signal);
}

TEST(CancelToken, ChildSeesParentCancellation)
{
    CancelToken parent;
    CancelToken child;
    child.setParent(&parent);
    EXPECT_FALSE(child.cancelled());

    parent.requestCancel(CancelReason::SweepDeadline);
    EXPECT_TRUE(child.cancelled());
    EXPECT_EQ(child.reason(), CancelReason::SweepDeadline);
}

TEST(CancelToken, OwnReasonShadowsParent)
{
    CancelToken parent;
    CancelToken child;
    child.setParent(&parent);
    parent.requestCancel(CancelReason::SweepDeadline);
    child.requestCancel(CancelReason::CellDeadline);
    EXPECT_EQ(child.reason(), CancelReason::CellDeadline);
    EXPECT_EQ(parent.reason(), CancelReason::SweepDeadline);
}

TEST(CancelToken, ParentCancellationDoesNotAffectSiblings)
{
    CancelToken parent;
    CancelToken a, b;
    a.setParent(&parent);
    b.setParent(&parent);
    a.requestCancel(CancelReason::CellDeadline);
    EXPECT_TRUE(a.cancelled());
    EXPECT_FALSE(b.cancelled());
    EXPECT_FALSE(parent.cancelled());
}

TEST(CancelToken, RequestFromAnotherThreadIsObserved)
{
    CancelToken token;
    std::thread requester(
        [&token] { token.requestCancel(CancelReason::Signal); });
    requester.join();
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::Signal);
}

TEST(CancelReasonName, StableLowercaseNames)
{
    EXPECT_STREQ(cancelReasonName(CancelReason::None), "none");
    EXPECT_STREQ(cancelReasonName(CancelReason::CellDeadline),
                 "cell_deadline");
    EXPECT_STREQ(cancelReasonName(CancelReason::SweepDeadline),
                 "sweep_deadline");
    EXPECT_STREQ(cancelReasonName(CancelReason::Signal), "signal");
}

TEST(CancelledError, CarriesReasonAndPrefixedMessage)
{
    for (CancelReason reason :
         {CancelReason::CellDeadline, CancelReason::SweepDeadline,
          CancelReason::Signal}) {
        CancelledError err(reason);
        EXPECT_EQ(err.reason(), reason);
        const std::string what = err.what();
        EXPECT_EQ(what.rfind("cancelled:", 0), 0u) << what;
    }
}

TEST(CancelScope, RegistersAndRestoresTheThreadToken)
{
    EXPECT_EQ(currentCancelToken(), nullptr);
    CancelToken outer_token;
    {
        CancelScope outer(&outer_token);
        EXPECT_EQ(currentCancelToken(), &outer_token);
        CancelToken inner_token;
        {
            CancelScope inner(&inner_token);
            EXPECT_EQ(currentCancelToken(), &inner_token);
        }
        EXPECT_EQ(currentCancelToken(), &outer_token);
    }
    EXPECT_EQ(currentCancelToken(), nullptr);
}

TEST(CancelScope, IsPerThread)
{
    CancelToken token;
    CancelScope scope(&token);
    const CancelToken *seen_on_other_thread = &token;
    std::thread other([&seen_on_other_thread] {
        seen_on_other_thread = currentCancelToken();
    });
    other.join();
    EXPECT_EQ(seen_on_other_thread, nullptr);
    EXPECT_EQ(currentCancelToken(), &token);
}

} // namespace
} // namespace cachescope
