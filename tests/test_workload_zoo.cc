/**
 * @file
 * Tests for the name-based workload zoo used by the CLI and examples.
 */

#include <gtest/gtest.h>

#include "harness/workload_zoo.hh"
#include "test_helpers.hh"

namespace cachescope {
namespace {

TEST(WorkloadZoo, BuildsEveryListedWorkload)
{
    ZooOptions options;
    options.scale = 10; // keep graph construction cheap
    options.synthMainBytes = 256 * 1024;
    for (const auto &name : zooWorkloadNames()) {
        auto workload = makeNamedWorkload(name, options);
        ASSERT_NE(workload, nullptr) << name;
        test::BoundedSink sink(20000);
        workload->run(sink);
        EXPECT_EQ(sink.consumed, 20000u) << name;
    }
}

TEST(WorkloadZoo, GraphOptionsAreHonoured)
{
    ZooOptions options;
    options.scale = 9;
    auto kron = makeNamedWorkload("bfs", options);
    EXPECT_EQ(kron->name(), "bfs.kron9");
    options.uniformGraph = true;
    auto urand = makeNamedWorkload("bfs", options);
    EXPECT_EQ(urand->name(), "bfs.urand9");
}

TEST(WorkloadZoo, SuitesByName)
{
    ZooOptions options;
    options.scale = 8;
    EXPECT_EQ(makeNamedSuite("gap", options).size(), 12u);
    EXPECT_EQ(makeNamedSuite("spec06").size(), 14u);
    EXPECT_EQ(makeNamedSuite("spec17").size(), 14u);
}

TEST(WorkloadZooDeathTest, UnknownNamesAreFatal)
{
    EXPECT_EXIT(makeNamedWorkload("quicksort"),
                ::testing::ExitedWithCode(1), "unknown workload");
    EXPECT_EXIT(makeNamedSuite("spec2038"),
                ::testing::ExitedWithCode(1), "unknown suite");
}

TEST(WorkloadZoo, NameListIsComplete)
{
    const auto names = zooWorkloadNames();
    EXPECT_EQ(names.size(), 18u); // 6 GAP kernels + bfs_do + 11 synthetic
}

} // namespace
} // namespace cachescope
