/**
 * @file
 * Unit and property tests for the Belady OPT oracle: next-use queries,
 * victim optimality, and the "OPT never loses to any online policy"
 * property on random streams.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/cache.hh"
#include "replacement/belady.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

using test::RecordingLevel;
using test::smallCacheConfig;

TEST(FutureOracle, NextUsePositions)
{
    // Stream positions:        0  1  2  3  4
    std::vector<Addr> stream = {5, 7, 5, 9, 7};
    FutureOracle oracle(stream);
    EXPECT_EQ(oracle.streamLength(), 5u);
    EXPECT_EQ(oracle.nextUseAfter(5, 0), 2u);
    EXPECT_EQ(oracle.nextUseAfter(7, 1), 4u);
    EXPECT_EQ(oracle.nextUseAfter(9, 3), FutureOracle::kNever);
    EXPECT_EQ(oracle.nextUseAfter(42, 0), FutureOracle::kNever);
}

TEST(FutureOracle, MonotoneCursorSemantics)
{
    std::vector<Addr> stream = {1, 1, 1, 1};
    FutureOracle oracle(stream);
    EXPECT_EQ(oracle.nextUseAfter(1, 0), 1u);
    EXPECT_EQ(oracle.nextUseAfter(1, 1), 2u);
    EXPECT_EQ(oracle.nextUseAfter(1, 2), 3u);
    EXPECT_EQ(oracle.nextUseAfter(1, 3), FutureOracle::kNever);
}

/**
 * Drive a single-set cache with a block stream under a policy.
 * @return demand hit count.
 */
std::uint64_t
hitsUnder(const std::vector<Addr> &blocks, const CacheConfig &cfg,
          std::unique_ptr<ReplacementPolicy> policy)
{
    RecordingLevel below;
    Cache cache(cfg, &below, std::move(policy));
    for (Addr block : blocks)
        cache.access(block * 64, 0x400000, AccessType::Load, 0);
    return cache.stats().demandHits();
}

std::uint64_t
hitsUnderName(const std::vector<Addr> &blocks, const CacheConfig &cfg,
              const std::string &name)
{
    return hitsUnder(blocks, cfg,
                     ReplacementPolicyFactory::create(name,
                                                      cfg.geometry()));
}

TEST(Belady, ClassicBeladyExample)
{
    // A 3-way fully-associative cache (1 set) with the textbook
    // sequence; OPT achieves the known optimal number of misses.
    const CacheConfig cfg = smallCacheConfig("opt", 3 * 64, 3);
    std::vector<Addr> blocks = {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};

    auto oracle = std::make_shared<FutureOracle>(blocks);
    const std::uint64_t opt_hits = hitsUnder(
        blocks, cfg,
        std::make_unique<BeladyPolicy>(cfg.geometry(), oracle));
    // Textbook OPT on this sequence: 7 misses out of 12 -> 5 hits.
    EXPECT_EQ(opt_hits, 5u);

    const std::uint64_t lru_hits = hitsUnderName(blocks, cfg, "lru");
    // LRU: 10 misses -> 2 hits. OPT must clearly win.
    EXPECT_EQ(lru_hits, 2u);
}

TEST(Belady, CyclicThrashKeepsResidentSubset)
{
    // Cycle of 5 blocks through 4 ways: LRU gets zero hits; OPT keeps
    // 3 of them resident and hits ~3/5 of the time.
    const CacheConfig cfg = smallCacheConfig("opt", 4 * 64, 4);
    std::vector<Addr> blocks;
    for (int i = 0; i < 200; ++i)
        blocks.push_back(i % 5);

    const std::uint64_t lru_hits = hitsUnderName(blocks, cfg, "lru");
    EXPECT_EQ(lru_hits, 0u);

    auto oracle = std::make_shared<FutureOracle>(blocks);
    const std::uint64_t opt_hits = hitsUnder(
        blocks, cfg,
        std::make_unique<BeladyPolicy>(cfg.geometry(), oracle));
    EXPECT_GT(opt_hits, 100u);
}

/**
 * Property: on random streams, OPT's hit count is never below LRU's,
 * FIFO's, or Random's. (True optimality; any violation is a bug in the
 * oracle or the policy.)
 */
class BeladyOptimalityTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BeladyOptimalityTest, NeverWorseThanOnlinePolicies)
{
    const CacheConfig cfg = smallCacheConfig("opt", 16 * 64 * 4, 4);
    Rng rng(GetParam());
    std::vector<Addr> blocks;
    // Mild locality: 70 % of accesses to a 64-block hot set, the rest
    // to a 4096-block cold region, to exercise both hits and misses.
    for (int i = 0; i < 5000; ++i) {
        if (rng.nextBool(0.7))
            blocks.push_back(rng.nextBounded(64));
        else
            blocks.push_back(1000 + rng.nextBounded(4096));
    }

    auto oracle = std::make_shared<FutureOracle>(blocks);
    const std::uint64_t opt_hits = hitsUnder(
        blocks, cfg,
        std::make_unique<BeladyPolicy>(cfg.geometry(), oracle));

    for (const char *name : {"lru", "fifo", "random", "srrip", "ship"}) {
        EXPECT_GE(opt_hits, hitsUnderName(blocks, cfg, name))
            << "OPT lost to " << name << " with seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyOptimalityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Belady, WritebacksDoNotDesyncThePosition)
{
    // Belady counts only demand accesses; a stream with stores (which
    // later generate writebacks to the level below) must not break the
    // position alignment. This is a smoke test: it passes if position
    // bookkeeping stays consistent (no panic) and OPT still beats LRU.
    const CacheConfig cfg = smallCacheConfig("opt", 4 * 64, 4);
    std::vector<Addr> blocks;
    for (int i = 0; i < 100; ++i)
        blocks.push_back(i % 5);

    auto oracle = std::make_shared<FutureOracle>(blocks);
    RecordingLevel below;
    Cache cache(cfg, &below,
                std::make_unique<BeladyPolicy>(cfg.geometry(), oracle));
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const auto type = i % 3 == 0 ? AccessType::Store
                                     : AccessType::Load;
        cache.access(blocks[i] * 64, 0x400000, type, 0);
    }
    EXPECT_GT(cache.stats().demandHits(), 50u);
}

} // namespace
} // namespace cachescope
