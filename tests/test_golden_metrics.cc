/**
 * @file
 * Golden metric-tree byte-identity test.
 *
 * Runs a small deterministic (workload x policy) sweep, strips the
 * wall-clock noise, serializes the full metric tree to canonical JSON
 * and pins its Checksum64 digest. Any change to a simulated statistic
 * anywhere in the stack — cache bookkeeping, policy decisions, DRAM
 * timing, metric export — shifts the digest and fails here.
 *
 * This is the safety net for hot-path rewrites (SoA tag stores,
 * devirtualized dispatch, batched decode): such refactors must change
 * wall-clock only, never a simulated number. If you changed simulated
 * behavior *on purpose*, re-pin kGoldenDigest with the value printed
 * by the failing run and say so in the commit message.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cascade_lake.hh"
#include "harness/experiment.hh"
#include "stats/metrics.hh"
#include "util/checksum.hh"
#include "workloads/synthetic.hh"

namespace cachescope {
namespace {

/**
 * Pinned digest of the stripped sweep metric tree. Computed once on
 * the pre-SoA AoS cache (PR 7, first commit); every refactor since
 * must reproduce it bit-for-bit.
 */
constexpr std::uint64_t kGoldenDigest = 0xdcd7b86b2cb67e63ull;

/**
 * The sweep grid: two synthetic kernels with distinct access-pattern
 * classes (cyclic thrash, skewed hot/cold) over a shrunken hierarchy,
 * crossed with policies covering every devirtualized hit-update fast
 * path (LRU touch, FIFO no-op, NRU mark, RRIP family) plus one
 * learned policy that stays on the virtual slow path.
 */
const std::vector<std::string> kGoldenPolicies = {
    "lru", "fifo", "nru", "srrip", "drrip", "ship",
};

std::vector<std::shared_ptr<Workload>>
goldenSuite()
{
    SynthParams thrash;
    thrash.pcWorkloadId = 61;
    thrash.seed = 11;
    thrash.mainBytes = 96ull << 10; // ~1.5x the shrunken LLC
    thrash.aluPerOp = 2;

    SynthParams hotcold;
    hotcold.pcWorkloadId = 62;
    hotcold.seed = 12;
    hotcold.mainBytes = 256ull << 10;
    hotcold.hotBytes = 24ull << 10;
    hotcold.hotFraction = 0.9;
    hotcold.aluPerOp = 2;

    return {
        std::make_shared<SyntheticWorkload>("golden",
                                            SynthPattern::ScanThrash,
                                            thrash),
        std::make_shared<SyntheticWorkload>("golden",
                                            SynthPattern::HotCold,
                                            hotcold),
    };
}

SimConfig
goldenConfig()
{
    SimConfig cfg = cascadeLakeConfig("lru", /*warmup=*/5'000,
                                      /*measure=*/60'000);
    // Shrink every level so the small kernels produce real LLC traffic
    // (hits, misses, evictions, writebacks) inside the tiny window.
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l1i.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1i.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    // Prefetchers on two levels so the prefetch flows (issued,
    // useful, prefetched-line bookkeeping) are part of the digest.
    cfg.hierarchy.l1d.prefetcher = "next_line";
    cfg.hierarchy.l2.prefetcher = "stride";
    return cfg;
}

/**
 * Copy @p in minus wall-clock noise: timing gauges (.wall_ms,
 * wall_seconds — dotted or the warmup/measure _wall_seconds split —
 * and .throughput_mips suffixes) and the cell wall-time
 * histogram. Everything else — every counter, every derived gauge,
 * every histogram — is simulated state and must be byte-stable.
 */
MetricsRegistry
stripTiming(const MetricsRegistry &in)
{
    const auto ends_with = [](const std::string &s, const char *suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
    };
    MetricsRegistry out;
    for (const auto &[path, value] : in.counters())
        out.setCounter(path, value);
    for (const auto &[path, value] : in.gauges()) {
        if (ends_with(path, ".wall_ms") || ends_with(path, "wall_seconds") ||
            ends_with(path, ".throughput_mips"))
            continue;
        out.setGauge(path, value);
    }
    for (const auto &[path, snap] : in.histograms()) {
        if (path == "sweep.cell_wall_ms")
            continue;
        out.setHistogram(path, snap);
    }
    return out;
}

TEST(GoldenMetrics, MiniSweepMetricTreeDigestIsPinned)
{
    SuiteRunner runner(goldenConfig(), /*jobs=*/1);
    runner.setVerbose(false);
    const SweepReport report =
        runner.runChecked(goldenSuite(), kGoldenPolicies);
    ASSERT_TRUE(report.allOk());
    ASSERT_EQ(report.outcomes.size(),
              2 * kGoldenPolicies.size());

    MetricsDocument doc;
    doc.name = "golden";
    doc.wallMs = 0.0;
    doc.metrics = stripTiming(report.metrics);
    const std::string json = metricsToJson(doc);

    Checksum64 sum;
    sum.update(json.data(), json.size());
    const std::uint64_t digest = sum.digest();

    char actual[32];
    std::snprintf(actual, sizeof(actual), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    EXPECT_EQ(digest, kGoldenDigest)
        << "Golden metric tree changed: digest is now " << actual
        << " over " << json.size() << " JSON bytes.\n"
        << "A hot-path refactor must NOT get here (it may only change "
        << "wall-clock). If the simulated-behavior change is "
        << "intentional, re-pin kGoldenDigest in "
        << "tests/test_golden_metrics.cc and justify it in the commit.";
}

/**
 * The digest must not depend on scheduling: a parallel sweep of the
 * same grid has to produce the identical stripped tree. This overlaps
 * the difftest serial-vs-jobs invariant but pins it to the exact grid
 * whose digest is golden above.
 */
TEST(GoldenMetrics, ParallelSweepMatchesSerialDigest)
{
    SuiteRunner serial(goldenConfig(), /*jobs=*/1);
    serial.setVerbose(false);
    SuiteRunner parallel(goldenConfig(), /*jobs=*/2);
    parallel.setVerbose(false);

    const SweepReport a = serial.runChecked(goldenSuite(), kGoldenPolicies);
    const SweepReport b = parallel.runChecked(goldenSuite(), kGoldenPolicies);
    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());

    MetricsDocument da, db;
    da.name = db.name = "golden";
    da.metrics = stripTiming(a.metrics);
    db.metrics = stripTiming(b.metrics);
    EXPECT_EQ(metricsToJson(da), metricsToJson(db));
}

} // anonymous namespace
} // namespace cachescope
