/**
 * @file
 * Tests for the differential-testing subsystem: reference-model
 * semantics, fuzz-stream determinism, run-matrix completeness against
 * the live policy registry, the invariant families on clean streams,
 * and the injected-bug path (an off-by-one LRU must be caught and
 * minimized to a small repro).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "difftest/difftest.hh"
#include "difftest/reference_cache.hh"
#include "difftest/stream_fuzzer.hh"

namespace cachescope::difftest {
namespace {

CacheGeometry
tinyGeometry()
{
    return CacheGeometry{4, 2, 64};
}

RefAccess
acc(Addr block)
{
    return RefAccess{block, 0x400000, AccessType::Load};
}

Expected<std::unique_ptr<DifferentialDriver>>
makeDriver(std::size_t accesses = 4096, bool inject = false)
{
    DiffOptions opts;
    opts.memoryAccesses = accesses;
    opts.scratchDir = ::testing::TempDir();
    opts.injectOffByOneLru = inject;
    return DifferentialDriver::create(opts);
}

// ---------------------------------------------------------------------
// Reference models
// ---------------------------------------------------------------------

TEST(RefLru, EvictsLeastRecentlyTouchedWay)
{
    // One set (4 sets, but all accesses map to set 0), 2 ways.
    ReferenceCache cache(tinyGeometry(),
                         std::make_unique<RefLru>(tinyGeometry()));
    // Blocks 0, 4, 8 all land in set 0 (block % 4 == 0).
    EXPECT_FALSE(cache.access(acc(0)).hit);   // fill way 0
    EXPECT_FALSE(cache.access(acc(4)).hit);   // fill way 1
    EXPECT_TRUE(cache.access(acc(0)).hit);    // refresh block 0
    const RefEvent ev = cache.access(acc(8)); // must evict block 4
    EXPECT_FALSE(ev.hit);
    EXPECT_EQ(ev.way, 1u);
    EXPECT_EQ(ev.victimBlock, Addr{4});
    EXPECT_TRUE(cache.access(acc(0)).hit); // block 0 survived
}

TEST(RefSrrip, InsertsAtLongAndPromotesOnHit)
{
    ReferenceCache cache(tinyGeometry(),
                         std::make_unique<RefSrrip>(tinyGeometry()));
    cache.access(acc(0)); // rrpv 2
    cache.access(acc(4)); // rrpv 2
    cache.access(acc(0)); // hit: rrpv 0
    // Fill: both ways valid; aging raises way 1 (rrpv 2 -> 3) first.
    const RefEvent ev = cache.access(acc(8));
    EXPECT_FALSE(ev.hit);
    EXPECT_EQ(ev.way, 1u);
    EXPECT_EQ(ev.victimBlock, Addr{4});
}

TEST(RefBelady, EvictsFarthestNextUseAndBypassesDeadFills)
{
    const CacheGeometry geom = tinyGeometry();
    // Set 0 stream: 0, 4, 8, 0, 4 — when 8 arrives, 0 is reused at #3
    // and 4 at #4, while 8 is never reused: OPT must bypass 8.
    const std::vector<RefAccess> stream = {acc(0), acc(4), acc(8),
                                           acc(0), acc(4)};
    ReferenceCache cache(geom,
                         std::make_unique<RefBelady>(geom, stream));
    EXPECT_FALSE(cache.access(stream[0]).hit);
    EXPECT_FALSE(cache.access(stream[1]).hit);
    const RefEvent ev = cache.access(stream[2]);
    EXPECT_TRUE(ev.bypassed);
    EXPECT_TRUE(cache.access(stream[3]).hit);
    EXPECT_TRUE(cache.access(stream[4]).hit);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.bypasses(), 1u);
}

TEST(ReferenceCache, PerSetEventLogsRecordEveryOutcome)
{
    ReferenceCache cache(tinyGeometry(),
                         std::make_unique<RefLru>(tinyGeometry()));
    cache.setLogging(true);
    cache.access(acc(0));
    cache.access(acc(1)); // set 1
    cache.access(acc(0));
    ASSERT_EQ(cache.setLog(0).size(), 2u);
    EXPECT_FALSE(cache.setLog(0)[0].hit);
    EXPECT_TRUE(cache.setLog(0)[1].hit);
    ASSERT_EQ(cache.setLog(1).size(), 1u);
    EXPECT_TRUE(cache.setLog(2).empty());
}

// ---------------------------------------------------------------------
// Stream fuzzer
// ---------------------------------------------------------------------

TEST(StreamFuzzer, SameSeedYieldsIdenticalStreams)
{
    StreamSpec spec;
    spec.seed = 42;
    spec.kind = kindForSeed(42);
    spec.memoryAccesses = 2000;
    const auto a = generateStream(spec);
    const auto b = generateStream(spec);
    EXPECT_EQ(a, b);
    EXPECT_GE(memoryRecordsOf(a).size(), spec.memoryAccesses);
}

TEST(StreamFuzzer, SeedMixReachesEveryStreamKind)
{
    std::set<StreamKind> seen;
    for (std::uint64_t seed = 0; seed < 64; ++seed)
        seen.insert(kindForSeed(seed));
    EXPECT_EQ(seen.size(), kNumStreamKinds);
}

TEST(StreamFuzzer, EveryKindProducesTheRequestedMemoryAccesses)
{
    for (std::size_t k = 0; k < kNumStreamKinds; ++k) {
        StreamSpec spec;
        spec.seed = 7;
        spec.kind = static_cast<StreamKind>(k);
        spec.memoryAccesses = 1500;
        const auto stream = generateStream(spec);
        EXPECT_EQ(memoryRecordsOf(stream).size(), spec.memoryAccesses)
            << streamKindName(spec.kind);
    }
}

// ---------------------------------------------------------------------
// Run matrix
// ---------------------------------------------------------------------

TEST(RunMatrix, CoversEveryRegisteredPolicy)
{
    auto matrix = buildRunMatrix();
    ASSERT_TRUE(matrix.ok()) << matrix.status().toString();

    std::set<std::string> covered;
    for (const RunMatrixEntry &entry : *matrix)
        covered.insert(entry.policy);
    const auto registered = ReplacementPolicyFactory::availablePolicies();
    EXPECT_EQ(covered.size(), registered.size());
    for (const std::string &name : registered)
        EXPECT_TRUE(covered.count(name)) << name;
}

TEST(RunMatrix, FailsToBuildWhenAPolicyIsUncovered)
{
    auto registered = ReplacementPolicyFactory::availablePolicies();
    registered.push_back("brand_new_policy");
    auto matrix = buildRunMatrixFor(registered);
    EXPECT_FALSE(matrix.ok());
    EXPECT_NE(matrix.status().toString().find("brand_new_policy"),
              std::string::npos);
}

TEST(RunMatrix, FailsToBuildWhenCoverageListsAGhostPolicy)
{
    auto registered = ReplacementPolicyFactory::availablePolicies();
    // Drop one policy the coverage table mentions.
    registered.erase(std::find(registered.begin(), registered.end(),
                               std::string("srrip")));
    auto matrix = buildRunMatrixFor(registered);
    EXPECT_FALSE(matrix.ok());
    EXPECT_NE(matrix.status().toString().find("srrip"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Invariant families on clean streams
// ---------------------------------------------------------------------

TEST(DifferentialDriver, CleanSeedsViolateNothing)
{
    auto driver = makeDriver(/*accesses=*/2048);
    ASSERT_TRUE(driver.ok()) << driver.status().toString();
    // A handful of seeds; the CI fuzz-smoke job covers volume.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto failures = (*driver)->runSeed(seed);
        ASSERT_TRUE(failures.ok()) << failures.status().toString();
        for (const DiffFailure &f : *failures)
            ADD_FAILURE() << "seed " << seed << ": " << f.invariant
                          << " — " << f.detail;
    }
}

TEST(DifferentialDriver, ModelAgreementHoldsAcrossStreamKinds)
{
    DiffOptions opts;
    opts.memoryAccesses = 4096;
    opts.checkSweep = false;
    opts.checkConservation = false;
    auto driver = DifferentialDriver::create(opts);
    ASSERT_TRUE(driver.ok());
    for (std::uint64_t seed = 10; seed < 25; ++seed) {
        auto failures = (*driver)->runSeed(seed);
        ASSERT_TRUE(failures.ok());
        EXPECT_TRUE(failures->empty())
            << "seed " << seed << ": " << failures->front().detail;
    }
}

// ---------------------------------------------------------------------
// Bug injection, detection, minimization
// ---------------------------------------------------------------------

TEST(DifferentialDriver, CatchesInjectedOffByOneLru)
{
    auto driver = makeDriver(/*accesses=*/4096, /*inject=*/true);
    ASSERT_TRUE(driver.ok());
    auto failures = (*driver)->runSeed(1);
    ASSERT_TRUE(failures.ok());
    ASSERT_FALSE(failures->empty())
        << "the injected off-by-one LRU escaped the differential net";
    const DiffFailure &f = failures->front();
    EXPECT_EQ(f.invariant, "model_agreement:lru");
    EXPECT_NE(f.firstBadAccess, kNoAccess);
    EXPECT_FALSE(f.detail.empty());
}

TEST(DifferentialDriver, MinimizesInjectedBugBelowFourThousandAccesses)
{
    auto driver = makeDriver(/*accesses=*/8192, /*inject=*/true);
    ASSERT_TRUE(driver.ok());
    auto failures = (*driver)->runSeed(1);
    ASSERT_TRUE(failures.ok());
    ASSERT_FALSE(failures->empty());
    const DiffFailure &f = failures->front();

    const auto stream = (*driver)->streamForSeed(1);
    const auto shrunk = (*driver)->minimize(stream, f);
    EXPECT_LE(shrunk.stream.size(), 4096u)
        << "minimizer left " << shrunk.stream.size() << " records";
    EXPECT_LT(shrunk.stream.size(), stream.size());
    // The shrunk stream must still reproduce the violation.
    EXPECT_TRUE((*driver)->failsOn(shrunk.stream, 1, f.invariant));
}

TEST(DifferentialDriver, FailsOnIsCleanForHealthyStreams)
{
    auto driver = makeDriver(/*accesses=*/2048);
    ASSERT_TRUE(driver.ok());
    const auto stream = (*driver)->streamForSeed(5);
    EXPECT_FALSE((*driver)->failsOn(stream, 5, "model_agreement:lru"));
    EXPECT_FALSE((*driver)->failsOn(stream, 5, "model_agreement:srrip"));
    EXPECT_FALSE((*driver)->failsOn(stream, 5, "opt_dominance:ship"));
}

// ---------------------------------------------------------------------
// OPT dominance sanity: the oracle itself beats (or ties) LRU
// ---------------------------------------------------------------------

TEST(RefBelady, DominatesLruOnAThrashingStream)
{
    const CacheGeometry geom{16, 4, 64};
    // Cyclic scan over 1.5x the cache: pathological for LRU.
    std::vector<RefAccess> stream;
    const std::uint64_t ws = 16 * 4 * 3 / 2;
    for (int round = 0; round < 40; ++round)
        for (std::uint64_t b = 0; b < ws; ++b)
            stream.push_back(acc(b));

    ReferenceCache lru(geom, std::make_unique<RefLru>(geom));
    ReferenceCache opt(geom, std::make_unique<RefBelady>(geom, stream));
    for (const RefAccess &a : stream) {
        lru.access(a);
        opt.access(a);
    }
    // LRU thrashes to zero hits on a cyclic over-capacity scan.
    EXPECT_GT(opt.hits(), lru.hits());
}

} // namespace
} // namespace cachescope::difftest
