/**
 * @file
 * Unit tests for the util substrate: integer math, saturating
 * counters, the deterministic RNG, and the trace checksum.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "util/checksum.hh"
#include "util/intmath.hh"
#include "util/rng.hh"
#include "util/sat_counter.hh"

namespace cachescope {
namespace {

// ------------------------------------------------------------- intmath --

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_TRUE(isPowerOf2(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOf2((std::uint64_t{1} << 63) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
    EXPECT_EQ(floorLog2(~std::uint64_t{0}), 63u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(11), 4u);  // the LLC's associativity
    EXPECT_EQ(ceilLog2(1024), 10u);
}

TEST(IntMath, RoundUp)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
}

TEST(IntMath, Bits)
{
    EXPECT_EQ(bits(0xFF00, 15, 8), 0xFFu);
    EXPECT_EQ(bits(0xABCD, 7, 4), 0xCu);
    EXPECT_EQ(bits(~std::uint64_t{0}, 63, 0), ~std::uint64_t{0});
    EXPECT_EQ(bits(0b1010, 3, 1), 0b101u);
}

TEST(IntMath, FoldXor)
{
    // Folding a value narrower than the width is the identity.
    EXPECT_EQ(foldXor(0x3F, 8), 0x3Fu);
    // Two equal chunks cancel; a lone high chunk survives.
    EXPECT_EQ(foldXor(0xAB00AB, 8), 0u);
    EXPECT_EQ(foldXor(0xAB00, 8), 0xABu);
    // Result always fits in the width.
    for (std::uint64_t v : {std::uint64_t{0x123456789ABCDEF},
                            ~std::uint64_t{0}}) {
        EXPECT_LT(foldXor(v, 13), std::uint64_t{1} << 13);
        EXPECT_LT(foldXor(v, 4), std::uint64_t{1} << 4);
    }
    EXPECT_EQ(foldXor(0, 8), 0u);
}

// ---------------------------------------------------------- SatCounter --

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.max(), 3u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.get(), 3u);
    EXPECT_TRUE(c.isMax());
    EXPECT_TRUE(c.isHigh());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(3, 7);
    for (int i = 0; i < 20; ++i)
        c.decrement();
    EXPECT_EQ(c.get(), 0u);
    EXPECT_TRUE(c.isMin());
    EXPECT_FALSE(c.isHigh());
}

TEST(SatCounter, InitialValueClamped)
{
    SatCounter c(2, 100);
    EXPECT_EQ(c.get(), 3u);
}

TEST(SatCounter, SetClamps)
{
    SatCounter c(4);
    c.set(200);
    EXPECT_EQ(c.get(), 15u);
    c.set(5);
    EXPECT_EQ(c.get(), 5u);
}

TEST(SatCounter, HighBoundary)
{
    SatCounter c(3, 4); // max 7, midpoint 3
    EXPECT_TRUE(c.isHigh());
    c.set(3);
    EXPECT_FALSE(c.isHigh());
}

TEST(SignedSatWeight, Clamps)
{
    SignedSatWeight w(31);
    for (int i = 0; i < 100; ++i)
        w.increment();
    EXPECT_EQ(w.get(), 31);
    EXPECT_TRUE(w.isSaturated());
    for (int i = 0; i < 200; ++i)
        w.decrement();
    EXPECT_EQ(w.get(), -31);
    EXPECT_TRUE(w.isSaturated());
}

TEST(SignedSatWeight, AddDelta)
{
    SignedSatWeight w(10, 5);
    w.add(3);
    EXPECT_EQ(w.get(), 8);
    w.add(100);
    EXPECT_EQ(w.get(), 10);
    w.add(-25);
    EXPECT_EQ(w.get(), -10);
}

// ----------------------------------------------------------------- Rng --

TEST(Rng, Deterministic)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 11ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
    EXPECT_EQ(rng.nextBounded(0), 0u);
    EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbability)
{
    Rng rng(5);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ZipfUniformWhenUnskewed)
{
    Rng rng(11);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 10000; ++i)
        ++counts[rng.nextZipf(10, 0.0)];
    for (const auto &[value, count] : counts) {
        EXPECT_LT(value, 10u);
        EXPECT_GT(count, 700);
        EXPECT_LT(count, 1300);
    }
}

TEST(Rng, ZipfSkewFavorsSmallIndices)
{
    Rng rng(13);
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i)
        low += rng.nextZipf(1000, 1.0) < 10;
    // With s=1, the first 10 of 1000 values should carry far more than
    // their uniform 1% share.
    EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.2);
}

TEST(Rng, ZipfInRange)
{
    Rng rng(17);
    for (double s : {0.0, 0.5, 0.99, 1.0, 1.2}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.nextZipf(37, s), 37u);
    }
    EXPECT_EQ(rng.nextZipf(1, 1.0), 0u);
    EXPECT_EQ(rng.nextZipf(0, 1.0), 0u);
}

// ----------------------------------------------------------- checksum --

// Known-answer tests pinning Checksum64 to its exact current output.
// The digest is part of the v2 trace format: if any of these change,
// every existing trace file fails verification, so a change here must
// come with a trace-format version bump.

TEST(Checksum64, PinnedOffsetBasis)
{
    EXPECT_EQ(Checksum64::kOffsetBasis, 0xcbf29ce484222325ull);
}

TEST(Checksum64, KnownAnswerEmptyInput)
{
    Checksum64 sum;
    EXPECT_EQ(sum.digest(), 0xefd01f60ba992926ull);
}

TEST(Checksum64, KnownAnswerAbc)
{
    Checksum64 sum;
    sum.update("abc", 3);
    EXPECT_EQ(sum.digest(), 0x33ebaf9927cbc5bdull);
}

TEST(Checksum64, KnownAnswerOneMebibytePattern)
{
    std::vector<unsigned char> pattern(1 << 20);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<unsigned char>(i & 0xff);
    Checksum64 sum;
    sum.update(pattern.data(), pattern.size());
    EXPECT_EQ(sum.digest(), 0x2f9a8da9eba70e5cull);

    // Chunked updates over the same bytes digest identically.
    Checksum64 chunked;
    chunked.update(pattern.data(), 1000);
    chunked.update(pattern.data() + 1000, pattern.size() - 1000);
    EXPECT_EQ(chunked.digest(), sum.digest());
}

TEST(Checksum64, ResetRestoresInitialState)
{
    Checksum64 sum;
    sum.update("abc", 3);
    sum.reset();
    EXPECT_EQ(sum.digest(), 0xefd01f60ba992926ull);
}

// Known-answer and invariance tests for the 8-lane digest (trace
// format v3). As with Checksum64, these constants are part of the
// on-disk format: a change here must come with a version bump.

TEST(Checksum64x8, KnownAnswerEmptyInput)
{
    Checksum64x8 sum;
    EXPECT_EQ(sum.digest(), 0x52823c114e5da452ull);
}

TEST(Checksum64x8, KnownAnswerAbc)
{
    Checksum64x8 sum;
    sum.update("abc", 3);
    EXPECT_EQ(sum.digest(), 0xe136baff6a06284bull);
}

TEST(Checksum64x8, ChunkBoundariesDoNotMatter)
{
    // The stream is lane-assigned by absolute offset, so any split of
    // the same bytes — including splits that leave a call mid-lane —
    // must digest identically to one whole-buffer update.
    std::vector<unsigned char> pattern(4096 + 13);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<unsigned char>((i * 131) & 0xff);
    Checksum64x8 whole;
    whole.update(pattern.data(), pattern.size());

    for (std::size_t split : {std::size_t(1), std::size_t(3),
                              std::size_t(8), std::size_t(24),
                              std::size_t(4095)}) {
        Checksum64x8 chunked;
        std::size_t pos = 0;
        while (pos < pattern.size()) {
            const std::size_t n = std::min(split, pattern.size() - pos);
            chunked.update(pattern.data() + pos, n);
            pos += n;
        }
        EXPECT_EQ(chunked.digest(), whole.digest()) << "split=" << split;
    }
}

TEST(Checksum64x8, SwappingBytesBetweenLanesChangesDigest)
{
    // Distinct lane seeds: moving a byte to a different lane position
    // must not cancel out.
    unsigned char a[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                           9, 10, 11, 12, 13, 14, 15, 16};
    unsigned char b[16];
    std::memcpy(b, a, sizeof(a));
    std::swap(b[0], b[1]); // same multiset of bytes, different lanes
    Checksum64x8 sa, sb;
    sa.update(a, sizeof(a));
    sb.update(b, sizeof(b));
    EXPECT_NE(sa.digest(), sb.digest());
}

TEST(Checksum64x8, TrailingZeroBytesChangeDigest)
{
    Checksum64x8 a, b;
    a.update("ab", 2);
    b.update("ab\0", 3);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Checksum64x8, SingleBitFlipChangesDigest)
{
    std::vector<unsigned char> buf(24 * 100, 0xA5);
    Checksum64x8 clean;
    clean.update(buf.data(), buf.size());
    buf[1234] ^= 0x10;
    Checksum64x8 flipped;
    flipped.update(buf.data(), buf.size());
    EXPECT_NE(clean.digest(), flipped.digest());
}

TEST(Checksum64x8, ResetRestoresInitialState)
{
    Checksum64x8 sum;
    sum.update("abc", 3);
    sum.reset();
    EXPECT_EQ(sum.digest(), 0x52823c114e5da452ull);
}

} // namespace
} // namespace cachescope
