/**
 * @file
 * Unit tests for the stats module: summary math, running stats,
 * histograms and table rendering.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "stats/summary.hh"
#include "stats/table.hh"

namespace cachescope {
namespace {

TEST(Summary, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Summary, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({5.0}), 5.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // Geomean of reciprocal pairs is 1 — the property that makes it the
    // right aggregation for speedup ratios.
    EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-12);
}

TEST(Summary, GeomeanSkipsNonPositiveValues)
{
    // A zero (e.g. a failed cell's IPC) must not abort the summary:
    // it is skipped and the mean is over the remaining values.
    EXPECT_NEAR(geomean({0.0, 1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({-3.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}

TEST(Summary, GeomeanSkipsNonFiniteValues)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_NEAR(geomean({inf, 1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({nan, 3.0}), 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({inf, nan}), 0.0);
}

TEST(Summary, StddevBasics)
{
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
}

TEST(Summary, Mpki)
{
    EXPECT_DOUBLE_EQ(mpki(0, 1000), 0.0);
    EXPECT_DOUBLE_EQ(mpki(50, 1000), 50.0);
    EXPECT_DOUBLE_EQ(mpki(5, 0), 0.0);
    EXPECT_NEAR(mpki(532, 10000), 53.2, 1e-12);
}

TEST(Summary, Ipc)
{
    EXPECT_DOUBLE_EQ(ipc(100, 0), 0.0);
    EXPECT_DOUBLE_EQ(ipc(100, 50), 2.0);
    EXPECT_DOUBLE_EQ(ipc(0, 50), 0.0);
}

TEST(RunningStat, TracksMinMaxMean)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(3.0);
    s.add(-1.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.total(), 6.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 4); // buckets [0,10) [10,20) [20,30) [30,40) + overflow
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(35);
    h.add(40);   // overflow
    h.add(1000); // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 2u);
    EXPECT_EQ(h.totalSamples(), 6u);
}

TEST(Histogram, Percentile)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 49u);
    EXPECT_EQ(h.percentile(0.99), 98u);
    EXPECT_EQ(h.percentile(1.0), 99u);
    Histogram empty(1, 4);
    EXPECT_EQ(empty.percentile(0.5), 0u);
}

TEST(Histogram, PercentileSaturatesAtOverflowBoundary)
{
    // Buckets [0,10) [10,20) [20,30) [30,40) + overflow [40,inf).
    // Known answers: 5 samples, three in bucket 0 and two far past the
    // tracked range. p50 (target: 3rd sample) resolves in bucket 0 and
    // reports its upper bound 9; p99 and p100 (targets: 5th sample)
    // land in the overflow bucket and must saturate to the boundary
    // 40, not fabricate 49 — a value the histogram never resolved.
    Histogram h(10, 4);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(95);
    h.add(1000);
    EXPECT_EQ(h.percentile(0.50), 9u);
    EXPECT_EQ(h.percentile(0.99), 40u);
    EXPECT_EQ(h.percentile(1.0), 40u);

    // All mass in the overflow bucket: every percentile saturates.
    Histogram all_over(5, 2);
    all_over.add(100);
    all_over.add(200);
    EXPECT_EQ(all_over.percentile(0.5), 10u);
    EXPECT_EQ(all_over.percentile(1.0), 10u);
}

TEST(Table, AsciiRendering)
{
    Table t({"name", "value"});
    t.newRow();
    t.addCell("ipc");
    t.addNumber(1.5, 2);
    t.newRow();
    t.addCell("mpki");
    t.addNumber(53.2, 1);

    std::ostringstream os;
    t.printAscii(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("53.2"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.cell(0, 0), "ipc");
    EXPECT_EQ(t.cell(1, 1), "53.2");
}

TEST(Table, CsvRendering)
{
    Table t({"a", "b"});
    t.newRow();
    t.addCell("plain");
    t.addCell("with,comma");
    t.newRow();
    t.addCell("with\"quote");
    t.addCell("x");

    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(),
              "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n");
}

TEST(TableDeathTest, RowOverflowPanics)
{
    Table t({"only"});
    t.newRow();
    t.addCell("x");
    EXPECT_DEATH(t.addCell("y"), "row overflow");
}

TEST(TableDeathTest, CellBeforeRowPanics)
{
    Table t({"only"});
    EXPECT_DEATH(t.addCell("x"), "newRow");
}

} // namespace
} // namespace cachescope
