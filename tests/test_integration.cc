/**
 * @file
 * Cross-module integration tests: full Cascade Lake simulations of
 * real (scaled-down) workloads under every policy, checking the
 * physical invariants the paper's figures rest on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/cascade_lake.hh"
#include "graph/gap_kernels.hh"
#include "graph/gap_suite.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "trace/trace_io.hh"
#include "workloads/synthetic.hh"

namespace cachescope {
namespace {

SimConfig
fastConfig(const std::string &policy = "lru")
{
    // Full Cascade Lake shape, short windows to keep tests quick.
    return cascadeLakeConfig(policy, /*warmup=*/50'000,
                             /*measure=*/300'000);
}

std::shared_ptr<const CsrGraph>
sharedGraph()
{
    static auto g = std::make_shared<const CsrGraph>(
        makeKronecker(14, 8, 42));
    return g;
}

class PolicyIntegrationTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(PolicyIntegrationTest, GraphWorkloadRunsSane)
{
    GapWorkload workload(GapKernel::Bfs, "kron14", sharedGraph(), {});
    const SimResult r = runOne(workload, fastConfig(GetParam()));

    EXPECT_EQ(r.core.instructions, 300'000u);
    EXPECT_GT(r.ipc(), 0.01);
    EXPECT_LT(r.ipc(), 4.0);

    // Miss counts cannot grow down the hierarchy (demand misses at a
    // lower level are a subset of upper-level misses plus L1I misses).
    const std::uint64_t upper =
        r.l1d.demandMisses() + r.l1i.demandMisses();
    EXPECT_LE(r.l2.demandMisses(), upper);
    EXPECT_LE(r.llc.demandMisses(), r.l2.demandMisses());

    // DRAM reads correspond to LLC demand misses (plus prefetch = 0).
    EXPECT_EQ(r.dram.reads, r.llc.missesOf(AccessType::Load) +
                            r.llc.missesOf(AccessType::Store));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyIntegrationTest,
                         ::testing::Values("lru", "fifo", "random", "nru",
                                           "plru", "srrip", "brrip",
                                           "drrip", "ship", "hawkeye",
                                           "glider", "mpppb"));

TEST(Integration, GraphMpkiIsBigDataScale)
{
    // The headline characterization: graph processing has MPKI in the
    // tens at every level (paper: 53.2/44.2/41.8 on full-size inputs).
    GapWorkload workload(GapKernel::Cc, "kron14", sharedGraph(), {});
    const SimResult r = runOne(workload, fastConfig());
    EXPECT_GT(r.mpkiL1d(), 10.0);
    EXPECT_GT(r.mpkiL2(), 5.0);
    EXPECT_GE(r.mpkiL1d(), r.mpkiL2());
    EXPECT_GE(r.mpkiL2(), r.mpkiLlc());
}

TEST(Integration, CacheFriendlyWorkloadHasLowLlcMpki)
{
    SynthParams p;
    p.mainBytes = 128 * 1024; // fits in L2
    SyntheticWorkload w("t", SynthPattern::SmallWs, p);
    const SimResult r = runOne(w, fastConfig());
    EXPECT_LT(r.mpkiLlc(), 1.0);
    EXPECT_GT(r.ipc(), 1.0);
}

TEST(Integration, ScanThrashRewardsRrip)
{
    // The canonical RRIP win: a cyclic scan slightly larger than the
    // LLC. LRU misses every access; BRRIP keeps most of the buffer
    // resident.
    SynthParams p;
    p.mainBytes = 1792 * 1024;
    p.aluPerOp = 2;
    SyntheticWorkload w_lru("t", SynthPattern::ScanThrash, p);
    SyntheticWorkload w_brrip("t", SynthPattern::ScanThrash, p);
    const SimResult lru = runOne(w_lru, fastConfig("lru"));
    const SimResult brrip = runOne(w_brrip, fastConfig("brrip"));
    EXPECT_LT(brrip.llc.demandMisses() * 2, lru.llc.demandMisses());
    EXPECT_GT(brrip.ipc(), lru.ipc());
}

TEST(Integration, WritebacksFlowDownToDram)
{
    // A store-heavy workload must generate DRAM writes via dirty
    // evictions cascading down the hierarchy.
    SynthParams p;
    p.mainBytes = 8 * 1024 * 1024;
    SyntheticWorkload w("t", SynthPattern::DeadFill, p);
    const SimResult r = runOne(w, fastConfig());
    EXPECT_GT(r.dram.writes, 1000u);
    EXPECT_GT(r.llc.missesOf(AccessType::Writeback), 0u);
}

TEST(Integration, LargerLlcReducesMissesOnLlcSizedWorkingSet)
{
    // 4 MB cyclic scan: misses the 1.375 MB LLC on every access but
    // fits entirely in an 11 MB LLC. The window is long enough for
    // several wraps so reuse is observable.
    SynthParams p;
    p.mainBytes = 4ull << 20;
    p.aluPerOp = 2;
    SyntheticWorkload w1("t", SynthPattern::ScanThrash, p);
    SyntheticWorkload w2("t", SynthPattern::ScanThrash, p);
    SimConfig small_cfg = cascadeLakeConfig("lru", 50'000, 1'500'000);
    SimConfig big_cfg = small_cfg;
    big_cfg.hierarchy.llc.sizeBytes = 8 * 11 * 128 * 1024; // 11 MB
    const SimResult small_llc = runOne(w1, small_cfg);
    const SimResult big_llc = runOne(w2, big_cfg);
    EXPECT_LT(big_llc.llc.demandMisses() * 4,
              small_llc.llc.demandMisses());
    EXPECT_GT(big_llc.ipc(), small_llc.ipc());
}

TEST(Integration, TraceRoundTripReproducesSimulation)
{
    // Record a workload to a file, replay the file: identical results.
    const std::string path =
        std::string(::testing::TempDir()) + "/roundtrip_sim.trace";
    SynthParams p;
    p.mainBytes = 512 * 1024;
    {
        SyntheticWorkload producer("t", SynthPattern::GatherZipf, p);
        TraceWriter writer(path);
        struct Bounded : InstructionSink
        {
            explicit Bounded(TraceWriter &writer) : out(writer) {}
            void
            onInstruction(const TraceRecord &rec) override
            {
                out.onInstruction(rec);
            }
            bool wantsMore() const override
            {
                return out.recordsWritten() < 400'000;
            }
            TraceWriter &out;
        } sink(writer);
        producer.run(sink);
        writer.onEnd();
    }

    SyntheticWorkload live("t", SynthPattern::GatherZipf, p);
    Simulator live_sim(fastConfig("drrip"));
    live.run(live_sim);

    Simulator replay_sim(fastConfig("drrip"));
    TraceReader reader(path);
    ASSERT_TRUE(reader.replayInto(replay_sim).ok());

    EXPECT_EQ(live_sim.result().core.cycles,
              replay_sim.result().core.cycles);
    EXPECT_EQ(live_sim.result().llc.demandMisses(),
              replay_sim.result().llc.demandMisses());
    std::remove(path.c_str());
}

TEST(Integration, AllSixGapKernelsSimulateUnderAllPaperPolicies)
{
    // Smoke matrix at small scale: no crashes, sane IPC everywhere.
    GapSuiteConfig suite_cfg;
    suite_cfg.scale = 12;
    suite_cfg.avgDegree = 8;
    suite_cfg.includeUniform = false;
    const auto suite = makeGapSuite(suite_cfg);
    ASSERT_EQ(suite.size(), 6u);

    SimConfig cfg = cascadeLakeConfig("lru", 10'000, 100'000);
    SuiteRunner runner(cfg, 2);
    runner.setVerbose(false);
    std::vector<std::string> policies = {"lru"};
    for (const auto &p : paperPolicies())
        policies.push_back(p);
    const SweepResults results = runner.run(suite, policies);
    ASSERT_EQ(results.size(), 6u);
    for (const auto &[workload, by_policy] : results) {
        ASSERT_EQ(by_policy.size(), 7u) << workload;
        for (const auto &[policy, r] : by_policy) {
            EXPECT_GT(r.ipc(), 0.005) << workload << "/" << policy;
            EXPECT_EQ(r.core.instructions, 100'000u);
        }
    }
}

} // namespace
} // namespace cachescope
