/**
 * @file
 * Tests for the instrumented GAP kernels: every kernel must run to
 * completion on small graphs, emit well-formed deterministic streams
 * with few distinct memory PCs, and respect sink budgets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "graph/gap_kernels.hh"
#include "graph/gap_suite.hh"
#include "graph/generators.hh"
#include "test_helpers.hh"
#include "trace/profile.hh"

namespace cachescope {
namespace {

using test::BoundedSink;
using test::HashingSink;

std::shared_ptr<const CsrGraph>
smallGraph()
{
    static auto g = std::make_shared<const CsrGraph>(
        makeKronecker(10, 8, 42));
    return g;
}

const std::vector<GapKernel> &
allKernels()
{
    static const std::vector<GapKernel> kernels = {
        GapKernel::Bfs, GapKernel::PageRank, GapKernel::Cc,
        GapKernel::Bc, GapKernel::Sssp, GapKernel::Tc};
    return kernels;
}

class GapKernelTest : public ::testing::TestWithParam<GapKernel>
{};

TEST_P(GapKernelTest, EmitsMixedWellFormedStream)
{
    GapKernelParams params;
    params.maxRepeats = 1;
    GapWorkload workload(GetParam(), "kron10", smallGraph(), params);

    CountingSink sink;
    workload.run(sink);

    EXPECT_GT(sink.total, 10000u) << "suspiciously short stream";
    EXPECT_GT(sink.loads, 0u);
    EXPECT_GT(sink.alu, 0u);
    EXPECT_GT(sink.branches, 0u);
    // Graph kernels are load-dominated but not load-only.
    EXPECT_GT(sink.alu, sink.loads / 2);
}

TEST_P(GapKernelTest, StreamIsDeterministic)
{
    GapKernelParams params;
    params.maxRepeats = 1;
    GapWorkload w1(GetParam(), "kron10", smallGraph(), params);
    GapWorkload w2(GetParam(), "kron10", smallGraph(), params);
    HashingSink a, b;
    w1.run(a);
    w2.run(b);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.hash, b.hash);
}

TEST_P(GapKernelTest, RespectsSinkBudget)
{
    GapKernelParams params;
    GapWorkload workload(GetParam(), "kron10", smallGraph(), params);
    BoundedSink sink(50000);
    workload.run(sink);
    EXPECT_EQ(sink.consumed, 50000u);
    // The kernels poll at coarse granularity; the spill past the budget
    // must stay bounded by one polling interval's worth of records.
    EXPECT_LT(sink.overflow, 100000u);
}

TEST_P(GapKernelTest, FewMemoryPcsManyAddresses)
{
    // The paper's core observation: graph kernels run a handful of
    // static memory PCs, each touching a huge number of blocks.
    GapKernelParams params;
    params.maxRepeats = 1;
    GapWorkload workload(GetParam(), "kron10", smallGraph(), params);
    PcProfiler profiler;
    workload.run(profiler);

    const PcProfileSummary s = profiler.summarize();
    EXPECT_GT(s.memoryAccesses, 1000u);
    EXPECT_LE(s.distinctMemoryPcs, 32u);
    EXPECT_GT(s.maxBlocksPerPc, 500u);
}

TEST_P(GapKernelTest, PcsStayInsideWorkloadRegion)
{
    GapKernelParams params;
    params.maxRepeats = 1;
    params.pcWorkloadId = 7;
    GapWorkload workload(GetParam(), "kron10", smallGraph(), params);
    test::VectorSink sink;
    // Use a smaller graph run bounded via maxRepeats=1; scan all PCs.
    workload.run(sink);
    const Pc base = 0x400000 + 7ull * 64 * 1024;
    for (const auto &rec : sink.records) {
        EXPECT_GE(rec.pc, base);
        EXPECT_LT(rec.pc, base + 64 * 1024);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, GapKernelTest, ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<GapKernel> &info) {
        return gapKernelName(info.param);
    });

TEST(GapWorkloadTest, NamesComposeKernelAndGraph)
{
    GapWorkload w(GapKernel::PageRank, "kron10", smallGraph(), {});
    EXPECT_EQ(w.name(), "pr.kron10");
    EXPECT_EQ(w.kernel(), GapKernel::PageRank);
}

TEST(GapWorkloadTest, KernelNames)
{
    EXPECT_STREQ(gapKernelName(GapKernel::Bfs), "bfs");
    EXPECT_STREQ(gapKernelName(GapKernel::PageRank), "pr");
    EXPECT_STREQ(gapKernelName(GapKernel::Cc), "cc");
    EXPECT_STREQ(gapKernelName(GapKernel::Bc), "bc");
    EXPECT_STREQ(gapKernelName(GapKernel::Sssp), "sssp");
    EXPECT_STREQ(gapKernelName(GapKernel::Tc), "tc");
}

TEST(GapWorkloadTest, RepeatsUntilBudgetExhausted)
{
    // One BFS on kron10 is far smaller than this budget; the workload
    // must restart from new sources to keep feeding the sink.
    GapKernelParams params;
    params.maxRepeats = 1024;
    GapWorkload workload(GapKernel::Bfs, "kron10", smallGraph(), params);
    BoundedSink sink(2'000'000);
    workload.run(sink);
    EXPECT_EQ(sink.consumed, 2'000'000u);
}

TEST(GapSuiteTest, BuildsAllKernelInputPairs)
{
    GapSuiteConfig cfg;
    cfg.scale = 8;
    cfg.avgDegree = 4;
    const auto suite = makeGapSuite(cfg);
    ASSERT_EQ(suite.size(), 12u); // 6 kernels x {kron, urand}
    std::set<std::string> names;
    for (const auto &w : suite)
        names.insert(w->name());
    EXPECT_EQ(names.size(), 12u);
    EXPECT_TRUE(names.count("bfs.kron8"));
    EXPECT_TRUE(names.count("tc.urand8"));
}

TEST(GapSuiteTest, KernelSubsetAndSingleInput)
{
    GapSuiteConfig cfg;
    cfg.scale = 8;
    cfg.avgDegree = 4;
    cfg.includeUniform = false;
    cfg.kernels = {GapKernel::Bfs, GapKernel::PageRank};
    const auto suite = makeGapSuite(cfg);
    ASSERT_EQ(suite.size(), 2u);
    EXPECT_EQ(suite[0]->name(), "bfs.kron8");
    EXPECT_EQ(suite[1]->name(), "pr.kron8");
}

} // namespace
} // namespace cachescope
