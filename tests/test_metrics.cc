/**
 * @file
 * Tests for the metrics subsystem: registry semantics, merge algebra,
 * the JSON round trip, SimResult export, and the parallel-sweep
 * determinism guarantee (merged worker counters == serial sweep sums).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/cascade_lake.hh"
#include "harness/experiment.hh"
#include "stats/metrics.hh"
#include "trace/pc_site.hh"
#include "trace/traced_memory.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.counter("llc.hits.load"), 0u);
    EXPECT_FALSE(reg.hasCounter("llc.hits.load"));

    reg.addCounter("llc.hits.load");
    reg.addCounter("llc.hits.load", 4);
    EXPECT_EQ(reg.counter("llc.hits.load"), 5u);
    EXPECT_TRUE(reg.hasCounter("llc.hits.load"));

    reg.setCounter("llc.hits.load", 9);
    EXPECT_EQ(reg.counter("llc.hits.load"), 9u);
    EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, GaugesOverwrite)
{
    MetricsRegistry reg;
    EXPECT_DOUBLE_EQ(reg.gauge("derived.ipc"), 0.0);
    reg.setGauge("derived.ipc", 1.25);
    reg.setGauge("derived.ipc", 0.75);
    EXPECT_DOUBLE_EQ(reg.gauge("derived.ipc"), 0.75);
    EXPECT_TRUE(reg.hasGauge("derived.ipc"));
}

TEST(MetricsRegistry, HistogramSnapshotsCapture)
{
    Histogram h(10, 4);
    h.add(5);
    h.add(15);
    h.add(1000); // overflow bucket

    MetricsRegistry reg;
    reg.setHistogram("latency", h);
    ASSERT_TRUE(reg.hasHistogram("latency"));
    const auto &snap = reg.histograms().at("latency");
    EXPECT_EQ(snap.width, 10u);
    EXPECT_EQ(snap.samples, 3u);
    // numBuckets regular buckets plus the trailing overflow bucket.
    ASSERT_EQ(snap.counts.size(), 5u);
    EXPECT_EQ(snap.counts[0], 1u);
    EXPECT_EQ(snap.counts[1], 1u);
    EXPECT_EQ(snap.counts[4], 1u);
}

TEST(MetricsRegistry, MergeSumsCountersAndReRoots)
{
    MetricsRegistry a;
    a.addCounter("hits", 10);
    a.setGauge("rate", 0.5);

    MetricsRegistry b;
    b.addCounter("hits", 32);
    b.setGauge("rate", 0.9);

    MetricsRegistry out;
    out.merge(a, "cell.w1");
    out.merge(b, "cell.w1");
    EXPECT_EQ(out.counter("cell.w1.hits"), 42u);
    EXPECT_DOUBLE_EQ(out.gauge("cell.w1.rate"), 0.9); // last write wins

    out.merge(a, "cell.w2");
    EXPECT_EQ(out.counter("cell.w2.hits"), 10u);
}

TEST(MetricsRegistry, MergeSumsHistogramsBucketWise)
{
    Histogram h1(10, 3), h2(10, 3);
    h1.add(5);
    h2.add(5);
    h2.add(25);

    MetricsRegistry a, b, out;
    a.setHistogram("wall", h1);
    b.setHistogram("wall", h2);
    out.merge(a);
    out.merge(b);
    const auto &snap = out.histograms().at("wall");
    EXPECT_EQ(snap.samples, 3u);
    EXPECT_EQ(snap.counts[0], 2u);
    EXPECT_EQ(snap.counts[2], 1u);
}

TEST(MetricsRegistry, MergeOrderDoesNotChangeCounters)
{
    MetricsRegistry a, b, c;
    a.addCounter("x", 1);
    b.addCounter("x", 100);
    c.addCounter("x", 10'000);
    c.addCounter("only_c", 7);

    MetricsRegistry fwd, rev;
    fwd.merge(a);
    fwd.merge(b);
    fwd.merge(c);
    rev.merge(c);
    rev.merge(b);
    rev.merge(a);
    EXPECT_EQ(fwd.counters(), rev.counters());
}

TEST(MetricsJson, RoundTripsEveryValueExactly)
{
    MetricsDocument doc;
    doc.name = "unit-test";
    doc.wallMs = 123.456789;
    doc.metrics.addCounter("llc.hits.load", 18'446'744'073'709'551'004ull);
    doc.metrics.addCounter("llc.misses.load", 0);
    doc.metrics.setCounter("sweep.cells_total", 12);
    doc.metrics.setGauge("derived.ipc", 0.1 + 0.2); // non-representable
    doc.metrics.setGauge("policy.psel", -512.0);
    Histogram h(100, 8);
    h.add(50);
    h.add(250);
    h.add(100'000);
    doc.metrics.setHistogram("sweep.cell_wall_ms", h);

    const std::string json = metricsToJson(doc);
    auto parsed_or = metricsFromJson(json);
    ASSERT_TRUE(parsed_or.ok()) << parsed_or.status().toString();
    const MetricsDocument parsed = parsed_or.take();
    EXPECT_EQ(parsed.name, doc.name);
    EXPECT_DOUBLE_EQ(parsed.wallMs, doc.wallMs);
    EXPECT_TRUE(parsed.metrics == doc.metrics);
}

TEST(MetricsJson, RoundTripsNonFiniteGauges)
{
    MetricsDocument doc;
    doc.name = "nonfinite";
    doc.metrics.addCounter("n", 1);
    doc.metrics.setGauge("g.nan",
                         std::numeric_limits<double>::quiet_NaN());
    doc.metrics.setGauge("g.inf", std::numeric_limits<double>::infinity());
    doc.metrics.setGauge("g.ninf",
                         -std::numeric_limits<double>::infinity());

    auto parsed_or = metricsFromJson(metricsToJson(doc));
    ASSERT_TRUE(parsed_or.ok()) << parsed_or.status().toString();
    const MetricsDocument parsed = parsed_or.take();
    EXPECT_TRUE(std::isnan(parsed.metrics.gauge("g.nan")));
    EXPECT_DOUBLE_EQ(parsed.metrics.gauge("g.inf"),
                     std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(parsed.metrics.gauge("g.ninf"),
                     -std::numeric_limits<double>::infinity());
}

TEST(MetricsJson, FileRoundTrip)
{
    MetricsDocument doc;
    doc.name = "file-round-trip";
    doc.wallMs = 1.0;
    doc.metrics.addCounter("a.b.c", 3);
    const std::string path =
        std::string(::testing::TempDir()) + "/cachescope_metrics.json";
    ASSERT_TRUE(writeMetricsJsonFile(doc, path).ok());
    auto read_or = readMetricsJsonFile(path);
    ASSERT_TRUE(read_or.ok()) << read_or.status().toString();
    EXPECT_TRUE(read_or.value().metrics == doc.metrics);
    std::remove(path.c_str());
}

TEST(MetricsJson, RejectsMalformedInput)
{
    EXPECT_FALSE(metricsFromJson("").ok());
    EXPECT_FALSE(metricsFromJson("{").ok());
    EXPECT_FALSE(metricsFromJson("[1,2,3]").ok());
    EXPECT_FALSE(metricsFromJson("{\"schema\": \"bogus-v9\"}").ok());
    // Trailing garbage after a valid document.
    MetricsDocument doc;
    doc.name = "x";
    doc.metrics.addCounter("n", 1);
    EXPECT_FALSE(metricsFromJson(metricsToJson(doc) + "garbage").ok());
}

/** Deterministic cache-stressing workload (cyclic scan + hot set). */
class MiniWorkload : public Workload
{
  public:
    explicit MiniWorkload(std::string tag = "mini")
        : displayName(std::move(tag))
    {}

    const std::string &name() const override { return displayName; }

    void
    run(InstructionSink &sink) override
    {
        AddressSpace space;
        TracedArray<std::uint64_t> scan(16 * 1024, space, sink, 1);
        TracedArray<std::uint64_t> hot(1024, space, sink, 2);
        PcRegion region(91);
        const Pc pc_scan = region.allocate();
        const Pc pc_hot = region.allocate();
        const Pc pc_alu = region.allocate();
        InstructionMix mix(sink);
        Rng rng(7);

        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; sink.wantsMore(); ++i) {
            acc += scan.load((i * 8) % scan.size(), pc_scan);
            acc += hot.load(rng.nextBounded(hot.size()), pc_hot);
            mix.alu(pc_alu, 4);
        }
        (void)acc;
        sink.onEnd();
    }

  private:
    std::string displayName;
};

SimConfig
metricsTestConfig(const std::string &policy = "lru")
{
    SimConfig cfg = cascadeLakeConfig(policy, /*warmup=*/5'000,
                                      /*measure=*/50'000);
    cfg.hierarchy.l1d.sizeBytes = 4 * 1024;
    cfg.hierarchy.l1d.numWays = 4;
    cfg.hierarchy.l2.sizeBytes = 16 * 1024;
    cfg.hierarchy.l2.numWays = 4;
    cfg.hierarchy.llc.sizeBytes = 64 * 1024;
    cfg.hierarchy.llc.numWays = 8;
    cfg.core.simulateFetch = false;
    return cfg;
}

TEST(MetricsJson, ZeroSampleHistogramRoundTrips)
{
    MetricsDocument doc;
    doc.name = "empty-hist";
    Histogram h(50, 6);
    doc.metrics.setHistogram("latency", h); // never add()ed

    auto parsed_or = metricsFromJson(metricsToJson(doc));
    ASSERT_TRUE(parsed_or.ok()) << parsed_or.status().toString();
    const auto &snap =
        parsed_or.value().metrics.histograms().at("latency");
    EXPECT_EQ(snap.width, 50u);
    EXPECT_EQ(snap.samples, 0u);
    // 6 requested buckets plus the overflow bucket.
    ASSERT_EQ(snap.counts.size(), 7u);
    for (std::uint64_t c : snap.counts)
        EXPECT_EQ(c, 0u);
}

TEST(MetricsJson, CounterAtUint64MaxRoundTripsExactly)
{
    constexpr std::uint64_t kMax =
        std::numeric_limits<std::uint64_t>::max(); // 2^64 - 1
    MetricsDocument doc;
    doc.name = "u64max";
    doc.metrics.setCounter("edge.max", kMax);
    doc.metrics.setCounter("edge.max_minus_one", kMax - 1);
    doc.metrics.setCounter("edge.zero", 0);

    auto parsed_or = metricsFromJson(metricsToJson(doc));
    ASSERT_TRUE(parsed_or.ok()) << parsed_or.status().toString();
    // A parser that detours through double would land on 2^64 exactly
    // and lose the low bits of both values.
    EXPECT_EQ(parsed_or.value().metrics.counter("edge.max"), kMax);
    EXPECT_EQ(parsed_or.value().metrics.counter("edge.max_minus_one"),
              kMax - 1);
    EXPECT_EQ(parsed_or.value().metrics.counter("edge.zero"), 0u);
}

TEST(MetricsRegistry, MergeWithDisjointKeysKeepsBothSides)
{
    MetricsRegistry a, b;
    a.setCounter("only.in.a", 1);
    a.setGauge("gauge.a", 1.5);
    b.setCounter("only.in.b", 2);
    b.setGauge("gauge.b", -2.5);

    a.merge(b);
    EXPECT_EQ(a.counter("only.in.a"), 1u);
    EXPECT_EQ(a.counter("only.in.b"), 2u);
    EXPECT_DOUBLE_EQ(a.gauge("gauge.a"), 1.5);
    EXPECT_DOUBLE_EQ(a.gauge("gauge.b"), -2.5);
    EXPECT_EQ(a.counters().size(), 2u);
    EXPECT_EQ(a.gauges().size(), 2u);
}

TEST(MetricsRegistry, MergeWithOverlappingKeysSumsAndOverwrites)
{
    MetricsRegistry a, b;
    a.setCounter("shared.counter", 10);
    a.setGauge("shared.gauge", 1.0);
    b.setCounter("shared.counter", 32);
    b.setGauge("shared.gauge", 9.0);

    a.merge(b);
    // Counters sum; gauges take the incoming value.
    EXPECT_EQ(a.counter("shared.counter"), 42u);
    EXPECT_DOUBLE_EQ(a.gauge("shared.gauge"), 9.0);
}

TEST(SimResultMetrics, ExportMatchesStatsStructs)
{
    MiniWorkload w;
    const SimResult r = runOne(w, metricsTestConfig());

    MetricsRegistry reg;
    r.exportMetrics(reg);
    EXPECT_EQ(reg.counter("core.instructions"), r.core.instructions);
    EXPECT_EQ(reg.counter("core.cycles"), r.core.cycles);
    EXPECT_EQ(reg.counter("l1d.hits.load"),
              r.l1d.hitsOf(AccessType::Load));
    EXPECT_EQ(reg.counter("l1d.misses.load"),
              r.l1d.missesOf(AccessType::Load));
    EXPECT_EQ(reg.counter("llc.evictions"), r.llc.evictions);
    EXPECT_EQ(reg.counter("dram.reads"), r.dram.reads);
    EXPECT_DOUBLE_EQ(reg.gauge("core.ipc"), r.ipc());
    EXPECT_DOUBLE_EQ(reg.gauge("derived.mpki_llc"), r.mpkiLlc());

    // Prefixed export re-roots every path.
    MetricsRegistry nested;
    r.exportMetrics(nested, "cell.mini.lru");
    EXPECT_EQ(nested.counter("cell.mini.lru.core.instructions"),
              r.core.instructions);
}

TEST(SimResultMetrics, EvictionsByFillSumToTotalEvictions)
{
    MiniWorkload w;
    const SimResult r = runOne(w, metricsTestConfig());
    std::uint64_t by_fill = 0;
    for (std::size_t t = 0; t < CacheStats::kNumTypes; ++t)
        by_fill += r.llc.evictionsByFill[t];
    EXPECT_EQ(by_fill, r.llc.evictions);
    EXPECT_GT(r.llc.evictions, 0u);
}

TEST(SimResultMetrics, DipPolicyStateIsExported)
{
    MiniWorkload w;
    const SimResult r = runOne(w, metricsTestConfig("dip"));
    EXPECT_TRUE(r.extraMetrics.hasGauge("llc.policy.psel"));

    MetricsRegistry reg;
    r.exportMetrics(reg);
    EXPECT_TRUE(reg.hasGauge("llc.policy.psel"));
}

TEST(SweepMetrics, ParallelCountersMatchSerialExactly)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini_a"),
        std::make_shared<MiniWorkload>("mini_b"),
        std::make_shared<MiniWorkload>("mini_c"),
    };
    const std::vector<std::string> policies = {"lru", "srrip"};

    SuiteRunner serial(metricsTestConfig(), /*jobs=*/1);
    serial.setVerbose(false);
    const SweepReport serial_report = serial.runChecked(suite, policies);

    SuiteRunner parallel(metricsTestConfig(), /*jobs=*/4);
    parallel.setVerbose(false);
    const SweepReport parallel_report =
        parallel.runChecked(suite, policies);

    // The whole point of per-worker counters merged under the report
    // mutex: a parallel sweep reports the exact same counter map as a
    // serial one, not merely similar numbers.
    EXPECT_EQ(serial_report.metrics.counters(),
              parallel_report.metrics.counters());
    EXPECT_EQ(serial_report.metrics.counter("sweep.cells_ok"), 6u);
    EXPECT_EQ(serial_report.metrics.counter("sweep.cells_total"), 6u);
    EXPECT_TRUE(
        serial_report.metrics.hasHistogram("sweep.cell_wall_ms"));

    // Aggregate totals are the sums of the per-cell trees.
    std::uint64_t cell_instr = 0;
    const std::string suffix = ".core.instructions";
    for (const auto &[path, value] :
         serial_report.metrics.counters()) {
        if (path.rfind("cell.", 0) == 0 && path.size() > suffix.size() &&
            path.compare(path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            cell_instr += value;
        }
    }
    EXPECT_EQ(serial_report.metrics.counter("total.core.instructions"),
              cell_instr);
}

TEST(SweepMetrics, FailedCellsAreCounted)
{
    std::vector<std::shared_ptr<Workload>> suite = {
        std::make_shared<MiniWorkload>("mini"),
    };
    SuiteRunner runner(metricsTestConfig(), 1);
    runner.setVerbose(false);
    const SweepReport report =
        runner.runChecked(suite, {"lru", "no_such_policy"});
    EXPECT_EQ(report.metrics.counter("sweep.cells_ok"), 1u);
    EXPECT_EQ(report.metrics.counter("sweep.cells_failed"), 1u);
}

} // anonymous namespace
} // namespace cachescope
