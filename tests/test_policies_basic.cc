/**
 * @file
 * Unit and property tests for the baseline replacement policies and
 * the factory registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>

#include "replacement/basic.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cachescope {
namespace {

using test::smallGeometry;

TEST(Registry, AllPaperPoliciesRegistered)
{
    for (const char *name : {"lru", "fifo", "random", "nru", "plru",
                             "srrip", "brrip", "drrip", "ship", "hawkeye",
                             "glider", "mpppb"}) {
        EXPECT_TRUE(ReplacementPolicyFactory::isRegistered(name))
            << "missing policy: " << name;
    }
    EXPECT_FALSE(ReplacementPolicyFactory::isRegistered("belady"));
    EXPECT_FALSE(ReplacementPolicyFactory::isRegistered("nonsense"));
}

TEST(Registry, AvailableListIsSortedAndComplete)
{
    const auto names = ReplacementPolicyFactory::availablePolicies();
    EXPECT_GE(names.size(), 12u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, CreateSetsName)
{
    auto policy = ReplacementPolicyFactory::create("lru", smallGeometry());
    EXPECT_EQ(policy->name(), "lru");
    EXPECT_EQ(policy->geometry().numSets, 4u);
}

TEST(RegistryDeathTest, UnknownPolicyIsFatal)
{
    EXPECT_EXIT(
        ReplacementPolicyFactory::create("no_such_policy", smallGeometry()),
        ::testing::ExitedWithCode(1), "unknown replacement policy");
}

TEST(RegistryDeathTest, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(
        {
            // "lru" is already a builtin; re-registering must die.
            ReplacementPolicyFactory::create("lru", smallGeometry());
            ReplacementPolicyFactory::registerPolicy(
                "lru", [](const CacheGeometry &g) {
                    return std::make_unique<LruPolicy>(g);
                });
        },
        ::testing::ExitedWithCode(1), "registered twice");
}

// ------------------------------------------------------------------ LRU --

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(smallGeometry(1, 4));
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.update(0, w, 0, w, AccessType::Load, false);
    // Touch ways 0 and 1 again; victim must be way 2.
    lru.update(0, 0, 0, 0, AccessType::Load, true);
    lru.update(0, 1, 0, 1, AccessType::Load, true);
    EXPECT_EQ(lru.findVictim(0, 0, 99, AccessType::Load), 2u);
}

TEST(Lru, HitPromotes)
{
    LruPolicy lru(smallGeometry(1, 2));
    lru.update(0, 0, 0, 0, AccessType::Load, false);
    lru.update(0, 1, 0, 1, AccessType::Load, false);
    lru.update(0, 0, 0, 0, AccessType::Load, true);
    EXPECT_EQ(lru.findVictim(0, 0, 2, AccessType::Load), 1u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(smallGeometry(2, 2));
    lru.update(0, 0, 0, 0, AccessType::Load, false);
    lru.update(0, 1, 0, 1, AccessType::Load, false);
    lru.update(1, 1, 0, 2, AccessType::Load, false);
    lru.update(1, 0, 0, 3, AccessType::Load, false);
    EXPECT_EQ(lru.findVictim(0, 0, 9, AccessType::Load), 0u);
    EXPECT_EQ(lru.findVictim(1, 0, 9, AccessType::Load), 1u);
}

/**
 * Property test: LruPolicy matches a reference recency-stack model over
 * a long random access sequence.
 */
TEST(LruProperty, MatchesReferenceStack)
{
    const std::uint32_t ways = 8;
    LruPolicy lru(smallGeometry(1, ways));
    std::deque<std::uint32_t> stack; // front = MRU
    for (std::uint32_t w = 0; w < ways; ++w) {
        lru.update(0, w, 0, w, AccessType::Load, false);
        stack.push_front(w);
    }
    Rng rng(2024);
    for (int i = 0; i < 5000; ++i) {
        const auto way = static_cast<std::uint32_t>(rng.nextBounded(ways));
        lru.update(0, way, 0, way, AccessType::Load, true);
        stack.erase(std::find(stack.begin(), stack.end(), way));
        stack.push_front(way);
        EXPECT_EQ(lru.findVictim(0, 0, 1, AccessType::Load), stack.back());
    }
}

// ----------------------------------------------------------------- FIFO --

TEST(Fifo, EvictsOldestFill)
{
    FifoPolicy fifo(smallGeometry(1, 4));
    for (std::uint32_t w = 0; w < 4; ++w)
        fifo.update(0, w, 0, w, AccessType::Load, false);
    // Hits do not change insertion order.
    fifo.update(0, 0, 0, 0, AccessType::Load, true);
    EXPECT_EQ(fifo.findVictim(0, 0, 9, AccessType::Load), 0u);
}

TEST(Fifo, RefillMovesToBack)
{
    FifoPolicy fifo(smallGeometry(1, 2));
    fifo.update(0, 0, 0, 0, AccessType::Load, false);
    fifo.update(0, 1, 0, 1, AccessType::Load, false);
    fifo.update(0, 0, 0, 2, AccessType::Load, false); // refill way 0
    EXPECT_EQ(fifo.findVictim(0, 0, 9, AccessType::Load), 1u);
}

// --------------------------------------------------------------- Random --

TEST(RandomPolicyTest, VictimsInRangeAndCoverAllWays)
{
    RandomPolicy random(smallGeometry(1, 4));
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t v = random.findVictim(0, 0, 0,
                                                  AccessType::Load);
        EXPECT_LT(v, 4u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(RandomPolicyTest, DeterministicAcrossInstances)
{
    RandomPolicy a(smallGeometry()), b(smallGeometry());
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.findVictim(0, 0, 0, AccessType::Load),
                  b.findVictim(0, 0, 0, AccessType::Load));
    }
}

// ------------------------------------------------------------------ NRU --

TEST(Nru, EvictsFirstUnreferenced)
{
    NruPolicy nru(smallGeometry(1, 4));
    nru.update(0, 0, 0, 0, AccessType::Load, false);
    nru.update(0, 2, 0, 2, AccessType::Load, false);
    // Ways 1 and 3 unreferenced: victim is the lowest, way 1.
    EXPECT_EQ(nru.findVictim(0, 0, 9, AccessType::Load), 1u);
}

TEST(Nru, ClearsWhenAllReferenced)
{
    NruPolicy nru(smallGeometry(1, 2));
    nru.update(0, 0, 0, 0, AccessType::Load, false);
    nru.update(0, 1, 0, 1, AccessType::Load, false);
    EXPECT_EQ(nru.findVictim(0, 0, 9, AccessType::Load), 0u);
    // The sweep cleared all bits, so way 1 (still unreferenced after
    // the clear) is next even without new touches.
    EXPECT_EQ(nru.findVictim(0, 0, 9, AccessType::Load), 0u);
}

// ----------------------------------------------------------- Tree-PLRU --

TEST(TreePlru, PowerOfTwoFollowsColdPath)
{
    TreePlruPolicy plru(smallGeometry(1, 4));
    // Touch ways 0..3 in order; the PLRU walk should avoid the most
    // recently touched subtree and land on way 0.
    for (std::uint32_t w = 0; w < 4; ++w)
        plru.update(0, w, 0, w, AccessType::Load, false);
    EXPECT_EQ(plru.findVictim(0, 0, 9, AccessType::Load), 0u);
    // Touch way 0: victim moves to the other subtree.
    plru.update(0, 0, 0, 0, AccessType::Load, true);
    const std::uint32_t v = plru.findVictim(0, 0, 9, AccessType::Load);
    EXPECT_TRUE(v == 2u || v == 3u);
}

TEST(TreePlru, VictimNeverJustTouched)
{
    TreePlruPolicy plru(smallGeometry(1, 8));
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto way = static_cast<std::uint32_t>(rng.nextBounded(8));
        plru.update(0, way, 0, way, AccessType::Load, true);
        EXPECT_NE(plru.findVictim(0, 0, 9, AccessType::Load), way);
    }
}

TEST(TreePlru, NonPowerOfTwoWaysStayInRange)
{
    // 11 ways: the Cascade Lake LLC case.
    TreePlruPolicy plru(smallGeometry(2, 11));
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const auto set = static_cast<std::uint32_t>(rng.nextBounded(2));
        const auto way = static_cast<std::uint32_t>(rng.nextBounded(11));
        plru.update(set, way, 0, way, AccessType::Load, i % 3 != 0);
        EXPECT_LT(plru.findVictim(set, 0, 9, AccessType::Load), 11u);
    }
}

/** All basic policies must return victims in range on random streams. */
class PolicyRangeTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(PolicyRangeTest, VictimAlwaysInRange)
{
    const CacheGeometry geom = smallGeometry(8, 11);
    auto policy = ReplacementPolicyFactory::create(GetParam(), geom);
    Rng rng(5);
    for (int i = 0; i < 3000; ++i) {
        const auto set = static_cast<std::uint32_t>(rng.nextBounded(8));
        const Addr block = rng.nextBounded(1 << 20);
        const Pc pc = 0x400000 + 4 * rng.nextBounded(64);
        const auto type = static_cast<AccessType>(rng.nextBounded(3));
        const std::uint32_t victim = policy->findVictim(set, pc, block,
                                                        type);
        if (victim != ReplacementPolicy::kBypassWay) {
            EXPECT_LT(victim, 11u);
        }
        const std::uint32_t way =
            victim == ReplacementPolicy::kBypassWay
                ? static_cast<std::uint32_t>(rng.nextBounded(11))
                : victim;
        policy->update(set, way, pc, block, type, rng.nextBool(0.5));
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyRangeTest,
                         ::testing::Values("lru", "fifo", "random", "nru",
                                           "plru", "srrip", "brrip",
                                           "drrip", "ship", "hawkeye",
                                           "glider", "mpppb"));

} // namespace
} // namespace cachescope
